// Command conftrace diffs two anonymization runs for regressions.
//
// Usage:
//
//	conftrace [-warn-pct N] [-fail-on-drift] BASELINE CURRENT
//
// BASELINE and CURRENT each name a run artifact in any machine format
// confanon emits: a span + provenance trace (JSONL, schema
// confanon.trace/v1, from -trace-out), a run report (JSON, schema
// confanon.run_report/v1, from -metrics-out), or a benchmark report
// (JSON, schema confanon.bench/v1, from confbench). The format is
// detected from the file's schema header. Traces and run reports may
// mix — a checked-in baseline report can be compared against a fresh
// trace — but a bench report only diffs against another bench report.
//
// For traces and run reports the diff covers per-rule hit counts,
// per-stage latency (event count and mean), per-status file outcomes,
// and — when the artifacts carry metric snapshots — leak findings by
// kind and severity. Any relative change beyond -warn-pct (default 25)
// is flagged as drift on stderr.
//
// For bench reports the diff is the CI gate over the privacy/utility
// suites: per policy, any privacy score worsening (re-identification,
// fingerprint survival, or identity leak rising) beyond
// -bench-privacy-drift percentage points, or any utility score
// (design equivalence, characteristics clean) dropping beyond
// -bench-utility-drop percentage points, is drift. A changed policy
// fingerprint or a policy missing from the current report is also
// drift. Throughput is machine-dependent and reported informationally,
// never as drift.
//
// Exit codes:
//
//	0  diff printed; drift, if any, was warned about (default gate is
//	   warn-only, for CI steps that report but do not block)
//	1  drift found and -fail-on-drift was set
//	2  usage error
//	3  fatal error (unreadable, unrecognized, or mismatched input)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"confanon"
	"confanon/internal/bench"
)

const (
	exitOK    = 0
	exitDrift = 1
	exitUsage = 2
	exitFatal = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected (tested directly).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conftrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	warnPct := fs.Float64("warn-pct", 25, "flag relative changes beyond this percentage as drift")
	failOnDrift := fs.Bool("fail-on-drift", false, "exit 1 when drift is found (default: warn only)")
	privacyPP := fs.Float64("bench-privacy-drift", 1.0,
		"bench reports: flag privacy scores worsening beyond this many percentage points as drift")
	utilityPP := fs.Float64("bench-utility-drop", 1.0,
		"bench reports: flag utility scores dropping beyond this many percentage points as drift")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "conftrace: need exactly two run artifacts (baseline, current)")
		fs.Usage()
		return exitUsage
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return fatal(stderr, err)
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return fatal(stderr, err)
	}
	if (base.bench != nil) != (cur.bench != nil) {
		return fatal(stderr, fmt.Errorf("cannot diff a %s report against a run artifact: %s is %s, %s is %s",
			bench.Schema, base.path, base.source, cur.path, cur.source))
	}
	var drift bool
	if base.bench != nil {
		drift = diffBench(stdout, stderr, base.path, cur.path, base.bench, cur.bench, *privacyPP, *utilityPP)
	} else {
		drift = diff(stdout, stderr, base.sum, cur.sum, *warnPct)
	}
	if drift && *failOnDrift {
		return exitDrift
	}
	return exitOK
}

// artifact is one loaded run artifact: exactly one of sum (trace or
// run report, normalized) and bench is set.
type artifact struct {
	path   string
	source string // "trace", "report", or "bench"
	sum    *summary
	bench  *bench.Report
}

// summary is the normalized view of one run, extractable from either
// artifact format.
type summary struct {
	path   string
	source string // "trace" or "report"

	ruleHits   map[string]float64
	ruleTimeNs map[string]float64
	stageCount map[string]float64
	stageSumS  map[string]float64 // total seconds per stage
	leaks      map[string]float64 // "kind/severity" → findings

	// packs maps "name@version" to the pack's content fingerprint, from
	// the run report's rule_packs field; empty for span traces and for
	// reports written before packs were recorded.
	packs map[string]string

	filesOK, filesFailed, filesQuarantined float64
}

func newSummary(path, source string) *summary {
	return &summary{
		path: path, source: source,
		ruleHits:   map[string]float64{},
		ruleTimeNs: map[string]float64{},
		stageCount: map[string]float64{},
		stageSumS:  map[string]float64{},
		leaks:      map[string]float64{},
		packs:      map[string]string{},
	}
}

// load reads one run artifact, sniffing its schema: traces parse via
// the trace reader, then bench reports, then run reports.
func load(path string) (*artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tf, err := confanon.ReadTrace(f); err == nil {
		return &artifact{path: path, source: "trace", sum: fromTrace(path, tf)}, nil
	} else if !errors.Is(err, confanon.ErrTraceSchema) {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if br, err := bench.Decode(f); err == nil {
		return &artifact{path: path, source: "bench", bench: br}, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var rep confanon.RunReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: neither a %s trace, a %s report, nor a %s report: %w",
			path, confanon.TraceSchema, bench.Schema, confanon.RunReportSchema, err)
	}
	if rep.Schema != confanon.RunReportSchema {
		return nil, fmt.Errorf("%s: unrecognized schema %q", path, rep.Schema)
	}
	return &artifact{path: path, source: "report", sum: fromReport(path, &rep)}, nil
}

// fromTrace summarizes a span trace: rule spans carry per-file hit
// counts and attributed wall time, stage spans their per-file latency,
// file spans the run's outcome counts (quarantine is a batch-layer
// verdict the engine's spans do not see; those files count as ok here).
func fromTrace(path string, tf *confanon.TraceFile) *summary {
	s := newSummary(path, "trace")
	for _, sp := range tf.Spans {
		switch sp.Kind {
		case "rule":
			hits, _ := strconv.ParseFloat(sp.Attr("hits"), 64)
			s.ruleHits[sp.Name] += hits
			s.ruleTimeNs[sp.Name] += float64(sp.DurNs)
		case "stage":
			s.stageCount[sp.Name]++
			s.stageSumS[sp.Name] += float64(sp.DurNs) / 1e9
		case "file":
			if sp.Status == "failed" {
				s.filesFailed++
			} else {
				s.filesOK++
			}
		}
	}
	return s
}

// fromReport summarizes a run report from its flattened metric
// snapshot (series identities documented on RunReport.Counters).
func fromReport(path string, rep *confanon.RunReport) *summary {
	s := newSummary(path, "report")
	s.filesOK = float64(rep.FilesOK)
	s.filesFailed = float64(rep.FilesFailed)
	s.filesQuarantined = float64(rep.FilesQuarantined)
	for _, pm := range rep.Packs {
		s.packs[pm.Name+"@"+pm.Version] = pm.Fingerprint
	}
	for id, v := range rep.Counters {
		name, labels := parseSeries(id)
		switch name {
		case "confanon_rule_hits_total":
			s.ruleHits[labels["rule"]] += v
		case "confanon_rule_time_ns_total":
			s.ruleTimeNs[labels["rule"]] += v
		case "confanon_stage_seconds_count":
			s.stageCount[labels["stage"]] += v
		case "confanon_stage_seconds_sum":
			s.stageSumS[labels["stage"]] += v
		case "confanon_leaks_total":
			s.leaks[labels["kind"]+"/"+labels["severity"]] += v
		}
	}
	return s
}

// parseSeries splits a Prometheus series identity — name{k="v",...} —
// into its name and label map (labels nil for a bare name). It handles
// the subset confanon emits; escaped quotes inside values are honored.
func parseSeries(id string) (string, map[string]string) {
	open := strings.IndexByte(id, '{')
	if open < 0 || !strings.HasSuffix(id, "}") {
		return id, nil
	}
	labels := map[string]string{}
	body := id[open+1 : len(id)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				val.WriteByte(rest[i])
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		labels[key] = val.String()
		body = rest[i:]
		body = strings.TrimPrefix(body, `"`)
		body = strings.TrimPrefix(body, ",")
	}
	return id[:open], labels
}

// diff prints the regression comparison and reports whether any series
// drifted beyond warnPct.
func diff(stdout, stderr io.Writer, base, cur *summary, warnPct float64) bool {
	fmt.Fprintf(stdout, "conftrace: baseline %s (%s) vs current %s (%s)\n",
		base.path, base.source, cur.path, cur.source)
	drift := false
	warn := func(format string, args ...interface{}) {
		drift = true
		fmt.Fprintf(stderr, "conftrace: DRIFT: "+format+"\n", args...)
	}

	fmt.Fprintf(stdout, "\nfiles: ok %v -> %v, failed %v -> %v, quarantined %v -> %v\n",
		base.filesOK, cur.filesOK, base.filesFailed, cur.filesFailed,
		base.filesQuarantined, cur.filesQuarantined)
	if cur.filesFailed > base.filesFailed {
		warn("failed files rose %v -> %v", base.filesFailed, cur.filesFailed)
	}
	if cur.filesQuarantined > base.filesQuarantined {
		warn("quarantined files rose %v -> %v", base.filesQuarantined, cur.filesQuarantined)
	}

	// When both artifacts record their rule-pack identities and the set
	// differs, the rule inventory itself changed: report that as one
	// drift line — the pack delta, with fingerprints — and print the
	// per-rule hit changes informationally rather than as drift, since
	// every one of them is downstream of the pack swap.
	packsChanged := packDrift(base.packs, cur.packs)
	if len(packsChanged) > 0 {
		warn("rule pack changed: %s", strings.Join(packsChanged, "; "))
	}

	fmt.Fprintf(stdout, "\nrule hits:\n")
	for _, rule := range unionKeys(base.ruleHits, cur.ruleHits) {
		b, c := base.ruleHits[rule], cur.ruleHits[rule]
		pct := relPct(b, c)
		fmt.Fprintf(stdout, "  %-34s %10.0f -> %-10.0f %s\n", rule, b, c, pctLabel(pct))
		if math.Abs(pct) > warnPct {
			if len(packsChanged) > 0 {
				fmt.Fprintf(stdout, "  ^ hit change attributed to the rule-pack change above, not drift\n")
				continue
			}
			warn("rule %s hits changed %.0f -> %.0f (%+.1f%%)", rule, b, c, pct)
		}
	}

	fmt.Fprintf(stdout, "\nstage latency (count, mean):\n")
	for _, stage := range unionKeys(base.stageCount, cur.stageCount) {
		bMean := mean(base.stageSumS[stage], base.stageCount[stage])
		cMean := mean(cur.stageSumS[stage], cur.stageCount[stage])
		pct := relPct(bMean, cMean)
		fmt.Fprintf(stdout, "  %-12s %6.0fx %10.3gs -> %6.0fx %10.3gs %s\n",
			stage, base.stageCount[stage], bMean, cur.stageCount[stage], cMean, pctLabel(pct))
		if math.Abs(pct) > warnPct {
			warn("stage %s mean latency changed %.3gs -> %.3gs (%+.1f%%)", stage, bMean, cMean, pct)
		}
	}

	if len(base.leaks) > 0 || len(cur.leaks) > 0 {
		fmt.Fprintf(stdout, "\nleak findings (kind/severity):\n")
		for _, k := range unionKeys(base.leaks, cur.leaks) {
			b, c := base.leaks[k], cur.leaks[k]
			fmt.Fprintf(stdout, "  %-34s %10.0f -> %-10.0f\n", k, b, c)
			if c > b && strings.HasSuffix(k, "/confirmed") {
				warn("confirmed leaks %s rose %.0f -> %.0f", k, b, c)
			}
		}
	} else if base.source == "trace" && cur.source == "trace" {
		fmt.Fprintf(stdout, "\nleak findings: not recorded in span traces (compare run reports)\n")
	}

	if !drift {
		fmt.Fprintf(stdout, "\nno drift beyond %.0f%%\n", warnPct)
	}
	return drift
}

// packDrift compares two recorded pack-identity sets and renders the
// delta, one entry per added, removed, or re-fingerprinted pack. Empty
// when either side recorded no packs (old artifact, span trace) or the
// sets agree.
func packDrift(base, cur map[string]string) []string {
	if len(base) == 0 || len(cur) == 0 {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for k := range base {
		seen[k] = true
	}
	for k := range cur {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	short := func(fp string) string {
		fp = strings.TrimPrefix(fp, "sha256:")
		if len(fp) > 12 {
			fp = fp[:12]
		}
		return fp
	}
	for _, k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		switch {
		case !inBase:
			out = append(out, fmt.Sprintf("%s added (%s)", k, short(c)))
		case !inCur:
			out = append(out, fmt.Sprintf("%s removed (%s)", k, short(b)))
		case b != c:
			out = append(out, fmt.Sprintf("%s fingerprint %s -> %s", k, short(b), short(c)))
		}
	}
	return out
}

// scoreDelta is one gated score in a bench diff.
type scoreDelta struct {
	name string
	b, c float64
}

// diffBench prints the privacy/utility gate comparison of two bench
// reports and reports whether any score drifted beyond its threshold.
// Privacy scores are "higher is worse" (rises beyond privacyPP drift);
// utility scores are "higher is better" (drops beyond utilityPP
// drift). Throughput never drifts.
func diffBench(stdout, stderr io.Writer, basePath, curPath string, base, cur *bench.Report, privacyPP, utilityPP float64) bool {
	fmt.Fprintf(stdout, "conftrace: bench baseline %s vs current %s\n", basePath, curPath)
	drift := false
	warn := func(format string, args ...interface{}) {
		drift = true
		fmt.Fprintf(stderr, "conftrace: DRIFT: "+format+"\n", args...)
	}

	// Scores are only comparable over the same population.
	if base.Seed != cur.Seed || base.TopK != cur.TopK || base.Corpus != cur.Corpus {
		warn("bench parameters changed: seed %d -> %d, top-k %d -> %d, corpus %+v -> %+v",
			base.Seed, cur.Seed, base.TopK, cur.TopK, base.Corpus, cur.Corpus)
	}
	fmt.Fprintf(stdout, "corpus: %d networks, %d routers, %d lines (seed %d, top-%d)\n",
		cur.Corpus.Networks, cur.Corpus.Routers, cur.Corpus.Lines, cur.Seed, cur.TopK)

	for i := range base.Policies {
		bp := &base.Policies[i]
		cp := cur.Policy(bp.Name)
		fmt.Fprintf(stdout, "\npolicy %s\n", bp.Name)
		if cp == nil {
			warn("policy %s missing from current report", bp.Name)
			continue
		}
		if cp.Fingerprint != bp.Fingerprint {
			warn("policy %s fingerprint changed: %q -> %q", bp.Name, bp.Fingerprint, cp.Fingerprint)
		}

		for _, d := range []scoreDelta{
			{"subnet_match_pct", bp.Privacy.SubnetMatchPct, cp.Privacy.SubnetMatchPct},
			{"peering_match_pct", bp.Privacy.PeeringMatchPct, cp.Privacy.PeeringMatchPct},
			{"subnet_top1_pct", bp.Privacy.SubnetTop1Pct, cp.Privacy.SubnetTop1Pct},
			{"subnet_topk_pct", bp.Privacy.SubnetTopKPct, cp.Privacy.SubnetTopKPct},
			{"peering_top1_pct", bp.Privacy.PeeringTop1Pct, cp.Privacy.PeeringTop1Pct},
			{"peering_topk_pct", bp.Privacy.PeeringTopKPct, cp.Privacy.PeeringTopKPct},
			{"combined_top1_pct", bp.Privacy.CombinedTop1Pct, cp.Privacy.CombinedTop1Pct},
			{"combined_topk_pct", bp.Privacy.CombinedTopKPct, cp.Privacy.CombinedTopKPct},
			{"identity_leak_pct", bp.Privacy.IdentityLeakPct, cp.Privacy.IdentityLeakPct},
		} {
			delta := d.c - d.b
			fmt.Fprintf(stdout, "  privacy %-26s %7.2f -> %-7.2f %s\n", d.name, d.b, d.c, ppLabel(delta))
			if delta > privacyPP {
				warn("policy %s privacy %s worsened %.2f -> %.2f (+%.2fpp)", bp.Name, d.name, d.b, d.c, delta)
			}
		}
		for _, d := range []scoreDelta{
			{"design_equiv_pct", bp.Utility.DesignEquivPct, cp.Utility.DesignEquivPct},
			{"characteristics_clean_pct", bp.Utility.CharacteristicsCleanPct, cp.Utility.CharacteristicsCleanPct},
		} {
			delta := d.c - d.b
			fmt.Fprintf(stdout, "  utility %-26s %7.2f -> %-7.2f %s\n", d.name, d.b, d.c, ppLabel(delta))
			if -delta > utilityPP {
				warn("policy %s utility %s dropped %.2f -> %.2f (%.2fpp)", bp.Name, d.name, d.b, d.c, delta)
			}
		}
		fmt.Fprintf(stdout, "  throughput %.0f -> %.0f lines/s (machine-dependent, never drift)\n",
			bp.Throughput.LinesPerSec, cp.Throughput.LinesPerSec)
	}
	for i := range cur.Policies {
		if base.Policy(cur.Policies[i].Name) == nil {
			fmt.Fprintf(stdout, "\npolicy %s: new in current, not gated\n", cur.Policies[i].Name)
		}
	}
	if !drift {
		fmt.Fprintf(stdout, "\nno bench drift beyond +%.1fpp privacy / -%.1fpp utility\n", privacyPP, utilityPP)
	}
	return drift
}

// ppLabel renders a percentage-point delta, blank when zero.
func ppLabel(delta float64) string {
	if delta == 0 {
		return ""
	}
	return fmt.Sprintf("(%+.2fpp)", delta)
}

func mean(sum, count float64) float64 {
	if count == 0 {
		return 0
	}
	return sum / count
}

// relPct is the relative change from b to c in percent; a series
// appearing or disappearing outright is ±100%.
func relPct(b, c float64) float64 {
	if b == 0 {
		if c == 0 {
			return 0
		}
		return 100
	}
	return (c - b) / b * 100
}

func pctLabel(pct float64) string {
	if pct == 0 {
		return ""
	}
	return fmt.Sprintf("(%+.1f%%)", pct)
}

func unionKeys(a, b map[string]float64) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "conftrace:", err)
	return exitFatal
}
