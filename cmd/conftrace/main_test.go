package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confanon"
)

const testConf = "hostname r9\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\nrouter bgp 701\n neighbor 12.1.2.4 remote-as 1239\n"

func runTool(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeRunArtifacts anonymizes a tiny corpus once with both a tracer
// and a registry wired, and writes the two artifact forms of the same
// run: a JSONL trace and a JSON run report.
func writeRunArtifacts(t *testing.T) (tracePath, reportPath string) {
	t.Helper()
	dir := t.TempDir()
	tr := confanon.NewTracer()
	reg := confanon.NewMetricsRegistry()
	a := confanon.New(confanon.Options{Salt: []byte("ct"), Tracer: tr, Metrics: reg})
	res, err := a.CorpusContext(context.Background(),
		map[string]string{"r1": testConf, "r2": testConf})
	if err != nil {
		t.Fatal(err)
	}

	tracePath = filepath.Join(dir, "run.trace.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reportPath = filepath.Join(dir, "report.json")
	b, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(reportPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return tracePath, reportPath
}

func TestRunUsageAndFatalErrors(t *testing.T) {
	if code, _, _ := runTool(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "one-file-only"); code != exitUsage {
		t.Errorf("one arg: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "-bogus", "a", "b"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
	absent := filepath.Join(t.TempDir(), "absent")
	if code, _, _ := runTool(t, absent, absent); code != exitFatal {
		t.Errorf("missing file: exit %d, want %d", code, exitFatal)
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runTool(t, garbage, garbage); code != exitFatal ||
		!strings.Contains(stderr, "neither a") {
		t.Errorf("garbage file: exit %d, stderr %q", code, stderr)
	}
	foreign := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runTool(t, foreign, foreign); code != exitFatal ||
		!strings.Contains(stderr, "unrecognized schema") {
		t.Errorf("foreign schema: exit %d, stderr %q", code, stderr)
	}
}

// TestIdenticalRunsShowNoDrift: a run compared against itself is clean,
// in every format pairing — and the trace-derived rule hits must agree
// with the report-derived ones, or the mixed pairing would drift.
func TestIdenticalRunsShowNoDrift(t *testing.T) {
	tracePath, reportPath := writeRunArtifacts(t)
	for _, pair := range [][2]string{
		{reportPath, reportPath},
		{tracePath, tracePath},
		{tracePath, reportPath},
		{reportPath, tracePath},
	} {
		code, stdout, stderr := runTool(t, pair[0], pair[1])
		if code != exitOK {
			t.Fatalf("%v: exit %d; stderr:\n%s", pair, code, stderr)
		}
		if strings.Contains(stderr, "DRIFT") && strings.Contains(stderr, "rule") {
			t.Errorf("%v: rule drift between two views of one run:\n%s", pair, stderr)
		}
		if !strings.Contains(stdout, "rule hits:") {
			t.Errorf("%v: no rule-hits section:\n%s", pair, stdout)
		}
	}
}

// TestDriftWarnsButExitsZero: rule-hit drift beyond -warn-pct is
// reported on stderr yet the exit stays 0 unless -fail-on-drift.
func TestDriftWarnsButExitsZero(t *testing.T) {
	_, reportPath := writeRunArtifacts(t)
	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep confanon.RunReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	// Double one rule's hits and add a confirmed leak: both must warn.
	for id := range rep.Counters {
		if strings.HasPrefix(id, "confanon_rule_hits_total") {
			rep.Counters[id] *= 2
		}
	}
	rep.Counters[`confanon_leaks_total{kind="asn",severity="confirmed"}`] = 1
	drifted := filepath.Join(t.TempDir(), "drifted.json")
	b, _ = json.Marshal(&rep)
	if err := os.WriteFile(drifted, b, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runTool(t, reportPath, drifted)
	if code != exitOK {
		t.Fatalf("warn-only run exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "DRIFT: rule") {
		t.Errorf("no rule drift warning:\n%s", stderr)
	}
	if !strings.Contains(stderr, "confirmed leaks") {
		t.Errorf("no confirmed-leak warning:\n%s", stderr)
	}

	if code, _, _ = runTool(t, "-fail-on-drift", reportPath, drifted); code != exitDrift {
		t.Errorf("-fail-on-drift exit %d, want %d", code, exitDrift)
	}
	// Widening the tolerance past the change silences the rule warning
	// but not the leak rise, which always warns.
	code, _, stderr = runTool(t, "-warn-pct", "150", reportPath, drifted)
	if code != exitOK || strings.Contains(stderr, "DRIFT: rule") {
		t.Errorf("warn-pct=150 still warned on rules (exit %d):\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "confirmed leaks") {
		t.Errorf("leak rise suppressed by warn-pct:\n%s", stderr)
	}
}

// TestFailedFilesWarn: a failed-file count rising above the baseline is
// drift regardless of percentages.
func TestFailedFilesWarn(t *testing.T) {
	_, reportPath := writeRunArtifacts(t)
	var rep confanon.RunReport
	b, _ := os.ReadFile(reportPath)
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	rep.FilesFailed = 1
	failed := filepath.Join(t.TempDir(), "failed.json")
	b, _ = json.Marshal(&rep)
	if err := os.WriteFile(failed, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, stderr := runTool(t, reportPath, failed); !strings.Contains(stderr, "failed files rose") {
		t.Errorf("no failed-files warning:\n%s", stderr)
	}
}

func TestParseSeries(t *testing.T) {
	for _, tc := range []struct {
		id, name string
		labels   map[string]string
	}{
		{"confanon_lines_total", "confanon_lines_total", nil},
		{`confanon_rule_hits_total{rule="I1-address-netmask-pair"}`,
			"confanon_rule_hits_total", map[string]string{"rule": "I1-address-netmask-pair"}},
		{`confanon_leaks_total{kind="asn",severity="confirmed"}`,
			"confanon_leaks_total", map[string]string{"kind": "asn", "severity": "confirmed"}},
		{`x{k="a\"b"}`, "x", map[string]string{"k": `a"b`}},
	} {
		name, labels := parseSeries(tc.id)
		if name != tc.name {
			t.Errorf("parseSeries(%q) name = %q, want %q", tc.id, name, tc.name)
		}
		if len(labels) != len(tc.labels) {
			t.Errorf("parseSeries(%q) labels = %v, want %v", tc.id, labels, tc.labels)
			continue
		}
		for k, v := range tc.labels {
			if labels[k] != v {
				t.Errorf("parseSeries(%q) label %s = %q, want %q", tc.id, k, labels[k], v)
			}
		}
	}
}
