package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confanon"
	"confanon/internal/bench"
)

const testConf = "hostname r9\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\nrouter bgp 701\n neighbor 12.1.2.4 remote-as 1239\n"

func runTool(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeRunArtifacts anonymizes a tiny corpus once with both a tracer
// and a registry wired, and writes the two artifact forms of the same
// run: a JSONL trace and a JSON run report.
func writeRunArtifacts(t *testing.T) (tracePath, reportPath string) {
	t.Helper()
	dir := t.TempDir()
	tr := confanon.NewTracer()
	reg := confanon.NewMetricsRegistry()
	a := confanon.New(confanon.Options{Salt: []byte("ct"), Tracer: tr, Metrics: reg})
	res, err := a.CorpusContext(context.Background(),
		map[string]string{"r1": testConf, "r2": testConf})
	if err != nil {
		t.Fatal(err)
	}

	tracePath = filepath.Join(dir, "run.trace.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reportPath = filepath.Join(dir, "report.json")
	b, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(reportPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return tracePath, reportPath
}

func TestRunUsageAndFatalErrors(t *testing.T) {
	if code, _, _ := runTool(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "one-file-only"); code != exitUsage {
		t.Errorf("one arg: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "-bogus", "a", "b"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
	absent := filepath.Join(t.TempDir(), "absent")
	if code, _, _ := runTool(t, absent, absent); code != exitFatal {
		t.Errorf("missing file: exit %d, want %d", code, exitFatal)
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runTool(t, garbage, garbage); code != exitFatal ||
		!strings.Contains(stderr, "neither a") {
		t.Errorf("garbage file: exit %d, stderr %q", code, stderr)
	}
	foreign := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runTool(t, foreign, foreign); code != exitFatal ||
		!strings.Contains(stderr, "unrecognized schema") {
		t.Errorf("foreign schema: exit %d, stderr %q", code, stderr)
	}
}

// TestIdenticalRunsShowNoDrift: a run compared against itself is clean,
// in every format pairing — and the trace-derived rule hits must agree
// with the report-derived ones, or the mixed pairing would drift.
func TestIdenticalRunsShowNoDrift(t *testing.T) {
	tracePath, reportPath := writeRunArtifacts(t)
	for _, pair := range [][2]string{
		{reportPath, reportPath},
		{tracePath, tracePath},
		{tracePath, reportPath},
		{reportPath, tracePath},
	} {
		code, stdout, stderr := runTool(t, pair[0], pair[1])
		if code != exitOK {
			t.Fatalf("%v: exit %d; stderr:\n%s", pair, code, stderr)
		}
		if strings.Contains(stderr, "DRIFT") && strings.Contains(stderr, "rule") {
			t.Errorf("%v: rule drift between two views of one run:\n%s", pair, stderr)
		}
		if !strings.Contains(stdout, "rule hits:") {
			t.Errorf("%v: no rule-hits section:\n%s", pair, stdout)
		}
	}
}

// TestDriftWarnsButExitsZero: rule-hit drift beyond -warn-pct is
// reported on stderr yet the exit stays 0 unless -fail-on-drift.
func TestDriftWarnsButExitsZero(t *testing.T) {
	_, reportPath := writeRunArtifacts(t)
	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep confanon.RunReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	// Double one rule's hits and add a confirmed leak: both must warn.
	for id := range rep.Counters {
		if strings.HasPrefix(id, "confanon_rule_hits_total") {
			rep.Counters[id] *= 2
		}
	}
	rep.Counters[`confanon_leaks_total{kind="asn",severity="confirmed"}`] = 1
	drifted := filepath.Join(t.TempDir(), "drifted.json")
	b, _ = json.Marshal(&rep)
	if err := os.WriteFile(drifted, b, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runTool(t, reportPath, drifted)
	if code != exitOK {
		t.Fatalf("warn-only run exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "DRIFT: rule") {
		t.Errorf("no rule drift warning:\n%s", stderr)
	}
	if !strings.Contains(stderr, "confirmed leaks") {
		t.Errorf("no confirmed-leak warning:\n%s", stderr)
	}

	if code, _, _ = runTool(t, "-fail-on-drift", reportPath, drifted); code != exitDrift {
		t.Errorf("-fail-on-drift exit %d, want %d", code, exitDrift)
	}
	// Widening the tolerance past the change silences the rule warning
	// but not the leak rise, which always warns.
	code, _, stderr = runTool(t, "-warn-pct", "150", reportPath, drifted)
	if code != exitOK || strings.Contains(stderr, "DRIFT: rule") {
		t.Errorf("warn-pct=150 still warned on rules (exit %d):\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "confirmed leaks") {
		t.Errorf("leak rise suppressed by warn-pct:\n%s", stderr)
	}
}

// TestFailedFilesWarn: a failed-file count rising above the baseline is
// drift regardless of percentages.
func TestFailedFilesWarn(t *testing.T) {
	_, reportPath := writeRunArtifacts(t)
	var rep confanon.RunReport
	b, _ := os.ReadFile(reportPath)
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	rep.FilesFailed = 1
	failed := filepath.Join(t.TempDir(), "failed.json")
	b, _ = json.Marshal(&rep)
	if err := os.WriteFile(failed, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, stderr := runTool(t, reportPath, failed); !strings.Contains(stderr, "failed files rose") {
		t.Errorf("no failed-files warning:\n%s", stderr)
	}
}

// writeBench runs the benchmark harness over a small corpus with the
// given policies and writes the report; mutate edits it first.
func writeBench(t *testing.T, name string, policies []bench.Policy, mutate func(*bench.Report)) string {
	t.Helper()
	rep, err := bench.Run(context.Background(), bench.Options{
		Seed: 1, Routers: 40, Networks: 3, Policies: policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(rep)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

var shapedOnly = []bench.Policy{{Name: "shaped", Workers: 1}}

// TestBenchSelfDiffClean: a bench report against itself is no drift —
// including throughput, which differs between runs of the same seed but
// must never gate.
func TestBenchSelfDiffClean(t *testing.T) {
	base := writeBench(t, "base.json", shapedOnly, nil)
	cur := writeBench(t, "cur.json", shapedOnly, nil)
	code, stdout, stderr := runTool(t, "-fail-on-drift", base, cur)
	if code != exitOK {
		t.Fatalf("self diff exited %d; stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "DRIFT") {
		t.Errorf("self diff drifted:\n%s", stderr)
	}
	for _, want := range []string{"bench baseline", "policy shaped", "privacy", "utility", "no bench drift"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("diff output missing %q:\n%s", want, stdout)
		}
	}
}

// TestBenchGateCatchesWeakenedRule is the acceptance demonstration: a
// deliberately weakened anonymizer — shaped-tree IP mapping disabled
// under the same policy name — must fail the CI drift gate against the
// committed baseline, on both the fingerprint and the utility axes.
func TestBenchGateCatchesWeakenedRule(t *testing.T) {
	base := writeBench(t, "base.json", shapedOnly, nil)
	weakened := writeBench(t, "weak.json",
		[]bench.Policy{{Name: "shaped", StatelessIP: true, Workers: 1}}, nil)
	code, _, stderr := runTool(t, "-fail-on-drift", base, weakened)
	if code != exitDrift {
		t.Fatalf("weakened rule passed the gate (exit %d); stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "fingerprint changed") {
		t.Errorf("no fingerprint-change warning:\n%s", stderr)
	}
	if !strings.Contains(stderr, "utility design_equiv_pct dropped") {
		t.Errorf("no design-equivalence drop warning:\n%s", stderr)
	}
	// Without -fail-on-drift the gate stays warn-only (exit 0).
	if code, _, _ := runTool(t, base, weakened); code != exitOK {
		t.Errorf("warn-only bench diff exited %d", code)
	}
}

// TestBenchThresholds: the privacy gate fires only beyond
// -bench-privacy-drift, and missing policies or changed parameters are
// always drift.
func TestBenchThresholds(t *testing.T) {
	base := writeBench(t, "base.json", shapedOnly, nil)

	leaky := writeBench(t, "leaky.json", shapedOnly, func(r *bench.Report) {
		r.Policies[0].Privacy.IdentityLeakPct = 25
	})
	code, _, stderr := runTool(t, "-fail-on-drift", base, leaky)
	if code != exitDrift || !strings.Contains(stderr, "privacy identity_leak_pct worsened") {
		t.Errorf("leak rise not gated (exit %d):\n%s", code, stderr)
	}
	// Widening the privacy tolerance past the rise silences it.
	if code, _, _ := runTool(t, "-fail-on-drift", "-bench-privacy-drift", "30", base, leaky); code != exitOK {
		t.Errorf("widened privacy threshold still gated (exit %d)", code)
	}
	// A utility drop within -bench-utility-drop is tolerated, beyond it gated.
	dipped := writeBench(t, "dipped.json", shapedOnly, func(r *bench.Report) {
		r.Policies[0].Utility.DesignEquivPct -= 0.5
	})
	if code, _, _ := runTool(t, "-fail-on-drift", base, dipped); code != exitOK {
		t.Errorf("0.5pp utility dip gated at default 1.0pp threshold (exit %d)", code)
	}
	if code, _, _ := runTool(t, "-fail-on-drift", "-bench-utility-drop", "0.1", base, dipped); code != exitDrift {
		t.Errorf("0.5pp utility dip passed a 0.1pp threshold (exit %d)", code)
	}

	missing := writeBench(t, "missing.json", shapedOnly, func(r *bench.Report) {
		r.Policies = nil
	})
	if code, _, stderr := runTool(t, "-fail-on-drift", base, missing); code != exitDrift ||
		!strings.Contains(stderr, "missing from current") {
		t.Errorf("missing policy not gated (exit %d):\n%s", code, stderr)
	}

	reseeded := writeBench(t, "reseeded.json", shapedOnly, func(r *bench.Report) {
		r.Seed = 99
	})
	if code, _, stderr := runTool(t, "-fail-on-drift", base, reseeded); code != exitDrift ||
		!strings.Contains(stderr, "bench parameters changed") {
		t.Errorf("seed change not gated (exit %d):\n%s", code, stderr)
	}
}

// TestBenchMixedArtifactsFatal: a bench report cannot be diffed against
// a trace or run report.
func TestBenchMixedArtifactsFatal(t *testing.T) {
	benchPath := writeBench(t, "bench.json", shapedOnly, nil)
	tracePath, reportPath := writeRunArtifacts(t)
	for _, pair := range [][2]string{
		{benchPath, reportPath},
		{reportPath, benchPath},
		{benchPath, tracePath},
	} {
		code, _, stderr := runTool(t, pair[0], pair[1])
		if code != exitFatal || !strings.Contains(stderr, "cannot diff") {
			t.Errorf("%v: exit %d, stderr %q", pair, code, stderr)
		}
	}
}

func TestParseSeries(t *testing.T) {
	for _, tc := range []struct {
		id, name string
		labels   map[string]string
	}{
		{"confanon_lines_total", "confanon_lines_total", nil},
		{`confanon_rule_hits_total{rule="I1-address-netmask-pair"}`,
			"confanon_rule_hits_total", map[string]string{"rule": "I1-address-netmask-pair"}},
		{`confanon_leaks_total{kind="asn",severity="confirmed"}`,
			"confanon_leaks_total", map[string]string{"kind": "asn", "severity": "confirmed"}},
		{`x{k="a\"b"}`, "x", map[string]string{"k": `a"b`}},
	} {
		name, labels := parseSeries(tc.id)
		if name != tc.name {
			t.Errorf("parseSeries(%q) name = %q, want %q", tc.id, name, tc.name)
		}
		if len(labels) != len(tc.labels) {
			t.Errorf("parseSeries(%q) labels = %v, want %v", tc.id, labels, tc.labels)
			continue
		}
		for k, v := range tc.labels {
			if labels[k] != v {
				t.Errorf("parseSeries(%q) label %s = %q, want %q", tc.id, k, labels[k], v)
			}
		}
	}
}

// TestPackSwapAttributesRuleDrift: when the two reports disagree on
// their recorded rule-pack identities, the diff reports the pack delta
// as the single drift line and demotes per-rule hit changes to an
// informational attribution note — every hit delta is downstream of the
// pack swap. With equal packs the same hit deltas warn per rule.
func TestPackSwapAttributesRuleDrift(t *testing.T) {
	_, reportPath := writeRunArtifacts(t)
	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep confanon.RunReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) == 0 {
		t.Fatal("run report records no rule packs; pack provenance lost")
	}
	// Double every rule's hits — far beyond the default warn threshold.
	for id := range rep.Counters {
		if strings.HasPrefix(id, "confanon_rule_hits_total") {
			rep.Counters[id] *= 2
		}
	}

	write := func(name string, rep *confanon.RunReport) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), name)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Same packs: the doubled hits warn rule by rule, no pack line.
	samePacks := write("same-packs.json", &rep)
	code, _, stderr := runTool(t, reportPath, samePacks)
	if code != exitOK {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "DRIFT: rule") || strings.Contains(stderr, "rule pack changed") {
		t.Errorf("equal packs: want per-rule drift and no pack line:\n%s", stderr)
	}

	// Swap a pack in: one "rule pack changed" drift line, and the same
	// hit deltas must no longer warn — they print the attribution note.
	rep.Packs = append(rep.Packs, confanon.PackMeta{
		Name: "vendor-extras", Version: "1.2.0",
		Fingerprint: "sha256:deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
	})
	swapped := write("swapped-pack.json", &rep)
	code, stdout, stderr := runTool(t, reportPath, swapped)
	if code != exitOK {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr)
	}
	if n := strings.Count(stderr, "rule pack changed"); n != 1 {
		t.Errorf("want exactly one pack-drift line, got %d:\n%s", n, stderr)
	}
	if !strings.Contains(stderr, "vendor-extras@1.2.0 added (deadbeefdead)") {
		t.Errorf("pack delta missing name/fingerprint:\n%s", stderr)
	}
	if strings.Contains(stderr, "hits changed") {
		t.Errorf("per-rule drift warned despite pack swap:\n%s", stderr)
	}
	if !strings.Contains(stdout, "attributed to the rule-pack change") {
		t.Errorf("no attribution note on suppressed rule drift:\n%s", stdout)
	}
	// The pack swap alone still counts as drift for the hard gate.
	if code, _, _ := runTool(t, "-fail-on-drift", reportPath, swapped); code != exitDrift {
		t.Errorf("-fail-on-drift exit %d, want %d", code, exitDrift)
	}
}
