// Command confportal serves the single-blind clearinghouse of §7: owners
// upload anonymized configurations (screened on arrival), researchers
// browse and fetch them, and comments flow through the blinding function.
//
// Usage:
//
//	confportal -addr :8080 -researcher key1=alice -researcher key2=bob
//
// The API:
//
//	POST /datasets                       {"label": "...", "files": {...}}  (anyone; screened)
//	GET  /datasets                       researcher key (X-API-Key header)
//	GET  /datasets/{id}/files            researcher key
//	GET  /datasets/{id}/files/{name}     researcher key
//	POST /datasets/{id}/comments         researcher key or {"owner_token": ...}
//	GET  /datasets/{id}/comments         researcher key or ?owner_token=...
//	GET  /healthz                        liveness probe (no auth)
//	GET  /metrics                        Prometheus text snapshot (X-Admin-Token; 404 without -admin-token)
//	GET  /debug/pprof/*                  runtime profiler (X-Admin-Token; 404 without -admin-token)
//
// The server is hardened: request bodies are capped (-max-body, with
// per-dataset file-count and size limits beneath it), every connection
// phase has a timeout, handler panics become logged 500s, and SIGINT or
// SIGTERM triggers a graceful shutdown that lets in-flight requests
// finish (-grace).
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"confanon/internal/metrics"
	"confanon/internal/portal"
)

type kvFlag []string

func (k *kvFlag) String() string     { return strings.Join(*k, ",") }
func (k *kvFlag) Set(v string) error { *k = append(*k, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxBody := flag.Int64("max-body", portal.DefaultLimits().MaxBodyBytes, "request body cap in bytes")
	maxFiles := flag.Int("max-files", portal.DefaultLimits().MaxFiles, "files-per-dataset cap")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
	adminToken := flag.String("admin-token", "", "operator secret unlocking GET /metrics and /debug/pprof (X-Admin-Token header); empty keeps both endpoints 404")
	stateDir := flag.String("state-dir", "", "durable per-owner mapping-ledger directory for POST /datasets/raw; a restarted portal replays it (as sensitive as the owners' salts)")
	logJSON := flag.Bool("log-json", false, "emit the structured request log as JSON lines instead of key=value text")
	var researchers kvFlag
	flag.Var(&researchers, "researcher", "researcher account as key=handle (repeatable)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	store := portal.NewStore()
	store.SetSlogger(logger)
	store.SetMetrics(metrics.NewRegistry())
	store.SetAdminToken(*adminToken)
	if *stateDir != "" {
		store.SetStateDir(*stateDir)
		defer func() {
			if err := store.Close(); err != nil {
				logger.Error("closing mapping ledgers", "err", err)
			}
		}()
	}
	limits := portal.DefaultLimits()
	limits.MaxBodyBytes = *maxBody
	limits.MaxFiles = *maxFiles
	store.SetLimits(limits)
	for _, kv := range researchers {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			logger.Error("bad -researcher flag, want key=handle", "flag", kv)
			os.Exit(1)
		}
		store.AddResearcher(parts[0], parts[1])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := portal.NewServer(*addr, store.Handler())
	logger.Info("listening", "addr", *addr, "researchers", len(researchers))
	if err := portal.Run(ctx, srv, *grace); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	logger.Info("shut down cleanly")
}
