// Command confportal serves the single-blind clearinghouse of §7: owners
// upload anonymized configurations (screened on arrival), researchers
// browse and fetch them, and comments flow through the blinding function.
//
// Usage:
//
//	confportal -addr :8080 -researcher key1=alice -researcher key2=bob
//
// The API:
//
//	POST /datasets                       {"label": "...", "files": {...}}  (anyone; screened)
//	GET  /datasets                       researcher key (X-API-Key header)
//	GET  /datasets/{id}/files            researcher key
//	GET  /datasets/{id}/files/{name}     researcher key
//	POST /datasets/{id}/comments         researcher key or {"owner_token": ...}
//	GET  /datasets/{id}/comments         researcher key or ?owner_token=...
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"confanon/internal/portal"
)

type kvFlag []string

func (k *kvFlag) String() string     { return strings.Join(*k, ",") }
func (k *kvFlag) Set(v string) error { *k = append(*k, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	var researchers kvFlag
	flag.Var(&researchers, "researcher", "researcher account as key=handle (repeatable)")
	flag.Parse()

	store := portal.NewStore()
	for _, kv := range researchers {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			log.Fatalf("confportal: bad -researcher %q, want key=handle", kv)
		}
		store.AddResearcher(parts[0], parts[1])
	}
	fmt.Printf("confportal: listening on %s with %d researcher accounts\n", *addr, len(researchers))
	log.Fatal(http.ListenAndServe(*addr, store.Handler()))
}
