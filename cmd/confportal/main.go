// Command confportal serves the single-blind clearinghouse of §7: owners
// upload anonymized configurations (screened on arrival), researchers
// browse and fetch them, and comments flow through the blinding function.
//
// Usage:
//
//	confportal -addr :8080 -researcher key1=alice -researcher key2=bob
//
// The API:
//
//	POST /datasets                       {"label": "...", "files": {...}}  (anyone; screened)
//	GET  /datasets                       researcher key (X-API-Key header)
//	GET  /datasets/{id}/files            researcher key
//	GET  /datasets/{id}/files/{name}     researcher key
//	POST /datasets/{id}/comments         researcher key or {"owner_token": ...}
//	GET  /datasets/{id}/comments         researcher key or ?owner_token=...
//	GET  /healthz                        liveness probe (no auth)
//	GET  /metrics                        Prometheus text snapshot (X-Admin-Token; 404 without -admin-token)
//	GET  /debug/pprof/*                  runtime profiler (X-Admin-Token; 404 without -admin-token)
//
// The server is hardened: request bodies are capped (-max-body, with
// per-dataset file-count and size limits beneath it), every connection
// phase has a timeout, handler panics become logged 500s, and SIGINT or
// SIGTERM triggers a graceful shutdown that lets in-flight requests
// finish (-grace).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"confanon/internal/metrics"
	"confanon/internal/portal"
)

type kvFlag []string

func (k *kvFlag) String() string     { return strings.Join(*k, ",") }
func (k *kvFlag) Set(v string) error { *k = append(*k, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxBody := flag.Int64("max-body", portal.DefaultLimits().MaxBodyBytes, "request body cap in bytes")
	maxFiles := flag.Int("max-files", portal.DefaultLimits().MaxFiles, "files-per-dataset cap")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
	adminToken := flag.String("admin-token", "", "operator secret unlocking GET /metrics and /debug/pprof (X-Admin-Token header); empty keeps both endpoints 404")
	var researchers kvFlag
	flag.Var(&researchers, "researcher", "researcher account as key=handle (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "confportal: ", log.LstdFlags)
	store := portal.NewStore()
	store.SetLogger(logger)
	store.SetMetrics(metrics.NewRegistry())
	store.SetAdminToken(*adminToken)
	limits := portal.DefaultLimits()
	limits.MaxBodyBytes = *maxBody
	limits.MaxFiles = *maxFiles
	store.SetLimits(limits)
	for _, kv := range researchers {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			logger.Fatalf("bad -researcher %q, want key=handle", kv)
		}
		store.AddResearcher(parts[0], parts[1])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := portal.NewServer(*addr, store.Handler())
	logger.Printf("listening on %s with %d researcher accounts", *addr, len(researchers))
	if err := portal.Run(ctx, srv, *grace); err != nil {
		logger.Fatalf("serve: %v", err)
	}
	logger.Printf("shut down cleanly")
}
