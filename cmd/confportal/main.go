// Command confportal serves the single-blind clearinghouse of §7: owners
// upload anonymized configurations (screened on arrival), researchers
// browse and fetch them, and comments flow through the blinding function.
//
// Usage:
//
//	confportal -addr :8080 -researcher key1=alice -researcher key2=bob \
//	           -rule-pack vendor-extras.toml
//
// The API:
//
//	POST /datasets                       {"label": "...", "files": {...}}  (anyone; screened)
//	POST /datasets/raw                   {"salt": "...", "files": {...}}   (synchronous server-side anonymization;
//	                                     optional "rule_packs": ["name", ...] naming operator-registered packs)
//	POST /jobs                           same body as /datasets/raw → 202 {"job_id", "job_token"} (async)
//	GET  /jobs/{id}                      job status + progress (X-Job-Token header)
//	DELETE /jobs/{id}                    cancel a queued or running job (X-Job-Token header)
//	GET  /datasets                       researcher key (X-API-Key header)
//	GET  /datasets/{id}/files            researcher key
//	GET  /datasets/{id}/files/{name}     researcher key
//	POST /datasets/{id}/comments         researcher key or {"owner_token": ...}
//	GET  /datasets/{id}/comments         researcher key or ?owner_token=...
//	GET  /healthz                        liveness probe (no auth)
//	GET  /readyz                         routing probe: 503 during startup replay and graceful drain
//	GET  /metrics                        Prometheus text snapshot (X-Admin-Token; 404 without -admin-token)
//	GET  /debug/pprof/*                  runtime profiler (X-Admin-Token; 404 without -admin-token)
//
// The server is hardened: request bodies are capped (-max-body, with
// per-dataset file-count and size limits beneath it), every connection
// phase has a timeout, handler panics become logged 500s, and SIGINT or
// SIGTERM triggers a graceful drain: /readyz flips not-ready, the
// listener keeps serving for -drain-notice so load balancers stop
// routing, in-flight requests get -grace, and running jobs get
// -drain-jobs to finish (stragglers are checkpointed resumably — with
// -state-dir their committed progress survives and the next start
// resumes them). The job queue is bounded (-job-workers, -job-queue,
// -job-timeout) with per-owner fairness (-owner-jobs, -owner-rate);
// refusals answer 429/503 with a Retry-After computed from queue depth.
//
// Rule packs are an operator allowlist: each -rule-pack FILE is
// validated and registered at startup (a bad pack is a startup error),
// and clients select packs per upload or job by registered name only —
// never by content. Unknown names are refused with 422 at submit time.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"confanon"
	"confanon/internal/jobs"
	"confanon/internal/metrics"
	"confanon/internal/portal"
)

type kvFlag []string

func (k *kvFlag) String() string     { return strings.Join(*k, ",") }
func (k *kvFlag) Set(v string) error { *k = append(*k, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxBody := flag.Int64("max-body", portal.DefaultLimits().MaxBodyBytes, "request body cap in bytes")
	maxFiles := flag.Int("max-files", portal.DefaultLimits().MaxFiles, "files-per-dataset cap")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
	drainNotice := flag.Duration("drain-notice", 2*time.Second, "how long /readyz answers not-ready before the listener stops (lets load balancers stop routing)")
	drainJobs := flag.Duration("drain-jobs", 30*time.Second, "how long running jobs get to finish on shutdown before being checkpointed for resume")
	adminToken := flag.String("admin-token", "", "operator secret unlocking GET /metrics and /debug/pprof (X-Admin-Token header); empty keeps both endpoints 404")
	stateDir := flag.String("state-dir", "", "durable per-owner mapping-ledger and job-record directory; a restarted portal replays ledgers and resumes unfinished jobs (as sensitive as the owners' salts)")
	jobWorkers := flag.Int("job-workers", 2, "async job worker-pool size")
	jobQueue := flag.Int("job-queue", 64, "async job queue capacity; beyond it POST /jobs answers 429 + Retry-After")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
	ownerJobs := flag.Int("owner-jobs", 4, "per-owner in-flight job quota (0 = unlimited)")
	ownerRate := flag.Float64("owner-rate", 30, "per-owner job submissions per minute, bucket one minute deep (0 = unlimited)")
	logJSON := flag.Bool("log-json", false, "emit the structured request log as JSON lines instead of key=value text")
	var researchers kvFlag
	flag.Var(&researchers, "researcher", "researcher account as key=handle (repeatable)")
	var rulePacks kvFlag
	flag.Var(&rulePacks, "rule-pack", "declarative rule-pack file to register on the allowlist; uploads and jobs may reference registered packs by name (repeatable)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	store := portal.NewStore()
	store.SetSlogger(logger)
	store.SetMetrics(metrics.NewRegistry())
	store.SetAdminToken(*adminToken)
	if *stateDir != "" {
		store.SetStateDir(*stateDir)
	}
	limits := portal.DefaultLimits()
	limits.MaxBodyBytes = *maxBody
	limits.MaxFiles = *maxFiles
	store.SetLimits(limits)
	for _, kv := range researchers {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			logger.Error("bad -researcher flag, want key=handle", "flag", kv)
			os.Exit(1)
		}
		store.AddResearcher(parts[0], parts[1])
	}
	for _, path := range rulePacks {
		b, err := os.ReadFile(path)
		if err != nil {
			logger.Error("reading rule pack", "path", path, "err", err)
			os.Exit(1)
		}
		p, err := confanon.LoadRulePack(b)
		if err != nil {
			logger.Error("parsing rule pack", "path", path, "err", err)
			os.Exit(1)
		}
		if err := store.RegisterRulePack(p); err != nil {
			logger.Error("registering rule pack", "path", path, "err", err)
			os.Exit(1)
		}
		logger.Info("rule pack registered", "name", p.Name, "version", p.Version, "fingerprint", p.Fingerprint)
	}

	// Start the job queue (resuming any jobs a previous process left
	// behind) before the listener: /readyz answers ready only once the
	// startup replay is done.
	if err := store.StartJobs(jobs.Config{
		Workers:          *jobWorkers,
		Capacity:         *jobQueue,
		JobTimeout:       *jobTimeout,
		PerOwnerInFlight: *ownerJobs,
		OwnerRatePerMin:  *ownerRate,
	}); err != nil {
		logger.Error("starting job queue", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := portal.NewServer(*addr, store.Handler())
	logger.Info("listening", "addr", *addr, "researchers", len(researchers))
	err := portal.RunWithDrain(ctx, srv, *grace, *drainNotice, func() {
		logger.Info("drain: readyz now not-ready")
		store.BeginDrain()
	})
	if err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// Listener is down; now drain the job queue (running jobs finish or
	// are checkpointed resumably) and only then close the ledgers.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainJobs)
	if err := store.DrainJobs(drainCtx); err != nil {
		logger.Warn("job drain hit its deadline; unfinished jobs checkpointed for resume", "err", err)
	}
	cancel()
	if err := store.Close(); err != nil {
		logger.Error("closing mapping ledgers", "err", err)
		os.Exit(1)
	}
	logger.Info("shut down cleanly")
}
