// Command confexp regenerates the paper-vs-measured report recorded in
// EXPERIMENTS.md: every experiment E1–E9 and ablation A1–A3 from DESIGN.md.
//
// Usage:
//
//	confexp           # reduced scale (seconds)
//	confexp -full     # paper scale (minutes; E9 runs ~4.3M lines)
package main

import (
	"flag"
	"fmt"
	"time"

	"confanon/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's full scale")
	flag.Parse()

	scale := 0.25
	e3nets, e3routers := 60, 8
	e9lines := 200000
	if *full {
		scale = 1.0
		e3nets, e3routers = 173, 12
		e9lines = 4300000
	}

	run := func(name string, f func() fmt.Stringer) {
		start := time.Now()
		r := f()
		fmt.Printf("%s   [%s]\n\n", r, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("confexp: reproduction report (scale=%.2f)\n\n", scale)
	run("E1", func() fmt.Stringer { return experiments.E1Dataset(scale) })
	run("E2", func() fmt.Stringer { return experiments.E2Figure1() })
	run("E3", func() fmt.Stringer { return experiments.E3Comments(e3nets, e3routers) })
	run("E4", func() fmt.Stringer { return experiments.E4Regexps(scale) })
	run("E5", func() fmt.Stringer { return experiments.E5Suite1(scale) })
	run("E6", func() fmt.Stringer { return experiments.E6Suite2(scale) })
	run("E7", func() fmt.Stringer { return experiments.E7LeakIteration(8) })
	run("E8", func() fmt.Stringer { return experiments.E8Fingerprint(scale) })
	run("E9", func() fmt.Stringer { return experiments.E9Throughput(e9lines) })
	run("E10", func() fmt.Stringer { return experiments.E10JunOS(10) })
	run("A1", func() fmt.Stringer { return experiments.A1IPSchemes(20000) })
	run("A2", func() fmt.Stringer { return experiments.A2RegexForms() })
	run("A3", func() fmt.Stringer { return experiments.A3Segmentation() })
}
