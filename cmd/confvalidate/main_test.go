package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, _ := io.ReadAll(r)
	return string(b)
}

func TestRunCheckPacks(t *testing.T) {
	examples := filepath.Join("..", "..", "examples", "rulepacks")
	good := []string{
		filepath.Join(examples, "mac-addresses.json"),
		filepath.Join(examples, "arista-eos.toml"),
	}
	var code int
	out := captureStdout(t, func() { code = runCheckPacks(good) })
	if code != 0 {
		t.Fatalf("shipped example packs fail -check-pack (exit %d):\n%s", code, out)
	}
	for _, want := range []string{"mac-addresses.json: OK", "arista-eos.toml: OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.toml")
	if err := os.WriteFile(bad, []byte("schema = \"confanon.rulepack/v1\"\nname = \"bad\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() { code = runCheckPacks([]string{bad}) })
	if code != 1 {
		t.Errorf("malformed pack: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("malformed pack output lacks FAIL:\n%s", out)
	}

	// One bad file fails the whole invocation even when others pass.
	out = captureStdout(t, func() { code = runCheckPacks(append(good, bad)) })
	if code != 1 {
		t.Errorf("mixed good+bad: exit %d, want 1:\n%s", code, out)
	}
}
