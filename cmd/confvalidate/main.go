// Command confvalidate runs the paper's two validation suites (§5) over a
// pre-anonymization and a post-anonymization directory.
//
// Usage:
//
//	confvalidate -pre DIR -post DIR
//	confvalidate -check-pack FILE [-check-pack FILE]...
//
// Suite 1 compares independent characteristics (BGP speaker count,
// interface count, subnet-size structure, policy object counts); suite 2
// extracts the routing design from both corpora and compares canonical
// signatures. Exit status 0 means both suites pass.
//
// With -check-pack the tool instead validates declarative rule-pack
// files (JSON or TOML, schema confanon.rulepack/v1) without running any
// anonymization: each pack must parse, pass every document-level check,
// and be mergeable against this build's built-in inventory. Exit 0 when
// every pack checks out, 1 when any fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"confanon"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		preDir  = flag.String("pre", "", "directory of original configs (required)")
		postDir = flag.String("post", "", "directory of anonymized configs (required)")
		verbose = flag.Bool("v", false, "print design summaries")
	)
	var checkPacks multiFlag
	flag.Var(&checkPacks, "check-pack", "rule-pack file to validate instead of running the suites (repeatable)")
	flag.Parse()

	if len(checkPacks) > 0 {
		if *preDir != "" || *postDir != "" {
			fmt.Fprintln(os.Stderr, "confvalidate: -check-pack does not combine with -pre/-post")
			os.Exit(2)
		}
		os.Exit(runCheckPacks(checkPacks))
	}

	if *preDir == "" || *postDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	pre, err := readDir(*preDir)
	if err != nil {
		fatal(err)
	}
	post, err := readDir(*postDir)
	if err != nil {
		fatal(err)
	}
	rep := confanon.Validate(pre, post)
	if len(rep.Suite1) == 0 {
		fmt.Println("suite 1 (independent characteristics): PASS")
	} else {
		fmt.Println("suite 1 (independent characteristics): FAIL")
		for _, d := range rep.Suite1 {
			fmt.Println("  ", d)
		}
	}
	if rep.Suite2.OK() {
		fmt.Println("suite 2 (routing design extraction):   PASS")
	} else {
		fmt.Println("suite 2 (routing design extraction):   FAIL")
	}
	if *verbose {
		fmt.Println("pre design: ", rep.Suite2.PreSummary)
		fmt.Println("post design:", rep.Suite2.PostSummary)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// runCheckPacks validates each pack file in isolation — parse, document
// checks, engine mergeability — and reports per file. It does not check
// the packs against each other: cross-pack conflicts are a load-order
// property of a particular run, not of either document.
func runCheckPacks(paths []string) int {
	code := 0
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "confvalidate: %v\n", err)
			code = 1
			continue
		}
		p, err := confanon.LoadRulePack(b)
		if err != nil {
			fmt.Printf("%s: FAIL (parse: %v)\n", path, err)
			code = 1
			continue
		}
		if err := confanon.CheckRulePack(p); err != nil {
			fmt.Printf("%s: FAIL (merge: %v)\n", path, err)
			code = 1
			continue
		}
		m := p.Meta()
		fmt.Printf("%s: OK %s, %d rules\n", path, m, len(p.Rules))
		fmt.Printf("  fingerprint %s\n", m.Fingerprint)
	}
	return code
}

func readDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(b)
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confvalidate:", err)
	os.Exit(1)
}
