// Command confvalidate runs the paper's two validation suites (§5) over a
// pre-anonymization and a post-anonymization directory.
//
// Usage:
//
//	confvalidate -pre DIR -post DIR
//
// Suite 1 compares independent characteristics (BGP speaker count,
// interface count, subnet-size structure, policy object counts); suite 2
// extracts the routing design from both corpora and compares canonical
// signatures. Exit status 0 means both suites pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"confanon"
)

func main() {
	var (
		preDir  = flag.String("pre", "", "directory of original configs (required)")
		postDir = flag.String("post", "", "directory of anonymized configs (required)")
		verbose = flag.Bool("v", false, "print design summaries")
	)
	flag.Parse()
	if *preDir == "" || *postDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	pre, err := readDir(*preDir)
	if err != nil {
		fatal(err)
	}
	post, err := readDir(*postDir)
	if err != nil {
		fatal(err)
	}
	rep := confanon.Validate(pre, post)
	if len(rep.Suite1) == 0 {
		fmt.Println("suite 1 (independent characteristics): PASS")
	} else {
		fmt.Println("suite 1 (independent characteristics): FAIL")
		for _, d := range rep.Suite1 {
			fmt.Println("  ", d)
		}
	}
	if rep.Suite2.OK() {
		fmt.Println("suite 2 (routing design extraction):   PASS")
	} else {
		fmt.Println("suite 2 (routing design extraction):   FAIL")
	}
	if *verbose {
		fmt.Println("pre design: ", rep.Suite2.PreSummary)
		fmt.Println("post design:", rep.Suite2.PostSummary)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func readDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(b)
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confvalidate:", err)
	os.Exit(1)
}
