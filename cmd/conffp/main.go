// Command conffp evaluates the fingerprinting attacks of §6 over a
// population of generated networks: how unique are subnet-size and
// peering-structure fingerprints, and how many networks carry internal
// compartmentalization that defeats insider probing?
//
// Usage:
//
//	conffp -networks 31 -seed 1
package main

import (
	"flag"
	"fmt"

	"confanon/internal/config"
	"confanon/internal/fingerprint"
	"confanon/internal/netgen"
)

func main() {
	var (
		count = flag.Int("networks", 31, "population size")
		seed  = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	var subnetKeys, peeringKeys []string
	compartmentalized := 0
	for i := 0; i < *count; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{
			Seed: *seed + int64(i), Kind: kind,
			Compartmentalized: i%3 == 0, // roughly 10 of 31, as in the paper
		})
		var cfgs []*config.Config
		for _, text := range n.RenderAll() {
			cfgs = append(cfgs, config.Parse(text))
		}
		subnetKeys = append(subnetKeys, fingerprint.SubnetOf(cfgs).Key())
		peeringKeys = append(peeringKeys, fingerprint.PeeringOf(cfgs).Key())
		if fingerprint.Compartmentalized(cfgs) {
			compartmentalized++
		}
	}
	fmt.Println("subnet-size fingerprint: ", fingerprint.Analyze(subnetKeys))
	fmt.Println("peering fingerprint:     ", fingerprint.Analyze(peeringKeys))
	fmt.Printf("insider-resistant (compartmentalized): %d of %d networks\n", compartmentalized, *count)
}
