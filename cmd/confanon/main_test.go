package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confanon"
)

const cleanConf = "hostname r9\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n"

// leakyConf seeds the §6.1 leak: the second 7018 sits in a context no
// rule recognizes and survives anonymization.
const leakyConf = "router bgp 7018\nodd command with 7018 tail\n"

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

func writeInput(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, text := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-salt", "s"); code != exitUsage {
		t.Errorf("missing dirs: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-bogus-flag"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
}

func TestRunCleanCorpusExitsZero(t *testing.T) {
	in := writeInput(t, map[string]string{"r1.conf": cleanConf})
	out := t.TempDir()
	code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out, "-rename=false")
	if code != exitClean {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitClean, stderr)
	}
	if _, err := os.Stat(filepath.Join(out, "r1.conf")); err != nil {
		t.Errorf("output file missing: %v", err)
	}
	if !strings.Contains(stderr, "leak report: clean") {
		t.Errorf("stderr lacks clean leak report:\n%s", stderr)
	}
}

func TestRunStrictQuarantinesExactlyLeakingFile(t *testing.T) {
	in := writeInput(t, map[string]string{"clean.conf": cleanConf, "leaky.conf": leakyConf})
	out := t.TempDir()
	qdir := filepath.Join(t.TempDir(), "quarantine")
	code, _, stderr := runCLI(t,
		"-salt", "s", "-in", in, "-out", out, "-rename=false",
		"-strict", "-quarantine", qdir)
	if code != exitWithheld {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitWithheld, stderr)
	}
	if _, err := os.Stat(filepath.Join(out, "clean.conf")); err != nil {
		t.Errorf("clean file not published: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "leaky.conf")); err == nil {
		t.Error("quarantined file was published")
	}
	got, err := os.ReadFile(filepath.Join(qdir, "leaky.conf"))
	if err != nil {
		t.Fatalf("original not copied to quarantine: %v", err)
	}
	if string(got) != leakyConf {
		t.Error("quarantined copy is not the original bytes")
	}
	if fi, err := os.Stat(filepath.Join(qdir, "leaky.conf")); err == nil && fi.Mode().Perm() != 0o600 {
		t.Errorf("quarantined copy mode %v, want 0600", fi.Mode().Perm())
	}
	if !strings.Contains(stderr, "quarantined leaky.conf") {
		t.Errorf("stderr lacks quarantine notice:\n%s", stderr)
	}
}

func TestRunNonStrictLeakReportStillExitsOne(t *testing.T) {
	in := writeInput(t, map[string]string{"leaky.conf": leakyConf})
	out := t.TempDir()
	code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out, "-rename=false")
	if code != exitWithheld {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitWithheld, stderr)
	}
	// Fail-open legacy behavior: the file IS published, the report warns.
	if _, err := os.Stat(filepath.Join(out, "leaky.conf")); err != nil {
		t.Errorf("non-strict mode must still publish: %v", err)
	}
}

func TestRunStreamMode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-salt", "s", "-stateless", "-"},
		strings.NewReader(cleanConf), &out, &errb)
	if code != exitClean {
		t.Fatalf("exit %d; stderr:\n%s", code, errb.String())
	}
	if out.Len() == 0 || strings.Contains(out.String(), "r9") {
		t.Errorf("stream output wrong: %q", out.String())
	}
}

func TestRunStreamStrictWithholdsLeakyOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-salt", "s", "-stateless", "-strict", "-"},
		strings.NewReader(leakyConf), &out, &errb)
	if code != exitWithheld {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitWithheld, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("quarantined stream leaked %d bytes to stdout", out.Len())
	}
	if !strings.Contains(errb.String(), "quarantined") {
		t.Errorf("stderr lacks quarantine reason:\n%s", errb.String())
	}
}

func TestRunCancelledContextIsFatal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := writeInput(t, map[string]string{"r1.conf": cleanConf})
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-salt", "s", "-in", in, "-out", t.TempDir()}, strings.NewReader(""), &out, &errb)
	if code != exitFatal {
		t.Errorf("exit %d, want %d", code, exitFatal)
	}
}

// TestRunMetricsOut: -metrics-out writes a run report whose headline
// counts match the run and whose counter snapshot carries the engine
// series.
func TestRunMetricsOut(t *testing.T) {
	in := writeInput(t, map[string]string{"r1.conf": cleanConf, "r2.conf": cleanConf})
	out := t.TempDir()
	reportPath := filepath.Join(t.TempDir(), "report.json")
	code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out, "-metrics-out", reportPath)
	if code != exitClean {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitClean, stderr)
	}
	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep confanon.RunReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != confanon.RunReportSchema {
		t.Errorf("schema %q, want %q", rep.Schema, confanon.RunReportSchema)
	}
	if rep.FilesOK != 2 || rep.FilesFailed != 0 || rep.FilesQuarantined != 0 {
		t.Errorf("outcome counts: %+v", rep)
	}
	if rep.Files != 2 || rep.Lines == 0 {
		t.Errorf("headline counters: files=%d lines=%d", rep.Files, rep.Lines)
	}
	if got := rep.Counters["confanon_files_processed_total"]; got != 2 {
		t.Errorf("counter snapshot files_processed = %v, want 2", got)
	}
	if got := rep.Counters[`confanon_batch_files_total{status="ok"}`]; got != 2 {
		t.Errorf("counter snapshot batch ok = %v, want 2", got)
	}
}

// TestRunMetricsOutStreamMode: the stream path writes a report too.
func TestRunMetricsOutStreamMode(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run(context.Background(),
		[]string{"-salt", "s", "-stateless", "-metrics-out", reportPath, "-"},
		strings.NewReader(cleanConf), &out, &errb)
	if code != exitClean {
		t.Fatalf("exit %d; stderr:\n%s", code, errb.String())
	}
	var rep confanon.RunReport
	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Files != 1 || rep.Counters["confanon_files_processed_total"] != 1 {
		t.Errorf("stream report: files=%d counters=%v", rep.Files, rep.Counters["confanon_files_processed_total"])
	}
	if rep.Counters["confanon_stream_bytes_in_total"] == 0 {
		t.Error("stream bytes-in counter is zero")
	}
}

// TestRunTraceOut: -trace-out writes a parseable confanon.trace/v1
// JSONL file whose span tree and ledger cover the run.
func TestRunTraceOut(t *testing.T) {
	in := writeInput(t, map[string]string{"r1.conf": cleanConf, "r2.conf": cleanConf})
	out := t.TempDir()
	tracePath := filepath.Join(t.TempDir(), "run.trace.jsonl")
	code, _, stderr := runCLI(t,
		"-salt", "s", "-in", in, "-out", out, "-rename=false", "-trace-out", tracePath)
	if code != exitClean {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitClean, stderr)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tf, err := confanon.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if tf.Schema != confanon.TraceSchema {
		t.Errorf("schema %q, want %q", tf.Schema, confanon.TraceSchema)
	}
	fileSpans := map[string]bool{}
	for _, s := range tf.Spans {
		if s.Kind == "file" {
			fileSpans[s.Name] = true
		}
	}
	if !fileSpans["r1.conf"] || !fileSpans["r2.conf"] {
		t.Errorf("trace lacks file spans: %v", fileSpans)
	}
	if len(tf.Ledger) == 0 {
		t.Error("trace carries no ledger entries")
	}
	// The ledger must not leak cleartext: the one sensitive address in
	// the input never appears in an Out field.
	for _, d := range tf.Ledger {
		if strings.Contains(d.Out, "12.1.2.3") {
			t.Errorf("cleartext address in ledger entry: %+v", d)
		}
	}
}

// TestRunExplain: the -explain query mode finds the decision chain for
// a traced line, reports misses distinctly, and validates its spec.
func TestRunExplain(t *testing.T) {
	in := writeInput(t, map[string]string{"r1.conf": cleanConf})
	tracePath := filepath.Join(t.TempDir(), "run.trace.jsonl")
	if code, _, stderr := runCLI(t,
		"-salt", "s", "-in", in, "-out", t.TempDir(), "-rename=false",
		"-trace-out", tracePath); code != exitClean {
		t.Fatalf("trace run failed: %s", stderr)
	}

	// Line 3 holds the ip address statement: at least one ip decision.
	code, stdout, stderr := runCLI(t, "-explain", "r1.conf:3", tracePath)
	if code != exitClean {
		t.Fatalf("explain exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "class=ip") || !strings.Contains(stdout, "rule=") {
		t.Errorf("explain output lacks decisions:\n%s", stdout)
	}
	if strings.Contains(stdout, "12.1.2.3") {
		t.Errorf("explain output leaks cleartext:\n%s", stdout)
	}

	if code, _, _ = runCLI(t, "-explain", "r1.conf:999", tracePath); code != exitWithheld {
		t.Errorf("miss: exit %d, want %d", code, exitWithheld)
	}
	if code, _, _ = runCLI(t, "-explain", "no-colon", tracePath); code != exitUsage {
		t.Errorf("bad spec: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ = runCLI(t, "-explain", "r1.conf:zero", tracePath); code != exitUsage {
		t.Errorf("bad line: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ = runCLI(t, "-explain", "r1.conf:3", filepath.Join(t.TempDir(), "absent")); code != exitFatal {
		t.Errorf("missing trace file: exit %d, want %d", code, exitFatal)
	}
}

// TestRunTraceOutStreamMode: the stream path traces too, under the
// synthetic "stdin" file name.
func TestRunTraceOutStreamMode(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.trace.jsonl")
	var out, errb bytes.Buffer
	code := run(context.Background(),
		[]string{"-salt", "s", "-stateless", "-trace-out", tracePath, "-"},
		strings.NewReader(cleanConf), &out, &errb)
	if code != exitClean {
		t.Fatalf("exit %d; stderr:\n%s", code, errb.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tf, err := confanon.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.FileDecisions("stdin")) == 0 {
		t.Error("stream trace has no decisions for stdin")
	}
}

// readOutputs loads every file in an output directory.
func readOutputs(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

func TestRunStateDirKeepsRunsConsistent(t *testing.T) {
	// Two runs over the same corpus through a shared -state-dir must be
	// byte-identical: the second run replays the first run's ledger.
	files := map[string]string{"r1.conf": cleanConf, "r2.conf": "hostname r2\n ip address 12.1.2.99 255.255.255.0\n"}
	state := t.TempDir()
	in := writeInput(t, files)
	out1, out2 := t.TempDir(), t.TempDir()
	if code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out1, "-rename=false", "-state-dir", state); code != exitClean {
		t.Fatalf("run 1: exit %d; stderr:\n%s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out2, "-rename=false", "-state-dir", state); code != exitClean {
		t.Fatalf("run 2: exit %d; stderr:\n%s", code, stderr)
	}
	a, b := readOutputs(t, out1), readOutputs(t, out2)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("state-dir run diverged on %s", name)
		}
	}
	// A different salt must be refused outright.
	if code, _, stderr := runCLI(t, "-salt", "other", "-in", in, "-out", t.TempDir(), "-state-dir", state); code != exitFatal {
		t.Errorf("wrong salt against state dir: exit %d, want %d; stderr:\n%s", code, exitFatal, stderr)
	}
}

func TestRunIncremental(t *testing.T) {
	// -incremental without -state-dir is a usage error.
	if code, _, _ := runCLI(t, "-salt", "s", "-in", t.TempDir(), "-out", t.TempDir(), "-incremental"); code != exitUsage {
		t.Errorf("-incremental without -state-dir: exit %d, want %d", code, exitUsage)
	}

	files := map[string]string{
		"r1.conf": cleanConf,
		"r2.conf": "hostname r2\ninterface Serial0\n ip address 12.9.2.1 255.255.255.252\n",
	}
	state := t.TempDir()
	in := writeInput(t, files)
	if code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", t.TempDir(), "-rename=false",
		"-state-dir", state, "-incremental"); code != exitClean {
		t.Fatalf("recording run: exit %d; stderr:\n%s", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(state, cacheFileName)); err != nil {
		t.Fatalf("recording run wrote no cache: %v", err)
	}

	// Mutate one file; the other must be served from the cache and the
	// output must equal a full re-run from the same state.
	files2 := map[string]string{
		"r1.conf": files["r1.conf"],
		"r2.conf": files["r2.conf"] + "interface Serial1\n ip address 12.9.3.1 255.255.255.252\n",
	}
	in2 := writeInput(t, files2)
	incOut := t.TempDir()
	code, stdout, stderr := runCLI(t, "-salt", "s", "-in", in2, "-out", incOut, "-rename=false",
		"-state-dir", state, "-incremental")
	if code != exitClean {
		t.Fatalf("incremental run: exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "incremental: 1 files reused, 1 resumed") {
		t.Errorf("incremental summary missing or wrong:\n%s", stdout)
	}

	// Full re-run against a copy of the same ledger (every mapping the
	// incremental run committed replays identically; no -incremental, so
	// every line is reprocessed from scratch).
	state2 := t.TempDir()
	entries, err := os.ReadDir(state)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(state, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(state2, e.Name()), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	fullOut := t.TempDir()
	if code, _, stderr := runCLI(t, "-salt", "s", "-in", in2, "-out", fullOut, "-rename=false",
		"-state-dir", state2, "-workers", "4"); code != exitClean {
		t.Fatalf("full re-run: exit %d; stderr:\n%s", code, stderr)
	}
	inc, full := readOutputs(t, incOut), readOutputs(t, fullOut)
	if len(inc) != len(full) {
		t.Fatalf("output counts differ: incremental %d, full %d", len(inc), len(full))
	}
	for name := range full {
		if inc[name] != full[name] {
			t.Errorf("incremental output differs from full re-run on %s:\n inc: %q\nfull: %q", name, inc[name], full[name])
		}
	}
}

func TestRunMappingFileWrittenAtomically(t *testing.T) {
	// After a run the -mapping path must hold a complete snapshot and no
	// temp artifacts may linger next to it.
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "map.state")
	in := writeInput(t, map[string]string{"r1.conf": cleanConf})
	if code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", t.TempDir(), "-mapping", mapPath); code != exitClean {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr)
	}
	if _, err := os.Stat(mapPath); err != nil {
		t.Fatalf("mapping file missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp artifact left behind: %s", e.Name())
		}
	}
}

// TestRunRulePackFlag: -rule-pack loads a declarative pack on top of
// the built-in inventory (here: the shipped MAC token class), and a
// pack file that does not parse is a clean fatal, not a panic.
func TestRunRulePackFlag(t *testing.T) {
	packPath := filepath.Join("..", "..", "examples", "rulepacks", "mac-addresses.json")
	in := writeInput(t, map[string]string{
		"r1.conf": cleanConf + "interface Ethernet1\n mac-address 00:1c:73:aa:bb:01\n",
	})
	out := t.TempDir()
	code, _, stderr := runCLI(t, "-salt", "s", "-in", in, "-out", out,
		"-rename=false", "-rule-pack", packPath)
	if code != exitClean {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitClean, stderr)
	}
	b, err := os.ReadFile(filepath.Join(out, "r1.conf"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "00:1c:73:aa:bb:01") {
		t.Errorf("original MAC survives with the MAC pack loaded:\n%s", b)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-salt", "s", "-in", in, "-out", t.TempDir(), "-rule-pack", bad)
	if code != exitFatal || !strings.Contains(stderr, "rule-pack") {
		t.Errorf("bad pack: exit %d, stderr %q", code, stderr)
	}
}
