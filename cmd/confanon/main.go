// Command confanon anonymizes a directory of router configuration files.
//
// Usage:
//
//	confanon -salt SECRET -in DIR -out DIR [-minimal] [-keep-comments] [-leak-report]
//	cat r1-confg | confanon -salt SECRET - > r1-anon
//
// Every file in the input directory is treated as one router's
// configuration of a single network; all files are prescanned before any
// is rewritten so the mapping is consistent and subnet-address
// preservation holds across files. With -leak-report the tool prints the
// §6.1 leak-highlighting report to stderr after anonymizing; dangerous
// tokens can then be added with repeated -sensitive flags and the tool
// rerun, closing leaks iteratively.
//
// With "-" as the sole argument the tool streams one configuration from
// stdin to stdout instead; add -stateless for constant-memory streaming
// (the Crypto-PAn IP scheme needs no prescan, so nothing is buffered).
// -rule-stats prints the engine's per-rule hit and wall-time table in
// either mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"confanon"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		salt     = flag.String("salt", "", "owner secret keying every mapping (required)")
		inDir    = flag.String("in", "", "directory of configuration files (required)")
		outDir   = flag.String("out", "", "output directory (required)")
		minimal  = flag.Bool("minimal", false, "emit minimal-DFA regexps instead of alternations")
		keep     = flag.Bool("keep-comments", false, "retain comments (measurement only; unsafe)")
		leaks    = flag.Bool("leak-report", true, "print the leak-highlighting report to stderr")
		statsOut  = flag.Bool("stats", false, "print anonymization statistics to stderr")
		ruleStats = flag.Bool("rule-stats", false, "print the per-rule hit count and wall-time table to stderr")
		stateless = flag.Bool("stateless", false, "use the Crypto-PAn IP scheme: no shared mapping state, constant-memory streaming")
		rename    = flag.Bool("rename", true, "hash output file names (they are usually hostname-derived)")
		mapFile   = flag.String("mapping", "", "IP-mapping state file: loaded if present, saved after the run (keeps later runs consistent)")
	)
	var sensitive multiFlag
	flag.Var(&sensitive, "sensitive", "extra sensitive token to anonymize everywhere (repeatable)")
	flag.Parse()

	streamMode := flag.NArg() == 1 && flag.Arg(0) == "-"
	if *salt == "" || (!streamMode && (*inDir == "" || *outDir == "")) {
		flag.Usage()
		os.Exit(2)
	}
	opts := confanon.Options{Salt: []byte(*salt), KeepComments: *keep, StatelessIP: *stateless}
	if *minimal {
		opts.Style = confanon.Minimal
	}
	a := confanon.New(opts)
	if *mapFile != "" {
		if snap, err := os.ReadFile(*mapFile); err == nil {
			if err := a.LoadMapping(snap); err != nil {
				fatal(fmt.Errorf("loading %s: %w", *mapFile, err))
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	for _, tok := range sensitive {
		a.AddRule(tok)
	}

	if streamMode {
		if err := a.Stream(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		if *mapFile != "" {
			if err := os.WriteFile(*mapFile, a.SaveMapping(), 0o600); err != nil {
				fatal(err)
			}
		}
		printStats(a.Stats(), *statsOut, *ruleStats)
		return
	}

	files, err := readDir(*inDir)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no files in %s", *inDir))
	}
	post := a.Corpus(files)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for name, text := range post {
		outName := name
		if *rename {
			outName = a.RenameFile(name)
		}
		if err := os.WriteFile(filepath.Join(*outDir, outName), []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("anonymized %d files (%d lines) into %s\n", len(post), a.Stats().Lines, *outDir)
	if *mapFile != "" {
		if err := os.WriteFile(*mapFile, a.SaveMapping(), 0o600); err != nil {
			fatal(err)
		}
	}

	if *leaks {
		report := a.Leaks(post)
		real := 0
		for _, l := range report {
			if !l.LikelyFalsePositive {
				real++
			}
		}
		switch {
		case len(report) == 0:
			fmt.Fprintln(os.Stderr, "leak report: clean")
		case real == 0:
			fmt.Fprintf(os.Stderr, "leak report: %d likely false positives, no confirmed leaks\n", len(report))
		default:
			fmt.Fprintf(os.Stderr, "leak report: %d suspicious tokens (add -sensitive rules and rerun)\n", real)
			for _, l := range report {
				fmt.Fprintln(os.Stderr, "  ", l)
			}
			os.Exit(1)
		}
	}
	printStats(a.Stats(), *statsOut, *ruleStats)
}

func printStats(s confanon.Stats, aggregate, perRule bool) {
	if aggregate {
		fmt.Fprintf(os.Stderr,
			"stats: lines=%d words=%d comment-words-removed=%d hashed=%d passed=%d ips=%d asns=%d communities=%d regexps-rewritten=%d\n",
			s.Lines, s.WordsTotal, s.CommentWordsRemoved, s.TokensHashed, s.TokensPassed,
			s.IPsMapped, s.ASNsMapped, s.CommunitiesMapped, s.RegexpsRewritten)
	}
	if perRule {
		fmt.Fprintf(os.Stderr, "%-34s %8s %12s\n", "rule", "hits", "time")
		var hits int
		var total time.Duration
		for _, info := range confanon.Rules() {
			h, d := s.RuleHits[info.ID], s.RuleTime[info.ID]
			if h == 0 && d == 0 {
				continue
			}
			fmt.Fprintf(os.Stderr, "%-34s %8d %12s\n", info.ID, h, d.Round(time.Microsecond))
			hits += h
			total += d
		}
		fmt.Fprintf(os.Stderr, "%-34s %8d %12s\n", "total", hits, total.Round(time.Microsecond))
	}
}

func readDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(b)
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confanon:", err)
	os.Exit(1)
}
