// Command confanon anonymizes a directory of router configuration files.
//
// Usage:
//
//	confanon -salt SECRET -in DIR -out DIR [-workers N] [-strict] [-quarantine DIR] [-minimal] [-keep-comments] [-leak-report] [-rule-pack FILE]...
//	confanon -salt SECRET -in DIR -out DIR -state-dir DIR [-incremental]
//	cat r1-confg | confanon -salt SECRET - > r1-anon
//
// Every file in the input directory is treated as one router's
// configuration of a single network; all files are prescanned before any
// is rewritten so the mapping is consistent and subnet-address
// preservation holds across files. With -workers N the corpus is
// anonymized on N parallel workers; the output is byte-identical to a
// single-worker run under either IP scheme. With -leak-report the tool prints the
// §6.1 leak-highlighting report to stderr after anonymizing; dangerous
// tokens can then be added with repeated -sensitive flags and the tool
// rerun, closing leaks iteratively. Repeated -rule-pack flags load
// declarative rule packs (JSON or TOML, schema confanon.rulepack/v1)
// on top of the built-in inventory; packs extend the rule set and can
// never weaken the built-in gating.
//
// The tool fails closed. A file whose processing fails is reported and
// withheld — never half-written — and the rest of the batch completes.
// With -strict a file whose post-anonymization leak report contains
// confirmed (non-false-positive) leaks is quarantined: the anonymized
// output is withheld and, when -quarantine DIR is given, the original is
// copied there (mode 0600 — it is raw, sensitive data) for review.
//
// Exit codes:
//
//	0  every file anonymized cleanly and was published
//	1  one or more files were withheld (quarantined or failed), or the
//	   leak report found confirmed leaks in the published output
//	2  usage error
//	3  fatal error (bad input directory, interrupted, ...)
//
// With "-" as the sole argument the tool streams one configuration from
// stdin to stdout instead; add -stateless for constant-memory streaming
// (the Crypto-PAn IP scheme needs no prescan, so nothing is buffered).
// Under -strict the streamed output is buffered and leak-gated before the
// first byte reaches stdout. -rule-stats prints the engine's per-rule hit
// and wall-time table in either mode.
//
// Observability: -metrics-out FILE writes the machine-readable run
// report (JSON, schema confanon.run_report/v1 — per-status file counts,
// headline counters, and the full metric snapshot keyed by Prometheus
// series identity). -pprof ADDR serves /debug/pprof/* and GET /metrics
// on ADDR for the duration of the run, for profiling long batches.
// -trace-out FILE writes the span + provenance trace (JSONL, schema
// confanon.trace/v1): the corpus → file → stage → rule span hierarchy
// and the ledger of every anonymization decision, recording only the
// anonymized replacements — a trace file is as safe to share as the
// output it describes. Tracing does not change the output.
//
// Durable state: -state-dir DIR opens (creating if needed) a crash-safe
// mapping ledger that the run commits at every clean file boundary; a
// later run with the same salt replays it and stays byte-consistent
// with this one, even after a crash mid-run (committed files survive,
// the interrupted file is simply reprocessed). Adding -incremental
// diffs the corpus against the prior run's line cache (kept in the
// state dir) and rewrites only changed lines — output identical to a
// full re-run. The state directory holds cleartext-derived values
// (original addresses, recorder tokens): it is as sensitive as the
// salt, created 0700 with 0600 files, and must never be published.
//
// Query mode: -explain FILE:LINE with a trace file as the sole argument
// prints the provenance decisions recorded for that line —
//
//	confanon -explain rtr7.conf:412 run.trace.jsonl
//
// — answering "why does line 412 look like that" from the trace alone.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"confanon"
	"confanon/internal/retry"
)

// Exit codes (documented above; keep DESIGN.md §"Failure semantics" in
// sync).
const (
	exitClean    = 0
	exitWithheld = 1
	exitUsage    = 2
	exitFatal    = 3
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment injected (tested directly; main only
// wires the process pieces in).
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("confanon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		salt       = fs.String("salt", "", "owner secret keying every mapping (required)")
		inDir      = fs.String("in", "", "directory of configuration files (required)")
		outDir     = fs.String("out", "", "output directory (required)")
		minimal    = fs.Bool("minimal", false, "emit minimal-DFA regexps instead of alternations")
		keep       = fs.Bool("keep-comments", false, "retain comments (measurement only; unsafe)")
		leaks      = fs.Bool("leak-report", true, "print the leak-highlighting report to stderr")
		statsOut   = fs.Bool("stats", false, "print anonymization statistics to stderr")
		ruleStats  = fs.Bool("rule-stats", false, "print the per-rule hit count and wall-time table to stderr")
		stateless  = fs.Bool("stateless", false, "use the Crypto-PAn IP scheme: no shared mapping state, constant-memory streaming")
		rename     = fs.Bool("rename", true, "hash output file names (they are usually hostname-derived)")
		mapFile    = fs.String("mapping", "", "IP-mapping state file: loaded if present, saved after the run (keeps later runs consistent)")
		stateDir   = fs.String("state-dir", "", "durable mapping-ledger directory: opened (or created) before the run, committed at every clean file boundary; later runs replay it (as sensitive as the salt)")
		increment  = fs.Bool("incremental", false, "with -state-dir: diff the corpus against the prior run's line cache and rewrite only changed lines (output identical to a full run)")
		strict     = fs.Bool("strict", false, "fail closed: quarantine any file whose leak report is not clean")
		quarantine = fs.String("quarantine", "", "directory receiving the originals of quarantined files (with -strict)")
		metricsOut = fs.String("metrics-out", "", "write the machine-readable run report (JSON, schema "+confanon.RunReportSchema+") to this file")
		traceOut   = fs.String("trace-out", "", "write the span + provenance trace (JSONL, schema "+confanon.TraceSchema+") to this file")
		explain    = fs.String("explain", "", "query mode: print the trace decisions for FILE:LINE (sole argument is the trace file)")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof and /metrics on this address while the run lasts (e.g. localhost:6060)")
		workers    = fs.Int("workers", 1, "anonymize the corpus on this many parallel workers (output is byte-identical at any count)")
	)
	var sensitive multiFlag
	fs.Var(&sensitive, "sensitive", "extra sensitive token to anonymize everywhere (repeatable)")
	var rulePacks multiFlag
	fs.Var(&rulePacks, "rule-pack", "declarative rule-pack file (JSON or TOML, schema "+confanon.RulePackSchema+"; repeatable, merged in order)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *explain != "" {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "confanon: -explain takes exactly one trace file argument")
			fs.Usage()
			return exitUsage
		}
		return runExplain(*explain, fs.Arg(0), stdout, stderr)
	}

	streamMode := fs.NArg() == 1 && fs.Arg(0) == "-"
	if *salt == "" || (!streamMode && (*inDir == "" || *outDir == "")) || (!streamMode && fs.NArg() > 0) {
		fs.Usage()
		return exitUsage
	}
	if *increment && (*stateDir == "" || streamMode) {
		fmt.Fprintln(stderr, "confanon: -incremental requires -state-dir and batch mode (the cache is only sound against the ledger it was recorded with)")
		return exitUsage
	}
	opts := confanon.Options{
		Salt:         []byte(*salt),
		KeepComments: *keep,
		StatelessIP:  *stateless,
		Strict:       *strict,
	}
	if *minimal {
		opts.Style = confanon.Minimal
	}
	for _, path := range rulePacks {
		var b []byte
		if err := retryIO(func() (err error) { b, err = os.ReadFile(path); return }); err != nil {
			return fatal(stderr, fmt.Errorf("-rule-pack %s: %w", path, err))
		}
		p, err := confanon.LoadRulePack(b)
		if err != nil {
			return fatal(stderr, fmt.Errorf("-rule-pack %s: %w", path, err))
		}
		opts.RulePacks = append(opts.RulePacks, p)
	}
	if *metricsOut != "" || *pprofAddr != "" {
		opts.Metrics = confanon.NewMetricsRegistry()
	}
	var tracer *confanon.Tracer
	if *traceOut != "" {
		tracer = confanon.NewTracer()
		opts.Tracer = tracer
	}
	if *pprofAddr != "" {
		stopProf, err := serveDebug(*pprofAddr, opts.Metrics)
		if err != nil {
			return fatal(stderr, fmt.Errorf("-pprof: %w", err))
		}
		defer stopProf()
	}
	// Compile through the error-returning path: a rule pack that parses
	// but cannot merge (rule-ID collision, builtin-stage reference) is a
	// clean fatal here, not a panic.
	prog, err := confanon.CompileChecked(opts)
	if err != nil {
		return fatal(stderr, fmt.Errorf("compiling rules: %w", err))
	}
	a := prog.NewSession()
	var mstore *confanon.MappingStore
	if *stateDir != "" {
		var err error
		mstore, err = confanon.OpenMappingStore(*stateDir, opts.Salt)
		if err != nil {
			return fatal(stderr, fmt.Errorf("opening state dir %s: %w", *stateDir, err))
		}
		defer mstore.Close()
		if err := a.UseStore(mstore); err != nil {
			return fatal(stderr, fmt.Errorf("restoring state from %s: %w", *stateDir, err))
		}
	}
	if *mapFile != "" {
		var snap []byte
		err := retryIO(func() (err error) { snap, err = os.ReadFile(*mapFile); return })
		switch {
		case err == nil:
			if err := a.LoadMapping(snap); err != nil {
				return fatal(stderr, fmt.Errorf("loading %s: %w", *mapFile, err))
			}
		case !os.IsNotExist(err):
			return fatal(stderr, err)
		}
	}
	for _, tok := range sensitive {
		a.AddRule(tok)
	}

	if streamMode {
		code := runStream(ctx, a, stdin, stdout, stderr)
		if mstore != nil {
			if err := a.SyncStore(); err != nil {
				return fatal(stderr, fmt.Errorf("state dir %s: %w", *stateDir, err))
			}
		}
		if code == exitClean && *mapFile != "" {
			if err := writeFileAtomic(*mapFile, a.SaveMapping(), 0o600); err != nil {
				return fatal(stderr, err)
			}
		}
		printStats(stderr, a.Stats(), *statsOut, *ruleStats)
		if *metricsOut != "" {
			if err := writeRunReport(*metricsOut, a.Report()); err != nil {
				return fatal(stderr, err)
			}
		}
		if tracer != nil {
			if err := writeTrace(*traceOut, tracer); err != nil {
				return fatal(stderr, err)
			}
		}
		return code
	}

	files, err := readDir(*inDir)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(files) == 0 {
		return fatal(stderr, fmt.Errorf("no files in %s", *inDir))
	}
	var res *confanon.CorpusResult
	var nextCache *confanon.CorpusCache
	switch {
	case *increment:
		var prior *confanon.CorpusCache
		cachePath := filepath.Join(*stateDir, cacheFileName)
		var blob []byte
		rerr := retryIO(func() (err error) { blob, err = os.ReadFile(cachePath); return })
		switch {
		case rerr == nil:
			if prior, rerr = confanon.DecodeCorpusCache(blob); rerr != nil {
				// A cache that does not parse forces a full (recording)
				// run; the ledger, not the cache, is the source of truth.
				fmt.Fprintf(stderr, "confanon: ignoring corpus cache %s: %v\n", cachePath, rerr)
				prior = nil
			}
		case !os.IsNotExist(rerr):
			return fatal(stderr, rerr)
		}
		res, nextCache, err = a.IncrementalCorpusContext(ctx, files, prior, *workers)
	case *workers > 1:
		res, err = a.ParallelCorpusContext(ctx, files, *workers)
	default:
		res, err = a.CorpusContext(ctx, files)
	}
	if err != nil {
		return fatal(stderr, fmt.Errorf("anonymization aborted: %w", err))
	}
	if mstore != nil {
		// Surface commit failures as run-fatal before anything is
		// published: outputs without durable mappings cannot be
		// re-anonymized consistently later.
		if err := a.SyncStore(); err != nil {
			return fatal(stderr, fmt.Errorf("state dir %s: %w", *stateDir, err))
		}
	}
	if nextCache != nil {
		blob, err := nextCache.Encode()
		if err != nil {
			return fatal(stderr, err)
		}
		if err := writeFileAtomic(filepath.Join(*stateDir, cacheFileName), blob, 0o600); err != nil {
			return fatal(stderr, err)
		}
		sum := res.Incremental
		fmt.Fprintf(stdout, "incremental: %d files reused, %d resumed, %d rewritten in full (%d lines reused, %d rewritten)\n",
			sum.FilesReused, sum.FilesPartial, sum.FilesFull, sum.LinesReused, sum.LinesRewritten)
	}

	post := res.Outputs()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fatal(stderr, err)
	}
	for name, text := range post {
		outName := name
		if *rename {
			outName = a.RenameFile(name)
		}
		if err := writeFileRetry(filepath.Join(*outDir, outName), []byte(text), 0o644); err != nil {
			return fatal(stderr, err)
		}
	}
	fmt.Fprintf(stdout, "anonymized %d of %d files (%d lines) into %s\n",
		len(post), len(files), res.Stats.Lines, *outDir)
	if *mapFile != "" {
		if err := writeFileAtomic(*mapFile, a.SaveMapping(), 0o600); err != nil {
			return fatal(stderr, err)
		}
	}

	code := exitClean
	for _, ferr := range res.Failed() {
		fmt.Fprintf(stderr, "confanon: withheld (processing failed): %v\n", ferr)
		code = exitWithheld
	}
	if names := res.Quarantined(); len(names) > 0 {
		code = exitWithheld
		for _, name := range names {
			fr := res.Files[name]
			fmt.Fprintf(stderr, "confanon: quarantined %s: %d confirmed leaks\n", name, len(fr.Leaks))
			for _, l := range fr.Leaks {
				fmt.Fprintln(stderr, "  ", l)
			}
			if *quarantine != "" {
				if err := os.MkdirAll(*quarantine, 0o700); err != nil {
					return fatal(stderr, err)
				}
				// The quarantined copy is the ORIGINAL — raw, sensitive —
				// so it keeps its name (the operator must find it) and
				// gets owner-only permissions.
				if err := writeFileRetry(filepath.Join(*quarantine, name), []byte(files[name]), 0o600); err != nil {
					return fatal(stderr, err)
				}
			}
		}
		if *quarantine != "" {
			fmt.Fprintf(stderr, "confanon: originals of %d quarantined files copied to %s\n", len(names), *quarantine)
		}
	}

	if *leaks {
		report := a.Leaks(post)
		real := 0
		for _, l := range report {
			if !l.LikelyFalsePositive {
				real++
			}
		}
		switch {
		case len(report) == 0:
			fmt.Fprintln(stderr, "leak report: clean")
		case real == 0:
			fmt.Fprintf(stderr, "leak report: %d likely false positives, no confirmed leaks\n", len(report))
		default:
			fmt.Fprintf(stderr, "leak report: %d suspicious tokens (add -sensitive rules and rerun)\n", real)
			for _, l := range report {
				fmt.Fprintln(stderr, "  ", l)
			}
			code = exitWithheld
		}
	}
	printStats(stderr, a.Stats(), *statsOut, *ruleStats)
	if *metricsOut != "" {
		// Rebuild the report at the very end so the counters include the
		// leak-report pass above; the per-status outcome counts come from
		// the batch result.
		rep := a.Report()
		rep.FilesOK = res.Report.FilesOK
		rep.FilesFailed = res.Report.FilesFailed
		rep.FilesQuarantined = res.Report.FilesQuarantined
		if err := writeRunReport(*metricsOut, rep); err != nil {
			return fatal(stderr, err)
		}
	}
	if tracer != nil {
		// Written even when files were withheld: a trace of a failed run
		// is exactly the artifact the operator wants to read.
		if err := writeTrace(*traceOut, tracer); err != nil {
			return fatal(stderr, err)
		}
	}
	return code
}

// writeTrace serializes the trace as confanon.trace/v1 JSONL.
func writeTrace(path string, tr *confanon.Tracer) error {
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		return err
	}
	return writeFileRetry(path, buf.Bytes(), 0o644)
}

// runExplain handles "-explain FILE:LINE TRACEFILE": it loads the trace
// and prints the provenance decision chain recorded for that line, one
// decision per row. Exit 0 when decisions were found, 1 when the trace
// has none for that line.
func runExplain(spec, tracePath string, stdout, stderr io.Writer) int {
	colon := strings.LastIndexByte(spec, ':')
	if colon <= 0 || colon == len(spec)-1 {
		fmt.Fprintf(stderr, "confanon: -explain wants FILE:LINE, got %q\n", spec)
		return exitUsage
	}
	file := spec[:colon]
	line, err := strconv.Atoi(spec[colon+1:])
	if err != nil || line < 1 {
		fmt.Fprintf(stderr, "confanon: -explain wants FILE:LINE, got %q\n", spec)
		return exitUsage
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return fatal(stderr, err)
	}
	defer f.Close()
	tf, err := confanon.ReadTrace(f)
	if err != nil {
		return fatal(stderr, fmt.Errorf("reading %s: %w", tracePath, err))
	}
	ds := tf.Explain(file, line)
	if len(ds) == 0 {
		fmt.Fprintf(stderr, "confanon: no decisions recorded for %s:%d\n", file, line)
		return exitWithheld
	}
	for _, d := range ds {
		out := d.Out
		if d.Class == "dropped" {
			out = "(line removed)"
		}
		fmt.Fprintf(stdout, "%s:%d\trule=%s\tclass=%s\tout=%s\n", d.File, d.Line, d.Rule, d.Class, out)
	}
	return exitClean
}

// writeRunReport serializes the run report as indented JSON.
func writeRunReport(path string, rep *confanon.RunReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return writeFileRetry(path, append(b, '\n'), 0o644)
}

// serveDebug exposes /debug/pprof/* and GET /metrics on addr for the
// duration of the run. Unlike the portal's gated endpoints this is a
// local debugging aid on an operator-chosen address (typically a
// localhost port), so it carries no token; the returned stop function
// tears the listener down.
func serveDebug(addr string, reg *confanon.MetricsRegistry) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, nil
}

// runStream handles "confanon ... -": one configuration, stdin→stdout,
// with the same fail-closed per-file error channel as the batch path.
func runStream(ctx context.Context, a *confanon.Anonymizer, stdin io.Reader, stdout io.Writer, stderr io.Writer) int {
	done := false
	next := func() (string, io.Reader, error) {
		if done {
			return "", nil, io.EOF
		}
		done = true
		return "stdin", stdin, nil
	}
	sink := func(string) (io.WriteCloser, error) { return nopCloser{stdout}, nil }
	ferrs, err := a.StreamCorpusContext(ctx, next, sink)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(ferrs) > 0 {
		for _, fe := range ferrs {
			fmt.Fprintln(stderr, "confanon: withheld:", fe)
		}
		return exitWithheld
	}
	return exitClean
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// retryIO runs op under the shared transient-I/O retry policy
// (internal/retry, which this helper's original inline implementation
// was extracted into).
func retryIO(op func() error) error { return retry.Do(op) }

func writeFileRetry(path string, data []byte, perm os.FileMode) error {
	return retryIO(func() error { return os.WriteFile(path, data, perm) })
}

// cacheFileName is the incremental line cache inside -state-dir.
const cacheFileName = "filecache.json"

// writeFileAtomic writes data to path via fsynced temp file + rename in
// the target's directory, so a crash mid-write can never leave a
// truncated or interleaved file — the previous version survives intact.
// Used for every state artifact a later run depends on (-mapping
// snapshots, the incremental cache).
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	return retryIO(func() error {
		tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
		if err != nil {
			return err
		}
		tmpName := tmp.Name()
		defer os.Remove(tmpName) // no-op once renamed
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Chmod(perm); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmpName, path)
	})
}

func printStats(stderr io.Writer, s confanon.Stats, aggregate, perRule bool) {
	if aggregate {
		fmt.Fprintf(stderr,
			"stats: lines=%d words=%d comment-words-removed=%d hashed=%d passed=%d ips=%d asns=%d communities=%d regexps-rewritten=%d\n",
			s.Lines, s.WordsTotal, s.CommentWordsRemoved, s.TokensHashed, s.TokensPassed,
			s.IPsMapped, s.ASNsMapped, s.CommunitiesMapped, s.RegexpsRewritten)
	}
	if perRule {
		fmt.Fprintf(stderr, "%-34s %8s %12s\n", "rule", "hits", "time")
		var hits int64
		var total time.Duration
		for _, info := range confanon.Rules() {
			h, d := s.Hits(info.ID), s.Time(info.ID)
			if h == 0 && d == 0 {
				continue
			}
			fmt.Fprintf(stderr, "%-34s %8d %12s\n", info.ID, h, d.Round(time.Microsecond))
			hits += h
			total += d
		}
		fmt.Fprintf(stderr, "%-34s %8d %12s\n", "total", hits, total.Round(time.Microsecond))
	}
}

func readDir(dir string) (map[string]string, error) {
	var entries []os.DirEntry
	if err := retryIO(func() (err error) { entries, err = os.ReadDir(dir); return }); err != nil {
		return nil, err
	}
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var b []byte
		if err := retryIO(func() (err error) { b, err = os.ReadFile(filepath.Join(dir, e.Name())); return }); err != nil {
			return nil, err
		}
		files[e.Name()] = string(b)
	}
	return files, nil
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "confanon:", err)
	return exitFatal
}
