// Command confbench runs the adversarial privacy/utility benchmark: it
// generates a deterministic multi-AS corpus, sweeps anonymization
// policies over it, and scores each policy with the §6 fingerprint
// re-identification attacks (privacy) and §5 routing-design extraction
// equivalence (utility).
//
// Usage:
//
//	confbench -seed 1 -routers 1000 [-networks N] [-policies LIST]
//	          [-topk K] [-out FILE]
//
// The confanon.bench/v1 JSON report goes to -out (or stdout); progress
// lines go to stderr. All scores are deterministic in the seed and
// corpus shape — only throughput varies between runs — so a report can
// be committed as a baseline and diffed with conftrace:
//
//	confbench -seed 1 -routers 60 -networks 4 -out testdata/baseline_bench.json
//	confbench -seed 1 -routers 60 -networks 4 -out current.json
//	conftrace -fail-on-drift testdata/baseline_bench.json current.json
//
// Exit codes:
//
//	0  report written
//	1  benchmark failed
//	2  usage error
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"confanon/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected (tested directly).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("confbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "corpus generation seed")
		routers  = fs.Int("routers", 200, "total router budget across the corpus")
		networks = fs.Int("networks", 0, "autonomous-system count (0 = derived from -routers)")
		policies = fs.String("policies", "all", "comma-separated policy names, or 'all'")
		topK     = fs.Int("topk", 5, "k for top-k re-identification scores")
		outPath  = fs.String("out", "", "report file (default stdout)")
		quiet    = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "confbench: unexpected arguments:", fs.Args())
		fs.Usage()
		return 2
	}
	pols, err := bench.SelectPolicies(*policies)
	if err != nil {
		fmt.Fprintln(stderr, "confbench:", err)
		return 2
	}
	opts := bench.Options{
		Seed: *seed, Routers: *routers, Networks: *networks,
		Policies: pols, TopK: *topK,
	}
	if !*quiet {
		opts.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, "confbench: "+format+"\n", args...)
		}
	}
	rep, err := bench.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(stderr, "confbench:", err)
		return 1
	}
	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "confbench:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if err := rep.Encode(out); err != nil {
		fmt.Fprintln(stderr, "confbench:", err)
		return 1
	}
	return 0
}
