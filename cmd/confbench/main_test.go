package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confanon/internal/bench"
)

// runTool invokes the CLI entry point with captured output.
func runTool(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"unknown policy", []string{"-policies", "bogus"}, "unknown policy"},
	} {
		code, _, stderr := runTool(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr, tc.want)
		}
	}
}

func TestReportToStdout(t *testing.T) {
	code, stdout, stderr := runTool(t,
		"-seed", "1", "-routers", "40", "-networks", "3", "-policies", "shaped")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	rep, err := bench.Decode(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("stdout is not a bench report: %v", err)
	}
	if rep.Seed != 1 || len(rep.Policies) != 1 || rep.Policies[0].Name != "shaped" {
		t.Errorf("report shape wrong: seed=%d policies=%+v", rep.Seed, rep.Policies)
	}
	// Progress goes to stderr, never contaminating the JSON stream.
	if !strings.Contains(stderr, "corpus:") || !strings.Contains(stderr, "policy") {
		t.Errorf("expected progress lines on stderr, got %q", stderr)
	}
}

func TestReportToFileAndQuiet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runTool(t,
		"-seed", "2", "-routers", "30", "-networks", "2", "-policies", "shaped",
		"-out", path, "-q")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("-out set but stdout not empty: %q", stdout)
	}
	if stderr != "" {
		t.Errorf("-q set but stderr not empty: %q", stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := bench.Decode(f); err != nil {
		t.Errorf("file is not a bench report: %v", err)
	}
}

func TestUnwritableOut(t *testing.T) {
	code, _, stderr := runTool(t,
		"-routers", "30", "-networks", "2", "-policies", "shaped",
		"-out", filepath.Join(t.TempDir(), "missing-dir", "bench.json"), "-q")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if stderr == "" {
		t.Error("no error message for unwritable -out")
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-routers", "30", "-networks", "2", "-q"}, &out, &errb); code != 1 {
		t.Errorf("cancelled run exited %d, want 1", code)
	}
}
