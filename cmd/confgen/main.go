// Command confgen generates a synthetic network's configuration files —
// the stand-in for the paper's carrier dataset.
//
// Usage:
//
//	confgen -seed 42 -kind backbone -routers 40 -out DIR
//
// The generated files contain exactly the identity-bearing content the
// anonymizer must remove (company names, banners, contact emails, public
// ASNs and addresses, ISP peer names) together with realistic routing
// design, so they exercise every anonymization code path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"confanon/internal/netgen"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "generation seed")
		kindName = flag.String("kind", "backbone", "network kind: backbone or enterprise")
		routers  = flag.Int("routers", 0, "router count (0 = sample a realistic size)")
		outDir   = flag.String("out", "", "output directory (required)")
		comments = flag.Float64("comments", 0, "comment word density (0 = sample per paper)")
		regexps  = flag.Bool("regexps", false, "use range/alternation regexps in policies")
		compart  = flag.Bool("compartmentalized", false, "add NAT/probe-filter compartmentalization")
	)
	flag.Parse()
	if *outDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind := netgen.Backbone
	switch *kindName {
	case "backbone":
	case "enterprise":
		kind = netgen.Enterprise
	default:
		fmt.Fprintln(os.Stderr, "confgen: unknown kind", *kindName)
		os.Exit(2)
	}
	n := netgen.Generate(netgen.Params{
		Seed: *seed, Kind: kind, Routers: *routers, CommentDensity: *comments,
		UseASPathAlternation: *regexps, UsePublicASNRanges: *regexps,
		UseCommunityRegexps: *regexps, UseCommunityRanges: *regexps,
		Compartmentalized: *compart,
	})
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "confgen:", err)
		os.Exit(1)
	}
	files := n.RenderAll()
	for name, text := range files {
		if err := os.WriteFile(filepath.Join(*outDir, name), []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "confgen:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("generated network %q: AS%d, %d routers, %d links, %d external peerings, %d lines\n",
		n.Params.Name, n.ASN, len(n.Routers), len(n.Links), len(n.Peers), n.TotalLines())
	fmt.Printf("suggested anonymization salt: %q\n", n.Salt)
}
