// Package confanon is a structure-preserving anonymizer for router
// configuration files, reproducing Maltz et al., "Structure Preserving
// Anonymization of Router Configuration Data" (IMC 2004).
//
// The anonymizer removes all information connecting a configuration to the
// identity of the originating network — free-text comments and banners,
// hostnames, credentials, public IP addresses, public AS numbers, BGP
// community attributes, and every string not known to be innocuous — while
// preserving the structure that makes the data valuable to researchers:
//
//   - IP addresses are mapped prefix-preservingly (subnet containment
//     survives), class-preservingly (classful RIP/EIGRP semantics
//     survive), and subnet-address-preservingly; netmasks, wildcard
//     masks, loopback, and multicast addresses pass through unchanged.
//   - Public ASNs are permuted; private ASNs are untouched; regexps over
//     ASNs and communities are rewritten so they accept exactly the
//     permuted language.
//   - Identifiers are hashed with a salted SHA-1, so the "uses"
//     relationships between policy definitions and references survive.
//
// Basic use:
//
//	a := confanon.New(confanon.Options{Salt: []byte("owner secret")})
//	out := a.Corpus(map[string]string{"r1-confg": text})
//	leaks := a.Leaks(out)
//
// One Anonymizer = one owner secret = one consistent mapping: feed every
// file of a network (or several networks from the same owner) through the
// same Anonymizer.
//
// The engine is split into an immutable compiled Program and a mutable
// per-owner Session. Compile builds the Program (pass-list index, rule
// tables, salt-derived permutations, memoized regexp-rewrite cache) once;
// Program.NewSession derives any number of independent Sessions from it,
// each with its own IP mapping, leak recorder, and statistics. New is the
// one-shot convenience form of Compile(...).NewSession().
package confanon

import (
	"context"
	"io"
	"sort"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/cregex"
	"confanon/internal/rulepack"
	"confanon/internal/trace"
	"confanon/internal/validate"
)

// RulePack is a parsed, validated declarative rule pack (see
// internal/rulepack for the document format). Load one with
// LoadRulePack and wire it through Options.RulePacks.
type RulePack = rulepack.Pack

// PackMeta is a rule pack's identity triple — name, version, content
// fingerprint — as threaded through RunReport and bench policy
// fingerprints.
type PackMeta = rulepack.Meta

// LoadRulePack parses and validates a rule-pack document (JSON or the
// TOML subset; the format is sniffed). The returned pack has passed
// every document-level check — schema, rule shapes, pattern
// compilation, declared fingerprint — but engine-level mergeability is
// only decided at CompileChecked (or CheckRulePack, for tooling).
func LoadRulePack(data []byte) (*RulePack, error) { return rulepack.Parse(data) }

// CheckRulePack verifies a parsed pack would compile against this
// engine build — builtin references resolve, rule IDs do not collide
// with the built-in inventory, taxonomy entries do not conflict —
// without loading anything. This is confvalidate -check-pack and the
// portal's pack-registration check.
func CheckRulePack(p *RulePack) error { return anonymizer.CheckPack(p) }

// BuiltinRulePack returns the canonical built-in inventory as a pack
// document (read-only): the same rule taxonomy the engine compiles at
// startup, exposed so tooling can diff user packs against it.
func BuiltinRulePack() *RulePack { return anonymizer.BuiltinPack() }

// RulePackSchema identifies the rule-pack document layout.
const RulePackSchema = rulepack.Schema

// Style selects the output form for rewritten regexps.
type Style = cregex.Style

// Regexp output styles.
const (
	// Alternation emits "(701|702|703)" — the paper's production form.
	Alternation = cregex.Alternation
	// Minimal emits the minimal-DFA reconstruction the paper describes
	// as an available refinement.
	Minimal = cregex.Minimal
)

// Stats is the anonymizer's measurement record. It carries per-rule hit
// counts and cumulative per-rule wall time alongside the aggregate
// counters; Stats.Add merges two records (used by ParallelCorpus).
type Stats = anonymizer.Stats

// RuleID names one rule in the engine's registry.
type RuleID = anonymizer.RuleID

// RuleInfo describes one registry rule: its ID, class, scope, and a
// one-line account of what it recognizes.
type RuleInfo = anonymizer.RuleInfo

// Rules returns the engine's rule inventory — the paper's 28 context
// rules plus documented extensions — in canonical order. Pair it with
// Stats.RuleHits and Stats.RuleTime to report per-rule activity.
func Rules() []RuleInfo { return anonymizer.Rules() }

// Leak is one suspicious token in anonymized output.
type Leak = anonymizer.Leak

// Tracer collects the span hierarchy and provenance ledger of a traced
// run (see internal/trace). Wire one through Options.Tracer, run, then
// export with Tracer.WriteJSONL. One Tracer may observe several
// Sessions; its clock and span IDs are shared across them.
type Tracer = trace.Tracer

// NewTracer returns an empty Tracer whose clock starts now.
func NewTracer() *Tracer { return trace.NewTracer() }

// TraceSchema identifies the JSONL trace layout Tracer.WriteJSONL emits
// (the first line of every trace file carries it).
const TraceSchema = trace.Schema

// Span is one timed node of a trace: corpus → file → stage → rule.
type Span = trace.Span

// Decision is one provenance ledger entry: which rule did what to one
// token of one line, and the anonymized replacement it produced. The
// ledger never records the cleartext being replaced.
type Decision = trace.Decision

// TraceFile is a parsed trace: the reader-side counterpart of a Tracer,
// with Explain and FileDecisions query helpers.
type TraceFile = trace.File

// ErrTraceSchema is returned by ReadTrace for a stream whose header
// does not carry TraceSchema — the signal for format-sniffing readers
// (cmd/conftrace) to try another parser.
var ErrTraceSchema = trace.ErrSchema

// ReadTrace parses a TraceSchema JSONL stream (as written by
// Tracer.WriteJSONL). Unknown record types are skipped; a missing or
// foreign schema header is an error.
func ReadTrace(r io.Reader) (*TraceFile, error) { return trace.ReadJSONL(r) }

// Options configures an Anonymizer.
type Options struct {
	// Salt is the network owner's secret; it keys every mapping.
	Salt []byte
	// Style selects Alternation (default) or Minimal regexp output.
	Style Style
	// KeepComments retains comment lines (measurement only — production
	// anonymization always strips them).
	KeepComments bool
	// RulePacks are additional declarative rule packs merged into the
	// compiled Program ahead of the built-ins. Pack line rules rewrite
	// and decline (the built-in pipeline still runs afterwards), so a
	// loaded pack can only strengthen the output, never weaken the
	// built-in coverage or strict gating. Merge failures — duplicate
	// rule IDs across packs, registry conflicts — panic in Compile;
	// callers loading operator-supplied packs should use CompileChecked.
	RulePacks []*RulePack
	// StatelessIP selects the Crypto-PAn IP scheme: the mapping depends
	// only on the salt (no shared table), which sacrifices class and
	// subnet-address preservation — the §4.3 trade-off. Parallel runs no
	// longer require it (the shaped tree is censused and replayed
	// deterministically); it remains the zero-shared-state option, e.g.
	// for anonymizing on machines that never exchange a mapping table.
	StatelessIP bool
	// Strict makes the batch APIs (CorpusContext, ParallelCorpusContext,
	// StreamCorpusContext) fail closed on leaks: a file whose
	// post-anonymization leak report contains confirmed
	// (non-false-positive) entries is quarantined — reported and
	// withheld — instead of published. Gating is conservative: a
	// coincidental collision between an anonymized value and some
	// original value can quarantine an innocent file, which is the safe
	// direction (review the quarantine, never the leak).
	Strict bool
	// Metrics, when set, wires the pipeline into a shared observability
	// registry: the engine flushes its counters at file boundaries, the
	// batch layer counts outcomes, and CorpusResult.Report carries the
	// flattened snapshot. Nil disables all metric plumbing (the engine
	// hot path is untouched either way; see DESIGN.md §3d).
	Metrics *MetricsRegistry
	// Tracer, when set, records the run's span hierarchy (corpus → file
	// → stage → rule) and its provenance ledger — one entry per
	// anonymization decision, carrying only the anonymized replacement,
	// never the cleartext it replaced. Nil disables all tracing at the
	// cost of one predictable branch per decision site (see DESIGN.md
	// §3f). Tracing does not alter output: a traced run is byte-identical
	// to an untraced one.
	Tracer *Tracer
}

// Program is the immutable compiled half of the anonymizer: the pass-list
// index, the rule dispatch tables, the salt-derived ASN/community
// permutations, and a memoized regexp-rewrite cache shared by everything
// derived from it. A Program is built once by Compile, is safe for
// concurrent use, and never changes afterwards; per-owner mutable state
// (the IP mapping, the leak recorder, statistics) lives in the Sessions
// it derives. Because the permutations are keyed by the salt, one Program
// corresponds to one owner secret — compile a new Program per salt, then
// derive as many Sessions from it as there are datasets to anonymize
// under that secret.
type Program struct {
	inner *anonymizer.Program
	opts  Options
}

// Compile builds the immutable Program for the given options. The
// expensive, shareable work — pass-list indexing, rule-table wiring,
// permutation key derivation — happens here, exactly once; NewSession is
// then cheap. Compile panics when Options.RulePacks do not merge; use
// CompileChecked for operator-supplied packs.
func Compile(opts Options) *Program {
	p, err := CompileChecked(opts)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileChecked is Compile with pack-merge errors reported instead of
// panicking: a pack that passed LoadRulePack can still fail to merge
// (duplicate rule IDs across packs, registry conflicts).
func CompileChecked(opts Options) (*Program, error) {
	inner, err := anonymizer.CompileChecked(anonymizer.Options{
		Salt:         opts.Salt,
		Style:        opts.Style,
		KeepComments: opts.KeepComments,
		StatelessIP:  opts.StatelessIP,
		RulePacks:    opts.RulePacks,
		Tracer:       opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &Program{inner: inner, opts: opts}, nil
}

// Packs returns the identity of every rule pack compiled into the
// Program: the canonical built-in pack first, then Options.RulePacks in
// load order.
func (p *Program) Packs() []PackMeta { return p.inner.Packs() }

// NewSession derives a fresh Session from the Program: an Anonymizer with
// its own IP mapping, leak recorder, and statistics, sharing the compiled
// tables and rewrite cache with every other Session of the Program.
func (p *Program) NewSession() *Anonymizer {
	a := &Anonymizer{
		prog:   p,
		sess:   p.inner.NewSession(),
		strict: p.opts.Strict,
	}
	if p.opts.Metrics != nil {
		a.reg = p.opts.Metrics
		a.batch = newBatchMetrics(p.opts.Metrics)
		a.sess.SetMetrics(p.opts.Metrics)
	}
	return a
}

// Anonymizer is one anonymization Session: a handle on the mutable
// per-owner state (IP mapping, leak recorder, statistics) of a compiled
// Program. Safe for concurrent use — any number of goroutines may call
// its methods on the same Session, and the parallel batch APIs run worker
// pools over exactly this shared state.
type Anonymizer struct {
	prog   *Program
	sess   *anonymizer.Session
	strict bool
	reg    *MetricsRegistry
	batch  *batchMetrics
}

// New creates a single-session Anonymizer: the one-shot convenience form
// of Compile(opts).NewSession(). It remains the right call for the common
// one-owner, one-dataset case; callers anonymizing several datasets under
// the same salt should Compile once and derive a Session per dataset so
// the compiled tables and rewrite cache are shared.
func New(opts Options) *Anonymizer { return Compile(opts).NewSession() }

// Report builds a RunReport from the accumulated statistics (and the
// wired registry, if any). The batch APIs attach a richer report — with
// per-status file counts — to their CorpusResult; this accessor covers
// the single-file paths (File, Stream, Corpus).
func (a *Anonymizer) Report() *RunReport {
	rep := NewRunReport(a.Stats(), a.reg)
	rep.Packs = a.prog.Packs()
	return rep
}

// ParallelCorpus anonymizes a corpus across several workers sharing one
// Session. Under the default shaped-tree IP scheme the corpus is first
// censused in parallel, the census replayed into the shared tree in the
// deterministic serial order, and the files then rewritten in parallel —
// so the output is byte-identical to a sequential Corpus run at any
// worker count. Under Options.StatelessIP every mapping is a pure
// function of the salt (the parallelization the paper attributes to the
// Xu scheme: "very little state must be shared to consistently map
// addresses, making it amenable to parallelization") and the census is
// skipped. The per-worker statistics are merged in the returned Stats.
//
// ParallelCorpus is the convenience form of ParallelCorpusContext: a
// file whose processing fails (or, under Options.Strict, leaks) is
// silently absent from the returned map. Callers that must account for
// every input file — which fail-closed publication pipelines should —
// want ParallelCorpusContext and its CorpusResult.
func ParallelCorpus(opts Options, files map[string]string, workers int) (map[string]string, Stats) {
	res, _ := ParallelCorpusContext(context.Background(), opts, files, workers)
	return res.Outputs(), res.Stats
}

// File anonymizes a single configuration file.
func (a *Anonymizer) File(text string) string {
	w := a.sess.Acquire()
	defer a.sess.Release(w)
	return w.AnonymizeText(text)
}

// Stream anonymizes one configuration file from r to w. Under the
// StatelessIP scheme the engine rewrites each line as it is read —
// constant memory in the input size, byte-identical to File on the same
// text. Under the default shaped-tree scheme the subnet-shaping prescan
// must see the whole file before the first line can be rewritten, so the
// file (one file, never a corpus) is buffered internally.
func (a *Anonymizer) Stream(r io.Reader, w io.Writer) error {
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	return wk.StreamText(r, w)
}

// StreamCorpus anonymizes a sequence of files without ever holding the
// corpus in memory. next is called repeatedly and returns the name and
// content reader of each file in turn, or io.EOF when the corpus is
// exhausted; sink maps each file name to its output writer (closed by
// StreamCorpus after the file is written). Files are processed in
// arrival order with Stream's memory behavior per file.
//
// All files route through the Session, so cross-file consistency is
// exactly Corpus's: an address seen in two files maps identically, and a
// later Corpus or File call under the same Session stays consistent with
// the streamed output. The one remaining difference from Corpus is
// prescan scope: the subnet-shaping prescan sees each file individually,
// in arrival order, rather than the whole corpus up front — so which
// file first pins a shared subnet (and therefore the shape chosen for
// it) depends on the order next yields the files. Use Corpus when the
// mapping must be immune to file ordering.
func (a *Anonymizer) StreamCorpus(
	next func() (name string, r io.Reader, err error),
	sink func(name string) (io.WriteCloser, error),
) error {
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	for {
		name, r, err := next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		w, err := sink(name)
		if err != nil {
			return err
		}
		serr := wk.StreamText(r, w)
		cerr := w.Close()
		if serr != nil {
			return serr
		}
		if cerr != nil {
			return cerr
		}
	}
}

// Corpus anonymizes a set of files as one network: every file is
// prescanned first so the subnet-address shaping of the IP mapping cannot
// be broken by file ordering, then each file is rewritten. Keys are
// preserved (file names are the caller's business; rename them if they
// leak identity).
func (a *Anonymizer) Corpus(files map[string]string) map[string]string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	for _, n := range names {
		wk.Prescan(files[n])
	}
	out := make(map[string]string, len(files))
	for _, n := range names {
		out[n] = wk.AnonymizeText(files[n])
	}
	return out
}

// Leaks scans anonymized files for sensitive values that survived,
// supporting the iterative leak-closure methodology: review the report,
// AddRule the dangerous tokens, re-anonymize, repeat until empty.
func (a *Anonymizer) Leaks(files map[string]string) []Leak {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	var out []Leak
	for _, n := range names {
		out = append(out, wk.LeakReport(files[n])...)
	}
	return out
}

// AddRule registers an operator-supplied sensitive token that must be
// anonymized wherever it appears. Workers pick the token up at their
// next file boundary.
func (a *Anonymizer) AddRule(token string) { a.sess.AddSensitiveToken(token) }

// Relation is one piece of well-known external knowledge: a public ASN
// and a prefix it is known to originate.
type Relation = anonymizer.Relation

// MappedRelation is the anonymized image of a declared Relation.
type MappedRelation = anonymizer.MappedRelation

// DeclareRelation registers external knowledge whose implicit
// relationship should be preserved (§5): the anonymized (ASN, prefix)
// pair is available from Relations for release alongside the configs.
func (a *Anonymizer) DeclareRelation(rel Relation) { a.sess.DeclareRelation(rel) }

// Relations returns the anonymized images of all declared relations.
func (a *Anonymizer) Relations() []MappedRelation { return a.sess.Relations() }

// RenameFile derives an anonymized output file name (file names are
// usually hostname-derived and leak identity).
func (a *Anonymizer) RenameFile(name string) string {
	w := a.sess.Acquire()
	defer a.sess.Release(w)
	return w.HashFileName(name)
}

// SaveMapping serializes the IP mapping so a later run with the same salt
// stays consistent with this one (new files from the same owner can be
// anonymized later without re-anonymizing the old ones).
func (a *Anonymizer) SaveMapping() []byte { return a.sess.SaveMapping() }

// LoadMapping restores a SaveMapping snapshot; call before anonymizing.
func (a *Anonymizer) LoadMapping(snapshot []byte) error { return a.sess.LoadMapping(snapshot) }

// Stats returns the Session's accumulated counters (all workers merged).
func (a *Anonymizer) Stats() Stats { return a.sess.Stats() }

// ValidationReport is the result of running both §5 suites over pre- and
// post-anonymization corpora.
type ValidationReport struct {
	// Suite1 lists independent characteristics that differ (empty = pass).
	Suite1 []string
	// Suite2 compares extracted routing designs.
	Suite2 validate.Suite2Result
}

// OK reports whether both suites pass.
func (r ValidationReport) OK() bool { return len(r.Suite1) == 0 && r.Suite2.OK() }

// Validate runs the two validation suites over pre/post corpora.
func Validate(pre, post map[string]string) ValidationReport {
	p := validate.ParseAll(pre)
	q := validate.ParseAll(post)
	return ValidationReport{
		Suite1: validate.Suite1(p, q),
		Suite2: validate.Suite2(p, q),
	}
}

// ParseConfig parses one configuration file into the typed model (exposed
// for analysis tooling built on anonymized data). The dialect — IOS or
// JunOS — is detected automatically.
func ParseConfig(text string) *config.Config { return validate.ParseAuto(text) }
