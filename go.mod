module confanon

go 1.22
