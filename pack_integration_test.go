package confanon

// Integration tests for rule packs at the facade level: parallel runs
// with user packs stay byte-identical to serial, strict leak gating
// cannot be weakened by loading a pack, and the MAC token class maps
// consistently while preserving the semantic bits.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"confanon/internal/netgen"
)

// packFromTOML parses a pack from TOML source, failing the test on any
// load or check error.
func packFromTOML(t *testing.T, src string) *RulePack {
	t.Helper()
	p, err := LoadRulePack([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRulePack(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPackParallelByteIdentity: with user packs loaded, a parallel run
// at any worker count must be byte-identical to the serial run — the
// census/replay machinery covers pack rules like any builtin.
func TestPackParallelByteIdentity(t *testing.T) {
	mac := loadExamplePack(t, "mac-addresses.json")
	eos := loadExamplePack(t, "arista-eos.toml")
	n := netgen.Generate(netgen.Params{Seed: 77, Kind: netgen.Backbone, Routers: 18})
	files := n.RenderAll()
	// Salt the corpus with pack-relevant tokens so the pack rules do
	// real work in every file.
	i := 0
	for name, text := range files {
		files[name] = text + fmt.Sprintf(
			"interface Ethernet9\n mac-address 00:1c:73:aa:bb:%02x\nsnmp-server contact eng%d@pop%d.example.net\nvrf instance TENANT-%d\n",
			i, i, i%4, i)
		i++
	}
	opts := Options{Salt: []byte(n.Salt), RulePacks: []*RulePack{mac, eos}}

	serial := New(opts).Corpus(files)
	for _, workers := range []int{1, 4, 8} {
		par, _ := ParallelCorpus(opts, files, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d files, want %d", workers, len(par), len(serial))
		}
		for name := range serial {
			if par[name] != serial[name] {
				t.Errorf("workers=%d: %s differs from the serial run", workers, name)
			}
		}
	}
}

// TestPackCannotWeakenStrictGating: a config whose output leaks an ASN
// is quarantined under strict — and stays quarantined with unrelated
// packs loaded. The only way a pack clears the gate is by actually
// anonymizing the leaking token.
func TestPackCannotWeakenStrictGating(t *testing.T) {
	leaky := map[string]string{
		"r1.conf": "router bgp 7018\nweird vendor-command peer-as 7018\n",
	}
	quarantined := func(opts Options) (bool, string) {
		t.Helper()
		prog, err := CompileChecked(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.NewSession().CorpusContext(t.Context(), leaky)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Quarantined()) == 1, res.Outputs()["r1.conf"]
	}

	base := Options{Salt: []byte("gate"), Strict: true}
	if q, _ := quarantined(base); !q {
		t.Fatal("baseline: the leaking config was not quarantined")
	}

	// Unrelated packs (the shipped examples) must not clear the gate.
	withExamples := base
	withExamples.RulePacks = []*RulePack{
		loadExamplePack(t, "mac-addresses.json"),
		loadExamplePack(t, "arista-eos.toml"),
	}
	if q, _ := quarantined(withExamples); !q {
		t.Error("loading unrelated packs cleared strict gating")
	}

	// A pack that actually anonymizes the leaking line clears the gate
	// the honest way: the ASN is gone from the output.
	closing := base
	closing.RulePacks = []*RulePack{packFromTOML(t, `
schema = "confanon.rulepack/v1"
name = "close-the-leak"
version = "0.1.0"
[[rules]]
id = "weird-vendor-command"
class = "asn"
scope = "line"
keys = ["weird"]
action = "digits"
doc = "hash the numbers of the unrecognized vendor command"
`)}
	q, out := quarantined(closing)
	if q {
		t.Error("a pack anonymizing the leak should clear the gate")
	}
	if strings.Contains(out, "7018") {
		t.Errorf("pack cleared the gate but the ASN survives:\n%s", out)
	}
}

// TestMACMappingConsistencyAndBits: one MAC maps to one image under a
// salt regardless of separator style, the mapping is not identity, and
// the I/G and U/L bits of the first octet survive.
func TestMACMappingConsistencyAndBits(t *testing.T) {
	mac := loadExamplePack(t, "mac-addresses.json")
	prog, err := CompileChecked(Options{Salt: []byte("macs"), RulePacks: []*RulePack{mac}})
	if err != nil {
		t.Fatal(err)
	}
	in := strings.Join([]string{
		"interface Ethernet1",
		" mac-address 00:1c:73:ab:cd:01", // universal, unicast
		" mac-address 00-1C-73-AB-CD-01", // same MAC, other separators
		" mac-address 001c.73ab.cd01",    // same MAC, dotted
		" mac-address 01:00:5e:00:00:fb", // I/G set (multicast)
		" mac-address 02:aa:bb:cc:dd:ee", // U/L set (locally administered)
		"",
	}, "\n")
	out := prog.NewSession().File(in)

	// Line counts are preserved here, so collect the mapped MACs by the
	// input lines' positions (the "mac-address" keyword itself is not
	// pass-listed and comes out hashed — the value is what matters).
	inLines, outLines := strings.Split(in, "\n"), strings.Split(out, "\n")
	if len(outLines) != len(inLines) {
		t.Fatalf("line count changed: %d -> %d\n%s", len(inLines), len(outLines), out)
	}
	var mapped []string
	for i, line := range inLines {
		if f := strings.Fields(line); len(f) == 2 && f[0] == "mac-address" {
			of := strings.Fields(outLines[i])
			if len(of) != 2 {
				t.Fatalf("line %d reshaped: %q -> %q", i+1, line, outLines[i])
			}
			mapped = append(mapped, of[1])
		}
	}
	if len(mapped) != 5 {
		t.Fatalf("expected 5 mac-address lines, got %d:\n%s", len(mapped), out)
	}
	digits := func(s string) string {
		return strings.ToLower(strings.Map(func(r rune) rune {
			if r == ':' || r == '-' || r == '.' {
				return -1
			}
			return r
		}, s))
	}
	if digits(mapped[0]) != digits(mapped[1]) || digits(mapped[0]) != digits(mapped[2]) {
		t.Errorf("one MAC mapped inconsistently across separator styles: %v", mapped[:3])
	}
	if digits(mapped[0]) == "001c73abcd01" {
		t.Error("MAC mapped to itself")
	}
	if !strings.Contains(mapped[1], "-") || !strings.Contains(mapped[2], ".") {
		t.Errorf("separator styles not preserved: %v", mapped[:3])
	}
	firstOctet := func(s string) byte {
		v, err := strconv.ParseUint(digits(s)[:2], 16, 8)
		if err != nil {
			t.Fatalf("bad mapped MAC %q", s)
		}
		return byte(v)
	}
	if firstOctet(mapped[3])&0x01 == 0 {
		t.Errorf("multicast bit lost: %s", mapped[3])
	}
	if firstOctet(mapped[4])&0x01 != 0 || firstOctet(mapped[4])&0x02 == 0 {
		t.Errorf("U/L and I/G bits not preserved: %s", mapped[4])
	}
}

// TestPackMergeConflicts: the compile-time merge rejects combinations
// the documents cannot individually catch.
func TestPackMergeConflicts(t *testing.T) {
	mk := func(name, ruleID string) *RulePack {
		return packFromTOML(t, `
schema = "confanon.rulepack/v1"
name = "`+name+`"
version = "0.1.0"
[[rules]]
id = "`+ruleID+`"
class = "misc"
scope = "line"
keys = ["frobnicate"]
action = "hash"
doc = "test rule"
`)
	}
	// Two packs declaring the same rule ID cannot load together.
	if _, err := CompileChecked(Options{Salt: []byte("x"),
		RulePacks: []*RulePack{mk("pack-a", "shared-rule"), mk("pack-b", "shared-rule")}}); err == nil {
		t.Error("cross-pack duplicate rule id compiled")
	}
	// Distinct IDs load fine, even with identical keys.
	if _, err := CompileChecked(Options{Salt: []byte("x"),
		RulePacks: []*RulePack{mk("pack-a", "rule-a"), mk("pack-b", "rule-b")}}); err != nil {
		t.Errorf("distinct rule ids failed to compile: %v", err)
	}
	// A user pack may not reference builtin stages.
	p, err := LoadRulePack([]byte(`{
		"schema": "confanon.rulepack/v1",
		"name": "sneaky",
		"version": "0.1.0",
		"rules": [{"id": "steal-banner", "class": "comment", "scope": "structural", "builtin": "banner-body", "doc": "x"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRulePack(p); err == nil {
		t.Error("user pack referencing a builtin stage passed CheckPack")
	}
	if _, err := CompileChecked(Options{Salt: []byte("x"), RulePacks: []*RulePack{p}}); err == nil {
		t.Error("user pack referencing a builtin stage compiled")
	}
	// Colliding with a builtin rule id is rejected too.
	hostile, err := LoadRulePack([]byte(`
schema = "confanon.rulepack/v1"
name = "hostile"
version = "0.1.0"
[[rules]]
id = "hostname"
class = "name"
scope = "line"
keys = ["hostname"]
action = "hash"
doc = "tries to shadow the builtin hostname rule"
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRulePack(hostile); err == nil {
		t.Error("user pack shadowing the builtin hostname rule passed CheckPack")
	}
}
