package confanon

import (
	"context"
	"fmt"
	"testing"

	"confanon/internal/netgen"
	"confanon/internal/routing"
	"confanon/internal/validate"
)

// TestEquivalenceAcrossWorkers is the end-to-end §5 guarantee at corpus
// scale: for every network of a generated multi-AS corpus, the routing
// design extracted from the anonymized twin is signature-identical to
// the original, and the worker count of the parallel pipeline cannot
// change that (the census/replay split makes the mapping worker-count
// independent). Runs under -race via the CI concurrency gauntlet.
func TestEquivalenceAcrossWorkers(t *testing.T) {
	corpus := netgen.GenerateCorpus(netgen.CorpusParams{Seed: 1, Routers: 60, Networks: 4})
	for i, n := range corpus.Networks {
		files := n.RenderAll()
		pre := validate.ParseAll(files)
		preSig := routing.Extract(pre).Signature()
		if preSig == "" {
			t.Fatalf("network %d (%s): empty design signature", i, n.Params.Name)
		}
		var sigs []string
		for _, workers := range []int{1, 4, 8} {
			workers := workers
			t.Run(fmt.Sprintf("net%d-w%d", i, workers), func(t *testing.T) {
				res, err := ParallelCorpusContext(context.Background(),
					Options{Salt: []byte(n.Salt)}, files, workers)
				if err != nil {
					t.Fatal(err)
				}
				post := validate.ParseAll(res.Outputs())
				postSig := routing.Extract(post).Signature()
				if postSig != preSig {
					t.Errorf("design signature changed under anonymization:\npre:\n%s\npost:\n%s",
						preSig, postSig)
				}
				sigs = append(sigs, postSig)
			})
		}
		for _, s := range sigs[1:] {
			if s != sigs[0] {
				t.Errorf("network %d: post signature differs between worker counts", i)
			}
		}
	}
}

// TestEquivalenceSeed7001ClassfulCorner is the regression for the
// shaped-tree classful-coverage corner the bench harness found (ROADMAP
// open item 4): in this generated network a classful `network 10.0.0.0`
// statement's raw tree image is exactly 0.0.0.0 (special), and the
// original cycle-walk collision chase remapped it out of the /8 its
// member addresses stay in, breaking EIGRP classful coverage — Suite 2
// failed for exactly this (seed, kind) under the default shaped policy.
// The nearest-free chase must keep the image inside the already-fixed
// parent prefix, so design equivalence holds.
func TestEquivalenceSeed7001ClassfulCorner(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 7001, Kind: netgen.Enterprise, Compartmentalized: true})
	files := n.RenderAll()
	pre := validate.ParseAll(files)
	a := New(Options{Salt: []byte(n.Salt)})
	post := validate.ParseAll(a.Corpus(files))
	if r2 := validate.Suite2(pre, post); !r2.OK() {
		t.Errorf("seed-7001 design signature changed under anonymization:\npre:\n%s\npost:\n%s",
			r2.PreSignature, r2.PostSignature)
	}
	if diffs := validate.Suite1(pre, post); len(diffs) != 0 {
		t.Errorf("seed-7001 characteristic mismatches: %v", diffs)
	}
}
