package confanon

import (
	"context"
	"fmt"
	"testing"

	"confanon/internal/netgen"
	"confanon/internal/routing"
	"confanon/internal/validate"
)

// TestEquivalenceAcrossWorkers is the end-to-end §5 guarantee at corpus
// scale: for every network of a generated multi-AS corpus, the routing
// design extracted from the anonymized twin is signature-identical to
// the original, and the worker count of the parallel pipeline cannot
// change that (the census/replay split makes the mapping worker-count
// independent). Runs under -race via the CI concurrency gauntlet.
func TestEquivalenceAcrossWorkers(t *testing.T) {
	corpus := netgen.GenerateCorpus(netgen.CorpusParams{Seed: 1, Routers: 60, Networks: 4})
	for i, n := range corpus.Networks {
		files := n.RenderAll()
		pre := validate.ParseAll(files)
		preSig := routing.Extract(pre).Signature()
		if preSig == "" {
			t.Fatalf("network %d (%s): empty design signature", i, n.Params.Name)
		}
		var sigs []string
		for _, workers := range []int{1, 4, 8} {
			workers := workers
			t.Run(fmt.Sprintf("net%d-w%d", i, workers), func(t *testing.T) {
				res, err := ParallelCorpusContext(context.Background(),
					Options{Salt: []byte(n.Salt)}, files, workers)
				if err != nil {
					t.Fatal(err)
				}
				post := validate.ParseAll(res.Outputs())
				postSig := routing.Extract(post).Signature()
				if postSig != preSig {
					t.Errorf("design signature changed under anonymization:\npre:\n%s\npost:\n%s",
						preSig, postSig)
				}
				sigs = append(sigs, postSig)
			})
		}
		for _, s := range sigs[1:] {
			if s != sigs[0] {
				t.Errorf("network %d: post signature differs between worker counts", i)
			}
		}
	}
}
