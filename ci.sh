#!/bin/sh
# The repository's check gauntlet. Run before every push:
#
#   ./ci.sh           # build, vet, race-enabled tests, fuzz smoke
#   ./ci.sh -short    # same, but tests run with -short
#
# CONFANON_SKIP_FUZZ=1 skips the fuzz smoke (e.g. on very slow machines).
#
# The golden corpus under testdata/golden/ makes the test step a
# byte-level regression check on the anonymizer's (salt, input) → output
# contract, so a green run also means no mapping drift.
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go vet ./internal/metrics ./internal/trace ./internal/store ./internal/rulepack && go test -race ./internal/metrics ./internal/trace ./internal/store ./internal/rulepack"
go vet ./internal/metrics ./internal/trace ./internal/store ./internal/rulepack
go test -race ./internal/metrics ./internal/trace ./internal/store ./internal/rulepack

# Concurrency gauntlet: the packages whose correctness depends on the
# Program/Session split's locking — the shaped tree's two-phase design,
# the session worker pool and rewrite memo, the portal's per-salt
# sessions, the mapping ledger's append/commit serialization, and the
# job queue's worker pool — run twice under the race detector so
# scheduling varies. The chaos pass includes the restart-mid-job test:
# the portal is killed on both sides of a ledger commit and must resume
# to byte-identical output.
echo "== concurrency gauntlet: go test -race -count=2 (ipanon, anonymizer, store, jobs, portal, bench, parallel batch)"
go test -race -count=2 ./internal/ipanon ./internal/anonymizer ./internal/store ./internal/jobs ./internal/portal ./internal/bench
go test -race -count=2 -run 'Parallel|Chaos|Session|Trace|Store|Incremental|Equivalence' .
go test -race -count=2 -run 'Jobs|Queue|Chaos|Readyz|Drain' ./internal/jobs ./internal/portal

echo "== go test -race -cover ./... $*"
go test -race -coverprofile=coverage.out "$@" ./...

# Coverage ratchet: the total statement coverage must not fall below
# coverage_baseline.txt (set slightly under the measured total to absorb
# noise). Raise the baseline when coverage meaningfully improves; never
# lower it to make a red run green.
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub("%","",$NF); print $NF}')
floor=$(cat coverage_baseline.txt)
echo "== coverage ratchet: total ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
	echo "coverage ${total}% fell below the ${floor}% floor" >&2
	exit 1
}

# Observability drift gate (warn-only): re-run the golden corpus, emit a
# run report, and diff it against the checked-in baseline with conftrace.
# Rule-hit or outcome drift means the (salt, input) → decision contract
# moved — investigate before pushing; stage-latency drift is machine
# noise. The step warns but never fails the build (-fail-on-drift off);
# regenerate the baseline together with the golden outputs when a rule
# change is intentional:
#   go run ./cmd/confanon -salt golden-v1 -in testdata/golden/in \
#     -out /tmp/out -metrics-out testdata/baseline_report.json -leak-report=false
echo "== conftrace drift check vs testdata/baseline_report.json (warn-only)"
driftdir=$(mktemp -d)
go run ./cmd/confanon -salt golden-v1 -in testdata/golden/in \
	-out "$driftdir/out" -metrics-out "$driftdir/report.json" -leak-report=false >/dev/null
go run ./cmd/conftrace testdata/baseline_report.json "$driftdir/report.json"
rm -rf "$driftdir"

# Privacy/utility bench gate (hard-fail): run the benchmark harness over
# the small committed corpus shape and diff the scores against
# testdata/baseline_bench.json. Every score is deterministic in the
# seed, so any drift here is a real behavior change: privacy scores
# worsening (re-identification, fingerprint survival, identity leaks
# rising) or utility scores dropping (design equivalence, clean
# characteristics) beyond 1pp fails the build. Throughput is machine
# noise and only reported. Regenerate the baseline when a score change
# is intentional and understood:
#   go run ./cmd/confbench -seed 1 -routers 60 -networks 4 \
#     -out testdata/baseline_bench.json
echo "== confbench privacy/utility gate vs testdata/baseline_bench.json (hard-fail on drift)"
benchdir=$(mktemp -d)
go run ./cmd/confbench -seed 1 -routers 60 -networks 4 -q -out "$benchdir/bench.json"
go run ./cmd/conftrace -fail-on-drift testdata/baseline_bench.json "$benchdir/bench.json"
rm -rf "$benchdir"

# Rule-pack gate: every shipped example pack must parse, pass the
# document checks, and merge against this build's built-in inventory.
# The examples pin their fingerprints, so any edit to a pack without
# re-pinning — or any canonical-encoding change that silently moves
# every fingerprint (and with it the bench policy fingerprints) — fails
# here as a declared-fingerprint mismatch.
echo "== confvalidate -check-pack examples/rulepacks/*"
packargs=""
for p in examples/rulepacks/*.json examples/rulepacks/*.toml; do
	packargs="$packargs -check-pack $p"
done
# shellcheck disable=SC2086
go run ./cmd/confvalidate $packargs

# Short coverage-guided fuzz pass over the parsers that sit in front of
# the anonymizer. Crashers are persisted under testdata/fuzz/ and then
# replayed by the ordinary test step above, so a find here becomes a
# permanent regression test.
if [ "${CONFANON_SKIP_FUZZ:-0}" != "1" ]; then
	echo "== fuzz smoke: internal/config FuzzParse (10s)"
	go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/config
	echo "== fuzz smoke: internal/cregex FuzzParsePattern (10s)"
	go test -run '^$' -fuzz '^FuzzParsePattern$' -fuzztime 10s ./internal/cregex
fi

echo "== ok"
