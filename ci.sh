#!/bin/sh
# The repository's check gauntlet. Run before every push:
#
#   ./ci.sh           # build, vet, race-enabled tests, fuzz smoke
#   ./ci.sh -short    # same, but tests run with -short
#
# CONFANON_SKIP_FUZZ=1 skips the fuzz smoke (e.g. on very slow machines).
#
# The golden corpus under testdata/golden/ makes the test step a
# byte-level regression check on the anonymizer's (salt, input) → output
# contract, so a green run also means no mapping drift.
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./... $*"
go test -race "$@" ./...

# Short coverage-guided fuzz pass over the parsers that sit in front of
# the anonymizer. Crashers are persisted under testdata/fuzz/ and then
# replayed by the ordinary test step above, so a find here becomes a
# permanent regression test.
if [ "${CONFANON_SKIP_FUZZ:-0}" != "1" ]; then
	echo "== fuzz smoke: internal/config FuzzParse (10s)"
	go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/config
	echo "== fuzz smoke: internal/cregex FuzzParsePattern (10s)"
	go test -run '^$' -fuzz '^FuzzParsePattern$' -fuzztime 10s ./internal/cregex
fi

echo "== ok"
