#!/bin/sh
# The repository's check gauntlet. Run before every push:
#
#   ./ci.sh          # build, vet, race-enabled tests
#   ./ci.sh -short   # same, but tests run with -short
#
# The golden corpus under testdata/golden/ makes the test step a
# byte-level regression check on the anonymizer's (salt, input) → output
# contract, so a green run also means no mapping drift.
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "== ok"
