package confanon_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	. "confanon"
	"confanon/internal/metrics"
	"confanon/internal/portal"
)

const goldenSalt = "golden-v1"

func readGoldenDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	files := make(map[string]string)
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	if len(files) == 0 {
		t.Fatalf("no files in %s", dir)
	}
	return files
}

// This file pins the observability contract end to end: the registry's
// counters must agree exactly with the Stats and per-file outcomes the
// batch APIs report — in the serial and the parallel mode — and a
// portal GET /metrics scrape of the same registry must expose the very
// numbers the RunReport carries.

// checkStatsCounters asserts the registry's engine counters equal the
// accumulated Stats, series for series.
func checkStatsCounters(t *testing.T, counters map[string]float64, s Stats) {
	t.Helper()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"confanon_files_processed_total", s.Files},
		{"confanon_lines_total", s.Lines},
		{"confanon_words_total", s.WordsTotal},
		{"confanon_comment_words_removed_total", s.CommentWordsRemoved},
		{"confanon_comment_lines_removed_total", s.CommentLinesRemoved},
		{"confanon_tokens_hashed_total", s.TokensHashed},
		{"confanon_tokens_passed_total", s.TokensPassed},
		{"confanon_ips_mapped_total", s.IPsMapped},
		{"confanon_asns_mapped_total", s.ASNsMapped},
		{"confanon_communities_mapped_total", s.CommunitiesMapped},
		{"confanon_regexps_rewritten_total", s.RegexpsRewritten},
		{"confanon_regexps_unchanged_total", s.RegexpsUnchanged},
		{"confanon_regexp_fallbacks_total", s.RegexpFallbacks},
	} {
		if got := counters[c.name]; got != float64(c.want) {
			t.Errorf("%s = %v, want %d (Stats)", c.name, got, c.want)
		}
	}
	for id, n := range s.RuleHits() {
		series := `confanon_rule_hits_total{rule="` + string(id) + `"}`
		if got := counters[series]; got != float64(n) {
			t.Errorf("%s = %v, want %d", series, got, n)
		}
	}
}

// TestMetricsMatchCorpusSerial: after a serial fail-closed corpus run
// the registry equals the CorpusResult exactly — engine counters equal
// Stats, batch outcome counters equal the per-status file counts, and
// the attached RunReport snapshot equals a live read of the registry.
func TestMetricsMatchCorpusSerial(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	reg := NewMetricsRegistry()
	a := New(Options{Salt: []byte(goldenSalt), Metrics: reg})
	res, err := a.CorpusContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	counters := reg.Counters()
	checkStatsCounters(t, counters, res.Stats)
	if got := counters[`confanon_batch_files_total{status="ok"}`]; got != float64(res.Report.FilesOK) {
		t.Errorf("batch ok counter = %v, want %d", got, res.Report.FilesOK)
	}
	if res.Report.FilesOK != len(in) || res.Report.FilesFailed != 0 || res.Report.FilesQuarantined != 0 {
		t.Errorf("unexpected outcome counts: %+v", res.Report)
	}
	if !reflect.DeepEqual(res.Report.Counters, counters) {
		t.Error("RunReport.Counters does not equal a live registry read")
	}
}

// TestMetricsMatchCorpusParallel: the parallel path shares one registry
// across workers, so the merged counters must equal the merged Stats
// with no gather step. Run with -race this also exercises concurrent
// registration and flushing.
func TestMetricsMatchCorpusParallel(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	reg := NewMetricsRegistry()
	res, err := ParallelCorpusContext(context.Background(),
		Options{Salt: []byte(goldenSalt), Metrics: reg}, in, 4)
	if err != nil {
		t.Fatal(err)
	}
	counters := reg.Counters()
	checkStatsCounters(t, counters, res.Stats)
	if got := counters[`confanon_batch_files_total{status="ok"}`]; got != float64(res.Report.FilesOK) {
		t.Errorf("batch ok counter = %v, want %d", got, res.Report.FilesOK)
	}
	if res.Report.FilesOK != len(in) {
		t.Errorf("FilesOK = %d, want %d", res.Report.FilesOK, len(in))
	}
}

// TestPortalScrapeMatchesRunReport is the acceptance check of the
// observability layer: a portal serving the same registry a corpus run
// reported into must expose, at GET /metrics, exactly the counter
// values the RunReport carries — series for series, parsed back out of
// the Prometheus text.
func TestPortalScrapeMatchesRunReport(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	reg := NewMetricsRegistry()
	a := New(Options{Salt: []byte(goldenSalt), Metrics: reg, Strict: true})
	res, err := a.CorpusContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Counters) == 0 {
		t.Fatal("RunReport carries no counters")
	}

	store := portal.NewStore()
	store.SetMetrics(reg)
	store.SetAdminToken("sesame")
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	scrape := func(token string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if token != "" {
			req.Header.Set("X-Admin-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The gate: wrong token is 401, right token is 200.
	if resp := scrape("wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong admin token: status %d, want 401", resp.StatusCode)
	}
	resp := scrape("sesame")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scraped, err := metrics.ParseText(string(body))
	if err != nil {
		t.Fatalf("parsing scrape: %v", err)
	}
	for series, want := range res.Report.Counters {
		got, ok := scraped[series]
		if !ok {
			t.Errorf("scrape is missing series %s", series)
			continue
		}
		if got != want {
			t.Errorf("scrape %s = %v, report says %v", series, got, want)
		}
	}
}

// TestPortalMetricsFailClosed: with no admin token configured the
// observability endpoints do not exist — 404, exactly like any unknown
// path — even when a registry is wired.
func TestPortalMetricsFailClosed(t *testing.T) {
	store := portal.NewStore()
	store.SetMetrics(NewMetricsRegistry())
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without admin token: status %d, want 404", path, resp.StatusCode)
		}
	}
}
