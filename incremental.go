package confanon

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"confanon/internal/anonymizer"
	"confanon/internal/rulepack"
	"confanon/internal/store"
)

// Incremental re-anonymization: a recorded run emits, per file and per
// line, the output each input line contributed plus the engine's
// cross-line resume checkpoint. A later run over a mutated corpus diffs
// each file against the cache, reuses the cached outputs for the
// unchanged line prefix, and re-enters the engine only at the first
// divergent line — producing output byte-identical to re-anonymizing
// the whole corpus from the same restored mapping state (a golden test
// pins this at several worker counts).
//
// The identity argument: in a full run from restored state, every
// address an unchanged file references is already resolved in the tree
// (the prior run resolved it and the ledger/state restore replayed it),
// so unchanged files contribute no new tree insertions. The insertion
// sequence of a full run is therefore exactly the pins of the changed
// files in sorted-name order followed by their full sequences — which
// is precisely what the incremental census replays. The cached prefix
// outputs are sound because a prefix's engine state depends only on the
// prefix's own lines (captured per line as a ResumeState checkpoint)
// and on mappings that are, by the same argument, identical.

// CorpusCacheSchema identifies the incremental line-cache JSON layout.
const CorpusCacheSchema = "confanon.filecache/v1"

// ResumeState is the engine's serializable cross-line checkpoint,
// stored after every cached line (re-exported from the engine).
type ResumeState = anonymizer.ResumeState

// LineCache is one input line's cache entry: its content hash, the
// output it contributed (absent when the line was dropped), and the
// resume checkpoint after it. It stores only anonymized output — never
// the cleartext line, which is represented solely by its hash.
type LineCache struct {
	H string      `json:"h"`
	O string      `json:"o,omitempty"`
	D bool        `json:"d,omitempty"`
	S ResumeState `json:"s"`
}

// FileCache is one file's cache: the SHA-256 of its cleartext (for the
// whole-file fast path) and its per-line records.
type FileCache struct {
	Sum   string      `json:"sum"`
	Lines []LineCache `json:"lines"`
}

// CorpusCache is the persistent artifact of a recorded run. SaltFP and
// OptsFP fingerprint the mapping-relevant configuration; a cache whose
// fingerprints do not match the current session is ignored wholesale
// (every file reprocessed) rather than half-trusted. Like the mapping
// ledger, the cache holds values derived from cleartext (line hashes,
// anonymized outputs) — store it with the same care as the salt.
type CorpusCache struct {
	Schema string                `json:"schema"`
	SaltFP string                `json:"salt_fp"`
	OptsFP string                `json:"opts_fp"`
	Files  map[string]*FileCache `json:"files"`
}

// Encode serializes the cache for storage.
func (c *CorpusCache) Encode() ([]byte, error) { return json.Marshal(c) }

// DecodeCorpusCache parses a stored cache, rejecting foreign schemas.
func DecodeCorpusCache(data []byte) (*CorpusCache, error) {
	var c CorpusCache
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("corpus cache: %w", err)
	}
	if c.Schema != CorpusCacheSchema {
		return nil, fmt.Errorf("corpus cache: unsupported schema %q (want %q)", c.Schema, CorpusCacheSchema)
	}
	if c.Files == nil {
		c.Files = make(map[string]*FileCache)
	}
	return &c, nil
}

// IncrementalSummary reports how an incremental run dispatched its
// files: reused whole from the cache, resumed mid-file, or reprocessed
// in full. Line counts cover the same split. CacheInvalidated is set
// when a prior cache was supplied but its fingerprints did not match
// the session (wrong salt, changed options, or changed sensitive
// tokens), forcing a full run.
type IncrementalSummary struct {
	FilesReused      int  `json:"files_reused"`
	FilesPartial     int  `json:"files_partial"`
	FilesFull        int  `json:"files_full"`
	LinesReused      int  `json:"lines_reused"`
	LinesRewritten   int  `json:"lines_rewritten"`
	CacheInvalidated bool `json:"cache_invalidated,omitempty"`
}

// cacheSaltFP is the salt fingerprint both the mapping ledger and the
// corpus cache are keyed by.
func (a *Anonymizer) cacheSaltFP() string { return store.SaltFingerprint(a.prog.opts.Salt) }

// cacheOptsFP fingerprints every non-salt input that can change a
// line's output: the regexp style, comment retention, the IP scheme,
// the compiled rule packs (swapping or editing a pack can rewrite any
// line, so it invalidates every cached line), and the session's
// operator-added sensitive tokens (a token added since the cache was
// recorded invalidates every cached line — the token could appear
// anywhere). Strict mode is deliberately absent: it gates emission,
// never alters a line, and gating always re-runs.
func (a *Anonymizer) cacheOptsFP() string {
	h := sha256.New()
	fmt.Fprintf(h, "confanon.optsfp/style=%v/keep=%t/stateless=%t",
		a.prog.opts.Style, a.prog.opts.KeepComments, a.prog.opts.StatelessIP)
	fmt.Fprintf(h, "/packs=%s", rulepack.FingerprintsOf(a.prog.Packs()))
	for _, tok := range a.sess.SensitiveTokens() {
		fmt.Fprintf(h, "/tok=%q", tok)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// NewCorpusCache returns an empty cache fingerprinted for this session;
// passing it (or nil) as the prior cache makes IncrementalCorpusContext
// a recording full run.
func (a *Anonymizer) NewCorpusCache() *CorpusCache {
	return &CorpusCache{
		Schema: CorpusCacheSchema,
		SaltFP: a.cacheSaltFP(),
		OptsFP: a.cacheOptsFP(),
		Files:  make(map[string]*FileCache),
	}
}

func contentSum(text string) string {
	s := sha256.Sum256([]byte(text))
	return hex.EncodeToString(s[:])
}

// prefixOutputs returns the kept output lines of the first p cached
// lines.
func (fc *FileCache) prefixOutputs(p int) []string {
	outs := make([]string, 0, p)
	for _, lc := range fc.Lines[:p] {
		if !lc.D {
			outs = append(outs, lc.O)
		}
	}
	return outs
}

// text reassembles the file's full cached output.
func (fc *FileCache) text() string {
	return anonymizer.JoinOutputs(fc.prefixOutputs(len(fc.Lines)))
}

// stateAt returns the resume checkpoint after the first p lines.
func (fc *FileCache) stateAt(p int) ResumeState {
	if p == 0 {
		return ResumeState{}
	}
	return fc.Lines[p-1].S
}

func toLineCaches(recs []anonymizer.LineRecord) []LineCache {
	out := make([]LineCache, len(recs))
	for i, r := range recs {
		out[i] = LineCache{H: r.Hash, O: r.Out, D: r.Drop, S: r.Next}
	}
	return out
}

// File dispositions of an incremental run.
const (
	modeReuse   = iota // content hash matched: output straight from cache
	modePartial        // line prefix matched: engine resumed at divergence
	modeFull           // no usable entry: full recorded reprocess
)

func modeName(mode int) string {
	switch mode {
	case modeReuse:
		return "reused"
	case modePartial:
		return "partial"
	}
	return "full"
}

// incrPlan is the per-file work order the classifier produces.
type incrPlan struct {
	name  string
	mode  int
	sum   string
	p     int      // reused prefix length in lines
	lines []string // split cleartext; nil for modeReuse
	fc    *FileCache
}

// needsEngine reports whether the plan has lines to run (a modePartial
// plan whose new content is a pure prefix of the cached file has none).
func (pl *incrPlan) needsEngine() bool {
	return pl.mode == modeFull || (pl.mode == modePartial && pl.p < len(pl.lines))
}

// incrOut is one plan's outcome: the file result, its next-cache entry
// (nil for failed files — a failed file is never half-cached), and the
// line accounting for the summary.
type incrOut struct {
	res               FileResult
	fc                *FileCache
	reused, rewritten int
}

// IncrementalCorpusContext anonymizes a corpus like
// ParallelCorpusContext, but diffs each file against the line cache of
// a prior recorded run and reprocesses only what changed: a file whose
// content hash matches is served from the cache without touching the
// engine; a file sharing a line prefix with its cached form reuses the
// prefix outputs and resumes the engine at the first divergent line;
// everything else (new files, fingerprint mismatches, first runs) is
// processed in full. The returned CorpusCache is the recording of this
// run, to be stored for the next one; prior == nil (or a fingerprint
// mismatch) makes the call a recording full run.
//
// The contract: called on a Session restored from the prior run's
// mapping state (UseStore / LoadMapping), the outputs are
// byte-identical to ParallelCorpusContext over the same corpus on the
// same restored Session, at every worker count. Strict leak-gating
// re-gates every file — including cache-served ones — against the
// corpus-wide recorder, so quarantine decisions are never stale.
// Res.Stats covers only the reprocessed work (cache-served files spend
// no engine time, which is the point); res.Incremental reports the
// split.
func (a *Anonymizer) IncrementalCorpusContext(ctx context.Context, files map[string]string, prior *CorpusCache, workers int) (*CorpusResult, *CorpusCache, error) {
	if workers < 1 {
		workers = 1
	}
	saltFP := a.cacheSaltFP()
	optsFP := a.cacheOptsFP()
	usable := prior != nil && prior.Schema == CorpusCacheSchema &&
		prior.SaltFP == saltFP && prior.OptsFP == optsFP

	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)

	res := &CorpusResult{
		Files:       make(map[string]FileResult, len(files)),
		Incremental: &IncrementalSummary{CacheInvalidated: prior != nil && !usable},
	}
	next := &CorpusCache{
		Schema: CorpusCacheSchema,
		SaltFP: saltFP,
		OptsFP: optsFP,
		Files:  make(map[string]*FileCache, len(files)),
	}
	sp := a.traceCorpus("incremental-corpus", len(files), workers)
	finish := func(err error) (*CorpusResult, *CorpusCache, error) {
		if err != nil {
			a.batch.countCancel()
		}
		a.endCorpus(sp, err)
		res.Stats = a.Stats()
		res.finishReport(a.reg, a.prog.Packs())
		return res, next, err
	}

	// Classify: longest common line-hash prefix against the cache.
	plans := make([]incrPlan, len(names))
	for i, n := range names {
		text := files[n]
		sum := contentSum(text)
		var fc *FileCache
		if usable {
			fc = prior.Files[n]
		}
		if fc != nil && fc.Sum == sum {
			plans[i] = incrPlan{name: n, mode: modeReuse, sum: sum, p: len(fc.Lines), fc: fc}
			continue
		}
		lines := anonymizer.SplitLines(text)
		p := 0
		if fc != nil {
			max := len(lines)
			if len(fc.Lines) < max {
				max = len(fc.Lines)
			}
			for p < max && fc.Lines[p].H == anonymizer.LineHash(lines[p]) {
				p++
			}
		}
		mode := modeFull
		if p > 0 {
			mode = modePartial
		}
		plans[i] = incrPlan{name: n, mode: mode, sum: sum, p: p, lines: lines, fc: fc}
	}

	// Census only the files the engine will touch: unchanged files
	// contribute no new tree insertions (their addresses are already
	// resolved in the restored state), so replaying just the changed
	// files' traces in sorted order reproduces a full run's insertion
	// sequence exactly.
	var engineNames []string
	for i := range plans {
		if plans[i].needsEngine() {
			engineNames = append(engineNames, plans[i].name)
		}
	}
	if !a.prog.opts.StatelessIP && len(engineNames) > 0 {
		if err := a.censusReplay(ctx, engineNames, files, workers, res, sp); err != nil {
			return finish(err)
		}
	}

	// Dispatch: cache-served plans are assembled inline (no engine, no
	// worker); engine plans run on the worker pool. Each slot of outs is
	// written by exactly one goroutine.
	outs := make([]*incrOut, len(plans))
	var work []int
	for i := range plans {
		pl := &plans[i]
		if _, failed := res.Files[pl.name]; failed { // census already failed it
			continue
		}
		if !pl.needsEngine() {
			fc := pl.fc
			if pl.mode == modePartial { // pure-prefix shrink: trim the cache, no engine work
				fc = &FileCache{Sum: pl.sum, Lines: pl.fc.Lines[:pl.p]}
			}
			outs[i] = &incrOut{
				res:    FileResult{Name: pl.name, Status: FileOK, Text: fc.text()},
				fc:     fc,
				reused: len(fc.Lines),
			}
			continue
		}
		work = append(work, i)
	}
	workCh := make(chan int, len(work))
	for _, i := range work {
		workCh <- i
	}
	close(workCh)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := a.sess.Acquire()
			defer a.sess.Release(wk)
			wk.SetCorpusSpan(spanID(sp))
			for i := range workCh {
				if ctx.Err() != nil {
					break
				}
				pl := &plans[i]
				if pl.mode == modeFull {
					out, recs, ferr := wk.SafeAnonymizeRecorded(pl.name, files[pl.name])
					if ferr != nil {
						outs[i] = &incrOut{res: FileResult{Name: pl.name, Status: FileFailed, Err: ferr}}
						continue
					}
					outs[i] = &incrOut{
						res:       FileResult{Name: pl.name, Status: FileOK, Text: out},
						fc:        &FileCache{Sum: pl.sum, Lines: toLineCaches(recs)},
						rewritten: len(recs),
					}
					continue
				}
				tailOuts, tailRecs, ferr := wk.SafeAnonymizeTail(pl.name, pl.lines[pl.p:], pl.p, pl.fc.stateAt(pl.p))
				if ferr != nil {
					outs[i] = &incrOut{res: FileResult{Name: pl.name, Status: FileFailed, Err: ferr}}
					continue
				}
				lines := append(append([]LineCache(nil), pl.fc.Lines[:pl.p]...), toLineCaches(tailRecs)...)
				outs[i] = &incrOut{
					res:       FileResult{Name: pl.name, Status: FileOK, Text: anonymizer.JoinOutputs(append(pl.fc.prefixOutputs(pl.p), tailOuts...))},
					fc:        &FileCache{Sum: pl.sum, Lines: lines},
					reused:    pl.p,
					rewritten: len(tailRecs),
				}
			}
		}()
	}
	wg.Wait()

	// Gate and account in sorted order after every worker has published
	// its recorder entries — the same deterministic-quarantine protocol
	// as ParallelCorpusContext, applied to cache-served files too.
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	wk.SetCorpusSpan(spanID(sp))
	for i := range plans {
		o := outs[i]
		if o == nil { // census-failed (already recorded) or cancelled before start
			continue
		}
		pl := &plans[i]
		r := o.res
		if a.strict && r.Status == FileOK {
			if leaks := confirmedLeaks(wk.LeakReport(r.Text)); len(leaks) > 0 {
				r = FileResult{Name: pl.name, Status: FileQuarantined, Leaks: leaks}
			}
		}
		res.Files[pl.name] = r
		a.batch.countFile(r.Status)
		if r.Status == FileFailed {
			continue // a failed file is dropped from the next cache
		}
		// Quarantined files keep their cache entry: the lines are valid,
		// only emission was withheld.
		next.Files[pl.name] = o.fc
		switch pl.mode {
		case modeReuse:
			res.Incremental.FilesReused++
		case modePartial:
			res.Incremental.FilesPartial++
		default:
			res.Incremental.FilesFull++
		}
		res.Incremental.LinesReused += o.reused
		res.Incremental.LinesRewritten += o.rewritten
		a.batch.countIncr(modeName(pl.mode))
	}
	return finish(ctx.Err())
}
