package confanon

// The benchmark harness: one benchmark per experiment in DESIGN.md's
// per-experiment index (E1–E9 reproduce the paper's quantitative claims;
// A1–A3 are the design-choice ablations). Each benchmark drives the
// corresponding function in internal/experiments and reports the headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every row recorded in EXPERIMENTS.md (at reduced scale; run
// cmd/confexp -full for the full-scale report).

import (
	"io"
	"strings"
	"testing"

	"confanon/internal/experiments"
	"confanon/internal/netgen"
)

func BenchmarkE1_DatasetGeneration(b *testing.B) {
	var r experiments.E1Result
	for i := 0; i < b.N; i++ {
		r = experiments.E1Dataset(0.2)
	}
	b.ReportMetric(float64(r.Routers), "routers")
	b.ReportMetric(float64(r.P25), "lines-p25")
	b.ReportMetric(float64(r.P90), "lines-p90")
}

func BenchmarkE2_Figure1(b *testing.B) {
	pass := 0
	for i := 0; i < b.N; i++ {
		if experiments.E2Figure1().OK() {
			pass++
		}
	}
	if pass != b.N {
		b.Fatalf("E2 failed %d/%d runs", b.N-pass, b.N)
	}
}

func BenchmarkE3_CommentStripping(b *testing.B) {
	var r experiments.E3Result
	for i := 0; i < b.N; i++ {
		r = experiments.E3Comments(20, 6)
	}
	b.ReportMetric(r.MeanPct, "mean-%")
	b.ReportMetric(r.P90Pct, "p90-%")
}

func BenchmarkE4_RegexpRewrite(b *testing.B) {
	var r experiments.E4Result
	for i := 0; i < b.N; i++ {
		r = experiments.E4Regexps(0.1)
	}
	if r.RewriteMismatches != 0 {
		b.Fatalf("rewrite mismatches: %+v", r)
	}
	b.ReportMetric(float64(r.RewritesVerified), "rewrites-verified")
}

func BenchmarkE5_Suite1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E5Suite1(0.1)
		if r.Passed != r.Networks {
			b.Fatalf("suite 1 failures: %s", r)
		}
	}
}

func BenchmarkE6_Suite2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E6Suite2(0.1)
		if r.Passed != r.Networks {
			b.Fatalf("suite 2 failures: %s", r)
		}
	}
}

func BenchmarkE7_LeakIteration(b *testing.B) {
	var r experiments.E7Result
	for i := 0; i < b.N; i++ {
		r = experiments.E7LeakIteration(4)
		if !r.Converged {
			b.Fatal("did not converge")
		}
	}
	b.ReportMetric(float64(r.Iterations), "iterations")
}

func BenchmarkE8_Fingerprint(b *testing.B) {
	var r experiments.E8Result
	for i := 0; i < b.N; i++ {
		r = experiments.E8Fingerprint(0.1)
	}
	b.ReportMetric(float64(r.SubnetUnique.Unique), "subnet-unique")
	b.ReportMetric(r.SubnetUnique.EntropyBits, "subnet-entropy-bits")
	b.ReportMetric(float64(r.PeeringUnique.Unique), "peering-unique")
}

func BenchmarkE9_Throughput(b *testing.B) {
	var r experiments.E9Result
	for i := 0; i < b.N; i++ {
		r = experiments.E9Throughput(30000)
	}
	b.ReportMetric(r.LinesPerSec, "lines/s")
}

func BenchmarkA1_IPSchemes(b *testing.B) {
	var r experiments.A1Result
	for i := 0; i < b.N; i++ {
		r = experiments.A1IPSchemes(10000)
	}
	b.ReportMetric(r.TreeNsPerAddr, "tree-ns/addr")
	b.ReportMetric(r.CryptoNsPerAddr, "crypto-ns/addr")
}

func BenchmarkA2_RegexMinimize(b *testing.B) {
	var r experiments.A2Result
	for i := 0; i < b.N; i++ {
		r = experiments.A2RegexForms()
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(last.AltLen), "alt-chars")
	b.ReportMetric(float64(last.MinLen), "min-chars")
}

func BenchmarkA3_Segmentation(b *testing.B) {
	var r experiments.A3Result
	for i := 0; i < b.N; i++ {
		r = experiments.A3Segmentation()
	}
	b.ReportMetric(float64(r.PreservedWith), "preserved-with")
	b.ReportMetric(float64(r.PreservedWithout), "preserved-without")
}

func BenchmarkE10_JunOS(b *testing.B) {
	var r experiments.E10Result
	for i := 0; i < b.N; i++ {
		r = experiments.E10JunOS(4)
	}
	if r.Suite1Passed != r.Networks || r.Suite2Passed != r.Networks {
		b.Fatalf("JunOS suites failed: %s", r)
	}
	b.ReportMetric(float64(r.CrossDialectEq), "cross-dialect-eq")
}

// BenchmarkAnonymizeCorpus is the end-to-end pipeline microbenchmark: one
// 40-router network through prescan + anonymize.
func BenchmarkAnonymizeCorpus(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 4242, Kind: netgen.Backbone, Routers: 40})
	files := n.RenderAll()
	lines := n.TotalLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(Options{Salt: []byte("bench")})
		a.Corpus(files)
	}
	b.ReportMetric(float64(lines), "lines/corpus")
}

// BenchmarkStream measures the reader-to-writer path: the same 40-router
// corpus concatenated into one input, streamed in both IP schemes. The
// stateless variant is the constant-memory single-pass path; the tree
// variant buffers the input for its prescan, so the gap between the two
// is the cost of shaping.
func BenchmarkStream(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 4242, Kind: netgen.Backbone, Routers: 40})
	var sb strings.Builder
	for _, text := range n.RenderAll() {
		sb.WriteString(text)
	}
	input := sb.String()
	lines := strings.Count(input, "\n")
	for _, cfg := range []struct {
		name      string
		stateless bool
	}{{"stateless", true}, {"tree", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				a := New(Options{Salt: []byte("bench"), StatelessIP: cfg.stateless})
				if err := a.Stream(strings.NewReader(input), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}
