// Carrier: the paper's headline workflow at population scale. Generate 31
// backbone and enterprise networks (the stand-in for the carrier dataset),
// anonymize each with its own owner salt, run both §5 validation suites on
// every network, and run the §6.1 leak report — printing one summary row
// per network.
//
//	go run ./examples/carrier
package main

import (
	"fmt"

	"confanon"
	"confanon/internal/netgen"
)

func main() {
	const networks = 31
	fmt.Printf("%-4s %-14s %-16s %8s %8s %7s %7s %7s %6s\n",
		"net", "name", "kind", "routers", "lines", "suite1", "suite2", "leaks", "regex")

	totalRouters, totalLines, pass1, pass2, clean := 0, 0, 0, 0, 0
	for i := 0; i < networks; i++ {
		kind, kindName := netgen.Backbone, "backbone"
		if i%2 == 1 {
			kind, kindName = netgen.Enterprise, "enterprise"
		}
		n := netgen.Generate(netgen.Params{
			Seed: int64(1000 + i), Kind: kind,
			// A few networks run JunOS (footnote 2: the techniques apply
			// to JunOS directly).
			JunOS: i%8 == 5,
			// Regexp prevalence per the paper: alternation in ~10/31,
			// public ranges 2/31, private ranges 3/31, community
			// regexps 5/31, community ranges 2/31.
			UseASPathAlternation: i%3 == 0,
			UsePublicASNRanges:   i == 4 || i == 20,
			UsePrivateASNRanges:  i == 7 || i == 15 || i == 23,
			UseCommunityRegexps:  i%6 == 2,
			UseCommunityRanges:   i == 2 || i == 14,
			Compartmentalized:    i%3 == 1,
		})
		pre := n.RenderAll()
		a := confanon.New(confanon.Options{Salt: []byte(n.Salt)})
		post := a.Corpus(pre)
		rep := confanon.Validate(pre, post)
		leaks := a.Leaks(post)
		real, fps := 0, 0
		for _, l := range leaks {
			if l.LikelyFalsePositive {
				fps++
			} else {
				real++
			}
		}

		s1, s2, lk := "PASS", "PASS", "clean"
		if len(rep.Suite1) > 0 {
			s1 = "FAIL"
		} else {
			pass1++
		}
		if rep.Suite2.OK() {
			pass2++
		} else {
			s2 = "FAIL"
		}
		if real == 0 {
			clean++
			if fps > 0 {
				lk = fmt.Sprintf("%dfp", fps)
			}
		} else {
			lk = fmt.Sprintf("%d", real)
		}
		st := a.Stats()
		totalRouters += len(n.Routers)
		totalLines += int(st.Lines)
		if n.Params.JunOS {
			kindName += "/junos"
		}
		fmt.Printf("%-4d %-14s %-16s %8d %8d %7s %7s %7s %6d\n",
			i+1, n.Params.Name, kindName, len(n.Routers), st.Lines, s1, s2, lk, st.RegexpsRewritten)
	}
	fmt.Printf("\ntotal: %d routers, %d config lines across %d networks\n",
		totalRouters, totalLines, networks)
	fmt.Printf("suite 1 pass: %d/%d   suite 2 pass: %d/%d   leak-clean: %d/%d\n",
		pass1, networks, pass2, networks, clean, networks)
}
