// Quickstart: anonymize the paper's Figure 1 configuration and print the
// result next to the original.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"confanon"
)

const figure1 = `hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 2.2.129.2 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
!
route-map UUNET-import permit 20
!
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 any
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
end
`

func main() {
	a := confanon.New(confanon.Options{Salt: []byte("foo-corp-secret")})
	out := a.File(figure1)

	fmt.Println("=== original (Figure 1) ===")
	fmt.Print(figure1)
	fmt.Println("\n=== anonymized ===")
	fmt.Print(out)

	s := a.Stats()
	fmt.Printf("\n%d lines; %d comment words removed; %d tokens hashed, %d passed;\n",
		s.Lines, s.CommentWordsRemoved, s.TokensHashed, s.TokensPassed)
	fmt.Printf("%d addresses mapped, %d ASNs permuted, %d communities mapped, %d regexps rewritten\n",
		s.IPsMapped, s.ASNsMapped, s.CommunitiesMapped, s.RegexpsRewritten)

	if leaks := a.Leaks(map[string]string{"cr1": out}); len(leaks) == 0 {
		fmt.Println("leak report: clean")
	} else {
		fmt.Println("leak report:", leaks)
	}
}
