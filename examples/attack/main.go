// Attack: the §6 security evaluation. Over a population of networks,
// measure (a) that the subnet-size and peering fingerprints survive
// anonymization exactly (the attack premise), (b) how well a
// distance-matching attacker re-identifies anonymized corpora against
// the population (the open question the paper leaves to experiment),
// and (c) how many networks carry internal compartmentalization that
// would defeat insider probing.
//
// The scoring is the shared internal/bench privacy suite — the same
// code the confbench CI gate runs — so this walkthrough and the
// benchmark cannot diverge.
//
//	go run ./examples/attack
package main

import (
	"fmt"

	"confanon"
	"confanon/internal/bench"
	"confanon/internal/fingerprint"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

func main() {
	const population = 31
	arts := make([]bench.NetworkArtifacts, 0, population)
	compartmentalized := 0

	for i := 0; i < population; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{
			Seed: int64(7000 + i), Kind: kind,
			Compartmentalized: i%3 == 1, // ~10 of 31 per the paper
		})
		pre := n.RenderAll()
		a := confanon.New(confanon.Options{Salt: []byte(n.Salt)})
		post := a.Corpus(pre)

		postCfg := validate.ParseAll(post)
		art := bench.NetworkArtifacts{
			Pre:      validate.ParseAll(pre),
			Post:     postCfg,
			Identity: n.IdentityTokens(),
		}
		for _, text := range post {
			art.PostText = append(art.PostText, text)
		}
		arts = append(arts, art)
		if fingerprint.Compartmentalized(postCfg) {
			compartmentalized++
		}
	}

	priv := bench.PrivacyOf(arts, 5)
	util := bench.UtilityOf(arts)

	// (a) The attacker sees the anonymized configs; the fingerprint he
	// computes equals the one of the real network.
	fmt.Printf("fingerprints preserved by anonymization: subnet %.0f%%, peering %.0f%% of %d networks\n\n",
		priv.SubnetMatchPct, priv.PeeringMatchPct, population)

	fmt.Println("re-identification by fingerprint distance (attacker knows the population):")
	fmt.Printf("  subnet size:    top-1 %5.1f%%  top-5 %5.1f%%  (%.2f bits, %.0f%% unique)\n",
		priv.SubnetTop1Pct, priv.SubnetTopKPct, priv.SubnetEntropyBits, priv.SubnetUniquePct)
	fmt.Printf("  peering:        top-1 %5.1f%%  top-5 %5.1f%%  (%.2f bits, %.0f%% unique)\n",
		priv.PeeringTop1Pct, priv.PeeringTopKPct, priv.PeeringEntropyBits, priv.PeeringUniquePct)
	fmt.Printf("  both combined:  top-1 %5.1f%%  top-5 %5.1f%%\n",
		priv.CombinedTop1Pct, priv.CombinedTopKPct)

	fmt.Printf("\ninterpretation: with %.0f%% of subnet fingerprints unique, an attacker who\n",
		priv.SubnetUniquePct)
	fmt.Println("could measure subnet structure externally would identify most networks —")
	fmt.Println("the paper's conjectured risk. Peering fingerprints are coarser; edge")
	fmt.Println("networks hide in larger anonymity sets.")

	fmt.Printf("\nidentity tokens leaked into anonymized output: %.0f%% of networks\n",
		priv.IdentityLeakPct)
	fmt.Printf("routing design preserved (the §5 utility bargain): %.0f%% of networks\n",
		util.DesignEquivPct)
	fmt.Printf("insider-resistant (NAT/probe-filter compartmentalization): %d/%d networks\n",
		compartmentalized, population)
}
