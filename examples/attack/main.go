// Attack: the §6 security evaluation. Over a population of networks,
// measure (a) that the subnet-size and peering fingerprints survive
// anonymization exactly (the attack premise), (b) how unique those
// fingerprints are across the population (the open question the paper
// leaves to experiment), and (c) how many networks carry internal
// compartmentalization that would defeat insider probing.
//
//	go run ./examples/attack
package main

import (
	"fmt"

	"confanon"
	"confanon/internal/config"
	"confanon/internal/fingerprint"
	"confanon/internal/netgen"
)

func main() {
	const population = 31
	var subnetKeys, peeringKeys []string
	survived, compartmentalized := 0, 0

	for i := 0; i < population; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{
			Seed: int64(7000 + i), Kind: kind,
			Compartmentalized: i%3 == 1, // ~10 of 31 per the paper
		})
		pre := n.RenderAll()
		a := confanon.New(confanon.Options{Salt: []byte(n.Salt)})
		post := a.Corpus(pre)

		preCfg := parseAll(pre)
		postCfg := parseAll(post)

		// (a) The attacker sees the anonymized configs; the fingerprint
		// he computes equals the one of the real network.
		sPre, sPost := fingerprint.SubnetOf(preCfg).Key(), fingerprint.SubnetOf(postCfg).Key()
		pPre, pPost := fingerprint.PeeringOf(preCfg).Key(), fingerprint.PeeringOf(postCfg).Key()
		if sPre == sPost && pPre == pPost {
			survived++
		}
		subnetKeys = append(subnetKeys, sPost)
		peeringKeys = append(peeringKeys, pPost)
		if fingerprint.Compartmentalized(postCfg) {
			compartmentalized++
		}
	}

	fmt.Printf("fingerprints preserved by anonymization: %d/%d networks\n\n", survived, population)
	sa := fingerprint.Analyze(subnetKeys)
	pa := fingerprint.Analyze(peeringKeys)
	fmt.Println("subnet-size fingerprint uniqueness:")
	fmt.Println("  ", sa)
	fmt.Println("peering-structure fingerprint uniqueness:")
	fmt.Println("  ", pa)
	fmt.Printf("\ninterpretation: with %d/%d subnet fingerprints unique, an attacker who\n",
		sa.Unique, population)
	fmt.Println("could measure subnet structure externally would identify most networks —")
	fmt.Println("the paper's conjectured risk. Peering fingerprints are coarser; edge")
	fmt.Println("networks hide in larger anonymity sets.")
	fmt.Printf("\ninsider-resistant (NAT/probe-filter compartmentalization): %d/%d networks\n",
		compartmentalized, population)
}

func parseAll(files map[string]string) []*config.Config {
	var out []*config.Config
	for _, text := range files {
		out = append(out, config.Parse(text))
	}
	return out
}
