// Regexrewrite: demonstrate the §4.4/§4.5 regexp machinery directly —
// language enumeration over the 2^16 ASN universe, rewriting under the
// permutation in both the paper's alternation form and the minimal-DFA
// form, and the bijection check that defines correctness.
//
//	go run ./examples/regexrewrite
package main

import (
	"fmt"

	"confanon/internal/asn"
	"confanon/internal/cregex"
)

func main() {
	perms := asn.NewSalted([]byte("example-salt"))

	patterns := []string{
		"_1239_",             // literal: rewritten in place
		"70[1-3]",            // the paper's worked range example
		"(_1239_|_70[2-5]_)", // Figure 1's as-path regexp
		"_1239_.*_70[2-5]_",  // multi-number path expression
		"645[2-3][0-9]",      // private-only: left untouched
		".*",                 // universe: left untouched
	}
	for _, p := range patterns {
		re, err := cregex.Parse(p)
		if err != nil {
			fmt.Printf("%-22s parse error: %v\n", p, err)
			continue
		}
		lang := re.Language()
		fmt.Printf("pattern %-22s accepts %d ASNs", p, len(lang))
		if len(lang) > 0 && len(lang) <= 8 {
			fmt.Printf(" %v", lang)
		}
		fmt.Println()

		alt, err := cregex.RewriteASN(p, perms.ASN.Map, cregex.Alternation)
		if err != nil {
			fmt.Println("  rewrite error:", err)
			continue
		}
		min, _ := cregex.RewriteASN(p, perms.ASN.Map, cregex.Minimal)
		fmt.Printf("  alternation: %s\n", truncate(alt.Pattern, 70))
		fmt.Printf("  minimal:     %s\n", truncate(min.Pattern, 70))

		// The correctness condition: orig accepts a <=> rewritten
		// accepts perm(a), for every ASN in the universe.
		rew, err := cregex.Parse(alt.Pattern)
		if err != nil {
			fmt.Println("  reparse error:", err)
			continue
		}
		ok := true
		for _, a := range lang {
			if !rew.MatchASN(perms.ASN.Map(a)) {
				ok = false
			}
		}
		if len(rew.Language()) != len(lang) {
			ok = false
		}
		fmt.Printf("  bijection check: %v\n\n", ok)
	}

	// Community rewriting: both halves move.
	comm := "701:7[1-5].."
	res, err := cregex.RewriteCommunity(comm, perms.ASN.Map, perms.Value.Map, cregex.Minimal)
	if err != nil {
		fmt.Println("community rewrite error:", err)
		return
	}
	fmt.Printf("community %s\n  -> %s\n", comm, truncate(res.Pattern, 100))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + fmt.Sprintf("... (%d chars)", len(s))
}
