// Clearinghouse: the full §7 single-blind workflow against a live portal.
// A network owner generates and anonymizes a network, the portal screens
// the upload (a deliberately raw upload is rejected first), a researcher
// lists and fetches the data and extracts the routing design from it, and
// the two sides exchange comments through the blinding relay.
//
//	go run ./examples/clearinghouse
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"confanon"
	"confanon/internal/netgen"
	"confanon/internal/portal"
	"confanon/internal/routing"
	"confanon/internal/validate"
)

func main() {
	// The portal, as it would run via cmd/confportal.
	store := portal.NewStore()
	store.AddResearcher("key-r1", "researcher-one")
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	fmt.Println("portal listening at", srv.URL)

	// --- Owner side ---------------------------------------------------
	n := netgen.Generate(netgen.Params{Seed: 99, Kind: netgen.Backbone, Routers: 12})
	raw := n.RenderAll()

	// A careless upload of raw configs is rejected by the screen.
	fmt.Println("\nowner uploads RAW configs (mistake):")
	status, body := post(srv.URL+"/datasets", map[string]interface{}{
		"label": "backbone, 12 routers", "files": raw,
	}, "")
	fmt.Printf("  portal says %d: %.120s...\n", status, body)

	// Anonymize properly (hashed file names too), then upload.
	a := confanon.New(confanon.Options{Salt: []byte(n.Salt)})
	post1 := a.Corpus(raw)
	anon := make(map[string]string, len(post1))
	for name, text := range post1 {
		anon[a.RenameFile(name)] = text
	}
	fmt.Println("\nowner uploads ANONYMIZED configs:")
	status, body = post(srv.URL+"/datasets", map[string]interface{}{
		"label": "backbone, 12 routers", "files": anon,
	}, "")
	fmt.Printf("  portal says %d\n", status)
	var up struct {
		ID         string `json:"id"`
		OwnerToken string `json:"owner_token"`
	}
	_ = json.Unmarshal([]byte(body), &up)

	// --- Researcher side ----------------------------------------------
	fmt.Println("\nresearcher browses:")
	_, body = get(srv.URL+"/datasets", "key-r1")
	fmt.Printf("  datasets: %.100s...\n", body)
	_, body = get(srv.URL+"/datasets/"+up.ID+"/files", "key-r1")
	var names []string
	_ = json.Unmarshal([]byte(body), &names)
	fmt.Printf("  %d files, e.g. %s\n", len(names), names[0])

	// Fetch everything and extract the routing design — the §5 analysis a
	// researcher would actually run on the released data.
	files := make(map[string]string, len(names))
	for _, name := range names {
		_, text := get(srv.URL+"/datasets/"+up.ID+"/files/"+name, "key-r1")
		files[name] = text
	}
	design := routing.Extract(validate.ParseAll(files))
	fmt.Println("  extracted design:", design.Summary())

	// --- Blind correspondence ------------------------------------------
	post(srv.URL+"/datasets/"+up.ID+"/comments",
		map[string]interface{}{"text": "are the per-pop OSPF areas intentional?"}, "key-r1")
	post(srv.URL+"/datasets/"+up.ID+"/comments",
		map[string]interface{}{"text": "yes - one stub area per pop", "owner_token": up.OwnerToken}, "")
	_, body = get(srv.URL+"/datasets/"+up.ID+"/comments", "key-r1")
	fmt.Println("\nblind comment thread (no identities cross the relay):")
	var thread []portal.Comment
	_ = json.Unmarshal([]byte(body), &thread)
	for _, c := range thread {
		fmt.Printf("  [%s] %s\n", c.From, c.Text)
	}
}

func post(url string, v interface{}, apiKey string) (int, string) {
	b, _ := json.Marshal(v)
	req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func get(url, apiKey string) (int, string) {
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}
