package confanon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"confanon/internal/anonymizer"
	"confanon/internal/ipanon"
	"confanon/internal/trace"
)

// This file is the fail-closed batch layer. The string-returning APIs
// (File, Corpus, ParallelCorpus) are fail-open: a panic on one poisoned
// file kills the whole batch, and a leak in the output is published
// unless the operator reads the report. The *Context APIs below invert
// both defaults: every file is processed under per-file panic recovery
// (one bad file yields one FileError, the rest of the corpus completes),
// cancellation and deadlines flow in through context.Context, and under
// Options.Strict a file whose post-anonymization leak report contains
// confirmed (non-false-positive) leaks is quarantined — recorded,
// withheld from the outputs, never silently published.

// FileError identifies the file, line, and cause of one per-file failure.
// It is the internal/anonymizer type re-exported.
type FileError = anonymizer.FileError

// PanicError is the FileError cause recorded when per-file recovery
// caught a panic.
type PanicError = anonymizer.PanicError

// ErrQuarantined is wrapped into errors reported for files withheld by
// strict leak-gating (used by the stream path, where quarantine surfaces
// through the error channel).
var ErrQuarantined = errors.New("quarantined: leak report not clean")

// FileStatus classifies one file's outcome in a CorpusResult.
type FileStatus int

const (
	// FileOK: the file anonymized cleanly; Text holds the output.
	FileOK FileStatus = iota
	// FileFailed: processing failed (panic or I/O); Err holds the cause
	// and no output exists.
	FileFailed
	// FileQuarantined: anonymization completed but strict leak-gating
	// found confirmed leaks in the output; Leaks holds them and the
	// output is withheld.
	FileQuarantined
)

// String names the status for reports.
func (s FileStatus) String() string {
	switch s {
	case FileOK:
		return "ok"
	case FileFailed:
		return "failed"
	case FileQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("FileStatus(%d)", int(s))
}

// FileResult is one file's outcome in a CorpusResult.
type FileResult struct {
	Name   string
	Status FileStatus
	// Text is the anonymized output; set only when Status == FileOK.
	Text string
	// Err is the failure; set only when Status == FileFailed.
	Err *FileError
	// Leaks are the confirmed leaks that triggered quarantine; set only
	// when Status == FileQuarantined.
	Leaks []Leak
}

// Ok reports whether the file anonymized cleanly and may be published.
func (r FileResult) Ok() bool { return r.Status == FileOK }

// CorpusResult is the error-carrying outcome of a batch run: one
// FileResult per input file plus the merged statistics of the files that
// completed (failed files are rolled back out of the totals). Files
// missing from Files were never started (the context was cancelled
// first). Report is the machine-readable run summary: always present on
// a finished result, with the full metric snapshot when Options.Metrics
// wired a registry.
type CorpusResult struct {
	Files  map[string]FileResult
	Stats  Stats
	Report *RunReport
	// Incremental summarizes cache reuse; set only by
	// IncrementalCorpusContext (incremental.go).
	Incremental *IncrementalSummary
}

// Ok reports whether every input file anonymized cleanly.
func (r *CorpusResult) Ok() bool {
	for _, f := range r.Files {
		if !f.Ok() {
			return false
		}
	}
	return true
}

// Outputs returns the publishable files only — exactly the FileOK
// subset. Failed and quarantined files are absent, never half-present.
func (r *CorpusResult) Outputs() map[string]string {
	out := make(map[string]string, len(r.Files))
	for name, f := range r.Files {
		if f.Ok() {
			out[name] = f.Text
		}
	}
	return out
}

// Failed returns the per-file errors, sorted by file name.
func (r *CorpusResult) Failed() []*FileError {
	var errs []*FileError
	for _, f := range r.Files {
		if f.Status == FileFailed {
			errs = append(errs, f.Err)
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Name < errs[j].Name })
	return errs
}

// Quarantined returns the names of leak-gated files, sorted.
func (r *CorpusResult) Quarantined() []string {
	var names []string
	for name, f := range r.Files {
		if f.Status == FileQuarantined {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// confirmedLeaks filters a leak report down to the entries that gate
// emission: everything not classified as a likely false positive.
func confirmedLeaks(report []Leak) []Leak {
	var out []Leak
	for _, l := range report {
		if !l.LikelyFalsePositive {
			out = append(out, l)
		}
	}
	return out
}

// traceCorpus opens the root span of one batch run when a tracer is
// wired (nil otherwise). Every worker the batch Acquires is handed the
// span's ID so its file and stage spans nest under it. nfiles < 0 means
// the file count is unknown up front (stream corpora).
func (a *Anonymizer) traceCorpus(op string, nfiles, workers int) *trace.Span {
	tr := a.prog.opts.Tracer
	if tr == nil {
		return nil
	}
	sp := tr.StartSpan(trace.KindCorpus, op, 0)
	if nfiles >= 0 {
		sp.SetAttr("files", strconv.Itoa(nfiles))
	}
	sp.SetAttr("workers", strconv.Itoa(workers))
	return sp
}

// endCorpus closes a traceCorpus span: failed with the error attached
// when the run ended on a run-fatal error (cancellation, a dead
// iterator), ok otherwise — per-file failures are carried by the file
// spans, not the corpus status.
func (a *Anonymizer) endCorpus(sp *trace.Span, err error) {
	if sp == nil {
		return
	}
	status := trace.StatusOK
	if err != nil {
		status = trace.StatusFailed
		sp.SetAttr("error", err.Error())
	}
	a.prog.opts.Tracer.End(sp, status)
}

// spanID unwraps an optional span's ID (zero for none).
func spanID(sp *trace.Span) trace.SpanID {
	if sp == nil {
		return 0
	}
	return sp.ID
}

// traceCensusFailure publishes a failed file span for a file whose
// parallel census failed. The census runs against muted throwaway
// sessions that never trace, so without this the file would vanish from
// the span tree — and failures are traced, never dropped.
func (a *Anonymizer) traceCensusFailure(sp *trace.Span, ferr *FileError) {
	if sp == nil {
		return
	}
	tr := a.prog.opts.Tracer
	fs := tr.StartSpan(trace.KindFile, ferr.Name, sp.ID)
	fs.SetAttr("op", "census")
	fs.SetAttr("line", strconv.Itoa(ferr.Line))
	fs.AddEvent(tr.Now(), ferr.Cause.Error())
	tr.End(fs, trace.StatusFailed)
}

// anonymizeOne runs one file through the fail-closed pipeline on the
// given Session worker: panic recovery, then — in strict mode —
// leak-gating of the output against the Session's accumulated sensitive
// values.
func (a *Anonymizer) anonymizeOne(wk *anonymizer.Anonymizer, name, text string, strict bool) (res FileResult) {
	defer func() { a.batch.countFile(res.Status) }()
	out, ferr := wk.SafeAnonymizeText(name, text)
	if ferr != nil {
		return FileResult{Name: name, Status: FileFailed, Err: ferr}
	}
	if strict {
		if leaks := confirmedLeaks(wk.LeakReport(out)); len(leaks) > 0 {
			return FileResult{Name: name, Status: FileQuarantined, Leaks: leaks}
		}
	}
	return FileResult{Name: name, Status: FileOK, Text: out}
}

// CorpusContext anonymizes a set of files as one network like Corpus,
// but fail-closed: per-file panic recovery, strict leak-gating when
// Options.Strict is set, and cancellation via ctx. All readable files
// are prescanned first (a file whose prescan fails is marked failed and
// skipped), then each file is rewritten in sorted-name order. On
// cancellation the partial CorpusResult is returned along with ctx's
// error; files not yet started are absent from Files.
func (a *Anonymizer) CorpusContext(ctx context.Context, files map[string]string) (*CorpusResult, error) {
	res := &CorpusResult{Files: make(map[string]FileResult, len(files))}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	sp := a.traceCorpus("corpus", len(files), 1)
	finish := func(err error) (*CorpusResult, error) {
		if err != nil {
			a.batch.countCancel()
		}
		a.endCorpus(sp, err)
		res.Stats = a.Stats()
		res.finishReport(a.reg, a.prog.Packs())
		return res, err
	}

	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	wk.SetCorpusSpan(spanID(sp))
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		if ferr := wk.SafePrescan(n, files[n]); ferr != nil {
			res.Files[n] = FileResult{Name: n, Status: FileFailed, Err: ferr}
			a.batch.countFile(FileFailed)
		}
	}
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		if _, done := res.Files[n]; done { // prescan already failed it
			continue
		}
		res.Files[n] = a.anonymizeOne(wk, n, files[n], a.strict)
	}
	return finish(nil)
}

// ParallelCorpusContext anonymizes a corpus across several workers with
// the fail-closed semantics of CorpusContext: one poisoned file yields
// one FileError instead of killing the batch, Options.Strict gates every
// file's emission on its leak report, and ctx cancels the run (workers
// finish their in-flight file, unstarted files stay absent from the
// result). The convenience form of the Anonymizer method: it compiles a
// fresh Program and runs one Session over the corpus.
func ParallelCorpusContext(ctx context.Context, opts Options, files map[string]string, workers int) (*CorpusResult, error) {
	return Compile(opts).NewSession().ParallelCorpusContext(ctx, files, workers)
}

// fileCensus is one file's census record: the mapper-call traces of its
// prescan and its full rewrite, captured against a throwaway mapper.
type fileCensus struct {
	pins, full *ipanon.Trace
	pinErr     *FileError
}

// censusReplay runs the shaped-tree census over the named files on
// workers goroutines and replays the recorded mapper-call traces into
// the shared tree in the deterministic serial order (every file's
// prescan pins in sorted-name order, then every surviving file's full
// sequence). Files whose census failed are marked failed in res and
// traced; their partial pin traces still replay — exactly what a
// sequential run leaves behind before aborting. Returns ctx's error if
// the census was cut short, in which case the replay is skipped (only
// the failures are recorded). Shared by ParallelCorpusContext and
// IncrementalCorpusContext; callers pass names already sorted.
func (a *Anonymizer) censusReplay(ctx context.Context, names []string, files map[string]string, workers int, res *CorpusResult, sp *trace.Span) error {
	censuses := make([]fileCensus, len(names))
	work := make(chan int, len(names))
	for i := range names {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					break
				}
				pins, full, pinErr := a.sess.CensusFile(names[i], files[names[i]])
				censuses[i] = fileCensus{pins: pins, full: full, pinErr: pinErr}
			}
		}()
	}
	wg.Wait()
	markFailed := func(i int, ferr *FileError) {
		res.Files[names[i]] = FileResult{Name: names[i], Status: FileFailed, Err: ferr}
		a.batch.countFile(FileFailed)
		a.traceCensusFailure(sp, ferr)
	}
	if err := ctx.Err(); err != nil {
		for i, c := range censuses {
			if c.pinErr != nil {
				markFailed(i, c.pinErr)
			}
		}
		return err
	}
	for _, c := range censuses {
		a.sess.Replay(c.pins)
	}
	for i, c := range censuses {
		if c.pinErr != nil {
			markFailed(i, c.pinErr)
			continue
		}
		a.sess.Replay(c.full)
	}
	return nil
}

// ParallelCorpusContext anonymizes a corpus across workers goroutines
// sharing this Session, with CorpusContext's fail-closed semantics. The
// output is byte-identical to CorpusContext on the same files at every
// worker count, under both IP schemes.
//
// Under the default shaped-tree scheme the mapping depends on the order
// addresses first reach the tree, so the run is split into three phases:
// a parallel census records each file's exact mapper-call sequence
// against throwaway state; the traces are then replayed into the shared
// tree serially in CorpusContext's order (every file's prescan pins in
// sorted-name order, then every surviving file's full sequence); finally
// the files are rewritten in parallel, where every lookup hits the
// now-resolved tree lock-free. Under Options.StatelessIP mappings are
// pure functions of the salt and the census is skipped entirely.
//
// Strict leak-gating runs after all workers finish, so a file is gated
// against the values recorded from the whole corpus — deterministic at
// any worker count, and at least as conservative as CorpusContext's
// progressive gating (a file CorpusContext quarantines is always
// quarantined here; rarely, a file it publishes is additionally caught).
func (a *Anonymizer) ParallelCorpusContext(ctx context.Context, files map[string]string, workers int) (*CorpusResult, error) {
	if workers < 1 {
		workers = 1
	}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	res := &CorpusResult{Files: make(map[string]FileResult, len(files))}
	sp := a.traceCorpus("parallel-corpus", len(files), workers)
	finish := func(err error) (*CorpusResult, error) {
		if err != nil {
			a.batch.countCancel()
		}
		a.endCorpus(sp, err)
		res.Stats = a.Stats()
		res.finishReport(a.reg, a.prog.Packs())
		return res, err
	}

	if !a.prog.opts.StatelessIP {
		// Phases 1+2: parallel census, then serial replay in
		// CorpusContext's insertion order (censusReplay).
		if err := a.censusReplay(ctx, names, files, workers, res, sp); err != nil {
			return finish(err)
		}
	}

	// Phase 3: embarrassingly parallel rewrite. Under the shaped tree
	// every mapper call was just replayed, so lookups are lock-free cache
	// hits and the output no longer depends on scheduling.
	rewrite := make([]string, 0, len(names))
	for _, n := range names {
		if _, failed := res.Files[n]; !failed {
			rewrite = append(rewrite, n)
		}
	}
	results := make(chan FileResult, len(rewrite))
	work := make(chan string, len(rewrite))
	for _, n := range rewrite {
		work <- n
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := a.sess.Acquire()
			defer a.sess.Release(wk)
			wk.SetCorpusSpan(spanID(sp))
			for name := range work {
				if ctx.Err() != nil {
					break
				}
				out, ferr := wk.SafeAnonymizeText(name, files[name])
				if ferr != nil {
					results <- FileResult{Name: name, Status: FileFailed, Err: ferr}
					continue
				}
				results <- FileResult{Name: name, Status: FileOK, Text: out}
			}
		}()
	}
	wg.Wait()
	close(results)
	for r := range results {
		res.Files[r.Name] = r
	}

	// Gate and count in sorted order, after every worker has published
	// its recorder entries (deterministic quarantine set; see doc).
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	wk.SetCorpusSpan(spanID(sp))
	for _, n := range rewrite {
		r, started := res.Files[n]
		if !started { // cancelled before a worker picked it up
			continue
		}
		if a.strict && r.Status == FileOK {
			if leaks := confirmedLeaks(wk.LeakReport(r.Text)); len(leaks) > 0 {
				r = FileResult{Name: n, Status: FileQuarantined, Leaks: leaks, Text: ""}
				res.Files[n] = r
			}
		}
		a.batch.countFile(r.Status)
	}
	return finish(ctx.Err())
}

// StreamCorpusContext anonymizes a sequence of files like StreamCorpus,
// but with per-file fault isolation: a panic while rewriting, a failing
// reader, a sink that cannot be opened, and a writer that fails mid-file
// or on close each produce one *FileError for that file, and the run
// moves on to the next file instead of aborting. Under Options.Strict
// each file's output is buffered and leak-gated before a sink is even
// opened; a gated file is reported as a FileError wrapping
// ErrQuarantined and nothing is written for it. The returned slice
// carries the per-file failures (empty = every file clean); the error
// return is reserved for run-fatal conditions — context cancellation or
// a failing next iterator.
func (a *Anonymizer) StreamCorpusContext(
	ctx context.Context,
	next func() (name string, r io.Reader, err error),
	sink func(name string) (io.WriteCloser, error),
) (ferrs []*FileError, rerr error) {
	wk := a.sess.Acquire()
	defer a.sess.Release(wk)
	sp := a.traceCorpus("stream-corpus", -1, 1)
	defer func() { a.endCorpus(sp, rerr) }()
	wk.SetCorpusSpan(spanID(sp))
	for {
		if err := ctx.Err(); err != nil {
			a.batch.countCancel()
			return ferrs, err
		}
		name, r, err := next()
		if err == io.EOF {
			return ferrs, nil
		}
		if err != nil {
			return ferrs, err
		}
		if ferr := a.streamOne(wk, name, r, sink); ferr != nil {
			if errors.Is(ferr.Cause, ErrQuarantined) {
				a.batch.countFile(FileQuarantined)
			} else {
				a.batch.countFile(FileFailed)
			}
			ferrs = append(ferrs, ferr)
		} else {
			a.batch.countFile(FileOK)
		}
	}
}

// streamOne pushes one file of a stream corpus through the fail-closed
// pipeline. In strict mode the output is buffered and gated before the
// sink is opened, so a quarantined file never touches the destination;
// otherwise the file streams straight through with Stream's memory
// behavior (a mid-file failure can leave an output prefix at the sink —
// every emitted line was fully anonymized, and the FileError tells the
// caller to discard the remnant).
func (a *Anonymizer) streamOne(
	wk *anonymizer.Anonymizer,
	name string, r io.Reader,
	sink func(name string) (io.WriteCloser, error),
) *FileError {
	if a.strict {
		var buf bytes.Buffer
		if ferr := wk.SafeStreamText(name, r, &buf); ferr != nil {
			return ferr
		}
		snap := wk.SnapshotStats()
		if leaks := confirmedLeaks(wk.LeakReport(buf.String())); len(leaks) > 0 {
			return &FileError{
				Name:  name,
				Cause: fmt.Errorf("%w (%d confirmed leaks, first: %s)", ErrQuarantined, len(leaks), leaks[0]),
			}
		}
		w, err := sink(name)
		if err != nil {
			wk.RestoreStats(snap)
			return &FileError{Name: name, Cause: fmt.Errorf("opening sink: %w", err)}
		}
		_, werr := w.Write(buf.Bytes())
		cerr := w.Close()
		if werr != nil {
			wk.RestoreStats(snap)
			return &FileError{Name: name, Cause: werr}
		}
		if cerr != nil {
			wk.RestoreStats(snap)
			return &FileError{Name: name, Cause: cerr}
		}
		return nil
	}

	w, err := sink(name)
	if err != nil {
		return &FileError{Name: name, Cause: fmt.Errorf("opening sink: %w", err)}
	}
	snap := wk.SnapshotStats()
	ferr := wk.SafeStreamText(name, r, w)
	cerr := w.Close()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		wk.RestoreStats(snap)
		return &FileError{Name: name, Cause: cerr}
	}
	return nil
}
