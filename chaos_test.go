package confanon

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"confanon/internal/anonymizer"
	"confanon/internal/store"
)

// chaosCorpus is a small deterministic corpus; the "poison" file is the
// one the fault hook detonates.
func chaosCorpus() map[string]string {
	return map[string]string{
		"r1":     "hostname r1\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n",
		"r2":     "hostname r2\nrouter bgp 701\n neighbor 12.1.2.4 remote-as 1239\n",
		"r3":     "hostname r3\naccess-list 101 permit tcp host 12.1.2.5 any eq 80\n",
		"r4":     "hostname r4\nroute-map m permit 10\n set community 701:100\n",
		"r5":     "hostname r5\nip route 12.4.0.0 255.255.0.0 Null0\n",
		"poison": "hostname poison\ninterface Serial0\n ip address 12.9.9.9 255.255.255.0\n",
	}
}

// armPoison injects a panic on the named file's given line for the
// duration of the test.
func armPoison(t *testing.T, name string, line int) {
	t.Helper()
	anonymizer.SetFaultHook(func(n string, l int) {
		if n == name && l == line {
			panic("injected chaos")
		}
	})
	t.Cleanup(func() { anonymizer.SetFaultHook(nil) })
}

// waitGoroutines waits for the goroutine count to drop back to the
// baseline (small slack for runtime housekeeping).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParallelCorpusContextIsolatesPanic(t *testing.T) {
	files := chaosCorpus()
	opts := Options{Salt: []byte("chaos")}
	baseline := runtime.NumGoroutine()

	// Reference run: the same corpus minus the poison file, no faults.
	clean := make(map[string]string, len(files)-1)
	for n, text := range files {
		if n != "poison" {
			clean[n] = text
		}
	}
	wantOut, wantStats := ParallelCorpus(opts, clean, 4)

	armPoison(t, "poison", 2)
	res, err := ParallelCorpusContext(context.Background(), opts, files, 4)
	if err != nil {
		t.Fatalf("batch returned fatal error: %v", err)
	}
	waitGoroutines(t, baseline)

	if len(res.Files) != len(files) {
		t.Fatalf("result covers %d files, want %d", len(res.Files), len(files))
	}
	p := res.Files["poison"]
	if p.Status != FileFailed || p.Err == nil {
		t.Fatalf("poison file not failed: %+v", p)
	}
	if p.Err.Name != "poison" || p.Err.Line != 2 {
		t.Errorf("FileError location = (%q, %d), want (poison, 2)", p.Err.Name, p.Err.Line)
	}
	var pe *PanicError
	if !errors.As(p.Err, &pe) {
		t.Errorf("cause %v is not a PanicError", p.Err.Cause)
	}

	got := res.Outputs()
	if len(got) != len(wantOut) {
		t.Fatalf("%d surviving outputs, want %d", len(got), len(wantOut))
	}
	for n, want := range wantOut {
		if got[n] != want {
			t.Errorf("surviving file %s differs from clean run", n)
		}
	}
	// Merged stats describe exactly the surviving files: the poisoned
	// file's partial counts were rolled back.
	if res.Stats.Files != wantStats.Files || res.Stats.Lines != wantStats.Lines ||
		res.Stats.WordsTotal != wantStats.WordsTotal {
		t.Errorf("merged stats (files=%d lines=%d words=%d) != clean run (files=%d lines=%d words=%d)",
			res.Stats.Files, res.Stats.Lines, res.Stats.WordsTotal,
			wantStats.Files, wantStats.Lines, wantStats.WordsTotal)
	}
}

func TestParallelCorpusDropsOnlyPoisonedFile(t *testing.T) {
	// The legacy fail-open API must now complete on a poisoned corpus,
	// dropping exactly the poisoned file.
	armPoison(t, "poison", 2)
	out, _ := ParallelCorpus(Options{Salt: []byte("chaos")}, chaosCorpus(), 4)
	if _, ok := out["poison"]; ok {
		t.Error("poisoned file was emitted")
	}
	if len(out) != len(chaosCorpus())-1 {
		t.Errorf("%d files emitted, want %d", len(out), len(chaosCorpus())-1)
	}
}

func TestCorpusContextIsolatesPanic(t *testing.T) {
	armPoison(t, "poison", 2)
	a := New(Options{Salt: []byte("chaos")})
	res, err := a.CorpusContext(context.Background(), chaosCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatal("result claims clean despite poisoned file")
	}
	failed := res.Failed()
	if len(failed) != 1 || failed[0].Name != "poison" {
		t.Fatalf("failed = %v, want exactly the poison file", failed)
	}
	if len(res.Outputs()) != len(chaosCorpus())-1 {
		t.Errorf("surviving outputs missing: %d", len(res.Outputs()))
	}
}

func TestParallelCorpusContextCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ParallelCorpusContext(ctx, Options{Salt: []byte("c")}, chaosCorpus(), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Files) == len(chaosCorpus()) {
		t.Log("note: all files finished before cancellation was observed")
	}
	waitGoroutines(t, baseline)
}

func TestCorpusContextStrictQuarantinesLeakingFile(t *testing.T) {
	files := map[string]string{
		"clean": "hostname r9\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n",
		// The second 7018 sits in a context no rule recognizes and
		// survives anonymization — the seeded leak of §6.1.
		"leaky": "router bgp 7018\nodd command with 7018 tail\n",
	}
	a := New(Options{Salt: []byte("s"), Strict: true})
	res, err := a.CorpusContext(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quarantined()
	if len(q) != 1 || q[0] != "leaky" {
		t.Fatalf("quarantined = %v, want exactly [leaky]", q)
	}
	fr := res.Files["leaky"]
	if len(fr.Leaks) == 0 || fr.Text != "" {
		t.Errorf("quarantined file must carry leaks and no output: %+v", fr)
	}
	out := res.Outputs()
	if _, ok := out["leaky"]; ok {
		t.Error("quarantined file was emitted")
	}
	if _, ok := out["clean"]; !ok {
		t.Error("clean file missing from outputs")
	}
}

func TestParallelCorpusContextStrict(t *testing.T) {
	files := map[string]string{
		"clean": "hostname r9\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n",
		"leaky": "router bgp 7018\nodd command with 7018 tail\n",
	}
	res, err := ParallelCorpusContext(context.Background(),
		Options{Salt: []byte("s"), Strict: true}, files, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Quarantined(); len(q) != 1 || q[0] != "leaky" {
		t.Fatalf("quarantined = %v, want exactly [leaky]", q)
	}
}

// brokenReader yields one line then fails.
type brokenReader struct{ fed bool }

func (r *brokenReader) Read(p []byte) (int, error) {
	if !r.fed {
		r.fed = true
		return copy(p, "hostname half\n"), nil
	}
	return 0, errors.New("read: medium vanished")
}

// chaosSink is an in-memory WriteCloser with injectable failures.
type chaosSink struct {
	buf       strings.Builder
	failWrite bool
	failClose bool
}

func (s *chaosSink) Write(p []byte) (int, error) {
	if s.failWrite {
		return 0, errors.New("write: quota exceeded")
	}
	return s.buf.Write(p)
}

func (s *chaosSink) Close() error {
	if s.failClose {
		return errors.New("close: fsync failed")
	}
	return nil
}

func TestStreamCorpusContextIsolatesFileFaults(t *testing.T) {
	armPoison(t, "panics", 1)
	order := []string{"good1", "badread", "badwrite", "badclose", "nosink", "panics", "good2"}
	texts := map[string]string{
		"good1":    "hostname g1\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n",
		"badwrite": "hostname bw\n",
		"badclose": "hostname bc\n",
		"nosink":   "hostname ns\n",
		"panics":   "hostname pp\n",
		"good2":    "hostname g2\nrouter bgp 701\n",
	}
	sinks := map[string]*chaosSink{}
	i := 0
	next := func() (string, io.Reader, error) {
		if i >= len(order) {
			return "", nil, io.EOF
		}
		name := order[i]
		i++
		if name == "badread" {
			return name, &brokenReader{}, nil
		}
		return name, strings.NewReader(texts[name]), nil
	}
	sink := func(name string) (io.WriteCloser, error) {
		if name == "nosink" {
			return nil, errors.New("mkdir: permission denied")
		}
		s := &chaosSink{failWrite: name == "badwrite", failClose: name == "badclose"}
		sinks[name] = s
		return s, nil
	}

	a := New(Options{Salt: []byte("sc"), StatelessIP: true})
	ferrs, err := a.StreamCorpusContext(context.Background(), next, sink)
	if err != nil {
		t.Fatalf("run-fatal error: %v", err)
	}
	got := map[string]bool{}
	for _, fe := range ferrs {
		got[fe.Name] = true
	}
	for _, want := range []string{"badread", "badwrite", "badclose", "nosink", "panics"} {
		if !got[want] {
			t.Errorf("no FileError for %s (have %v)", want, ferrs)
		}
	}
	if len(ferrs) != 5 {
		t.Errorf("%d FileErrors, want 5: %v", len(ferrs), ferrs)
	}

	// The surviving files streamed byte-identically to a clean run.
	ref := New(Options{Salt: []byte("sc"), StatelessIP: true})
	for _, name := range []string{"good1", "good2"} {
		if want := ref.File(texts[name]); sinks[name].buf.String() != want {
			t.Errorf("surviving stream %s differs from clean run", name)
		}
	}
	// Stats cover the files that completed (2 good ones; the failed
	// files rolled back — the half-read and half-written ones too).
	if s := a.Stats(); s.Files != 2 {
		t.Errorf("stats.Files = %d, want 2 survivors", s.Files)
	}
}

func TestStreamCorpusContextStrictQuarantine(t *testing.T) {
	order := []string{"leaky"}
	i := 0
	next := func() (string, io.Reader, error) {
		if i >= len(order) {
			return "", nil, io.EOF
		}
		i++
		return "leaky", strings.NewReader("router bgp 7018\nodd command with 7018 tail\n"), nil
	}
	opened := false
	sink := func(name string) (io.WriteCloser, error) {
		opened = true
		return &chaosSink{}, nil
	}
	a := New(Options{Salt: []byte("s"), StatelessIP: true, Strict: true})
	ferrs, err := a.StreamCorpusContext(context.Background(), next, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(ferrs) != 1 || !errors.Is(ferrs[0], ErrQuarantined) {
		t.Fatalf("ferrs = %v, want one ErrQuarantined", ferrs)
	}
	if opened {
		t.Error("sink was opened for a quarantined file")
	}
}

// TestChaosRollbackLeavesNoLedgerEntries: a file that dies mid-way must
// leave zero provenance records — the ledger mirrors the statistics
// rollback — while its span survives, marked failed. Checked on both
// batch paths, which fail the file in different phases (the parallel
// census vs the serial rewrite).
func TestChaosRollbackLeavesNoLedgerEntries(t *testing.T) {
	armPoison(t, "poison", 2)
	files := chaosCorpus()

	check := func(t *testing.T, tr *Tracer, wantOp string) {
		t.Helper()
		for _, d := range tr.Ledger() {
			if d.File == "poison" {
				t.Fatalf("rolled-back file left a ledger entry: %+v", d)
			}
		}
		decided := map[string]bool{}
		for _, d := range tr.Ledger() {
			decided[d.File] = true
		}
		for n := range files {
			if n != "poison" && !decided[n] {
				t.Errorf("surviving file %s has no ledger entries", n)
			}
		}
		var failed *Span
		for _, s := range tr.Spans() {
			if s.Kind == "file" && s.Name == "poison" && s.Status == "failed" {
				failed = s
			}
		}
		if failed == nil {
			t.Fatal("poisoned file has no failed span — failures must be traced, never dropped")
		}
		if failed.Attr("op") != wantOp {
			t.Errorf("failed span op = %q, want %q", failed.Attr("op"), wantOp)
		}
		if failed.Attr("line") != "2" {
			t.Errorf("failed span line attr = %q, want 2", failed.Attr("line"))
		}
	}

	t.Run("parallel", func(t *testing.T) {
		tr := NewTracer()
		_, err := ParallelCorpusContext(context.Background(),
			Options{Salt: []byte("chaos"), Tracer: tr}, files, 4)
		if err != nil {
			t.Fatal(err)
		}
		// The muted census rehearsal swallows the rewrite panic (the file
		// is retried on the real state), so the traced phase-3 worker is
		// the one that fails it, inside the engine.
		check(t, tr, "rewrite")
	})
	t.Run("serial", func(t *testing.T) {
		tr := NewTracer()
		a := New(Options{Salt: []byte("chaos"), Tracer: tr})
		_, err := a.CorpusContext(context.Background(), files)
		if err != nil {
			t.Fatal(err)
		}
		// Serially the prescan survives (the fault hook fires per rewritten
		// line) and the rewrite dies at line 2, inside the engine.
		check(t, tr, "rewrite")
	})
}

// TestCensusFailureSpanSynthesized: when a file dies in the muted
// parallel census itself (a prescan panic — the rehearsal sessions never
// trace), the batch layer must synthesize its failed span so the file
// does not vanish from the span tree.
func TestCensusFailureSpanSynthesized(t *testing.T) {
	tr := NewTracer()
	a := New(Options{Salt: []byte("chaos"), Tracer: tr})
	sp := a.traceCorpus("parallel-corpus", 1, 4)
	a.traceCensusFailure(sp, &FileError{
		Name:  "poison",
		Cause: &PanicError{Value: "prescan exploded"},
	})
	a.endCorpus(sp, nil)

	var failed *Span
	for _, s := range tr.Spans() {
		if s.Kind == "file" && s.Name == "poison" {
			failed = s
		}
	}
	if failed == nil {
		t.Fatal("no synthesized file span for the census failure")
	}
	if failed.Status != "failed" || failed.Attr("op") != "census" {
		t.Errorf("span status %q op %q, want failed/census", failed.Status, failed.Attr("op"))
	}
	if failed.Parent != sp.ID {
		t.Errorf("span parents to %d, want corpus span %d", failed.Parent, sp.ID)
	}
	if len(failed.Events) == 0 || !strings.Contains(failed.Events[0].Msg, "prescan exploded") {
		t.Errorf("span carries no cause event: %+v", failed.Events)
	}
}

// runStoreCorpus opens the mapping ledger in dir, runs the corpus
// through a store-backed session, commits, and closes — one clean
// "process lifetime" in the durable-store timeline.
func runStoreCorpus(t *testing.T, dir string, salt []byte, files map[string]string, workers int) map[string]string {
	t.Helper()
	ms, err := OpenMappingStore(dir, salt)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	a := New(Options{Salt: salt})
	if err := a.UseStore(ms); err != nil {
		t.Fatal(err)
	}
	res, err := a.ParallelCorpusContext(context.Background(), files, workers)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("store-backed run not clean: %v", res.Failed())
	}
	if err := a.SyncStore(); err != nil {
		t.Fatal(err)
	}
	return res.Outputs()
}

// TestChaosStoreCrashRecovery kills the ledger's commit protocol at both
// sides of its durability point and checks the restart semantics the
// store promises: a crash between append and the commit record loses
// exactly the in-flight file (the uncommitted tail is discarded on
// replay), a crash after the fsynced commit record loses nothing — and
// in both timelines a restarted replica replays to a state whose outputs
// are byte-identical to a process that never crashed.
func TestChaosStoreCrashRecovery(t *testing.T) {
	salt := []byte("chaos-store")
	v1 := chaosCorpus()
	// The delta upload carries addresses and an ASN v1 never saw, so its
	// commit appends fresh records — the tail the crash interrupts.
	delta := map[string]string{
		"r-new": "hostname r-new\ninterface Serial1\n ip address 12.77.3.10 255.255.255.0\nrouter bgp 65001\n neighbor 12.77.3.9 remote-as 3356\n",
	}

	// Reference timeline: v1 then the delta, no crashes.
	refDir := t.TempDir()
	wantV1 := runStoreCorpus(t, refDir, salt, v1, 4)
	wantDelta := runStoreCorpus(t, refDir, salt, delta, 1)

	for _, tc := range []struct {
		event   string // crash point inside Ledger.Commit
		durable bool   // does the delta's mapping survive the crash?
	}{
		{"commit", false},   // power lost after append, before the commit record
		{"committed", true}, // power lost right after the fsynced commit record
	} {
		t.Run("crash-at-"+tc.event, func(t *testing.T) {
			dir := t.TempDir()
			if got := runStoreCorpus(t, dir, salt, v1, 4); len(got) != len(wantV1) {
				t.Fatalf("v1 run emitted %d files, want %d", len(got), len(wantV1))
			}

			// Crashed process: the hook detonates inside Commit, the file
			// is reported failed, and the session and ledger are abandoned
			// without Close — nothing after the panic reaches the disk.
			ms2, err := OpenMappingStore(dir, salt)
			if err != nil {
				t.Fatal(err)
			}
			n1 := len(ms2.led.State().IPs)
			if n1 == 0 {
				t.Fatal("v1 run committed no IP pairs")
			}
			a2 := New(Options{Salt: salt})
			if err := a2.UseStore(ms2); err != nil {
				t.Fatal(err)
			}
			store.SetCrashHook(func(ev string) {
				if ev == tc.event {
					store.SetCrashHook(nil)
					panic("injected crash: power lost inside Commit at " + ev)
				}
			})
			t.Cleanup(func() { store.SetCrashHook(nil) })
			res, err := a2.CorpusContext(context.Background(), delta)
			if err != nil {
				t.Fatal(err)
			}
			if fr := res.Files["r-new"]; fr.Status != FileFailed {
				t.Fatalf("file that crashed at its commit point not failed: %+v", fr)
			}

			// Restart: a fresh process replays the directory.
			ms3, err := OpenMappingStore(dir, salt)
			if err != nil {
				t.Fatal(err)
			}
			defer ms3.Close()
			n3 := len(ms3.led.State().IPs)
			if tc.durable && n3 <= n1 {
				t.Errorf("fsynced commit lost: restart replayed %d IP pairs, want > %d", n3, n1)
			}
			if !tc.durable && n3 != n1 {
				t.Errorf("uncommitted tail survived restart: %d IP pairs, want %d", n3, n1)
			}

			a3 := New(Options{Salt: salt})
			if err := a3.UseStore(ms3); err != nil {
				t.Fatal(err)
			}
			res3, err := a3.ParallelCorpusContext(context.Background(), delta, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got := res3.Outputs()["r-new"]; got != wantDelta["r-new"] {
				t.Error("post-restart delta output differs from the crash-free timeline")
			}
			// The recovered mapping also reproduces every pre-crash file.
			res1, err := a3.ParallelCorpusContext(context.Background(), v1, 4)
			if err != nil {
				t.Fatal(err)
			}
			for name, want := range wantV1 {
				if res1.Outputs()[name] != want {
					t.Errorf("recovered mapping rewrote %s differently from the crash-free timeline", name)
				}
			}
			if err := a3.SyncStore(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStreamCorpusContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := New(Options{Salt: []byte("s"), StatelessIP: true})
	_, err := a.StreamCorpusContext(ctx,
		func() (string, io.Reader, error) { return "x", strings.NewReader("hostname x\n"), nil },
		func(string) (io.WriteCloser, error) { return &chaosSink{}, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
