package confanon

import (
	"confanon/internal/metrics"
)

// MetricsRegistry is the observability registry the pipeline reports
// into: atomic counters, gauges, and histograms with Prometheus-text
// exposition. One registry can be shared by everything in a process —
// the engine (wired via Options.Metrics), the batch layer, parallel
// corpus workers, and the portal — and the counts merge by
// construction.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// RunReportSchema identifies the RunReport JSON layout.
const RunReportSchema = "confanon.run_report/v1"

// RunReport is the machine-readable summary of one anonymization run:
// the per-status file counts of the batch, the headline Stats counters,
// and — when a MetricsRegistry was wired — the full flattened metric
// snapshot, keyed by Prometheus series identity (`name{k="v"}`). The
// counters in Counters and the portal's GET /metrics exposition agree
// series-for-series when both read the same registry; an integration
// test pins that equality.
type RunReport struct {
	Schema string `json:"schema"`

	// Per-status outcome counts (batch runs; zero for single-file use).
	FilesOK          int `json:"files_ok"`
	FilesFailed      int `json:"files_failed"`
	FilesQuarantined int `json:"files_quarantined"`

	// Headline counters duplicated out of Stats for report readers that
	// do not want to parse metric series identities.
	Files        int64 `json:"files_processed"`
	Lines        int64 `json:"lines"`
	TokensHashed int64 `json:"tokens_hashed"`
	IPsMapped    int64 `json:"ips_mapped"`
	ASNsMapped   int64 `json:"asns_mapped"`

	// Packs identifies every rule pack compiled into the run's Program
	// — the canonical built-in pack first, then user packs in load
	// order — so a report pins exactly which rule inventory produced
	// the output.
	Packs []PackMeta `json:"rule_packs,omitempty"`

	// Counters is the flattened registry snapshot (histograms expanded
	// into _bucket/_sum/_count series); nil when no registry was wired.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// NewRunReport builds a report from accumulated Stats and an optional
// registry (nil leaves Counters empty). Batch paths fill the per-status
// counts afterwards; CorpusResult carries the finished report.
func NewRunReport(stats Stats, reg *MetricsRegistry) *RunReport {
	rep := &RunReport{
		Schema:       RunReportSchema,
		Files:        stats.Files,
		Lines:        stats.Lines,
		TokensHashed: stats.TokensHashed,
		IPsMapped:    stats.IPsMapped,
		ASNsMapped:   stats.ASNsMapped,
	}
	if reg != nil {
		rep.Counters = reg.Counters()
	}
	return rep
}

// batchMetrics holds the batch layer's own instruments: per-status file
// outcomes and context cancellations. Registered idempotently, so the
// serial and parallel paths (and several runs) share the same counters.
type batchMetrics struct {
	files       *metrics.CounterVec
	cancelled   *metrics.Counter
	incremental *metrics.CounterVec
}

func newBatchMetrics(reg *metrics.Registry) *batchMetrics {
	return &batchMetrics{
		files: reg.CounterVec("confanon_batch_files_total",
			"batch file outcomes by status (ok, failed, quarantined)", "status"),
		cancelled: reg.Counter("confanon_batch_cancelled_total",
			"batch runs cut short by context cancellation"),
		incremental: reg.CounterVec("confanon_incremental_files_total",
			"incremental run file dispositions (reused, partial, full)", "mode"),
	}
}

// countFile records one file outcome.
func (m *batchMetrics) countFile(st FileStatus) {
	if m != nil {
		m.files.With(st.String()).Inc()
	}
}

// countIncr records one incremental file disposition.
func (m *batchMetrics) countIncr(mode string) {
	if m != nil {
		m.incremental.With(mode).Inc()
	}
}

// countCancel records one cancelled batch run.
func (m *batchMetrics) countCancel() {
	if m != nil {
		m.cancelled.Inc()
	}
}

// finishReport attaches the RunReport to a finished CorpusResult,
// deriving the per-status counts from the per-file results.
func (r *CorpusResult) finishReport(reg *MetricsRegistry, packs []PackMeta) {
	rep := NewRunReport(r.Stats, reg)
	rep.Packs = packs
	for _, f := range r.Files {
		switch f.Status {
		case FileOK:
			rep.FilesOK++
		case FileFailed:
			rep.FilesFailed++
		case FileQuarantined:
			rep.FilesQuarantined++
		}
	}
	r.Report = rep
}
