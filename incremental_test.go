package confanon

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"confanon/internal/netgen"
	"confanon/internal/store"
)

// mutateCorpus derives the second-generation corpus the incremental run
// is diffed against: one file gets lines appended (pure-append partial),
// one file gets a middle line edited (mid-file divergence), one file is
// deleted, one new file appears, and the rest are untouched.
func mutateCorpus(t *testing.T, v1 map[string]string) (v2 map[string]string, appended, edited, deleted, added string) {
	t.Helper()
	names := make([]string, 0, len(v1))
	for n := range v1 {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) < 4 {
		t.Fatalf("fixture corpus too small: %d files", len(names))
	}
	appended, edited, deleted = names[0], names[1], names[2]
	added = "zz-new-router-confg"

	v2 = make(map[string]string, len(v1))
	for n, text := range v1 {
		v2[n] = text
	}
	v2[appended] += "interface Loopback99\n ip address 10.99.88.77 255.255.255.255\n"
	lines := strings.Split(v2[edited], "\n")
	mid := len(lines) / 2
	lines[mid] = " description edited-for-incremental-run 172.31.45.6"
	v2[edited] = strings.Join(lines, "\n")
	delete(v2, deleted)
	v2[added] = "hostname zz-new.example.net\n!\ninterface Ethernet0\n ip address 10.99.88.78 255.255.255.0\n!\nrouter bgp 64999\n neighbor 10.99.88.77 remote-as 65001\nend\n"
	return v2, appended, edited, deleted, added
}

// TestIncrementalMatchesFullRun is the golden byte-identity test: an
// incremental re-run over a mutated corpus, seeded with the prior run's
// ledger state and line cache, must produce output byte-identical to a
// full ParallelCorpusContext run from the same restored state — at
// every worker count and under both IP schemes.
func TestIncrementalMatchesFullRun(t *testing.T) {
	for _, stateless := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("stateless=%t/workers=%d", stateless, workers), func(t *testing.T) {
				n := netgen.Generate(netgen.Params{Seed: 4100, Kind: netgen.Backbone, Routers: 12})
				v1 := n.RenderAll()
				salt := []byte(n.Salt)
				opts := Options{Salt: salt, StatelessIP: stateless}
				ctx := context.Background()

				// Run 1: recording full run, ledger attached. Its output
				// must already match a plain parallel run (recording is
				// observation, not behavior).
				dir := t.TempDir()
				led, err := store.Open(dir, store.SaltFingerprint(salt))
				if err != nil {
					t.Fatalf("store.Open: %v", err)
				}
				a1 := New(opts)
				a1.sess.SetLedger(led)
				res1, cache, err := a1.IncrementalCorpusContext(ctx, v1, nil, workers)
				if err != nil || !res1.Ok() {
					t.Fatalf("recording run: err=%v failed=%v", err, res1.Failed())
				}
				plain, err := New(opts).ParallelCorpusContext(ctx, v1, workers)
				if err != nil {
					t.Fatalf("plain run: %v", err)
				}
				for name, want := range plain.Outputs() {
					if got := res1.Files[name].Text; got != want {
						t.Fatalf("recording run diverged from plain run on %s", name)
					}
				}
				if got, want := res1.Incremental.FilesFull, len(v1); got != want {
					t.Fatalf("recording run reused files: full=%d want %d", got, want)
				}
				if err := a1.sess.SyncLedger(); err != nil {
					t.Fatalf("SyncLedger: %v", err)
				}
				if err := led.Close(); err != nil {
					t.Fatalf("ledger close: %v", err)
				}

				// The cache must survive its serialization round-trip.
				blob, err := cache.Encode()
				if err != nil {
					t.Fatalf("cache encode: %v", err)
				}
				cache, err = DecodeCorpusCache(blob)
				if err != nil {
					t.Fatalf("cache decode: %v", err)
				}

				v2, appended, edited, deleted, added := mutateCorpus(t, v1)

				// Both consumers restore the same replayed ledger state.
				led2, err := store.Open(dir, store.SaltFingerprint(salt))
				if err != nil {
					t.Fatalf("reopen ledger: %v", err)
				}
				st := led2.State()
				if err := led2.Close(); err != nil {
					t.Fatalf("close reopened ledger: %v", err)
				}

				full := New(opts)
				if err := full.sess.RestoreState(st); err != nil {
					t.Fatalf("restore (full): %v", err)
				}
				fullRes, err := full.ParallelCorpusContext(ctx, v2, workers)
				if err != nil || !fullRes.Ok() {
					t.Fatalf("full re-run: err=%v failed=%v", err, fullRes.Failed())
				}

				inc := New(opts)
				if err := inc.sess.RestoreState(st); err != nil {
					t.Fatalf("restore (incremental): %v", err)
				}
				incRes, cache2, err := inc.IncrementalCorpusContext(ctx, v2, cache, workers)
				if err != nil || !incRes.Ok() {
					t.Fatalf("incremental re-run: err=%v failed=%v", err, incRes.Failed())
				}

				wantOut, gotOut := fullRes.Outputs(), incRes.Outputs()
				if len(gotOut) != len(wantOut) {
					t.Fatalf("file count: incremental %d, full %d", len(gotOut), len(wantOut))
				}
				for name, want := range wantOut {
					if got, ok := gotOut[name]; !ok || got != want {
						t.Errorf("incremental output differs for %s (present=%t)", name, ok)
					}
				}

				// The dispositions must be exactly as constructed.
				sum := incRes.Incremental
				if sum.FilesPartial != 2 {
					t.Errorf("partial files = %d, want 2 (%s appended, %s edited)", sum.FilesPartial, appended, edited)
				}
				if sum.FilesFull != 1 {
					t.Errorf("full files = %d, want 1 (%s)", sum.FilesFull, added)
				}
				if want := len(v2) - 3; sum.FilesReused != want {
					t.Errorf("reused files = %d, want %d", sum.FilesReused, want)
				}
				if sum.LinesReused == 0 || sum.LinesRewritten == 0 {
					t.Errorf("line accounting empty: %+v", sum)
				}
				if _, ok := cache2.Files[deleted]; ok {
					t.Errorf("deleted file %s still present in new cache", deleted)
				}

				// Run 3: nothing changed — everything is served from cache.
				inc2 := New(opts)
				if err := inc2.sess.RestoreState(st); err != nil {
					t.Fatalf("restore (idle): %v", err)
				}
				idleRes, _, err := inc2.IncrementalCorpusContext(ctx, v2, cache2, workers)
				if err != nil || !idleRes.Ok() {
					t.Fatalf("idle re-run: err=%v", err)
				}
				if got := idleRes.Incremental.FilesReused; got != len(v2) {
					t.Errorf("idle run reused %d of %d files", got, len(v2))
				}
				if idleRes.Incremental.LinesRewritten != 0 {
					t.Errorf("idle run rewrote %d lines", idleRes.Incremental.LinesRewritten)
				}
				for name, want := range wantOut {
					if got := idleRes.Files[name].Text; got != want {
						t.Errorf("idle run output differs for %s", name)
					}
				}
			})
		}
	}
}

// TestIncrementalCacheInvalidation: a cache recorded under different
// mapping-relevant options (here: an extra sensitive token) must be
// ignored wholesale, not half-trusted.
func TestIncrementalCacheInvalidation(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 4200, Kind: netgen.Enterprise, Routers: 6})
	files := n.RenderAll()
	opts := Options{Salt: []byte(n.Salt)}
	ctx := context.Background()

	a1 := New(opts)
	res1, cache, err := a1.IncrementalCorpusContext(ctx, files, nil, 4)
	if err != nil || !res1.Ok() {
		t.Fatalf("recording run: err=%v", err)
	}

	a2 := New(opts)
	a2.AddRule("supersecret-community")
	res2, _, err := a2.IncrementalCorpusContext(ctx, files, cache, 4)
	if err != nil || !res2.Ok() {
		t.Fatalf("re-run: err=%v", err)
	}
	if !res2.Incremental.CacheInvalidated {
		t.Errorf("token-shifted cache was not invalidated")
	}
	if res2.Incremental.FilesReused != 0 || res2.Incremental.FilesFull != len(files) {
		t.Errorf("invalidated cache still reused files: %+v", res2.Incremental)
	}

	// Wrong salt: same wholesale rejection.
	a3 := New(Options{Salt: []byte("some-other-owner")})
	res3, _, err := a3.IncrementalCorpusContext(ctx, files, cache, 4)
	if err != nil || !res3.Ok() {
		t.Fatalf("wrong-salt run: err=%v", err)
	}
	if !res3.Incremental.CacheInvalidated || res3.Incremental.FilesReused != 0 {
		t.Errorf("wrong-salt cache was not invalidated: %+v", res3.Incremental)
	}
}

// TestIncrementalStrictRegatesReusedFiles: strict gating applies to
// cache-served files too — a token that becomes sensitive between runs
// must quarantine a file the engine never touched this run. (The
// fingerprint shift from AddRule forces reprocessing; to test the
// reused path specifically we instead poison the recorder by feeding a
// doctored extra file whose cleartext collides with a reused output.)
func TestIncrementalStrictRegatesReusedFiles(t *testing.T) {
	const target = "r1-confg"
	files := map[string]string{
		target: "hostname alpha\n!\ninterface Ethernet0\n ip address 8.8.1.1 255.255.255.0\n!\nrouter bgp 3320\n neighbor 8.8.1.2 remote-as 701\nend\n",
	}
	opts := Options{Salt: []byte("strict-regate"), Strict: true}
	ctx := context.Background()

	a1 := New(opts)
	res1, cache, err := a1.IncrementalCorpusContext(ctx, files, nil, 2)
	if err != nil || !res1.Ok() {
		t.Fatalf("recording run: err=%v files=%+v", err, res1.Files)
	}
	out := res1.Files[target].Text

	// Second corpus adds a file whose cleartext uses the PERMUTED ASN
	// from the reused file's output as an original ASN: the recorder
	// learns it, so the reused file's unchanged output now carries a
	// confirmed ASN collision and must be quarantined, cache hit or
	// not. (An IP collision would not do — a flagged IP that is a known
	// mapping output is classified as a likely false positive — and
	// hashed words are fragmented by the tokenizer, so neither kind can
	// confirm here.)
	var anonASN string
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "remote-as "); i >= 0 {
			anonASN = strings.TrimSpace(line[i+len("remote-as "):])
			break
		}
	}
	if anonASN == "" {
		t.Fatalf("no anonymized ASN found in output %q", out)
	}
	files2 := map[string]string{
		target:      files[target],
		"r2-poison": "hostname beta\n!\nrouter bgp " + anonASN + "\nend\n",
	}
	a2 := New(opts)
	if err := a2.LoadMapping(a1.SaveMapping()); err != nil {
		t.Fatalf("LoadMapping: %v", err)
	}
	res2, _, err := a2.IncrementalCorpusContext(ctx, files2, cache, 2)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if res2.Files[target].Status != FileQuarantined {
		t.Errorf("reused file escaped strict re-gating: status=%v", res2.Files[target].Status)
	}

	// And the full path agrees: same corpus, same restored state, same
	// quarantine set.
	a3 := New(opts)
	if err := a3.LoadMapping(a1.SaveMapping()); err != nil {
		t.Fatalf("LoadMapping: %v", err)
	}
	res3, err := a3.ParallelCorpusContext(ctx, files2, 2)
	if err != nil {
		t.Fatalf("full re-run: %v", err)
	}
	if got, want := res2.Quarantined(), res3.Quarantined(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("quarantine sets diverge: incremental %v, full %v", got, want)
	}
}

// BenchmarkIncremental sweeps the changed-line fraction of a second-
// generation corpus against the prior run's cache. An edit invalidates
// the file's tail from the edited line on (the cache reuses the longest
// common prefix), so editing the middle line of K of the N files
// rewrites ~K·L/2 lines; K = 2·f·N puts the rewritten fraction at ~f.
// Each iteration restores the prior mapping and runs the incremental
// path end to end — classify, census over changed files, tail rewrite,
// strict re-gate — the same work `confanon -incremental` does per run.
func BenchmarkIncremental(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 1202, Kind: netgen.Backbone, Routers: 48})
	files := n.RenderAll()
	lines := n.TotalLines()
	opts := Options{Salt: []byte(n.Salt)}

	rec := New(opts)
	_, cache, err := rec.IncrementalCorpusContext(context.Background(), files, nil, 4)
	if err != nil {
		b.Fatal(err)
	}
	state := rec.SaveMapping()

	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, pct := range []int{1, 10, 50} {
		k := (2*pct*len(names) + 99) / 100
		if k > len(names) {
			k = len(names)
		}
		edited := make(map[string]string, len(files))
		for name, text := range files {
			edited[name] = text
		}
		for i := 0; i < k; i++ {
			ls := strings.Split(edited[names[i]], "\n")
			ls[len(ls)/2] = fmt.Sprintf(" description bench-edit 10.200.%d.1", i)
			edited[names[i]] = strings.Join(ls, "\n")
		}
		b.Run(fmt.Sprintf("changed=%d%%", pct), func(b *testing.B) {
			var reused, rewritten int
			for i := 0; i < b.N; i++ {
				a := New(opts)
				if err := a.LoadMapping(state); err != nil {
					b.Fatal(err)
				}
				res, _, err := a.IncrementalCorpusContext(context.Background(), edited, cache, 4)
				if err != nil {
					b.Fatal(err)
				}
				reused, rewritten = res.Incremental.LinesReused, res.Incremental.LinesRewritten
			}
			b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
			b.ReportMetric(float64(reused)/float64(reused+rewritten)*100, "reused%")
		})
	}
}
