package confanon

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"testing"
)

// TestStreamMatchesGoldenStateless: the streaming path produces the same
// bytes as the pinned stateless golden corpus — the single-pass rewrite
// is indistinguishable from the buffered one.
func TestStreamMatchesGoldenStateless(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	want := readGoldenDir(t, "testdata/golden/want-stateless")
	a := New(Options{Salt: []byte(goldenSalt), StatelessIP: true})
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var buf bytes.Buffer
		if err := a.Stream(strings.NewReader(in[n]), &buf); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		diffGolden(t, n, buf.String(), want[n])
	}
}

// TestStreamMatchesFileTree: under the default shaped tree Stream buffers
// one file and must still equal File on the same text.
func TestStreamMatchesFileTree(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	for name, text := range in {
		x := New(Options{Salt: []byte(goldenSalt)})
		var buf bytes.Buffer
		if err := x.Stream(strings.NewReader(text), &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := New(Options{Salt: []byte(goldenSalt)})
		diffGolden(t, name, buf.String(), y.File(text))
	}
}

// TestStreamUnterminatedFinalLine: input without a trailing newline
// streams to the same bytes as File, which terminates the output.
func TestStreamUnterminatedFinalLine(t *testing.T) {
	const text = "hostname r1.foo.com\nrouter bgp 1111"
	a := New(Options{Salt: []byte(goldenSalt), StatelessIP: true})
	var buf bytes.Buffer
	if err := a.Stream(strings.NewReader(text), &buf); err != nil {
		t.Fatal(err)
	}
	b := New(Options{Salt: []byte(goldenSalt), StatelessIP: true})
	if got, want := buf.String(), b.File(text); got != want {
		t.Errorf("stream %q != file %q", got, want)
	}
}

type closeBuffer struct {
	bytes.Buffer
	closed bool
}

func (c *closeBuffer) Close() error { c.closed = true; return nil }

// TestStreamCorpus: the iterator visits every file, matches the pinned
// stateless outputs, and closes each sink.
func TestStreamCorpus(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	want := readGoldenDir(t, "testdata/golden/want-stateless")
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)

	outs := make(map[string]*closeBuffer)
	i := 0
	a := New(Options{Salt: []byte(goldenSalt), StatelessIP: true})
	err := a.StreamCorpus(
		func() (string, io.Reader, error) {
			if i >= len(names) {
				return "", nil, io.EOF
			}
			n := names[i]
			i++
			return n, strings.NewReader(in[n]), nil
		},
		func(name string) (io.WriteCloser, error) {
			outs[name] = &closeBuffer{}
			return outs[name], nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(in) {
		t.Fatalf("visited %d files, want %d", len(outs), len(in))
	}
	for name, buf := range outs {
		if !buf.closed {
			t.Errorf("%s: sink not closed", name)
		}
		diffGolden(t, name, buf.Buffer.String(), want[name])
	}
	if a.Stats().Files != int64(len(in)) {
		t.Errorf("Files = %d, want %d", a.Stats().Files, len(in))
	}
}

// TestParallelCorpusStatsMerged: the merged Stats carry the per-rule
// counters — the field-by-field merge this replaced dropped them when new
// counters were added.
func TestParallelCorpusStatsMerged(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	out, stats := ParallelCorpus(Options{Salt: []byte(goldenSalt)}, in, 4)
	if len(out) != len(in) {
		t.Fatalf("got %d outputs, want %d", len(out), len(in))
	}
	if stats.Files != int64(len(in)) || stats.Lines == 0 {
		t.Errorf("aggregate counters not merged: %+v", stats)
	}
	if len(stats.RuleHits()) == 0 {
		t.Error("RuleHits not merged")
	}
	total := 0
	for _, d := range stats.RuleTime() {
		total += int(d)
	}
	if total <= 0 {
		t.Error("RuleTime not merged")
	}
}
