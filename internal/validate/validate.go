// Package validate implements the paper's two end-to-end validation
// suites (§5), run over pre- and post-anonymization configurations:
//
// Suite 1 compares independent characteristics — the number of BGP
// speakers, the number of interfaces, the structure of the address space
// (number of subnets of each size), and related counts that anonymization
// must not disturb.
//
// Suite 2 extracts the routing design from both versions (internal/routing)
// and compares the canonical signatures; the extraction "depends on many
// aspects of the configuration files being consistent inside each file and
// across all the files in the network", making it the sharpest available
// structural test.
package validate

import (
	"fmt"
	"sort"

	"confanon/internal/config"
	"confanon/internal/junos"
	"confanon/internal/routing"
)

// Characteristics are the independent properties suite 1 compares.
type Characteristics struct {
	Routers         int
	BGPSpeakers     int
	Interfaces      int
	InterfacesUp    int
	SubnetHist      map[int]int // prefix length -> number of distinct subnets
	RouteMaps       int
	RouteMapClauses int
	ACLs            int
	ACLEntries      int
	CommunityLists  int
	ASPathLists     int
	StaticRoutes    int
	EBGPSessions    int
	IBGPSessions    int
	OSPFProcesses   int
	RIPProcesses    int
	EIGRPProcesses  int
	Banners         int
}

// Measure computes the characteristics of a network's configurations.
func Measure(configs []*config.Config) Characteristics {
	ch := Characteristics{SubnetHist: make(map[int]int)}
	subnets := make(map[config.Prefix]bool)
	for _, c := range configs {
		ch.Routers++
		ch.Banners += len(c.Banners)
		for _, ifc := range c.Interfaces {
			ch.Interfaces++
			if !ifc.Shutdown {
				ch.InterfacesUp++
			}
			if ifc.HasAddress {
				if l, ok := config.MaskToLen(ifc.Address.Mask); ok {
					subnets[config.Prefix{Addr: ifc.Address.Addr & config.LenToMask(l), Len: l}] = true
				}
			}
			for _, sec := range ifc.Secondary {
				if l, ok := config.MaskToLen(sec.Mask); ok {
					subnets[config.Prefix{Addr: sec.Addr & config.LenToMask(l), Len: l}] = true
				}
			}
		}
		if c.BGP != nil {
			ch.BGPSpeakers++
			for _, nb := range c.BGP.Neighbors {
				if nb.RemoteAS == c.BGP.ASN {
					ch.IBGPSessions++
				} else {
					ch.EBGPSessions++
				}
			}
		}
		ch.OSPFProcesses += len(c.OSPF)
		if c.RIP != nil {
			ch.RIPProcesses++
		}
		ch.EIGRPProcesses += len(c.EIGRP)
		ch.RouteMaps += len(c.RouteMaps)
		for _, rm := range c.RouteMaps {
			ch.RouteMapClauses += len(rm.Clauses)
		}
		ch.ACLs += len(c.AccessLists)
		for _, acl := range c.AccessLists {
			ch.ACLEntries += len(acl.Entries)
		}
		ch.CommunityLists += len(c.CommunityLists)
		ch.ASPathLists += len(c.ASPathLists)
		ch.StaticRoutes += len(c.StaticRoutes)
	}
	for p := range subnets {
		ch.SubnetHist[p.Len]++
	}
	return ch
}

// Diff lists the characteristics that differ, one human-readable line per
// mismatch; an empty slice means the suite passes.
func (c Characteristics) Diff(o Characteristics) []string {
	var out []string
	cmp := func(name string, a, b int) {
		if a != b {
			out = append(out, fmt.Sprintf("%s: pre=%d post=%d", name, a, b))
		}
	}
	cmp("routers", c.Routers, o.Routers)
	cmp("bgp-speakers", c.BGPSpeakers, o.BGPSpeakers)
	cmp("interfaces", c.Interfaces, o.Interfaces)
	cmp("interfaces-up", c.InterfacesUp, o.InterfacesUp)
	cmp("route-maps", c.RouteMaps, o.RouteMaps)
	cmp("route-map-clauses", c.RouteMapClauses, o.RouteMapClauses)
	cmp("acls", c.ACLs, o.ACLs)
	cmp("acl-entries", c.ACLEntries, o.ACLEntries)
	cmp("community-lists", c.CommunityLists, o.CommunityLists)
	cmp("as-path-lists", c.ASPathLists, o.ASPathLists)
	cmp("static-routes", c.StaticRoutes, o.StaticRoutes)
	cmp("ebgp-sessions", c.EBGPSessions, o.EBGPSessions)
	cmp("ibgp-sessions", c.IBGPSessions, o.IBGPSessions)
	cmp("ospf-processes", c.OSPFProcesses, o.OSPFProcesses)
	cmp("rip-processes", c.RIPProcesses, o.RIPProcesses)
	cmp("eigrp-processes", c.EIGRPProcesses, o.EIGRPProcesses)
	cmp("banners", c.Banners, o.Banners)

	lens := make(map[int]bool)
	for l := range c.SubnetHist {
		lens[l] = true
	}
	for l := range o.SubnetHist {
		lens[l] = true
	}
	var sorted []int
	for l := range lens {
		sorted = append(sorted, l)
	}
	sort.Ints(sorted)
	for _, l := range sorted {
		if c.SubnetHist[l] != o.SubnetHist[l] {
			out = append(out, fmt.Sprintf("subnets/%d: pre=%d post=%d", l, c.SubnetHist[l], o.SubnetHist[l]))
		}
	}
	return out
}

// Suite1 runs the independent-characteristics comparison.
func Suite1(pre, post []*config.Config) []string {
	return Measure(pre).Diff(Measure(post))
}

// Suite2Result reports the routing-design comparison.
type Suite2Result struct {
	PreSignature  string
	PostSignature string
	PreSummary    string
	PostSummary   string
}

// OK reports whether the designs match.
func (r Suite2Result) OK() bool { return r.PreSignature == r.PostSignature }

// Suite2 extracts and compares the routing designs.
func Suite2(pre, post []*config.Config) Suite2Result {
	dp := routing.Extract(pre)
	da := routing.Extract(post)
	return Suite2Result{
		PreSignature:  dp.Signature(),
		PostSignature: da.Signature(),
		PreSummary:    dp.Summary(),
		PostSummary:   da.Summary(),
	}
}

// ParseAll parses a set of rendered configurations, detecting the dialect
// (IOS or JunOS) per file.
func ParseAll(texts map[string]string) []*config.Config {
	names := make([]string, 0, len(texts))
	for n := range texts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*config.Config, 0, len(texts))
	for _, n := range names {
		out = append(out, ParseAuto(texts[n]))
	}
	return out
}

// ParseAuto parses one configuration in whichever dialect it is written.
func ParseAuto(text string) *config.Config {
	if junos.LooksLikeJunOS(text) {
		return junos.Parse(text)
	}
	return config.Parse(text)
}
