package validate

import (
	"strings"
	"testing"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/netgen"
)

// anonymizeNetwork renders, prescans, and anonymizes every router of a
// generated network, returning pre and post parsed configs.
func anonymizeNetwork(t *testing.T, n *netgen.Network) (pre, post []*config.Config) {
	t.Helper()
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	texts := n.RenderAll()
	for _, text := range texts {
		a.Prescan(text)
	}
	postTexts := make(map[string]string, len(texts))
	for name, text := range texts {
		postTexts[name] = a.AnonymizeText(text)
	}
	return ParseAll(texts), ParseAll(postTexts)
}

func TestSuite1OnGeneratedBackbone(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 101, Kind: netgen.Backbone, Routers: 25})
	pre, post := anonymizeNetwork(t, n)
	if diffs := Suite1(pre, post); len(diffs) != 0 {
		t.Errorf("suite 1 failed:\n%s", strings.Join(diffs, "\n"))
	}
}

func TestSuite1OnGeneratedEnterprise(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 102, Kind: netgen.Enterprise, Routers: 18,
		Compartmentalized: true})
	pre, post := anonymizeNetwork(t, n)
	if diffs := Suite1(pre, post); len(diffs) != 0 {
		t.Errorf("suite 1 failed:\n%s", strings.Join(diffs, "\n"))
	}
}

func TestSuite2OnGeneratedBackbone(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 103, Kind: netgen.Backbone, Routers: 25,
		UseASPathAlternation: true, UseCommunityRegexps: true})
	pre, post := anonymizeNetwork(t, n)
	res := Suite2(pre, post)
	if !res.OK() {
		t.Errorf("suite 2 failed:\npre:  %s\npost: %s\n--- pre sig ---\n%s\n--- post sig ---\n%s",
			res.PreSummary, res.PostSummary, res.PreSignature, res.PostSignature)
	}
}

func TestSuite2OnGeneratedEnterprise(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 104, Kind: netgen.Enterprise, Routers: 15})
	pre, post := anonymizeNetwork(t, n)
	res := Suite2(pre, post)
	if !res.OK() {
		t.Errorf("suite 2 failed:\npre:  %s\npost: %s\n--- pre ---\n%s\n--- post ---\n%s",
			res.PreSummary, res.PostSummary, res.PreSignature, res.PostSignature)
	}
}

func TestSuite1DetectsDamage(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 105, Kind: netgen.Backbone, Routers: 12})
	texts := n.RenderAll()
	pre := ParseAll(texts)
	// Damage: drop one router's BGP block.
	for name, text := range texts {
		if strings.Contains(text, "router bgp") {
			lines := strings.Split(text, "\n")
			var kept []string
			skipping := false
			for _, l := range lines {
				if strings.HasPrefix(l, "router bgp") {
					skipping = true
					continue
				}
				if skipping && !strings.HasPrefix(l, " ") {
					skipping = false
				}
				if !skipping {
					kept = append(kept, l)
				}
			}
			texts[name] = strings.Join(kept, "\n")
			break
		}
	}
	post := ParseAll(texts)
	if diffs := Suite1(pre, post); len(diffs) == 0 {
		t.Error("suite 1 missed a deleted BGP process")
	}
}

func TestMeasureCounts(t *testing.T) {
	text := `hostname r1
interface Ethernet0
 ip address 10.1.1.1 255.255.255.0
!
interface Serial0
 ip address 10.2.0.1 255.255.255.252
 shutdown
!
router bgp 65000
 neighbor 10.9.9.9 remote-as 701
 neighbor 10.1.1.2 remote-as 65000
!
route-map m permit 10
!
access-list 10 permit 10.1.1.0 0.0.0.255
ip community-list 1 permit 701:100
ip as-path access-list 1 permit _701_
ip route 0.0.0.0 0.0.0.0 10.9.9.9
end
`
	ch := Measure([]*config.Config{config.Parse(text)})
	if ch.Routers != 1 || ch.BGPSpeakers != 1 || ch.Interfaces != 2 || ch.InterfacesUp != 1 {
		t.Errorf("basic counts wrong: %+v", ch)
	}
	if ch.EBGPSessions != 1 || ch.IBGPSessions != 1 {
		t.Errorf("session counts wrong: %+v", ch)
	}
	if ch.SubnetHist[24] != 1 || ch.SubnetHist[30] != 1 {
		t.Errorf("subnet histogram wrong: %+v", ch.SubnetHist)
	}
	if ch.RouteMaps != 1 || ch.ACLs != 1 || ch.CommunityLists != 1 || ch.ASPathLists != 1 || ch.StaticRoutes != 1 {
		t.Errorf("policy counts wrong: %+v", ch)
	}
}

func TestDiffSymmetricEmpty(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 106, Kind: netgen.Backbone, Routers: 10})
	cfgs := ParseAll(n.RenderAll())
	ch := Measure(cfgs)
	if diffs := ch.Diff(ch); len(diffs) != 0 {
		t.Errorf("self-diff not empty: %v", diffs)
	}
}

func TestCrossNetworkConsistentSalt(t *testing.T) {
	// Two anonymizers with the same salt map a shared address block
	// identically — the property that lets one owner anonymize several
	// networks consistently.
	a1 := anonymizer.New(anonymizer.Options{Salt: []byte("owner")})
	a2 := anonymizer.New(anonymizer.Options{Salt: []byte("owner")})
	in := "interface Ethernet0\n ip address 12.5.5.1 255.255.255.0\n"
	if a1.AnonymizeText(in) != a2.AnonymizeText(in) {
		t.Error("same-salt anonymizers diverged")
	}
}
