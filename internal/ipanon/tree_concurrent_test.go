package ipanon

import (
	"sync"
	"testing"
)

// TestTreeConcurrentMapV4 exercises the two-phase concurrency design:
// many goroutines mapping an overlapping working set must agree — an
// address resolved once answers identically forever, reads on resolved
// nodes are lock-free, and the entry count equals the distinct inputs.
func TestTreeConcurrentMapV4(t *testing.T) {
	tr := NewTree(DefaultOptions([]byte("concurrent")))
	// 256 distinct addresses across several /16s, plus specials that must
	// pass through.
	addrs := make([]uint32, 0, 260)
	for i := uint32(0); i < 256; i++ {
		addrs = append(addrs, 0x0C010000|i<<8|i) // 12.1.x.x
	}
	addrs = append(addrs, 0x7F000001, 0xFFFFFFFF, 0xE0000001, 0x0A000001)

	const workers = 8
	got := make([]map[uint32]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := make(map[uint32]uint32, len(addrs))
			// Each worker walks the set in a different rotation so first
			// touches interleave.
			for i := range addrs {
				a := addrs[(i+w*37)%len(addrs)]
				m[a] = tr.MapV4(a)
			}
			got[w] = m
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		for a, v := range got[0] {
			if got[w][a] != v {
				t.Fatalf("worker %d maps %08x to %08x, worker 0 to %08x", w, a, got[w][a], v)
			}
		}
	}
	for _, a := range []uint32{0x7F000001, 0xFFFFFFFF, 0xE0000001} {
		if got[0][a] != a {
			t.Errorf("special %08x did not pass through (got %08x)", a, got[0][a])
		}
	}
	if tr.Len() != len(addrs) {
		t.Errorf("Len() = %d, want %d distinct entries", tr.Len(), len(addrs))
	}
	// Re-querying serially must reproduce the concurrent answers.
	for a, v := range got[0] {
		if tr.MapV4(a) != v {
			t.Errorf("re-query of %08x changed the mapping", a)
		}
	}
}

// TestTreeConcurrentPrefixAndAddr mixes MapPrefix pins and MapV4 lookups
// concurrently — the corpus pipeline's exact access pattern.
func TestTreeConcurrentPrefixAndAddr(t *testing.T) {
	tr := NewTree(DefaultOptions([]byte("mixed")))
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint32(0); i < 64; i++ {
				if w%2 == 0 {
					tr.MapPrefix(0x0C000000|i<<16, 16)
				} else {
					tr.MapV4(0x0C000000 | i<<16 | 0x0101)
				}
			}
		}(w)
	}
	wg.Wait()
	// Prefix containment must hold: an address inside a pinned /16 maps
	// inside that prefix's image.
	for i := uint32(0); i < 64; i++ {
		p := tr.MapPrefix(0x0C000000|i<<16, 16)
		a := tr.MapV4(0x0C000000 | i<<16 | 0x0101)
		if a&0xFFFF0000 != p&0xFFFF0000 {
			t.Fatalf("address %08x escaped its pinned /16: prefix image %08x, addr image %08x",
				0x0C000000|i<<16|0x0101, p, a)
		}
	}
}
