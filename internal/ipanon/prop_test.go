package ipanon

import (
	"math/rand"
	"testing"
)

// This file is the property-based half of the ipanon suite: the §4.3
// invariants checked over tens of thousands of pseudo-random addresses
// instead of hand-picked examples. The generator is seeded, so a
// failure reproduces deterministically.

const propCases = 20000

// randomAddrs returns n pseudo-random addresses, deduplicated, from a
// fixed-seed source. The mix is biased toward structure the anonymizer
// cares about: plain hosts, subnet addresses (trailing zeros), and
// addresses adjacent to class boundaries.
func randomAddrs(seed int64, n int) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		ip := rng.Uint32()
		switch rng.Intn(4) {
		case 0:
			// Subnet address: clear 4–16 host bits.
			ip &^= (1 << (4 + rng.Intn(13))) - 1
		case 1:
			// Cluster near a class boundary.
			ip = (ip & 0x00ffffff) | uint32([]byte{0x7f, 0x80, 0xbf, 0xc0}[rng.Intn(4)])<<24
		}
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	return out
}

// TestPropTreeLCPPreservation: with all shaping off, the tree is the
// pure prefix-preserving bijection of §4.3 — two inputs sharing exactly
// k leading bits map to outputs sharing exactly k leading bits.
func TestPropTreeLCPPreservation(t *testing.T) {
	tr := NewTree(Options{Salt: []byte("prop")})
	addrs := randomAddrs(1, propCases)
	outs := make([]uint32, len(addrs))
	for i, a := range addrs {
		outs[i] = tr.MapV4(a)
	}
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < propCases; c++ {
		i, j := rng.Intn(len(addrs)), rng.Intn(len(addrs))
		if i == j {
			continue
		}
		if in, out := LCP(addrs[i], addrs[j]), LCP(outs[i], outs[j]); in != out {
			t.Fatalf("LCP(%08x,%08x)=%d but LCP of images = %d", addrs[i], addrs[j], in, out)
		}
	}
}

// TestPropCryptoPAnLCPPreservation: the stateless Crypto-PAn scheme is
// prefix-preserving by construction; check it over random pairs.
func TestPropCryptoPAnLCPPreservation(t *testing.T) {
	var key [32]byte
	copy(key[:], "0123456789abcdef0123456789abcdef")
	c, err := NewCryptoPAn(key)
	if err != nil {
		t.Fatal(err)
	}
	addrs := randomAddrs(3, propCases/2)
	outs := make([]uint32, len(addrs))
	for i, a := range addrs {
		outs[i] = c.MapV4(a)
	}
	rng := rand.New(rand.NewSource(4))
	for n := 0; n < propCases; n++ {
		i, j := rng.Intn(len(addrs)), rng.Intn(len(addrs))
		if i == j {
			continue
		}
		if in, out := LCP(addrs[i], addrs[j]), LCP(outs[i], outs[j]); in != out {
			t.Fatalf("CryptoPAn LCP(%08x,%08x)=%d but LCP of images = %d", addrs[i], addrs[j], in, out)
		}
	}
}

// TestPropTreeClassAndSpecial: under the paper's default options the
// mapping preserves address class, passes special addresses through
// unchanged, and never maps a non-special address into the special set.
func TestPropTreeClassAndSpecial(t *testing.T) {
	tr := NewTree(DefaultOptions([]byte("prop-default")))
	for _, a := range randomAddrs(5, propCases) {
		out := tr.MapV4(a)
		if IsSpecial(a) {
			if out != a {
				t.Fatalf("special %08x mapped to %08x, want passthrough", a, out)
			}
			continue
		}
		if IsSpecial(out) {
			t.Fatalf("non-special %08x mapped into special set: %08x", a, out)
		}
		if Class(a) != Class(out) {
			t.Fatalf("%08x (class %c) mapped to %08x (class %c)", a, Class(a), out, Class(out))
		}
	}
}

// TestPropInjectivity: after collision remapping (the shaping options
// bias the raw bijection, so two inputs can race for one image), the
// mapping must still be injective — for both the shaped tree and the
// table-backed Crypto-PAn mapper.
func TestPropInjectivity(t *testing.T) {
	addrs := randomAddrs(6, propCases)
	schemes := []struct {
		name string
		m    interface {
			MapV4(uint32) uint32
			Remaps() int64
		}
	}{
		{"tree", NewTree(DefaultOptions([]byte("prop-inj")))},
		{"crypto", NewCryptoMapper([]byte("prop-inj"))},
	}
	for _, sc := range schemes {
		images := make(map[uint32]uint32, len(addrs))
		for _, a := range addrs {
			out := sc.m.MapV4(a)
			if prev, dup := images[out]; dup {
				t.Fatalf("%s: %08x and %08x both map to %08x", sc.name, prev, a, out)
			}
			images[out] = a
			// Stability: a second map of the same input must agree.
			if again := sc.m.MapV4(a); again != out {
				t.Fatalf("%s: %08x mapped to %08x then %08x", sc.name, a, out, again)
			}
		}
		if sc.m.Remaps() < 0 {
			t.Fatalf("%s: negative remap count", sc.name)
		}
	}
}
