package ipanon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"confanon/internal/token"
)

func newTestTree() *Tree {
	return NewTree(DefaultOptions([]byte("test-salt")))
}

func TestIsSpecial(t *testing.T) {
	mustParse := func(s string) uint32 {
		v, ok := token.ParseIPv4(s)
		if !ok {
			t.Fatalf("bad test address %q", s)
		}
		return v
	}
	special := []string{
		"0.0.0.0", "255.255.255.255", "255.255.255.0", "255.255.0.0",
		"255.0.0.0", "128.0.0.0", "255.255.255.252", "255.255.255.128",
		"0.0.0.255", "0.0.0.3", "0.255.255.255", "0.0.255.255",
		"127.0.0.1", "127.255.255.254", "224.0.0.5", "239.255.255.255",
		"240.0.0.1", "255.255.255.254",
	}
	for _, s := range special {
		if !IsSpecial(mustParse(s)) {
			t.Errorf("IsSpecial(%s) = false, want true", s)
		}
	}
	normal := []string{
		"1.1.1.1", "10.0.0.1", "192.168.1.1", "12.0.0.0", "128.2.0.0",
		"198.51.100.7", "126.255.255.255", "223.255.255.1",
	}
	for _, s := range normal {
		if IsSpecial(mustParse(s)) {
			t.Errorf("IsSpecial(%s) = true, want false", s)
		}
	}
}

func TestClass(t *testing.T) {
	cases := []struct {
		ip    string
		class byte
	}{
		{"1.2.3.4", 'A'}, {"127.0.0.1", 'A'}, {"128.0.0.1", 'B'},
		{"191.255.0.0", 'B'}, {"192.0.0.1", 'C'}, {"223.255.255.255", 'C'},
		{"224.0.0.1", 'D'}, {"239.1.1.1", 'D'}, {"240.0.0.1", 'E'},
		{"255.255.255.255", 'E'},
	}
	for _, c := range cases {
		v, _ := token.ParseIPv4(c.ip)
		if got := Class(v); got != c.class {
			t.Errorf("Class(%s) = %c, want %c", c.ip, got, c.class)
		}
	}
}

func TestTreeSpecialFixedPoints(t *testing.T) {
	tr := newTestTree()
	for _, ip := range []uint32{0, 0xFFFFFFFF, 0xFFFFFF00, 0x000000FF, 0x7F000001, 0xE0000005} {
		if got := tr.MapV4(ip); got != ip {
			t.Errorf("special %s mapped to %s, want fixed point",
				token.FormatIPv4(ip), token.FormatIPv4(got))
		}
	}
}

func TestTreeClassPreserving(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		ip := rng.Uint32()
		out := tr.MapV4(ip)
		if IsSpecial(ip) {
			continue
		}
		if Class(out) != Class(ip) {
			t.Fatalf("class changed: %s (class %c) -> %s (class %c)",
				token.FormatIPv4(ip), Class(ip), token.FormatIPv4(out), Class(out))
		}
	}
}

func TestTreeInjective(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(11))
	outs := make(map[uint32]uint32)
	for i := 0; i < 20000; i++ {
		ip := rng.Uint32()
		out := tr.MapV4(ip)
		if prev, ok := outs[out]; ok && prev != ip {
			t.Fatalf("collision: %s and %s both map to %s",
				token.FormatIPv4(prev), token.FormatIPv4(ip), token.FormatIPv4(out))
		}
		outs[out] = ip
	}
}

// TestTreePrefixPreserving checks the Xu-style property on pairs whose
// images were not chased out of the special range (chasing intentionally
// trades exact prefix preservation for special-address fixity; the paper
// proves the chase keeps the scheme injective and structure preserving).
func TestTreePrefixPreserving(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(13))
	type rec struct{ in, out uint32 }
	var clean []rec
	for i := 0; i < 4000; i++ {
		ip := rng.Uint32()
		if IsSpecial(ip) {
			continue
		}
		out := tr.rawMap(ip)
		if IsSpecial(out) {
			continue // would be chased
		}
		clean = append(clean, rec{ip, out})
	}
	for i := 0; i < len(clean); i += 7 {
		for j := i + 1; j < len(clean); j += 13 {
			a, b := clean[i], clean[j]
			if LCP(a.in, b.in) != LCP(a.out, b.out) {
				t.Fatalf("prefix not preserved: lcp(%s,%s)=%d but lcp(%s,%s)=%d",
					token.FormatIPv4(a.in), token.FormatIPv4(b.in), LCP(a.in, b.in),
					token.FormatIPv4(a.out), token.FormatIPv4(b.out), LCP(a.out, b.out))
			}
		}
	}
}

func TestTreeRawMapIsPrefixPreservingQuick(t *testing.T) {
	tr := NewTree(Options{Salt: []byte("q")}) // no shaping: pure bijection
	f := func(a, b uint32) bool {
		return LCP(tr.rawMap(a), tr.rawMap(b)) == LCP(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTreeSubnetPreserving(t *testing.T) {
	tr := newTestTree()
	// Map subnet addresses before any host within them: the trailing
	// zeros must be preserved exactly.
	subnets := []struct {
		addr string
		bits int // trailing zero bits
	}{
		{"10.1.0.0", 16}, {"10.2.4.0", 8}, {"172.17.8.0", 8},
		{"192.168.24.0", 8}, {"12.100.0.0", 16},
	}
	for _, s := range subnets {
		v, _ := token.ParseIPv4(s.addr)
		out := tr.MapV4(v)
		if out<<(32-uint(s.bits)) != 0 {
			t.Errorf("subnet address %s mapped to %s: trailing %d zero bits not preserved",
				s.addr, token.FormatIPv4(out), s.bits)
		}
	}
	// Subnet containment: a host inside a mapped /24 stays inside the
	// mapped /24.
	net, _ := token.ParseIPv4("10.2.4.0")
	host, _ := token.ParseIPv4("10.2.4.77")
	mn, mh := tr.MapV4(net), tr.MapV4(host)
	if mn>>8 != mh>>8 {
		t.Errorf("containment broken: net %s host %s", token.FormatIPv4(mn), token.FormatIPv4(mh))
	}
}

func TestTreeDeterministicUnderSalt(t *testing.T) {
	addrs := make([]uint32, 500)
	rng := rand.New(rand.NewSource(17))
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	t1 := NewTree(DefaultOptions([]byte("salt-a")))
	t2 := NewTree(DefaultOptions([]byte("salt-a")))
	t3 := NewTree(DefaultOptions([]byte("salt-b")))
	same, diff := 0, 0
	for _, a := range addrs {
		o1, o2, o3 := t1.MapV4(a), t2.MapV4(a), t3.MapV4(a)
		if o1 != o2 {
			t.Fatalf("same salt, different mapping for %s", token.FormatIPv4(a))
		}
		if o1 == o3 {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different salts produced identical mappings")
	}
}

func TestTreeIdempotentLookups(t *testing.T) {
	tr := newTestTree()
	a := uint32(0x0A010203)
	first := tr.MapV4(a)
	for i := 0; i < 5; i++ {
		if got := tr.MapV4(a); got != first {
			t.Fatalf("lookup %d changed: %v != %v", i, got, first)
		}
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTreeMapPrefix(t *testing.T) {
	tr := newTestTree()
	addr, _ := token.ParseIPv4("10.1.2.3")
	p := tr.MapPrefix(addr, 24)
	if p&0xFF != 0 {
		t.Errorf("MapPrefix(/24) host bits nonzero: %s", token.FormatIPv4(p))
	}
	net, _ := token.ParseIPv4("10.1.2.0")
	if got := tr.MapV4(net); got != p {
		t.Errorf("MapPrefix disagrees with MapV4 on network address: %s vs %s",
			token.FormatIPv4(p), token.FormatIPv4(got))
	}
	if got := tr.MapPrefix(addr, 0); got != 0 {
		t.Errorf("MapPrefix(/0) = %s, want 0.0.0.0", token.FormatIPv4(got))
	}
	host := tr.MapPrefix(addr, 32)
	if host != tr.MapV4(addr) {
		t.Error("MapPrefix(/32) disagrees with MapV4")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(23))
	var addrs []uint32
	// Deliberately interleave host and subnet addresses so the
	// order-dependent shaping is exercised.
	for i := 0; i < 300; i++ {
		a := rng.Uint32()
		addrs = append(addrs, a, a&0xFFFFFF00)
	}
	want := make(map[uint32]uint32)
	for _, a := range addrs {
		want[a] = tr.MapV4(a)
	}
	snap := tr.Save()
	tr2, err := Load(snap)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for a, w := range want {
		if got := tr2.MapV4(a); got != w {
			t.Fatalf("reloaded tree maps %s to %s, want %s",
				token.FormatIPv4(a), token.FormatIPv4(got), token.FormatIPv4(w))
		}
	}
	// New addresses after reload must still be prefix-consistent with
	// the old ones.
	novel := uint32(0x0A0B0C0D)
	o1, o2 := tr.MapV4(novel), tr2.MapV4(novel)
	if o1 != o2 {
		t.Errorf("novel address diverged after reload: %s vs %s",
			token.FormatIPv4(o1), token.FormatIPv4(o2))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, snap := range [][]byte{nil, []byte("xx"), []byte("ipa1"), []byte("nope56789012345")} {
		if _, err := Load(snap); err == nil {
			t.Errorf("Load(%q) accepted garbage", snap)
		}
	}
	// Corrupt a valid snapshot's mapping bytes.
	tr := newTestTree()
	tr.MapV4(0x0A000001)
	snap := tr.Save()
	snap[len(snap)-1] ^= 0xFF
	if _, err := Load(snap); err == nil {
		t.Error("Load accepted corrupted mapping")
	}
}

func TestCryptoPAnPrefixPreserving(t *testing.T) {
	var key [32]byte
	copy(key[:], "this-is-a-32-byte-test-key-....!")
	c, err := NewCryptoPAn(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	addrs := make([]uint32, 200)
	outs := make([]uint32, 200)
	for i := range addrs {
		addrs[i] = rng.Uint32()
		outs[i] = c.MapV4(addrs[i])
	}
	for i := 0; i < len(addrs); i += 3 {
		for j := i + 1; j < len(addrs); j += 5 {
			if LCP(addrs[i], addrs[j]) != LCP(outs[i], outs[j]) {
				t.Fatalf("CryptoPAn prefix not preserved for %s,%s",
					token.FormatIPv4(addrs[i]), token.FormatIPv4(addrs[j]))
			}
		}
	}
}

func TestCryptoPAnDeterministic(t *testing.T) {
	var key [32]byte
	key[0] = 42
	c1, _ := NewCryptoPAn(key)
	c2, _ := NewCryptoPAn(key)
	key[0] = 43
	c3, _ := NewCryptoPAn(key)
	diff := 0
	for _, a := range []uint32{1, 0x0A000001, 0xC0A80101, 0xDEADBEEF} {
		if c1.MapV4(a) != c2.MapV4(a) {
			t.Errorf("same key, different mapping for %#x", a)
		}
		if c1.MapV4(a) != c3.MapV4(a) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different keys produced identical mappings")
	}
}

func TestLCP(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int
	}{
		{0, 0, 32},
		{0, 1, 31},
		{0, 0x80000000, 0},
		{0xFFFF0000, 0xFFFF8000, 16},
		{0x0A000000, 0x0A000001, 31},
	}
	for _, c := range cases {
		if got := LCP(c.a, c.b); got != c.want {
			t.Errorf("LCP(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestChaseNeverReturnsSpecial(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30000; i++ {
		ip := rng.Uint32()
		out := tr.MapV4(ip)
		if !IsSpecial(ip) && IsSpecial(out) {
			t.Fatalf("non-special %s mapped to special %s",
				token.FormatIPv4(ip), token.FormatIPv4(out))
		}
	}
}

func TestMaskDetection(t *testing.T) {
	// Every contiguous mask and its complement must be special.
	for i := 0; i <= 32; i++ {
		var m uint32
		if i > 0 {
			m = ^uint32(0) << (32 - uint(i))
		}
		if !IsSpecial(m) {
			t.Errorf("netmask /%d (%s) not special", i, token.FormatIPv4(m))
		}
		if !IsSpecial(^m) {
			t.Errorf("wildcard for /%d (%s) not special", i, token.FormatIPv4(^m))
		}
	}
}

func BenchmarkTreeMapV4(b *testing.B) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MapV4(addrs[i%len(addrs)])
	}
}

func BenchmarkCryptoPAnMapV4(b *testing.B) {
	var key [32]byte
	c, _ := NewCryptoPAn(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MapV4(uint32(i) * 2654435761)
	}
}

func TestCryptoMapperInterface(t *testing.T) {
	var _ Mapper = NewTree(DefaultOptions(nil))
	var _ Mapper = NewCryptoMapper(nil)
}

func TestCryptoMapperSpecialsAndDeterminism(t *testing.T) {
	m1 := NewCryptoMapper([]byte("s"))
	m2 := NewCryptoMapper([]byte("s"))
	m3 := NewCryptoMapper([]byte("t"))
	for _, ip := range []uint32{0, 0xFFFFFF00, 0x7F000001, 0xE0000001} {
		if m1.MapV4(ip) != ip {
			t.Errorf("special %#x not fixed", ip)
		}
	}
	diff := 0
	for _, ip := range []uint32{0x0C010203, 0x81020304, 0xC0A80101} {
		if m1.MapV4(ip) != m2.MapV4(ip) {
			t.Errorf("same salt diverged at %#x", ip)
		}
		if m1.MapV4(ip) != m3.MapV4(ip) {
			diff++
		}
		if IsSpecial(m1.MapV4(ip)) {
			t.Errorf("non-special %#x mapped into special range", ip)
		}
	}
	if diff == 0 {
		t.Error("different salts produced identical mappings")
	}
	if m1.Len() == 0 || len(m1.Mapping()) != m1.Len() {
		t.Errorf("mapping record inconsistent: len=%d pairs=%d", m1.Len(), len(m1.Mapping()))
	}
}

func TestCryptoMapperConcurrent(t *testing.T) {
	m := NewCryptoMapper([]byte("conc"))
	done := make(chan map[uint32]uint32, 8)
	for g := 0; g < 8; g++ {
		go func(seed uint32) {
			out := make(map[uint32]uint32)
			for i := uint32(0); i < 500; i++ {
				ip := seed*2654435761 + i*97
				out[ip] = m.MapV4(ip)
			}
			done <- out
		}(uint32(g % 3)) // overlapping ranges on purpose
	}
	merged := make(map[uint32]uint32)
	for g := 0; g < 8; g++ {
		for ip, out := range <-done {
			if prev, ok := merged[ip]; ok && prev != out {
				t.Fatalf("concurrent mapping inconsistent at %#x", ip)
			}
			merged[ip] = out
		}
	}
}

func TestCryptoMapperPrefixPreserving(t *testing.T) {
	m := NewCryptoMapper([]byte("pp"))
	rng := rand.New(rand.NewSource(5))
	type rec struct{ in, out uint32 }
	var recs []rec
	for i := 0; i < 300; i++ {
		ip := rng.Uint32()
		if IsSpecial(ip) {
			continue
		}
		out := m.MapV4(ip)
		// Chased addresses lose exact prefix preservation; skip them by
		// checking the raw mapping agrees.
		if m.c.MapV4(ip) != out {
			continue
		}
		recs = append(recs, rec{ip, out})
	}
	for i := 0; i < len(recs); i += 5 {
		for j := i + 1; j < len(recs); j += 9 {
			if LCP(recs[i].in, recs[j].in) != LCP(recs[i].out, recs[j].out) {
				t.Fatalf("prefix broken between %#x and %#x", recs[i].in, recs[j].in)
			}
		}
	}
}

// TestDoomAvoidance pins the flip-retry at resolution time: with
// PassSpecial on, no raw image of a non-special input may land inside
// 127/8 or class D/E (every completion of those prefixes is special,
// which would condemn the whole input subtree to the collision chase).
// Checked across many salts because the doomed-prefix event is salt
// dependent — seed 7001's network hit exactly this with 10/8 → 127/8.
func TestDoomAvoidance(t *testing.T) {
	for s := 0; s < 40; s++ {
		tr := NewTree(DefaultOptions([]byte{byte(s), byte(s >> 8), 'd'}))
		rng := rand.New(rand.NewSource(int64(s)))
		for i := 0; i < 2000; i++ {
			ip := rng.Uint32()
			if IsSpecial(ip) {
				continue
			}
			tr.mu.Lock()
			raw := tr.rawMap(ip)
			tr.mu.Unlock()
			if raw>>24 == 127 || raw >= 0xE0000000 {
				t.Fatalf("salt %d: rawMap(%s) = %s lands in a doomed block",
					s, token.FormatIPv4(ip), token.FormatIPv4(raw))
			}
		}
	}
}

// TestChaseStaysInParentPrefix pins the classful-coverage fix (ROADMAP
// item 4): when a classful network address like 10.0.0.0 maps raw to a
// special address, the chase must resolve it inside the already-fixed
// image /8 (so the classful mask of the image still covers the members)
// and must keep the subnet shape (trailing zero bytes) via its stride.
func TestChaseStaysInParentPrefix(t *testing.T) {
	hits := 0
	for s := 0; s < 400; s++ {
		salt := []byte{byte(s), byte(s >> 8), 'c'}
		tr := NewTree(DefaultOptions(salt))
		tr.mu.Lock()
		raw := tr.rawMap(10 << 24)
		tr.mu.Unlock()
		if !IsSpecial(raw) {
			continue
		}
		hits++
		out := tr.MapPrefix(10<<24, 8)
		if out>>24 != raw>>24 {
			t.Errorf("salt %d: chase left the image /8: raw %s, out %s",
				s, token.FormatIPv4(raw), token.FormatIPv4(out))
		}
		if out&0xFF != 0 {
			t.Errorf("salt %d: chase broke the subnet shape: raw %s, out %s",
				s, token.FormatIPv4(raw), token.FormatIPv4(out))
		}
		if IsSpecial(out) {
			t.Errorf("salt %d: chase returned special %s", s, token.FormatIPv4(out))
		}
	}
	if hits == 0 {
		t.Fatal("no salt produced a special raw image for 10.0.0.0; test is vacuous")
	}
}
