// Package ipanon implements prefix-preserving IPv4 address anonymization.
//
// Two schemes are provided, mirroring the two families the paper (§4.3)
// discusses:
//
//   - Tree is a data-structure-based scheme extending Minshall's tcpdpriv
//     "-a50" algorithm. Because the mapping is shaped as entries are added
//     to the structure, it can be made class-preserving and
//     subnet-address-preserving, and special addresses (netmasks, wildcard
//     masks, multicast, loopback, broadcast) can be passed through
//     unchanged, with recursive remapping of collisions. This is the
//     scheme the paper adopts for config anonymization.
//
//   - CryptoPAn is the cryptography-based scheme of Xu et al., which
//     requires only a key to be shared for consistent mapping (amenable to
//     parallelization) but cannot easily be shaped to satisfy the config
//     requirements. It is included as the comparison baseline.
//
// Both schemes are prefix-preserving in the sense of Xu et al.: for any
// two addresses a and b, the anonymized images share exactly as many
// leading bits as a and b do (Tree guarantees this for addresses whose
// image does not collide with a special address; collisions are chased as
// described below and in the paper).
package ipanon

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"confanon/internal/token"
)

// Scheme is a prefix-preserving IPv4 address mapping.
type Scheme interface {
	// MapV4 maps one 32-bit IPv4 address.
	MapV4(ip uint32) uint32
}

// IsSpecial reports whether an address has protocol-assigned meaning and
// must therefore pass through anonymization unchanged (§4.3: "all special
// IP addresses (e.g., netmasks, multicast) are passed through unchanged").
//
// The special set comprises contiguous netmasks (255.255.0.0, including
// 0.0.0.0 and 255.255.255.255), their complements as used in Cisco
// wildcard masks (0.0.0.255), the loopback block 127.0.0.0/8, and the
// class D and E spaces (multicast and reserved, 224.0.0.0 and above).
func IsSpecial(ip uint32) bool {
	if isMask(ip) || isMask(^ip) {
		return true
	}
	if ip>>24 == 127 { // loopback
		return true
	}
	if ip >= 0xE0000000 { // class D (multicast) and class E (reserved)
		return true
	}
	return false
}

// isMask reports whether ip is a contiguous netmask: some number of one
// bits followed by zero bits (including all-zeros and all-ones).
func isMask(ip uint32) bool {
	// A contiguous mask m satisfies: ^m+1 is a power of two (or m==0).
	inv := ^ip
	return inv&(inv+1) == 0
}

// Class returns the classful-addressing class letter of ip ('A'..'E').
func Class(ip uint32) byte {
	switch {
	case ip>>31 == 0:
		return 'A'
	case ip>>30 == 0b10:
		return 'B'
	case ip>>29 == 0b110:
		return 'C'
	case ip>>28 == 0b1110:
		return 'D'
	default:
		return 'E'
	}
}

// Options configures a Tree.
type Options struct {
	// Salt keys the pseudo-random bit choices. Two Trees with the same
	// salt fed addresses in the same order produce identical mappings.
	Salt []byte
	// ClassPreserving forces class A addresses to map to class A
	// addresses, class B to class B, and so on, as required by classful
	// commands such as those configuring RIP and EIGRP.
	ClassPreserving bool
	// SubnetPreserving biases the mapping so that subnet addresses
	// (host part all zeros) map to subnet addresses, improving human
	// readability of the anonymized configurations.
	SubnetPreserving bool
	// PassSpecial passes special addresses (IsSpecial) through unchanged
	// and recursively remaps non-special addresses whose image would
	// collide with the special range.
	PassSpecial bool
}

// DefaultOptions returns the configuration the paper uses: class
// preserving, subnet-address preserving, specials passed through.
func DefaultOptions(salt []byte) Options {
	return Options{Salt: salt, ClassPreserving: true, SubnetPreserving: true, PassSpecial: true}
}

// node is one internal node of the mapping tree. A node at depth d
// represents the input prefix of length d consumed so far; flip records
// whether the output bit at depth d is the input bit negated. Because the
// flip belongs to the prefix (the parent), both branches below it are
// transformed identically, which makes the raw tree mapping a
// prefix-preserving bijection of the 32-bit space: inputs diverging at
// bit d produce outputs diverging at bit d.
type node struct {
	children [2]*node
	flip     bool
	flipSet  bool
}

// Tree is the extended Minshall-style table-driven anonymizer. The zero
// value is not usable; construct with NewTree.
//
// Tree is safe for concurrent use, with a two-phase design: addresses
// whose mapping is already resolved are answered lock-free from the seen
// cache, while first-time resolutions take a short write lock around the
// node walk (including the recursive collision remap). The mapping an
// address resolves to still depends on insertion order — that is inherent
// to the shaped scheme — so callers that need a deterministic mapping
// across runs must feed first-time addresses in a deterministic order
// (see the corpus census/replay mode in the confanon package).
type Tree struct {
	opts Options
	// mu guards first-time resolution: the node walk (rawMap), the
	// insertion log, the prf buffer, and Save. Resolved addresses are
	// answered from seen without taking it.
	mu   sync.Mutex
	root *node
	// seen caches fully-resolved mappings (uint32 → uint32) and is the
	// lock-free read path; order records insertion order, which the
	// shaped mapping depends on and persistence must replay.
	seen  sync.Map
	count atomic.Int64
	order []Pair
	// prfBuf is the reusable salt||path||depth||"flip" buffer for node
	// resolution, avoiding an allocation per created node. Only touched
	// under mu.
	prfBuf []byte
	// outs records every output emitted so far. The collision chase
	// rejects candidates in this set (and a raw image that lands on a
	// previously chase-emitted output is itself chased), which makes the
	// resolved mapping injective by construction at every point in time.
	// Only touched under mu.
	outs map[uint32]struct{}
	// remaps counts collision-chase steps: how many candidates were
	// rejected because a raw image landed in the special range or on an
	// already-emitted output (§4.3).
	remaps atomic.Int64
}

// NewTree returns an empty mapping tree with the given options.
func NewTree(opts Options) *Tree {
	buf := make([]byte, len(opts.Salt)+9)
	copy(buf, opts.Salt)
	copy(buf[len(opts.Salt)+5:], "flip")
	return &Tree{opts: opts, root: &node{}, prfBuf: buf, outs: make(map[uint32]struct{})}
}

// prfBit derives a deterministic pseudo-random flip bit for the tree node
// identified by the input prefix (path, depth) under the tree salt.
func (t *Tree) prfBit(path uint32, depth int) bool {
	n := len(t.opts.Salt)
	binary.BigEndian.PutUint32(t.prfBuf[n:n+4], path)
	t.prfBuf[n+4] = byte(depth)
	h := sha1.Sum(t.prfBuf)
	return h[0]&1 == 1
}

// rawMap walks ip through the tree, creating and resolving nodes as
// needed, and returns the XOR-flip image. This is the pure
// prefix-preserving bijection before special-address chasing.
func (t *Tree) rawMap(ip uint32) uint32 {
	var out uint32
	n := t.root
	for depth := 0; depth < 32; depth++ {
		bit := ip >> (31 - uint(depth)) & 1
		if !n.flipSet {
			n.flipSet = true
			path := prefixBits(ip, depth)
			switch {
			case t.opts.ClassPreserving && depth < 4 && allOnes(path, depth):
				// The class of an address is determined by its
				// leading ones: "0"=A, "10"=B, "110"=C, "1110"=D,
				// "1111"=E. Holding the flip at zero on the
				// all-ones spine (and the root) maps every class
				// onto itself while freezing only the bits that
				// encode the class.
				n.flip = false
			case t.opts.PassSpecial && depth <= 7 &&
				path == prefixBits(0x7F000000, depth):
				// Doom pin: an image prefix of 127/8 (or, below,
				// the class D/E prefix 111) is a block whose every
				// completion is special, which would condemn the
				// whole input subtree that draws it to the
				// collision chase and destroy its structure. The
				// raw map is a prefix-preserving bijection, so the
				// only way to keep every *non-special* input out of
				// the block is to make the block map to itself:
				// identity-pin the flips along the 127/8 input path
				// (127.x inputs themselves are special and pass
				// through as fixed points, so nothing is lost).
				n.flip = false
			case t.opts.PassSpecial && depth < 3 && allOnes(path, depth):
				// Same doom pin for class D/E (224.0.0.0 and up —
				// all special): pin 111 → 111. Redundant under
				// ClassPreserving's spine pin above, load-bearing
				// without it.
				n.flip = false
			case t.opts.SubnetPreserving && trailingZeros(ip, depth):
				// Node first resolved while the remaining input
				// suffix is all zeros: keep the suffix zero so
				// subnet addresses map to subnet addresses
				// (best-effort: a node first resolved by a host
				// address keeps its random flip).
				n.flip = false
			default:
				n.flip = t.prfBit(path, depth)
			}
		}
		outBit := bit
		if n.flip {
			outBit ^= 1
		}
		out = out<<1 | outBit
		child := n.children[bit]
		if child == nil {
			child = &node{}
			n.children[bit] = child
		}
		n = child
	}
	return out
}

// prefixBits returns the first depth bits of ip, left-aligned, with the
// remaining bits zeroed.
func prefixBits(ip uint32, depth int) uint32 {
	if depth == 0 {
		return 0
	}
	return ip >> (32 - uint(depth)) << (32 - uint(depth))
}

// allOnes reports whether the left-aligned prefix of the given depth is
// all one bits (true for depth zero, the root).
func allOnes(path uint32, depth int) bool {
	if depth == 0 {
		return true
	}
	return path == ^uint32(0)<<(32-uint(depth))
}

// trailingZeros reports whether bits depth..31 of ip are all zero.
func trailingZeros(ip uint32, depth int) bool {
	if depth == 0 {
		return ip == 0
	}
	return ip<<uint(depth) == 0
}

// MapV4 maps ip under the configured scheme. Special addresses are fixed
// points when PassSpecial is set. When the raw tree image of a non-special
// address lands in the special range — or on an output an earlier chase
// already emitted — the image is remapped ("we recursively map s until
// there is no collision") by chase: a nearest-free scan upward from the
// raw image. Scanning (rather than re-walking the raw bijection, which
// can leave the image's prefix entirely) keeps a chased subnet address
// inside its already-fixed parent prefix: `network 10.0.0.0` whose raw
// image is 0.0.0.0 resolves to the nearest free non-special address in
// the image /8, so classful coverage survives. Injectivity holds by
// construction: every emitted output is recorded in t.outs and no
// candidate colliding with that set is ever accepted (raw images of
// distinct inputs are distinct, so only chase-emitted outputs can
// collide, and those are in the set).
func (t *Tree) MapV4(ip uint32) uint32 {
	if out, ok := t.seen.Load(ip); ok {
		return out.(uint32)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Double-check under the lock: another goroutine may have resolved
	// the address between the fast-path miss and lock acquisition.
	if out, ok := t.seen.Load(ip); ok {
		return out.(uint32)
	}
	var out uint32
	if t.opts.PassSpecial && IsSpecial(ip) {
		out = ip
	} else {
		out = t.rawMap(ip)
		if t.opts.PassSpecial {
			out = t.chase(ip, out)
		}
	}
	t.seen.Store(ip, out)
	t.count.Add(1)
	t.outs[out] = struct{}{}
	t.order = append(t.order, Pair{In: ip, Out: out})
	return out
}

// chase resolves a collision of the raw image with the special range or
// a previously emitted output: scan upward from the raw image, skipping
// specials (jumping the contiguous loopback and class-D/E blocks in one
// step) and taken outputs, wrapping within the input's class when class
// preservation is on. The scan stride preserves the raw image's trailing
// zeros (up to /24 granularity), so a chased subnet address resolves to
// the nearest free *subnet* address — inside the already-fixed parent
// prefix when one exists, which is what keeps classful coverage intact.
// Called under t.mu.
func (t *Tree) chase(ip, raw uint32) uint32 {
	_, taken := t.outs[raw]
	if !IsSpecial(raw) && !taken {
		return raw
	}
	// Wrap bounds: the whole space, or the input's class when the
	// mapping is class-preserving (class D/E inputs are special and
	// never reach the chase, so lo is always below the class-D base).
	lo, hi := uint32(0), ^uint32(0)
	if t.opts.ClassPreserving {
		switch Class(ip) {
		case 'A':
			lo, hi = 0, 0x7FFFFFFF
		case 'B':
			lo, hi = 0x80000000, 0xBFFFFFFF
		default: // 'C'
			lo, hi = 0xC0000000, 0xDFFFFFFF
		}
	}
	// Stride: keep up to 8 trailing zero bits of the raw image, so a
	// subnet-shaped image stays subnet-shaped. All block boundaries
	// below (class bases, 127/8, 128/8, class D base) are multiples of
	// every possible stride, so alignment survives jumps and wraps.
	stride := uint32(1)
	if t.opts.SubnetPreserving {
		tz := bits.TrailingZeros32(raw) // 32 for raw == 0
		if tz > 8 {
			tz = 8
		}
		stride = 1 << uint(tz)
	}
	step := func(c uint32) uint32 {
		switch {
		case c>>24 == 127: // jump the loopback /8
			c = 128 << 24
		case c >= 0xE0000000: // class D/E: nothing above is usable
			c = lo
		default:
			c += stride
		}
		if c < lo || c > hi {
			c = lo
		}
		return c
	}
	c := raw
	for {
		t.remaps.Add(1)
		c = step(c)
		if c == raw {
			// Scanned the whole range without a free slot; cannot
			// happen before 2^31-ish resolutions exhaust a class.
			panic("ipanon: address space exhausted during collision chase")
		}
		if IsSpecial(c) {
			continue
		}
		if _, ok := t.outs[c]; ok {
			continue
		}
		return c
	}
}

// MapPrefix maps the network address of a prefix: the address is masked to
// its first length bits and mapped, so the host part walks the all-zeros
// path (which the subnet-preserving policy pins to zero on first use). The
// result therefore agrees with MapV4 on the network address itself.
func (t *Tree) MapPrefix(addr uint32, length int) uint32 {
	masked := addr
	if length <= 0 {
		masked = 0
	} else if length < 32 {
		masked &= ^uint32(0) << (32 - uint(length))
	}
	return t.MapV4(masked)
}

// Mapping returns a copy of every (input, output) pair resolved so far,
// sorted by input, for reporting and for the validation suites.
func (t *Tree) Mapping() []Pair {
	t.mu.Lock()
	pairs := append([]Pair(nil), t.order...)
	t.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].In < pairs[j].In })
	return pairs
}

// Since returns the pairs resolved at insertion index n and later, in
// insertion order — the delta a persistence layer appends after having
// already recorded the first n pairs. Since(0) is the full insertion-
// order log (unlike Mapping, which sorts by input).
func (t *Tree) Since(n int) []Pair {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n >= len(t.order) {
		return nil
	}
	return append([]Pair(nil), t.order[n:]...)
}

// Len reports how many distinct addresses have been resolved.
func (t *Tree) Len() int { return int(t.count.Load()) }

// Remaps reports how many collision-chase steps the tree has taken:
// raw images that landed in the special range and were recursively
// remapped. Zero means every address resolved on the first try, i.e.
// the shaping guarantees (exact LCP preservation) held everywhere.
func (t *Tree) Remaps() int64 { return t.remaps.Load() }

// Pair is one resolved address mapping.
type Pair struct{ In, Out uint32 }

// String renders the pair in dotted-quad form.
func (p Pair) String() string {
	return fmt.Sprintf("%s -> %s", token.FormatIPv4(p.In), token.FormatIPv4(p.Out))
}

// Save serializes the tree's options and resolved mapping, in insertion
// order, so a later run can anonymize additional configs consistently.
func (t *Tree) Save() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := make([]byte, 0, 16+8*len(t.order))
	buf = append(buf, 'i', 'p', 'a', '1')
	var flags byte
	if t.opts.ClassPreserving {
		flags |= 1
	}
	if t.opts.SubnetPreserving {
		flags |= 2
	}
	if t.opts.PassSpecial {
		flags |= 4
	}
	buf = append(buf, flags, byte(len(t.opts.Salt)))
	buf = append(buf, t.opts.Salt...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(t.order)))
	buf = append(buf, n[:]...)
	for _, p := range t.order {
		var rec [8]byte
		binary.BigEndian.PutUint32(rec[:4], p.In)
		binary.BigEndian.PutUint32(rec[4:], p.Out)
		buf = append(buf, rec[:]...)
	}
	return buf
}

// ErrBadSnapshot is returned by Load for malformed snapshots.
var ErrBadSnapshot = errors.New("ipanon: malformed snapshot")

// Load reconstructs a tree from a Save snapshot. The resolved pairs are
// replayed through a fresh tree in their original insertion order; because
// the tree's random bits are a deterministic function of the salt and the
// shaping rules of insertion order, the replayed tree reproduces the saved
// mapping exactly (each replayed pair is verified) and new addresses
// continue to map consistently with the old ones.
func Load(snapshot []byte) (*Tree, error) {
	if len(snapshot) < 10 || string(snapshot[:4]) != "ipa1" {
		return nil, ErrBadSnapshot
	}
	flags := snapshot[4]
	saltLen := int(snapshot[5])
	if len(snapshot) < 10+saltLen {
		return nil, ErrBadSnapshot
	}
	salt := append([]byte(nil), snapshot[6:6+saltLen]...)
	rest := snapshot[6+saltLen:]
	count := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != 8*count {
		return nil, ErrBadSnapshot
	}
	t := NewTree(Options{
		Salt:             salt,
		ClassPreserving:  flags&1 != 0,
		SubnetPreserving: flags&2 != 0,
		PassSpecial:      flags&4 != 0,
	})
	for i := 0; i < count; i++ {
		in := binary.BigEndian.Uint32(rest[8*i:])
		out := binary.BigEndian.Uint32(rest[8*i+4:])
		if got := t.MapV4(in); got != out {
			return nil, fmt.Errorf("ipanon: snapshot replay mismatch for %s: got %s want %s",
				token.FormatIPv4(in), token.FormatIPv4(got), token.FormatIPv4(out))
		}
	}
	return t, nil
}

// CryptoPAn is the cryptography-based prefix-preserving scheme of Xu et
// al., implemented with AES-128 as the underlying pseudo-random function.
// It is stateless apart from the key: any party holding the key computes
// the same mapping, which is what makes it amenable to parallelization.
type CryptoPAn struct {
	block cipher.Block
	pad   [16]byte
}

// NewCryptoPAn creates a CryptoPAn mapper. The 32-byte key is split into
// an AES-128 key (first 16 bytes) and a secret padding block (last 16,
// encrypted once to derive the pad).
func NewCryptoPAn(key [32]byte) (*CryptoPAn, error) {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	c := &CryptoPAn{block: block}
	block.Encrypt(c.pad[:], key[16:])
	return c, nil
}

// MapV4 maps ip prefix-preservingly: output bit i is input bit i XOR the
// most significant bit of AES(pad with the first i input bits substituted).
func (c *CryptoPAn) MapV4(ip uint32) uint32 {
	var out uint32
	var in [16]byte
	for i := 0; i < 32; i++ {
		copy(in[:], c.pad[:])
		if i > 0 {
			prefix := ip >> (32 - uint(i)) << (32 - uint(i))
			padWord := binary.BigEndian.Uint32(c.pad[:4])
			var mask uint32 = ^uint32(0) << (32 - uint(i))
			binary.BigEndian.PutUint32(in[:4], prefix|padWord&^mask)
		}
		var enc [16]byte
		c.block.Encrypt(enc[:], in[:])
		flip := uint32(enc[0] >> 7)
		bit := ip >> (31 - uint(i)) & 1
		out = out<<1 | (bit ^ flip)
	}
	return out
}

// LCP returns the length of the longest common prefix of two 32-bit
// addresses, the quantity prefix-preserving schemes must conserve.
func LCP(a, b uint32) int {
	x := a ^ b
	if x == 0 {
		return 32
	}
	n := 0
	for x>>31 == 0 {
		x <<= 1
		n++
	}
	return n
}

// Mapper is the address-mapping interface the anonymizer consumes: Tree
// satisfies it, and CryptoMapper adapts CryptoPAn to it. The two
// implementations embody the §4.3 trade-off — the tree can be shaped
// (class/subnet/special preservation) but is stateful and order-dependent;
// the cryptographic mapper needs only the key, so independent workers map
// consistently without sharing state.
type Mapper interface {
	MapV4(ip uint32) uint32
	MapPrefix(addr uint32, length int) uint32
	Mapping() []Pair
	Len() int
	// Remaps counts collision-chase steps taken so far (images that
	// landed in the special range and were recursively remapped).
	Remaps() int64
	// Since returns the pairs resolved at insertion index n and later,
	// in insertion order — the incremental delta the durable mapping
	// ledger appends at commit points.
	Since(n int) []Pair
}

// CryptoMapper adapts CryptoPAn to the Mapper interface, recording
// resolved pairs (under a mutex, so it is safe for concurrent use) for
// the leak report. Special addresses pass through unchanged, as in the
// tree scheme; class and subnet-address preservation are NOT provided —
// that is the documented cost of the stateless scheme.
type CryptoMapper struct {
	c  *CryptoPAn
	mu sync.Mutex
	// seen records resolved pairs in first-seen order.
	seen  map[uint32]uint32
	order []Pair
	// remaps counts collision-chase steps; atomic because the chase
	// runs outside the mutex.
	remaps atomic.Int64
}

// NewCryptoMapper derives a CryptoMapper from an owner salt.
func NewCryptoMapper(salt []byte) *CryptoMapper {
	var key [32]byte
	h1 := sha1.Sum(append([]byte("cryptopan-key-1/"), salt...))
	h2 := sha1.Sum(append([]byte("cryptopan-key-2/"), salt...))
	copy(key[:16], h1[:16])
	copy(key[16:], h2[:16])
	c, err := NewCryptoPAn(key)
	if err != nil {
		// aes.NewCipher only fails on bad key sizes, which cannot
		// happen with the fixed 16-byte slice above.
		panic("ipanon: " + err.Error())
	}
	return &CryptoMapper{c: c, seen: make(map[uint32]uint32)}
}

// MapV4 maps one address; specials are fixed points.
func (m *CryptoMapper) MapV4(ip uint32) uint32 {
	m.mu.Lock()
	if out, ok := m.seen[ip]; ok {
		m.mu.Unlock()
		return out
	}
	m.mu.Unlock()
	out := ip
	if !IsSpecial(ip) {
		out = m.c.MapV4(ip)
		// The raw crypto mapping may land in the special range; chase
		// like the tree does (the permutation argument is identical).
		for IsSpecial(out) {
			out = m.c.MapV4(out)
			m.remaps.Add(1)
		}
	}
	m.mu.Lock()
	if _, ok := m.seen[ip]; !ok {
		m.seen[ip] = out
		m.order = append(m.order, Pair{In: ip, Out: out})
	}
	m.mu.Unlock()
	return out
}

// MapPrefix maps the masked network address. No zero-host guarantee: the
// stateless scheme cannot be shaped.
func (m *CryptoMapper) MapPrefix(addr uint32, length int) uint32 {
	masked := addr
	if length <= 0 {
		masked = 0
	} else if length < 32 {
		masked &= ^uint32(0) << (32 - uint(length))
	}
	return m.MapV4(masked)
}

// Mapping returns resolved pairs sorted by input.
func (m *CryptoMapper) Mapping() []Pair {
	m.mu.Lock()
	pairs := append([]Pair(nil), m.order...)
	m.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].In < pairs[j].In })
	return pairs
}

// Len reports how many distinct addresses have been resolved.
func (m *CryptoMapper) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seen)
}

// Since returns the pairs resolved at insertion index n and later, in
// first-seen order (see Tree.Since).
func (m *CryptoMapper) Since(n int) []Pair {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n >= len(m.order) {
		return nil
	}
	return append([]Pair(nil), m.order[n:]...)
}

// Remaps reports how many collision-chase steps have been taken.
func (m *CryptoMapper) Remaps() int64 { return m.remaps.Load() }
