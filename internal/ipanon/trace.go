package ipanon

// Trace is a recording Mapper used by the deterministic parallel corpus
// mode. It maps nothing: MapV4 and MapPrefix return the (masked) input
// unchanged and append the call to an ordered log. Replaying the log into
// a real Mapper reproduces exactly the insertion sequence the traced run
// would have performed, which is what the shaped Tree's order-dependent
// mapping requires for byte-identical parallel output.
//
// A Trace is intended for single-goroutine use by one census worker;
// each worker records its own Trace and the traces are replayed serially
// in a deterministic order.
type Trace struct {
	ops []traceOp
}

type traceOp struct {
	addr   uint32
	length int
	prefix bool
}

// MapV4 records the call and returns ip unchanged.
func (tr *Trace) MapV4(ip uint32) uint32 {
	tr.ops = append(tr.ops, traceOp{addr: ip})
	return ip
}

// MapPrefix records the call and returns the masked network address
// unchanged, mirroring the masking every real Mapper performs.
func (tr *Trace) MapPrefix(addr uint32, length int) uint32 {
	tr.ops = append(tr.ops, traceOp{addr: addr, length: length, prefix: true})
	masked := addr
	if length <= 0 {
		masked = 0
	} else if length < 32 {
		masked &= ^uint32(0) << (32 - uint(length))
	}
	return masked
}

// Mapping returns nil: a Trace resolves nothing.
func (tr *Trace) Mapping() []Pair { return nil }

// Len reports how many calls have been recorded.
func (tr *Trace) Len() int { return len(tr.ops) }

// Remaps returns zero: a Trace never chases collisions.
func (tr *Trace) Remaps() int64 { return 0 }

// Since returns nil: a Trace resolves nothing, so there is never a
// delta to persist.
func (tr *Trace) Since(n int) []Pair { return nil }

// Replay feeds every recorded call into m in recorded order. Repeated
// addresses are harmless — they resolve from m's cache — so replaying a
// trace that contains both a prescan pass and a rewrite pass reproduces
// the serial engine's call sequence exactly.
func (tr *Trace) Replay(m Mapper) {
	for _, op := range tr.ops {
		if op.prefix {
			m.MapPrefix(op.addr, op.length)
		} else {
			m.MapV4(op.addr)
		}
	}
}
