package token

import (
	"strings"
	"testing"
)

func scanAll(t *testing.T, input string) []string {
	t.Helper()
	s := NewLineScanner(strings.NewReader(input))
	var lines []string
	for s.Scan() {
		lines = append(lines, s.Text())
	}
	if s.Err() != nil {
		t.Fatalf("scan error: %v", s.Err())
	}
	return lines
}

func TestLineScannerMatchesSplit(t *testing.T) {
	for _, input := range []string{
		"", "\n", "a", "a\n", "a\nb", "a\nb\n", "a\n\nb\n", "\n\n",
		"no newline at all", strings.Repeat("x", 1<<16) + "\ny\n",
	} {
		want := strings.Split(input, "\n")
		if n := len(want); n > 0 && want[n-1] == "" {
			want = want[:n-1]
		}
		got := scanAll(t, input)
		if len(got) != len(want) {
			t.Errorf("input %.20q: got %d lines, want %d", input, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("input %.20q line %d: got %.20q want %.20q", input, i, got[i], want[i])
			}
		}
	}
}
