// Package token implements the word-segmentation and token-classification
// layer of the anonymizer.
//
// The paper (§4.2) uses two rules to segment all words in a configuration
// into tokens before consulting the pass-list, so that an identifier like
// "Ethernet0/0" becomes the alphabetic string "ethernet" (which matches the
// pass-list) and a non-alphabetic remainder "0/0" (which needs no
// anonymization). Without this step the whole word would fail the pass-list
// and be hashed, destroying valuable information about the interface type.
//
// This package also classifies tokens (integers, IPv4 addresses, prefixes,
// netmasks, BGP community attributes, email addresses, phone numbers) so
// that the rule engine in internal/anonymizer can route each token to the
// appropriate anonymization mechanism.
package token

import (
	"strings"
)

// Kind identifies the syntactic class of a token.
type Kind int

// Token kinds, ordered roughly by specificity: classification tries the
// most specific kinds first.
const (
	// Word is a run of alphabetic characters (candidate for the pass-list).
	Word Kind = iota
	// Integer is a run of decimal digits with no other structure.
	Integer
	// IPv4 is a dotted-quad IPv4 address.
	IPv4
	// IPv4Prefix is an address with a slash length, e.g. 10.1.2.0/24.
	IPv4Prefix
	// Community is a BGP community attribute written asn:value.
	Community
	// Email is an RFC-822ish mailbox, e.g. noc@example.net.
	Email
	// Phone is a phone-number-shaped string (digits with separators),
	// as found in dialer strings.
	Phone
	// HexString is a run of hexadecimal digits at least 8 long, as found
	// in encrypted password fields.
	HexString
	// Punct is a run of non-alphanumeric characters.
	Punct
	// Other is anything that fits no other class.
	Other
)

// String returns the name of the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Word:
		return "word"
	case Integer:
		return "integer"
	case IPv4:
		return "ipv4"
	case IPv4Prefix:
		return "ipv4prefix"
	case Community:
		return "community"
	case Email:
		return "email"
	case Phone:
		return "phone"
	case HexString:
		return "hexstring"
	case Punct:
		return "punct"
	default:
		return "other"
	}
}

// Segment is one piece of a split word.
type Segment struct {
	Text string
	Kind Kind
}

// SplitWord implements the paper's two segmentation rules.
//
// Rule S1 splits a word into maximal runs of alphabetic and non-alphabetic
// characters ("Ethernet0/0" -> "Ethernet", "0/0"). Rule S2 further splits
// alphabetic runs joined by single separators (dots and dashes) so that
// compound identifiers such as "cr1.sfo-serial3/0.8" yield each embedded
// word ("cr", "sfo", "serial") for individual pass-list consultation.
func SplitWord(w string) []Segment {
	if w == "" {
		return nil
	}
	var segs []Segment
	i := 0
	for i < len(w) {
		j := i
		if isAlpha(w[i]) {
			for j < len(w) && isAlpha(w[j]) {
				j++
			}
			segs = append(segs, Segment{Text: w[i:j], Kind: Word})
		} else if isDigit(w[i]) {
			for j < len(w) && isDigit(w[j]) {
				j++
			}
			segs = append(segs, Segment{Text: w[i:j], Kind: Integer})
		} else {
			for j < len(w) && !isAlpha(w[j]) && !isDigit(w[j]) {
				j++
			}
			segs = append(segs, Segment{Text: w[i:j], Kind: Punct})
		}
		i = j
	}
	return segs
}

// Fields splits a configuration line into whitespace-separated words,
// preserving the exact byte ranges so the caller can reassemble the line.
// Leading and trailing whitespace and the separators themselves are kept in
// the Gaps slice: line == Gaps[0] + Words[0] + Gaps[1] + Words[1] + ... +
// Gaps[n].
func Fields(line string) (words []string, gaps []string) {
	i := 0
	for {
		j := i
		for j < len(line) && isSpace(line[j]) {
			j++
		}
		gaps = append(gaps, line[i:j])
		if j == len(line) {
			return words, gaps
		}
		k := j
		for k < len(line) && !isSpace(line[k]) {
			k++
		}
		words = append(words, line[j:k])
		i = k
	}
}

// Join reassembles a line previously split by Fields, with possibly
// modified words. len(gaps) must be len(words)+1. Words replaced by the
// empty string are dropped together with the gap that preceded them.
func Join(words, gaps []string) string {
	var b strings.Builder
	for i, w := range words {
		if w == "" {
			continue
		}
		b.WriteString(gaps[i])
		b.WriteString(w)
	}
	b.WriteString(gaps[len(gaps)-1])
	return b.String()
}

// Classify determines the syntactic class of a whole (unsegmented) word.
func Classify(w string) Kind {
	switch {
	case w == "":
		return Other
	case IsIPv4(w):
		return IPv4
	case IsIPv4Prefix(w):
		return IPv4Prefix
	case IsCommunity(w):
		return Community
	case IsInteger(w):
		return Integer
	case IsEmail(w):
		return Email
	case IsPhone(w):
		return Phone
	case IsHexString(w):
		return HexString
	case isAllAlpha(w):
		return Word
	case isAllPunct(w):
		return Punct
	default:
		return Other
	}
}

// IsInteger reports whether w is a non-empty run of decimal digits.
func IsInteger(w string) bool {
	if w == "" {
		return false
	}
	for i := 0; i < len(w); i++ {
		if !isDigit(w[i]) {
			return false
		}
	}
	return true
}

// ParseIPv4 parses a dotted-quad IPv4 address into its 32-bit value.
func ParseIPv4(w string) (uint32, bool) {
	var v uint32
	part := 0
	val := 0
	digits := 0
	for i := 0; i <= len(w); i++ {
		if i == len(w) || w[i] == '.' {
			if digits == 0 || digits > 3 || val > 255 {
				return 0, false
			}
			v = v<<8 | uint32(val)
			part++
			val, digits = 0, 0
			continue
		}
		if !isDigit(w[i]) {
			return 0, false
		}
		// Reject leading zeros such as "010" which some tools treat
		// as octal; configs write addresses in plain decimal.
		if digits > 0 && val == 0 {
			return 0, false
		}
		val = val*10 + int(w[i]-'0')
		digits++
	}
	if part != 4 {
		return 0, false
	}
	return v, true
}

// IsIPv4 reports whether w is a dotted-quad IPv4 address.
func IsIPv4(w string) bool {
	_, ok := ParseIPv4(w)
	return ok
}

// ParseIPv4Prefix parses "a.b.c.d/len" into address and prefix length.
func ParseIPv4Prefix(w string) (addr uint32, length int, ok bool) {
	slash := strings.IndexByte(w, '/')
	if slash < 0 {
		return 0, 0, false
	}
	addr, ok = ParseIPv4(w[:slash])
	if !ok {
		return 0, 0, false
	}
	rest := w[slash+1:]
	if !IsInteger(rest) || len(rest) > 2 {
		return 0, 0, false
	}
	length = int(rest[0] - '0')
	if len(rest) == 2 {
		length = length*10 + int(rest[1]-'0')
	}
	if length > 32 {
		return 0, 0, false
	}
	return addr, length, true
}

// IsIPv4Prefix reports whether w has the form a.b.c.d/len.
func IsIPv4Prefix(w string) bool {
	_, _, ok := ParseIPv4Prefix(w)
	return ok
}

// ParseCommunity parses a BGP community attribute "asn:value" where both
// halves are 16-bit decimal integers.
func ParseCommunity(w string) (asn, value uint32, ok bool) {
	colon := strings.IndexByte(w, ':')
	if colon <= 0 || colon == len(w)-1 {
		return 0, 0, false
	}
	a, b := w[:colon], w[colon+1:]
	if !IsInteger(a) || !IsInteger(b) {
		return 0, 0, false
	}
	asn = parseUint(a)
	value = parseUint(b)
	if asn > 0xFFFF || value > 0xFFFF {
		return 0, 0, false
	}
	return asn, value, true
}

// IsCommunity reports whether w is a BGP community attribute asn:value.
func IsCommunity(w string) bool {
	_, _, ok := ParseCommunity(w)
	return ok
}

// IsEmail reports whether w looks like an email address: non-empty local
// part, one '@', and a dotted domain.
func IsEmail(w string) bool {
	at := strings.IndexByte(w, '@')
	if at <= 0 || at == len(w)-1 {
		return false
	}
	if strings.IndexByte(w[at+1:], '@') >= 0 {
		return false
	}
	dom := w[at+1:]
	dot := strings.IndexByte(dom, '.')
	return dot > 0 && dot < len(dom)-1
}

// IsPhone reports whether w is phone-number shaped: at least seven digits
// among only digits, '-', '.', '(', ')', and '+', with at least one
// separator or a leading '+'. Plain digit runs are classified as Integer,
// not Phone; dialer strings are recognized by the rule engine from context.
func IsPhone(w string) bool {
	if w == "" {
		return false
	}
	digits, seps := 0, 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case isDigit(c):
			digits++
		case c == '-' || c == '.' || c == '(' || c == ')':
			seps++
		case c == '+' && i == 0:
			seps++
		default:
			return false
		}
	}
	return digits >= 7 && seps >= 1
}

// IsPhoneDigits reports whether w is a bare digit string long enough to be
// a phone number (used inside dialer-string context, where even bare digit
// runs are phone numbers).
func IsPhoneDigits(w string) bool {
	return IsInteger(w) && len(w) >= 7
}

// IsHexString reports whether w is a run of at least eight hex digits that
// contains at least one letter (so plain integers are not captured).
func IsHexString(w string) bool {
	if len(w) < 8 {
		return false
	}
	letters := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case isDigit(c):
		case c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
			letters++
		default:
			return false
		}
	}
	return letters > 0
}

func parseUint(s string) uint32 {
	var v uint32
	for i := 0; i < len(s); i++ {
		v = v*10 + uint32(s[i]-'0')
		if v > 0xFFFFFF {
			return v // avoid overflow; caller range-checks
		}
	}
	return v
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isSpace(c byte) bool { return c == ' ' || c == '\t' }

func isAllAlpha(w string) bool {
	for i := 0; i < len(w); i++ {
		if !isAlpha(w[i]) {
			return false
		}
	}
	return w != ""
}

func isAllPunct(w string) bool {
	for i := 0; i < len(w); i++ {
		if isAlpha(w[i]) || isDigit(w[i]) {
			return false
		}
	}
	return w != ""
}

// FormatIPv4 renders a 32-bit value as a dotted quad.
func FormatIPv4(v uint32) string {
	var b [15]byte
	n := 0
	for i := 3; i >= 0; i-- {
		oct := int(v >> (8 * uint(i)) & 0xFF)
		if oct >= 100 {
			b[n] = byte('0' + oct/100)
			n++
		}
		if oct >= 10 {
			b[n] = byte('0' + oct/10%10)
			n++
		}
		b[n] = byte('0' + oct%10)
		n++
		if i > 0 {
			b[n] = '.'
			n++
		}
	}
	return string(b[:n])
}

// TrimPunct splits a word into leading punctuation, a core token, and
// trailing punctuation. Configuration dialects attach separators to
// values — JunOS writes "address 12.0.0.1/30;" and "members [ 701:100
// 701:200 ];" — and the core must be classified and anonymized with the
// punctuation reattached afterwards. Characters considered wrapping are
// the structural ones: ; , { } [ ] " ' ( ) — but a core that is itself
// punctuation-only is returned unchanged, and parentheses are kept with
// the core when it contains regexp metacharacters (so policy regexps are
// not torn apart).
func TrimPunct(w string) (lead, core, trail string) {
	isWrap := func(c byte) bool {
		switch c {
		case ';', ',', '{', '}', '[', ']', '"', '\'':
			return true
		}
		return false
	}
	i, j := 0, len(w)
	for i < j && isWrap(w[i]) {
		i++
	}
	for j > i && isWrap(w[j-1]) {
		j--
	}
	return w[:i], w[i:j], w[j:]
}
