package token

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitWord(t *testing.T) {
	cases := []struct {
		in   string
		want []Segment
	}{
		{"Ethernet0/0", []Segment{{"Ethernet", Word}, {"0", Integer}, {"/", Punct}, {"0", Integer}}},
		{"Serial1/0.5", []Segment{{"Serial", Word}, {"1", Integer}, {"/", Punct}, {"0", Integer}, {".", Punct}, {"5", Integer}}},
		{"UUNET-import", []Segment{{"UUNET", Word}, {"-", Punct}, {"import", Word}}},
		{"cr1.sfo-serial3/0.8", []Segment{
			{"cr", Word}, {"1", Integer}, {".", Punct}, {"sfo", Word}, {"-", Punct},
			{"serial", Word}, {"3", Integer}, {"/", Punct}, {"0", Integer}, {".", Punct}, {"8", Integer}}},
		{"701", []Segment{{"701", Integer}}},
		{"", nil},
		{"!!", []Segment{{"!!", Punct}}},
	}
	for _, c := range cases {
		got := SplitWord(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("SplitWord(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitWord(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestSplitWordReassembles(t *testing.T) {
	// Property: concatenating the segments always reproduces the word.
	f := func(w string) bool {
		var b strings.Builder
		for _, s := range SplitWord(w) {
			b.WriteString(s.Text)
		}
		return b.String() == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldsJoinRoundTrip(t *testing.T) {
	lines := []string{
		" ip address 1.1.1.1 255.255.255.0",
		"router bgp 1111",
		"",
		"   ",
		"\tneighbor 2.2.2.2 remote-as 701 ",
		"a  b\t\tc",
	}
	for _, line := range lines {
		words, gaps := Fields(line)
		if got := Join(words, gaps); got != line {
			t.Errorf("Join(Fields(%q)) = %q", line, got)
		}
	}
}

func TestFieldsJoinProperty(t *testing.T) {
	f := func(parts []string) bool {
		line := strings.Join(parts, " ")
		line = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, line)
		words, gaps := Fields(line)
		return Join(words, gaps) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"1.1.1.1", 0x01010101, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"0.0.0.0", 0, true},
		{"10.1.2.0", 0x0A010200, true},
		{"192.168.1.254", 0xC0A801FE, true},
		{"256.1.1.1", 0, false},
		{"1.1.1", 0, false},
		{"1.1.1.1.1", 0, false},
		{"1..1.1", 0, false},
		{"01.1.1.1", 0, false},
		{"1.1.1.1a", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseIPv4(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseIPv4(%q) = %#x,%v want %#x,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		got, ok := ParseIPv4(FormatIPv4(v))
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPv4Prefix(t *testing.T) {
	addr, length, ok := ParseIPv4Prefix("10.0.0.0/8")
	if !ok || addr != 0x0A000000 || length != 8 {
		t.Errorf("ParseIPv4Prefix(10.0.0.0/8) = %#x,%d,%v", addr, length, ok)
	}
	if _, _, ok := ParseIPv4Prefix("10.0.0.0/33"); ok {
		t.Error("accepted /33")
	}
	if _, _, ok := ParseIPv4Prefix("10.0.0.0"); ok {
		t.Error("accepted missing slash")
	}
	if _, _, ok := ParseIPv4Prefix("10.0.0.0/"); ok {
		t.Error("accepted empty length")
	}
	if _, _, ok := ParseIPv4Prefix("10.0.0.0/ab"); ok {
		t.Error("accepted non-numeric length")
	}
	if _, length, ok := ParseIPv4Prefix("1.2.3.4/0"); !ok || length != 0 {
		t.Error("rejected /0")
	}
	if _, length, ok := ParseIPv4Prefix("1.2.3.4/32"); !ok || length != 32 {
		t.Error("rejected /32")
	}
}

func TestParseCommunity(t *testing.T) {
	asn, val, ok := ParseCommunity("701:1234")
	if !ok || asn != 701 || val != 1234 {
		t.Errorf("ParseCommunity(701:1234) = %d,%d,%v", asn, val, ok)
	}
	bad := []string{"701", ":1234", "701:", "70000:1", "1:70000", "701:12:34", "a:1", "1:a", ""}
	for _, w := range bad {
		if _, _, ok := ParseCommunity(w); ok {
			t.Errorf("ParseCommunity(%q) accepted", w)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"hostname", Word},
		{"701", Integer},
		{"1.1.1.1", IPv4},
		{"10.0.0.0/8", IPv4Prefix},
		{"701:7100", Community},
		{"xxx@foo.com", Email},
		{"555-867-5309", Phone},
		{"05080F1C2243", HexString},
		{"!", Punct},
		{"Ethernet0", Other},
		{"", Other},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsPhone(t *testing.T) {
	yes := []string{"555-867-5309", "+15558675309", "(555)867-5309", "1-800-555-0100"}
	no := []string{"5558675309", "555-86", "abc-def-ghij", "", "1.1.1.1"}
	for _, w := range yes {
		if !IsPhone(w) {
			t.Errorf("IsPhone(%q) = false", w)
		}
	}
	for _, w := range no {
		if IsPhone(w) {
			t.Errorf("IsPhone(%q) = true", w)
		}
	}
}

func TestIsHexString(t *testing.T) {
	if !IsHexString("05080F1C2243") {
		t.Error("rejected IOS type-7 style hex")
	}
	if IsHexString("12345678") {
		t.Error("accepted all-digit string (should classify Integer)")
	}
	if IsHexString("abcdefg1") {
		t.Error("accepted non-hex letter")
	}
	if IsHexString("ab12") {
		t.Error("accepted short string")
	}
}

func TestIsEmail(t *testing.T) {
	if !IsEmail("noc@example.net") {
		t.Error("rejected plain email")
	}
	for _, w := range []string{"@x.com", "a@", "a@b", "a@@b.c", "plain"} {
		if IsEmail(w) {
			t.Errorf("IsEmail(%q) = true", w)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := Word; k <= Other; k++ {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
}

func TestFormatIPv4Random(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := rng.Uint32()
		want := fmt.Sprintf("%d.%d.%d.%d", v>>24, v>>16&0xFF, v>>8&0xFF, v&0xFF)
		if got := FormatIPv4(v); got != want {
			t.Fatalf("FormatIPv4(%#x) = %q, want %q", v, got, want)
		}
	}
}

func TestTrimPunct(t *testing.T) {
	cases := []struct{ in, lead, core, trail string }{
		{"12.0.0.1/30;", "", "12.0.0.1/30", ";"},
		{"701:100;", "", "701:100", ";"},
		{"[", "[", "", ""},
		{"{", "{", "", ""},
		{"\"_1239_\"", "\"", "_1239_", "\""},
		{"word", "", "word", ""},
		{"};", "};", "", ""},
		{"[701", "[", "701", ""},
		{"", "", "", ""},
	}
	for _, c := range cases {
		lead, core, trail := TrimPunct(c.in)
		if lead != c.lead || core != c.core || trail != c.trail {
			t.Errorf("TrimPunct(%q) = %q,%q,%q want %q,%q,%q",
				c.in, lead, core, trail, c.lead, c.core, c.trail)
		}
	}
}

func TestTrimPunctReassembles(t *testing.T) {
	f := func(w string) bool {
		lead, core, trail := TrimPunct(w)
		return lead+core+trail == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
