package token

import (
	"bufio"
	"io"
)

// LineScanner iterates over the lines of a reader with exactly the
// semantics the anonymizer engine pins with its golden corpus: each line
// is yielded without its trailing "\n", and a final chunk after the last
// newline is yielded only when non-empty — so scanning "a\nb\n" and
// "a\nb" both yield ["a", "b"], matching strings.Split minus the
// trailing-newline artifact. Unlike bufio.Scanner there is no line-length
// cap; configuration generators emit arbitrarily long lines.
type LineScanner struct {
	r    *bufio.Reader
	line string
	err  error
	done bool
}

// NewLineScanner wraps r for line iteration.
func NewLineScanner(r io.Reader) *LineScanner {
	return &LineScanner{r: bufio.NewReader(r)}
}

// Scan advances to the next line, returning false at end of input or on
// error (distinguish with Err).
func (s *LineScanner) Scan() bool {
	if s.done {
		return false
	}
	line, err := s.r.ReadString('\n')
	if err != nil {
		s.done = true
		if err != io.EOF {
			s.err = err
			return false
		}
		if line == "" {
			return false
		}
		s.line = line // unterminated final line
		return true
	}
	s.line = line[:len(line)-1]
	return true
}

// Text returns the current line, without the terminating newline.
func (s *LineScanner) Text() string { return s.line }

// Err returns the first non-EOF error encountered by Scan.
func (s *LineScanner) Err() error { return s.err }
