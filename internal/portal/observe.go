package portal

// This file is the portal's observability surface: a Prometheus-text
// metrics endpoint and the runtime profiler, both mounted on the same
// mux as the API but gated behind an operator-only admin token. The
// gate fails closed: with no token configured the endpoints answer 404
// exactly like any unknown path — an unconfigured portal exposes no
// internals at all — and a wrong token is rejected with a constant-time
// comparison, never an early exit.

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"confanon/internal/metrics"
)

// SetMetrics wires the portal into an observability registry (call
// before serving). The portal registers its own request instruments and
// serves the registry's full snapshot — engine, batch, and portal
// series alike when the registry is shared — at GET /metrics.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	s.reg = reg
	s.anon.reg = reg // sessions compiled afterwards flush into it too
	if reg == nil {
		s.requests = nil
		s.latency = nil
		return
	}
	s.requests = reg.CounterVec("confanon_portal_requests_total",
		"portal HTTP requests by method and status code", "method", "code")
	s.latency = reg.Histogram("confanon_portal_request_seconds",
		"portal HTTP request latency in seconds")
}

// SetAdminToken configures the operator secret that unlocks GET /metrics
// and /debug/pprof/* (call before serving). The empty string — the
// default — keeps both endpoints answering 404: observability is opt-in,
// and an unconfigured portal exposes nothing.
func (s *Store) SetAdminToken(tok string) { s.adminToken = tok }

// requireAdmin gates a handler behind the admin token. Unconfigured →
// 404 (the endpoint does not exist); wrong or missing X-Admin-Token →
// 401. tokenEqual compares in constant time and never matches an empty
// presented value.
func (s *Store) requireAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adminToken == "" {
			http.NotFound(w, r)
			return
		}
		if !tokenEqual(r.Header.Get("X-Admin-Token"), s.adminToken) {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "admin token required"})
			return
		}
		h(w, r)
	}
}

// handleMetrics serves the registry snapshot in Prometheus text format.
// With no registry wired the endpoint does not exist (404), matching
// the unconfigured-token behavior.
func (s *Store) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.NotFound(w, r)
		return
	}
	s.reg.Handler().ServeHTTP(w, r)
}

// mountObservability registers /metrics and the pprof family on the
// API mux, all behind requireAdmin. The pprof handlers are mounted
// explicitly — never via net/http/pprof's DefaultServeMux side effect —
// so nothing is reachable except through the gate.
func (s *Store) mountObservability(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", s.requireAdmin(s.handleMetrics))
	mux.HandleFunc("/debug/pprof/", s.requireAdmin(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.requireAdmin(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.requireAdmin(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", s.requireAdmin(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.requireAdmin(pprof.Trace))
}

// withRequestMetrics counts every request and observes its latency,
// annotating each series with the last contributing request's trace id
// (an exemplar-style `# exemplar` comment in the exposition, so one
// anomalous count can be chased back to its request log line).
// A no-op pass-through when no registry is wired.
func (s *Store) withRequestMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.requests == nil {
			h.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		ctr := s.requests.With(r.Method, strconv.Itoa(rec.status))
		ctr.Inc()
		if id := RequestID(r); id != "" {
			ctr.SetExemplar(`request_id="` + id + `"`)
		}
		s.latency.Observe(time.Since(start).Seconds())
	})
}
