package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"confanon/internal/metrics"
)

// TestRequestIDThreadsThroughLogAndExemplar pins the tracing story of
// one request: the X-Request-Id the client receives is the same id the
// structured request log carries and the same id annotating the request
// counter's exemplar comment on /metrics — so a client-reported failure
// can be chased through both without guesswork.
func TestRequestIDThreadsThroughLogAndExemplar(t *testing.T) {
	s := NewStore()
	var logBuf bytes.Buffer
	s.SetSlogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	s.SetMetrics(metrics.NewRegistry())
	s.SetAdminToken("sesame")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{12}$`).MatchString(id) {
		t.Fatalf("X-Request-Id = %q, want 12 hex chars", id)
	}
	if !strings.Contains(logBuf.String(), "request_id="+id) {
		t.Errorf("request log does not carry the request id:\n%s", logBuf.String())
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("X-Admin-Token", "sesame")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	want := `# exemplar confanon_portal_requests_total{method="GET",code="200"} request_id="` + id + `"`
	if !strings.Contains(string(body), want) {
		t.Errorf("scrape lacks the exemplar line %q:\n%s", want, body)
	}
	// The exemplar is a comment: the text parser must still accept the
	// whole exposition.
	if _, err := metrics.ParseText(string(body)); err != nil {
		t.Errorf("exposition with exemplars no longer parses: %v", err)
	}
}

// TestRequestIDDistinct: each request draws a fresh id.
func TestRequestIDDistinct(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if seen[id] {
			t.Fatalf("request id %q repeated", id)
		}
		seen[id] = true
	}
}

// TestPrincipalNeverLogsOwnerTokens: the request log names researchers
// by handle but reduces anonymous owners to "-" — owner tokens grant
// access to blinded conversations and must never reach the log.
func TestPrincipalNeverLogsOwnerTokens(t *testing.T) {
	s := NewStore()
	var logBuf bytes.Buffer
	s.SetSlogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	s.AddResearcher("key-alice", "alice")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := strings.NewReader(`{"label":"d","files":{"r1":"hostname x\n"}}`)
	resp, err := http.Post(srv.URL+"/datasets", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		OwnerToken string `json:"owner_token"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/datasets", nil)
	req.Header.Set("X-API-Key", "key-alice")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	logs := logBuf.String()
	if !strings.Contains(logs, "owner=alice") {
		t.Errorf("researcher request not attributed to its handle:\n%s", logs)
	}
	if created.OwnerToken != "" && strings.Contains(logs, created.OwnerToken) {
		t.Error("owner token appears in the request log")
	}
	if strings.Contains(logs, "key-alice") {
		t.Error("API key appears in the request log")
	}
}

// TestLogShimRendersStructuredFields: the *log.Logger compatibility
// shim renders slog records as "msg k=v ..." through the wrapped
// logger, preserving its prefix.
func TestLogShimRendersStructuredFields(t *testing.T) {
	var buf bytes.Buffer
	l := shimSlog(log.New(&buf, "portal: ", 0))
	l.Info("request", slog.String("route", "GET /healthz"), slog.Int("status", 200))
	got := strings.TrimSpace(buf.String())
	want := "portal: request route=GET /healthz status=200"
	if got != want {
		t.Errorf("shim rendered %q, want %q", got, want)
	}
}
