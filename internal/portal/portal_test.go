package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"confanon/internal/anonymizer"
	"confanon/internal/netgen"
)

func newTestPortal() (*Store, *httptest.Server) {
	s := NewStore()
	s.SetLogger(log.New(io.Discard, "", 0))
	s.AddResearcher("key-alice", "alice")
	srv := httptest.NewServer(s.Handler())
	return s, srv
}

func postJSON(t *testing.T, url string, v interface{}, headers map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(v)
	req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, val := range headers {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getWithKey(t *testing.T, url, key string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// anonymizedFiles builds a small, genuinely anonymized corpus.
func anonymizedFiles(t *testing.T) map[string]string {
	t.Helper()
	n := netgen.Generate(netgen.Params{Seed: 77, Kind: netgen.Backbone, Routers: 6})
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	out := make(map[string]string)
	for name, text := range n.RenderAll() {
		out[a.HashFileName(name)] = a.AnonymizeText(text)
	}
	return out
}

func TestUploadListFetchFlow(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()

	files := anonymizedFiles(t)
	resp := postJSON(t, srv.URL+"/datasets", uploadRequest{Label: "backbone, 6 routers", Files: files}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var up uploadResponse
	_ = json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()
	if up.ID == "" || up.OwnerToken == "" {
		t.Fatalf("upload response incomplete: %+v", up)
	}

	// Listing requires a researcher key.
	if r := getWithKey(t, srv.URL+"/datasets", ""); r.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated list status %d", r.StatusCode)
	}
	r := getWithKey(t, srv.URL+"/datasets", "key-alice")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", r.StatusCode)
	}
	var list []datasetInfo
	_ = json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list) != 1 || list[0].ID != up.ID || list[0].Files != len(files) {
		t.Fatalf("list = %+v", list)
	}

	// File index and content.
	r = getWithKey(t, srv.URL+"/datasets/"+up.ID+"/files", "key-alice")
	var names []string
	_ = json.NewDecoder(r.Body).Decode(&names)
	r.Body.Close()
	if len(names) != len(files) {
		t.Fatalf("file index = %v", names)
	}
	r = getWithKey(t, srv.URL+"/datasets/"+up.ID+"/files/"+names[0], "key-alice")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("file fetch status %d", r.StatusCode)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(r.Body)
	r.Body.Close()
	if buf.String() != files[names[0]] {
		t.Error("file content mismatch")
	}
}

func TestScreenRejectsRawConfigs(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	raw := map[string]string{
		"r1-confg": "hostname r1\ninterface Ethernet0\n description uunet peering in lax\n ip address 1.1.1.1 255.255.255.0\nend\n",
	}
	resp := postJSON(t, srv.URL+"/datasets", uploadRequest{Label: "oops", Files: raw}, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("raw upload status %d, want 422", resp.StatusCode)
	}
	var up uploadResponse
	_ = json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()
	if len(up.Problems) == 0 {
		t.Fatal("no problems reported")
	}
	joined := strings.Join(up.Problems, "\n")
	if !strings.Contains(joined, "description") {
		t.Errorf("description leak not flagged: %s", joined)
	}
}

func TestScreenHeuristics(t *testing.T) {
	cases := []struct {
		name string
		text string
		bad  bool
	}{
		{"comment", "! managed by foo corp\nhostname x\n", true},
		{"banner", "banner motd ^\nwelcome to foonet\n^\n", true},
		{"ispname", "interface Serial0\n ip address 1.1.1.1 255.255.255.252\nuunet-map\n", true},
		{"clean", "hostname xab12\ninterface Serial0\n ip address 12.1.1.1 255.255.255.252\n!\nend\n", false},
		{"empty-banner", "banner motd ^\n^\nend\n", false},
	}
	for _, c := range cases {
		problems := Screen(map[string]string{"f": c.text})
		if (len(problems) > 0) != c.bad {
			t.Errorf("Screen(%s) = %v, want bad=%v", c.name, problems, c.bad)
		}
	}
}

func TestBlindCommentThread(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	files := anonymizedFiles(t)
	resp := postJSON(t, srv.URL+"/datasets", uploadRequest{Label: "d", Files: files}, nil)
	var up uploadResponse
	_ = json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()

	// Researcher asks a question.
	r := postJSON(t, srv.URL+"/datasets/"+up.ID+"/comments",
		commentRequest{Text: "is the OSPF area layout intentional?"},
		map[string]string{"X-API-Key": "key-alice"})
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("researcher comment status %d", r.StatusCode)
	}
	r.Body.Close()

	// Owner replies with the token.
	r = postJSON(t, srv.URL+"/datasets/"+up.ID+"/comments",
		commentRequest{Text: "yes, one area per pop", OwnerToken: up.OwnerToken}, nil)
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("owner comment status %d", r.StatusCode)
	}
	r.Body.Close()

	// A stranger cannot post or read.
	r = postJSON(t, srv.URL+"/datasets/"+up.ID+"/comments", commentRequest{Text: "hi"}, nil)
	if r.StatusCode != http.StatusUnauthorized {
		t.Errorf("stranger comment status %d", r.StatusCode)
	}
	r.Body.Close()
	r = getWithKey(t, srv.URL+"/datasets/"+up.ID+"/comments", "")
	if r.StatusCode != http.StatusUnauthorized {
		t.Errorf("stranger read status %d", r.StatusCode)
	}
	r.Body.Close()

	// Owner reads the thread via token; attribution is role-only.
	r = getWithKey(t, srv.URL+"/datasets/"+up.ID+"/comments?owner_token="+up.OwnerToken, "")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("owner read status %d", r.StatusCode)
	}
	var thread []Comment
	_ = json.NewDecoder(r.Body).Decode(&thread)
	r.Body.Close()
	if len(thread) != 2 || thread[0].From != "researcher" || thread[1].From != "owner" {
		t.Fatalf("thread = %+v", thread)
	}
	for _, c := range thread {
		if strings.Contains(c.From, "alice") {
			t.Error("researcher identity leaked through the blind")
		}
	}
}

func TestUploadValidation(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	// Empty file set.
	r := postJSON(t, srv.URL+"/datasets", uploadRequest{Label: "x"}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty upload status %d", r.StatusCode)
	}
	r.Body.Close()
	// Malformed JSON.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/datasets", strings.NewReader("{nope"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed upload status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestNotFoundPaths(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	for _, path := range []string{"/datasets/nope/files", "/datasets/nope/files/x"} {
		r := getWithKey(t, srv.URL+path, "key-alice")
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status %d", path, r.StatusCode)
		}
		r.Body.Close()
	}
	r := getWithKey(t, srv.URL+"/datasets/nope/comments?owner_token=z", "")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("comments on missing dataset status %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestEndToEndThroughPortal(t *testing.T) {
	// The full single-blind loop: generate, anonymize, screen-pass,
	// upload, researcher fetches and parses.
	s, srv := newTestPortal()
	defer srv.Close()
	files := anonymizedFiles(t)
	id, tok, problems := s.Upload("e2e", files)
	if len(problems) != 0 {
		t.Fatalf("screen rejected anonymized corpus: %v", problems)
	}
	if id == "" || tok == "" {
		t.Fatal("missing id/token")
	}
	d, ok := s.Dataset(id)
	if !ok || len(d.Files) != len(files) {
		t.Fatal("dataset not stored")
	}
}
