package portal

// This file is the hardened serving layer: middleware (panic recovery,
// request logging), an http.Server with timeouts on every phase of a
// connection, and a graceful-shutdown run loop. The §7 clearinghouse is
// the piece of the system exposed to the open Internet, so it gets the
// fail-closed treatment too: no naked listener, no unbounded read, no
// handler panic taking the process down.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// statusRecorder captures the status a handler wrote, for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// requestIDKey carries the per-request trace id through the context.
type requestIDKey struct{}

// RequestID returns the request's trace id ("" outside WithRequestID).
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// WithRequestID assigns every request a random trace id, stores it in
// the request context, and echoes it in the X-Request-Id response
// header — the same id the request log and the metrics exemplars carry,
// so one client-reported failure can be matched to its log line and its
// series annotation.
func WithRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic("portal: no entropy: " + err.Error())
		}
		id := hex.EncodeToString(b[:])
		w.Header().Set("X-Request-Id", id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// WithLogging logs one structured line per request: request id, owner
// (the authenticated principal's role, when the store middleware
// resolves one), route, status, duration, and remote address. Never the
// X-API-Key header or an owner token — query strings are deliberately
// omitted because owner tokens travel there.
//
// The *log.Logger form is the compatibility shim around the slog-based
// implementation; new callers wire a *slog.Logger via Store.SetSlogger.
func WithLogging(logger *log.Logger, h http.Handler) http.Handler {
	return withSlogLogging(shimSlog(logger), nil, h)
}

// withSlogLogging is the structured request log. principal, when
// non-nil, names the request's authenticated party ("-" for anonymous).
func withSlogLogging(logger *slog.Logger, principal func(*http.Request) string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		owner := "-"
		if principal != nil {
			owner = principal(r)
		}
		logger.Info("request",
			slog.String("request_id", RequestID(r)),
			slog.String("owner", owner),
			slog.String("route", r.Method+" "+r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start).Round(time.Microsecond)),
			slog.String("remote", r.RemoteAddr))
	})
}

// WithRecovery converts a handler panic into a logged 500 response, so
// one malformed request cannot crash the portal or leave the client with
// a severed connection and no status. http.ErrAbortHandler keeps its
// special meaning and is re-panicked.
//
// Like WithLogging, the *log.Logger form shims onto the slog core.
func WithRecovery(logger *log.Logger, h http.Handler) http.Handler {
	return withSlogRecovery(shimSlog(logger), h)
}

func withSlogRecovery(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				logger.Error("panic serving request",
					slog.String("request_id", RequestID(r)),
					slog.String("route", r.Method+" "+r.URL.Path),
					slog.Any("panic", v),
					slog.String("stack", string(debug.Stack())))
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal error"})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// shimSlog adapts a legacy *log.Logger into a slog.Logger so the
// compatibility entry points (SetLogger, the exported middleware forms)
// feed the same structured core. Lines render as "msg k=v ..." through
// the wrapped logger, preserving its prefix and flags.
func shimSlog(l *log.Logger) *slog.Logger {
	if l == nil {
		return slog.Default()
	}
	return slog.New(&logShim{l: l})
}

// logShim is the slog.Handler behind shimSlog. It keeps no state beyond
// WithAttrs accumulation and is safe for concurrent use (the wrapped
// log.Logger serializes output).
type logShim struct {
	l     *log.Logger
	attrs []slog.Attr
}

func (h *logShim) Enabled(context.Context, slog.Level) bool { return true }

func (h *logShim) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.l.Print(b.String())
	return nil
}

func (h *logShim) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logShim{l: h.l, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h *logShim) WithGroup(string) slog.Handler { return h }

// NewServer returns an http.Server for the portal with every connection
// phase bounded: a peer that stalls on headers, body, response read, or
// keep-alive idle is cut off instead of pinning a connection forever.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

// Run serves srv until ctx is cancelled, then shuts down gracefully:
// in-flight requests get up to grace to finish before the listener's
// process exits. It returns nil on a clean shutdown, the listen error
// otherwise.
func Run(ctx context.Context, srv *http.Server, grace time.Duration) error {
	return RunWithDrain(ctx, srv, grace, 0, nil)
}

// RunWithDrain is Run with the load-balancer courtesy step in front of
// the shutdown: when ctx is cancelled it first calls onDrain (which
// should flip /readyz not-ready — Store.BeginDrain), then keeps serving
// for notice so balancers observe the not-ready answer and stop routing
// before the listener dies, and only then shuts the HTTP server down
// with grace for in-flight requests. Draining the job queue is the
// caller's next step, after this returns, so queued work is not racing a
// dying listener.
func RunWithDrain(ctx context.Context, srv *http.Server, grace, notice time.Duration, onDrain func()) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// The listener failed before ctx did (bad address, port in use).
		return err
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	if notice > 0 {
		select {
		case err := <-errCh:
			return err
		case <-time.After(notice):
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
