package portal

// This file is the hardened serving layer: middleware (panic recovery,
// request logging), an http.Server with timeouts on every phase of a
// connection, and a graceful-shutdown run loop. The §7 clearinghouse is
// the piece of the system exposed to the open Internet, so it gets the
// fail-closed treatment too: no naked listener, no unbounded read, no
// handler panic taking the process down.

import (
	"context"
	"errors"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status a handler wrote, for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// WithLogging logs one line per request: method, path, status, duration,
// and remote address. Never the X-API-Key header or an owner token —
// query strings are deliberately omitted because owner tokens travel
// there.
func WithLogging(logger *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		logger.Printf("%s %s %d %s %s", r.Method, r.URL.Path, rec.status,
			time.Since(start).Round(time.Microsecond), r.RemoteAddr)
	})
}

// WithRecovery converts a handler panic into a logged 500 response, so
// one malformed request cannot crash the portal or leave the client with
// a severed connection and no status. http.ErrAbortHandler keeps its
// special meaning and is re-panicked.
func WithRecovery(logger *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal error"})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// NewServer returns an http.Server for the portal with every connection
// phase bounded: a peer that stalls on headers, body, response read, or
// keep-alive idle is cut off instead of pinning a connection forever.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

// Run serves srv until ctx is cancelled, then shuts down gracefully:
// in-flight requests get up to grace to finish before the listener's
// process exits. It returns nil on a clean shutdown, the listen error
// otherwise.
func Run(ctx context.Context, srv *http.Server, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// The listener failed before ctx did (bad address, port in use).
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
