package portal

// This file is the portal's rule-pack surface. The operator registers
// an allowlist of validated declarative rule packs before serving;
// owners name packs per upload or per job (the request's "rule_packs"
// field) and the portal loads exactly those, in the requested order, on
// top of the built-in inventory. Naming an unregistered pack is a 422 —
// the portal never loads pack content sent by a client, only content
// the operator registered. Packs extend the built-in rule set and can
// never weaken its gating (see internal/anonymizer), so a pack-loaded
// session is at least as strict as a bare one.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"confanon"
)

// errPackSelection marks a client-side pack problem — an unknown name
// or a conflicting combination — distinguishing 422 answers from the
// operational failures that answer 503.
type errPackSelection struct{ msg string }

func (e *errPackSelection) Error() string { return e.msg }

// RegisterRulePack validates p against this build's engine and adds it
// to the allowlist under its pack name. Re-registering the same name is
// an error unless the content fingerprint is identical: a silent swap
// would change what an owner's pack reference means mid-flight.
func (s *Store) RegisterRulePack(p *confanon.RulePack) error {
	if err := confanon.CheckRulePack(p); err != nil {
		return fmt.Errorf("portal: rule pack %q: %w", p.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.rulePacks[p.Name]; ok && prev.Fingerprint != p.Fingerprint {
		return fmt.Errorf("portal: rule pack %q already registered with different content (%s vs %s)",
			p.Name, prev.Fingerprint, p.Fingerprint)
	}
	s.rulePacks[p.Name] = p
	return nil
}

// RulePackNames returns the sorted names of the registered packs.
func (s *Store) RulePackNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.rulePacks))
	for n := range s.rulePacks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveRulePacks maps requested pack names to registered packs,
// preserving request order (merge order is load order). It also rejects
// combinations two individually-valid packs cannot form — duplicate
// names in the request, or the same rule ID declared by two packs —
// so a compile further down cannot fail on client-chosen input. The
// returned key canonically identifies the selection for session and
// ledger keying; "" when no packs were requested.
func (s *Store) resolveRulePacks(names []string) (packs []*confanon.RulePack, key string, err error) {
	if len(names) == 0 {
		return nil, "", nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	seenPack := make(map[string]bool, len(names))
	seenRule := make(map[string]string) // rule id → pack that declared it
	var idents []string
	for _, name := range names {
		if seenPack[name] {
			return nil, "", &errPackSelection{fmt.Sprintf("rule pack %q named twice", name)}
		}
		seenPack[name] = true
		p, ok := s.rulePacks[name]
		if !ok {
			known := "none registered"
			if len(s.rulePacks) > 0 {
				var ns []string
				for n := range s.rulePacks {
					ns = append(ns, n)
				}
				sort.Strings(ns)
				known = strings.Join(ns, ", ")
			}
			return nil, "", &errPackSelection{fmt.Sprintf("unknown rule pack %q (registered: %s)", name, known)}
		}
		for _, r := range p.Rules {
			if other, dup := seenRule[r.ID]; dup {
				return nil, "", &errPackSelection{fmt.Sprintf(
					"rule packs %q and %q both declare rule %q; they cannot load together", other, name, r.ID)}
			}
			seenRule[r.ID] = name
		}
		packs = append(packs, p)
		idents = append(idents, p.Name+"@"+p.Version+":"+p.Fingerprint)
	}
	sum := sha256.Sum256([]byte(strings.Join(idents, "\n")))
	return packs, hex.EncodeToString(sum[:6]), nil
}
