package portal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"confanon/internal/jobs"
	"confanon/internal/metrics"
	"confanon/internal/trace"
)

// submitJob posts a raw corpus to POST /jobs and decodes the response.
func submitJob(t *testing.T, url, label, salt string, files map[string]string) (*http.Response, jobSubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(rawUploadRequest{Label: label, Salt: salt, Files: files})
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobSubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// getJob polls GET /jobs/{id} with the job token.
func getJob(t *testing.T, url, id, token string) (int, jobView) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url+"/jobs/"+id, nil)
	if token != "" {
		req.Header.Set("X-Job-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// pollJob polls until the job reaches a terminal state.
func pollJob(t *testing.T, url, id, token string) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, v := getJob(t, url, id, token)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if jobs.State(v.State).Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobView{}
}

func jobTestCorpus(tag string) map[string]string {
	files := make(map[string]string)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("%s-r%d-confg", tag, i)
		files[name] = fmt.Sprintf(
			"hostname %s-r%d\ninterface Serial0\n ip address 12.1.%d.1 255.255.255.0\nrouter bgp 70%d\n neighbor 12.9.9.9 remote-as 702\n",
			tag, i, i, i)
	}
	return files
}

// TestJobSubmitPollFetchFlow is the 202 happy path: submit, poll to
// done, then fetch the published dataset — and its contents must be
// byte-identical to what the synchronous raw path produces for the same
// salt and corpus (the async queue is a scheduling layer, never a
// semantic one).
func TestJobSubmitPollFetchFlow(t *testing.T) {
	const salt = "owner-secret"
	corpus := jobTestCorpus("alpha")

	// Reference: the synchronous path in its own store.
	refStore := NewStore()
	refStore.AddResearcher("key-r1", "r1")
	refSrv := httptest.NewServer(refStore.Handler())
	defer refSrv.Close()
	code, ref := rawUpload(t, refSrv.URL, "ref", salt, corpus)
	if code != http.StatusCreated {
		t.Fatalf("reference upload: status %d: %+v", code, ref)
	}
	refText := datasetText(t, refSrv.URL, "key-r1", ref.ID)

	store := NewStore()
	store.AddResearcher("key-r1", "r1")
	if err := store.StartJobs(jobs.Config{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	resp, sub := submitJob(t, srv.URL, "async", salt, corpus)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	if sub.JobID == "" || sub.JobToken == "" {
		t.Fatalf("202 without job id/token: %+v", sub)
	}
	v := pollJob(t, srv.URL, sub.JobID, sub.JobToken)
	if v.State != string(jobs.StateDone) {
		t.Fatalf("job finished %q (err %q, problems %v), want done", v.State, v.Error, v.Problems)
	}
	if v.DatasetID == "" || v.OwnerToken == "" {
		t.Fatalf("done job missing dataset id / owner token: %+v", v)
	}
	if v.Progress.FilesDone != len(corpus) {
		t.Fatalf("progress %+v, want %d done", v.Progress, len(corpus))
	}
	if got := datasetText(t, srv.URL, "key-r1", v.DatasetID); got != refText {
		t.Errorf("async output differs from synchronous run:\n--- sync ---\n%s\n--- async ---\n%s", refText, got)
	}
}

// TestJobTokenAuth pins the status endpoint's auth: unknown id 404, and
// without the right job token the status (which carries the owner
// token once done) is never served.
func TestJobTokenAuth(t *testing.T) {
	store := NewStore()
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	resp, sub := submitJob(t, srv.URL, "x", "owner-secret", jobTestCorpus("auth"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if code, _ := getJob(t, srv.URL, "no-such-job", sub.JobToken); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code, _ := getJob(t, srv.URL, sub.JobID, ""); code != http.StatusUnauthorized {
		t.Errorf("missing token: status %d, want 401", code)
	}
	if code, _ := getJob(t, srv.URL, sub.JobID, "wrong"); code != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", code)
	}
	// DELETE enforces the same gate.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.JobID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless DELETE: status %d, want 401", resp2.StatusCode)
	}
}

// TestJobCancelEndpoint cancels a queued job through the API.
func TestJobCancelEndpoint(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	store := NewStore()
	store.jobRunner = func(ctx context.Context, cb jobs.Callbacks, spec jobs.Spec) (*jobs.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &jobs.Result{DatasetID: "d", OwnerToken: "o"}, nil
		}
	}
	if err := store.StartJobs(jobs.Config{Workers: 1, Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	// First job occupies the worker; second stays queued.
	_, _ = submitJob(t, srv.URL, "running", "s", jobTestCorpus("c1"))
	resp, sub := submitJob(t, srv.URL, "queued", "s", jobTestCorpus("c2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.JobID, nil)
	req.Header.Set("X-Job-Token", sub.JobToken)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	_ = json.NewDecoder(dresp.Body).Decode(&v)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted || v.State != string(jobs.StateCancelled) {
		t.Fatalf("DELETE: status %d state %q, want 202 cancelled", dresp.StatusCode, v.State)
	}
}

// TestJobSaturation429WithRetryAfter is the acceptance saturation test:
// with one worker wedged and a one-deep queue, further submissions
// answer 429 with a Retry-After computed from the backlog; a second
// owner hitting its in-flight quota gets the same treatment. Metrics
// record every refusal.
func TestJobSaturation429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := metrics.NewRegistry()
	store := NewStore()
	store.SetMetrics(reg)
	store.jobRunner = func(ctx context.Context, cb jobs.Callbacks, spec jobs.Spec) (*jobs.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &jobs.Result{DatasetID: "d", OwnerToken: "o"}, nil
		}
	}
	if err := store.StartJobs(jobs.Config{
		Workers: 1, Capacity: 1, PerOwnerInFlight: 2, EstimatedJobSeconds: 30,
	}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	// Owner A: one running, one queued (queue now full).
	if resp, _ := submitJob(t, srv.URL, "j1", "salt-a", jobTestCorpus("a1")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.jobs.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond) // wait for the worker to pick job 1 up
	}
	if resp, _ := submitJob(t, srv.URL, "j2", "salt-a", jobTestCorpus("a2")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}

	// Owner A is now at its in-flight quota → 429 owner_quota.
	resp, _ := submitJob(t, srv.URL, "j3", "salt-a", jobTestCorpus("a3"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 1 {
		t.Fatalf("over-quota Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Owner B is under its own quota but the queue is full → 429
	// queue_full, with Retry-After reflecting the 30s-per-job backlog.
	resp, _ = submitJob(t, srv.URL, "j4", "salt-b", jobTestCorpus("b1"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: status %d, want 429", resp.StatusCode)
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 30 {
		t.Fatalf("queue-full Retry-After %q does not reflect the backlog", resp.Header.Get("Retry-After"))
	}

	var sb bytes.Buffer
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`confanon_jobs_rejected_total{reason="owner_quota"} 1`,
		`confanon_jobs_rejected_total{reason="queue_full"} 1`,
	} {
		if !bytes.Contains(sb.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestReadyzLifecycle pins the routing probe: 503 before the job queue
// starts, 200 while serving, 503 again once draining begins — while
// /healthz (liveness) stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	defer store.Close()

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz before StartJobs: %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz before StartJobs: %d, want 200", got)
	}
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("readyz while serving: %d, want 200", got)
	}
	store.BeginDrain()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200", got)
	}
	// Submissions are refused with 503 + Retry-After during the drain.
	resp, _ := submitJob(t, srv.URL, "late", "s", jobTestCorpus("late"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain refusal missing Retry-After")
	}
}

// TestGracefulDrainLosesNoCommittedWork is the acceptance drain test: a
// job running when the drain begins finishes inside the grace window,
// its dataset is published, its mapping commits are durable — and after
// a restart on the same state directory the finished job's record is
// still queryable and the mapping replays consistently.
func TestGracefulDrainLosesNoCommittedWork(t *testing.T) {
	stateDir := t.TempDir()
	const salt = "owner-secret"

	store := NewStore()
	store.AddResearcher("key-r1", "r1")
	store.SetStateDir(stateDir)
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler())

	resp, sub := submitJob(t, srv.URL, "drained", salt, jobTestCorpus("alpha"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	store.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := store.DrainJobs(ctx); err != nil {
		t.Fatalf("DrainJobs: %v", err)
	}
	// The drain waited: the job must be done, not interrupted.
	code, v := getJob(t, srv.URL, sub.JobID, sub.JobToken)
	if code != http.StatusOK || v.State != string(jobs.StateDone) {
		t.Fatalf("post-drain job: status %d state %q (err %q), want done", code, v.State, v.Error)
	}
	text1 := datasetText(t, srv.URL, "key-r1", v.DatasetID)
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: the terminal job record is still queryable and the salt's
	// mapping replays — a new upload of the same corpus maps identically.
	store2 := NewStore()
	store2.AddResearcher("key-r1", "r1")
	store2.SetStateDir(stateDir)
	if err := store2.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2 := httptest.NewServer(store2.Handler())
	defer srv2.Close()
	code, v2 := getJob(t, srv2.URL, sub.JobID, sub.JobToken)
	if code != http.StatusOK || v2.State != string(jobs.StateDone) {
		t.Fatalf("restarted portal lost the finished job: status %d state %q", code, v2.State)
	}
	resp2, sub2 := submitJob(t, srv2.URL, "again", salt, jobTestCorpus("alpha"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", resp2.StatusCode)
	}
	v3 := pollJob(t, srv2.URL, sub2.JobID, sub2.JobToken)
	if v3.State != string(jobs.StateDone) {
		t.Fatalf("resubmitted job: %q (err %q, problems %v)", v3.State, v3.Error, v3.Problems)
	}
	if text2 := datasetText(t, srv2.URL, "key-r1", v3.DatasetID); text2 != text1 {
		t.Errorf("mapping drifted across drain+restart:\n--- before ---\n%s\n--- after ---\n%s", text1, text2)
	}
}

// TestJobSpansRecorded wires a tracer through StartJobs and checks the
// job span with per-file children lands for a real anonymization run.
func TestJobSpansRecorded(t *testing.T) {
	tr := trace.NewTracer()
	store := NewStore()
	store.SetTracer(tr)
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	corpus := jobTestCorpus("traced")
	resp, sub := submitJob(t, srv.URL, "traced", "owner-secret", corpus)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v := pollJob(t, srv.URL, sub.JobID, sub.JobToken); v.State != string(jobs.StateDone) {
		t.Fatalf("job: %q (err %q, problems %v)", v.State, v.Error, v.Problems)
	}
	var jobSpan *trace.Span
	fileChildren := 0
	for _, sp := range tr.Spans() {
		if sp.Kind == trace.KindJob {
			jobSpan = sp
		}
	}
	if jobSpan == nil {
		t.Fatal("no job span recorded")
	}
	for _, sp := range tr.Spans() {
		if sp.Kind == trace.KindFile && sp.Parent == jobSpan.ID {
			fileChildren++
		}
	}
	if fileChildren != len(corpus) {
		t.Fatalf("job span has %d file children, want %d", fileChildren, len(corpus))
	}
	if jobSpan.Attr("state") != "done" || jobSpan.Status != trace.StatusOK {
		t.Fatalf("job span state=%q status=%q", jobSpan.Attr("state"), jobSpan.Status)
	}
}

// TestJobSubmitValidationErrors walks POST /jobs through every refusal
// that is not overload: queue not started (503), malformed JSON and
// oversized bodies, missing files/salt (400), and shape limits (422) —
// the same validation contract as the synchronous raw upload.
func TestJobSubmitValidationErrors(t *testing.T) {
	post := func(url, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Before StartJobs the endpoint is 503 with a Retry-After, and the
	// poll/cancel endpoints refuse too.
	bare := NewStore()
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	if resp := post(bareSrv.URL, `{}`); resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("submit without queue: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _ := getJob(t, bareSrv.URL, "nope", "tok"); code != http.StatusServiceUnavailable {
		t.Fatalf("status without queue: %d", code)
	}

	store := NewStore()
	limits := DefaultLimits()
	limits.MaxFiles = 2
	limits.MaxBodyBytes = 4096
	store.SetLimits(limits)
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"salt": `, http.StatusBadRequest},
		{"no files", `{"salt":"s","files":{}}`, http.StatusBadRequest},
		{"no salt", `{"files":{"r1-confg":"hostname r1\n"}}`, http.StatusBadRequest},
		{"too many files", `{"salt":"s","files":{"a":"x","b":"x","c":"x"}}`, http.StatusUnprocessableEntity},
		{"body too large", `{"salt":"s","files":{"a":"` + strings.Repeat("x", 8192) + `"}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if resp := post(srv.URL, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
