package portal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
)

// rawUpload posts files+salt to /datasets/raw and decodes the response.
func rawUpload(t *testing.T, url, label, salt string, files map[string]string) (int, uploadResponse) {
	t.Helper()
	body, _ := json.Marshal(rawUploadRequest{Label: label, Salt: salt, Files: files})
	resp, err := http.Post(url+"/datasets/raw", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// datasetText fetches and concatenates every file of a dataset through
// the researcher API.
func datasetText(t *testing.T, url, key, id string) string {
	t.Helper()
	get := func(path string) []byte {
		req, _ := http.NewRequest(http.MethodGet, url+path, nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var names []string
	if err := json.Unmarshal(get("/datasets/"+id+"/files"), &names); err != nil {
		t.Fatal(err)
	}
	var all bytes.Buffer
	for _, n := range names {
		all.Write(get("/datasets/" + id + "/files/" + n))
		all.WriteByte('\n')
	}
	return all.String()
}

// TestRawUploadConsistentAcrossConcurrentUploads is the portal-side
// contract of the Program/Session split: two uploads arriving
// concurrently under one owner salt share one Session, so an address
// both uploads mention anonymizes identically — researchers can
// correlate the two datasets structurally without learning the address.
func TestRawUploadConsistentAcrossConcurrentUploads(t *testing.T) {
	store := NewStore()
	store.AddResearcher("key-r1", "researcher-one")
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	const salt = "owner-secret"
	const shared = "12.1.2.3"
	mkFiles := func(tag string, peer string) map[string]string {
		return map[string]string{
			tag + "-confg": fmt.Sprintf(
				"hostname %s\ninterface Serial0\n ip address %s 255.255.255.0\nrouter bgp 701\n neighbor %s remote-as 702\n",
				tag, shared, peer),
		}
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	resps := make([]uploadResponse, 2)
	uploads := []map[string]string{
		mkFiles("corea", "12.1.2.4"),
		mkFiles("coreb", "12.1.2.5"),
	}
	for i := range uploads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i] = rawUpload(t, srv.URL, fmt.Sprintf("net-%d", i), salt, uploads[i])
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusCreated {
			t.Fatalf("upload %d: status %d, problems %v", i, code, resps[i].Problems)
		}
		if resps[i].ID == "" || resps[i].OwnerToken == "" {
			t.Fatalf("upload %d: missing id or owner token", i)
		}
	}

	// Pull both datasets back and compare the image of the shared
	// address (the address of "ip address X ..." lines).
	addrLine := regexp.MustCompile(`ip address (\S+) 255\.255\.255\.0`)
	var images []string
	for i := range resps {
		text := datasetText(t, srv.URL, "key-r1", resps[i].ID)
		m := addrLine.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("dataset %d has no interface address line:\n%s", i, text)
		}
		if m[1] == shared {
			t.Fatalf("dataset %d leaks the original address %s", i, shared)
		}
		images = append(images, m[1])
	}
	if images[0] != images[1] {
		t.Fatalf("shared prefix mapped inconsistently across concurrent uploads: %s vs %s",
			images[0], images[1])
	}
}

// TestRawUploadRejects pins the endpoint's fail-closed edges: missing
// salt, no files, and a corpus the strict gate cannot pass are all
// rejected with nothing stored.
func TestRawUploadRejects(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	if code, _ := rawUpload(t, srv.URL, "x", "", map[string]string{"a": "hostname a\n"}); code != http.StatusBadRequest {
		t.Errorf("missing salt: status %d, want 400", code)
	}
	if code, _ := rawUpload(t, srv.URL, "x", "s", nil); code != http.StatusBadRequest {
		t.Errorf("no files: status %d, want 400", code)
	}
	if n := len(store.Datasets()); n != 0 {
		t.Errorf("rejected uploads left %d datasets stored", n)
	}
}
