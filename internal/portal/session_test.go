package portal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
)

// rawUpload posts files+salt to /datasets/raw and decodes the response.
func rawUpload(t *testing.T, url, label, salt string, files map[string]string) (int, uploadResponse) {
	t.Helper()
	body, _ := json.Marshal(rawUploadRequest{Label: label, Salt: salt, Files: files})
	resp, err := http.Post(url+"/datasets/raw", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// datasetText fetches and concatenates every file of a dataset through
// the researcher API.
func datasetText(t *testing.T, url, key, id string) string {
	t.Helper()
	get := func(path string) []byte {
		req, _ := http.NewRequest(http.MethodGet, url+path, nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var names []string
	if err := json.Unmarshal(get("/datasets/"+id+"/files"), &names); err != nil {
		t.Fatal(err)
	}
	var all bytes.Buffer
	for _, n := range names {
		all.Write(get("/datasets/" + id + "/files/" + n))
		all.WriteByte('\n')
	}
	return all.String()
}

// TestRawUploadConsistentAcrossConcurrentUploads is the portal-side
// contract of the Program/Session split: two uploads arriving
// concurrently under one owner salt share one Session, so an address
// both uploads mention anonymizes identically — researchers can
// correlate the two datasets structurally without learning the address.
func TestRawUploadConsistentAcrossConcurrentUploads(t *testing.T) {
	store := NewStore()
	store.AddResearcher("key-r1", "researcher-one")
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	const salt = "owner-secret"
	const shared = "12.1.2.3"
	mkFiles := func(tag string, peer string) map[string]string {
		return map[string]string{
			tag + "-confg": fmt.Sprintf(
				"hostname %s\ninterface Serial0\n ip address %s 255.255.255.0\nrouter bgp 701\n neighbor %s remote-as 702\n",
				tag, shared, peer),
		}
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	resps := make([]uploadResponse, 2)
	uploads := []map[string]string{
		mkFiles("corea", "12.1.2.4"),
		mkFiles("coreb", "12.1.2.5"),
	}
	for i := range uploads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i] = rawUpload(t, srv.URL, fmt.Sprintf("net-%d", i), salt, uploads[i])
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusCreated {
			t.Fatalf("upload %d: status %d, problems %v", i, code, resps[i].Problems)
		}
		if resps[i].ID == "" || resps[i].OwnerToken == "" {
			t.Fatalf("upload %d: missing id or owner token", i)
		}
	}

	// Pull both datasets back and compare the image of the shared
	// address (the address of "ip address X ..." lines).
	addrLine := regexp.MustCompile(`ip address (\S+) 255\.255\.255\.0`)
	var images []string
	for i := range resps {
		text := datasetText(t, srv.URL, "key-r1", resps[i].ID)
		m := addrLine.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("dataset %d has no interface address line:\n%s", i, text)
		}
		if m[1] == shared {
			t.Fatalf("dataset %d leaks the original address %s", i, shared)
		}
		images = append(images, m[1])
	}
	if images[0] != images[1] {
		t.Fatalf("shared prefix mapped inconsistently across concurrent uploads: %s vs %s",
			images[0], images[1])
	}
}

// TestRawUploadRejects pins the endpoint's fail-closed edges: missing
// salt, no files, and a corpus the strict gate cannot pass are all
// rejected with nothing stored.
func TestRawUploadRejects(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	if code, _ := rawUpload(t, srv.URL, "x", "", map[string]string{"a": "hostname a\n"}); code != http.StatusBadRequest {
		t.Errorf("missing salt: status %d, want 400", code)
	}
	if code, _ := rawUpload(t, srv.URL, "x", "s", nil); code != http.StatusBadRequest {
		t.Errorf("no files: status %d, want 400", code)
	}
	if n := len(store.Datasets()); n != 0 {
		t.Errorf("rejected uploads left %d datasets stored", n)
	}
}

// TestRawUploadStatePersistsAcrossRestart is the portal's durable-store
// contract: with a state directory configured, a second Store process
// pointed at the same directory replays each owner's mapping ledger on
// first use, so uploads before and after a restart anonymize a shared
// address identically — and a different owner's mapping stays
// independent.
func TestRawUploadStatePersistsAcrossRestart(t *testing.T) {
	stateDir := t.TempDir()
	const salt = "owner-secret"
	const shared = "12.1.2.3"
	files := func(tag string) map[string]string {
		return map[string]string{
			tag + "-confg": "hostname " + tag + "\ninterface Serial0\n ip address " + shared + " 255.255.255.0\n",
		}
	}
	extract := func(text string) string {
		m := regexp.MustCompile(`ip address (\S+)`).FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("no ip address in %q", text)
		}
		return m[1]
	}

	// First process lifetime.
	store1 := NewStore()
	store1.AddResearcher("key-r1", "r1")
	store1.SetStateDir(stateDir)
	srv1 := httptest.NewServer(store1.Handler())
	code, up1 := rawUpload(t, srv1.URL, "gen1", salt, files("alpha"))
	if code != http.StatusCreated {
		t.Fatalf("upload 1: status %d: %+v", code, up1)
	}
	anon1 := extract(datasetText(t, srv1.URL, "key-r1", up1.ID))
	srv1.Close()
	if err := store1.Close(); err != nil {
		t.Fatalf("closing store 1: %v", err)
	}

	// Restarted process: fresh Store, same state directory.
	store2 := NewStore()
	store2.AddResearcher("key-r1", "r1")
	store2.SetStateDir(stateDir)
	srv2 := httptest.NewServer(store2.Handler())
	defer srv2.Close()
	defer store2.Close()
	code, up2 := rawUpload(t, srv2.URL, "gen2", salt, files("beta"))
	if code != http.StatusCreated {
		t.Fatalf("upload 2: status %d: %+v", code, up2)
	}
	anon2 := extract(datasetText(t, srv2.URL, "key-r1", up2.ID))
	if anon1 != anon2 {
		t.Errorf("mapping did not survive the restart: %s then %s for %s", anon1, anon2, shared)
	}

	// A different owner gets an independent mapping and an independent
	// ledger subdirectory.
	code, up3 := rawUpload(t, srv2.URL, "gen3", "other-owner", files("gamma"))
	if code != http.StatusCreated {
		t.Fatalf("upload 3: status %d: %+v", code, up3)
	}
	if anon3 := extract(datasetText(t, srv2.URL, "key-r1", up3.ID)); anon3 == anon1 {
		t.Errorf("two owners share a mapping: %s", anon3)
	}
}

// TestRawUploadWithoutStateDirStillWorks pins the default: no state
// directory means the pre-durability behavior, ledgers never touched.
func TestRawUploadWithoutStateDirStillWorks(t *testing.T) {
	store := NewStore()
	store.AddResearcher("key-r1", "r1")
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	code, up := rawUpload(t, srv.URL, "plain", "owner-secret", map[string]string{
		"r1-confg": "hostname r1\ninterface Serial0\n ip address 12.1.2.3 255.255.255.0\n",
	})
	if code != http.StatusCreated {
		t.Fatalf("status %d: %+v", code, up)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close without state dir: %v", err)
	}
}
