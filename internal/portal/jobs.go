package portal

// This file is the portal's asynchronous submission surface: the layer
// that turns the synchronous POST /datasets/raw flow into 202-Accepted
// job semantics the paper's §7 clearinghouse needs at carrier scale.
// POST /jobs enqueues a raw corpus for server-side anonymization and
// returns immediately with a job id and a secret job token;
// GET /jobs/{id} reports status and per-file progress; DELETE /jobs/{id}
// cancels. The queue (internal/jobs) bounds workers and queue depth,
// enforces per-owner quotas and rates, and persists every job durably
// before acknowledging it — a killed portal resumes unfinished jobs at
// the next start, and the per-owner mapping ledger guarantees the re-run
// is byte-identical to an uninterrupted one.
//
// The job runner processes the corpus in fixed-size sorted chunks
// through the owner's shared Session, so progress advances per chunk and
// the Session's ledger commits land at clean file boundaries throughout
// the run — the checkpoints a crash recovers to. Failed files are
// retried with jittered backoff before they are declared problems; the
// portal cannot distinguish a transient fault from a deterministic one,
// so it retries optimistically within a small bounded budget.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"confanon/internal/jobs"
	"confanon/internal/retry"
	"confanon/internal/trace"
)

// jobChunkFiles is how many files one job processes per Session run: the
// progress/checkpoint granularity. Small enough that a crash loses
// little uncommitted work, large enough to keep the parallel workers fed.
const jobChunkFiles = 8

// fileRetryPolicy bounds the per-file re-attempts inside a job. Jittered
// so a burst of simultaneous failures does not retry in lockstep.
var fileRetryPolicy = retry.Policy{Attempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second,
	Classify: func(error) bool { return true }}

// SetTracer wires a span tracer into the job pipeline: one KindJob span
// per job with retroactive per-file children (call before StartJobs).
func (s *Store) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// StartJobs builds the job queue, resumes any jobs a previous process
// left behind, and flips the portal ready. Zero-value cfg fields inherit
// the portal's wiring: records under <stateDir>/jobs, the Store's
// metrics registry and tracer. Call after SetStateDir/SetMetrics and
// before serving.
func (s *Store) StartJobs(cfg jobs.Config) error {
	if cfg.Dir == "" && s.anon.stateDir != "" {
		cfg.Dir = filepath.Join(s.anon.stateDir, "jobs")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = s.reg
	}
	if cfg.Tracer == nil {
		cfg.Tracer = s.tracer
	}
	run := s.jobRunner
	if run == nil {
		run = s.runJob
	}
	q, err := jobs.New(cfg, run)
	if err != nil {
		return fmt.Errorf("portal: starting job queue: %w", err)
	}
	s.jobs = q
	for _, p := range q.LoadProblems() {
		s.slog().Warn("job record set aside", "problem", p)
	}
	if n := q.Resumed(); n > 0 {
		s.slog().Info("resumed persisted jobs", "count", n)
	}
	s.ready.Store(true)
	return nil
}

// BeginDrain flips the portal not-ready (GET /readyz answers 503, so
// load balancers stop routing) and refuses new job submissions. It does
// not wait; call DrainJobs once the HTTP server has stopped accepting.
func (s *Store) BeginDrain() { s.ready.Store(false) }

// DrainJobs winds the job queue down: running jobs get until ctx to
// finish, stragglers are interrupted resumably. A no-op without
// StartJobs.
func (s *Store) DrainJobs(ctx context.Context) error {
	if s.jobs == nil {
		return nil
	}
	return s.jobs.Drain(ctx)
}

// Ready reports whether the portal should receive traffic: jobs started
// (startup replay done) and not draining.
func (s *Store) Ready() bool {
	return s.ready.Load() && s.jobs != nil && !s.jobs.Draining()
}

// handleReadyz is the routing probe — distinct from /healthz (liveness):
// a portal mid-startup or mid-drain is alive but must not receive new
// work.
func (s *Store) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		status := "starting"
		if s.jobs != nil && (s.jobs.Draining() || !s.ready.Load()) {
			status = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": status})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// ownerKey derives the per-owner queue key from the salt — the same
// digest that keys the owner's Session and ledger directory, never the
// salt itself.
func ownerKey(salt []byte) string {
	sum := sha256.Sum256(salt)
	return hex.EncodeToString(sum[:])
}

type jobSubmitResponse struct {
	JobID    string `json:"job_id"`
	JobToken string `json:"job_token"`
	Status   string `json:"status"`
}

// jobView is the status representation GET /jobs/{id} serves. The job
// token authenticates the request and is never echoed back; the owner
// token appears only once the dataset is published.
type jobView struct {
	JobID       string        `json:"job_id"`
	Label       string        `json:"label,omitempty"`
	State       string        `json:"state"`
	Progress    jobs.Progress `json:"progress"`
	Attempts    int           `json:"attempts,omitempty"`
	FileRetries int           `json:"file_retries,omitempty"`
	Error       string        `json:"error,omitempty"`
	Problems    []string      `json:"problems,omitempty"`
	DatasetID   string        `json:"dataset_id,omitempty"`
	OwnerToken  string        `json:"owner_token,omitempty"`
}

func viewOf(snap jobs.Snapshot) jobView {
	return jobView{
		JobID:       snap.ID,
		Label:       snap.Label,
		State:       string(snap.State),
		Progress:    snap.Progress,
		Attempts:    snap.Attempts,
		FileRetries: snap.FileRetries,
		Error:       snap.Err,
		Problems:    snap.Problems,
		DatasetID:   snap.DatasetID,
		OwnerToken:  snap.OwnerToken,
	}
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// rounded up so clients never return early).
func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}

// handleSubmitJob is POST /jobs: validate like the synchronous raw
// upload, then enqueue and answer 202 with the job id and token. The
// submission is durable before the 202 leaves. Overload answers carry
// Retry-After computed from live queue state: 429 for quota and
// capacity pressure, 503 while draining.
func (s *Store) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil || !s.ready.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "job queue unavailable"})
		return
	}
	if s.limits.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	}
	var req rawUploadRequest
	if err := decodeJSONBody(w, r, &req); err != nil {
		return
	}
	if len(req.Files) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no files"})
		return
	}
	if req.Salt == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "salt required (it keys your anonymization mapping)"})
		return
	}
	if problems := s.checkLimits(req.Files); len(problems) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: problems})
		return
	}
	// Pack references resolve against the allowlist before the job is
	// accepted — a 202 must never be followed by a deterministic
	// unknown-pack failure the client could have been told about now.
	if _, _, err := s.resolveRulePacks(req.RulePacks); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: []string{err.Error()}})
		return
	}
	snap, err := s.jobs.Submit(jobs.Spec{
		Owner:     ownerKey([]byte(req.Salt)),
		Label:     req.Label,
		Salt:      []byte(req.Salt),
		Files:     req.Files,
		RulePacks: req.RulePacks,
	})
	if err != nil {
		if ov, ok := err.(*jobs.OverloadError); ok {
			status := http.StatusTooManyRequests
			if ov.Reason == "draining" {
				status = http.StatusServiceUnavailable
			}
			w.Header().Set("Retry-After", retryAfterSeconds(ov.RetryAfter))
			writeJSON(w, status, map[string]string{"error": "overloaded: " + ov.Reason})
			return
		}
		s.slog().Error("job submission failed", "err", err)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "submission failed: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, jobSubmitResponse{
		JobID:    snap.ID,
		JobToken: snap.Token,
		Status:   "/jobs/" + snap.ID,
	})
}

// authJob resolves {id} and checks the X-Job-Token header in constant
// time. On failure the response is written and ok is false.
func (s *Store) authJob(w http.ResponseWriter, r *http.Request) (jobs.Snapshot, bool) {
	if s.jobs == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "job queue unavailable"})
		return jobs.Snapshot{}, false
	}
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return jobs.Snapshot{}, false
	}
	if !tokenEqual(r.Header.Get("X-Job-Token"), snap.Token) {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "job token required"})
		return jobs.Snapshot{}, false
	}
	return snap, true
}

// handleJobStatus is GET /jobs/{id}: the polling endpoint.
func (s *Store) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.authJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, viewOf(snap))
}

// handleJobCancel is DELETE /jobs/{id}: queued jobs cancel immediately,
// running jobs stop at their next file boundary; either way the answer
// is the post-cancel view.
func (s *Store) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authJob(w, r); !ok {
		return
	}
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(snap))
}

// runJob executes one queued job against the owner's shared Session.
// Chunked: the sorted corpus runs jobChunkFiles at a time, so progress
// is visible, cancellation lands at chunk boundaries, and the Session's
// ledger commits (clean file boundaries) checkpoint the run throughout.
// A failed file is retried under fileRetryPolicy before it becomes a
// problem. Fail-closed like the synchronous path: any surviving failure
// or quarantine withholds the whole dataset.
func (s *Store) runJob(ctx context.Context, cb jobs.Callbacks, spec jobs.Spec) (*jobs.Result, error) {
	// Re-resolve the job's pack references at execution time: a job
	// resumed after a restart runs only if the packs it named are still
	// registered (the queue persists names, never pack content).
	packs, packKey, err := s.resolveRulePacks(spec.RulePacks)
	if err != nil {
		return nil, fmt.Errorf("rule packs unavailable: %w", err)
	}
	sess, err := s.anon.forSalt(spec.Salt, packs, packKey)
	if err != nil {
		return nil, fmt.Errorf("anonymization session unavailable: %w", err)
	}
	names := make([]string, 0, len(spec.Files))
	for n := range spec.Files {
		names = append(names, n)
	}
	sort.Strings(names)

	prog := jobs.Progress{FilesTotal: len(names)}
	outputs := make(map[string]string, len(names))
	var problems []string
	fileRetries := 0

	for start := 0; start < len(names); start += jobChunkFiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := start + jobChunkFiles
		if end > len(names) {
			end = len(names)
		}
		chunk := make(map[string]string, end-start)
		for _, n := range names[start:end] {
			chunk[n] = spec.Files[n]
		}
		chunkStart := time.Time{}
		var startNs int64
		if cb.Tracer != nil {
			startNs = cb.Tracer.Now()
			chunkStart = time.Now()
		}
		res, err := sess.ParallelCorpusContext(ctx, chunk, rawWorkers)
		if err != nil {
			return nil, err
		}
		// Retry each failed file individually before giving up on it.
		for _, fe := range res.Failed() {
			name := fe.Name
			rp := fileRetryPolicy
			rp.OnRetry = func(int, error) { fileRetries++ }
			err := rp.Do(ctx, func() error {
				one, rerr := sess.ParallelCorpusContext(ctx, map[string]string{name: spec.Files[name]}, 1)
				if rerr != nil {
					return rerr
				}
				fr := one.Files[name]
				res.Files[name] = fr
				if fr.Ok() {
					return nil
				}
				if fr.Err != nil {
					return fr.Err
				}
				return fmt.Errorf("%s: quarantined", name)
			})
			if err != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		for _, n := range names[start:end] {
			fr := res.Files[n]
			spanStatus := trace.StatusOK
			switch {
			case fr.Err != nil:
				problems = append(problems, fmt.Sprintf("%s: processing failed: %v", n, fr.Err))
				prog.FilesFailed++
				spanStatus = trace.StatusFailed
			case len(fr.Leaks) > 0:
				problems = append(problems, fmt.Sprintf("%s: quarantined (%d confirmed leaks, first: %s)", n, len(fr.Leaks), fr.Leaks[0]))
				prog.FilesQuarantined++
				spanStatus = trace.StatusFailed
			default:
				outputs[n] = fr.Text
				prog.FilesDone++
			}
			if cb.Tracer != nil && cb.Span != nil {
				// Retroactive: the chunk's wall time is shared across its
				// files — attribution, not profiling.
				per := time.Since(chunkStart).Nanoseconds() / int64(end-start)
				cb.Tracer.RecordSpan(trace.KindFile, n, cb.Span.ID, startNs, per, spanStatus)
			}
		}
		if cb.Progress != nil {
			cb.Progress(prog)
		}
	}

	// Durability before publication, exactly like the synchronous path.
	if err := sess.SyncStore(); err != nil {
		return nil, fmt.Errorf("mapping ledger commit failed: %w", err)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return &jobs.Result{Problems: problems, Progress: prog, FileRetries: fileRetries}, nil
	}
	renamed := make(map[string]string, len(outputs))
	for name, text := range outputs {
		renamed[sess.RenameFile(name)] = text
	}
	id, tok, uploadProblems := s.Upload(spec.Label, renamed)
	if len(uploadProblems) > 0 {
		return &jobs.Result{Problems: uploadProblems, Progress: prog, FileRetries: fileRetries}, nil
	}
	return &jobs.Result{DatasetID: id, OwnerToken: tok, Progress: prog, FileRetries: fileRetries}, nil
}
