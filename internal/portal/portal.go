// Package portal implements the clearinghouse the paper's §7 sets as the
// goal of the work: a single-blind portal through which network owners
// publish anonymized configurations and researchers access them, with a
// blinding function relaying comments between researchers and the
// anonymous owners.
//
// The flow:
//
//   - An owner uploads a dataset of anonymized configs (POST /datasets).
//     The portal screens the upload for signs of un-anonymized data
//     (surviving comments, banner text, well-known ISP names) and rejects
//     suspicious uploads — the owner stays anonymous; the response carries
//     an owner token for later blind correspondence.
//   - Researchers (authenticated by API key) list datasets
//     (GET /datasets), fetch files (GET /datasets/{id}/files/{name}), and
//     post comments (POST /datasets/{id}/comments).
//   - The owner polls the comment thread with the owner token and replies
//     through the same blinding endpoint; neither side learns the other's
//     identity.
package portal

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"confanon"
	"confanon/internal/jobs"
	"confanon/internal/metrics"
	"confanon/internal/trace"
)

// Limits bounds what the portal accepts. The serving side of the paper's
// clearinghouse is fail-closed too: an upload the portal cannot afford to
// screen completely is rejected, not waved through.
type Limits struct {
	// MaxBodyBytes caps any request body (enforced with
	// http.MaxBytesReader before JSON decoding starts).
	MaxBodyBytes int64
	// MaxFiles caps the number of files in one dataset.
	MaxFiles int
	// MaxFileBytes caps one file's size.
	MaxFileBytes int
	// MaxTotalBytes caps a dataset's cumulative file bytes.
	MaxTotalBytes int64
	// MaxScreenBytes caps how many bytes Screen scans before giving up;
	// a dataset that exhausts the budget is rejected (fail closed), so a
	// giant upload cannot wedge the handler.
	MaxScreenBytes int64
	// MaxCommentBytes caps one comment's text.
	MaxCommentBytes int
}

// DefaultLimits returns the portal's conservative defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:    32 << 20, // 32 MiB of JSON per request
		MaxFiles:        4096,
		MaxFileBytes:    4 << 20,  // one router config is KBs, allow 4 MiB
		MaxTotalBytes:   24 << 20, // dataset payload under the body cap
		MaxScreenBytes:  24 << 20,
		MaxCommentBytes: 64 << 10,
	}
}

// Dataset is one uploaded corpus of anonymized configurations.
type Dataset struct {
	ID       string            `json:"id"`
	Label    string            `json:"label"` // owner-chosen, e.g. "backbone, 40 routers"
	Uploaded time.Time         `json:"uploaded"`
	Files    map[string]string `json:"-"`
	// ownerToken authenticates the anonymous owner for the blind
	// comment thread; never serialized to researchers.
	ownerToken string
}

// Comment is one message in a dataset's blind thread.
type Comment struct {
	From string    `json:"from"` // "researcher" or "owner" — identities are blinded
	Text string    `json:"text"`
	At   time.Time `json:"at"`
}

// Screen checks a file set for signs that anonymization was skipped or
// incomplete; it returns the list of problems (empty = acceptable). The
// portal cannot verify a cryptographic property without the owner's salt,
// so this is a heuristic gatekeeper: surviving free-text comments,
// banner bodies, description lines, or well-known ISP names indicate raw
// configs. Scanning is capped at DefaultLimits().MaxScreenBytes; see
// ScreenLimited.
func Screen(files map[string]string) []string {
	return ScreenLimited(files, DefaultLimits().MaxScreenBytes)
}

// ScreenLimited is Screen with an explicit scan budget in bytes. The
// budget makes the gatekeeper fail closed under load: a dataset too big
// to screen completely is rejected with an explanatory problem rather
// than accepted unscreened (and the handler never spends unbounded CPU
// on one upload). A budget <= 0 means unlimited.
func ScreenLimited(files map[string]string, maxBytes int64) []string {
	var problems []string
	add := func(name, format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf("%s: %s", name, fmt.Sprintf(format, args...)))
	}
	var scanned int64
	ispNames := []string{"uunet", "sprintlink", "globalcrossing", "level3", "genuity"}
	// Iterate in sorted order so the budget cuts deterministically.
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		text := files[name]
		if maxBytes > 0 {
			if scanned += int64(len(text)); scanned > maxBytes {
				add(name, "screening budget exhausted (%d bytes scanned, cap %d): dataset too large to screen, rejected", scanned, maxBytes)
				return problems
			}
		}
		inBanner := false
		var delim byte
		for i, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if inBanner {
				if delim != 0 && strings.IndexByte(line, delim) >= 0 {
					inBanner = false
					continue
				}
				if trimmed != "" {
					add(name, "line %d: banner body survives anonymization", i+1)
					inBanner = false
				}
				continue
			}
			f := strings.Fields(trimmed)
			if len(f) == 0 {
				continue
			}
			switch {
			case f[0] == "banner":
				inBanner = true
				delim = 0
				if len(f) >= 3 && len(f[2]) > 0 {
					delim = f[2][0]
				}
			case strings.HasPrefix(trimmed, "! ") && len(f) > 1:
				add(name, "line %d: free-text comment survives", i+1)
			case f[0] == "description" || (len(f) > 2 && f[0] == "neighbor" && f[2] == "description"):
				add(name, "line %d: description line survives", i+1)
			default:
				lower := strings.ToLower(trimmed)
				for _, isp := range ispNames {
					if strings.Contains(lower, isp) {
						add(name, "line %d: well-known network name %q survives", i+1, isp)
					}
				}
			}
			if len(problems) > 20 {
				return problems // enough evidence
			}
		}
	}
	return problems
}

// Store holds the portal state. Safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
	comments map[string][]Comment
	// apiKeys maps researcher API keys to display handles (handles are
	// internal; the blind thread never shows them to owners).
	apiKeys map[string]string
	// rulePacks is the admin-registered allowlist of declarative rule
	// packs, by pack name; uploads and jobs may reference only these
	// (see rulepacks.go).
	rulePacks map[string]*confanon.RulePack
	limits    Limits
	// slogger receives the structured request log and recovered-panic
	// reports; logger is the legacy handle SetLogger keeps for callers
	// built against the *log.Logger API (it feeds slogger through the
	// shim). Both nil means slog.Default() / log.Default().
	slogger *slog.Logger
	logger  *log.Logger
	// reg, requests, latency are the observability wiring (SetMetrics);
	// adminToken gates GET /metrics and /debug/pprof/* (SetAdminToken).
	// All are configured before serving, like limits and logger.
	reg        *metrics.Registry
	requests   *metrics.CounterVec
	latency    *metrics.Histogram
	adminToken string
	// anon holds the per-owner-salt anonymization sessions behind
	// POST /datasets/raw (see session.go).
	anon *anonSessions
	// jobs is the async submission queue behind POST /jobs (nil until
	// StartJobs); tracer feeds it job spans; ready gates /readyz — false
	// until startup replay finishes and again once draining begins. All
	// three are configured before serving (see jobs.go).
	jobs   *jobs.Queue
	tracer *trace.Tracer
	ready  atomic.Bool
	// jobRunner overrides the job executor (tests saturate the queue
	// with a blocking stub); nil means the real anonymization runner.
	jobRunner jobs.Runner
}

// NewStore creates an empty portal store with DefaultLimits.
func NewStore() *Store {
	return &Store{
		datasets:  make(map[string]*Dataset),
		comments:  make(map[string][]Comment),
		apiKeys:   make(map[string]string),
		rulePacks: make(map[string]*confanon.RulePack),
		limits:    DefaultLimits(),
		anon:      newAnonSessions(),
	}
}

// SetStateDir enables durable per-owner mapping ledgers under dir: the
// raw-upload path commits each owner's mapping delta at every clean
// file boundary, and a restarted Store pointed at the same directory
// replays every owner's committed mappings on that owner's first upload
// — uploads before and after a restart (or crash) anonymize under one
// consistent mapping. Call before serving. The directory holds
// cleartext-derived values; it is as sensitive as the owners' salts.
func (s *Store) SetStateDir(dir string) { s.anon.stateDir = dir }

// Close stops the job queue (if started) and then flushes and closes
// the per-owner mapping ledgers — in that order, so no worker touches a
// ledger after it closes. Call on shutdown, after the server has
// drained; servers wanting running jobs to finish call DrainJobs first.
func (s *Store) Close() error {
	if s.jobs != nil {
		s.ready.Store(false)
		s.jobs.Close()
	}
	return s.anon.close()
}

// SetLimits replaces the store's limits (call before serving).
func (s *Store) SetLimits(l Limits) { s.limits = l }

// Limits returns the store's active limits.
func (s *Store) Limits() Limits { return s.limits }

// SetSlogger directs the structured request log and panic reports (nil
// restores slog.Default()). The portal logs with fields — request id,
// owner, route, status, duration — so any slog.Handler can route them.
func (s *Store) SetSlogger(l *slog.Logger) {
	s.slogger = l
	s.logger = nil
}

// SetLogger is the compatibility shim for callers still wiring a
// *log.Logger: the structured log renders as "msg k=v ..." lines
// through it (nil restores the defaults). New code wants SetSlogger.
func (s *Store) SetLogger(l *log.Logger) {
	s.logger = l
	if l == nil {
		s.slogger = nil
		return
	}
	s.slogger = shimSlog(l)
}

func (s *Store) log() *log.Logger {
	if s.logger != nil {
		return s.logger
	}
	return log.Default()
}

func (s *Store) slog() *slog.Logger {
	if s.slogger != nil {
		return s.slogger
	}
	return slog.Default()
}

// AddResearcher registers an API key for a researcher account.
func (s *Store) AddResearcher(key, handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apiKeys[key] = handle
}

func randomID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("portal: no entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// checkLimits enforces the dataset-shape caps (count and sizes) before
// any content is scanned.
func (s *Store) checkLimits(files map[string]string) []string {
	l := s.limits
	var problems []string
	if l.MaxFiles > 0 && len(files) > l.MaxFiles {
		problems = append(problems, fmt.Sprintf("dataset has %d files, cap is %d", len(files), l.MaxFiles))
		return problems
	}
	var total int64
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		size := len(files[n])
		total += int64(size)
		if l.MaxFileBytes > 0 && size > l.MaxFileBytes {
			problems = append(problems, fmt.Sprintf("%s: %d bytes, per-file cap is %d", n, size, l.MaxFileBytes))
		}
	}
	if l.MaxTotalBytes > 0 && total > l.MaxTotalBytes {
		problems = append(problems, fmt.Sprintf("dataset is %d bytes, cap is %d", total, l.MaxTotalBytes))
	}
	return problems
}

// Upload screens and stores a dataset, returning its public id and the
// owner's secret token. The files map is copied: later mutation by the
// caller cannot alter what researchers are served.
func (s *Store) Upload(label string, files map[string]string) (id, ownerToken string, problems []string) {
	if problems = s.checkLimits(files); len(problems) > 0 {
		return "", "", problems
	}
	if problems = ScreenLimited(files, s.limits.MaxScreenBytes); len(problems) > 0 {
		return "", "", problems
	}
	copied := make(map[string]string, len(files))
	for n, text := range files {
		copied[n] = text
	}
	d := &Dataset{
		ID:         randomID(),
		Label:      label,
		Uploaded:   time.Now().UTC(),
		Files:      copied,
		ownerToken: randomID(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[d.ID] = d
	return d.ID, d.ownerToken, nil
}

// Datasets lists stored datasets, newest first.
func (s *Store) Datasets() []*Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uploaded.After(out[j].Uploaded) })
	return out
}

// Dataset fetches one dataset by id.
func (s *Store) Dataset(id string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[id]
	return d, ok
}

// AddComment appends a blinded message to a dataset's thread.
func (s *Store) AddComment(id, from, text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.comments[id] = append(s.comments[id], Comment{From: from, Text: text, At: time.Now().UTC()})
}

// Comments returns a dataset's thread.
func (s *Store) Comments(id string) []Comment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Comment(nil), s.comments[id]...)
}

// Handler builds the HTTP API, wrapped in the hardening middleware:
// request-id assignment (outermost, so every log line and metric
// exemplar carries the id), panic recovery (a handler panic becomes a
// logged 500, not a dead connection or a crashed portal), and
// structured request logging.
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /datasets", s.handleUpload)
	mux.HandleFunc("POST /datasets/raw", s.handleUploadRaw)
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /datasets", s.requireResearcher(s.handleList))
	mux.HandleFunc("GET /datasets/{id}/files", s.requireResearcher(s.handleFiles))
	mux.HandleFunc("GET /datasets/{id}/files/{name}", s.requireResearcher(s.handleFile))
	mux.HandleFunc("POST /datasets/{id}/comments", s.handlePostComment)
	mux.HandleFunc("GET /datasets/{id}/comments", s.handleGetComments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mountObservability(mux)
	return WithRequestID(withSlogRecovery(s.slog(),
		withSlogLogging(s.slog(), s.principal, s.withRequestMetrics(mux))))
}

// principal names the request's authenticated party for the log's owner
// field: the researcher's registered handle, or "-" for everyone else.
// Owner tokens travel in bodies and query strings the log never reads,
// so owner-authenticated requests stay "-" — anonymity holds in the
// operator's own logs.
func (s *Store) principal(r *http.Request) string {
	if h := s.researcher(r); h != "" {
		return h
	}
	return "-"
}

// handleHealthz is the liveness probe: unauthenticated, cheap, and
// content-free beyond counts (dataset contents need a researcher key).
func (s *Store) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.datasets)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "datasets": n})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// tokenEqual compares two secrets in constant time. An empty presented
// value never matches (a dataset with an unset token must not be
// claimable with an empty string).
func tokenEqual(presented, actual string) bool {
	if presented == "" || actual == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(presented), []byte(actual)) == 1
}

// researcher resolves the API key of a request; empty if absent/invalid.
// Every registered key is compared in constant time, with no early exit,
// so response timing reveals neither a near-miss nor how far down the
// key list a match sat.
func (s *Store) researcher(r *http.Request) string {
	key := r.Header.Get("X-API-Key")
	s.mu.RLock()
	defer s.mu.RUnlock()
	handle := ""
	for k, h := range s.apiKeys {
		if tokenEqual(key, k) {
			handle = h
		}
	}
	return handle
}

func (s *Store) requireResearcher(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.researcher(r) == "" {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "researcher API key required"})
			return
		}
		h(w, r)
	}
}

type uploadRequest struct {
	Label string            `json:"label"`
	Files map[string]string `json:"files"`
}

type uploadResponse struct {
	ID         string   `json:"id,omitempty"`
	OwnerToken string   `json:"owner_token,omitempty"`
	Problems   []string `json:"problems,omitempty"`
}

func (s *Store) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.limits.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	}
	var req uploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed JSON: " + err.Error()})
		return
	}
	if len(req.Files) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no files"})
		return
	}
	id, tok, problems := s.Upload(req.Label, req.Files)
	if len(problems) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: problems})
		return
	}
	writeJSON(w, http.StatusCreated, uploadResponse{ID: id, OwnerToken: tok})
}

type datasetInfo struct {
	ID       string    `json:"id"`
	Label    string    `json:"label"`
	Uploaded time.Time `json:"uploaded"`
	Files    int       `json:"files"`
}

func (s *Store) handleList(w http.ResponseWriter, r *http.Request) {
	var out []datasetInfo
	for _, d := range s.Datasets() {
		out = append(out, datasetInfo{ID: d.ID, Label: d.Label, Uploaded: d.Uploaded, Files: len(d.Files)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Store) handleFiles(w http.ResponseWriter, r *http.Request) {
	d, ok := s.Dataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such dataset"})
		return
	}
	names := make([]string, 0, len(d.Files))
	for n := range d.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

func (s *Store) handleFile(w http.ResponseWriter, r *http.Request) {
	d, ok := s.Dataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such dataset"})
		return
	}
	text, ok := d.Files[r.PathValue("name")]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such file"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
}

type commentRequest struct {
	Text       string `json:"text"`
	OwnerToken string `json:"owner_token,omitempty"`
}

// handlePostComment accepts a message from either side of the blind: a
// researcher (API key) or the dataset owner (owner token). The stored
// attribution is only the role, never an identity.
func (s *Store) handlePostComment(w http.ResponseWriter, r *http.Request) {
	d, ok := s.Dataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such dataset"})
		return
	}
	if s.limits.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	}
	var req commentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Text) == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "comment text required"})
		return
	}
	if s.limits.MaxCommentBytes > 0 && len(req.Text) > s.limits.MaxCommentBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": fmt.Sprintf("comment exceeds %d bytes", s.limits.MaxCommentBytes)})
		return
	}
	var from string
	switch {
	case tokenEqual(req.OwnerToken, d.ownerToken):
		from = "owner"
	case s.researcher(r) != "":
		from = "researcher"
	default:
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "researcher key or owner token required"})
		return
	}
	s.AddComment(d.ID, from, req.Text)
	writeJSON(w, http.StatusCreated, map[string]string{"status": "posted", "as": from})
}

// handleGetComments returns the thread to either side of the blind.
func (s *Store) handleGetComments(w http.ResponseWriter, r *http.Request) {
	d, ok := s.Dataset(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such dataset"})
		return
	}
	if s.researcher(r) == "" && !tokenEqual(r.URL.Query().Get("owner_token"), d.ownerToken) {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "researcher key or owner token required"})
		return
	}
	writeJSON(w, http.StatusOK, s.Comments(d.ID))
}
