package portal

// This file is the portal's server-side anonymization layer: the §7
// clearinghouse accepting RAW configurations from owners who trust the
// portal operator to anonymize for them (POST /datasets/raw). The
// security property the layer must keep is per-owner mapping
// consistency: everything one owner ever uploads under one secret salt
// must be anonymized under one mapping, so that a prefix shared between
// two uploads — or two files of one upload arriving on different
// goroutines — maps to the same anonymized prefix.
//
// The confanon Program/Session split carries exactly that shape: the
// portal compiles one Program per owner salt and holds its single live
// Session for the Store's lifetime. Sessions are safe for concurrent
// use, so simultaneous uploads from one owner need no serialization
// here — they share the Session's worker pool and mapping directly.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"

	"confanon"
)

// rawWorkers is the parallelism of one raw upload's anonymization run.
const rawWorkers = 4

// anonSessions holds the per-owner-salt anonymization sessions. With a
// stateDir configured, each owner's Session is backed by a durable
// mapping ledger in its own subdirectory (named by the salt digest):
// the ledger is opened — and any prior runs' committed mappings
// replayed — the first time the owner's salt is seen, so a restarted
// portal continues every owner's mapping exactly where the previous
// process left it, including after a crash mid-upload (clean file
// boundaries commit; the interrupted file never half-persists).
type anonSessions struct {
	mu       sync.Mutex
	sessions map[string]*confanon.Anonymizer
	stores   map[string]*confanon.MappingStore
	stateDir string
	reg      *confanon.MetricsRegistry
}

func newAnonSessions() *anonSessions {
	return &anonSessions{
		sessions: make(map[string]*confanon.Anonymizer),
		stores:   make(map[string]*confanon.MappingStore),
	}
}

// forSalt returns the owner's Session, compiling its Program — and,
// with a state directory configured, opening and replaying the owner's
// mapping ledger — on first use. The map (and the ledger subdirectory)
// is keyed by a digest of the salt, not the salt itself; when rule
// packs are selected (resolved by the Store's allowlist; packKey
// canonically names the selection) the session and its ledger are
// keyed by salt digest plus selection, so runs under different pack
// sets never interleave one ledger. Anonymization is strict: a file
// whose leak report is not clean is quarantined, never stored.
func (p *anonSessions) forSalt(salt []byte, packs []*confanon.RulePack, packKey string) (*confanon.Anonymizer, error) {
	key := sha256.Sum256(salt)
	id := hex.EncodeToString(key[:])
	if packKey != "" {
		id += "-" + packKey
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.sessions[id]; ok {
		return a, nil
	}
	prog, err := confanon.CompileChecked(confanon.Options{
		Salt:      append([]byte(nil), salt...),
		Strict:    true,
		Metrics:   p.reg,
		RulePacks: packs,
	})
	if err != nil {
		// resolveRulePacks pre-checked the combination, so a failure here
		// is an engine-level surprise, not client input: surface it.
		return nil, fmt.Errorf("compiling rules: %w", err)
	}
	a := prog.NewSession()
	if p.stateDir != "" {
		ms, err := confanon.OpenMappingStore(filepath.Join(p.stateDir, id), salt)
		if err != nil {
			return nil, fmt.Errorf("opening mapping ledger: %w", err)
		}
		if err := a.UseStore(ms); err != nil {
			ms.Close()
			return nil, fmt.Errorf("replaying mapping ledger: %w", err)
		}
		p.stores[id] = ms
	}
	p.sessions[id] = a
	return a, nil
}

// close closes every open mapping ledger (flushing buffered appends)
// and forgets the sessions, returning the first close error.
func (p *anonSessions) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for id, ms := range p.stores {
		if err := ms.Close(); err != nil && first == nil {
			first = err
		}
		delete(p.stores, id)
		delete(p.sessions, id)
	}
	return first
}

type rawUploadRequest struct {
	Label string            `json:"label"`
	Salt  string            `json:"salt"`
	Files map[string]string `json:"files"`
	// RulePacks names admin-registered rule packs to load, in merge
	// order; an unregistered name is a 422. Clients never send pack
	// content — only references into the operator's allowlist.
	RulePacks []string `json:"rule_packs,omitempty"`
}

// handleUploadRaw accepts raw configurations plus the owner's salt,
// anonymizes them server-side under the owner's persistent Session
// (strict leak-gating, parallel workers), screens the anonymized output
// like any other upload, and stores it. Fail-closed end to end: if any
// file fails or is quarantined, nothing is stored and the response
// names every withheld file.
func (s *Store) handleUploadRaw(w http.ResponseWriter, r *http.Request) {
	if s.limits.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	}
	var req rawUploadRequest
	if err := decodeJSONBody(w, r, &req); err != nil {
		return // decodeJSONBody wrote the response
	}
	if len(req.Files) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no files"})
		return
	}
	if req.Salt == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "salt required (it keys your anonymization mapping)"})
		return
	}
	if problems := s.checkLimits(req.Files); len(problems) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: problems})
		return
	}

	packs, packKey, err := s.resolveRulePacks(req.RulePacks)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: []string{err.Error()}})
		return
	}
	sess, err := s.anon.forSalt([]byte(req.Salt), packs, packKey)
	if err != nil {
		s.slog().Error("raw upload: session unavailable", "err", err)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "anonymization session unavailable: " + err.Error()})
		return
	}
	res, err := sess.ParallelCorpusContext(r.Context(), req.Files, rawWorkers)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "anonymization aborted: " + err.Error()})
		return
	}
	// Durability before publication: if the mapping delta cannot be
	// committed, storing the outputs would orphan them from any future
	// consistent run — fail the upload instead.
	if err := sess.SyncStore(); err != nil {
		s.slog().Error("raw upload: mapping ledger commit failed", "err", err)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "mapping ledger commit failed: " + err.Error()})
		return
	}
	if !res.Ok() {
		var problems []string
		for _, fe := range res.Failed() {
			problems = append(problems, fmt.Sprintf("%s: processing failed: %v", fe.Name, fe.Cause))
		}
		for _, name := range res.Quarantined() {
			fr := res.Files[name]
			problems = append(problems, fmt.Sprintf("%s: quarantined (%d confirmed leaks, first: %s)", name, len(fr.Leaks), fr.Leaks[0]))
		}
		sort.Strings(problems)
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: problems})
		return
	}

	// File names are usually hostname-derived; store them anonymized too.
	renamed := make(map[string]string, len(res.Files))
	for name, text := range res.Outputs() {
		renamed[sess.RenameFile(name)] = text
	}
	id, tok, problems := s.Upload(req.Label, renamed)
	if len(problems) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, uploadResponse{Problems: problems})
		return
	}
	writeJSON(w, http.StatusCreated, uploadResponse{ID: id, OwnerToken: tok})
}

// decodeJSONBody decodes a JSON request body with the shared too-large /
// malformed error responses; on error the response is already written.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return err
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed JSON: " + err.Error()})
		return err
	}
	return nil
}
