package portal

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"confanon"
	"confanon/internal/jobs"
)

const testPackTOML = `
schema = "confanon.rulepack/v1"
name = "test-emails"
version = "1.0.0"
[[rules]]
id = "test-email-token"
class = "name"
scope = "token"
action = "hash"
doc = "hash email addresses"
[rules.match]
pattern = "[a-zA-Z0-9._\\-]+@[a-zA-Z0-9.\\-]+\\.[a-zA-Z]+"
`

func testPack(t *testing.T) *confanon.RulePack {
	t.Helper()
	p, err := confanon.LoadRulePack([]byte(testPackTOML))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// rawUploadPacks posts a raw upload naming rule packs.
func rawUploadPacks(t *testing.T, url, salt string, files map[string]string, packs []string) (int, uploadResponse) {
	t.Helper()
	body, _ := json.Marshal(rawUploadRequest{Label: "t", Salt: salt, Files: files, RulePacks: packs})
	resp, err := http.Post(url+"/datasets/raw", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestRulePackAllowlist: only operator-registered packs may be named;
// an unknown reference is a 422 that names the registered set, and a
// registered reference loads the pack into the owner's session.
func TestRulePackAllowlist(t *testing.T) {
	store := NewStore()
	if err := store.RegisterRulePack(testPack(t)); err != nil {
		t.Fatal(err)
	}
	if got := store.RulePackNames(); len(got) != 1 || got[0] != "test-emails" {
		t.Fatalf("RulePackNames() = %v", got)
	}
	// Re-registering identical content is idempotent; different content
	// under the same name is refused.
	if err := store.RegisterRulePack(testPack(t)); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	altered, err := confanon.LoadRulePack([]byte(strings.Replace(testPackTOML, `version = "1.0.0"`, `version = "2.0.0"`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterRulePack(altered); err == nil {
		t.Error("silent pack content swap was accepted")
	}

	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	files := map[string]string{"r1": "hostname r1\nsnmp-server contact noc@example.net\ninterface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n"}

	code, out := rawUploadPacks(t, srv.URL, "s1", files, []string{"no-such-pack"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown pack: status %d, want 422 (%+v)", code, out)
	}
	if len(out.Problems) == 0 || !strings.Contains(out.Problems[0], "no-such-pack") {
		t.Errorf("unknown-pack problem does not name the pack: %v", out.Problems)
	}

	code, out = rawUploadPacks(t, srv.URL, "s1", files, []string{"test-emails"})
	if code != http.StatusCreated {
		t.Fatalf("registered pack: status %d (%+v)", code, out)
	}
	store.AddResearcher("k", "r")
	text := datasetText(t, srv.URL, "k", out.ID)
	if strings.Contains(text, "noc@example.net") {
		t.Errorf("pack token rule did not run; email survives:\n%s", text)
	}
}

// TestJobRulePackValidatedAtSubmit: POST /jobs rejects unknown pack
// references before enqueueing — the client hears 422 now, not a failed
// job later — and a job naming a registered pack runs it.
func TestJobRulePackValidatedAtSubmit(t *testing.T) {
	store := NewStore()
	if err := store.RegisterRulePack(testPack(t)); err != nil {
		t.Fatal(err)
	}
	if err := store.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	submit := func(packs []string) (int, map[string]any) {
		t.Helper()
		body, _ := json.Marshal(rawUploadRequest{
			Label: "j", Salt: "s2",
			Files:     map[string]string{"r1": "hostname r1\n ip address 12.1.2.3 255.255.255.0\n"},
			RulePacks: packs,
		})
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	if code, _ := submit([]string{"nope"}); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown pack at submit: status %d, want 422", code)
	}
	if code, out := submit([]string{"test-emails"}); code != http.StatusAccepted {
		t.Fatalf("registered pack at submit: status %d (%v)", code, out)
	}
}
