package portal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHealthz(t *testing.T) {
	_, srv := newTestPortal()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]interface{}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if body["status"] != "ok" {
		t.Errorf("healthz body = %v", body)
	}
}

func TestRecoveryMiddlewareTurnsPanicInto500(t *testing.T) {
	var logBuf bytes.Buffer
	logger := log.New(&logBuf, "", 0)
	h := WithRecovery(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(logBuf.String(), "handler exploded") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}
}

func TestLoggingMiddlewareOmitsQueryString(t *testing.T) {
	var logBuf bytes.Buffer
	logger := log.New(&logBuf, "", 0)
	h := WithLogging(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/datasets/d1/comments?owner_token=SECRET", nil))
	line := logBuf.String()
	if !strings.Contains(line, "418") || !strings.Contains(line, "/datasets/d1/comments") {
		t.Errorf("log line incomplete: %q", line)
	}
	if strings.Contains(line, "SECRET") {
		t.Errorf("owner token leaked into the request log: %q", line)
	}
}

func TestUploadCopiesFilesMap(t *testing.T) {
	s := NewStore()
	files := map[string]string{"f1": "hostname a1b2\n"}
	id, _, problems := s.Upload("d", files)
	if len(problems) != 0 {
		t.Fatal(problems)
	}
	files["f1"] = "! MUTATED AFTER UPLOAD\n"
	files["f2"] = "! SMUGGLED\n"
	d, ok := s.Dataset(id)
	if !ok {
		t.Fatal("dataset lost")
	}
	if d.Files["f1"] != "hostname a1b2\n" || len(d.Files) != 1 {
		t.Errorf("stored dataset aliases the caller's map: %+v", d.Files)
	}
}

func TestUploadEnforcesShapeLimits(t *testing.T) {
	s := NewStore()
	s.SetLimits(Limits{MaxFiles: 2, MaxFileBytes: 64, MaxTotalBytes: 100})

	if _, _, problems := s.Upload("too-many", map[string]string{
		"a": "x", "b": "x", "c": "x",
	}); len(problems) == 0 {
		t.Error("file-count cap not enforced")
	}
	if _, _, problems := s.Upload("too-big", map[string]string{
		"a": strings.Repeat("y", 65),
	}); len(problems) == 0 {
		t.Error("per-file cap not enforced")
	}
	if _, _, problems := s.Upload("too-much", map[string]string{
		"a": strings.Repeat("y", 60), "b": strings.Repeat("y", 60),
	}); len(problems) == 0 {
		t.Error("total-bytes cap not enforced")
	}
}

func TestScreenBudgetFailsClosed(t *testing.T) {
	// A dataset that blows the scan budget is rejected, not accepted
	// half-screened.
	clean := "hostname a1b2\ninterface Serial0\n ip address 12.1.1.1 255.255.255.252\n"
	big := map[string]string{"f": strings.Repeat(clean, 100)}
	if problems := ScreenLimited(big, 64); len(problems) == 0 {
		t.Fatal("over-budget dataset accepted")
	} else if !strings.Contains(problems[0], "budget") {
		t.Errorf("unexpected problem: %v", problems)
	}
	if problems := ScreenLimited(big, 0); len(problems) != 0 {
		t.Errorf("unlimited budget rejected a clean dataset: %v", problems)
	}
}

func TestUploadBodyCapReturns413(t *testing.T) {
	s := NewStore()
	s.SetLogger(log.New(io.Discard, "", 0))
	s.SetLimits(Limits{MaxBodyBytes: 256})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(uploadRequest{
		Label: "big",
		Files: map[string]string{"f": strings.Repeat("z", 1024)},
	})
	resp, err := http.Post(srv.URL+"/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestCommentLengthCapReturns413(t *testing.T) {
	s, srv := newTestPortal()
	defer srv.Close()
	l := DefaultLimits()
	l.MaxCommentBytes = 16
	s.SetLimits(l)

	files := anonymizedFiles(t)
	id, tok, problems := s.Upload("d", files)
	if len(problems) != 0 {
		t.Fatal(problems)
	}
	r := postJSON(t, srv.URL+"/datasets/"+id+"/comments",
		commentRequest{Text: strings.Repeat("a", 64), OwnerToken: tok}, nil)
	defer r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", r.StatusCode)
	}
}

func TestOwnerTokenAuth(t *testing.T) {
	s, srv := newTestPortal()
	defer srv.Close()
	files := anonymizedFiles(t)
	id, tok, _ := s.Upload("d", files)

	cases := []struct {
		token string
		want  int
	}{
		{tok, http.StatusOK},
		{tok + "x", http.StatusUnauthorized},
		{"", http.StatusUnauthorized},
	}
	for _, c := range cases {
		r := getWithKey(t, srv.URL+"/datasets/"+id+"/comments?owner_token="+c.token, "")
		if r.StatusCode != c.want {
			t.Errorf("owner_token %q: status %d, want %d", c.token, r.StatusCode, c.want)
		}
		r.Body.Close()
	}
}

func TestTokenEqual(t *testing.T) {
	if tokenEqual("", "") || tokenEqual("", "x") || tokenEqual("x", "") {
		t.Error("empty secrets must never match")
	}
	if !tokenEqual("abc", "abc") || tokenEqual("abc", "abd") {
		t.Error("comparison wrong")
	}
}

func TestNewServerHasTimeouts(t *testing.T) {
	srv := NewServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout == 0 || srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.IdleTimeout == 0 {
		t.Errorf("server leaves a connection phase unbounded: %+v", srv)
	}
}

func TestRunShutsDownGracefully(t *testing.T) {
	srv := NewServer("127.0.0.1:0", http.NewServeMux())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, srv, time.Second) }()
	time.Sleep(50 * time.Millisecond) // let the listener come up
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunSurfacesListenError(t *testing.T) {
	srv := NewServer("256.0.0.1:bad", http.NewServeMux())
	err := Run(context.Background(), srv, time.Second)
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("listen failure not surfaced: %v", err)
	}
}

func TestHandlerSurvivesPanickingRoute(t *testing.T) {
	// End-to-end: a panic inside the portal's own handler chain must
	// come back as a 500, and the server must keep serving afterwards.
	s := NewStore()
	s.SetLogger(log.New(io.Discard, "", 0))
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("GET /explode", func(w http.ResponseWriter, r *http.Request) { panic("kaboom") })
	srv := httptest.NewServer(WithRecovery(s.log(), mux))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/explode")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking route status %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portal dead after panic: %d", resp.StatusCode)
	}
}
