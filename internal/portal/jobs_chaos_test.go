package portal

// Chaos test for the tentpole crash-survivability claim: a portal
// process killed mid-job — on either side of a mapping-ledger commit —
// must, on restart against the same state directory, resume the job and
// publish output byte-identical to a never-killed run.
//
// The kill is a real process death, not a panic: the test re-execs its
// own binary as a helper (TestChaosJobHelper, inert unless the env
// marker is set) that runs a portal store, submits one job, and installs
// a store crash hook calling os.Exit(137) at the Nth occurrence of the
// chosen commit-protocol event. "commit" fires before the commit record
// reaches the OS (the durable state is the previous commit); "committed"
// fires after the fsync (the commit is durable, the in-memory fold never
// happened). Both windows must recover to the identical corpus.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"confanon/internal/jobs"
	"confanon/internal/store"
)

const chaosSalt = "chaos-owner-secret"

// chaosCorpus is big enough that several per-file ledger commits happen
// mid-job, with a shared neighbor address so mapping consistency is
// observable across files.
func chaosCorpus() map[string]string {
	files := make(map[string]string)
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("chaos-r%d-confg", i)
		files[name] = fmt.Sprintf(
			"hostname chaos-r%d\ninterface Serial0\n ip address 12.2.%d.1 255.255.255.0\nrouter bgp 71%d\n neighbor 12.9.9.9 remote-as 702\n neighbor 12.2.%d.7 remote-as 71%d\n",
			i, i, i, i, i)
	}
	return files
}

// TestChaosJobHelper is the subprocess body; without the env marker it
// is a no-op in normal test runs.
func TestChaosJobHelper(t *testing.T) {
	dir := os.Getenv("PORTAL_JOB_CHAOS_DIR")
	if dir == "" {
		t.Skip("helper: only runs re-execed by the chaos test")
	}
	event := os.Getenv("PORTAL_JOB_CHAOS_EVENT")
	crashAt, _ := strconv.Atoi(os.Getenv("PORTAL_JOB_CHAOS_AT"))
	if event != "" && crashAt > 0 {
		n := 0
		store.SetCrashHook(func(e string) {
			if e == event {
				if n++; n == crashAt {
					os.Exit(137) // process death, mid-protocol, no unwinding
				}
			}
		})
		defer store.SetCrashHook(nil)
	}

	s := NewStore()
	s.SetStateDir(filepath.Join(dir, "state"))
	if err := s.StartJobs(jobs.Config{Workers: 1}); err != nil {
		t.Fatalf("helper: StartJobs: %v", err)
	}
	defer s.Close()

	// First run submits; a restarted run finds the persisted id and just
	// waits for the resumed job.
	idFile := filepath.Join(dir, "jobid")
	var id string
	if b, err := os.ReadFile(idFile); err == nil {
		id = string(b)
		if s.jobs.Resumed() == 0 {
			t.Fatal("helper: restart resumed no jobs")
		}
	} else {
		snap, err := s.jobs.Submit(jobs.Spec{
			Owner: ownerKey([]byte(chaosSalt)),
			Label: "chaos",
			Salt:  []byte(chaosSalt),
			Files: chaosCorpus(),
		})
		if err != nil {
			t.Fatalf("helper: Submit: %v", err)
		}
		id = snap.ID
		if err := os.WriteFile(idFile, []byte(id), 0o600); err != nil {
			t.Fatalf("helper: recording job id: %v", err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := s.jobs.Get(id)
		if !ok {
			t.Fatalf("helper: job %s vanished", id)
		}
		if snap.State == jobs.StateDone {
			d, ok := s.Dataset(snap.DatasetID)
			if !ok {
				t.Fatalf("helper: done job's dataset %s missing", snap.DatasetID)
			}
			blob, err := json.Marshal(d.Files)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "result.json"), blob, 0o600); err != nil {
				t.Fatal(err)
			}
			return
		}
		if snap.State.Terminal() {
			t.Fatalf("helper: job finished %q (err %q, problems %v)", snap.State, snap.Err, snap.Problems)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("helper: job never finished")
}

// runChaosHelper re-execs the test binary as the helper. event=""
// means run to completion; otherwise the helper is expected to die with
// exit 137 at the crashAt-th occurrence of the event.
func runChaosHelper(t *testing.T, dir, event string, crashAt int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestChaosJobHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"PORTAL_JOB_CHAOS_DIR="+dir,
		"PORTAL_JOB_CHAOS_EVENT="+event,
		"PORTAL_JOB_CHAOS_AT="+strconv.Itoa(crashAt),
	)
	out, err := cmd.CombinedOutput()
	if event == "" {
		if err != nil {
			t.Fatalf("helper run failed: %v\n%s", err, out)
		}
		return
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 137 {
		t.Fatalf("helper was not killed at %q (err %v):\n%s", event, err, out)
	}
}

func readChaosResult(t *testing.T, dir string) map[string]string {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatalf("reading helper result: %v", err)
	}
	var files map[string]string
	if err := json.Unmarshal(blob, &files); err != nil {
		t.Fatal(err)
	}
	return files
}

// TestChaosJobKilledMidJobRestartsByteIdentical kills the portal
// process mid-job at both sides of a ledger commit and asserts the
// restarted portal resumes the job to output byte-identical with an
// uninterrupted reference run.
func TestChaosJobKilledMidJobRestartsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	refDir := t.TempDir()
	runChaosHelper(t, refDir, "", 0)
	want := readChaosResult(t, refDir)
	if len(want) == 0 {
		t.Fatal("reference run published no files")
	}

	// The 3rd occurrence lands mid-corpus: after some files' mappings
	// committed, before others ran.
	for _, event := range []string{"commit", "committed"} {
		t.Run(event, func(t *testing.T) {
			dir := t.TempDir()
			runChaosHelper(t, dir, event, 3)
			if _, err := os.Stat(filepath.Join(dir, "result.json")); err == nil {
				t.Fatal("killed run left a result; the crash landed after completion, not mid-job")
			}
			// Restart on the same state: the job resumes and completes.
			runChaosHelper(t, dir, "", 0)
			got := readChaosResult(t, dir)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("restarted output differs from uninterrupted run:\nwant %d files %v\ngot  %d files %v",
					len(want), keys(want), len(got), keys(got))
			}
		})
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
