// Package routing reverse-engineers the routing design of a network from
// its parsed configurations, in the manner of the paper's companion work
// ("Routing design in operational networks: A look from the inside",
// SIGCOMM 2004) that the anonymization paper uses as its end-to-end
// validation workload (§5): extracting the design "depends on many aspects
// of the configuration files being consistent inside each file and across
// all the files in the network, including physical topology, routing
// protocol configuration, routing process adjacencies, routing policies,
// and address space utilization".
//
// The extracted Design is summarized by a canonical Signature that is
// invariant under exactly the renamings a correct anonymization performs
// (hostnames hashed, addresses prefix-preservingly mapped, ASNs permuted)
// but sensitive to any structural damage — which is what makes comparing
// pre- and post-anonymization signatures a sharp validation test.
package routing

import (
	"fmt"
	"sort"
	"strings"

	"confanon/internal/config"
)

// ProtoKind is the routing protocol family of a process.
type ProtoKind string

// Protocol kinds.
const (
	OSPF   ProtoKind = "ospf"
	RIP    ProtoKind = "rip"
	EIGRP  ProtoKind = "eigrp"
	BGP    ProtoKind = "bgp"
	Static ProtoKind = "static"
)

// Process is one routing process instance on one router.
type Process struct {
	Router string // hostname
	Kind   ProtoKind
	// Subnets covered by this process (prefix of each interface the
	// process runs over). BGP processes list session subnets instead.
	Subnets []config.Prefix
	// Redistributes lists the protocol kinds this process imports.
	Redistributes []ProtoKind
	// neighbors, filled during adjacency computation.
	adj map[int]bool
}

// Design is the extracted routing design of one network.
type Design struct {
	Processes []*Process
	// Adjacencies are process-index pairs that speak to each other.
	Adjacencies [][2]int
	// Instances are connected components of same-kind adjacency: the
	// "routing instances" of the SIGCOMM'04 model.
	Instances [][]int
	// EBGPSessions counts BGP sessions whose remote AS differs from the
	// local AS, per router (the peering structure of §6.3).
	EBGPSessions map[string]int
}

// Extract builds the design from parsed configurations.
func Extract(configs []*config.Config) *Design {
	d := &Design{EBGPSessions: make(map[string]int)}

	// Ownership maps for adjacency resolution.
	addrOwner := make(map[uint32]int) // interface address -> router index
	type subnetKey struct {
		addr uint32
		len  int
	}
	// Build processes.
	routerBGP := make(map[int]int) // router index -> BGP process index
	subnetMembers := make(map[subnetKey][]int)

	for ri, c := range configs {
		for _, ifc := range c.Interfaces {
			if ifc.HasAddress {
				addrOwner[ifc.Address.Addr] = ri
			}
			for _, sec := range ifc.Secondary {
				addrOwner[sec.Addr] = ri
			}
		}
	}

	addProcess := func(p *Process) int {
		p.adj = make(map[int]bool)
		d.Processes = append(d.Processes, p)
		return len(d.Processes) - 1
	}

	for ri, c := range configs {
		for _, o := range c.OSPF {
			p := &Process{Router: c.Hostname, Kind: OSPF}
			for _, ifc := range interfacesCoveredOSPF(c, o) {
				length, ok := config.MaskToLen(ifc.Address.Mask)
				if !ok {
					continue
				}
				net := ifc.Address.Addr & config.LenToMask(length)
				p.Subnets = append(p.Subnets, config.Prefix{Addr: net, Len: length})
				subnetMembers[subnetKey{net, length}] = append(subnetMembers[subnetKey{net, length}], len(d.Processes))
			}
			p.Redistributes = redistKinds(o.Redistribute)
			addProcess(p)
		}
		if c.RIP != nil {
			p := &Process{Router: c.Hostname, Kind: RIP}
			for _, ifc := range interfacesCoveredClassful(c, c.RIP.Networks) {
				length, ok := config.MaskToLen(ifc.Address.Mask)
				if !ok {
					continue
				}
				net := ifc.Address.Addr & config.LenToMask(length)
				p.Subnets = append(p.Subnets, config.Prefix{Addr: net, Len: length})
				subnetMembers[subnetKey{net, length}] = append(subnetMembers[subnetKey{net, length}], len(d.Processes))
			}
			p.Redistributes = redistKinds(c.RIP.Redistribute)
			addProcess(p)
		}
		for _, e := range c.EIGRP {
			p := &Process{Router: c.Hostname, Kind: EIGRP}
			for _, ifc := range interfacesCoveredClassful(c, e.Networks) {
				length, ok := config.MaskToLen(ifc.Address.Mask)
				if !ok {
					continue
				}
				net := ifc.Address.Addr & config.LenToMask(length)
				p.Subnets = append(p.Subnets, config.Prefix{Addr: net, Len: length})
				subnetMembers[subnetKey{net, length}] = append(subnetMembers[subnetKey{net, length}], len(d.Processes))
			}
			p.Redistributes = redistKinds(e.Redistribute)
			addProcess(p)
		}
		if c.BGP != nil {
			p := &Process{Router: c.Hostname, Kind: BGP}
			p.Redistributes = redistKinds(c.BGP.Redistribute)
			idx := addProcess(p)
			routerBGP[ri] = idx
			for _, nb := range c.BGP.Neighbors {
				if nb.RemoteAS != c.BGP.ASN {
					d.EBGPSessions[c.Hostname]++
				}
			}
		}
	}

	// IGP adjacency: two same-kind processes sharing a subnet.
	for _, members := range subnetMembers {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a == b {
					continue
				}
				if d.Processes[a].Kind == d.Processes[b].Kind {
					d.addAdjacency(a, b)
				}
			}
		}
	}

	// BGP adjacency: a neighbor address owned by another router that
	// also runs BGP.
	for ri, c := range configs {
		if c.BGP == nil {
			continue
		}
		self := routerBGP[ri]
		for _, nb := range c.BGP.Neighbors {
			other, ok := addrOwner[nb.Addr]
			if !ok || other == ri {
				continue
			}
			peer, ok := routerBGP[other]
			if !ok {
				continue
			}
			d.addAdjacency(self, peer)
		}
	}

	d.computeInstances()
	return d
}

func (d *Design) addAdjacency(a, b int) {
	if a > b {
		a, b = b, a
	}
	if d.Processes[a].adj[b] {
		return
	}
	d.Processes[a].adj[b] = true
	d.Processes[b].adj[a] = true
	d.Adjacencies = append(d.Adjacencies, [2]int{a, b})
}

// interfacesCoveredOSPF returns the interfaces whose address matches one
// of the OSPF network statements (address/wildcard match).
func interfacesCoveredOSPF(c *config.Config, o *config.OSPF) []*config.Interface {
	var out []*config.Interface
	for _, ifc := range c.Interfaces {
		if !ifc.HasAddress {
			continue
		}
		for _, n := range o.Networks {
			if ifc.Address.Addr&^n.Wildcard == n.Addr&^n.Wildcard {
				out = append(out, ifc)
				break
			}
		}
	}
	return out
}

// interfacesCoveredClassful returns interfaces covered by classful network
// statements (RIP/EIGRP semantics — the reason anonymization must be
// class preserving).
func interfacesCoveredClassful(c *config.Config, nets []uint32) []*config.Interface {
	var out []*config.Interface
	for _, ifc := range c.Interfaces {
		if !ifc.HasAddress {
			continue
		}
		mask := config.ClassfulMask(ifc.Address.Addr)
		for _, n := range nets {
			if ifc.Address.Addr&mask == n&mask {
				out = append(out, ifc)
				break
			}
		}
	}
	return out
}

func redistKinds(specs []string) []ProtoKind {
	var out []ProtoKind
	for _, s := range specs {
		w := strings.Fields(s)
		if len(w) == 0 {
			continue
		}
		switch w[0] {
		case "ospf":
			out = append(out, OSPF)
		case "rip":
			out = append(out, RIP)
		case "eigrp":
			out = append(out, EIGRP)
		case "bgp":
			out = append(out, BGP)
		case "static", "connected":
			out = append(out, Static)
		}
	}
	return out
}

// computeInstances finds connected components of same-kind adjacency.
func (d *Design) computeInstances() {
	parent := make([]int, len(d.Processes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range d.Adjacencies {
		if d.Processes[e[0]].Kind == d.Processes[e[1]].Kind {
			union(e[0], e[1])
		}
	}
	groups := make(map[int][]int)
	for i := range d.Processes {
		groups[find(i)] = append(groups[find(i)], i)
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		d.Instances = append(d.Instances, groups[k])
	}
}

// Signature canonically summarizes the design so that two designs related
// by a structure-preserving renaming produce equal signatures: per
// instance, the protocol kind, size, sorted degree sequence, and
// subnet-prefix-length histogram; plus the redistribution kind-pairs and
// the sorted eBGP per-router session counts.
func (d *Design) Signature() string {
	var parts []string
	for _, inst := range d.Instances {
		kind := d.Processes[inst[0]].Kind
		var degrees []int
		lenHist := make(map[int]int)
		for _, pi := range inst {
			degrees = append(degrees, len(d.Processes[pi].adj))
			for _, s := range d.Processes[pi].Subnets {
				lenHist[s.Len]++
			}
		}
		sort.Ints(degrees)
		var hist []string
		for l := 0; l <= 32; l++ {
			if lenHist[l] > 0 {
				hist = append(hist, fmt.Sprintf("/%d:%d", l, lenHist[l]))
			}
		}
		parts = append(parts, fmt.Sprintf("%s n=%d deg=%v subnets=%s",
			kind, len(inst), degrees, strings.Join(hist, ",")))
	}
	sort.Strings(parts)

	// Redistribution edges as kind pairs.
	redistCount := make(map[string]int)
	for _, p := range d.Processes {
		for _, from := range p.Redistributes {
			redistCount[string(from)+">"+string(p.Kind)]++
		}
	}
	var redist []string
	for k, v := range redistCount {
		redist = append(redist, fmt.Sprintf("%s:%d", k, v))
	}
	sort.Strings(redist)

	var ebgp []int
	for _, n := range d.EBGPSessions {
		ebgp = append(ebgp, n)
	}
	sort.Ints(ebgp)

	return strings.Join(parts, "\n") +
		"\nredist: " + strings.Join(redist, " ") +
		fmt.Sprintf("\nebgp: %v", ebgp)
}

// Summary reports headline counts for human inspection.
func (d *Design) Summary() string {
	kinds := make(map[ProtoKind]int)
	for _, p := range d.Processes {
		kinds[p.Kind]++
	}
	return fmt.Sprintf("processes=%d instances=%d adjacencies=%d kinds=%v",
		len(d.Processes), len(d.Instances), len(d.Adjacencies), kinds)
}
