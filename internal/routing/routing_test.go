package routing

import (
	"strings"
	"testing"

	"confanon/internal/config"
	"confanon/internal/netgen"
)

// twoRouterTexts builds a minimal two-router network: shared /30, OSPF on
// both, BGP session between loopbacks, RIP redistribution on r1.
func twoRouterTexts() []string {
	r1 := `hostname r1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
!
interface Serial0
 ip address 10.1.0.1 255.255.255.252
!
interface Ethernet0
 ip address 10.2.1.1 255.255.255.0
!
router ospf 1
 network 10.1.0.0 0.0.0.3 area 0
 network 10.0.0.1 0.0.0.0 area 0
 redistribute rip
!
router rip
 network 10.0.0.0
!
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
 neighbor 192.0.2.1 remote-as 701
end
`
	r2 := `hostname r2
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
!
interface Serial0
 ip address 10.1.0.2 255.255.255.252
!
router ospf 1
 network 10.1.0.0 0.0.0.3 area 0
 network 10.0.0.2 0.0.0.0 area 0
!
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
end
`
	return []string{r1, r2}
}

func parseAll(texts []string) []*config.Config {
	var out []*config.Config
	for _, t := range texts {
		out = append(out, config.Parse(t))
	}
	return out
}

func TestExtractTwoRouters(t *testing.T) {
	d := Extract(parseAll(twoRouterTexts()))
	// Processes: r1 ospf, r1 rip, r1 bgp, r2 ospf, r2 bgp.
	if len(d.Processes) != 5 {
		t.Fatalf("processes = %d, want 5: %s", len(d.Processes), d.Summary())
	}
	// OSPF adjacency over the shared /30, BGP adjacency over loopbacks.
	var ospfAdj, bgpAdj int
	for _, e := range d.Adjacencies {
		switch d.Processes[e[0]].Kind {
		case OSPF:
			ospfAdj++
		case BGP:
			bgpAdj++
		}
	}
	if ospfAdj != 1 {
		t.Errorf("ospf adjacencies = %d, want 1", ospfAdj)
	}
	if bgpAdj != 1 {
		t.Errorf("bgp adjacencies = %d, want 1", bgpAdj)
	}
	// eBGP session counted on r1 only.
	if d.EBGPSessions["r1"] != 1 || d.EBGPSessions["r2"] != 0 {
		t.Errorf("ebgp sessions = %v", d.EBGPSessions)
	}
	// Instances: ospf {r1,r2}, bgp {r1,r2}, rip {r1} -> 3.
	if len(d.Instances) != 3 {
		t.Errorf("instances = %d, want 3", len(d.Instances))
	}
	// Redistribution rip->ospf appears in the signature.
	if !strings.Contains(d.Signature(), "rip>ospf:1") {
		t.Errorf("redistribution missing from signature:\n%s", d.Signature())
	}
}

func TestSignatureInvariantUnderRenaming(t *testing.T) {
	texts := twoRouterTexts()
	d1 := Extract(parseAll(texts))
	// Rename hostnames and shift all 10.x addresses (a crude stand-in for
	// anonymization renaming that preserves structure).
	renamed := make([]string, len(texts))
	for i, txt := range texts {
		txt = strings.ReplaceAll(txt, "hostname r", "hostname xabc")
		txt = strings.ReplaceAll(txt, "10.", "11.")
		renamed[i] = txt
	}
	d2 := Extract(parseAll(renamed))
	if d1.Signature() != d2.Signature() {
		t.Errorf("signature not renaming-invariant:\n--- pre ---\n%s\n--- post ---\n%s",
			d1.Signature(), d2.Signature())
	}
}

func TestSignatureSensitiveToStructuralDamage(t *testing.T) {
	texts := twoRouterTexts()
	d1 := Extract(parseAll(texts))
	// Damage: change the /30 on one side only (breaks the shared subnet,
	// as a non-prefix-preserving anonymizer would).
	damaged := []string{
		strings.Replace(texts[0], "10.1.0.1 255.255.255.252", "10.9.9.1 255.255.255.252", 1),
		texts[1],
	}
	d2 := Extract(parseAll(damaged))
	if d1.Signature() == d2.Signature() {
		t.Error("signature failed to detect broken adjacency")
	}
}

func TestExtractGeneratedNetwork(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 17, Kind: netgen.Backbone, Routers: 30})
	var cfgs []*config.Config
	for _, r := range n.Routers {
		cfgs = append(cfgs, config.Parse(r.Config.Render()))
	}
	d := Extract(cfgs)
	if len(d.Processes) < 30 {
		t.Errorf("too few processes: %s", d.Summary())
	}
	// The OSPF backbone should form one large instance.
	biggest := 0
	for _, inst := range d.Instances {
		if d.Processes[inst[0]].Kind == OSPF && len(inst) > biggest {
			biggest = len(inst)
		}
	}
	if biggest < 25 {
		t.Errorf("OSPF backbone fragmented: largest instance %d of 30 routers", biggest)
	}
	// eBGP sessions exist on borders.
	total := 0
	for _, v := range d.EBGPSessions {
		total += v
	}
	if total == 0 {
		t.Error("no eBGP sessions extracted")
	}
}

func TestEmptyDesign(t *testing.T) {
	d := Extract(nil)
	if len(d.Processes) != 0 || len(d.Instances) != 0 {
		t.Errorf("empty input produced processes: %s", d.Summary())
	}
	if d.Signature() == "" {
		t.Error("signature should still render")
	}
}

func TestRedistributionKinds(t *testing.T) {
	text := `hostname r1
interface Ethernet0
 ip address 10.1.1.1 255.255.255.0
!
router ospf 1
 network 10.1.1.0 0.0.0.255 area 0
 redistribute bgp 65000
 redistribute connected
 redistribute static metric 10
 redistribute eigrp 100
 redistribute mystery-protocol
!
router eigrp 100
 network 10.0.0.0
 redistribute ospf 1
end
`
	d := Extract(parseAll([]string{text}))
	sig := d.Signature()
	for _, want := range []string{"bgp>ospf:1", "static>ospf:2", "eigrp>ospf:1", "ospf>eigrp:1"} {
		if !strings.Contains(sig, want) {
			t.Errorf("redistribution %s missing from signature:\n%s", want, sig)
		}
	}
}

func TestBGPNeighborToUnknownRouter(t *testing.T) {
	// Sessions to addresses outside the config set (external peers) form
	// no adjacency but do count as eBGP when the AS differs.
	text := `hostname r1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
router bgp 65000
 neighbor 192.0.2.1 remote-as 701
 neighbor 192.0.2.2 remote-as 65000
end
`
	d := Extract(parseAll([]string{text}))
	if len(d.Adjacencies) != 0 {
		t.Errorf("phantom adjacency: %v", d.Adjacencies)
	}
	if d.EBGPSessions["r1"] != 1 {
		t.Errorf("ebgp = %v", d.EBGPSessions)
	}
}

func TestSecondaryAddressOwnership(t *testing.T) {
	// BGP adjacency resolves via a secondary address too.
	r1 := `hostname r1
interface Ethernet0
 ip address 10.1.1.1 255.255.255.0
 ip address 10.2.2.1 255.255.255.0 secondary
router bgp 65000
 neighbor 10.9.9.9 remote-as 65000
end
`
	r2 := `hostname r2
interface Loopback0
 ip address 10.9.9.9 255.255.255.255
router bgp 65000
 neighbor 10.2.2.1 remote-as 65000
end
`
	d := Extract(parseAll([]string{r1, r2}))
	bgpAdj := 0
	for _, e := range d.Adjacencies {
		if d.Processes[e[0]].Kind == BGP {
			bgpAdj++
		}
	}
	if bgpAdj != 1 {
		t.Errorf("bgp adjacencies = %d, want 1 (secondary address ownership)", bgpAdj)
	}
}

func TestDiscontiguousMaskSkipped(t *testing.T) {
	text := `hostname r1
interface Ethernet0
 ip address 10.1.1.1 255.0.255.0
router rip
 network 10.0.0.0
end
`
	d := Extract(parseAll([]string{text}))
	// The discontiguous mask cannot form a subnet; no panic, and the RIP
	// process simply covers no subnets... except classful coverage still
	// matches the interface by class. Either way the extractor is stable.
	if len(d.Processes) != 1 {
		t.Errorf("processes = %d", len(d.Processes))
	}
	_ = d.Signature()
}
