// Package asn implements anonymization of BGP Autonomous System Numbers.
//
// The 16-bit ASN space of BGPv4 divides into a public range (1–64511),
// whose assignments are globally unique and publicly mapped to network
// owners, and a private range (64512–65535), which carries no identity
// information. Following the paper (§4.4), public ASNs are anonymized with
// a random permutation of the public range ("there are no semantics and no
// relationships embedded in public ASNs, so a random permutation can be
// used") while private ASNs pass through unchanged.
//
// The permutation is keyed by a salt so that a network owner can reproduce
// the mapping across anonymization runs without storing a table: it is a
// four-round Feistel network over the 16-bit space with SHA-1 round
// functions, restricted to the public range by cycle-walking. Because the
// construction is an actual permutation, regexp rewriting (internal/cregex)
// can rely on it being a bijection, and the inverse is available for
// validation.
package asn

import (
	"crypto/sha1"
	"encoding/binary"
	"sync/atomic"
)

// Range boundaries of the 16-bit ASN space.
const (
	// PublicMin and PublicMax bound the globally unique, identity-leaking
	// public range.
	PublicMin = 1
	PublicMax = 64511
	// PrivateMin and PrivateMax bound the private-use range, which is not
	// anonymized.
	PrivateMin = 64512
	PrivateMax = 65535
)

// IsPublic reports whether a is a public ASN (and therefore must be
// anonymized).
func IsPublic(a uint32) bool { return a >= PublicMin && a <= PublicMax }

// IsPrivate reports whether a is a private-use ASN.
func IsPrivate(a uint32) bool { return a >= PrivateMin && a <= PrivateMax }

// Perm is a salt-keyed random permutation of the public ASN range. The
// zero value is usable and corresponds to an empty salt; construct with
// New to supply a salt.
type Perm struct {
	keys [4][20]byte
	// walks counts cycle-walking steps in Map: Feistel images that fell
	// outside the public range and were permuted again. Atomic so Map
	// stays safe for concurrent use.
	walks atomic.Int64
}

// New derives a permutation from the owner-chosen secret salt.
func New(salt []byte) *Perm {
	p := &Perm{}
	for r := 0; r < 4; r++ {
		p.keys[r] = sha1.Sum(append([]byte{byte(r), 'a', 's', 'n'}, salt...))
	}
	return p
}

// round is the Feistel round function: an 8-bit PRF of an 8-bit half.
func (p *Perm) round(r int, half byte) byte {
	var buf [21]byte
	copy(buf[:20], p.keys[r][:])
	buf[20] = half
	h := sha1.Sum(buf[:])
	return h[0]
}

// feistel applies the 4-round Feistel permutation of the full 16-bit space.
func (p *Perm) feistel(v uint16) uint16 {
	l, r := byte(v>>8), byte(v)
	for i := 0; i < 4; i++ {
		l, r = r, l^p.round(i, r)
	}
	return uint16(l)<<8 | uint16(r)
}

// unfeistel inverts feistel.
func (p *Perm) unfeistel(v uint16) uint16 {
	l, r := byte(v>>8), byte(v)
	for i := 3; i >= 0; i-- {
		l, r = r^p.round(i, l), l
	}
	return uint16(l)<<8 | uint16(r)
}

// Map anonymizes one ASN: public ASNs go through the keyed permutation of
// the public range (cycle-walking the 16-bit Feistel permutation until it
// lands back in the public range, which preserves bijectivity on the
// subset); private ASNs and values outside the 16-bit ASN space are
// returned unchanged.
func (p *Perm) Map(a uint32) uint32 {
	if !IsPublic(a) {
		return a
	}
	v := p.feistel(uint16(a))
	for !IsPublic(uint32(v)) {
		v = p.feistel(v)
		p.walks.Add(1)
	}
	return uint32(v)
}

// CycleWalks reports how many cycle-walking steps Map has taken so far
// (diagnostic: the expected rate is (65536-64511)/65536 ≈ 1.6% of maps).
func (p *Perm) CycleWalks() int64 { return p.walks.Load() }

// Inverse undoes Map; it exists so the validation suites can check
// round-trip properties.
func (p *Perm) Inverse(a uint32) uint32 {
	if !IsPublic(a) {
		return a
	}
	v := p.unfeistel(uint16(a))
	for !IsPublic(uint32(v)) {
		v = p.unfeistel(v)
	}
	return uint32(v)
}

// ValuePerm is a keyed permutation of the 16-bit value half of BGP
// community attributes. The paper (§4.5) concludes that "even the integer
// part of the attributes ... must also be anonymized", accepting the
// information loss in favor of anonymity. A full 16-bit Feistel
// permutation (no restricted range) is used.
type ValuePerm struct {
	inner *Perm
}

// NewValuePerm derives a community-value permutation from the salt. The
// derivation is domain-separated from the ASN permutation so the two
// mappings are independent.
func NewValuePerm(salt []byte) *ValuePerm {
	return &ValuePerm{inner: New(append([]byte("community-value/"), salt...))}
}

// Map permutes a 16-bit community value. Values outside 16 bits are
// returned unchanged.
func (v *ValuePerm) Map(x uint32) uint32 {
	if x > 0xFFFF {
		return x
	}
	return uint32(v.inner.feistel(uint16(x)))
}

// Inverse undoes Map.
func (v *ValuePerm) Inverse(x uint32) uint32 {
	if x > 0xFFFF {
		return x
	}
	return uint32(v.inner.unfeistel(uint16(x)))
}

// MapCommunity anonymizes a community attribute asn:value using the ASN
// permutation for the left half and the value permutation for the right
// half.
func MapCommunity(p *Perm, vp *ValuePerm, asnHalf, value uint32) (uint32, uint32) {
	return p.Map(asnHalf), vp.Map(value)
}

// Salted is a convenience bundle of the two permutations a single
// anonymization run needs.
type Salted struct {
	ASN   *Perm
	Value *ValuePerm
}

// NewSalted derives both permutations from one salt.
func NewSalted(salt []byte) Salted {
	return Salted{ASN: New(salt), Value: NewValuePerm(salt)}
}

// fingerprint is used by tests and tooling to identify a permutation
// without revealing the salt.
func (p *Perm) fingerprint() uint32 {
	var buf [8]byte
	binary.BigEndian.PutUint16(buf[:2], p.feistel(0x0001))
	binary.BigEndian.PutUint16(buf[2:4], p.feistel(0x0100))
	binary.BigEndian.PutUint16(buf[4:6], p.feistel(0xABCD))
	binary.BigEndian.PutUint16(buf[6:8], p.feistel(0xFFFF))
	h := sha1.Sum(buf[:])
	return binary.BigEndian.Uint32(h[:4])
}

// Fingerprint exposes a stable, salt-hiding identifier for diagnostics.
func (p *Perm) Fingerprint() uint32 { return p.fingerprint() }
