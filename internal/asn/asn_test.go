package asn

import (
	"testing"
	"testing/quick"
)

func TestRanges(t *testing.T) {
	if !IsPublic(1) || !IsPublic(701) || !IsPublic(64511) {
		t.Error("public range misclassified")
	}
	if IsPublic(0) || IsPublic(64512) || IsPublic(70000) {
		t.Error("non-public classified public")
	}
	if !IsPrivate(64512) || !IsPrivate(65535) {
		t.Error("private range misclassified")
	}
	if IsPrivate(64511) || IsPrivate(65536) {
		t.Error("non-private classified private")
	}
}

func TestMapIsBijectionOnPublicRange(t *testing.T) {
	p := New([]byte("salt"))
	seen := make([]bool, PublicMax+1)
	for a := uint32(PublicMin); a <= PublicMax; a++ {
		m := p.Map(a)
		if !IsPublic(m) {
			t.Fatalf("Map(%d) = %d outside public range", a, m)
		}
		if seen[m] {
			t.Fatalf("Map not injective at %d -> %d", a, m)
		}
		seen[m] = true
	}
}

func TestInverseRoundTrip(t *testing.T) {
	p := New([]byte("salt2"))
	f := func(a uint16) bool {
		v := uint32(a)
		return p.Inverse(p.Map(v)) == v && p.Map(p.Inverse(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPrivatePassthrough(t *testing.T) {
	p := New([]byte("x"))
	for _, a := range []uint32{0, 64512, 65000, 65535, 65536, 100000} {
		if p.Map(a) != a {
			t.Errorf("Map(%d) = %d, want passthrough", a, p.Map(a))
		}
	}
}

func TestDeterministicAndSaltSensitive(t *testing.T) {
	p1 := New([]byte("a"))
	p2 := New([]byte("a"))
	p3 := New([]byte("b"))
	diff := 0
	for _, a := range []uint32{1, 701, 1239, 7018, 64511} {
		if p1.Map(a) != p2.Map(a) {
			t.Errorf("same salt maps %d differently", a)
		}
		if p1.Map(a) != p3.Map(a) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different salts produced identical permutations")
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprints differ for same salt")
	}
	if p1.Fingerprint() == p3.Fingerprint() {
		t.Error("fingerprints equal for different salts")
	}
}

func TestMapActuallyPermutes(t *testing.T) {
	p := New([]byte("move"))
	moved := 0
	for a := uint32(700); a < 800; a++ {
		if p.Map(a) != a {
			moved++
		}
	}
	if moved < 90 {
		t.Errorf("only %d/100 ASNs moved; permutation looks degenerate", moved)
	}
}

func TestValuePermBijection(t *testing.T) {
	vp := NewValuePerm([]byte("s"))
	f := func(x uint16) bool {
		v := uint32(x)
		return vp.Inverse(vp.Map(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if vp.Map(70000) != 70000 {
		t.Error("out-of-range value not passed through")
	}
}

func TestValuePermIndependentOfASNPerm(t *testing.T) {
	s := NewSalted([]byte("shared"))
	same := 0
	for x := uint32(1); x < 2000; x++ {
		if s.ASN.Map(x) == s.Value.Map(x) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("ASN and value permutations agree on %d/2000 points; not independent", same)
	}
}

func TestMapCommunity(t *testing.T) {
	s := NewSalted([]byte("c"))
	a, v := MapCommunity(s.ASN, s.Value, 701, 7100)
	if a == 701 && v == 7100 {
		t.Error("community unchanged")
	}
	if !IsPublic(a) {
		t.Errorf("community ASN half %d left public range", a)
	}
	// Private ASN half passes through; value half still permuted.
	a2, _ := MapCommunity(s.ASN, s.Value, 65001, 42)
	if a2 != 65001 {
		t.Errorf("private community ASN half changed: %d", a2)
	}
}

func BenchmarkPermMap(b *testing.B) {
	p := New([]byte("bench"))
	for i := 0; i < b.N; i++ {
		p.Map(uint32(i%64511) + 1)
	}
}
