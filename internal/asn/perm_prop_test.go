package asn

import (
	"fmt"
	"math/rand"
	"testing"

	"confanon/internal/cregex"
)

// This file checks the §4.4 permutation contract exhaustively rather
// than by example: the public range is a bijection, the private range
// is pointwise fixed, and regexp rewriting maps a pattern's language
// exactly through the permutation (verified differentially against the
// cregex DFA).

// TestPermPublicBijection walks the entire public range: every image is
// public, no two inputs share an image, and Inverse undoes Map.
func TestPermPublicBijection(t *testing.T) {
	p := New([]byte("perm-prop"))
	var seen [PublicMax + 1]bool
	for a := uint32(PublicMin); a <= PublicMax; a++ {
		m := p.Map(a)
		if !IsPublic(m) {
			t.Fatalf("Map(%d) = %d, outside the public range", a, m)
		}
		if seen[m] {
			t.Fatalf("Map(%d) = %d collides with an earlier image", a, m)
		}
		seen[m] = true
		if inv := p.Inverse(m); inv != a {
			t.Fatalf("Inverse(Map(%d)) = %d", a, inv)
		}
	}
	if p.CycleWalks() == 0 {
		t.Error("no cycle walks over the full public range; expected ≈1.6% of maps to walk")
	}
}

// TestPermPrivateFixedPoints: every private ASN, and every value beyond
// the 16-bit space, is a fixed point.
func TestPermPrivateFixedPoints(t *testing.T) {
	p := New([]byte("perm-prop"))
	for a := uint32(PrivateMin); a <= PrivateMax; a++ {
		if m := p.Map(a); m != a {
			t.Fatalf("private Map(%d) = %d, want fixed point", a, m)
		}
	}
	for _, a := range []uint32{0, 65536, 1 << 20, 4200000000} {
		if m := p.Map(a); m != a {
			t.Fatalf("out-of-space Map(%d) = %d, want fixed point", a, m)
		}
	}
}

// permImage maps a language elementwise through the permutation, sorted.
func permImage(p *Perm, lang []uint32) []uint32 {
	out := make([]uint32, len(lang))
	for i, v := range lang {
		out[i] = p.Map(v)
	}
	for i := 1; i < len(out); i++ { // insertion sort; languages are small here
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkRewrite asserts L(rewritten) == perm(L(original)) by compiling
// both patterns to their DFA languages over the 16-bit universe.
func checkRewrite(t *testing.T, p *Perm, pattern string) {
	t.Helper()
	res, err := cregex.RewriteASN(pattern, p.Map, cregex.Alternation)
	if err != nil {
		t.Fatalf("RewriteASN(%q): %v", pattern, err)
	}
	orig, err := cregex.Parse(pattern)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pattern, err)
	}
	got, err := cregex.Parse(res.Pattern)
	if err != nil {
		t.Fatalf("Parse(rewritten %q): %v", res.Pattern, err)
	}
	want := permImage(p, orig.Language())
	if !equalU32(got.Language(), want) {
		t.Fatalf("pattern %q rewritten to %q: language is not the permuted image (%d vs %d members)",
			pattern, res.Pattern, len(got.Language()), len(want))
	}
}

// TestRewritePreservesLanguageTable: representative as-path patterns —
// anchored literals, alternations, ranges mixing public and private
// ASNs — rewrite to exactly the permuted language.
func TestRewritePreservesLanguageTable(t *testing.T) {
	p := New([]byte("perm-prop"))
	for _, pattern := range []string{
		"^701$",
		"701",
		"(701|1239|3561)",
		"^(64512|701)$",
		"^(701|7018)$",
		"(64512|64513)",
	} {
		checkRewrite(t, p, pattern)
	}
}

// TestRewritePreservesLanguageRandom: 300 random alternation patterns
// over mixed public/private ASNs, each checked against the DFA of its
// rewritten form — the randomized counterpart of the table above.
func TestRewritePreservesLanguageRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("DFA language extraction over many random patterns")
	}
	p := New([]byte("perm-prop-rand"))
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 300; c++ {
		n := 1 + rng.Intn(5)
		pat := "^("
		for i := 0; i < n; i++ {
			if i > 0 {
				pat += "|"
			}
			// Mostly public ASNs, occasionally private.
			v := uint32(1 + rng.Intn(PublicMax))
			if rng.Intn(8) == 0 {
				v = PrivateMin + uint32(rng.Intn(PrivateMax-PrivateMin+1))
			}
			pat += fmt.Sprint(v)
		}
		pat += ")$"
		checkRewrite(t, p, pat)
	}
}
