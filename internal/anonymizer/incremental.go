package anonymizer

import (
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Incremental re-anonymization support: the engine can record, per input
// line, everything a later run needs to resume a file mid-way — the
// output the line contributed, whether it was dropped, and the
// cross-line state (banner, block comment, block context) after it.
// A later run whose file shares a prefix of identical lines replays the
// cached outputs for the prefix and re-enters the engine at the first
// divergent line with the checkpointed state, producing output
// byte-identical to reprocessing the whole file (the prefix's state
// depends only on the prefix's lines, which are unchanged; the mapping
// of any address in the prefix is already resolved in the shared tree).

// ResumeState is the serializable image of the engine's cross-line
// fileState: the checkpoint a line cache stores after every line.
type ResumeState struct {
	InBanner       bool   `json:"b,omitempty"`
	BannerDelim    byte   `json:"bd,omitempty"`
	InBlockComment bool   `json:"bc,omitempty"`
	Block          string `json:"blk,omitempty"`
}

func exportState(st *fileState) ResumeState {
	return ResumeState{
		InBanner:       st.inBanner,
		BannerDelim:    st.bannerDelim,
		InBlockComment: st.inBlockComment,
		Block:          st.block,
	}
}

func importState(rs ResumeState) *fileState {
	return &fileState{
		inBanner:       rs.InBanner,
		bannerDelim:    rs.BannerDelim,
		inBlockComment: rs.InBlockComment,
		block:          rs.Block,
	}
}

// LineRecord is one line's entry in the incremental cache: the input
// line's content hash, the output it contributed (absent for a dropped
// line), and the resume checkpoint after it.
type LineRecord struct {
	Hash string
	Out  string
	Drop bool
	Next ResumeState
}

// LineHash returns the content hash the incremental differ compares
// lines by (FNV-64a; a cache hit on a colliding line would reuse a stale
// output, at odds of ~2^-64 per line against non-adversarial edits).
func LineHash(line string) string {
	h := fnv.New64a()
	h.Write([]byte(line))
	return strconv.FormatUint(h.Sum64(), 16)
}

// SplitLines splits file text exactly the way the engine iterates it:
// on newlines, with the empty artifact after a trailing newline dropped.
func SplitLines(text string) []string {
	lines := strings.Split(text, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	return lines
}

// JoinOutputs assembles kept output lines into file text (the inverse of
// the engine's emit sequence, shared by the full and resumed paths).
func JoinOutputs(outs []string) string {
	return strings.Join(outs, "\n") + "\n"
}

// runLinesRecorded drives lines through the per-line pipeline starting
// at line number startLine (the count of lines already handled) with the
// given cross-line state, recording each line's outcome. It carries
// runFile's per-file bookkeeping: the file counter, stage timing, and
// the boundary flush.
func (a *Anonymizer) runLinesRecorded(lines []string, startLine int, st *fileState) (outs []string, recs []LineRecord) {
	a.stats.Files++
	a.curLine = startLine
	start := time.Now()
	outs = make([]string, 0, len(lines))
	recs = make([]LineRecord, 0, len(lines))
	for _, line := range lines {
		res, keep := a.runLine(line, st)
		rec := LineRecord{Hash: LineHash(line), Drop: !keep, Next: exportState(st)}
		if keep {
			rec.Out = res
			outs = append(outs, res)
		}
		recs = append(recs, rec)
	}
	a.curLine = 0
	a.observeStage(stageRewrite, time.Since(start))
	a.flush()
	return outs, recs
}

// SafeAnonymizeRecorded anonymizes one whole file like SafeAnonymizeText
// — same prescan, fault recovery, tracing, and ledger commit — and
// additionally returns the per-line records an incremental re-run diffs
// against. The output equals SafeAnonymizeText's on the same text.
func (a *Anonymizer) SafeAnonymizeRecorded(name, text string) (out string, recs []LineRecord, ferr *FileError) {
	snap := a.stats.Clone()
	defer a.recoverFile(name, snap, &ferr)
	a.curFile, a.curLine = name, 0
	a.beginFileSpan(name, "rewrite")
	a.Prescan(text)
	var outs []string
	outs, recs = a.runLinesRecorded(SplitLines(text), 0, &fileState{})
	out = JoinOutputs(outs)
	a.endFileSpan()
	a.sess.commitLedger()
	return out, recs, nil
}

// SafeAnonymizeTail resumes a file at the first divergent line: tail is
// the un-reused suffix of the file's lines, startLine the count of reused
// prefix lines (so fault line numbers stay file-absolute), and rs the
// checkpoint recorded after the last reused line. No prescan runs — the
// caller's census/replay (shaped tree) or the salt-pure mapping
// (stateless) has already resolved every address the tail can reference.
// The returned outs are only the tail's contributions; the caller
// prepends the cached prefix outputs.
func (a *Anonymizer) SafeAnonymizeTail(name string, tail []string, startLine int, rs ResumeState) (outs []string, recs []LineRecord, ferr *FileError) {
	snap := a.stats.Clone()
	defer a.recoverFile(name, snap, &ferr)
	a.curFile, a.curLine = name, startLine
	a.beginFileSpan(name, "rewrite-tail")
	outs, recs = a.runLinesRecorded(tail, startLine, importState(rs))
	a.endFileSpan()
	a.sess.commitLedger()
	return outs, recs, nil
}
