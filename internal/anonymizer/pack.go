package anonymizer

import (
	_ "embed"
	"fmt"

	"confanon/internal/rulepack"
	"confanon/internal/token"
	"confanon/internal/trace"
)

// The pack compiler: the one path every rule — built-in or user-supplied
// — takes into a Program's dispatch tables. The built-in inventory is
// itself expressed as an embedded canonical pack (builtin_pack.json):
// the pack document owns each entry's identity, trigger keys, taxonomy
// binding, and order, while the Go code owns only the apply functions,
// looked up by entry name. Loading a user pack therefore exercises
// exactly the machinery the built-ins are built with — there is no
// second, less-tested code path for "external" rules.

//go:embed builtin_pack.json
var builtinPackJSON []byte

// builtinPack is the parsed canonical inventory. Parsed once at init;
// a malformed embedded pack is a build defect, hence the panic.
var builtinPack = func() *rulepack.Pack {
	p, err := rulepack.Parse(builtinPackJSON)
	if err != nil {
		panic("anonymizer: embedded builtin pack invalid: " + err.Error())
	}
	return p
}()

// BuiltinPack returns the canonical built-in inventory as a pack
// (callers must treat it as read-only).
func BuiltinPack() *rulepack.Pack { return builtinPack }

// builtinEntry is the engine half of one built-in line rule: the apply
// function and the taxonomy rule it hits. The trigger keys live in the
// pack document, not here.
type builtinEntry struct {
	id    RuleID
	apply applyFn
}

// builtinEntries indexes the line-scoped apply functions by entry name.
// Assembled lazily from the per-class group slices (rules_comment.go,
// names.go, junos.go, rules_asn.go) the first time a rule set compiles.
var builtinEntries = func() map[string]*builtinEntry {
	m := make(map[string]*builtinEntry)
	for _, group := range [][]*lineRule{
		commentLineRules, miscLineRules, nameLineRules, junosLineRules, asnLineRules,
	} {
		for _, r := range group {
			if r.name == "" || r.apply == nil {
				panic("anonymizer: malformed builtin entry " + r.name)
			}
			if _, dup := m[r.name]; dup {
				panic("anonymizer: duplicate builtin entry " + r.name)
			}
			m[r.name] = &builtinEntry{id: r.id, apply: r.apply}
		}
	}
	return m
}()

// builtinStages names the engine-stage built-ins: rules whose
// implementation is wired into the engine pipeline itself (structural
// cross-line state, the generic token pass, the leak scan) rather than
// dispatched from a table. They appear in the canonical pack so the
// document describes the complete inventory, but compiling them
// produces no dispatch entries — and user packs cannot reference them,
// because a stage cannot be instantiated twice.
var builtinStages = map[string]RuleID{
	"banner-body":    RuleBanner,
	"junos-comments": RuleCommentLine,
	"segment-alpha":  RuleSegmentAlpha,
	"segment-words":  RuleSegmentWords,
	"addr-netmask":   RuleAddrNetmask,
	"addr-wildcard":  RuleAddrWildcard,
	"bare-addr":      RuleBareAddr,
	"slash-prefix":   RuleSlashPrefix,
	"classful-net":   RuleClassfulNet,
	"bare-community": RuleBareCommunity,
	"leak-highlight": RuleLeakHighlight,
}

// tokenRule is one compiled declarative token rule: it fires inside the
// generic word pass, on cores that are not IP/prefix/community shaped.
type tokenRule struct {
	id     RuleID
	m      *rulepack.Match
	action string
}

// reportRule is one compiled declarative report rule: it fires inside
// LeakReport and can only add findings (strengthening strict gating).
type reportRule struct {
	id   RuleID
	pack string
	m    *rulepack.Match
}

// ruleSet is a Program's compiled rule inventory: the line dispatch
// tables plus the declarative token and report rules, and the identity
// of every pack that contributed.
type ruleSet struct {
	keyed   map[string][]*lineRule
	unkeyed []*lineRule
	token   []*tokenRule
	report  []*reportRule
	packs   []rulepack.Meta
}

// compileRuleSet merges the built-in pack with the user packs into one
// dispatch inventory. User-pack line rules are ordered ahead of the
// built-ins (pack load order among themselves), so a pack rule always
// observes the original tokenized line; because declarative line rules
// rewrite in place and decline — or drop the line outright — instead of
// consuming it, the built-in dispatch and the generic pass still run
// afterwards, which is what keeps a loaded pack unable to weaken the
// built-in coverage. A rule ID appearing in two merged packs is a
// conflict, not an override.
//
// register controls whether new taxonomy entries are installed in the
// global rule registry (Compile) or only checked for conflicts
// (CheckPack / confvalidate).
func compileRuleSet(userPacks []*rulepack.Pack, register bool) (*ruleSet, error) {
	rs := &ruleSet{keyed: make(map[string][]*lineRule)}
	ids := make(map[string]string) // rule id → pack name
	var line []*lineRule

	packs := make([]*rulepack.Pack, 0, len(userPacks)+1)
	packs = append(packs, userPacks...)
	packs = append(packs, builtinPack)

	builtinSeen := make(map[string]bool)
	for _, p := range packs {
		isBuiltin := p == builtinPack
		for i := range p.Rules {
			r := &p.Rules[i]
			if prev, dup := ids[r.ID]; dup {
				return nil, fmt.Errorf("anonymizer: rule %q defined by both pack %s and pack %s", r.ID, prev, p.Name)
			}
			ids[r.ID] = p.Name

			if r.Builtin != "" {
				if stage, ok := builtinStages[r.Builtin]; ok {
					if !isBuiltin {
						return nil, fmt.Errorf("anonymizer: pack %s rule %q: builtin %q is an engine stage and cannot be referenced by a user pack", p.Name, r.ID, r.Builtin)
					}
					if builtinSeen[r.Builtin] {
						return nil, fmt.Errorf("anonymizer: builtin pack references stage %q twice", r.Builtin)
					}
					builtinSeen[r.Builtin] = true
					if r.RuleID != string(stage) {
						return nil, fmt.Errorf("anonymizer: builtin pack stage %q binds rule_id %q, engine expects %q", r.Builtin, r.RuleID, stage)
					}
					continue
				}
				e, ok := builtinEntries[r.Builtin]
				if !ok {
					return nil, fmt.Errorf("anonymizer: pack %s rule %q references unknown builtin %q", p.Name, r.ID, r.Builtin)
				}
				if isBuiltin {
					if builtinSeen[r.Builtin] {
						return nil, fmt.Errorf("anonymizer: builtin pack references entry %q twice", r.Builtin)
					}
					builtinSeen[r.Builtin] = true
					if r.RuleID != string(e.id) {
						return nil, fmt.Errorf("anonymizer: builtin pack entry %q binds rule_id %q, engine expects %q", r.Builtin, r.RuleID, e.id)
					}
				}
				if r.Scope != rulepack.ScopeLine {
					return nil, fmt.Errorf("anonymizer: pack %s rule %q: builtin %q is line-scoped, rule declares scope %q", p.Name, r.ID, r.Builtin, r.Scope)
				}
				line = append(line, &lineRule{id: e.id, name: r.ID, keys: r.Keys, apply: e.apply})
				continue
			}

			// Declarative rule: resolve its taxonomy identity, then compile
			// the scope-specific artifact.
			id, err := resolveRuleID(r, register)
			if err != nil {
				return nil, fmt.Errorf("anonymizer: pack %s rule %q: %v", p.Name, r.ID, err)
			}
			switch r.Scope {
			case rulepack.ScopeLine:
				line = append(line, compileLineRule(r, id))
			case rulepack.ScopeToken:
				rs.token = append(rs.token, &tokenRule{id: id, m: r.Match, action: r.Action})
			case rulepack.ScopeReport:
				rs.report = append(rs.report, &reportRule{id: id, pack: p.Name, m: r.Match})
			default:
				return nil, fmt.Errorf("anonymizer: pack %s rule %q: scope %q has no declarative form", p.Name, r.ID, r.Scope)
			}
		}
		rs.packs = append(rs.packs, p.Meta())
	}

	// Pack/code drift guard: the canonical pack must reference every
	// engine entry and stage exactly once — an apply function with no
	// pack entry would be unreachable, silently.
	for name := range builtinEntries {
		if !builtinSeen[name] {
			return nil, fmt.Errorf("anonymizer: builtin pack is missing entry %q", name)
		}
	}
	for name := range builtinStages {
		if !builtinSeen[name] {
			return nil, fmt.Errorf("anonymizer: builtin pack is missing stage %q", name)
		}
	}

	for i, r := range line {
		r.seq = i
		if len(r.keys) == 0 {
			rs.unkeyed = append(rs.unkeyed, r)
			continue
		}
		for _, k := range r.keys {
			rs.keyed[k] = append(rs.keyed[k], r)
		}
	}
	return rs, nil
}

// resolveRuleID maps a declarative pack rule onto the registry: a rule
// that names an existing taxonomy entry via rule_id counts there; a
// rule without one registers (or dry-run checks) its own entry.
func resolveRuleID(r *rulepack.Rule, register bool) (RuleID, error) {
	if r.RuleID != "" {
		id := RuleID(r.RuleID)
		if _, ok := lookupRule(id); !ok {
			return "", fmt.Errorf("rule_id %q does not name a registered rule", r.RuleID)
		}
		return id, nil
	}
	info := RuleInfo{ID: RuleID(r.ID), Class: Class(r.Class), Scope: Scope(r.Scope), Doc: r.Doc}
	var err error
	if register {
		err = registerRule(info)
	} else {
		err = checkRule(info)
	}
	if err != nil {
		return "", err
	}
	return info.ID, nil
}

// compileLineRule builds the dispatch entry for one declarative line
// rule. The entry locates its target words — everything after a match
// word, every pattern-matching word, or every word after the key — and
// rewrites their punctuation-stripped cores in place with the declared
// action, then DECLINES the line (drop-line excepted), so the built-in
// dispatch and the generic pass still see it. Rewritten values are
// shielded from further rewriting for the rest of the line; IP- and
// prefix-shaped cores are left for the structure-preserving IP rules.
func compileLineRule(r *rulepack.Rule, id RuleID) *lineRule {
	action := r.Action
	m := r.Match
	return &lineRule{id: id, name: r.ID, keys: r.Keys,
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			start := 1
			if m != nil && m.Word != "" {
				start = -1
				for i := 1; i < len(c.words); i++ {
					if jwCore(c.words, i) == m.Word {
						start = i + 1
						break
					}
				}
				if start < 0 {
					return "", false, false
				}
			}
			var targets []int
			for i := start; i < len(c.words); i++ {
				cv := jwCore(c.words, i)
				if cv == "" {
					continue
				}
				if m != nil && m.Pattern != "" && !m.MatchToken(cv) {
					continue
				}
				if action != "drop-line" {
					if _, ok := token.ParseIPv4(cv); ok {
						continue
					}
					if _, _, ok := token.ParseIPv4Prefix(cv); ok {
						continue
					}
				}
				targets = append(targets, i)
			}
			if len(targets) == 0 {
				// Keyed rule with no pattern and nothing after the key, or
				// no word matched the pattern: decline untouched.
				if action == "drop-line" && (m == nil || m.Pattern == "") {
					a.hit(id)
					return "", false, true
				}
				return "", false, false
			}
			a.hit(id)
			if action == "drop-line" {
				return "", false, true
			}
			for _, i := range targets {
				out := a.applyPackAction(action, jwCore(c.words, i))
				jwSetCore(c.words, i, out)
				a.shield(out)
			}
			return "", false, false
		}}
}

// applyPackAction rewrites one core with a declarative action. Every
// action anonymizes: the originals are recorded in the leak recorder
// (via forceHash / hashAllSegments / mapMACToken), so a value a pack
// rewrote here is still flagged if it survives elsewhere.
func (a *Anonymizer) applyPackAction(action, cv string) string {
	switch action {
	case "hash":
		return a.forceHash(cv)
	case "hash-segments":
		return a.hashAllSegments(cv)
	case "digits":
		return a.hashPackDigits(cv)
	case "mac":
		return a.mapMACToken(cv)
	}
	// rulepack validation admits no other action.
	return a.forceHash(cv)
}

// hashPackDigits maps a digit-bearing token to another of the same
// shape (the dialer-string treatment, exposed to packs).
func (a *Anonymizer) hashPackDigits(cv string) string {
	a.stats.TokensHashed++
	a.seenWords[cv] = true
	out := hashDigits(a.opts.Salt, cv)
	if a.tracer != nil {
		a.decide(trace.ClassHashed, out)
	}
	return out
}

// shield marks a value produced by a pack line rule as finished for the
// current line: the generic pass passes it through instead of hashing
// the replacement again (which would, for a MAC, destroy the shape the
// action just preserved). The shield is per-line and by value; it is
// only ever populated when a pack rule fired, so the unloaded-pack hot
// path never allocates it.
func (a *Anonymizer) shield(v string) {
	if a.lineShield == nil {
		a.lineShield = make(map[string]bool, 4)
	}
	a.lineShield[v] = true
}

// applyTokenRules runs the declarative token rules over one core inside
// the generic pass; the first matching rule rewrites it.
func (a *Anonymizer) applyTokenRules(w string) (string, bool) {
	for _, tr := range a.rules.token {
		if !tr.m.MatchToken(w) {
			continue
		}
		a.hit(tr.id)
		return a.applyPackAction(tr.action, w), true
	}
	return "", false
}

// mapMACToken maps a MAC address consistently under the salt, keeping
// its separator pattern (aa:bb:..., aa-bb-..., aabb.ccdd.eeff) and the
// I/G and U/L bits of the first octet, so multicast/locally-administered
// semantics survive anonymization. Non-hex-shaped tokens fall back to
// the plain hash. The original is recorded for the leak report.
func (a *Anonymizer) mapMACToken(w string) string {
	var hexDigits []byte
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
			hexDigits = append(hexDigits, c)
		case c >= 'A' && c <= 'F':
			hexDigits = append(hexDigits, c+('a'-'A'))
		case c == ':' || c == '-' || c == '.':
		default:
			return a.forceHash(w)
		}
	}
	if len(hexDigits) != 12 {
		return a.forceHash(w)
	}
	mapped := hashDigitsHex(a.opts.Salt, string(hexDigits))
	// Preserve the I/G (multicast) and U/L (locally administered) bits:
	// the low two bits of the first octet, i.e. of the second hex digit.
	origLow := hexVal(hexDigits[1])
	mapLow := hexVal(mapped[1])
	mapped[1] = hexDigit((mapLow &^ 0x03) | (origLow & 0x03))

	a.stats.TokensHashed++
	a.seenWords[w] = true
	out := make([]byte, 0, len(w))
	di := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c == ':' || c == '-' || c == '.' {
			out = append(out, c)
			continue
		}
		out = append(out, mapped[di])
		di++
	}
	res := string(out)
	if a.tracer != nil {
		a.decide(trace.ClassHashed, res)
	}
	return res
}

func hexVal(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

func hexDigit(v byte) byte {
	if v >= 10 {
		return 'a' + v - 10
	}
	return '0' + v
}

// CheckPack verifies that a parsed pack would compile against this
// engine build — builtin references resolve, taxonomy identities do not
// conflict with the registry, rule IDs do not collide with the built-in
// inventory — without installing anything. This is the validation
// confvalidate -check-pack and the portal's pack registration run.
func CheckPack(p *rulepack.Pack) error {
	_, err := compileRuleSet([]*rulepack.Pack{p}, false)
	return err
}
