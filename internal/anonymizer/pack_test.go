package anonymizer

import (
	"encoding/json"
	"reflect"
	"testing"

	"confanon/internal/rulepack"
)

// TestBuiltinPackRoundTrip: the embedded canonical inventory survives a
// parse → canonical-encode → parse cycle byte-identically — the
// fingerprint is a function of content, not of source formatting — and
// its identity is the one the engine was built against.
func TestBuiltinPackRoundTrip(t *testing.T) {
	p, err := rulepack.Parse(builtinPackJSON)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "builtin" {
		t.Fatalf("embedded pack name = %q", p.Name)
	}
	enc, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := rulepack.Parse(enc)
	if err != nil {
		t.Fatalf("canonical encoding does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(p, again) {
		t.Error("builtin pack does not round-trip through its canonical encoding")
	}
	enc2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Error("canonical encoding is not byte-stable across a round trip")
	}
	if p.Meta() != again.Meta() {
		t.Errorf("identity drifted across round trip: %v -> %v", p.Meta(), again.Meta())
	}

	// The compiled inventory reports exactly this identity.
	rs, err := compileRuleSet(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.packs) != 1 || rs.packs[0] != p.Meta() {
		t.Errorf("compiled packs = %v, want [%v]", rs.packs, p.Meta())
	}
}
