package anonymizer

import (
	"strings"

	"confanon/internal/token"
)

// Comment-stripping entries (C1–C3). The banner-body and JunOS
// block-comment halves of these rules are structural (cross-line state)
// and live in the engine; the entries here are the line-scoped halves.

var commentLineRules = []*lineRule{
	// C3: free-text comment lines ("! text"). A bare "!" is a section
	// separator and is kept. Key-less: the trigger is a "!" prefix, not a
	// word literal.
	{id: RuleCommentLine, name: "comment-line", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if !strings.HasPrefix(c.words[0], "!") {
			return "", false, false
		}
		if len(c.words) > 1 || len(c.words[0]) > 1 {
			a.hit(RuleCommentLine)
			a.stats.CommentLinesRemoved++
			a.stats.CommentWordsRemoved += int64(commentWordCount(c.words))
			if a.stripComments() {
				return "", false, true
			}
			return c.raw, true, true
		}
		return c.raw, true, true
	}},

	// C1: banner header. Keep the skeleton, strip the body that follows
	// (the body lines are handled structurally by the engine).
	{id: RuleBanner, name: "banner-header", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		a.hit(RuleBanner)
		c.st.inBanner = true
		c.st.bannerDelim = '^'
		if len(c.words) >= 3 && len(c.words[2]) > 0 {
			c.st.bannerDelim = c.words[2][0]
		}
		return c.raw, true, true
	}},

	// C2: description / remark free text.
	{id: RuleDescription, name: "description-line",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if !isDescriptionLine(c.words) {
				return "", false, false
			}
			a.hit(RuleDescription)
			a.stats.CommentLinesRemoved++
			a.stats.CommentWordsRemoved += int64(commentWordCount(c.words))
			if a.stripComments() {
				return "", false, true
			}
			return c.raw, true, true
		}},
}

func commentWordCount(words []string) int {
	n := len(words)
	if words[0] == "!" || words[0] == "description" || words[0] == "remark" {
		n--
	}
	return n
}

func isDescriptionLine(words []string) bool {
	if words[0] == "description" || words[0] == "remark" {
		return true
	}
	// "neighbor A description ..." inside router bgp.
	if words[0] == "neighbor" && len(words) >= 3 && words[2] == "description" {
		return true
	}
	// "access-list N remark ..."
	if words[0] == "access-list" && len(words) >= 3 && words[2] == "remark" {
		return true
	}
	return false
}

// Miscellaneous entries (M1–M4). The secrets on these lines are
// anonymized even when their words would pass the pass-list, because the
// values are identity-bearing by position.

var miscLineRules = []*lineRule{
	// M1: everything after "dialer string" is a phone number.
	{id: RuleDialerString, name: "dialer-string", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 3 || c.words[1] != "string" {
			return "", false, false
		}
		a.hit(RuleDialerString)
		for i := 2; i < len(c.words); i++ {
			if token.IsPhoneDigits(c.words[i]) || token.IsPhone(c.words[i]) {
				c.words[i] = hashDigits(a.opts.Salt, c.words[i])
			} else {
				c.words[i] = a.forceHash(c.words[i])
			}
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// M2: the community string is a credential; the trailing words
	// (RO/RW, ACL number) are keywords.
	{id: RuleSNMPCommunity, name: "snmp-community", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 3 || c.words[1] != "community" {
			return "", false, false
		}
		a.hit(RuleSNMPCommunity)
		c.words[2] = a.forceHash(c.words[2])
		return token.Join(c.words, c.gaps), true, true
	}},

	// M3: the hostname names the owner; hash each alphabetic segment even
	// if pass-listed, preserving the dotted shape.
	{id: RuleHostname, name: "hostname", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 2 {
			return "", false, false
		}
		a.hit(RuleHostname)
		c.words[1] = a.hashAllSegments(c.words[1])
		return token.Join(c.words, c.gaps), true, true
	}},

	// M3 (domain form): "ip domain-name D" / "ip domain name D".
	{id: RuleHostname, name: "domain-name", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if !(len(c.words) >= 3 && c.words[1] == "domain-name") &&
			!(len(c.words) >= 4 && c.words[1] == "domain" && c.words[2] == "name") {
			return "", false, false
		}
		a.hit(RuleHostname)
		last := len(c.words) - 1
		c.words[last] = a.hashAllSegments(c.words[last])
		return token.Join(c.words, c.gaps), true, true
	}},

	// M4: the username and any password/secret/key material.
	{id: RuleCredentials, name: "username", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 2 {
			return "", false, false
		}
		a.hit(RuleCredentials)
		c.words[1] = a.forceHash(c.words[1])
		for i := 2; i < len(c.words)-1; i++ {
			if c.words[i] == "password" || c.words[i] == "secret" || c.words[i] == "key" {
				last := len(c.words) - 1
				c.words[last] = a.forceHash(c.words[last])
				break
			}
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// M4 (server form): enable / tacacs-server / radius-server secrets.
	{id: RuleCredentials, name: "server-credentials",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if !containsAny(c.words, "password", "secret", "key") {
				return "", false, false
			}
			a.hit(RuleCredentials)
			c.words[len(c.words)-1] = a.forceHash(c.words[len(c.words)-1])
			return token.Join(c.words, c.gaps), true, true
		}},
}

func containsAny(words []string, keys ...string) bool {
	for _, w := range words {
		for _, k := range keys {
			if w == k {
				return true
			}
		}
	}
	return false
}
