package anonymizer

import (
	"strconv"
	"strings"

	"confanon/internal/asn"
	"confanon/internal/config"
	"confanon/internal/cregex"
	"confanon/internal/ipanon"
	"confanon/internal/passlist"
	"confanon/internal/token"
)

// Options configures an Anonymizer.
type Options struct {
	// Salt is the network owner's secret. Everything keyed — the word
	// hash, the IP mapping tree, the ASN and community permutations —
	// derives from it, so one salt reproduces one consistent mapping.
	Salt []byte
	// KeepComments disables comment stripping (for measurement only; the
	// paper strips all comments unconditionally).
	KeepComments bool
	// Style selects alternation (paper default) or minimal-DFA output
	// for rewritten regexps.
	Style cregex.Style
	// PassList overrides the built-in pass-list.
	PassList *passlist.List
	// StatelessIP selects the cryptographic (Crypto-PAn) IP scheme
	// instead of the shaped tree. It gives up class and subnet-address
	// preservation in exchange for a mapping that depends only on the
	// salt — the §4.3 trade-off — which is what makes independent
	// anonymizer instances consistent with each other and therefore
	// parallelizable.
	StatelessIP bool
}

// Stats accumulates the measurements the experiments report.
type Stats struct {
	Files               int
	Lines               int
	WordsTotal          int
	CommentWordsRemoved int
	CommentLinesRemoved int
	TokensHashed        int
	TokensPassed        int
	IPsMapped           int
	ASNsMapped          int
	CommunitiesMapped   int
	RegexpsRewritten    int
	RegexpsUnchanged    int
	RegexpFallbacks     int
	RuleHits            map[RuleID]int
}

// Anonymizer rewrites configuration text. It is stateful: the IP mapping
// tree and the leak recorder accumulate across files so a whole network
// (or several networks from one owner) anonymizes consistently. Not safe
// for concurrent use.
type Anonymizer struct {
	opts  Options
	pass  *passlist.List
	ip    ipanon.Mapper
	perms asn.Salted
	stats Stats

	// Leak recorder (§6.1): every public ASN, hashed word, and mapped
	// original address is remembered so LeakReport can grep the output
	// for survivors.
	seenASNs  map[string]bool
	seenWords map[string]bool
	seenIPs   map[uint32]bool

	// sensitiveTokens holds operator-added rules from the iterative
	// methodology: tokens that must be anonymized wherever they appear.
	sensitiveTokens map[string]bool

	// relations holds declared external (ASN, prefix) relationships
	// whose anonymized images are released alongside the configs (§5).
	relations []Relation

	// ipOuts caches the mapping's output set for the leak report's
	// false-positive classification; ipOutsLen tracks staleness.
	ipOuts    map[uint32]bool
	ipOutsLen int
}

// New creates an Anonymizer for one owner salt.
func New(opts Options) *Anonymizer {
	pl := opts.PassList
	if pl == nil {
		pl = passlist.Builtin()
	}
	var mapper ipanon.Mapper
	if opts.StatelessIP {
		mapper = ipanon.NewCryptoMapper(opts.Salt)
	} else {
		mapper = ipanon.NewTree(ipanon.DefaultOptions(opts.Salt))
	}
	return &Anonymizer{
		opts:            opts,
		pass:            pl,
		ip:              mapper,
		perms:           asn.NewSalted(opts.Salt),
		stats:           Stats{RuleHits: make(map[RuleID]int)},
		seenASNs:        make(map[string]bool),
		seenWords:       make(map[string]bool),
		seenIPs:         make(map[uint32]bool),
		sensitiveTokens: make(map[string]bool),
	}
}

// Stats returns the accumulated counters.
func (a *Anonymizer) Stats() Stats { return a.stats }

// IPMapping exposes the resolved IP pairs (for validation tooling).
func (a *Anonymizer) IPMapping() []ipanon.Pair { return a.ip.Mapping() }

// SaveMapping serializes the IP mapping state so a later run (same salt)
// can anonymize additional configurations consistently with this one.
// Only the shaped tree carries state; under StatelessIP the mapping is a
// pure function of the salt and the snapshot is empty.
func (a *Anonymizer) SaveMapping() []byte {
	if t, ok := a.ip.(*ipanon.Tree); ok {
		return t.Save()
	}
	return nil
}

// LoadMapping restores a snapshot produced by SaveMapping. It must be
// called before any anonymization and with the same salt; an error is
// returned when the snapshot does not replay to the same mapping.
func (a *Anonymizer) LoadMapping(snapshot []byte) error {
	if len(snapshot) == 0 {
		return nil
	}
	t, err := ipanon.Load(snapshot)
	if err != nil {
		return err
	}
	a.ip = t
	return nil
}

// MapASN exposes the ASN permutation (for validation tooling).
func (a *Anonymizer) MapASN(v uint32) uint32 { return a.perms.ASN.Map(v) }

// MapIP exposes the IP mapping (for validation tooling).
func (a *Anonymizer) MapIP(v uint32) uint32 { return a.ip.MapV4(v) }

// HashWord exposes the salted word hash (for validation tooling).
func (a *Anonymizer) HashWord(w string) string { return hashWord(a.opts.Salt, w) }

// AddSensitiveToken registers an operator-supplied rule: the literal token
// is anonymized wherever it appears from now on. This is the mechanism of
// the iterative leak-closure methodology (§6.1): lines a human flags as
// dangerous are used to add more rules to the anonymizer.
func (a *Anonymizer) AddSensitiveToken(tok string) {
	a.sensitiveTokens[tok] = true
}

func (a *Anonymizer) hit(r RuleID) { a.stats.RuleHits[r]++ }

// AnonymizeText anonymizes one configuration file. The input is prescanned
// first so subnet addresses resolve shortest-prefix-first (see Prescan).
func (a *Anonymizer) AnonymizeText(text string) string {
	a.Prescan(text)
	a.stats.Files++
	lines := strings.Split(text, "\n")
	out := make([]string, 0, len(lines))
	st := &fileState{}
	for i, line := range lines {
		if i == len(lines)-1 && line == "" {
			break // trailing newline artifact
		}
		a.stats.Lines++
		res, keep := a.anonymizeLine(line, st)
		if keep {
			out = append(out, res)
		}
	}
	return strings.Join(out, "\n") + "\n"
}

// fileState carries cross-line context through one file.
type fileState struct {
	inBanner       bool
	bannerDelim    byte
	inBlockComment bool   // inside a JunOS /* ... */ block
	block          string // current top-level block: "interface", "router bgp", ...
}

func (a *Anonymizer) anonymizeLine(line string, st *fileState) (string, bool) {
	// C1: banner bodies are comments; strip every content line.
	if st.inBanner {
		if strings.IndexByte(line, st.bannerDelim) >= 0 {
			st.inBanner = false
			return string(st.bannerDelim), true
		}
		a.hit(RuleBanner)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += len(strings.Fields(line))
		a.countWords(line)
		if a.stripComments() {
			return "", false
		}
		return line, true
	}

	words, gaps := token.Fields(line)
	a.stats.WordsTotal += len(words)

	// JunOS comment syntax ("# ...", "/* ... */") is stripped like IOS
	// comments; block comments span lines.
	if res, keep, handled := a.junosCommentRules(line, words, st); handled || st.inBlockComment {
		return res, keep
	}
	if len(words) == 0 {
		return line, true
	}

	// Track the current block for context-dependent rules.
	indented := gaps[0] != ""
	if !indented {
		st.block = blockOf(words)
	}

	// C3: free-text comment lines ("! text"). A bare "!" is a section
	// separator and is kept.
	if words[0] == "!" || strings.HasPrefix(words[0], "!") {
		if len(words) > 1 || len(words[0]) > 1 {
			a.hit(RuleCommentLine)
			a.stats.CommentLinesRemoved++
			a.stats.CommentWordsRemoved += commentWordCount(words)
			if a.stripComments() {
				return "", false
			}
			return line, true
		}
		return line, true
	}

	// C1: banner header. Keep the skeleton, strip the body that follows.
	if words[0] == "banner" {
		a.hit(RuleBanner)
		st.inBanner = true
		st.bannerDelim = '^'
		if len(words) >= 3 && len(words[2]) > 0 {
			st.bannerDelim = words[2][0]
		}
		return line, true
	}

	// C2: description / remark free text.
	if isDescriptionLine(words) {
		a.hit(RuleDescription)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += commentWordCount(words)
		if a.stripComments() {
			return "", false
		}
		return line, true
	}

	// Line-level context rules. Each returns true when it fully handled
	// the line.
	if res, ok := a.miscRules(words, gaps); ok {
		return res, true
	}
	if res, ok := a.nameRules(words, gaps); ok {
		return res, true
	}
	if res, ok := a.junosRules(words, gaps); ok {
		return res, true
	}
	if res, ok := a.asnRules(words, gaps, st); ok {
		return res, true
	}

	// Generic word-level pass (IP addresses, prefixes, communities,
	// pass-list hashing).
	a.genericWords(words, st)
	return token.Join(words, gaps), true
}

func (a *Anonymizer) stripComments() bool { return !a.opts.KeepComments }

// countWords adds a raw line's words to the total (used for banner bodies,
// which bypass the normal Fields accounting).
func (a *Anonymizer) countWords(line string) {
	a.stats.WordsTotal += len(strings.Fields(line))
}

func commentWordCount(words []string) int {
	n := len(words)
	if words[0] == "!" || words[0] == "description" || words[0] == "remark" {
		n--
	}
	return n
}

func blockOf(words []string) string {
	if len(words) >= 2 && words[0] == "router" {
		return "router " + words[1]
	}
	if len(words) >= 1 {
		return words[0]
	}
	return ""
}

func isDescriptionLine(words []string) bool {
	if words[0] == "description" || words[0] == "remark" {
		return true
	}
	// "neighbor A description ..." inside router bgp.
	if words[0] == "neighbor" && len(words) >= 3 && words[2] == "description" {
		return true
	}
	// "access-list N remark ..."
	if words[0] == "access-list" && len(words) >= 3 && words[2] == "remark" {
		return true
	}
	return false
}

// miscRules implements M1–M4. The secrets on these lines are anonymized
// even when their words would pass the pass-list, because the values are
// identity-bearing by position.
func (a *Anonymizer) miscRules(words, gaps []string) (string, bool) {
	switch {
	case words[0] == "dialer" && len(words) >= 3 && words[1] == "string":
		// M1: everything after "dialer string" is a phone number.
		a.hit(RuleDialerString)
		for i := 2; i < len(words); i++ {
			if token.IsPhoneDigits(words[i]) || token.IsPhone(words[i]) {
				words[i] = hashDigits(a.opts.Salt, words[i])
			} else {
				words[i] = a.forceHash(words[i])
			}
		}
		return token.Join(words, gaps), true

	case words[0] == "snmp-server" && len(words) >= 3 && words[1] == "community":
		// M2: the community string is a credential; the trailing words
		// (RO/RW, ACL number) are keywords.
		a.hit(RuleSNMPCommunity)
		words[2] = a.forceHash(words[2])
		return token.Join(words, gaps), true

	case words[0] == "hostname" && len(words) >= 2:
		// M3: the hostname names the owner; hash each alphabetic
		// segment even if pass-listed, preserving the dotted shape.
		a.hit(RuleHostname)
		words[1] = a.hashAllSegments(words[1])
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 3 && words[1] == "domain-name",
		words[0] == "ip" && len(words) >= 4 && words[1] == "domain" && words[2] == "name":
		a.hit(RuleHostname)
		words[len(words)-1] = a.hashAllSegments(words[len(words)-1])
		return token.Join(words, gaps), true

	case words[0] == "username" && len(words) >= 2:
		// M4: the username and any password/secret/key material.
		a.hit(RuleCredentials)
		words[1] = a.forceHash(words[1])
		for i := 2; i < len(words)-1; i++ {
			if words[i] == "password" || words[i] == "secret" || words[i] == "key" {
				last := len(words) - 1
				words[last] = a.forceHash(words[last])
				break
			}
		}
		return token.Join(words, gaps), true

	case (words[0] == "enable" || words[0] == "tacacs-server" || words[0] == "radius-server") &&
		containsAny(words, "password", "secret", "key"):
		a.hit(RuleCredentials)
		words[len(words)-1] = a.forceHash(words[len(words)-1])
		return token.Join(words, gaps), true
	}
	return "", false
}

func containsAny(words []string, keys ...string) bool {
	for _, w := range words {
		for _, k := range keys {
			if w == k {
				return true
			}
		}
	}
	return false
}

// asnRules implements A1–A12.
func (a *Anonymizer) asnRules(words, gaps []string, st *fileState) (string, bool) {
	switch {
	case words[0] == "router" && len(words) >= 3 && words[1] == "bgp":
		a.hit(RuleBGPProcess)
		words[2] = a.mapASNToken(words[2])
		return token.Join(words, gaps), true

	case words[0] == "redistribute" && len(words) >= 3 && words[1] == "bgp":
		a.hit(RuleRedistributeBGP)
		words[2] = a.mapASNToken(words[2])
		a.genericWords(words[3:], st)
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) >= 4 && words[2] == "remote-as":
		a.hit(RuleNeighborRemoteAS)
		words[1] = a.mapNeighborToken(words[1])
		words[3] = a.mapASNToken(words[3])
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) >= 4 && words[2] == "local-as":
		a.hit(RuleNeighborLocalAS)
		words[1] = a.mapNeighborToken(words[1])
		words[3] = a.mapASNToken(words[3])
		return token.Join(words, gaps), true

	case words[0] == "bgp" && len(words) >= 4 && words[1] == "confederation" && words[2] == "identifier":
		a.hit(RuleConfedID)
		words[3] = a.mapASNToken(words[3])
		return token.Join(words, gaps), true

	case words[0] == "bgp" && len(words) >= 4 && words[1] == "confederation" && words[2] == "peers":
		a.hit(RuleConfedPeers)
		for i := 3; i < len(words); i++ {
			words[i] = a.mapASNToken(words[i])
		}
		return token.Join(words, gaps), true

	case words[0] == "set" && len(words) >= 3 && words[1] == "community":
		a.hit(RuleSetCommunity)
		for i := 2; i < len(words); i++ {
			words[i] = a.mapCommunityToken(words[i])
		}
		return token.Join(words, gaps), true

	case words[0] == "set" && len(words) >= 4 && words[1] == "extcommunity":
		a.hit(RuleSetExtCommunity)
		for i := 3; i < len(words); i++ {
			words[i] = a.mapCommunityToken(words[i])
		}
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 5 && words[1] == "community-list":
		// Numeric form: ip community-list N permit <expr...>
		// Named form:   ip community-list standard|expanded NAME permit <expr...>
		start := 4
		if words[2] == "standard" || words[2] == "expanded" {
			if len(words) < 6 {
				return token.Join(words, gaps), true
			}
			words[3] = a.forceHashName(words[3])
			start = 5
		}
		for i := start; i < len(words); i++ {
			words[i] = a.mapCommunityExpr(words[i])
		}
		return token.Join(words, gaps), true

	case words[0] == "set" && len(words) >= 4 && words[1] == "as-path" && words[2] == "prepend":
		a.hit(RuleASPathPrepend)
		for i := 3; i < len(words); i++ {
			words[i] = a.mapASNToken(words[i])
		}
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 6 && words[1] == "as-path" && words[2] == "access-list":
		a.hit(RuleASPathRegexp)
		// The regexp is everything after the action word; it may contain
		// spaces (alternation of path expressions), so rewrite the join.
		pattern := strings.Join(words[5:], " ")
		rewritten := a.rewriteASPath(pattern)
		words[5] = rewritten
		words = words[:6]
		gaps = append(gaps[:6], gaps[len(gaps)-1])
		return token.Join(words, gaps), true
	}
	return "", false
}

// rewriteASPath rewrites an AS-path regexp, falling back to hashing when
// the pattern does not parse (conservatism over information preservation).
func (a *Anonymizer) rewriteASPath(pattern string) string {
	res, err := cregex.RewriteASN(pattern, a.recordingASNPerm(), a.opts.Style)
	if err != nil {
		a.stats.RegexpFallbacks++
		return a.forceHash(pattern)
	}
	if res.Changed {
		a.stats.RegexpsRewritten++
	} else {
		a.stats.RegexpsUnchanged++
	}
	return res.Pattern
}

// recordingASNPerm wraps the ASN permutation so every public ASN that the
// regexp machinery maps is also recorded for the leak report.
func (a *Anonymizer) recordingASNPerm() func(uint32) uint32 {
	return func(v uint32) uint32 {
		out := a.perms.ASN.Map(v)
		if out != v {
			a.recordASN(v)
		}
		return out
	}
}

// mapCommunityExpr handles one community-list entry token: a literal
// community (A9), a well-known value, or a regexp (A10).
func (a *Anonymizer) mapCommunityExpr(w string) string {
	if isWellKnownCommunity(w) {
		return w
	}
	if _, _, ok := token.ParseCommunity(w); ok {
		a.hit(RuleCommListLiteral)
		return a.mapCommunityToken(w)
	}
	if token.IsInteger(w) {
		a.hit(RuleCommListLiteral)
		return a.mapCommunityToken(w)
	}
	a.hit(RuleCommListRegexp)
	res, err := cregex.RewriteCommunity(w, a.recordingASNPerm(), a.perms.Value.Map, a.opts.Style)
	if err != nil {
		a.stats.RegexpFallbacks++
		return a.forceHash(w)
	}
	if res.Changed {
		a.stats.RegexpsRewritten++
	} else {
		a.stats.RegexpsUnchanged++
	}
	return res.Pattern
}

func isWellKnownCommunity(w string) bool {
	switch w {
	case "internet", "no-export", "no-advertise", "local-as", "additive", "none":
		return true
	}
	return false
}

// mapCommunityToken maps "asn:value" (both halves), an old-format 32-bit
// community (split into halves), or passes through keywords.
func (a *Anonymizer) mapCommunityToken(w string) string {
	if isWellKnownCommunity(w) {
		return w
	}
	if asnHalf, val, ok := token.ParseCommunity(w); ok {
		a.stats.CommunitiesMapped++
		if asn.IsPublic(asnHalf) {
			a.recordASN(asnHalf)
		}
		ma, mv := asn.MapCommunity(a.perms.ASN, a.perms.Value, asnHalf, val)
		return strconv.FormatUint(uint64(ma), 10) + ":" + strconv.FormatUint(uint64(mv), 10)
	}
	if token.IsInteger(w) {
		v, err := strconv.ParseUint(w, 10, 64)
		if err == nil && v > 0xFFFF && v <= 0xFFFFFFFF {
			// Old-format community: high half is the ASN.
			a.stats.CommunitiesMapped++
			hi, lo := uint32(v>>16), uint32(v&0xFFFF)
			if asn.IsPublic(hi) {
				a.recordASN(hi)
			}
			ma, mv := asn.MapCommunity(a.perms.ASN, a.perms.Value, hi, lo)
			return strconv.FormatUint(uint64(ma)<<16|uint64(mv), 10)
		}
		if err == nil && v <= 0xFFFF {
			a.stats.CommunitiesMapped++
			return strconv.FormatUint(uint64(a.perms.Value.Map(uint32(v))), 10)
		}
	}
	return a.forceHash(w)
}

// mapASNToken permutes a decimal ASN token; non-numeric tokens are hashed.
func (a *Anonymizer) mapASNToken(w string) string {
	if !token.IsInteger(w) {
		return a.forceHash(w)
	}
	v, err := strconv.ParseUint(w, 10, 32)
	if err != nil {
		return a.forceHash(w)
	}
	out := a.perms.ASN.Map(uint32(v))
	if out != uint32(v) {
		a.stats.ASNsMapped++
		a.recordASN(uint32(v))
	}
	return strconv.FormatUint(uint64(out), 10)
}

// mapAddrToken maps a dotted-quad token, preserving non-addresses.
func (a *Anonymizer) mapAddrToken(w string) string {
	v, ok := token.ParseIPv4(w)
	if !ok {
		return a.forceHash(w)
	}
	a.hit(RuleBareAddr)
	a.stats.IPsMapped++
	out := a.ip.MapV4(v)
	if out != v {
		a.seenIPs[v] = true
	}
	return token.FormatIPv4(out)
}

func (a *Anonymizer) recordASN(v uint32) {
	a.seenASNs[strconv.FormatUint(uint64(v), 10)] = true
}

// genericWords is the fallback pass applying the IP rules (I1–I5), the
// bare-community rule (K1), and the basic method (segmentation S1/S2 +
// pass-list + hash) to every word of a line not consumed by a line rule.
//
// Words are stripped of structural punctuation first (JunOS attaches
// semicolons, brackets, and quotes to values: "address 12.0.0.1/30;"),
// processed on their cores, and reassembled.
func (a *Anonymizer) genericWords(words []string, st *fileState) {
	leads := make([]string, len(words))
	trails := make([]string, len(words))
	cores := make([]string, len(words))
	for i, w := range words {
		leads[i], cores[i], trails[i] = token.TrimPunct(w)
	}
	a.genericCores(cores, st)
	for i := range words {
		words[i] = leads[i] + cores[i] + trails[i]
	}
}

// genericCores runs the word-level rules over punctuation-stripped cores.
func (a *Anonymizer) genericCores(words []string, st *fileState) {
	for i := 0; i < len(words); i++ {
		w := words[i]
		if w == "" {
			continue
		}
		if a.sensitiveTokens[w] {
			// Operator-added rule: treat a numeric token as an ASN,
			// anything else as a hashable word.
			if token.IsInteger(w) {
				words[i] = a.mapASNToken(w)
			} else {
				words[i] = a.forceHash(w)
			}
			continue
		}
		if addr, ok := token.ParseIPv4(w); ok {
			// I1 variant: "network A mask M" (BGP network statements).
			if i+2 < len(words) && words[i+1] == "mask" {
				if m, mok := token.ParseIPv4(words[i+2]); mok {
					if length, isMask := config.MaskToLen(m); isMask {
						a.hit(RuleAddrNetmask)
						words[i] = a.mapWithPrefix(addr, length)
						i += 2 // "mask" keyword and the mask itself pass through
						continue
					}
				}
			}
			// Pair rules I1/I2 first: address followed by a netmask or
			// wildcard.
			if i+1 < len(words) {
				if second, ok2 := token.ParseIPv4(words[i+1]); ok2 {
					if length, isMask := config.MaskToLen(second); isMask && second != 0 {
						a.hit(RuleAddrNetmask)
						words[i] = a.mapWithPrefix(addr, length)
						i++ // mask itself passes through unchanged
						continue
					}
					if length, isWild := config.MaskToLen(^second); isWild {
						a.hit(RuleAddrWildcard)
						words[i] = a.mapWithPrefix(addr, length)
						i++ // wildcard passes through unchanged
						continue
					}
				}
			}
			// I5: classful network statements under RIP/EIGRP/IGRP.
			if st != nil && (st.block == "router rip" || st.block == "router eigrp" || st.block == "router igrp") &&
				i > 0 && words[i-1] == "network" {
				a.hit(RuleClassfulNet)
				length, _ := config.MaskToLen(config.ClassfulMask(addr))
				words[i] = a.mapWithPrefix(addr, length)
				continue
			}
			// I3: bare address.
			words[i] = a.mapAddrToken(w)
			continue
		}
		if addr, length, ok := token.ParseIPv4Prefix(w); ok {
			a.hit(RuleSlashPrefix)
			a.stats.IPsMapped++
			mapped := a.ip.MapPrefix(addr, length)
			net := addr & config.LenToMask(length)
			if mapped != net {
				a.seenIPs[net] = true
			}
			words[i] = token.FormatIPv4(mapped) + "/" + strconv.Itoa(length)
			continue
		}
		if _, _, ok := token.ParseCommunity(w); ok {
			a.hit(RuleBareCommunity)
			words[i] = a.mapCommunityToken(w)
			continue
		}
		if token.IsInteger(w) {
			// "Simple integers are generally not anonymized."
			continue
		}
		words[i] = a.hashIfPrivileged(w)
	}
}

// mapWithPrefix pins the subnet address first (so subnet-address
// preservation holds regardless of the order hosts appear in the file),
// then maps the full address.
func (a *Anonymizer) mapWithPrefix(addr uint32, length int) string {
	a.stats.IPsMapped++
	net := addr & config.LenToMask(length)
	mappedNet := a.ip.MapPrefix(net, length)
	if mappedNet != net {
		a.seenIPs[net] = true
	}
	if addr == net {
		return token.FormatIPv4(mappedNet)
	}
	out := a.ip.MapV4(addr)
	if out != addr {
		a.seenIPs[addr] = true
	}
	return token.FormatIPv4(out)
}

// hashIfPrivileged applies the basic method to one word: segment (S1/S2),
// consult the pass-list, and hash what is not known innocuous.
func (a *Anonymizer) hashIfPrivileged(w string) string {
	switch token.Classify(w) {
	case token.Email, token.Phone, token.HexString:
		return a.forceHash(w)
	case token.Punct:
		return w
	}
	// Whole-word pass-list hit first: hyphenated keywords such as
	// "route-map" and "access-list" are listed as units.
	if a.pass.Contains(w) {
		a.stats.TokensPassed++
		return w
	}
	segs := token.SplitWord(w)
	if len(segs) > 1 {
		a.hit(RuleSegmentAlpha)
		hasWords := 0
		for _, s := range segs {
			if s.Kind == token.Word {
				hasWords++
			}
		}
		if hasWords > 1 {
			a.hit(RuleSegmentWords)
		}
	}
	var b strings.Builder
	changed := false
	for _, s := range segs {
		if s.Kind != token.Word {
			b.WriteString(s.Text)
			continue
		}
		if a.pass.Contains(s.Text) {
			a.stats.TokensPassed++
			b.WriteString(s.Text)
			continue
		}
		a.stats.TokensHashed++
		a.seenWords[s.Text] = true
		b.WriteString(hashWord(a.opts.Salt, s.Text))
		changed = true
	}
	if !changed {
		return w
	}
	return b.String()
}

// forceHash hashes a whole token regardless of the pass-list; used where
// position marks the value as identity-bearing (credentials, hostnames,
// fallbacks).
func (a *Anonymizer) forceHash(w string) string {
	a.stats.TokensHashed++
	a.seenWords[w] = true
	return hashWord(a.opts.Salt, w)
}

// hashAllSegments hashes every alphabetic segment of a word, keeping the
// punctuation skeleton (dots of a hostname), ignoring the pass-list.
func (a *Anonymizer) hashAllSegments(w string) string {
	var b strings.Builder
	for _, s := range token.SplitWord(w) {
		if s.Kind == token.Word {
			a.stats.TokensHashed++
			a.seenWords[s.Text] = true
			b.WriteString(hashWord(a.opts.Salt, s.Text))
		} else {
			b.WriteString(s.Text)
		}
	}
	return b.String()
}
