package anonymizer

import (
	"strings"

	"confanon/internal/asn"
	"confanon/internal/cregex"
	"confanon/internal/ipanon"
	"confanon/internal/passlist"
	"confanon/internal/rulepack"
	"confanon/internal/trace"
)

// Options configures an Anonymizer.
type Options struct {
	// Salt is the network owner's secret. Everything keyed — the word
	// hash, the IP mapping tree, the ASN and community permutations —
	// derives from it, so one salt reproduces one consistent mapping.
	Salt []byte
	// KeepComments disables comment stripping (for measurement only; the
	// paper strips all comments unconditionally).
	KeepComments bool
	// Style selects alternation (paper default) or minimal-DFA output
	// for rewritten regexps.
	Style cregex.Style
	// PassList overrides the built-in pass-list.
	PassList *passlist.List
	// RulePacks are additional declarative rule packs (parsed and
	// validated by internal/rulepack) merged into the Program's dispatch
	// inventory ahead of the built-ins. Merge failures — duplicate rule
	// IDs across packs, unresolvable builtin references — panic in
	// Compile and are reported by CompileChecked.
	RulePacks []*rulepack.Pack
	// StatelessIP selects the cryptographic (Crypto-PAn) IP scheme
	// instead of the shaped tree. It gives up class and subnet-address
	// preservation in exchange for a mapping that depends only on the
	// salt — the §4.3 trade-off — which is what makes independent
	// anonymizer instances consistent with each other and therefore
	// parallelizable (and single-pass streamable: see StreamText).
	StatelessIP bool
	// Tracer, when set, records a hierarchical span trace (corpus →
	// file → stage → rule) and a provenance ledger of every
	// anonymization decision. The ledger carries only anonymized
	// replacements, never cleartext (trace.go); nil — the default —
	// keeps the hot path free of any tracing cost.
	Tracer *trace.Tracer
}

// Anonymizer is one single-goroutine worker of a Session: it rewrites
// configuration text through the Session's shared state (the IP mapping,
// the leak recorder) while keeping its hot-path scratch — statistics,
// pending recorder entries, dispatch context — private, reconciling into
// the Session at file boundaries (flush). One worker is not safe for
// concurrent use, but any number of workers of the same Session may run
// concurrently (Session.Acquire/Release); New returns a Session-bound
// worker for the common single-goroutine case.
type Anonymizer struct {
	prog *Program
	sess *Session

	// Immutable snapshots from the Program (opts/pass/perms/rules) and
	// the Session (ip, sensitiveTokens; refreshed on Acquire).
	opts  Options
	pass  *passlist.List
	ip    ipanon.Mapper
	perms asn.Salted
	rules *ruleSet

	// lineShield holds values a pack line rule produced on the current
	// line; the generic pass leaves them alone (see pack.go). Nil until
	// a pack rule first fires — the no-pack hot path never touches it.
	lineShield map[string]bool

	// stats is the worker-local cumulative record; synced is its state at
	// the last flush, so flush applies only the signed delta to the
	// Session (and registry).
	stats  Stats
	synced Stats

	// Engine scratch: the per-line rule-hit record (registry indices,
	// for wall-time attribution) and the reusable dispatch context.
	lineHits []int
	ctx      lineCtx

	// metrics is the optional shared registry this engine flushes into
	// at file boundaries (metrics.go); nil means no registry wired.
	// bytesIn/bytesOut accumulate streaming throughput for the flush
	// (not part of Stats: they measure I/O work done, so they are not
	// rolled back with a failed file's counters).
	metrics  *engineMetrics
	bytesIn  int64
	bytesOut int64

	// Fault-isolation scratch: the file name and 1-based line currently
	// being processed, recorded so a recovered panic can be pinned to a
	// location (fault.go).
	curFile string
	curLine int

	// Tracing state (trace.go): the Session's tracer (nil = untraced),
	// the batch-level corpus span this worker's file spans nest under,
	// the open file span with its rule-counter baselines, the buffered
	// provenance decisions of the file in flight, and the last rule that
	// fired on the current line (ledger attribution).
	tracer     *trace.Tracer
	corpusSpan trace.SpanID
	fileSpan   *trace.Span
	fileHits   [maxRules]int64
	fileTime   [maxRules]int64
	pending    []trace.Decision
	curRule    RuleID

	// Leak recorder (§6.1), pending half: every public ASN, hashed word,
	// and mapped original address this worker has seen since its last
	// flush. Published into the Session's recorder at file boundaries;
	// never retracted (an aborted file can only widen later leak reports,
	// matching the fail-closed direction).
	seenASNs  map[string]bool
	seenWords map[string]bool
	seenIPs   map[uint32]bool

	// sensitiveTokens is the worker's read-only snapshot of the Session's
	// operator-added rules (copy-on-write there; refreshed on Acquire).
	sensitiveTokens map[string]bool
}

// New creates a single-worker Session for one owner salt and returns its
// bound worker — the convenience constructor for serial use. Callers
// that share one mapping across goroutines should Compile a Program,
// derive a Session, and Acquire workers instead.
func New(opts Options) *Anonymizer {
	return Compile(opts).NewSession().Bind()
}

// Session returns the Session this worker reconciles into.
func (a *Anonymizer) Session() *Session { return a.sess }

// Stats returns the accumulated counters: the Session's merged record,
// with this worker's unflushed partials reconciled first.
func (a *Anonymizer) Stats() Stats {
	a.flush()
	return a.sess.Stats()
}

// IPMapping exposes the resolved IP pairs (for validation tooling).
func (a *Anonymizer) IPMapping() []ipanon.Pair { return a.ip.Mapping() }

// SaveMapping serializes the IP mapping state so a later run (same salt)
// can anonymize additional configurations consistently with this one.
// Only the shaped tree carries state; under StatelessIP the mapping is a
// pure function of the salt and the snapshot is empty.
func (a *Anonymizer) SaveMapping() []byte { return a.sess.SaveMapping() }

// LoadMapping restores a snapshot produced by SaveMapping. It must be
// called before any anonymization and with the same salt; an error is
// returned when the snapshot does not replay to the same mapping.
func (a *Anonymizer) LoadMapping(snapshot []byte) error {
	if err := a.sess.LoadMapping(snapshot); err != nil {
		return err
	}
	a.ip = a.sess.mapper()
	return nil
}

// MapASN exposes the ASN permutation (for validation tooling).
func (a *Anonymizer) MapASN(v uint32) uint32 { return a.perms.ASN.Map(v) }

// MapIP exposes the IP mapping (for validation tooling).
func (a *Anonymizer) MapIP(v uint32) uint32 { return a.ip.MapV4(v) }

// HashWord exposes the salted word hash (for validation tooling).
func (a *Anonymizer) HashWord(w string) string { return hashWord(a.opts.Salt, w) }

// AddSensitiveToken registers an operator-supplied rule: the literal token
// is anonymized wherever it appears from now on. This is the mechanism of
// the iterative leak-closure methodology (§6.1): lines a human flags as
// dangerous are used to add more rules to the anonymizer. The rule is
// registered Session-wide; this worker sees it immediately, other
// in-flight workers on their next Acquire.
func (a *Anonymizer) AddSensitiveToken(tok string) {
	a.sess.AddSensitiveToken(tok)
	a.sensitiveTokens = *a.sess.sensTok.Load()
}

// hit records one firing of a rule: the hit counter and the per-line
// scratch the engine uses for wall-time attribution. Registry lookup
// (one atomic load, one map read) then two array/slice writes — no map
// mutation on the per-token path.
func (a *Anonymizer) hit(r RuleID) {
	a.curRule = r
	i, ok := lookupRule(r)
	if !ok {
		return
	}
	a.stats.ruleHits[i]++
	a.lineHits = append(a.lineHits, i)
}

// AnonymizeText anonymizes one configuration file. The input is prescanned
// first so subnet addresses resolve shortest-prefix-first (see Prescan).
func (a *Anonymizer) AnonymizeText(text string) string {
	a.Prescan(text)
	lines := strings.Split(text, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1] // trailing newline artifact
	}
	out := make([]string, 0, len(lines))
	i := 0
	a.runFile(
		func() (string, bool) {
			if i >= len(lines) {
				return "", false
			}
			line := lines[i]
			i++
			return line, true
		},
		func(res string) { out = append(out, res) },
	)
	return strings.Join(out, "\n") + "\n"
}

func (a *Anonymizer) stripComments() bool { return !a.opts.KeepComments }

// countWords adds a raw line's words to the total (used for banner bodies,
// which bypass the normal Fields accounting).
func (a *Anonymizer) countWords(line string) {
	a.stats.WordsTotal += int64(len(strings.Fields(line)))
}
