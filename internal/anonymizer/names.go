package anonymizer

import (
	"confanon/internal/token"
)

// Name-position entries. §4.1's basic method "anonymizes the names of
// class-maps, route-maps, and any other strings that could hold privileged
// information" — and a name must be hashed even when its words happen to
// appear in the pass-list: a route map called "LEVEL3-import" leaks a peer
// identity although "level" is an ordinary IOS keyword. Positions that
// syntactically hold a user-chosen identifier are therefore hashed as
// whole tokens, bypassing segmentation and the pass-list. Numbered
// references (ACL and list numbers) are local identifiers and stay.
//
// These entries share the extension RuleID RuleNamePosition — they are
// not one of the paper's 28 numbered rules, but the registry instruments
// them identically.

// forceHashName hashes a user-chosen identifier; integers pass through.
func (a *Anonymizer) forceHashName(w string) string {
	if token.IsInteger(w) {
		return w
	}
	return a.forceHash(w)
}

// nameEntry builds a name-position entry: match decides, rewrite edits
// the words in place; the entry then hits RuleNamePosition and rejoins.
// Trigger keys live in the canonical pack document, not here.
func nameEntry(name string, match func(words []string) bool, rewrite func(a *Anonymizer, words []string)) *lineRule {
	return &lineRule{id: RuleNamePosition, name: name,
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if !match(c.words) {
				return "", false, false
			}
			a.hit(RuleNamePosition)
			rewrite(a, c.words)
			return token.Join(c.words, c.gaps), true, true
		}}
}

var nameLineRules = []*lineRule{
	// route-map NAME [permit|deny [seq]]
	nameEntry("route-map-def",
		func(w []string) bool { return len(w) >= 2 },
		func(a *Anonymizer, w []string) { w[1] = a.forceHashName(w[1]) }),

	// neighbor A route-map NAME in|out
	nameEntry("neighbor-route-map",
		func(w []string) bool { return len(w) >= 4 && w[2] == "route-map" },
		func(a *Anonymizer, w []string) {
			w[1] = a.mapNeighborToken(w[1])
			w[3] = a.forceHashName(w[3])
		}),

	// neighbor A peer-group NAME
	nameEntry("neighbor-peer-group-ref",
		func(w []string) bool { return len(w) >= 4 && w[2] == "peer-group" },
		func(a *Anonymizer, w []string) {
			w[1] = a.mapNeighborToken(w[1])
			w[3] = a.forceHashName(w[3])
		}),

	// neighbor NAME peer-group (definition form)
	nameEntry("neighbor-peer-group-def",
		func(w []string) bool { return len(w) == 3 && w[2] == "peer-group" },
		func(a *Anonymizer, w []string) { w[1] = a.forceHashName(w[1]) }),

	// neighbor A prefix-list NAME in|out (filter/distribute lists are
	// usually numbered; names hash, numbers stay)
	nameEntry("neighbor-filter-ref",
		func(w []string) bool {
			return len(w) >= 4 && (w[2] == "prefix-list" || w[2] == "filter-list" || w[2] == "distribute-list")
		},
		func(a *Anonymizer, w []string) {
			w[1] = a.mapNeighborToken(w[1])
			w[3] = a.forceHashName(w[3])
		}),

	// ip vrf NAME (definition)
	nameEntry("vrf-def",
		func(w []string) bool { return len(w) == 3 && w[1] == "vrf" },
		func(a *Anonymizer, w []string) { w[2] = a.forceHashName(w[2]) }),

	// ip vrf forwarding NAME (interface reference)
	nameEntry("vrf-forwarding",
		func(w []string) bool { return len(w) >= 4 && w[1] == "vrf" && w[2] == "forwarding" },
		func(a *Anonymizer, w []string) { w[3] = a.forceHashName(w[3]) }),

	// ip nat pool NAME lo hi netmask M
	nameEntry("nat-pool",
		func(w []string) bool { return len(w) >= 5 && w[1] == "nat" && w[2] == "pool" },
		func(a *Anonymizer, w []string) {
			w[3] = a.forceHashName(w[3])
			a.genericWords(w[4:], nil)
		}),

	// aaa group server tacacs+|radius NAME
	nameEntry("aaa-group-server",
		func(w []string) bool { return len(w) >= 5 && w[1] == "group" && w[2] == "server" },
		func(a *Anonymizer, w []string) { w[4] = a.forceHashName(w[4]) }),

	// ip prefix-list NAME seq N permit A/L [ge|le N]
	nameEntry("prefix-list-def",
		func(w []string) bool { return len(w) >= 3 && w[1] == "prefix-list" },
		func(a *Anonymizer, w []string) {
			w[2] = a.forceHashName(w[2])
			a.genericWords(w[3:], nil)
		}),

	// match ip address prefix-list NAME...
	nameEntry("match-prefix-list",
		func(w []string) bool {
			return len(w) >= 4 && w[1] == "ip" && w[2] == "address" && w[3] == "prefix-list"
		},
		func(a *Anonymizer, w []string) {
			for i := 4; i < len(w); i++ {
				w[i] = a.forceHashName(w[i])
			}
		}),

	// class-map [match-any|match-all] NAME / policy-map NAME
	nameEntry("class-policy-map",
		func(w []string) bool { return len(w) >= 2 },
		func(a *Anonymizer, w []string) { w[len(w)-1] = a.forceHashName(w[len(w)-1]) }),

	// class NAME (inside policy-map)
	nameEntry("class-ref",
		func(w []string) bool { return len(w) == 2 },
		func(a *Anonymizer, w []string) { w[1] = a.forceHashName(w[1]) }),

	// service-policy [input|output] NAME
	nameEntry("service-policy",
		func(w []string) bool { return len(w) >= 2 },
		func(a *Anonymizer, w []string) { w[len(w)-1] = a.forceHashName(w[len(w)-1]) }),
}

// mapNeighborToken maps a neighbor reference: an address maps through the
// IP tree; a peer-group name hashes.
func (a *Anonymizer) mapNeighborToken(w string) string {
	if _, ok := token.ParseIPv4(w); ok {
		return a.mapAddrToken(w)
	}
	return a.forceHashName(w)
}
