package anonymizer

import (
	"confanon/internal/token"
)

// Name-position handling. §4.1's basic method "anonymizes the names of
// class-maps, route-maps, and any other strings that could hold privileged
// information" — and a name must be hashed even when its words happen to
// appear in the pass-list: a route map called "LEVEL3-import" leaks a peer
// identity although "level" is an ordinary IOS keyword. Positions that
// syntactically hold a user-chosen identifier are therefore hashed as
// whole tokens, bypassing segmentation and the pass-list. Numbered
// references (ACL and list numbers) are local identifiers and stay.

// forceHashName hashes a user-chosen identifier; integers pass through.
func (a *Anonymizer) forceHashName(w string) string {
	if token.IsInteger(w) {
		return w
	}
	return a.forceHash(w)
}

// nameRules rewrites lines whose grammar places user-chosen identifiers at
// known positions. It returns the finished line and true when it consumed
// the line.
func (a *Anonymizer) nameRules(words, gaps []string) (string, bool) {
	switch {
	case words[0] == "route-map" && len(words) >= 2:
		// route-map NAME [permit|deny [seq]]
		words[1] = a.forceHashName(words[1])
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) >= 4 && words[2] == "route-map":
		// neighbor A route-map NAME in|out
		words[1] = a.mapNeighborToken(words[1])
		words[3] = a.forceHashName(words[3])
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) >= 4 && words[2] == "peer-group":
		// neighbor A peer-group NAME
		words[1] = a.mapNeighborToken(words[1])
		words[3] = a.forceHashName(words[3])
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) == 3 && words[2] == "peer-group":
		// neighbor NAME peer-group (definition form)
		words[1] = a.forceHashName(words[1])
		return token.Join(words, gaps), true

	case words[0] == "neighbor" && len(words) >= 4 && (words[2] == "prefix-list" || words[2] == "filter-list" || words[2] == "distribute-list"):
		// neighbor A prefix-list NAME in|out (filter/distribute lists are
		// usually numbered; names hash, numbers stay)
		words[1] = a.mapNeighborToken(words[1])
		words[3] = a.forceHashName(words[3])
		return token.Join(words, gaps), true

	case words[0] == "ip" && words[1] == "vrf" && len(words) == 3:
		// ip vrf NAME (definition)
		words[2] = a.forceHashName(words[2])
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 4 && words[1] == "vrf" && words[2] == "forwarding":
		// ip vrf forwarding NAME (interface reference)
		words[3] = a.forceHashName(words[3])
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 5 && words[1] == "nat" && words[2] == "pool":
		// ip nat pool NAME lo hi netmask M
		words[3] = a.forceHashName(words[3])
		a.genericWords(words[4:], nil)
		return token.Join(words, gaps), true

	case words[0] == "aaa" && len(words) >= 5 && words[1] == "group" && words[2] == "server":
		// aaa group server tacacs+|radius NAME
		words[4] = a.forceHashName(words[4])
		return token.Join(words, gaps), true

	case words[0] == "ip" && len(words) >= 3 && words[1] == "prefix-list":
		// ip prefix-list NAME seq N permit A/L [ge|le N]
		words[2] = a.forceHashName(words[2])
		a.genericWords(words[3:], nil)
		return token.Join(words, gaps), true

	case words[0] == "match" && len(words) >= 4 && words[1] == "ip" && words[2] == "address" && words[3] == "prefix-list":
		// match ip address prefix-list NAME...
		for i := 4; i < len(words); i++ {
			words[i] = a.forceHashName(words[i])
		}
		return token.Join(words, gaps), true

	case (words[0] == "class-map" || words[0] == "policy-map") && len(words) >= 2:
		// class-map [match-any|match-all] NAME / policy-map NAME
		words[len(words)-1] = a.forceHashName(words[len(words)-1])
		return token.Join(words, gaps), true

	case words[0] == "class" && len(words) == 2:
		// class NAME (inside policy-map)
		words[1] = a.forceHashName(words[1])
		return token.Join(words, gaps), true

	case words[0] == "service-policy" && len(words) >= 2:
		// service-policy [input|output] NAME
		words[len(words)-1] = a.forceHashName(words[len(words)-1])
		return token.Join(words, gaps), true
	}
	return "", false
}

// mapNeighborToken maps a neighbor reference: an address maps through the
// IP tree; a peer-group name hashes.
func (a *Anonymizer) mapNeighborToken(w string) string {
	if _, ok := token.ParseIPv4(w); ok {
		return a.mapAddrToken(w)
	}
	return a.forceHashName(w)
}
