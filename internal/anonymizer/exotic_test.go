package anonymizer

import (
	"strings"
	"testing"
)

// exoticConfig exercises IOS constructs outside the generator's core set:
// VRFs, MPLS, QoS policy maps, AAA server groups, NAT, HSRP, IPv6-ish
// lines, and odd spacing — the "huge set of commands" §3.1 warns about.
// The anonymizer must neither panic nor leak on any of it.
const exoticConfig = `hostname pe1.nyc.megacorp.com
!
ip vrf CUST-ACME
 rd 65000:101
 route-target export 65000:101
 route-target import 701:999
!
mpls label protocol ldp
mpls ldp router-id Loopback0
!
class-map match-any ACME-GOLD
 match ip dscp ef
policy-map ACME-QOS
 class ACME-GOLD
  priority percent 30
!
aaa group server tacacs+ MEGACORP-TAC
 server 12.0.0.5
!
interface Serial0/0
	ip address   12.44.55.1    255.255.255.252
 ip vrf forwarding CUST-ACME
 service-policy output ACME-QOS
 mpls ip
!
interface Vlan100
 ip address 12.44.60.1 255.255.255.0
 standby 1 ip 12.44.60.3
 standby 1 priority 110
 ip nat inside
!
ip nat pool MEGAPOOL 12.44.70.1 12.44.70.254 netmask 255.255.255.0
ip nat inside source list 7 pool MEGAPOOL overload
access-list 7 permit 12.44.60.0 0.0.0.255
!
router bgp 65000
 address-family ipv4 vrf CUST-ACME
 neighbor 12.44.55.2 remote-as 701
 neighbor 12.44.55.2 activate
 exit-address-family
!
end
`

func TestExoticConfigNoLeaks(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText(exoticConfig)
	for _, leak := range []string{"megacorp", "MEGACORP", "ACME", "acme", "MEGAPOOL", "nyc"} {
		if strings.Contains(out, leak) {
			t.Errorf("identity %q survived:\n%s", leak, out)
		}
	}
	// Keywords and structure survive.
	for _, keep := range []string{
		"ip vrf ", "rd ", "route-target export", "mpls label protocol ldp",
		"class-map match-any", "policy-map", "priority percent 30",
		"aaa group server tacacs+", "service-policy output",
		"standby 1 priority 110", "ip nat inside", "netmask 255.255.255.0",
		"address-family ipv4 vrf", "exit-address-family",
	} {
		if !strings.Contains(out, keep) {
			t.Errorf("structure %q destroyed:\n%s", keep, out)
		}
	}
	// Route targets carry ASN halves: public 701:999 must move, private
	// 65000:101 must keep its private half.
	if strings.Contains(out, "701:999") {
		t.Error("public route-target survived")
	}
	if !strings.Contains(out, "65000:") {
		t.Error("private route-target ASN half changed")
	}
	// NAT pool addresses are mapped but the pool stays a coherent range
	// within one /24 (prefix preservation).
	var poolLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "ip nat pool") {
			poolLine = l
		}
	}
	if poolLine == "" {
		t.Fatal("nat pool line lost")
	}
	f := strings.Fields(poolLine)
	// ip nat pool NAME lo hi netmask MASK
	if len(f) < 8 {
		t.Fatalf("pool line mangled: %q", poolLine)
	}
	lo, hi := f[4], f[5]
	if lo[:strings.LastIndex(lo, ".")] != hi[:strings.LastIndex(hi, ".")] {
		t.Errorf("nat pool bounds left their /24: %s .. %s", lo, hi)
	}
	// Consistency: the VRF name reference on the interface matches its
	// definition.
	var defName, refName string
	for _, l := range strings.Split(out, "\n") {
		w := strings.Fields(l)
		if len(w) >= 3 && w[0] == "ip" && w[1] == "vrf" && w[2] != "forwarding" {
			defName = w[2]
		}
		if len(w) >= 4 && w[1] == "vrf" && w[2] == "forwarding" {
			refName = w[3]
		}
	}
	if defName == "" || defName != refName {
		t.Errorf("vrf referential integrity broken: def=%q ref=%q", defName, refName)
	}
	// Leak report clean (route-target 701 is located and mapped).
	confirmed := 0
	for _, l := range a.LeakReport(out) {
		if !l.LikelyFalsePositive {
			confirmed++
			t.Logf("leak: %s", l)
		}
	}
	if confirmed != 0 {
		t.Errorf("%d confirmed leaks on exotic config", confirmed)
	}
}

func TestExoticConfigIrregularWhitespace(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("interface Serial0/0\n\tip address   12.44.55.1    255.255.255.252\n")
	if !strings.Contains(out, "255.255.255.252") {
		t.Errorf("mask altered under irregular spacing: %s", out)
	}
	if strings.Contains(out, "12.44.55.1") {
		t.Errorf("address survived under irregular spacing: %s", out)
	}
	// The original spacing is preserved byte for byte around the words.
	if !strings.Contains(out, "   ") {
		t.Errorf("whitespace not preserved: %q", out)
	}
}
