package anonymizer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"confanon/internal/config"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

// TestAnonymizeNeverPanicsOnRandomText: the anonymizer must accept
// arbitrary bytes without panicking (operators feed it whatever their
// rancid archive contains).
func TestAnonymizeNeverPanicsOnRandomText(t *testing.T) {
	a := New(Options{Salt: []byte("fuzz")})
	f := func(text string) bool {
		_ = a.AnonymizeText(text)
		_ = a.LeakReport(text)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAnonymizeHandlesPathologicalLines: very long lines, deep banners,
// unterminated banners, binary garbage, huge numbers.
func TestAnonymizeHandlesPathologicalLines(t *testing.T) {
	a := New(Options{Salt: []byte("p")})
	cases := []string{
		strings.Repeat("x", 1<<16),
		"banner motd ^C\n" + strings.Repeat("secret corp name\n", 1000), // unterminated
		"router bgp 99999999999999999999\n",
		"neighbor 999.999.999.999 remote-as abc\n",
		"ip as-path access-list 1 permit " + strings.Repeat("(", 100) + "\n",
		"set community " + strings.Repeat("701:1 ", 500) + "\n",
		"\x00\x01\x02 binary \xff\xfe\n",
		"ip address 1.2.3.4\n", // missing mask
		strings.Repeat("! c\n", 10000),
	}
	for _, in := range cases {
		out := a.AnonymizeText(in)
		if strings.Contains(out, "secret") {
			t.Error("unterminated banner content leaked")
		}
	}
}

// TestMalformedRegexpFallsBackToHash: a syntactically invalid policy
// regexp must be hashed, not passed through.
func TestMalformedRegexpFallsBackToHash(t *testing.T) {
	a := New(Options{Salt: []byte("m")})
	out := a.AnonymizeText("ip as-path access-list 7 permit _70[1-\n")
	if strings.Contains(out, "70[1-") {
		t.Errorf("malformed regexp survived: %s", out)
	}
	if a.Stats().RegexpFallbacks != 1 {
		t.Errorf("fallback not counted: %+v", a.Stats())
	}
}

// TestRandomNetworksValidateProperty: for random seeds, the anonymized
// network always passes both validation suites — the paper's end-to-end
// property as a property test.
func TestRandomNetworksValidateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for i := 0; i < 8; i++ {
		seed := rng.Int63()
		kind := netgen.Backbone
		if i%2 == 0 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{
			Seed: seed, Kind: kind, Routers: 8 + rng.Intn(20),
			UseASPathAlternation: rng.Intn(2) == 0,
			UseCommunityRegexps:  rng.Intn(2) == 0,
			UsePublicASNRanges:   rng.Intn(4) == 0,
			UsePrivateASNRanges:  rng.Intn(4) == 0,
			UseCommunityRanges:   rng.Intn(4) == 0,
			Compartmentalized:    rng.Intn(2) == 0,
		})
		a := New(Options{Salt: []byte(n.Salt)})
		files := n.RenderAll()
		var pre, post []*config.Config
		for _, text := range files {
			a.Prescan(text)
		}
		for _, text := range files {
			pre = append(pre, config.Parse(text))
			post = append(post, config.Parse(a.AnonymizeText(text)))
		}
		if diffs := validate.Suite1(pre, post); len(diffs) != 0 {
			t.Errorf("seed %d: suite 1 failed: %v", seed, diffs)
		}
		if !validate.Suite2(pre, post).OK() {
			t.Errorf("seed %d: suite 2 failed", seed)
		}
	}
}

// TestEmptyAndWhitespaceInputs round out the edges.
func TestEmptyAndWhitespaceInputs(t *testing.T) {
	a := New(Options{Salt: []byte("e")})
	for _, in := range []string{"", "\n", "   \n\t\n", "!\n"} {
		out := a.AnonymizeText(in)
		if len(out) > len(in)+2 {
			t.Errorf("trivial input grew: %q -> %q", in, out)
		}
	}
}

// TestSaltIsolation: outputs under different salts share no hashed
// identifiers (cross-network unlinkability between different owners).
func TestSaltIsolation(t *testing.T) {
	in := "route-map SECRET-POLICY permit 10\n"
	a1 := New(Options{Salt: []byte("owner-a")})
	a2 := New(Options{Salt: []byte("owner-b")})
	o1, o2 := a1.AnonymizeText(in), a2.AnonymizeText(in)
	n1 := strings.Fields(o1)[1]
	n2 := strings.Fields(o2)[1]
	if n1 == n2 {
		t.Error("same hash under different salts: cross-owner linkable")
	}
}
