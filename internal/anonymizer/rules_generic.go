package anonymizer

import (
	"strconv"
	"strings"

	"confanon/internal/config"
	"confanon/internal/token"
	"confanon/internal/trace"
)

// The generic word pass: the engine's terminal stage, where the
// token-scoped registry rules fire — the IP rules (I1–I5), the
// bare-community rule (K1), and the basic method (segmentation S1/S2 +
// pass-list + hash) — over every word of a line not consumed by a line
// rule.

// genericWords applies the token-scoped rules to a word slice.
//
// Words are stripped of structural punctuation first (JunOS attaches
// semicolons, brackets, and quotes to values: "address 12.0.0.1/30;"),
// processed on their cores, and reassembled.
func (a *Anonymizer) genericWords(words []string, st *fileState) {
	leads := make([]string, len(words))
	trails := make([]string, len(words))
	cores := make([]string, len(words))
	for i, w := range words {
		leads[i], cores[i], trails[i] = token.TrimPunct(w)
	}
	a.genericCores(cores, st)
	for i := range words {
		words[i] = leads[i] + cores[i] + trails[i]
	}
}

// genericCores runs the word-level rules over punctuation-stripped cores.
func (a *Anonymizer) genericCores(words []string, st *fileState) {
	for i := 0; i < len(words); i++ {
		w := words[i]
		if w == "" {
			continue
		}
		if a.lineShield != nil && a.lineShield[w] {
			// A pack line rule already produced this value on this line;
			// re-hashing it would break the pack action's output shape.
			continue
		}
		if a.sensitiveTokens[w] {
			// Operator-added rule: treat a numeric token as an ASN,
			// anything else as a hashable word.
			a.curRule = pseudoRuleOperator
			if token.IsInteger(w) {
				words[i] = a.mapASNToken(w)
			} else {
				words[i] = a.forceHash(w)
			}
			continue
		}
		if addr, ok := token.ParseIPv4(w); ok {
			// I1 variant: "network A mask M" (BGP network statements).
			if i+2 < len(words) && words[i+1] == "mask" {
				if m, mok := token.ParseIPv4(words[i+2]); mok {
					if length, isMask := config.MaskToLen(m); isMask {
						a.hit(RuleAddrNetmask)
						words[i] = a.mapWithPrefix(addr, length)
						i += 2 // "mask" keyword and the mask itself pass through
						continue
					}
				}
			}
			// Pair rules I1/I2 first: address followed by a netmask or
			// wildcard.
			if i+1 < len(words) {
				if second, ok2 := token.ParseIPv4(words[i+1]); ok2 {
					if length, isMask := config.MaskToLen(second); isMask && second != 0 {
						a.hit(RuleAddrNetmask)
						words[i] = a.mapWithPrefix(addr, length)
						i++ // mask itself passes through unchanged
						continue
					}
					if length, isWild := config.MaskToLen(^second); isWild {
						a.hit(RuleAddrWildcard)
						words[i] = a.mapWithPrefix(addr, length)
						i++ // wildcard passes through unchanged
						continue
					}
				}
			}
			// I5: classful network statements under RIP/EIGRP/IGRP.
			if st != nil && (st.block == "router rip" || st.block == "router eigrp" || st.block == "router igrp") &&
				i > 0 && words[i-1] == "network" {
				a.hit(RuleClassfulNet)
				length, _ := config.MaskToLen(config.ClassfulMask(addr))
				words[i] = a.mapWithPrefix(addr, length)
				continue
			}
			// I3: bare address.
			words[i] = a.mapAddrToken(w)
			continue
		}
		if addr, length, ok := token.ParseIPv4Prefix(w); ok {
			a.hit(RuleSlashPrefix)
			a.stats.IPsMapped++
			mapped := a.ip.MapPrefix(addr, length)
			net := addr & config.LenToMask(length)
			if mapped != net {
				a.seenIPs[net] = true
			}
			words[i] = token.FormatIPv4(mapped) + "/" + strconv.Itoa(length)
			if a.tracer != nil {
				a.decide(trace.ClassIP, words[i])
			}
			continue
		}
		if _, _, ok := token.ParseCommunity(w); ok {
			a.hit(RuleBareCommunity)
			words[i] = a.mapCommunityToken(w)
			continue
		}
		// Pack token rules (MAC addresses and the like) fire between the
		// structural token classes above and the basic method below.
		if len(a.rules.token) > 0 {
			if repl, ok := a.applyTokenRules(w); ok {
				words[i] = repl
				continue
			}
		}
		if token.IsInteger(w) {
			// "Simple integers are generally not anonymized."
			continue
		}
		words[i] = a.hashIfPrivileged(w)
	}
}

// mapWithPrefix pins the subnet address first (so subnet-address
// preservation holds regardless of the order hosts appear in the file),
// then maps the full address.
func (a *Anonymizer) mapWithPrefix(addr uint32, length int) string {
	a.stats.IPsMapped++
	net := addr & config.LenToMask(length)
	mappedNet := a.ip.MapPrefix(net, length)
	if mappedNet != net {
		a.seenIPs[net] = true
	}
	if addr == net {
		res := token.FormatIPv4(mappedNet)
		if a.tracer != nil {
			a.decide(trace.ClassIP, res)
		}
		return res
	}
	out := a.ip.MapV4(addr)
	if out != addr {
		a.seenIPs[addr] = true
	}
	res := token.FormatIPv4(out)
	if a.tracer != nil {
		a.decide(trace.ClassIP, res)
	}
	return res
}

// hashIfPrivileged applies the basic method to one word: segment (S1/S2),
// consult the pass-list, and hash what is not known innocuous.
func (a *Anonymizer) hashIfPrivileged(w string) string {
	switch token.Classify(w) {
	case token.Email, token.Phone, token.HexString:
		return a.forceHash(w)
	case token.Punct:
		return w
	}
	// Whole-word pass-list hit first: hyphenated keywords such as
	// "route-map" and "access-list" are listed as units.
	if a.pass.Contains(w) {
		a.stats.TokensPassed++
		if a.tracer != nil {
			a.decideAs(pseudoRuleBasic, trace.ClassPassed, w)
		}
		return w
	}
	segs := token.SplitWord(w)
	if len(segs) > 1 {
		a.hit(RuleSegmentAlpha)
		hasWords := 0
		for _, s := range segs {
			if s.Kind == token.Word {
				hasWords++
			}
		}
		if hasWords > 1 {
			a.hit(RuleSegmentWords)
		}
	}
	var b strings.Builder
	changed := false
	for _, s := range segs {
		if s.Kind != token.Word {
			b.WriteString(s.Text)
			continue
		}
		if a.pass.Contains(s.Text) {
			a.stats.TokensPassed++
			b.WriteString(s.Text)
			continue
		}
		a.stats.TokensHashed++
		a.seenWords[s.Text] = true
		b.WriteString(hashWord(a.opts.Salt, s.Text))
		changed = true
	}
	if !changed {
		if a.tracer != nil {
			a.decideAs(pseudoRuleBasic, trace.ClassPassed, w)
		}
		return w
	}
	res := b.String()
	if a.tracer != nil {
		a.decideAs(pseudoRuleBasic, trace.ClassHashed, res)
	}
	return res
}

// forceHash hashes a whole token regardless of the pass-list; used where
// position marks the value as identity-bearing (credentials, hostnames,
// fallbacks).
func (a *Anonymizer) forceHash(w string) string {
	a.stats.TokensHashed++
	a.seenWords[w] = true
	out := hashWord(a.opts.Salt, w)
	if a.tracer != nil {
		a.decide(trace.ClassHashed, out)
	}
	return out
}

// hashAllSegments hashes every alphabetic segment of a word, keeping the
// punctuation skeleton (dots of a hostname), ignoring the pass-list.
func (a *Anonymizer) hashAllSegments(w string) string {
	var b strings.Builder
	for _, s := range token.SplitWord(w) {
		if s.Kind == token.Word {
			a.stats.TokensHashed++
			a.seenWords[s.Text] = true
			b.WriteString(hashWord(a.opts.Salt, s.Text))
		} else {
			b.WriteString(s.Text)
		}
	}
	res := b.String()
	if a.tracer != nil {
		a.decide(trace.ClassHashed, res)
	}
	return res
}
