package anonymizer

import (
	"sync"
	"sync/atomic"

	"confanon/internal/asn"
	"confanon/internal/cregex"
	"confanon/internal/passlist"
	"confanon/internal/rulepack"
)

// Program is the immutable compiled half of the anonymizer: everything
// that is a pure function of the owner salt and the options. It carries
// the pass-list index, the salt-derived ASN and community-value
// permutations, and a memoized regexp-rewrite cache. A Program holds no
// per-corpus state, so one Program may be shared by any number of
// Sessions (and their workers) concurrently; the mutable half — the IP
// mapping, the leak recorder, the statistics — lives in Session.
type Program struct {
	opts  Options
	pass  *passlist.List
	perms asn.Salted

	// rules is the compiled dispatch inventory: the canonical built-in
	// pack merged with Options.RulePacks (pack.go). Programs without
	// user packs share the init-compiled builtin set.
	rules *ruleSet

	// rewrites memoizes cregex pattern rewrites keyed by (kind, pattern).
	// The rewrite is a pure function of the pattern and the salt-derived
	// permutations, so the first caller computes it once (singleflight via
	// sync.Once) and every later occurrence — same file, other files,
	// other sessions — replays the cached result and its recorded ASNs.
	rewrites    sync.Map // rewriteKey → *rewriteEntry
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

type rewriteKey struct {
	kind    byte // 'a' = AS-path regexp, 'c' = community regexp
	pattern string
}

type rewriteEntry struct {
	once sync.Once
	res  cregex.Result
	err  error
	// asns lists (deduplicated, in first-mapped order) the public ASNs
	// the rewrite permuted; they are replayed into each caller's leak
	// recorder so a cache hit records exactly what a fresh rewrite would.
	asns []uint32
}

// Compile builds the immutable Program for one owner salt. The result is
// safe for concurrent use and is meant to be built once and shared.
// Compile panics when Options.RulePacks do not merge (duplicate rule
// IDs, unresolvable builtin references, registry conflicts); callers
// loading operator-supplied packs should use CompileChecked.
func Compile(opts Options) *Program {
	p, err := CompileChecked(opts)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileChecked is Compile with pack-merge errors reported instead of
// panicking. Packs already validated by rulepack.Parse can still fail
// here: validity is a property of one document, mergeability of the
// set (cross-pack duplicate IDs, registry conflicts, stage references).
func CompileChecked(opts Options) (*Program, error) {
	pl := opts.PassList
	if pl == nil {
		pl = passlist.Builtin()
	}
	rules := builtinRuleSet
	if len(opts.RulePacks) > 0 {
		var err error
		rules, err = compileRuleSet(opts.RulePacks, true)
		if err != nil {
			return nil, err
		}
	}
	return &Program{opts: opts, pass: pl, perms: asn.NewSalted(opts.Salt), rules: rules}, nil
}

// Options returns the options the Program was compiled with.
func (p *Program) Options() Options { return p.opts }

// Packs returns the identity of every pack compiled into this Program,
// the canonical built-in pack first, then Options.RulePacks in load
// order. These are the identities the run report, the bench policy
// fingerprint, and conftrace drift detection thread through.
func (p *Program) Packs() []rulepack.Meta {
	out := make([]rulepack.Meta, len(p.rules.packs))
	// compileRuleSet appends the builtin pack last (user rules dispatch
	// first); report it first — it is the baseline everything extends.
	n := len(out)
	out[0] = p.rules.packs[n-1]
	copy(out[1:], p.rules.packs[:n-1])
	return out
}

// CacheHits reports how many regexp rewrites were answered from the memo.
func (p *Program) CacheHits() int64 { return p.cacheHits.Load() }

// CacheMisses reports how many regexp rewrites were computed (one per
// distinct pattern per kind).
func (p *Program) CacheMisses() int64 { return p.cacheMisses.Load() }

// rewrite memoizes one pattern rewrite. compute runs at most once per
// (kind, pattern); record receives every ASN the (possibly cached)
// rewrite permuted, so the caller's leak recorder sees the same entries
// a fresh rewrite would have produced.
func (p *Program) rewrite(key rewriteKey, record func(uint32),
	compute func(perm func(uint32) uint32) (cregex.Result, error)) (cregex.Result, error) {

	v, _ := p.rewrites.LoadOrStore(key, &rewriteEntry{})
	e := v.(*rewriteEntry)
	computed := false
	e.once.Do(func() {
		computed = true
		seen := make(map[uint32]bool)
		perm := func(a uint32) uint32 {
			out := p.perms.ASN.Map(a)
			if out != a && !seen[a] {
				seen[a] = true
				e.asns = append(e.asns, a)
			}
			return out
		}
		e.res, e.err = compute(perm)
	})
	if computed {
		p.cacheMisses.Add(1)
	} else {
		p.cacheHits.Add(1)
	}
	for _, a := range e.asns {
		record(a)
	}
	return e.res, e.err
}

// rewriteASN rewrites an AS-path regexp through the memo.
func (p *Program) rewriteASN(pattern string, record func(uint32)) (cregex.Result, error) {
	return p.rewrite(rewriteKey{kind: 'a', pattern: pattern}, record,
		func(perm func(uint32) uint32) (cregex.Result, error) {
			return cregex.RewriteASN(pattern, perm, p.opts.Style)
		})
}

// rewriteCommunity rewrites a community regexp through the memo.
func (p *Program) rewriteCommunity(pattern string, record func(uint32)) (cregex.Result, error) {
	return p.rewrite(rewriteKey{kind: 'c', pattern: pattern}, record,
		func(perm func(uint32) uint32) (cregex.Result, error) {
			return cregex.RewriteCommunity(pattern, perm, p.perms.Value.Map, p.opts.Style)
		})
}
