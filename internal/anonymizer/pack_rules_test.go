package anonymizer

// Engine-level tests for user-pack compilation and the declarative
// actions: line rules (every action), the token pass, the MAC token
// class, and CheckPack's rejection set. The facade-level behavior
// (parallel identity, strict gating, the shipped examples) is covered
// in the root package; these pin the mechanisms underneath.

import (
	"strings"
	"testing"

	"confanon/internal/rulepack"
)

func mustPack(t *testing.T, src string) *rulepack.Pack {
	t.Helper()
	p, err := rulepack.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func packAnon(t *testing.T, src string) *Anonymizer {
	t.Helper()
	if err := CheckPack(mustPack(t, src)); err != nil {
		t.Fatal(err)
	}
	return New(Options{Salt: []byte("pack-test"), RulePacks: []*rulepack.Pack{mustPack(t, src)}})
}

func TestPackLineActions(t *testing.T) {
	const pack = `{
		"schema": "confanon.rulepack/v1",
		"name": "line-actions",
		"version": "0.1.0",
		"rules": [
			{"id": "la-hash", "class": "name", "scope": "line", "keys": ["widget"], "action": "hash", "doc": "x"},
			{"id": "la-segments", "class": "name", "scope": "line", "keys": ["gadget"], "action": "hash-segments", "doc": "x"},
			{"id": "la-digits", "class": "misc", "scope": "line", "keys": ["dial-plan"], "action": "digits", "doc": "x"},
			{"id": "la-drop", "class": "comment", "scope": "line", "keys": ["annotation"], "action": "drop-line", "doc": "x"},
			{"id": "la-word", "class": "name", "scope": "line", "keys": ["thing"], "action": "hash",
			 "match": {"word": "named"}, "doc": "only after the guard word"}
		]
	}`
	a := packAnon(t, pack)
	in := strings.Join([]string{
		"widget ACME-CORE",
		"gadget pop1.acme.example",
		"dial-plan 14085550100",
		"annotation bought from acme in 2001",
		"thing named SECRET",
		"thing unnamed PUBLIC-12",
		"",
	}, "\n")
	out := a.AnonymizeText(in)
	lines := strings.Split(out, "\n")

	if strings.Contains(out, "ACME-CORE") || strings.Contains(out, "SECRET") {
		t.Errorf("hash action left the original:\n%s", out)
	}
	// hash-segments keeps the dotted structure.
	gf := strings.Fields(lines[1])
	if len(gf) != 2 || strings.Count(gf[1], ".") != 2 || strings.Contains(gf[1], "acme") {
		t.Errorf("hash-segments reshaped %q", lines[1])
	}
	// digits maps to another all-digit token of the same length.
	df := strings.Fields(lines[2])
	if len(df) != 2 || len(df[1]) != len("14085550100") || df[1] == "14085550100" ||
		strings.Trim(df[1], "0123456789") != "" {
		t.Errorf("digits action output %q", lines[2])
	}
	if strings.Contains(out, "annotation") || strings.Contains(out, "bought") {
		t.Errorf("drop-line left the line:\n%s", out)
	}
	if len(lines) != len(strings.Split(in, "\n"))-1 {
		t.Errorf("drop-line should remove exactly one line:\n%s", out)
	}
	// The word guard: "thing unnamed ..." has no "named" word, so the
	// rule declines and the generic pass does the hashing instead — but
	// the rule must not hit.
	hits := a.Stats().RuleHits()
	if hits["la-word"] != 1 {
		t.Errorf("guarded rule hits = %d, want 1", hits["la-word"])
	}
	if hits["la-hash"] != 1 || hits["la-drop"] != 1 {
		t.Errorf("rule hits = %v", hits)
	}
}

func TestPackTokenAndMACActions(t *testing.T) {
	const pack = `{
		"schema": "confanon.rulepack/v1",
		"name": "token-actions",
		"version": "0.1.0",
		"rules": [
			{"id": "ta-mac", "class": "misc", "scope": "token", "action": "mac", "doc": "x",
			 "match": {"pattern": "[0-9a-fA-F][0-9a-fA-F]:[0-9a-fA-F][0-9a-fA-F]:[0-9a-fA-F][0-9a-fA-F]:[0-9a-fA-F][0-9a-fA-F]:[0-9a-fA-F][0-9a-fA-F]:[0-9a-fA-F][0-9a-fA-F]"}}
		]
	}`
	a := packAnon(t, pack)
	out := a.AnonymizeText("interface Ethernet0\n mac-address 01:00:5e:aa:bb:cc\n")
	var mapped string
	for _, tok := range strings.Fields(out) {
		if strings.Count(tok, ":") == 5 {
			mapped = tok
		}
	}
	if mapped == "" || mapped == "01:00:5e:aa:bb:cc" {
		t.Fatalf("MAC not mapped shape-preservingly:\n%s", out)
	}
	if hexVal(mapped[1])&0x01 == 0 {
		t.Errorf("multicast bit lost in %q", mapped)
	}

	// The direct mapping paths, including the fallbacks.
	if got := a.mapMACToken("00:11:22:33:44"); got == "00:11:22:33:44" {
		t.Errorf("short hex token mapped to itself")
	}
	if got := a.mapMACToken("zz:11:22:33:44:55"); strings.Contains(got, "zz") {
		t.Errorf("non-hex MAC fallback leaked input: %q", got)
	}
	same := a.mapMACToken("aa-bb-cc-dd-ee-0f")
	if !strings.Contains(same, "-") || strings.Count(same, "-") != 5 {
		t.Errorf("dash separators not preserved: %q", same)
	}
}

func TestCheckPackRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown builtin", `{"schema": "confanon.rulepack/v1", "name": "p", "version": "1", "rules": [
			{"id": "x", "rule_id": "C3-strip-comment-lines", "class": "comment", "scope": "line", "builtin": "no-such-entry", "doc": "x"}]}`},
		{"builtin stage", `{"schema": "confanon.rulepack/v1", "name": "p", "version": "1", "rules": [
			{"id": "x", "rule_id": "C1-strip-banner-blocks", "class": "comment", "scope": "line", "builtin": "banner-body", "doc": "x"}]}`},
		{"unknown rule_id", `{"schema": "confanon.rulepack/v1", "name": "p", "version": "1", "rules": [
			{"id": "x", "rule_id": "Z9-not-registered", "class": "misc", "scope": "line", "keys": ["k"], "action": "hash", "doc": "x"}]}`},
		{"builtin id collision", `{"schema": "confanon.rulepack/v1", "name": "p", "version": "1", "rules": [
			{"id": "hostname", "class": "name", "scope": "line", "keys": ["hostname"], "action": "hash", "doc": "x"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckPack(mustPack(t, tc.src)); err == nil {
				t.Errorf("CheckPack accepted a pack with %s", tc.name)
			}
		})
	}
	// And the positive case: a well-formed user pack checks out.
	ok := `{"schema": "confanon.rulepack/v1", "name": "p", "version": "1", "rules": [
		{"id": "fine-rule", "class": "misc", "scope": "line", "keys": ["frob"], "action": "hash", "doc": "x"}]}`
	if err := CheckPack(mustPack(t, ok)); err != nil {
		t.Errorf("CheckPack rejected a valid pack: %v", err)
	}
}
