package anonymizer

import (
	"fmt"

	"confanon/internal/token"
)

// This file implements the extension §5 sketches: "it might be well known
// that all addresses used by AS number X have prefix Y ... If the
// anonymizer is provided with the well known external information on
// which the implicit relationship is based, it can be extended to
// preserve these relationships as well."
//
// An operator declares the known (ASN, prefix) relationships before
// anonymizing; the anonymizer then emits, alongside the configs, the
// mapped relationship pairs — so a researcher reading the anonymized data
// can still tell that routes dropped by AS-number X' and routes dropped by
// prefix Y' target the same external network, without learning which.

// Relation is one declared external relationship between an AS number and
// an address prefix.
type Relation struct {
	ASN    uint32
	Prefix uint32
	Len    int
}

// MappedRelation is the anonymized image of a declared relation.
type MappedRelation struct {
	ASN    uint32
	Prefix uint32
	Len    int
}

// String renders the mapped relation for the supplementary release file.
func (r MappedRelation) String() string {
	return fmt.Sprintf("AS%d owns %s/%d", r.ASN, token.FormatIPv4(r.Prefix), r.Len)
}

// DeclareRelation registers well-known external knowledge: the given
// public ASN originates the given prefix. The pair is resolved through the
// same ASN permutation and IP mapping as the configs (the prefix is also
// pinned in the tree immediately, so later occurrences in config text map
// identically). Relations are Session state: every worker shares them.
func (a *Anonymizer) DeclareRelation(rel Relation) { a.sess.DeclareRelation(rel) }

// Relations returns the anonymized images of every declared relation, for
// release alongside the anonymized configs.
func (a *Anonymizer) Relations() []MappedRelation { return a.sess.Relations() }

// HashFileName derives an anonymized file name from (typically) a
// hostname-derived name, preserving only a trailing "-confg"-style suffix
// so tooling conventions survive.
func (a *Anonymizer) HashFileName(name string) string {
	suffix := ""
	if n := len(name); n > 6 && name[n-6:] == "-confg" {
		suffix = "-confg"
		name = name[:n-6]
	}
	return hashWord(a.opts.Salt, name) + suffix
}
