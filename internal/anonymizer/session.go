package anonymizer

import (
	"sync"
	"sync/atomic"

	"confanon/internal/config"
	"confanon/internal/ipanon"
	"confanon/internal/metrics"
	"confanon/internal/trace"
)

// Session is the mutable per-owner half of the anonymizer: the IP
// mapping, the leak recorder, the operator-added sensitive tokens, the
// declared relations, and the merged statistics. One Session = one owner
// salt = one consistent mapping; a Session is safe for concurrent use by
// any number of workers (Acquire/Release), which is what the parallel
// corpus mode and the portal's concurrent uploads build on.
//
// Workers keep their hot-path state (statistics, recorder entries)
// private and reconcile it into the Session at file boundaries, so the
// per-token cost of sharing is zero; the shared IP mapper is internally
// concurrency-safe (lock-free on resolved addresses).
type Session struct {
	prog *Program

	// ipMu guards replacement of the mapper (LoadMapping); the mapper
	// itself is safe for concurrent use.
	ipMu sync.RWMutex
	ip   ipanon.Mapper

	// stats is the merged record of every completed file; workers apply
	// signed deltas with atomic adds, so reads must go through Stats().
	stats Stats

	// The leak recorder: every public ASN, hashed word, and mapped
	// original address any worker saw. Workers batch their entries and
	// publish them here at file boundaries under recMu.
	recMu     sync.RWMutex
	seenASNs  map[string]bool
	seenWords map[string]bool
	seenIPs   map[uint32]bool

	// sensTok is the operator-added sensitive-token set, copy-on-write so
	// workers read it without locking.
	sensTok atomic.Pointer[map[string]bool]

	relMu     sync.Mutex
	relations []Relation

	// ipOuts caches the mapping's output set for the leak report's
	// false-positive classification; ipOutsLen tracks staleness.
	outsMu    sync.Mutex
	ipOuts    map[uint32]bool
	ipOutsLen int

	reg *metrics.Registry
	met *sessionMetrics

	// tracer is the span/ledger recorder every worker of this Session
	// writes into (copied from Options.Tracer at NewSession; nil =
	// untraced). Census sessions (NewCensus) always run untraced: their
	// files are throwaway rehearsals whose spans and decisions would
	// duplicate the real rewrite's.
	tracer *trace.Tracer

	pool sync.Pool
}

// sessionMetrics holds the session-level instruments that reconcile
// shared cumulative sources (the mapper, the permutations, the rewrite
// cache) into registry counters. The baselines are session-held and
// mutex-guarded because many workers flush against the same sources.
type sessionMetrics struct {
	mu        sync.Mutex
	ipEntries *metrics.Counter
	ipRemaps  *metrics.Counter
	asnWalks  *metrics.Counter
	cacheHit  *metrics.Counter
	cacheMiss *metrics.Counter

	baseIPLen  int64
	baseRemaps int64
	baseWalks  int64
	baseHits   int64
	baseMisses int64
}

// NewSession creates a Session with a fresh IP mapping (shaped tree, or
// Crypto-PAn under StatelessIP).
func (p *Program) NewSession() *Session {
	var mapper ipanon.Mapper
	if p.opts.StatelessIP {
		mapper = ipanon.NewCryptoMapper(p.opts.Salt)
	} else {
		mapper = ipanon.NewTree(ipanon.DefaultOptions(p.opts.Salt))
	}
	return p.newSession(mapper)
}

func (p *Program) newSession(mapper ipanon.Mapper) *Session {
	s := &Session{
		prog:      p,
		ip:        mapper,
		seenASNs:  make(map[string]bool),
		seenWords: make(map[string]bool),
		seenIPs:   make(map[uint32]bool),
	}
	empty := make(map[string]bool)
	s.sensTok.Store(&empty)
	s.tracer = p.opts.Tracer
	return s
}

// Program returns the compiled half this Session runs.
func (s *Session) Program() *Program { return s.prog }

// mapper returns the current IP mapper.
func (s *Session) mapper() ipanon.Mapper {
	s.ipMu.RLock()
	defer s.ipMu.RUnlock()
	return s.ip
}

// Acquire returns a worker bound to this Session, creating one if the
// pool is empty. Workers are single-goroutine engines; acquire one per
// goroutine and Release it when done so its final partial state flushes.
func (s *Session) Acquire() *Anonymizer {
	a, _ := s.pool.Get().(*Anonymizer)
	if a == nil {
		a = s.newWorker()
	}
	// Refresh the shared-state snapshots: the mapper (LoadMapping may
	// have replaced it) and the sensitive-token set.
	a.ip = s.mapper()
	a.sensitiveTokens = *s.sensTok.Load()
	return a
}

// Release flushes the worker's unreconciled state into the Session and
// returns it to the pool.
func (s *Session) Release(a *Anonymizer) {
	a.flush()
	s.pool.Put(a)
}

// Bind returns a dedicated worker that is never pooled: the single-
// goroutine convenience handle New() exposes. Its state still reconciles
// into the Session at every file boundary.
func (s *Session) Bind() *Anonymizer { return s.Acquire() }

func (s *Session) newWorker() *Anonymizer {
	a := &Anonymizer{
		prog:            s.prog,
		sess:            s,
		opts:            s.prog.opts,
		pass:            s.prog.pass,
		perms:           s.prog.perms,
		ip:              s.mapper(),
		stats:           newStats(),
		seenASNs:        make(map[string]bool),
		seenWords:       make(map[string]bool),
		seenIPs:         make(map[uint32]bool),
		sensitiveTokens: *s.sensTok.Load(),
		tracer:          s.tracer,
	}
	if s.reg != nil {
		a.metrics = newEngineMetrics(s.reg)
	}
	return a
}

// Stats returns a consistent snapshot of the merged statistics.
func (s *Session) Stats() Stats { return s.stats.snapshotAtomic() }

// SetMetrics wires a shared registry into the Session: workers created
// afterwards flush their counters into it, and the session-level gauges
// (mapper size, remaps, permutation walks, rewrite-cache hits) register
// immediately. A nil registry unwires future workers.
func (s *Session) SetMetrics(reg *metrics.Registry) {
	s.reg = reg
	if reg == nil {
		s.met = nil
		return
	}
	m := &sessionMetrics{}
	m.ipEntries = reg.Counter("confanon_ipmap_entries_total", "distinct addresses resolved by the IP mapping")
	m.ipRemaps = reg.Counter("confanon_ipmap_remaps_total", "IP collision-chase steps (§4.3 special-range remapping)")
	m.asnWalks = reg.Counter("confanon_asn_cycle_walks_total", "ASN permutation cycle-walking steps (§4.4)")
	m.cacheHit = reg.Counter("confanon_cregex_cache_hits_total", "regexp rewrites answered from the compiled Program's memo")
	m.cacheMiss = reg.Counter("confanon_cregex_cache_misses_total", "regexp rewrites computed and memoized by the compiled Program")
	s.met = m
}

// flushGauges reconciles the shared cumulative sources — mapper entries
// and remaps, permutation cycle walks, rewrite-cache hits — into the
// registry. Session-level (one baseline, mutex-guarded) because the
// sources are shared by every worker.
func (s *Session) flushGauges() {
	m := s.met
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ip := s.mapper()
	if d := int64(ip.Len()) - m.baseIPLen; d != 0 {
		m.ipEntries.Add(d)
		m.baseIPLen += d
	}
	if d := ip.Remaps() - m.baseRemaps; d != 0 {
		m.ipRemaps.Add(d)
		m.baseRemaps += d
	}
	if d := s.prog.perms.ASN.CycleWalks() - m.baseWalks; d != 0 {
		m.asnWalks.Add(d)
		m.baseWalks += d
	}
	if d := s.prog.CacheHits() - m.baseHits; d != 0 {
		m.cacheHit.Add(d)
		m.baseHits += d
	}
	if d := s.prog.CacheMisses() - m.baseMisses; d != 0 {
		m.cacheMiss.Add(d)
		m.baseMisses += d
	}
}

// AddSensitiveToken registers an operator-supplied rule for every worker
// of this Session (copy-on-write: in-flight workers pick it up on their
// next Acquire).
func (s *Session) AddSensitiveToken(tok string) {
	for {
		old := s.sensTok.Load()
		next := make(map[string]bool, len(*old)+1)
		for k := range *old {
			next[k] = true
		}
		next[tok] = true
		if s.sensTok.CompareAndSwap(old, &next) {
			return
		}
	}
}

// DeclareRelation registers well-known external knowledge (§5) and pins
// the prefix into the shared mapping immediately, so shaping is
// independent of where it later appears in the files.
func (s *Session) DeclareRelation(rel Relation) {
	s.relMu.Lock()
	s.relations = append(s.relations, rel)
	s.relMu.Unlock()
	s.mapper().MapPrefix(rel.Prefix&config.LenToMask(rel.Len), rel.Len)
}

// Relations returns the anonymized images of every declared relation.
func (s *Session) Relations() []MappedRelation {
	s.relMu.Lock()
	rels := append([]Relation(nil), s.relations...)
	s.relMu.Unlock()
	ip := s.mapper()
	out := make([]MappedRelation, 0, len(rels))
	for _, rel := range rels {
		out = append(out, MappedRelation{
			ASN:    s.prog.perms.ASN.Map(rel.ASN),
			Prefix: ip.MapPrefix(rel.Prefix&config.LenToMask(rel.Len), rel.Len),
			Len:    rel.Len,
		})
	}
	return out
}

// SaveMapping serializes the IP mapping state (shaped tree only; the
// stateless mapping is a pure function of the salt and snapshots empty).
func (s *Session) SaveMapping() []byte {
	if t, ok := s.mapper().(*ipanon.Tree); ok {
		return t.Save()
	}
	return nil
}

// LoadMapping replaces the Session's mapper with a replayed snapshot.
// Call before any anonymization, with the same salt.
func (s *Session) LoadMapping(snapshot []byte) error {
	if len(snapshot) == 0 {
		return nil
	}
	t, err := ipanon.Load(snapshot)
	if err != nil {
		return err
	}
	s.ipMu.Lock()
	s.ip = t
	s.ipMu.Unlock()
	return nil
}

// IPMapping exposes the resolved IP pairs (for validation tooling).
func (s *Session) IPMapping() []ipanon.Pair { return s.mapper().Mapping() }

// NewCensus returns a recording worker for the deterministic parallel
// corpus mode, plus the trace it records into. The worker shares this
// Session's Program and sensitive tokens but maps addresses through an
// identity Trace and discards its statistics and recorder entries into a
// throwaway session — running a file through it produces no output
// anyone keeps, only the ordered log of mapper calls the file would
// perform. Replaying those logs serially (Replay) reproduces the serial
// run's insertion order exactly.
func (s *Session) NewCensus() (*Anonymizer, *ipanon.Trace) {
	tr := &ipanon.Trace{}
	mute := s.prog.newSession(tr)
	mute.sensTok.Store(s.sensTok.Load())
	mute.tracer = nil // census rehearsals must not emit spans or ledger entries
	return mute.Acquire(), tr
}

// Replay feeds a census trace into the Session's shared mapper.
func (s *Session) Replay(tr *ipanon.Trace) { tr.Replay(s.mapper()) }

// CensusFile records one file's mapper-call traces: pins is the prescan's
// MapPrefix sequence, full the complete rewrite's sequence (prescan
// included, as AnonymizeText re-runs it). When the prescan panics, pinErr
// carries the failure and pins holds the partial sequence up to the
// abort — which is exactly what a serial run would have inserted; full is
// nil. A full-pass panic likewise truncates full at the abort point. The
// traces touch only throwaway state, so any number of CensusFile calls
// may run concurrently.
func (s *Session) CensusFile(name, text string) (pins, full *ipanon.Trace, pinErr *FileError) {
	pw, pt := s.NewCensus()
	if pinErr = pw.SafePrescan(name, text); pinErr != nil {
		return pt, nil, pinErr
	}
	fw, ft := s.NewCensus()
	fw.SafeAnonymizeText(name, text)
	return pt, ft, nil
}

// ipOutputs returns (cached) the set of addresses the shared mapping has
// produced so far, refreshed when the recorder has grown. seenLen is the
// caller's view of len(seenIPs) (callers hold recMu).
func (s *Session) ipOutputs(seenLen int) map[uint32]bool {
	s.outsMu.Lock()
	defer s.outsMu.Unlock()
	if s.ipOuts != nil && s.ipOutsLen == seenLen {
		return s.ipOuts
	}
	outs := make(map[uint32]bool)
	for _, p := range s.mapper().Mapping() {
		outs[p.Out] = true
	}
	s.ipOuts = outs
	s.ipOutsLen = seenLen
	return outs
}
