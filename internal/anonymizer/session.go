package anonymizer

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"confanon/internal/config"
	"confanon/internal/ipanon"
	"confanon/internal/metrics"
	"confanon/internal/store"
	"confanon/internal/trace"
)

// Session is the mutable per-owner half of the anonymizer: the IP
// mapping, the leak recorder, the operator-added sensitive tokens, the
// declared relations, and the merged statistics. One Session = one owner
// salt = one consistent mapping; a Session is safe for concurrent use by
// any number of workers (Acquire/Release), which is what the parallel
// corpus mode and the portal's concurrent uploads build on.
//
// Workers keep their hot-path state (statistics, recorder entries)
// private and reconcile it into the Session at file boundaries, so the
// per-token cost of sharing is zero; the shared IP mapper is internally
// concurrency-safe (lock-free on resolved addresses).
type Session struct {
	prog *Program

	// ipMu guards replacement of the mapper (LoadMapping); the mapper
	// itself is safe for concurrent use.
	ipMu sync.RWMutex
	ip   ipanon.Mapper

	// stats is the merged record of every completed file; workers apply
	// signed deltas with atomic adds, so reads must go through Stats().
	stats Stats

	// The leak recorder: every public ASN, hashed word, and mapped
	// original address any worker saw. Workers batch their entries and
	// publish them here at file boundaries under recMu.
	recMu     sync.RWMutex
	seenASNs  map[string]bool
	seenWords map[string]bool
	seenIPs   map[uint32]bool

	// sensTok is the operator-added sensitive-token set, copy-on-write so
	// workers read it without locking.
	sensTok atomic.Pointer[map[string]bool]

	relMu     sync.Mutex
	relations []Relation

	// ipOuts caches the mapping's output set for the leak report's
	// false-positive classification; ipOutsLen tracks staleness.
	outsMu    sync.Mutex
	ipOuts    map[uint32]bool
	ipOutsLen int

	reg *metrics.Registry
	met *sessionMetrics

	// tracer is the span/ledger recorder every worker of this Session
	// writes into (copied from Options.Tracer at NewSession; nil =
	// untraced). Census sessions (NewCensus) always run untraced: their
	// files are throwaway rehearsals whose spans and decisions would
	// duplicate the real rewrite's.
	tracer *trace.Tracer

	// The durable mapping ledger (SetLedger). ledgerOn is the hot-path
	// gate (one atomic load per recorder flush when detached); ledMu
	// guards the sink, the pending record log, the persisted-pair
	// baseline, and the sticky first error. Commits happen at the same
	// clean-file-boundary points the provenance ledger publishes at
	// (fault.go), so a mid-file crash persists nothing partial.
	ledgerOn  atomic.Bool
	ledMu     sync.Mutex
	ledger    LedgerSink
	ledIPBase int
	recLog    []store.Record
	ledErr    error

	pool sync.Pool
}

// LedgerSink is the durable-store surface the Session commits into:
// Append buffers records, Commit makes everything appended since the
// last Commit durable atomically. *store.Ledger satisfies it.
type LedgerSink interface {
	Append(recs ...store.Record) error
	Commit() error
}

// sessionMetrics holds the session-level instruments that reconcile
// shared cumulative sources (the mapper, the permutations, the rewrite
// cache) into registry counters. The baselines are session-held and
// mutex-guarded because many workers flush against the same sources.
type sessionMetrics struct {
	mu        sync.Mutex
	ipEntries *metrics.Counter
	ipRemaps  *metrics.Counter
	asnWalks  *metrics.Counter
	cacheHit  *metrics.Counter
	cacheMiss *metrics.Counter

	baseIPLen  int64
	baseRemaps int64
	baseWalks  int64
	baseHits   int64
	baseMisses int64
}

// NewSession creates a Session with a fresh IP mapping (shaped tree, or
// Crypto-PAn under StatelessIP).
func (p *Program) NewSession() *Session {
	var mapper ipanon.Mapper
	if p.opts.StatelessIP {
		mapper = ipanon.NewCryptoMapper(p.opts.Salt)
	} else {
		mapper = ipanon.NewTree(ipanon.DefaultOptions(p.opts.Salt))
	}
	return p.newSession(mapper)
}

func (p *Program) newSession(mapper ipanon.Mapper) *Session {
	s := &Session{
		prog:      p,
		ip:        mapper,
		seenASNs:  make(map[string]bool),
		seenWords: make(map[string]bool),
		seenIPs:   make(map[uint32]bool),
	}
	empty := make(map[string]bool)
	s.sensTok.Store(&empty)
	s.tracer = p.opts.Tracer
	return s
}

// Program returns the compiled half this Session runs.
func (s *Session) Program() *Program { return s.prog }

// mapper returns the current IP mapper.
func (s *Session) mapper() ipanon.Mapper {
	s.ipMu.RLock()
	defer s.ipMu.RUnlock()
	return s.ip
}

// Acquire returns a worker bound to this Session, creating one if the
// pool is empty. Workers are single-goroutine engines; acquire one per
// goroutine and Release it when done so its final partial state flushes.
func (s *Session) Acquire() *Anonymizer {
	a, _ := s.pool.Get().(*Anonymizer)
	if a == nil {
		a = s.newWorker()
	}
	// Refresh the shared-state snapshots: the mapper (LoadMapping may
	// have replaced it) and the sensitive-token set.
	a.ip = s.mapper()
	a.sensitiveTokens = *s.sensTok.Load()
	return a
}

// Release flushes the worker's unreconciled state into the Session and
// returns it to the pool.
func (s *Session) Release(a *Anonymizer) {
	a.flush()
	s.pool.Put(a)
}

// Bind returns a dedicated worker that is never pooled: the single-
// goroutine convenience handle New() exposes. Its state still reconciles
// into the Session at every file boundary.
func (s *Session) Bind() *Anonymizer { return s.Acquire() }

func (s *Session) newWorker() *Anonymizer {
	a := &Anonymizer{
		prog:            s.prog,
		sess:            s,
		opts:            s.prog.opts,
		pass:            s.prog.pass,
		perms:           s.prog.perms,
		rules:           s.prog.rules,
		ip:              s.mapper(),
		stats:           newStats(),
		seenASNs:        make(map[string]bool),
		seenWords:       make(map[string]bool),
		seenIPs:         make(map[uint32]bool),
		sensitiveTokens: *s.sensTok.Load(),
		tracer:          s.tracer,
	}
	if s.reg != nil {
		a.metrics = newEngineMetrics(s.reg)
	}
	return a
}

// Stats returns a consistent snapshot of the merged statistics.
func (s *Session) Stats() Stats { return s.stats.snapshotAtomic() }

// SetMetrics wires a shared registry into the Session: workers created
// afterwards flush their counters into it, and the session-level gauges
// (mapper size, remaps, permutation walks, rewrite-cache hits) register
// immediately. A nil registry unwires future workers.
func (s *Session) SetMetrics(reg *metrics.Registry) {
	s.reg = reg
	if reg == nil {
		s.met = nil
		return
	}
	m := &sessionMetrics{}
	m.ipEntries = reg.Counter("confanon_ipmap_entries_total", "distinct addresses resolved by the IP mapping")
	m.ipRemaps = reg.Counter("confanon_ipmap_remaps_total", "IP collision-chase steps (§4.3 special-range remapping)")
	m.asnWalks = reg.Counter("confanon_asn_cycle_walks_total", "ASN permutation cycle-walking steps (§4.4)")
	m.cacheHit = reg.Counter("confanon_cregex_cache_hits_total", "regexp rewrites answered from the compiled Program's memo")
	m.cacheMiss = reg.Counter("confanon_cregex_cache_misses_total", "regexp rewrites computed and memoized by the compiled Program")
	s.met = m
}

// flushGauges reconciles the shared cumulative sources — mapper entries
// and remaps, permutation cycle walks, rewrite-cache hits — into the
// registry. Session-level (one baseline, mutex-guarded) because the
// sources are shared by every worker.
func (s *Session) flushGauges() {
	m := s.met
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ip := s.mapper()
	if d := int64(ip.Len()) - m.baseIPLen; d != 0 {
		m.ipEntries.Add(d)
		m.baseIPLen += d
	}
	if d := ip.Remaps() - m.baseRemaps; d != 0 {
		m.ipRemaps.Add(d)
		m.baseRemaps += d
	}
	if d := s.prog.perms.ASN.CycleWalks() - m.baseWalks; d != 0 {
		m.asnWalks.Add(d)
		m.baseWalks += d
	}
	if d := s.prog.CacheHits() - m.baseHits; d != 0 {
		m.cacheHit.Add(d)
		m.baseHits += d
	}
	if d := s.prog.CacheMisses() - m.baseMisses; d != 0 {
		m.cacheMiss.Add(d)
		m.baseMisses += d
	}
}

// AddSensitiveToken registers an operator-supplied rule for every worker
// of this Session (copy-on-write: in-flight workers pick it up on their
// next Acquire). A genuinely new token is also appended to the attached
// mapping ledger (committed at the next clean file boundary).
func (s *Session) AddSensitiveToken(tok string) {
	for {
		old := s.sensTok.Load()
		if (*old)[tok] {
			return
		}
		next := make(map[string]bool, len(*old)+1)
		for k := range *old {
			next[k] = true
		}
		next[tok] = true
		if s.sensTok.CompareAndSwap(old, &next) {
			s.appendLedgerRecords([]store.Record{{T: store.TSensitive, V: tok}})
			return
		}
	}
}

// SensitiveTokens returns the operator-added sensitive tokens, sorted
// (the incremental cache fingerprints them: a token added between runs
// changes what every file's output would be, so cached lines from before
// the addition must not be reused).
func (s *Session) SensitiveTokens() []string {
	m := *s.sensTok.Load()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DeclareRelation registers well-known external knowledge (§5) and pins
// the prefix into the shared mapping immediately, so shaping is
// independent of where it later appears in the files.
func (s *Session) DeclareRelation(rel Relation) {
	s.relMu.Lock()
	s.relations = append(s.relations, rel)
	s.relMu.Unlock()
	s.appendLedgerRecords([]store.Record{{T: store.TRelation, ASN: rel.ASN, Prefix: rel.Prefix, Len: rel.Len}})
	s.mapper().MapPrefix(rel.Prefix&config.LenToMask(rel.Len), rel.Len)
}

// Relations returns the anonymized images of every declared relation.
func (s *Session) Relations() []MappedRelation {
	s.relMu.Lock()
	rels := append([]Relation(nil), s.relations...)
	s.relMu.Unlock()
	ip := s.mapper()
	out := make([]MappedRelation, 0, len(rels))
	for _, rel := range rels {
		out = append(out, MappedRelation{
			ASN:    s.prog.perms.ASN.Map(rel.ASN),
			Prefix: ip.MapPrefix(rel.Prefix&config.LenToMask(rel.Len), rel.Len),
			Len:    rel.Len,
		})
	}
	return out
}

// saltFP returns the owner fingerprint every persistence artifact of
// this Session is keyed by.
func (s *Session) saltFP() string { return store.SaltFingerprint(s.prog.opts.Salt) }

// CaptureState snapshots every piece of mutable Session state the
// durable store persists: the IP mapping in insertion order, the leak
// recorder (sorted, for deterministic snapshots), the operator-added
// sensitive tokens, and the declared relations.
func (s *Session) CaptureState() store.State {
	var st store.State
	for _, p := range s.mapper().Since(0) {
		st.IPs = append(st.IPs, store.Pair{In: p.In, Out: p.Out})
	}
	s.recMu.RLock()
	for k := range s.seenASNs {
		st.ASNs = append(st.ASNs, k)
	}
	for k := range s.seenWords {
		st.Words = append(st.Words, k)
	}
	for k := range s.seenIPs {
		st.OrigIPs = append(st.OrigIPs, k)
	}
	s.recMu.RUnlock()
	sort.Strings(st.ASNs)
	sort.Strings(st.Words)
	sort.Slice(st.OrigIPs, func(i, j int) bool { return st.OrigIPs[i] < st.OrigIPs[j] })
	for k := range *s.sensTok.Load() {
		st.Sensitive = append(st.Sensitive, k)
	}
	sort.Strings(st.Sensitive)
	s.relMu.Lock()
	for _, rel := range s.relations {
		st.Relations = append(st.Relations, store.Relation{ASN: rel.ASN, Prefix: rel.Prefix, Len: rel.Len})
	}
	s.relMu.Unlock()
	return st
}

// RestoreState reinstates a captured state: the IP pairs replay through
// a fresh mapper in insertion order, verified pair by pair against this
// Session's salt (a snapshot taken under a different salt fails, never
// silently diverges); recorder entries, sensitive tokens, and relations
// merge in. Call before any anonymization.
func (s *Session) RestoreState(st store.State) error {
	var mapper ipanon.Mapper
	if s.prog.opts.StatelessIP {
		mapper = ipanon.NewCryptoMapper(s.prog.opts.Salt)
	} else {
		mapper = ipanon.NewTree(ipanon.DefaultOptions(s.prog.opts.Salt))
	}
	for _, p := range st.IPs {
		if got := mapper.MapV4(p.In); got != p.Out {
			return fmt.Errorf("anonymizer: state replay mismatch for %08x: got %08x want %08x (wrong salt?)",
				p.In, got, p.Out)
		}
	}
	s.ipMu.Lock()
	s.ip = mapper
	s.ipMu.Unlock()
	s.recMu.Lock()
	for _, k := range st.ASNs {
		s.seenASNs[k] = true
	}
	for _, k := range st.Words {
		s.seenWords[k] = true
	}
	for _, k := range st.OrigIPs {
		s.seenIPs[k] = true
	}
	s.recMu.Unlock()
	if len(st.Sensitive) > 0 {
		old := s.sensTok.Load()
		next := make(map[string]bool, len(*old)+len(st.Sensitive))
		for k := range *old {
			next[k] = true
		}
		for _, k := range st.Sensitive {
			next[k] = true
		}
		s.sensTok.Store(&next)
	}
	if len(st.Relations) > 0 {
		s.relMu.Lock()
		for _, r := range st.Relations {
			s.relations = append(s.relations, Relation{ASN: r.ASN, Prefix: r.Prefix, Len: r.Len})
		}
		s.relMu.Unlock()
	}
	return nil
}

// SaveMapping serializes the complete mutable Session state — the IP
// mapping in insertion order, the leak-recorder maps, the sensitive
// tokens, the declared relations — as a versioned confanon.mapping/v1
// blob. An empty session snapshots nil. (Earlier releases saved a
// tree-only "ipa1" binary; LoadMapping still accepts those.)
func (s *Session) SaveMapping() []byte {
	st := s.CaptureState()
	if st.Empty() {
		return nil
	}
	blob, err := store.EncodeState(&st, s.saltFP())
	if err != nil {
		// Marshal of plain structs cannot fail; keep the historical
		// no-error signature.
		return nil
	}
	return blob
}

// LoadMapping restores a SaveMapping snapshot — either the current
// confanon.mapping/v1 state capture or a legacy tree-only "ipa1" blob.
// Call before any anonymization, with the same salt: the replayed pairs
// are verified against this Session's mapping, so a wrong-salt snapshot
// is rejected, not silently diverged from.
func (s *Session) LoadMapping(snapshot []byte) error {
	if len(snapshot) == 0 {
		return nil
	}
	if store.IsStateBlob(snapshot) {
		st, fp, err := store.DecodeState(snapshot)
		if err != nil {
			return err
		}
		if fp != "" && fp != s.saltFP() {
			return fmt.Errorf("anonymizer: %w", store.ErrSaltMismatch)
		}
		return s.RestoreState(st)
	}
	t, err := ipanon.Load(snapshot)
	if err != nil {
		return err
	}
	s.ipMu.Lock()
	s.ip = t
	s.ipMu.Unlock()
	return nil
}

// SetLedger attaches a durable mapping ledger: from now on every clean
// file boundary commits the state delta since the last commit — newly
// resolved IP pairs, new leak-recorder entries, new sensitive tokens and
// relations. State the mapper resolved before attachment is assumed
// already persisted (the usual flow restores the ledger's replayed state
// first, then attaches). nil detaches.
func (s *Session) SetLedger(l LedgerSink) {
	s.ledMu.Lock()
	s.ledger = l
	s.ledIPBase = s.mapper().Len()
	s.recLog = nil
	s.ledErr = nil
	s.ledMu.Unlock()
	s.ledgerOn.Store(l != nil)
}

// LedgerErr reports the first error the attached ledger returned (nil
// when healthy). Ledger errors are sticky and stop further commits: the
// run's output is still correct, but its mappings are no longer durable,
// so batch callers surface this as a run-level failure.
func (s *Session) LedgerErr() error {
	s.ledMu.Lock()
	defer s.ledMu.Unlock()
	return s.ledErr
}

// appendLedgerRecords queues records for the next commit; a no-op when
// no ledger is attached.
func (s *Session) appendLedgerRecords(recs []store.Record) {
	if !s.ledgerOn.Load() || len(recs) == 0 {
		return
	}
	s.ledMu.Lock()
	if s.ledger != nil && s.ledErr == nil {
		s.recLog = append(s.recLog, recs...)
	}
	s.ledMu.Unlock()
}

// commitLedger persists the state delta since the last commit: the IP
// pairs the shared mapper resolved past the persisted baseline, plus the
// queued recorder/token/relation records. Called from the Safe* methods
// at clean file boundaries — the same points the provenance ledger
// publishes at — and never from a rollback path, so a mid-file failure
// persists nothing. Note the delta is session-wide, not per-file: pairs
// resolved by a file that later aborts are live shared state (subsequent
// mappings depend on them), so they are swept into the next clean
// commit, which is exactly what replica consistency requires.
func (s *Session) commitLedger() {
	if !s.ledgerOn.Load() {
		return
	}
	s.ledMu.Lock()
	defer s.ledMu.Unlock()
	if s.ledger == nil || s.ledErr != nil {
		return
	}
	pairs := s.mapper().Since(s.ledIPBase)
	if len(pairs) == 0 && len(s.recLog) == 0 {
		return
	}
	recs := make([]store.Record, 0, len(pairs)+len(s.recLog))
	for _, p := range pairs {
		recs = append(recs, store.Record{T: store.TIP, In: p.In, Out: p.Out})
	}
	recs = append(recs, s.recLog...)
	if err := s.ledger.Append(recs...); err != nil {
		s.ledErr = err
		return
	}
	if err := s.ledger.Commit(); err != nil {
		s.ledErr = err
		return
	}
	s.ledIPBase += len(pairs)
	s.recLog = s.recLog[:0]
}

// SyncLedger commits any state delta not yet persisted (end-of-run
// flush; also the point batch callers check ledger health).
func (s *Session) SyncLedger() error {
	s.commitLedger()
	return s.LedgerErr()
}

// IPMapping exposes the resolved IP pairs (for validation tooling).
func (s *Session) IPMapping() []ipanon.Pair { return s.mapper().Mapping() }

// NewCensus returns a recording worker for the deterministic parallel
// corpus mode, plus the trace it records into. The worker shares this
// Session's Program and sensitive tokens but maps addresses through an
// identity Trace and discards its statistics and recorder entries into a
// throwaway session — running a file through it produces no output
// anyone keeps, only the ordered log of mapper calls the file would
// perform. Replaying those logs serially (Replay) reproduces the serial
// run's insertion order exactly.
func (s *Session) NewCensus() (*Anonymizer, *ipanon.Trace) {
	tr := &ipanon.Trace{}
	mute := s.prog.newSession(tr)
	mute.sensTok.Store(s.sensTok.Load())
	mute.tracer = nil // census rehearsals must not emit spans or ledger entries
	return mute.Acquire(), tr
}

// Replay feeds a census trace into the Session's shared mapper.
func (s *Session) Replay(tr *ipanon.Trace) { tr.Replay(s.mapper()) }

// CensusFile records one file's mapper-call traces: pins is the prescan's
// MapPrefix sequence, full the complete rewrite's sequence (prescan
// included, as AnonymizeText re-runs it). When the prescan panics, pinErr
// carries the failure and pins holds the partial sequence up to the
// abort — which is exactly what a serial run would have inserted; full is
// nil. A full-pass panic likewise truncates full at the abort point. The
// traces touch only throwaway state, so any number of CensusFile calls
// may run concurrently.
func (s *Session) CensusFile(name, text string) (pins, full *ipanon.Trace, pinErr *FileError) {
	pw, pt := s.NewCensus()
	if pinErr = pw.SafePrescan(name, text); pinErr != nil {
		return pt, nil, pinErr
	}
	fw, ft := s.NewCensus()
	fw.SafeAnonymizeText(name, text)
	return pt, ft, nil
}

// ipOutputs returns (cached) the set of addresses the shared mapping has
// produced so far, refreshed when the recorder has grown. seenLen is the
// caller's view of len(seenIPs) (callers hold recMu).
func (s *Session) ipOutputs(seenLen int) map[uint32]bool {
	s.outsMu.Lock()
	defer s.outsMu.Unlock()
	if s.ipOuts != nil && s.ipOutsLen == seenLen {
		return s.ipOuts
	}
	outs := make(map[uint32]bool)
	for _, p := range s.mapper().Mapping() {
		outs[p.Out] = true
	}
	s.ipOuts = outs
	s.ipOutsLen = seenLen
	return outs
}
