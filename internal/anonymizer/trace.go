package anonymizer

import (
	"strconv"
	"time"

	"confanon/internal/trace"
)

// The tracing bridge. Like the metrics bridge (metrics.go) it keeps the
// hot path untouched when unwired: every call site guards on the
// worker's tracer pointer, so a nil tracer costs one predictable branch
// per decision site and nothing else. When wired, the worker buffers
// its provenance decisions privately (pending) and publishes them at
// the successful end of each file span — the ledger-side mirror of the
// Stats delta flush, with the same rollback contract: a file that fails
// mid-way discards its buffered decisions, so failed and quarantined
// files leave no partial provenance records. The file's span is still
// published, marked failed; failures are traced, never dropped.
//
// Span nesting: batch layers open one corpus span and hand its ID to
// every worker they Acquire (SetCorpusSpan); the engine opens a file
// span per Safe* call, parents the retroactive stage spans under it
// (or under the corpus span when no file is open — standalone prescans,
// leak-report passes), and synthesizes per-rule spans under each
// rewrite stage from the per-file rule-hit deltas.

// Pseudo-rule ids for ledger attribution of decisions no registry rule
// dispatches: the §4.1 basic method (segmentation + pass-list + hash)
// and operator-added sensitive tokens. Deliberately not in the registry
// — they have no hit counters, only ledger attribution.
const (
	pseudoRuleBasic    RuleID = "B0-basic-method"
	pseudoRuleOperator RuleID = "O0-operator-token"
)

// SetCorpusSpan parents this worker's subsequent file and stage spans
// under a batch-level corpus span (zero = root). The batch layer calls
// it after Acquire; single-file callers never need to.
func (a *Anonymizer) SetCorpusSpan(id trace.SpanID) { a.corpusSpan = id }

// decideAs buffers one provenance ledger entry with explicit rule
// attribution. Callers guard with a.tracer != nil; out must be the
// anonymized replacement (never the cleartext being replaced).
func (a *Anonymizer) decideAs(rule RuleID, class, out string) {
	var span trace.SpanID
	if a.fileSpan != nil {
		span = a.fileSpan.ID
	}
	a.pending = append(a.pending, trace.Decision{
		File:  a.curFile,
		Line:  a.curLine,
		Rule:  string(rule),
		Class: class,
		Out:   out,
		Span:  span,
	})
}

// decide buffers one ledger entry attributed to the last rule that
// fired on the current line (the dispatching rule at every call site
// that reaches a mapping helper), falling back to the basic-method
// pseudo-rule when no rule has fired yet.
func (a *Anonymizer) decide(class, out string) {
	rule := a.curRule
	if rule == "" {
		rule = pseudoRuleBasic
	}
	a.decideAs(rule, class, out)
}

// beginFileSpan opens the span covering one Safe* call on one file and
// snapshots the per-rule counters, so the rewrite stage can synthesize
// rule spans from this file's deltas alone. op names the operation
// ("prescan", "rewrite", "stream") — in a serial corpus a file is
// prescanned and rewritten in separate calls and gets one span per.
func (a *Anonymizer) beginFileSpan(name, op string) {
	if a.tracer == nil {
		return
	}
	a.fileSpan = a.tracer.StartSpan(trace.KindFile, name, a.corpusSpan)
	a.fileSpan.SetAttr("op", op)
	a.fileHits = a.stats.ruleHits
	a.fileTime = a.stats.ruleTimeNs
}

// endFileSpan closes the current file span cleanly and publishes the
// file's buffered ledger entries.
func (a *Anonymizer) endFileSpan() {
	if a.tracer == nil || a.fileSpan == nil {
		return
	}
	sp := a.fileSpan
	a.fileSpan = nil
	a.tracer.Publish(a.pending)
	a.pending = a.pending[:0]
	a.tracer.End(sp, trace.StatusOK)
}

// failFileSpan closes the current file span as failed — annotated with
// the failing line and cause — and discards the file's buffered ledger
// entries (rollback also discards them; this keeps the two paths
// independent). A failed file's spans are marked, never dropped.
func (a *Anonymizer) failFileSpan(ferr *FileError) {
	if a.tracer == nil || a.fileSpan == nil {
		return
	}
	sp := a.fileSpan
	a.fileSpan = nil
	sp.SetAttr("line", strconv.Itoa(ferr.Line))
	sp.AddEvent(a.tracer.Now(), ferr.Cause.Error())
	a.pending = a.pending[:0]
	a.tracer.End(sp, trace.StatusFailed)
}

// traceStage records one pipeline stage retroactively (the engine times
// stages whether or not anything observes them), parented under the
// open file span — or the corpus span for standalone prescans and
// leak-report passes. The rewrite stage additionally gets per-rule
// child spans from the file's rule-hit deltas.
func (a *Anonymizer) traceStage(stage string, d time.Duration) {
	parent := a.corpusSpan
	if a.fileSpan != nil {
		parent = a.fileSpan.ID
	}
	start := a.tracer.Now() - int64(d)
	if start < 0 {
		start = 0
	}
	id := a.tracer.RecordSpan(trace.KindStage, stage, parent, start, int64(d), trace.StatusOK)
	if stage == stageRewrite && a.fileSpan != nil {
		a.traceRuleSpans(id, start)
	}
}

// traceRuleSpans synthesizes one span per rule that fired during the
// file, under the rewrite stage span: its duration is the wall time the
// engine attributed to the rule within this file, its "hits" attribute
// the per-file firing count.
func (a *Anonymizer) traceRuleSpans(parent trace.SpanID, startNs int64) {
	reg := ruleReg.Load()
	for i := range reg.infos {
		hits := a.stats.ruleHits[i] - a.fileHits[i]
		if hits == 0 {
			continue
		}
		dur := a.stats.ruleTimeNs[i] - a.fileTime[i]
		a.tracer.RecordSpan(trace.KindRule, string(reg.infos[i].ID), parent, startNs, dur, trace.StatusOK,
			trace.Attr{Key: "hits", Value: strconv.FormatInt(hits, 10)})
	}
}
