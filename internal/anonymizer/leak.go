package anonymizer

import (
	"fmt"
	"strings"
	"time"

	"confanon/internal/ipanon"
	"confanon/internal/token"
)

// Leak is one suspicious token found in anonymized output: a value the
// anonymizer saw (and mapped) during processing that nevertheless appears
// verbatim in the output, usually because it occurred in a context none of
// the rules recognize. Leaks drive the iterative methodology of §6.1: a
// human reviews them and adds rules (AddSensitiveToken) until the report
// is empty.
type Leak struct {
	Line int    // 1-based line number in the post-anonymization text
	Text string // the full line
	Tok  string // the suspicious token
	Kind string // "asn", "word", or "ip"
	// LikelyFalsePositive marks ASN hits in positions where small
	// integers are ubiquitous (OSPF process ids, areas, sequence
	// numbers). The paper hits the same wall: grepping for Genuity's
	// AS 1 "will appear in many unrelated config lines". These hits are
	// reported for human review but should not block publication alone.
	LikelyFalsePositive bool
}

// String formats the leak for the operator.
func (l Leak) String() string {
	note := ""
	if l.LikelyFalsePositive {
		note = " (likely false positive)"
	}
	return fmt.Sprintf("line %d: %s %q in %q%s", l.Line, l.Kind, l.Tok, l.Text, note)
}

// innocuousIntContext lists keywords after which an integer is routinely
// a process id, area, sequence number, or similar local value rather than
// an AS number.
var innocuousIntContext = map[string]bool{
	"ospf": true, "area": true, "version": true, "seq": true, "cost": true,
	"bandwidth": true, "metric": true, "distance": true, "eq": true,
	"gt": true, "lt": true, "permit": true, "deny": true, "priority": true,
	"access-list": true, "community-list": true, "as-path": true,
	"preference": true, "local-preference": true, "weight": true,
	"timers": true, "keepalive": true, "mtu": true, "delay": true,
}

// LeakReport scans anonymized output for recorded sensitive values that
// survived: public ASNs the permutation mapped, words the hash replaced,
// and original (pre-anonymization) IP addresses. The scan reads the
// Session's recorder (with this worker's pending entries published
// first), so it sees everything every worker of the Session has
// processed. False positives are possible — an anonymized value may
// coincide with some other original value (the paper notes the same
// weakness: grepping for AS 1 flags many unrelated lines) — which is
// exactly why the report is reviewed by a human rather than acted on
// automatically.
func (a *Anonymizer) LeakReport(post string) []Leak {
	reportStart := time.Now()
	a.flushRecorder()
	s := a.sess
	s.recMu.RLock()
	var leaks []Leak
	for i, line := range strings.Split(post, "\n") {
		start := time.Now()
		words, _ := token.Fields(line)
		for wi, w := range words {
			switch {
			case s.seenASNs[w]:
				a.hit(RuleLeakHighlight)
				fp := wi > 0 && innocuousIntContext[words[wi-1]]
				leaks = append(leaks, Leak{Line: i + 1, Text: line, Tok: w, Kind: "asn",
					LikelyFalsePositive: fp})
			case s.seenWords[w]:
				a.hit(RuleLeakHighlight)
				leaks = append(leaks, Leak{Line: i + 1, Text: line, Tok: w, Kind: "word"})
			default:
				if v, ok := token.ParseIPv4(w); ok && !ipanon.IsSpecial(v) && s.seenIPs[v] {
					a.hit(RuleLeakHighlight)
					// Every bare dotted-quad is mapped by rule I3, so an
					// original address can only appear in output when some
					// other address maps onto it — a permutation collision,
					// not a leak. A flagged token that is a known mapping
					// output is therefore almost certainly a false positive.
					fp := s.ipOutputs(len(s.seenIPs))[v]
					leaks = append(leaks, Leak{Line: i + 1, Text: line, Tok: w, Kind: "ip",
						LikelyFalsePositive: fp})
					continue
				}
				// Pack report rules: extra leak patterns a loaded pack
				// flags. They can only add findings, never suppress the
				// recorder-driven checks above.
				for _, rr := range a.rules.report {
					if rr.m.MatchToken(w) {
						a.hit(rr.id)
						leaks = append(leaks, Leak{Line: i + 1, Text: line, Tok: w, Kind: "pack"})
						break
					}
				}
			}
		}
		// Attribute the scan time of this line to the leak rule (and
		// clear the engine's per-line hit scratch).
		a.attribute(time.Since(start))
	}
	s.recMu.RUnlock()
	a.countLeaks(leaks)
	a.observeStage(stageLeakReport, time.Since(reportStart))
	a.flush()
	return leaks
}
