package anonymizer

import (
	"errors"
	"strings"
	"testing"
)

func TestSafeAnonymizeTextRecoversPanicWithLine(t *testing.T) {
	SetFaultHook(func(name string, line int) {
		if name == "poison" && line == 3 {
			panic("injected fault")
		}
	})
	defer SetFaultHook(nil)

	a := New(Options{Salt: []byte("s")})
	text := "hostname r1\ninterface Ethernet0\n ip address 10.1.1.1 255.255.255.0\n"

	out, ferr := a.SafeAnonymizeText("clean", text)
	if ferr != nil {
		t.Fatalf("clean file failed: %v", ferr)
	}
	if out == "" {
		t.Fatal("clean file produced no output")
	}

	if _, ferr = a.SafeAnonymizeText("poison", text); ferr == nil {
		t.Fatal("poisoned file did not report a FileError")
	}
	if ferr.Name != "poison" || ferr.Line != 3 {
		t.Errorf("FileError location = (%q, %d), want (poison, 3)", ferr.Name, ferr.Line)
	}
	var pe *PanicError
	if !errors.As(ferr, &pe) || pe.Value != "injected fault" {
		t.Errorf("cause %v is not the injected PanicError", ferr.Cause)
	}
	if !strings.Contains(ferr.Error(), "line 3") {
		t.Errorf("FileError string %q lacks the line", ferr.Error())
	}
}

func TestSafeAnonymizeTextRollsBackStats(t *testing.T) {
	SetFaultHook(func(name string, line int) {
		if name == "poison" && line == 2 {
			panic("boom")
		}
	})
	defer SetFaultHook(nil)

	a := New(Options{Salt: []byte("s")})
	text := "hostname r1\ninterface Ethernet0\n"
	if _, ferr := a.SafeAnonymizeText("ok", text); ferr != nil {
		t.Fatal(ferr)
	}
	before := a.Stats().Clone()
	if _, ferr := a.SafeAnonymizeText("poison", text); ferr == nil {
		t.Fatal("expected failure")
	}
	after := a.Stats()
	if after.Files != before.Files || after.Lines != before.Lines || after.WordsTotal != before.WordsTotal {
		t.Errorf("stats not rolled back: before %+v after %+v", before, after)
	}
	// The engine must still work after a rollback.
	out, ferr := a.SafeAnonymizeText("ok2", text)
	if ferr != nil || out == "" {
		t.Fatalf("anonymizer unusable after rollback: %q, %v", out, ferr)
	}
	if a.Stats().Files != before.Files+1 {
		t.Errorf("post-rollback file not counted")
	}
}

type failingReader struct {
	data string
	read bool
}

func (r *failingReader) Read(p []byte) (int, error) {
	if !r.read {
		r.read = true
		n := copy(p, r.data)
		return n, nil
	}
	return 0, errors.New("disk on fire")
}

func TestSafeStreamTextWrapsIOErrors(t *testing.T) {
	a := New(Options{Salt: []byte("s"), StatelessIP: true})
	var sb strings.Builder
	ferr := a.SafeStreamText("bad-disk", &failingReader{data: "hostname r1\n"}, &sb)
	if ferr == nil {
		t.Fatal("reader failure not reported")
	}
	if ferr.Name != "bad-disk" || !strings.Contains(ferr.Error(), "disk on fire") {
		t.Errorf("unexpected FileError: %v", ferr)
	}
}

func TestStatsCloneIsDeep(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	a.AnonymizeText("hostname r1\n")
	c := a.Stats().Clone()
	c.AddRuleHit(RuleBanner, 100)
	if a.Stats().Hits(RuleBanner) == c.Hits(RuleBanner) {
		t.Error("Clone shares per-rule counter storage")
	}
}
