package anonymizer

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestStatsAddCoversEveryField is the guard the dense representation
// traded the reflective merge for: it walks Stats with reflection and
// fails if a field exists that Add does not accumulate. Exported int64
// scalars are exercised individually through reflection; the unexported
// fields must be exactly the known per-rule arrays, which are exercised
// through their accessors. Adding a field to Stats without teaching Add
// (and this test) about it fails here instead of silently dropping the
// counter in parallel merges.
func TestStatsAddCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	knownUnexported := map[string]bool{"ruleHits": true, "ruleTimeNs": true}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			if !knownUnexported[f.Name] {
				t.Errorf("unexported field %s is not covered by Add's per-rule merge; extend Add and this test", f.Name)
			}
			continue
		}
		if f.Type.Kind() != reflect.Int64 {
			t.Errorf("exported field %s has type %s; Add only merges int64 scalars — extend Add and this test", f.Name, f.Type)
			continue
		}
		// Set just this field in the source, merge into a zero Stats, and
		// require the value to survive.
		var src, dst Stats
		reflect.ValueOf(&src).Elem().Field(i).SetInt(7)
		dst.Add(src)
		if got := reflect.ValueOf(dst).Field(i).Int(); got != 7 {
			t.Errorf("Add dropped field %s: got %d, want 7", f.Name, got)
		}
	}

	// The per-rule arrays, via their public surface.
	var src, dst Stats
	src.AddRuleHit(RuleBanner, 3)
	src.AddRuleTime(RuleBanner, 5*time.Millisecond)
	dst.Add(src)
	if dst.Hits(RuleBanner) != 3 || dst.Time(RuleBanner) != 5*time.Millisecond {
		t.Errorf("Add dropped per-rule counters: hits=%d time=%s", dst.Hits(RuleBanner), dst.Time(RuleBanner))
	}
}

// TestStatsAddConcurrentMerge hammers one shared destination from 8
// goroutines — the parallel-corpus merge shape — and requires exact
// totals. Run under -race this also proves the atomic merge publishes
// no data race.
func TestStatsAddConcurrentMerge(t *testing.T) {
	var src Stats
	src.Files = 1
	src.Lines = 3
	src.TokensHashed = 5
	src.AddRuleHit(RuleBanner, 2)
	src.AddRuleTime(RuleBanner, 7*time.Nanosecond)

	const workers = 8
	const rounds = 1000
	var dst Stats
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				dst.Add(src)
			}
		}()
	}
	wg.Wait()

	const n = workers * rounds
	if dst.Files != n || dst.Lines != 3*n || dst.TokensHashed != 5*n {
		t.Errorf("scalar totals off: files=%d lines=%d hashed=%d, want %d/%d/%d",
			dst.Files, dst.Lines, dst.TokensHashed, n, 3*n, 5*n)
	}
	if dst.Hits(RuleBanner) != 2*n || dst.Time(RuleBanner) != 7*n*time.Nanosecond {
		t.Errorf("per-rule totals off: hits=%d time=%d, want %d/%d",
			dst.Hits(RuleBanner), dst.Time(RuleBanner), 2*n, 7*n)
	}
}
