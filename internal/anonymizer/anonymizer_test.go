package anonymizer

import (
	"strconv"
	"strings"
	"testing"

	"confanon/internal/asn"
	"confanon/internal/config"
	"confanon/internal/cregex"
	"confanon/internal/ipanon"
	"confanon/internal/token"
)

// figure1 is the paper's worked example.
const figure1 = `hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 2.2.129.2 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
!
route-map UUNET-import permit 20
!
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 any
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
end
`

func newTestAnonymizer() *Anonymizer {
	return New(Options{Salt: []byte("figure1-salt")})
}

func TestFigure1EndToEnd(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText(figure1)

	// (1) Comments gone: no trace of the identifying free text.
	for _, leak := range []string{"Foo", "foo", "FooNet", "LAX", "lax", "Main", "offices",
		"contact", "prohibited", "xxx@foo.com", "sfo"} {
		if strings.Contains(out, leak) {
			t.Errorf("identity leak %q survived:\n%s", leak, out)
		}
	}
	// (2) The owner's public ASN is gone, and so is the peer's.
	for _, line := range strings.Split(out, "\n") {
		for _, w := range strings.Fields(line) {
			if w == "1111" || w == "701" || w == "1239" {
				t.Errorf("ASN %s survived in line %q", w, line)
			}
		}
	}
	// (3) Netmasks and wildcards are unchanged.
	for _, keep := range []string{"255.255.255.0", "255.255.255.252", "0.0.0.255"} {
		if !strings.Contains(out, keep) {
			t.Errorf("special address %s was altered:\n%s", keep, out)
		}
	}
	// (4) Public addresses are changed.
	for _, gone := range []string{"1.1.1.1", "2.2.2.2", "2.2.129.2", "1.1.1.0", "1.0.0.0"} {
		if strings.Contains(out, gone+" ") || strings.Contains(out, gone+"\n") {
			t.Errorf("address %s survived:\n%s", gone, out)
		}
	}
	// (5) Structure: keywords and the config skeleton survive.
	for _, keep := range []string{"interface Ethernet0", "interface Serial1/0.5 point-to-point",
		"router bgp", "router rip", "redistribute rip", "remote-as",
		"route-map", "access-list 143 permit ip", "ip community-list 100 permit",
		"ip as-path access-list 50 permit", "banner motd"} {
		if !strings.Contains(out, keep) {
			t.Errorf("structure %q destroyed:\n%s", keep, out)
		}
	}
}

func TestFigure1ReferentialIntegrity(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText(figure1)
	c := config.Parse(out)
	// The "uses" relationship between the BGP neighbor and the policy
	// definitions must survive: the neighbor's in/out route-map names
	// must name route maps that exist.
	if c.BGP == nil || len(c.BGP.Neighbors) != 1 {
		t.Fatalf("BGP neighbors lost: %+v", c.BGP)
	}
	nb := c.BGP.Neighbors[0]
	if nb.RouteMapIn == "" || c.RouteMap(nb.RouteMapIn) == nil {
		t.Errorf("route-map in reference broken: %q not defined", nb.RouteMapIn)
	}
	if nb.RouteMapOut == "" || c.RouteMap(nb.RouteMapOut) == nil {
		t.Errorf("route-map out reference broken: %q not defined", nb.RouteMapOut)
	}
	if nb.RouteMapIn == "UUNET-import" {
		t.Error("route-map name not anonymized")
	}
	// The import map keeps its two clauses with their match structure.
	imp := c.RouteMap(nb.RouteMapIn)
	if len(imp.Clauses) != 2 || len(imp.Clauses[0].Matches) != 2 {
		t.Errorf("route-map structure lost: %+v", imp)
	}
}

func TestFigure1SubnetContainment(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText(figure1)
	c := config.Parse(out)
	// The RIP network (classful 1.0.0.0/8) must still contain the
	// Ethernet0 interface address: the "subnet contains" relationship.
	if c.RIP == nil || len(c.RIP.Networks) != 1 {
		t.Fatalf("RIP lost: %+v", c.RIP)
	}
	ripNet := c.RIP.Networks[0]
	e0 := c.Interface("Ethernet0")
	if e0 == nil || !e0.HasAddress {
		t.Fatal("Ethernet0 lost")
	}
	if ripNet&config.LenToMask(8) != e0.Address.Addr&config.LenToMask(8) {
		t.Errorf("subnet-contains broken: rip %s vs interface %s",
			token.FormatIPv4(ripNet), token.FormatIPv4(e0.Address.Addr))
	}
	// Classful: the class A network must still be class A, and the RIP
	// network must still be a subnet address (host part zero).
	if ipanon.Class(ripNet) != 'A' {
		t.Errorf("class not preserved: %s", token.FormatIPv4(ripNet))
	}
	if ripNet&^config.LenToMask(8) != 0 {
		t.Errorf("classful network %s not a subnet address", token.FormatIPv4(ripNet))
	}
	// The ACL 143 source must still be the Ethernet0 subnet.
	acl := c.AccessList(143)
	if acl == nil || len(acl.Entries) != 1 {
		t.Fatal("ACL lost")
	}
	if acl.Entries[0].Src != e0.Address.Addr&config.LenToMask(24) {
		t.Errorf("ACL/interface subnet relationship broken: %s vs %s",
			token.FormatIPv4(acl.Entries[0].Src), token.FormatIPv4(e0.Address.Addr))
	}
}

func TestFigure1RegexpRewrite(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText(figure1)
	c := config.Parse(out)
	al := c.ASPathList(50)
	if al == nil || len(al.Entries) != 1 {
		t.Fatal("as-path list lost")
	}
	re, err := cregex.Parse(al.Entries[0].Regex)
	if err != nil {
		t.Fatalf("rewritten as-path regexp unparseable: %q: %v", al.Entries[0].Regex, err)
	}
	// The rewritten regexp accepts exactly the permuted originals.
	orig := []uint32{1239, 702, 703, 704, 705}
	for _, v := range orig {
		if !re.MatchASN(a.MapASN(v)) {
			t.Errorf("rewritten regexp rejects perm(%d)=%d: %q", v, a.MapASN(v), al.Entries[0].Regex)
		}
	}
	if got := len(re.Language()); got != len(orig) {
		t.Errorf("rewritten language has %d values, want %d: %q", got, len(orig), al.Entries[0].Regex)
	}
	// Community list regexp rewritten and parseable.
	cl := c.CommunityList(100)
	if cl == nil || len(cl.Entries) != 1 {
		t.Fatal("community list lost")
	}
	cre, err := cregex.Parse(cl.Entries[0].Expr)
	if err != nil {
		t.Fatalf("rewritten community regexp unparseable: %q: %v", cl.Entries[0].Expr, err)
	}
	// 701:7100 was in the original language; its image must be accepted.
	mappedASN := a.MapASN(701)
	vp := asn.NewValuePerm([]byte("figure1-salt"))
	img := strconv.Itoa(int(mappedASN)) + ":" + strconv.Itoa(int(vp.Map(7100)))
	if !cre.MatchToken(img) {
		t.Errorf("rewritten community regexp %q rejects image %s", cl.Entries[0].Expr, img)
	}
	if cre.MatchToken("701:7100") && mappedASN != 701 {
		t.Errorf("rewritten community regexp still accepts original: %q", cl.Entries[0].Expr)
	}
	// The set community in the export map must be the same image as the
	// community list (consistency between literal and regexp handling).
	exp := findRouteMapWithSet(c)
	if exp == nil {
		t.Fatal("export route-map lost")
	}
	setArg := exp.Clauses[0].Sets[0].Args[0]
	if setArg != img {
		t.Errorf("set community %s inconsistent with community-list image %s", setArg, img)
	}
}

func findRouteMapWithSet(c *config.Config) *config.RouteMap {
	for _, rm := range c.RouteMaps {
		for _, cl := range rm.Clauses {
			if len(cl.Sets) > 0 {
				return rm
			}
		}
	}
	return nil
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a1 := New(Options{Salt: []byte("s")})
	a2 := New(Options{Salt: []byte("s")})
	o1 := a1.AnonymizeText(figure1)
	o2 := a2.AnonymizeText(figure1)
	if o1 != o2 {
		t.Error("same salt produced different outputs")
	}
	a3 := New(Options{Salt: []byte("different")})
	if a3.AnonymizeText(figure1) == o1 {
		t.Error("different salt produced identical output")
	}
}

func TestPrivateASNUnchanged(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("router bgp 65001\n neighbor 10.0.0.1 remote-as 65100\n")
	if !strings.Contains(out, "router bgp 65001") {
		t.Errorf("private ASN changed: %s", out)
	}
	if !strings.Contains(out, "remote-as 65100") {
		t.Errorf("private peer ASN changed: %s", out)
	}
}

func TestLoopbackAndMulticastUnchanged(t *testing.T) {
	a := newTestAnonymizer()
	in := "ip name-server 127.0.0.1\naccess-list 10 permit 224.0.0.5\n"
	out := a.AnonymizeText(in)
	if !strings.Contains(out, "127.0.0.1") || !strings.Contains(out, "224.0.0.5") {
		t.Errorf("special addresses changed:\n%s", out)
	}
}

func TestDialerStringHashed(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("dialer string 5558675309\n")
	if strings.Contains(out, "5558675309") {
		t.Errorf("phone number survived: %s", out)
	}
	// The replacement is still a digit string of the same length.
	fields := strings.Fields(out)
	repl := fields[len(fields)-1]
	if len(repl) != 10 || !token.IsInteger(repl) {
		t.Errorf("dialer replacement not a 10-digit string: %q", repl)
	}
}

func TestSNMPAndCredentialsHashed(t *testing.T) {
	a := newTestAnonymizer()
	in := "snmp-server community s3cr3tstring RO\nusername admin password 7 05080F1C2243\nenable secret 5 $1$abcd\n"
	out := a.AnonymizeText(in)
	for _, leak := range []string{"s3cr3tstring", "admin", "05080F1C2243", "$1$abcd"} {
		if strings.Contains(out, leak) {
			t.Errorf("credential %q survived:\n%s", leak, out)
		}
	}
	if !strings.Contains(out, "snmp-server community") || !strings.Contains(out, "RO") {
		t.Errorf("snmp structure destroyed:\n%s", out)
	}
}

func TestHostnameHashedEvenIfPassListed(t *testing.T) {
	a := newTestAnonymizer()
	// "main" and "street" are in the guide vocabulary, but a hostname is
	// identity-bearing by position.
	out := a.AnonymizeText("hostname main.street.net\n")
	if strings.Contains(out, "main") || strings.Contains(out, "street") {
		t.Errorf("pass-listed hostname words survived: %s", out)
	}
	if !strings.HasPrefix(out, "hostname ") {
		t.Errorf("hostname keyword lost: %s", out)
	}
}

func TestInterfaceTypePreserved(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("interface FastEthernet0/1\n ip address 10.1.1.1 255.255.255.0\n")
	if !strings.Contains(out, "interface FastEthernet0/1") {
		t.Errorf("interface type destroyed (segmentation rules failed): %s", out)
	}
}

func TestSimpleIntegersKept(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("interface Serial0\n bandwidth 1544\n ip ospf cost 100\n")
	if !strings.Contains(out, "bandwidth 1544") || !strings.Contains(out, "cost 100") {
		t.Errorf("simple integers were anonymized:\n%s", out)
	}
}

func TestConfederationRules(t *testing.T) {
	a := newTestAnonymizer()
	in := "router bgp 65010\n bgp confederation identifier 701\n bgp confederation peers 65011 65012\n"
	out := a.AnonymizeText(in)
	if strings.Contains(out, "identifier 701") {
		t.Errorf("confed identifier not mapped: %s", out)
	}
	if !strings.Contains(out, "peers 65011 65012") {
		t.Errorf("private confed peers changed: %s", out)
	}
}

func TestOldFormatCommunity(t *testing.T) {
	a := newTestAnonymizer()
	// 45940844 == 701<<16 | 7148 in old format.
	out := a.AnonymizeText("route-map m permit 10\n set community 45940844\n")
	if strings.Contains(out, "45940844") {
		t.Errorf("old-format community survived: %s", out)
	}
	// Result must still be an integer (structure preserved).
	c := config.Parse(out)
	if len(c.RouteMaps) != 1 || len(c.RouteMaps[0].Clauses[0].Sets) != 1 {
		t.Fatalf("route map lost: %s", out)
	}
	arg := c.RouteMaps[0].Clauses[0].Sets[0].Args[0]
	if !token.IsInteger(arg) {
		t.Errorf("old-format community became non-integer %q", arg)
	}
}

func TestWellKnownCommunitiesKept(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("route-map m permit 10\n set community no-export additive\n")
	if !strings.Contains(out, "no-export additive") {
		t.Errorf("well-known communities changed: %s", out)
	}
}

func TestLeakIterationConverges(t *testing.T) {
	// An ASN lurking in an unrecognized command escapes the 12 ASN rules;
	// the leak report finds it, the operator adds a rule, and the next
	// pass closes the leak. This mirrors §6.1's iterative methodology.
	in := "router bgp 7018\nweird vendor-command peer-as 7018\n"
	a := newTestAnonymizer()
	out := a.AnonymizeText(in)
	leaks := a.LeakReport(out)
	if len(leaks) == 0 {
		t.Fatal("leak report missed the surviving ASN")
	}
	a.AddSensitiveToken("7018")
	out2 := a.AnonymizeText(in)
	if leaks2 := a.LeakReport(out2); len(leaks2) != 0 {
		t.Errorf("leak persists after added rule: %v\n%s", leaks2, out2)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := newTestAnonymizer()
	a.AnonymizeText(figure1)
	s := a.Stats()
	if s.Files != 1 || s.Lines == 0 || s.WordsTotal == 0 {
		t.Errorf("basic counters wrong: %+v", s)
	}
	if s.CommentLinesRemoved < 4 { // two descriptions + two banner lines
		t.Errorf("CommentLinesRemoved = %d", s.CommentLinesRemoved)
	}
	if s.ASNsMapped == 0 || s.IPsMapped == 0 || s.CommunitiesMapped == 0 {
		t.Errorf("mapping counters wrong: %+v", s)
	}
	if s.RegexpsRewritten < 2 {
		t.Errorf("RegexpsRewritten = %d", s.RegexpsRewritten)
	}
	if s.Hits(RuleBGPProcess) != 1 || s.Hits(RuleNeighborRemoteAS) != 1 {
		t.Errorf("rule hits wrong: %+v", s.RuleHits())
	}
}

func TestKeepCommentsOption(t *testing.T) {
	a := New(Options{Salt: []byte("s"), KeepComments: true})
	out := a.AnonymizeText("! some comment\ninterface Ethernet0\n description branch office\n")
	// Lines are kept (emptied of their own content is acceptable), so
	// the line count should not shrink.
	if len(strings.Split(out, "\n")) < 3 {
		t.Errorf("KeepComments dropped lines:\n%q", out)
	}
}

func TestMinimalStyleProducesCompactRegexps(t *testing.T) {
	a := New(Options{Salt: []byte("s"), Style: cregex.Minimal})
	out := a.AnonymizeText("ip as-path access-list 1 permit _70[1-5]_\n")
	c := config.Parse(out)
	al := c.ASPathList(1)
	if al == nil {
		t.Fatal("list lost")
	}
	if _, err := cregex.Parse(al.Entries[0].Regex); err != nil {
		t.Errorf("minimal-style regexp unparseable: %q", al.Entries[0].Regex)
	}
}

func TestAnonymizeIdempotentStructure(t *testing.T) {
	// Anonymizing the anonymized output must not change its structure
	// (all sensitive material is already gone; hashes re-hash, but the
	// shape is stable).
	a := newTestAnonymizer()
	out := a.AnonymizeText(figure1)
	out2 := a.AnonymizeText(out)
	c1, c2 := config.Parse(out), config.Parse(out2)
	if len(c1.Interfaces) != len(c2.Interfaces) || len(c1.RouteMaps) != len(c2.RouteMaps) {
		t.Error("second anonymization changed structure")
	}
}

func TestNamePositionsForceHashed(t *testing.T) {
	// "level" and "import" are pass-listed words, but a route-map called
	// LEVEL3-import names a peer; identifier positions hash regardless.
	a := newTestAnonymizer()
	in := `router bgp 65000
 neighbor 12.0.0.1 remote-as 3356
 neighbor 12.0.0.1 route-map LEVEL3-import in
!
route-map LEVEL3-import permit 10
 match ip address prefix-list LEVEL3-nets
!
ip prefix-list LEVEL3-nets seq 5 permit 4.0.0.0/9
class-map match-any LEVEL3-gold
policy-map LEVEL3-qos
 class LEVEL3-gold
service-policy output LEVEL3-qos
`
	out := a.AnonymizeText(in)
	if strings.Contains(out, "LEVEL3") || strings.Contains(strings.ToLower(out), "level3") {
		t.Errorf("peer identity survived in names:\n%s", out)
	}
	// Referential integrity: definition and reference share the hash.
	c := config.Parse(out)
	nb := c.BGP.Neighbors[0]
	if nb.RouteMapIn == "" || c.RouteMap(nb.RouteMapIn) == nil {
		t.Errorf("route-map reference broken after name hashing:\n%s", out)
	}
}

func TestPeerGroupNames(t *testing.T) {
	a := newTestAnonymizer()
	in := `router bgp 65000
 neighbor UUNET-peers peer-group
 neighbor UUNET-peers remote-as 701
 neighbor 12.0.0.9 peer-group UUNET-peers
`
	out := a.AnonymizeText(in)
	if strings.Contains(out, "UUNET") {
		t.Errorf("peer-group name survived:\n%s", out)
	}
	// All three references hash to the same identifier.
	lines := strings.Split(out, "\n")
	var names []string
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) >= 2 && f[0] == "neighbor" && !strings.Contains(f[1], ".") {
			names = append(names, f[1])
		}
		if len(f) >= 4 && f[2] == "peer-group" {
			names = append(names, f[3])
		}
	}
	if len(names) < 3 {
		t.Fatalf("peer-group references lost:\n%s", out)
	}
	for _, n := range names[1:] {
		if n != names[0] {
			t.Errorf("peer-group references diverge: %v", names)
		}
	}
}

func TestRemainingASNRules(t *testing.T) {
	a := newTestAnonymizer()
	in := `router ospf 5
 redistribute bgp 701
!
route-map m permit 10
 set as-path prepend 701 701 65010
 set extcommunity rt 701:99
!
router bgp 65010
 neighbor 10.0.0.1 local-as 1239
`
	out := a.AnonymizeText(in)
	for _, gone := range []string{"bgp 701", "prepend 701", "rt 701:", "local-as 1239"} {
		if strings.Contains(out, gone) {
			t.Errorf("%q survived:\n%s", gone, out)
		}
	}
	// Private ASN in the prepend stays; structure keywords stay.
	if !strings.Contains(out, "65010") {
		t.Errorf("private ASN changed:\n%s", out)
	}
	for _, keep := range []string{"redistribute bgp ", "set as-path prepend ", "set extcommunity rt ", "local-as "} {
		if !strings.Contains(out, keep) {
			t.Errorf("structure %q destroyed:\n%s", keep, out)
		}
	}
	s := a.Stats()
	for _, r := range []RuleID{RuleRedistributeBGP, RuleASPathPrepend, RuleSetExtCommunity, RuleNeighborLocalAS} {
		if s.Hits(r) == 0 {
			t.Errorf("rule %s never fired", r)
		}
	}
}

func TestAllRulesListed(t *testing.T) {
	if len(AllRules) != 28 {
		t.Errorf("rule inventory has %d rules, the paper reports 28", len(AllRules))
	}
	seen := map[RuleID]bool{}
	for _, r := range AllRules {
		if seen[r] {
			t.Errorf("duplicate rule %s", r)
		}
		seen[r] = true
	}
}
