package anonymizer

import (
	"strings"
	"sync"
	"testing"

	"confanon/internal/metrics"
)

// TestProgramRewriteCacheSingleflight pins the memo contract of the
// compiled Program's regexp-rewrite cache: when many workers of one
// Session rewrite the same pattern concurrently, the rewrite is computed
// exactly once (singleflight) and every other caller is a cache hit —
// observable both on the Program's counters and, after the workers
// flush, on the registry's cregex series.
func TestProgramRewriteCacheSingleflight(t *testing.T) {
	reg := metrics.NewRegistry()
	prog := Compile(Options{Salt: []byte("memo")})
	sess := prog.NewSession()
	sess.SetMetrics(reg)

	// One AS-path regexp and one community regexp: two cache keys (the
	// kinds are cached separately even for equal pattern strings).
	text := "ip as-path access-list 5 permit _701_\n" +
		"ip community-list 7 permit 701:.*\n"
	const workers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := sess.Acquire()
			defer sess.Release(w)
			<-start
			w.AnonymizeText(text)
		}()
	}
	close(start)
	wg.Wait()

	if got := prog.CacheMisses(); got != 2 {
		t.Errorf("cache misses = %d, want 2 (one per pattern)", got)
	}
	if got := prog.CacheHits(); got != 2*(workers-1) {
		t.Errorf("cache hits = %d, want %d", got, 2*(workers-1))
	}

	counters := reg.Counters()
	if got := counters["confanon_cregex_cache_misses_total"]; got != 2 {
		t.Errorf("registry cache-miss counter = %v, want 2", got)
	}
	if got := counters["confanon_cregex_cache_hits_total"]; got != float64(2*(workers-1)) {
		t.Errorf("registry cache-hit counter = %v, want %d", got, 2*(workers-1))
	}

	// Cache hits must still replay the permuted ASNs into each caller's
	// recorder: the session-wide leak recorder knows 701 even though only
	// one worker computed the rewrite.
	sess.recMu.RLock()
	saw := sess.seenASNs["701"]
	sess.recMu.RUnlock()
	if !saw {
		t.Error("session recorder is missing ASN 701 after cached rewrites")
	}

	// And all workers must have produced the same rewritten line.
	w := sess.Acquire()
	defer sess.Release(w)
	out := w.AnonymizeText(text)
	if strings.Contains(out, "701") {
		t.Errorf("public ASN survives in rewritten output:\n%s", out)
	}
}

// TestSessionWorkersShareMapping: workers of one Session anonymizing
// different files concurrently agree on the mapping of a shared address.
func TestSessionWorkersShareMapping(t *testing.T) {
	sess := Compile(Options{Salt: []byte("shared")}).NewSession()
	text := "interface Serial0\n ip address 12.1.2.3 255.255.255.0\n"
	const workers = 8
	outs := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sess.Acquire()
			defer sess.Release(w)
			outs[i] = w.AnonymizeText(text)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("worker %d output differs:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
}
