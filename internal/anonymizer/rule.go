package anonymizer

// The rule registry. Every context rule is a named, self-describing
// entry: RuleInfo carries the identity and taxonomy of one RuleID, and
// lineRule carries the dispatchable implementation of one line-scoped
// rule. The engine (engine.go) owns line iteration and consults the
// ordered dispatch table built here; token-scoped rules fire inside the
// engine's generic word pass, and report-scoped rules fire in LeakReport.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Class groups rules by the paper's §4.2 taxonomy.
type Class string

// Rule classes.
const (
	ClassSegmentation Class = "segmentation"
	ClassComment      Class = "comment"
	ClassMisc         Class = "misc"
	ClassName         Class = "name"
	ClassASN          Class = "asn"
	ClassIP           Class = "ip"
	ClassCommunity    Class = "community"
	ClassLeak         Class = "leak"
)

// Scope says where in the pipeline a rule runs.
type Scope string

// Rule scopes.
const (
	// ScopeLine rules consume whole lines via the keyed dispatch table.
	ScopeLine Scope = "line"
	// ScopeStructural rules manage cross-line state (banner bodies,
	// JunOS block comments) and run before tokenized dispatch.
	ScopeStructural Scope = "structural"
	// ScopeToken rules fire per word inside the generic pass.
	ScopeToken Scope = "token"
	// ScopeReport rules fire during the post-anonymization leak scan.
	ScopeReport Scope = "report"
)

// RuleInfo is the self-describing registry entry for one RuleID.
type RuleInfo struct {
	ID    RuleID
	Class Class
	Scope Scope
	Doc   string
}

// ruleInfos describes the full inventory — the paper's 28 rules plus the
// extension rules this reproduction adds (name positions, §4.1).
var ruleInfos = []RuleInfo{
	{RuleSegmentAlpha, ClassSegmentation, ScopeToken, "split words into alphabetic / non-alphabetic runs before the pass-list"},
	{RuleSegmentWords, ClassSegmentation, ScopeToken, "split compound identifiers joined by dots and dashes"},
	{RuleBanner, ClassComment, ScopeStructural, "strip banner bodies between the delimiter lines"},
	{RuleDescription, ClassComment, ScopeLine, "strip description / remark free text"},
	{RuleCommentLine, ClassComment, ScopeLine, "strip ! and # comment lines and /* */ blocks"},
	{RuleDialerString, ClassMisc, ScopeLine, "phone numbers after \"dialer string\""},
	{RuleSNMPCommunity, ClassMisc, ScopeLine, "snmp-server community credential"},
	{RuleHostname, ClassMisc, ScopeLine, "hostname and domain-name segments"},
	{RuleCredentials, ClassMisc, ScopeLine, "usernames, passwords, secrets, keys"},
	{RuleBGPProcess, ClassASN, ScopeLine, "router bgp ASN / JunOS autonomous-system"},
	{RuleRedistributeBGP, ClassASN, ScopeLine, "redistribute bgp ASN"},
	{RuleNeighborRemoteAS, ClassASN, ScopeLine, "neighbor remote-as / JunOS peer-as"},
	{RuleNeighborLocalAS, ClassASN, ScopeLine, "neighbor local-as"},
	{RuleConfedID, ClassASN, ScopeLine, "bgp confederation identifier"},
	{RuleConfedPeers, ClassASN, ScopeLine, "bgp confederation peers list"},
	{RuleSetCommunity, ClassASN, ScopeLine, "set community values"},
	{RuleSetExtCommunity, ClassASN, ScopeLine, "set extcommunity values"},
	{RuleCommListLiteral, ClassASN, ScopeLine, "community-list literal entries"},
	{RuleCommListRegexp, ClassASN, ScopeLine, "community-list regexp entries (language rewrite)"},
	{RuleASPathPrepend, ClassASN, ScopeLine, "set as-path prepend ASNs"},
	{RuleASPathRegexp, ClassASN, ScopeLine, "as-path access-list regexps (language rewrite)"},
	{RuleAddrNetmask, ClassIP, ScopeToken, "address + netmask pair (prefix-length context)"},
	{RuleAddrWildcard, ClassIP, ScopeToken, "address + wildcard-mask pair"},
	{RuleBareAddr, ClassIP, ScopeToken, "bare dotted-quad address"},
	{RuleSlashPrefix, ClassIP, ScopeToken, "a.b.c.d/len prefix"},
	{RuleClassfulNet, ClassIP, ScopeToken, "classful network statements under RIP/EIGRP/IGRP"},
	{RuleBareCommunity, ClassCommunity, ScopeToken, "bare asn:value community token"},
	{RuleLeakHighlight, ClassLeak, ScopeReport, "highlight recorded sensitive values surviving in output"},
	{RuleNamePosition, ClassName, ScopeLine, "user-chosen identifiers at known grammar positions (extension)"},
}

// numBuiltinRules counts the built-in taxonomy entries (ruleInfos); an
// init check pins it against the slice.
const numBuiltinRules = 29

// maxRules sizes the dense per-rule counter arrays in Stats: the
// built-in taxonomy plus headroom for rule-pack registrations. A
// constant (array length), so loading packs never reallocates a
// counter array or invalidates a Stats value already in flight.
const maxRules = 96

// ruleRegistry is the global RuleID → index mapping backing the dense
// Stats arrays. Copy-on-write behind an atomic pointer: the engine hot
// path (hit) does one atomic load and one map lookup, identical in cost
// to the fixed map it replaces, while pack compilation appends new
// taxonomy entries under regMu. Indices are append-only and never
// reused, so a Stats value merged across registry generations stays
// coherent.
type ruleRegistry struct {
	infos []RuleInfo
	index map[RuleID]int
}

var (
	ruleReg atomic.Pointer[ruleRegistry]
	regMu   sync.Mutex
)

// lookupRule returns the registry index of a rule.
func lookupRule(id RuleID) (int, bool) {
	i, ok := ruleReg.Load().index[id]
	return i, ok
}

// registerRule installs a pack-supplied taxonomy entry. Re-registering
// an identical entry (the same pack compiled twice) is a no-op; a
// conflicting entry — same ID, different class/scope/doc — is an error,
// as is exhausting the counter-array headroom.
func registerRule(info RuleInfo) error {
	regMu.Lock()
	defer regMu.Unlock()
	reg := ruleReg.Load()
	if i, ok := reg.index[info.ID]; ok {
		if reg.infos[i] != info {
			return fmt.Errorf("rule %q already registered with a different description", info.ID)
		}
		return nil
	}
	if len(reg.infos) >= maxRules {
		return fmt.Errorf("rule registry full (%d entries): cannot register %q", maxRules, info.ID)
	}
	next := &ruleRegistry{
		infos: append(append([]RuleInfo(nil), reg.infos...), info),
		index: make(map[RuleID]int, len(reg.infos)+1),
	}
	for i, ri := range next.infos {
		next.index[ri.ID] = i
	}
	ruleReg.Store(next)
	return nil
}

// checkRule is registerRule's dry run: the same conflict and headroom
// checks, installing nothing (pack validation tooling).
func checkRule(info RuleInfo) error {
	regMu.Lock()
	defer regMu.Unlock()
	reg := ruleReg.Load()
	if i, ok := reg.index[info.ID]; ok {
		if reg.infos[i] != info {
			return fmt.Errorf("rule %q already registered with a different description", info.ID)
		}
		return nil
	}
	if len(reg.infos) >= maxRules {
		return fmt.Errorf("rule registry full (%d entries): cannot register %q", maxRules, info.ID)
	}
	return nil
}

// Rules returns the registry inventory in canonical order: the paper's 28
// rules first (AllRules order), then the extension rules, then any
// pack-registered rules in registration order.
func Rules() []RuleInfo {
	reg := ruleReg.Load()
	out := make([]RuleInfo, len(reg.infos))
	copy(out, reg.infos)
	return out
}

// lineCtx carries one tokenized line through the dispatch table.
type lineCtx struct {
	raw   string
	words []string
	gaps  []string
	st    *fileState
}

// applyFn rewrites one line. out and keep are meaningful only when
// consumed is true; keep=false drops the line from the output.
// consumed=false means the rule declined the line — possibly after
// recording stats (see the JunOS message rule, which preserves the
// seed behavior of falling through to the generic pass) — and dispatch
// continues with the next rule in registry order.
type applyFn func(a *Anonymizer, c *lineCtx) (out string, keep, consumed bool)

// lineRule is one dispatchable entry of the line-scoped rule pipeline.
type lineRule struct {
	id    RuleID   // primary rule this entry implements
	name  string   // entry name, unique within the dispatch table
	keys  []string // words[0] literals that can trigger it; empty = any
	apply applyFn
	seq   int // position in registry order, assigned at assembly
}

func init() {
	if len(ruleInfos) != numBuiltinRules {
		panic("anonymizer: numBuiltinRules out of sync with the rule registry")
	}
	reg := &ruleRegistry{
		infos: append([]RuleInfo(nil), ruleInfos...),
		index: make(map[RuleID]int, len(ruleInfos)),
	}
	for i, info := range ruleInfos {
		if _, dup := reg.index[info.ID]; dup {
			panic("anonymizer: duplicate rule id " + string(info.ID))
		}
		reg.index[info.ID] = i
	}
	ruleReg.Store(reg)

	// Compile the canonical pack once at init: a builtin inventory that
	// does not round-trip through the pack path is a build defect, and
	// every Program compiled with no user packs shares this rule set.
	rs, err := compileRuleSet(nil, true)
	if err != nil {
		panic("anonymizer: builtin pack does not compile: " + err.Error())
	}
	builtinRuleSet = rs
}

// builtinRuleSet is the dispatch inventory compiled from the canonical
// pack alone — shared by every Program with no user packs loaded.
var builtinRuleSet *ruleSet

// dispatchLine runs the line through the Program's rule pipeline: the
// entries keyed on words[0] merged with the key-less entries by
// sequence number. The first rule that consumes the line wins.
func (a *Anonymizer) dispatchLine(c *lineCtx) (string, bool, bool) {
	rs := a.rules
	keyed := rs.keyed[c.words[0]]
	ki, ui := 0, 0
	for ki < len(keyed) || ui < len(rs.unkeyed) {
		var r *lineRule
		if ui >= len(rs.unkeyed) || (ki < len(keyed) && keyed[ki].seq < rs.unkeyed[ui].seq) {
			r = keyed[ki]
			ki++
		} else {
			r = rs.unkeyed[ui]
			ui++
		}
		if out, keep, consumed := r.apply(a, c); consumed {
			return out, keep, true
		}
	}
	return "", false, false
}
