package anonymizer

// The rule registry. Every context rule is a named, self-describing
// entry: RuleInfo carries the identity and taxonomy of one RuleID, and
// lineRule carries the dispatchable implementation of one line-scoped
// rule. The engine (engine.go) owns line iteration and consults the
// ordered dispatch table built here; token-scoped rules fire inside the
// engine's generic word pass, and report-scoped rules fire in LeakReport.

// Class groups rules by the paper's §4.2 taxonomy.
type Class string

// Rule classes.
const (
	ClassSegmentation Class = "segmentation"
	ClassComment      Class = "comment"
	ClassMisc         Class = "misc"
	ClassName         Class = "name"
	ClassASN          Class = "asn"
	ClassIP           Class = "ip"
	ClassCommunity    Class = "community"
	ClassLeak         Class = "leak"
)

// Scope says where in the pipeline a rule runs.
type Scope string

// Rule scopes.
const (
	// ScopeLine rules consume whole lines via the keyed dispatch table.
	ScopeLine Scope = "line"
	// ScopeStructural rules manage cross-line state (banner bodies,
	// JunOS block comments) and run before tokenized dispatch.
	ScopeStructural Scope = "structural"
	// ScopeToken rules fire per word inside the generic pass.
	ScopeToken Scope = "token"
	// ScopeReport rules fire during the post-anonymization leak scan.
	ScopeReport Scope = "report"
)

// RuleInfo is the self-describing registry entry for one RuleID.
type RuleInfo struct {
	ID    RuleID
	Class Class
	Scope Scope
	Doc   string
}

// ruleInfos describes the full inventory — the paper's 28 rules plus the
// extension rules this reproduction adds (name positions, §4.1).
var ruleInfos = []RuleInfo{
	{RuleSegmentAlpha, ClassSegmentation, ScopeToken, "split words into alphabetic / non-alphabetic runs before the pass-list"},
	{RuleSegmentWords, ClassSegmentation, ScopeToken, "split compound identifiers joined by dots and dashes"},
	{RuleBanner, ClassComment, ScopeStructural, "strip banner bodies between the delimiter lines"},
	{RuleDescription, ClassComment, ScopeLine, "strip description / remark free text"},
	{RuleCommentLine, ClassComment, ScopeLine, "strip ! and # comment lines and /* */ blocks"},
	{RuleDialerString, ClassMisc, ScopeLine, "phone numbers after \"dialer string\""},
	{RuleSNMPCommunity, ClassMisc, ScopeLine, "snmp-server community credential"},
	{RuleHostname, ClassMisc, ScopeLine, "hostname and domain-name segments"},
	{RuleCredentials, ClassMisc, ScopeLine, "usernames, passwords, secrets, keys"},
	{RuleBGPProcess, ClassASN, ScopeLine, "router bgp ASN / JunOS autonomous-system"},
	{RuleRedistributeBGP, ClassASN, ScopeLine, "redistribute bgp ASN"},
	{RuleNeighborRemoteAS, ClassASN, ScopeLine, "neighbor remote-as / JunOS peer-as"},
	{RuleNeighborLocalAS, ClassASN, ScopeLine, "neighbor local-as"},
	{RuleConfedID, ClassASN, ScopeLine, "bgp confederation identifier"},
	{RuleConfedPeers, ClassASN, ScopeLine, "bgp confederation peers list"},
	{RuleSetCommunity, ClassASN, ScopeLine, "set community values"},
	{RuleSetExtCommunity, ClassASN, ScopeLine, "set extcommunity values"},
	{RuleCommListLiteral, ClassASN, ScopeLine, "community-list literal entries"},
	{RuleCommListRegexp, ClassASN, ScopeLine, "community-list regexp entries (language rewrite)"},
	{RuleASPathPrepend, ClassASN, ScopeLine, "set as-path prepend ASNs"},
	{RuleASPathRegexp, ClassASN, ScopeLine, "as-path access-list regexps (language rewrite)"},
	{RuleAddrNetmask, ClassIP, ScopeToken, "address + netmask pair (prefix-length context)"},
	{RuleAddrWildcard, ClassIP, ScopeToken, "address + wildcard-mask pair"},
	{RuleBareAddr, ClassIP, ScopeToken, "bare dotted-quad address"},
	{RuleSlashPrefix, ClassIP, ScopeToken, "a.b.c.d/len prefix"},
	{RuleClassfulNet, ClassIP, ScopeToken, "classful network statements under RIP/EIGRP/IGRP"},
	{RuleBareCommunity, ClassCommunity, ScopeToken, "bare asn:value community token"},
	{RuleLeakHighlight, ClassLeak, ScopeReport, "highlight recorded sensitive values surviving in output"},
	{RuleNamePosition, ClassName, ScopeLine, "user-chosen identifiers at known grammar positions (extension)"},
}

// numRules sizes the dense per-rule counter arrays in Stats. It must be
// a constant (array length); init panics if it drifts from the registry.
const numRules = 29

// ruleIndex maps each RuleID to its registry position — the index of
// its slots in the Stats counter arrays. Built once at init, read-only
// afterwards.
var ruleIndex = make(map[RuleID]int, numRules)

// Rules returns the registry inventory in canonical order: the paper's 28
// rules first (AllRules order), then the extension rules.
func Rules() []RuleInfo {
	out := make([]RuleInfo, len(ruleInfos))
	copy(out, ruleInfos)
	return out
}

// lineCtx carries one tokenized line through the dispatch table.
type lineCtx struct {
	raw   string
	words []string
	gaps  []string
	st    *fileState
}

// applyFn rewrites one line. out and keep are meaningful only when
// consumed is true; keep=false drops the line from the output.
// consumed=false means the rule declined the line — possibly after
// recording stats (see the JunOS message rule, which preserves the
// seed behavior of falling through to the generic pass) — and dispatch
// continues with the next rule in registry order.
type applyFn func(a *Anonymizer, c *lineCtx) (out string, keep, consumed bool)

// lineRule is one dispatchable entry of the line-scoped rule pipeline.
type lineRule struct {
	id    RuleID   // primary rule this entry implements
	name  string   // entry name, unique within the dispatch table
	keys  []string // words[0] literals that can trigger it; empty = any
	apply applyFn
	seq   int // position in registry order, assigned at assembly
}

// The dispatch table, assembled in registry order. Order is the contract:
// comment rules run before misc, misc before name, name before JunOS,
// JunOS before ASN — the same precedence the monolithic dispatcher had —
// and within a group, entries run in declaration order.
var (
	lineRules    []*lineRule
	keyedRules   map[string][]*lineRule
	unkeyedRules []*lineRule
)

func init() {
	if len(ruleInfos) != numRules {
		panic("anonymizer: numRules out of sync with the rule registry")
	}
	for i, info := range ruleInfos {
		if _, dup := ruleIndex[info.ID]; dup {
			panic("anonymizer: duplicate rule id " + string(info.ID))
		}
		ruleIndex[info.ID] = i
	}
	lineRules = lineRules[:0]
	for _, group := range [][]*lineRule{
		commentLineRules, miscLineRules, nameLineRules, junosLineRules, asnLineRules,
	} {
		lineRules = append(lineRules, group...)
	}
	keyedRules = make(map[string][]*lineRule)
	unkeyedRules = nil
	names := make(map[string]bool, len(lineRules))
	for i, r := range lineRules {
		r.seq = i
		if r.apply == nil || r.name == "" || names[r.name] {
			panic("anonymizer: malformed rule entry " + r.name)
		}
		names[r.name] = true
		if len(r.keys) == 0 {
			unkeyedRules = append(unkeyedRules, r)
			continue
		}
		for _, k := range r.keys {
			keyedRules[k] = append(keyedRules[k], r)
		}
	}
}

// dispatchLine runs the line through the rule pipeline in registry order:
// the entries keyed on words[0] merged with the key-less entries by
// sequence number. The first rule that consumes the line wins.
func (a *Anonymizer) dispatchLine(c *lineCtx) (string, bool, bool) {
	keyed := keyedRules[c.words[0]]
	ki, ui := 0, 0
	for ki < len(keyed) || ui < len(unkeyedRules) {
		var r *lineRule
		if ui >= len(unkeyedRules) || (ki < len(keyed) && keyed[ki].seq < unkeyedRules[ui].seq) {
			r = keyed[ki]
			ki++
		} else {
			r = unkeyedRules[ui]
			ui++
		}
		if out, keep, consumed := r.apply(a, c); consumed {
			return out, keep, true
		}
	}
	return "", false, false
}
