package anonymizer

import (
	"strconv"
	"strings"

	"confanon/internal/asn"
	"confanon/internal/token"
	"confanon/internal/trace"
)

// ASN-location entries (A1–A12) and the ASN/community token mappers they
// share with the generic pass.

var asnLineRules = []*lineRule{
	// A1: router bgp ASN.
	{id: RuleBGPProcess, name: "router-bgp", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 3 || c.words[1] != "bgp" {
			return "", false, false
		}
		a.hit(RuleBGPProcess)
		c.words[2] = a.mapASNToken(c.words[2])
		return token.Join(c.words, c.gaps), true, true
	}},

	// A2: redistribute bgp ASN [route-map NAME ...].
	{id: RuleRedistributeBGP, name: "redistribute-bgp", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 3 || c.words[1] != "bgp" {
			return "", false, false
		}
		a.hit(RuleRedistributeBGP)
		c.words[2] = a.mapASNToken(c.words[2])
		a.genericWords(c.words[3:], c.st)
		return token.Join(c.words, c.gaps), true, true
	}},

	// A3: neighbor A remote-as ASN.
	{id: RuleNeighborRemoteAS, name: "neighbor-remote-as", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[2] != "remote-as" {
			return "", false, false
		}
		a.hit(RuleNeighborRemoteAS)
		c.words[1] = a.mapNeighborToken(c.words[1])
		c.words[3] = a.mapASNToken(c.words[3])
		return token.Join(c.words, c.gaps), true, true
	}},

	// A4: neighbor A local-as ASN.
	{id: RuleNeighborLocalAS, name: "neighbor-local-as", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[2] != "local-as" {
			return "", false, false
		}
		a.hit(RuleNeighborLocalAS)
		c.words[1] = a.mapNeighborToken(c.words[1])
		c.words[3] = a.mapASNToken(c.words[3])
		return token.Join(c.words, c.gaps), true, true
	}},

	// A5: bgp confederation identifier ASN.
	{id: RuleConfedID, name: "confed-identifier", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[1] != "confederation" || c.words[2] != "identifier" {
			return "", false, false
		}
		a.hit(RuleConfedID)
		c.words[3] = a.mapASNToken(c.words[3])
		return token.Join(c.words, c.gaps), true, true
	}},

	// A6: bgp confederation peers ASN...
	{id: RuleConfedPeers, name: "confed-peers", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[1] != "confederation" || c.words[2] != "peers" {
			return "", false, false
		}
		a.hit(RuleConfedPeers)
		for i := 3; i < len(c.words); i++ {
			c.words[i] = a.mapASNToken(c.words[i])
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// A7: set community V...
	{id: RuleSetCommunity, name: "set-community", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 3 || c.words[1] != "community" {
			return "", false, false
		}
		a.hit(RuleSetCommunity)
		for i := 2; i < len(c.words); i++ {
			c.words[i] = a.mapCommunityToken(c.words[i])
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// A8: set extcommunity rt|soo V...
	{id: RuleSetExtCommunity, name: "set-extcommunity", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[1] != "extcommunity" {
			return "", false, false
		}
		a.hit(RuleSetExtCommunity)
		for i := 3; i < len(c.words); i++ {
			c.words[i] = a.mapCommunityToken(c.words[i])
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// A9/A10: ip community-list entries, numeric or named form; each
	// entry token is a literal community (A9) or a regexp (A10).
	{id: RuleCommListLiteral, name: "community-list", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 5 || c.words[1] != "community-list" {
			return "", false, false
		}
		start := 4
		if c.words[2] == "standard" || c.words[2] == "expanded" {
			if len(c.words) < 6 {
				return token.Join(c.words, c.gaps), true, true
			}
			c.words[3] = a.forceHashName(c.words[3])
			start = 5
		}
		for i := start; i < len(c.words); i++ {
			c.words[i] = a.mapCommunityExpr(c.words[i])
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// A11: set as-path prepend ASN...
	{id: RuleASPathPrepend, name: "as-path-prepend", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 4 || c.words[1] != "as-path" || c.words[2] != "prepend" {
			return "", false, false
		}
		a.hit(RuleASPathPrepend)
		for i := 3; i < len(c.words); i++ {
			c.words[i] = a.mapASNToken(c.words[i])
		}
		return token.Join(c.words, c.gaps), true, true
	}},

	// A12: ip as-path access-list N permit|deny REGEXP.
	{id: RuleASPathRegexp, name: "as-path-access-list", apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
		if len(c.words) < 6 || c.words[1] != "as-path" || c.words[2] != "access-list" {
			return "", false, false
		}
		a.hit(RuleASPathRegexp)
		// The regexp is everything after the action word; it may contain
		// spaces (alternation of path expressions), so rewrite the join.
		pattern := strings.Join(c.words[5:], " ")
		rewritten := a.rewriteASPath(pattern)
		c.words[5] = rewritten
		c.words = c.words[:6]
		c.gaps = append(c.gaps[:6], c.gaps[len(c.gaps)-1])
		return token.Join(c.words, c.gaps), true, true
	}},
}

// rewriteASPath rewrites an AS-path regexp through the Program's memo
// (the rewrite is a pure function of pattern and salt, so repeated
// patterns — across files, workers, and sessions — compute once),
// falling back to hashing when the pattern does not parse (conservatism
// over information preservation). Hit or miss, every public ASN the
// rewrite permuted is recorded for the leak report, and the per-
// occurrence statistics count as if the rewrite ran fresh.
func (a *Anonymizer) rewriteASPath(pattern string) string {
	res, err := a.prog.rewriteASN(pattern, a.recordASN)
	if err != nil {
		a.stats.RegexpFallbacks++
		return a.forceHash(pattern)
	}
	if res.Changed {
		a.stats.RegexpsRewritten++
	} else {
		a.stats.RegexpsUnchanged++
	}
	return res.Pattern
}

// mapCommunityExpr handles one community-list entry token: a literal
// community (A9), a well-known value, or a regexp (A10).
func (a *Anonymizer) mapCommunityExpr(w string) string {
	if isWellKnownCommunity(w) {
		return w
	}
	if _, _, ok := token.ParseCommunity(w); ok {
		a.hit(RuleCommListLiteral)
		return a.mapCommunityToken(w)
	}
	if token.IsInteger(w) {
		a.hit(RuleCommListLiteral)
		return a.mapCommunityToken(w)
	}
	a.hit(RuleCommListRegexp)
	res, err := a.prog.rewriteCommunity(w, a.recordASN)
	if err != nil {
		a.stats.RegexpFallbacks++
		return a.forceHash(w)
	}
	if res.Changed {
		a.stats.RegexpsRewritten++
	} else {
		a.stats.RegexpsUnchanged++
	}
	return res.Pattern
}

func isWellKnownCommunity(w string) bool {
	switch w {
	case "internet", "no-export", "no-advertise", "local-as", "additive", "none":
		return true
	}
	return false
}

// mapCommunityToken maps "asn:value" (both halves), an old-format 32-bit
// community (split into halves), or passes through keywords.
func (a *Anonymizer) mapCommunityToken(w string) string {
	if isWellKnownCommunity(w) {
		return w
	}
	if asnHalf, val, ok := token.ParseCommunity(w); ok {
		a.stats.CommunitiesMapped++
		if asn.IsPublic(asnHalf) {
			a.recordASN(asnHalf)
		}
		ma, mv := asn.MapCommunity(a.perms.ASN, a.perms.Value, asnHalf, val)
		out := strconv.FormatUint(uint64(ma), 10) + ":" + strconv.FormatUint(uint64(mv), 10)
		if a.tracer != nil {
			a.decide(trace.ClassCommunity, out)
		}
		return out
	}
	if token.IsInteger(w) {
		v, err := strconv.ParseUint(w, 10, 64)
		if err == nil && v > 0xFFFF && v <= 0xFFFFFFFF {
			// Old-format community: high half is the ASN.
			a.stats.CommunitiesMapped++
			hi, lo := uint32(v>>16), uint32(v&0xFFFF)
			if asn.IsPublic(hi) {
				a.recordASN(hi)
			}
			ma, mv := asn.MapCommunity(a.perms.ASN, a.perms.Value, hi, lo)
			out := strconv.FormatUint(uint64(ma)<<16|uint64(mv), 10)
			if a.tracer != nil {
				a.decide(trace.ClassCommunity, out)
			}
			return out
		}
		if err == nil && v <= 0xFFFF {
			a.stats.CommunitiesMapped++
			out := strconv.FormatUint(uint64(a.perms.Value.Map(uint32(v))), 10)
			if a.tracer != nil {
				a.decide(trace.ClassCommunity, out)
			}
			return out
		}
	}
	return a.forceHash(w)
}

// mapASNToken permutes a decimal ASN token; non-numeric tokens are hashed.
func (a *Anonymizer) mapASNToken(w string) string {
	if !token.IsInteger(w) {
		return a.forceHash(w)
	}
	v, err := strconv.ParseUint(w, 10, 32)
	if err != nil {
		return a.forceHash(w)
	}
	out := a.perms.ASN.Map(uint32(v))
	res := strconv.FormatUint(uint64(out), 10)
	if out != uint32(v) {
		a.stats.ASNsMapped++
		a.recordASN(uint32(v))
		if a.tracer != nil {
			a.decide(trace.ClassASN, res)
		}
	}
	return res
}

// mapAddrToken maps a dotted-quad token, preserving non-addresses.
func (a *Anonymizer) mapAddrToken(w string) string {
	v, ok := token.ParseIPv4(w)
	if !ok {
		return a.forceHash(w)
	}
	a.hit(RuleBareAddr)
	a.stats.IPsMapped++
	out := a.ip.MapV4(v)
	if out != v {
		a.seenIPs[v] = true
	}
	res := token.FormatIPv4(out)
	if a.tracer != nil {
		a.decide(trace.ClassIP, res)
	}
	return res
}

func (a *Anonymizer) recordASN(v uint32) {
	a.seenASNs[strconv.FormatUint(uint64(v), 10)] = true
}
