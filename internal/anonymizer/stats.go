package anonymizer

import (
	"fmt"
	"reflect"
	"time"
)

// Stats accumulates the measurements the experiments report, plus the
// engine's per-rule instrumentation.
type Stats struct {
	Files               int
	Lines               int
	WordsTotal          int
	CommentWordsRemoved int
	CommentLinesRemoved int
	TokensHashed        int
	TokensPassed        int
	IPsMapped           int
	ASNsMapped          int
	CommunitiesMapped   int
	RegexpsRewritten    int
	RegexpsUnchanged    int
	RegexpFallbacks     int
	// RuleHits counts how many times each registry rule fired.
	RuleHits map[RuleID]int
	// RuleTime is each rule's cumulative wall time: every line's
	// processing time is attributed to the rules that fired on it,
	// proportionally to their hits on that line, so the values sum to
	// the total line-rewriting time (prescan excluded).
	RuleTime map[RuleID]time.Duration
}

// newStats returns a Stats with its maps initialized.
func newStats() Stats {
	return Stats{
		RuleHits: make(map[RuleID]int),
		RuleTime: make(map[RuleID]time.Duration),
	}
}

// Clone returns a deep copy of s (the rule maps are copied, not shared).
// The fault layer snapshots statistics before each file so a failed file
// can be rolled back out of the batch totals.
func (s Stats) Clone() Stats {
	c := s
	c.RuleHits = make(map[RuleID]int, len(s.RuleHits))
	for k, v := range s.RuleHits {
		c.RuleHits[k] = v
	}
	c.RuleTime = make(map[RuleID]time.Duration, len(s.RuleTime))
	for k, v := range s.RuleTime {
		c.RuleTime[k] = v
	}
	return c
}

// Add accumulates other into s. It merges reflectively — every integer
// counter is summed and every rule-keyed map is merged — so a counter
// added to Stats later is picked up automatically instead of being
// silently dropped by a hand-written field list. It panics on a field
// kind it does not know how to merge, turning "new field forgotten in
// the merge" into an immediate test failure rather than silent data
// loss. Used by the engine's corpus paths and ParallelCorpus.
func (s *Stats) Add(other Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(&other).Elem()
	t := sv.Type()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		o := ov.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + o.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + o.Uint())
		case reflect.Float32, reflect.Float64:
			f.SetFloat(f.Float() + o.Float())
		case reflect.Map:
			switch f.Type().Elem().Kind() {
			case reflect.Int, reflect.Int64:
				if o.Len() == 0 {
					continue
				}
				if f.IsNil() {
					f.Set(reflect.MakeMapWithSize(f.Type(), o.Len()))
				}
				iter := o.MapRange()
				for iter.Next() {
					k := iter.Key()
					sum := iter.Value().Int()
					if cur := f.MapIndex(k); cur.IsValid() {
						sum += cur.Int()
					}
					f.SetMapIndex(k, reflect.ValueOf(sum).Convert(f.Type().Elem()))
				}
			default:
				panic(fmt.Sprintf("anonymizer: Stats.Add cannot merge map field %s (%s)",
					t.Field(i).Name, f.Type()))
			}
		default:
			panic(fmt.Sprintf("anonymizer: Stats.Add cannot merge field %s (kind %s)",
				t.Field(i).Name, f.Kind()))
		}
	}
}
