package anonymizer

import (
	"sync/atomic"
	"time"
)

// Stats accumulates the measurements the experiments report, plus the
// engine's per-rule instrumentation.
//
// The scalar counters are exported int64 fields; the per-rule counters
// live in dense arrays indexed by registry position (ruleReg, rule.go),
// read through Hits/Time/RuleHits/RuleTime. The dense layout
// replaces the old map-backed, reflection-merged representation: Clone
// is a plain value copy (the fault layer snapshots statistics before
// every file, so this is on the batch hot path) and Add is an explicit
// field list of atomic adds, safe to call concurrently on a shared
// destination from parallel corpus workers.
//
// A reflection-driven test (stats_test.go) asserts that every field of
// Stats is one Add knows how to merge, so a counter added later still
// cannot be silently dropped — the guarantee moved from the merge to
// the test suite, taking the reflection cost off the hot path.
type Stats struct {
	Files               int64
	Lines               int64
	WordsTotal          int64
	CommentWordsRemoved int64
	CommentLinesRemoved int64
	TokensHashed        int64
	TokensPassed        int64
	IPsMapped           int64
	ASNsMapped          int64
	CommunitiesMapped   int64
	RegexpsRewritten    int64
	RegexpsUnchanged    int64
	RegexpFallbacks     int64

	// ruleHits counts how many times each registry rule fired, indexed
	// by registry position. Sized maxRules (not the current registry
	// length) so pack registrations never reallocate counter storage or
	// invalidate a Stats value already in flight; slots past the live
	// registry stay zero.
	ruleHits [maxRules]int64
	// ruleTimeNs is each rule's cumulative wall time in nanoseconds:
	// every line's processing time is attributed to the rules that fired
	// on it, proportionally to their hits on that line, so the values
	// sum to the total line-rewriting time (prescan excluded).
	ruleTimeNs [maxRules]int64
}

// newStats returns a zero Stats (kept for construction symmetry; the
// dense representation needs no map initialization).
func newStats() Stats { return Stats{} }

// Clone returns a copy of s. Arrays copy by value, so this is a single
// struct assignment; the name survives from the map era because the
// fault layer and snapshot API are written against it.
func (s Stats) Clone() Stats { return s }

// Hits returns how many times the rule fired.
func (s Stats) Hits(id RuleID) int64 {
	if i, ok := lookupRule(id); ok {
		return s.ruleHits[i]
	}
	return 0
}

// Time returns the rule's attributed cumulative wall time.
func (s Stats) Time(id RuleID) time.Duration {
	if i, ok := lookupRule(id); ok {
		return time.Duration(s.ruleTimeNs[i])
	}
	return 0
}

// RuleHits materializes the per-rule hit counts as a map (rules that
// never fired are omitted, matching the old map-backed behavior).
func (s Stats) RuleHits() map[RuleID]int64 {
	reg := ruleReg.Load()
	m := make(map[RuleID]int64)
	for i := range reg.infos {
		if n := s.ruleHits[i]; n != 0 {
			m[reg.infos[i].ID] = n
		}
	}
	return m
}

// RuleTime materializes the per-rule attributed times as a map.
func (s Stats) RuleTime() map[RuleID]time.Duration {
	reg := ruleReg.Load()
	m := make(map[RuleID]time.Duration)
	for i := range reg.infos {
		if ns := s.ruleTimeNs[i]; ns != 0 {
			m[reg.infos[i].ID] = time.Duration(ns)
		}
	}
	return m
}

// AddRuleHit adds n firings of the rule (test fixtures and the engine's
// own bookkeeping; unknown rules are ignored).
func (s *Stats) AddRuleHit(id RuleID, n int64) {
	if i, ok := lookupRule(id); ok {
		s.ruleHits[i] += n
	}
}

// AddRuleTime attributes d to the rule.
func (s *Stats) AddRuleTime(id RuleID, d time.Duration) {
	if i, ok := lookupRule(id); ok {
		s.ruleTimeNs[i] += int64(d)
	}
}

// Add accumulates other into s. Every add is atomic, so parallel corpus
// workers may merge into one shared destination concurrently; the
// source is read plainly and must not be written during the call.
// stats_test.go walks Stats with reflection and fails if a field exists
// that this list does not cover.
func (s *Stats) Add(other Stats) {
	atomic.AddInt64(&s.Files, other.Files)
	atomic.AddInt64(&s.Lines, other.Lines)
	atomic.AddInt64(&s.WordsTotal, other.WordsTotal)
	atomic.AddInt64(&s.CommentWordsRemoved, other.CommentWordsRemoved)
	atomic.AddInt64(&s.CommentLinesRemoved, other.CommentLinesRemoved)
	atomic.AddInt64(&s.TokensHashed, other.TokensHashed)
	atomic.AddInt64(&s.TokensPassed, other.TokensPassed)
	atomic.AddInt64(&s.IPsMapped, other.IPsMapped)
	atomic.AddInt64(&s.ASNsMapped, other.ASNsMapped)
	atomic.AddInt64(&s.CommunitiesMapped, other.CommunitiesMapped)
	atomic.AddInt64(&s.RegexpsRewritten, other.RegexpsRewritten)
	atomic.AddInt64(&s.RegexpsUnchanged, other.RegexpsUnchanged)
	atomic.AddInt64(&s.RegexpFallbacks, other.RegexpFallbacks)
	for i := range s.ruleHits {
		if other.ruleHits[i] != 0 {
			atomic.AddInt64(&s.ruleHits[i], other.ruleHits[i])
		}
		if other.ruleTimeNs[i] != 0 {
			atomic.AddInt64(&s.ruleTimeNs[i], other.ruleTimeNs[i])
		}
	}
}

// diff returns s minus base, field by field — the signed delta a worker
// flush applies to its Session and registry. The field list mirrors Add
// (and is covered by the same reflection completeness test).
func (s Stats) diff(base Stats) Stats {
	d := Stats{
		Files:               s.Files - base.Files,
		Lines:               s.Lines - base.Lines,
		WordsTotal:          s.WordsTotal - base.WordsTotal,
		CommentWordsRemoved: s.CommentWordsRemoved - base.CommentWordsRemoved,
		CommentLinesRemoved: s.CommentLinesRemoved - base.CommentLinesRemoved,
		TokensHashed:        s.TokensHashed - base.TokensHashed,
		TokensPassed:        s.TokensPassed - base.TokensPassed,
		IPsMapped:           s.IPsMapped - base.IPsMapped,
		ASNsMapped:          s.ASNsMapped - base.ASNsMapped,
		CommunitiesMapped:   s.CommunitiesMapped - base.CommunitiesMapped,
		RegexpsRewritten:    s.RegexpsRewritten - base.RegexpsRewritten,
		RegexpsUnchanged:    s.RegexpsUnchanged - base.RegexpsUnchanged,
		RegexpFallbacks:     s.RegexpFallbacks - base.RegexpFallbacks,
	}
	for i := range s.ruleHits {
		d.ruleHits[i] = s.ruleHits[i] - base.ruleHits[i]
		d.ruleTimeNs[i] = s.ruleTimeNs[i] - base.ruleTimeNs[i]
	}
	return d
}

// snapshotAtomic reads a Stats that other goroutines are Add-ing into,
// one atomic load per field, returning a plain value. The field list
// mirrors Add.
func (s *Stats) snapshotAtomic() Stats {
	var out Stats
	out.Files = atomic.LoadInt64(&s.Files)
	out.Lines = atomic.LoadInt64(&s.Lines)
	out.WordsTotal = atomic.LoadInt64(&s.WordsTotal)
	out.CommentWordsRemoved = atomic.LoadInt64(&s.CommentWordsRemoved)
	out.CommentLinesRemoved = atomic.LoadInt64(&s.CommentLinesRemoved)
	out.TokensHashed = atomic.LoadInt64(&s.TokensHashed)
	out.TokensPassed = atomic.LoadInt64(&s.TokensPassed)
	out.IPsMapped = atomic.LoadInt64(&s.IPsMapped)
	out.ASNsMapped = atomic.LoadInt64(&s.ASNsMapped)
	out.CommunitiesMapped = atomic.LoadInt64(&s.CommunitiesMapped)
	out.RegexpsRewritten = atomic.LoadInt64(&s.RegexpsRewritten)
	out.RegexpsUnchanged = atomic.LoadInt64(&s.RegexpsUnchanged)
	out.RegexpFallbacks = atomic.LoadInt64(&s.RegexpFallbacks)
	for i := range s.ruleHits {
		out.ruleHits[i] = atomic.LoadInt64(&s.ruleHits[i])
		out.ruleTimeNs[i] = atomic.LoadInt64(&s.ruleTimeNs[i])
	}
	return out
}
