// Package anonymizer implements the paper's anonymization method: the
// basic pass-list/hash mechanism of §4.1 operating under the set of
// context-establishing rules of §4.2, with IP addresses, AS numbers, and
// BGP community attributes delegated to the structure-preserving mappers
// in internal/ipanon, internal/asn, and internal/cregex.
package anonymizer

import (
	"crypto/sha1"
	"encoding/hex"
)

// RuleID names one of the 28 context rules ("we have discovered a set of
// 28 rules that is sufficient for anonymizing the 200-plus IOS versions we
// have tested them on", §4.2). The engine counts per-rule hits so the
// experiments can report which rules fire on which corpora.
type RuleID string

// The rule inventory. The paper itemizes the subsets: 2 token-segmentation
// rules, 3 comment-stripping rules, 12 ASN-location rules, and 4
// miscellaneous rules; the remainder establish context for IP address
// pairs, bare community attributes, and the leak-highlighting pass.
const (
	// Token segmentation (2).
	RuleSegmentAlpha RuleID = "S1-segment-alpha-nonalpha"
	RuleSegmentWords RuleID = "S2-segment-compound-words"

	// Comment stripping (3).
	RuleBanner      RuleID = "C1-strip-banner-blocks"
	RuleDescription RuleID = "C2-strip-description-lines"
	RuleCommentLine RuleID = "C3-strip-comment-lines"

	// Miscellaneous (4).
	RuleDialerString  RuleID = "M1-dialer-string-phone"
	RuleSNMPCommunity RuleID = "M2-snmp-community-secret"
	RuleHostname      RuleID = "M3-hostname-domain"
	RuleCredentials   RuleID = "M4-username-password-key"

	// ASN location (12).
	RuleBGPProcess       RuleID = "A1-router-bgp"
	RuleRedistributeBGP  RuleID = "A2-redistribute-bgp"
	RuleNeighborRemoteAS RuleID = "A3-neighbor-remote-as"
	RuleNeighborLocalAS  RuleID = "A4-neighbor-local-as"
	RuleConfedID         RuleID = "A5-confederation-identifier"
	RuleConfedPeers      RuleID = "A6-confederation-peers"
	RuleSetCommunity     RuleID = "A7-set-community"
	RuleSetExtCommunity  RuleID = "A8-set-extcommunity"
	RuleCommListLiteral  RuleID = "A9-community-list-literal"
	RuleCommListRegexp   RuleID = "A10-community-list-regexp"
	RuleASPathPrepend    RuleID = "A11-as-path-prepend"
	RuleASPathRegexp     RuleID = "A12-as-path-access-list-regexp"

	// IP address context (5).
	RuleAddrNetmask  RuleID = "I1-address-netmask-pair"
	RuleAddrWildcard RuleID = "I2-address-wildcard-pair"
	RuleBareAddr     RuleID = "I3-bare-address"
	RuleSlashPrefix  RuleID = "I4-slash-prefix"
	RuleClassfulNet  RuleID = "I5-classful-network"

	// Community attribute context (1).
	RuleBareCommunity RuleID = "K1-bare-community-token"

	// Leak highlighting (1) — the iterative methodology of §6.1.
	RuleLeakHighlight RuleID = "L1-leak-highlight"

	// Extension rules beyond the paper's 28 (see DESIGN.md §6). Name
	// positions implement §4.1's "anonymizes the names of class-maps,
	// route-maps, and any other strings that could hold privileged
	// information" as explicit registry entries.
	RuleNamePosition RuleID = "N1-name-position"
)

// AllRules lists the full inventory in canonical order.
var AllRules = []RuleID{
	RuleSegmentAlpha, RuleSegmentWords,
	RuleBanner, RuleDescription, RuleCommentLine,
	RuleDialerString, RuleSNMPCommunity, RuleHostname, RuleCredentials,
	RuleBGPProcess, RuleRedistributeBGP, RuleNeighborRemoteAS, RuleNeighborLocalAS,
	RuleConfedID, RuleConfedPeers, RuleSetCommunity, RuleSetExtCommunity,
	RuleCommListLiteral, RuleCommListRegexp, RuleASPathPrepend, RuleASPathRegexp,
	RuleAddrNetmask, RuleAddrWildcard, RuleBareAddr, RuleSlashPrefix, RuleClassfulNet,
	RuleBareCommunity,
	RuleLeakHighlight,
}

// hashWord is the basic method's anonymizer: a salted SHA-1 digest
// rendered as a 12-hex-digit identifier with a letter prefix so the result
// can never be mistaken for a number, address, or community. Equal inputs
// map to equal outputs, which is what maintains referential integrity
// across every use of a hashed identifier.
func hashWord(salt []byte, w string) string {
	h := sha1.New()
	h.Write(salt)
	h.Write([]byte{0}) // domain separation from other salted uses
	h.Write([]byte(w))
	sum := h.Sum(nil)
	return "x" + hex.EncodeToString(sum[:6])
}

// hashDigits maps a digit string (a phone number) to another digit string
// of the same length, so dialer strings remain syntactically valid.
func hashDigits(salt []byte, w string) string {
	h := sha1.New()
	h.Write(salt)
	h.Write([]byte{1})
	h.Write([]byte(w))
	sum := h.Sum(nil)
	out := make([]byte, len(w))
	for i := range out {
		out[i] = '0' + sum[i%len(sum)]%10
	}
	return string(out)
}

// hashDigitsHex maps a lowercase hex string to another of the same
// length (the MAC token action, pack.go). Domain-separated from the
// word and digit hashes.
func hashDigitsHex(salt []byte, w string) []byte {
	h := sha1.New()
	h.Write(salt)
	h.Write([]byte{2})
	h.Write([]byte(w))
	sum := h.Sum(nil)
	out := make([]byte, len(w))
	for i := range out {
		out[i] = hexDigit(sum[i%len(sum)] & 0x0F)
	}
	return out
}
