package anonymizer

import (
	"bufio"
	"io"

	"confanon/internal/token"
)

// StreamText anonymizes one configuration file from r to w.
//
// Under StatelessIP the IP mapping is a pure function of the salt, so the
// shortest-prefix-first prescan is a semantic no-op and the engine can
// rewrite each line as it is read — constant memory in the input size,
// byte-identical to AnonymizeText. Under the default shaped tree the
// prescan is load-bearing (the /8 must pin its tail before the /24s
// inside it resolve), so the file — one file, never a corpus — is
// buffered, prescanned, and then rewritten.
//
// One edge differs from AnonymizeText: a zero-byte input streams to zero
// bytes, where AnonymizeText returns "\n" (an artifact of its join).
func (a *Anonymizer) StreamText(r io.Reader, w io.Writer) error {
	if !a.opts.StatelessIP {
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil
		}
		out := a.AnonymizeText(string(data))
		a.bytesIn += int64(len(data))
		a.bytesOut += int64(len(out))
		_, err = io.WriteString(w, out)
		return err
	}

	bw := bufio.NewWriter(w)
	sc := token.NewLineScanner(r)
	var werr error
	a.runFile(
		func() (string, bool) {
			if werr != nil || !sc.Scan() {
				return "", false
			}
			line := sc.Text()
			a.bytesIn += int64(len(line)) + 1
			return line, true
		},
		func(line string) {
			if werr != nil {
				return
			}
			a.bytesOut += int64(len(line)) + 1
			if _, err := bw.WriteString(line); err != nil {
				werr = err
				return
			}
			werr = bw.WriteByte('\n')
		},
	)
	if werr != nil {
		return werr
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
