package anonymizer

import (
	"strings"

	"confanon/internal/token"
)

// JunOS support. The paper (footnote 2) implemented for Cisco IOS but
// notes "the techniques are directly applicable to JunOS and other router
// configuration languages as well" — which holds because the method is
// line- and token-oriented rather than grammar-oriented. The generic word
// pass already handles JunOS values (TrimPunct separates the attached
// semicolons, brackets, and quotes); the entries here add the
// JunOS-specific context rules: comment syntax, identity statements, ASN
// statements, policy-object names, and quoted as-path regexps.

// jwStripQuotes removes a surrounding double-quote pair.
func jwStripQuotes(w string) (string, bool) {
	if len(w) >= 2 && w[0] == '"' && w[len(w)-1] == '"' {
		return w[1 : len(w)-1], true
	}
	return w, false
}

// jwCore returns the punctuation-stripped core of words[i].
func jwCore(words []string, i int) string {
	_, c, _ := token.TrimPunct(words[i])
	return c
}

// jwSetCore replaces the core of words[i], keeping attached punctuation.
func jwSetCore(words []string, i int, v string) {
	lead, _, trail := token.TrimPunct(words[i])
	words[i] = lead + v + trail
}

var junosLineRules = []*lineRule{
	// system { host-name cr1.lax.foo.net; }
	{id: RuleHostname, name: "junos-host-name",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) < 2 {
				return "", false, false
			}
			a.hit(RuleHostname)
			jwSetCore(c.words, 1, a.hashAllSegments(jwCore(c.words, 1)))
			return token.Join(c.words, c.gaps), true, true
		}},

	// system login message "identity-laden banner";
	//
	// Seed-behavior quirk, preserved for output compatibility: in
	// comment-stripping mode this entry records the banner hit and the
	// comment counters but then DECLINES the line, so it falls through to
	// the generic pass and is hashed word-by-word instead of stripped.
	{id: RuleBanner, name: "junos-message",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			a.hit(RuleBanner)
			a.stats.CommentLinesRemoved++
			a.stats.CommentWordsRemoved += int64(len(c.words) - 1)
			if a.stripComments() {
				return "", false, false
			}
			return token.Join(c.words, c.gaps), true, true
		}},

	// Credential statements; quoted values are hashed inside the quotes.
	{id: RuleCredentials, name: "junos-credentials",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) < 2 {
				return "", false, false
			}
			a.hit(RuleCredentials)
			last := len(c.words) - 1
			cv := jwCore(c.words, last)
			if inner, ok := jwStripQuotes(cv); ok {
				jwSetCore(c.words, last, "\""+hashWord(a.opts.Salt, inner)+"\"")
			} else {
				jwSetCore(c.words, last, a.forceHash(cv))
			}
			return token.Join(c.words, c.gaps), true, true
		}},

	// peer-as / local-as ASN statements.
	{id: RuleNeighborRemoteAS, name: "junos-peer-as",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) < 2 {
				return "", false, false
			}
			if c.words[0] == "peer-as" {
				a.hit(RuleNeighborRemoteAS)
			} else {
				a.hit(RuleNeighborLocalAS)
			}
			jwSetCore(c.words, 1, a.mapASNToken(jwCore(c.words, 1)))
			return token.Join(c.words, c.gaps), true, true
		}},

	// routing-options { autonomous-system 1111; }
	{id: RuleBGPProcess, name: "junos-autonomous-system",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) < 2 {
				return "", false, false
			}
			a.hit(RuleBGPProcess)
			jwSetCore(c.words, 1, a.mapASNToken(jwCore(c.words, 1)))
			return token.Join(c.words, c.gaps), true, true
		}},

	// policy-options { as-path NAME "1239 .*"; }
	// (distinct from IOS "ip as-path access-list", which has its own
	// entry; a bare as-path reference "as-path NAME;" hashes the name.)
	{id: RuleASPathRegexp, name: "junos-as-path",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) >= 3 {
				a.hit(RuleASPathRegexp)
				jwSetCore(c.words, 1, a.forceHashName(jwCore(c.words, 1)))
				// The regexp is the quoted remainder.
				pattern := strings.Join(c.words[2:], " ")
				pattern = strings.TrimSuffix(strings.TrimSpace(pattern), ";")
				if inner, ok := jwStripQuotes(pattern); ok {
					c.words[2] = "\"" + a.rewriteASPath(inner) + "\";"
				} else {
					c.words[2] = a.rewriteASPath(pattern) + ";"
				}
				c.words = c.words[:3]
				c.gaps = append(c.gaps[:3], c.gaps[len(c.gaps)-1])
				return token.Join(c.words, c.gaps), true, true
			}
			if len(c.words) == 2 {
				jwSetCore(c.words, 1, a.forceHashName(jwCore(c.words, 1)))
				return token.Join(c.words, c.gaps), true, true
			}
			return "", false, false
		}},

	// User-chosen identifiers introducing blocks.
	{id: RuleNamePosition, name: "junos-block-name",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) < 2 {
				return "", false, false
			}
			jwSetCore(c.words, 1, a.forceHashName(jwCore(c.words, 1)))
			a.genericWords(c.words[2:], nil)
			return token.Join(c.words, c.gaps), true, true
		}},

	// policy-options { community NAME members [ 701:100 ]; }
	// or, inside a then block, "community add NAME;".
	{id: RuleCommListLiteral, name: "junos-community",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			if len(c.words) >= 3 && (c.words[1] == "add" || c.words[1] == "delete" || c.words[1] == "set") {
				a.hit(RuleSetCommunity)
				jwSetCore(c.words, 2, a.forceHashName(jwCore(c.words, 2)))
				return token.Join(c.words, c.gaps), true, true
			}
			if len(c.words) < 2 {
				return "", false, false
			}
			a.hit(RuleCommListLiteral)
			jwSetCore(c.words, 1, a.forceHashName(jwCore(c.words, 1)))
			for i := 2; i < len(c.words); i++ {
				cv := jwCore(c.words, i)
				if _, _, ok := token.ParseCommunity(cv); ok {
					jwSetCore(c.words, i, a.mapCommunityToken(cv))
				} else if strings.ContainsAny(cv, ".[*") && strings.Contains(cv, ":") {
					jwSetCore(c.words, i, a.mapCommunityExpr(cv))
				}
			}
			return token.Join(c.words, c.gaps), true, true
		}},

	// Policy references: import [ A B ]; / export NAME; (the word
	// "map" is kept for the IOS vrf form "import map NAME").
	{id: RuleNamePosition, name: "junos-policy-ref",
		apply: func(a *Anonymizer, c *lineCtx) (string, bool, bool) {
			for i := 1; i < len(c.words); i++ {
				if cv := jwCore(c.words, i); cv != "" && cv != "map" {
					jwSetCore(c.words, i, a.forceHashName(cv))
				}
			}
			return token.Join(c.words, c.gaps), true, true
		}},
}

// junosCommentRules strips JunOS comments: "# ..." to end of line and
// "/* ... */" blocks (tracked across lines via the file state). These are
// structural (the block state spans lines), so the engine runs them ahead
// of the keyed dispatch.
func (a *Anonymizer) junosCommentRules(line string, words []string, st *fileState) (string, bool, bool) {
	if st.inBlockComment {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += int64(len(words))
		if strings.Contains(line, "*/") {
			st.inBlockComment = false
		}
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	if len(words) == 0 {
		return "", false, false
	}
	if strings.HasPrefix(words[0], "#") {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += int64(len(words))
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	if strings.HasPrefix(words[0], "/*") {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += int64(len(words))
		if !strings.Contains(line, "*/") {
			st.inBlockComment = true
		}
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	return "", false, false
}
