package anonymizer

import (
	"strings"

	"confanon/internal/token"
)

// JunOS support. The paper (footnote 2) implemented for Cisco IOS but
// notes "the techniques are directly applicable to JunOS and other router
// configuration languages as well" — which holds because the method is
// line- and token-oriented rather than grammar-oriented. The generic word
// pass already handles JunOS values (TrimPunct separates the attached
// semicolons, brackets, and quotes); this file adds the JunOS-specific
// context rules: comment syntax, identity statements, ASN statements,
// policy-object names, and quoted as-path regexps.

// junosRules rewrites JunOS-dialect lines. Returns the finished line and
// true when it consumed the line.
func (a *Anonymizer) junosRules(words, gaps []string) (string, bool) {
	stripQuotes := func(w string) (string, bool) {
		if len(w) >= 2 && w[0] == '"' && w[len(w)-1] == '"' {
			return w[1 : len(w)-1], true
		}
		return w, false
	}
	core := func(i int) string {
		_, c, _ := token.TrimPunct(words[i])
		return c
	}
	setCore := func(i int, v string) {
		lead, _, trail := token.TrimPunct(words[i])
		words[i] = lead + v + trail
	}

	switch words[0] {
	case "host-name", "domain-name", "domain-search":
		// system { host-name cr1.lax.foo.net; }
		if len(words) >= 2 {
			a.hit(RuleHostname)
			setCore(1, a.hashAllSegments(core(1)))
			return token.Join(words, gaps), true
		}

	case "message":
		// system login message "identity-laden banner";
		a.hit(RuleBanner)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += len(words) - 1
		if a.stripComments() {
			return "", false
		}
		return token.Join(words, gaps), true

	case "encrypted-password", "plain-text-password", "authentication-key", "pre-shared-key":
		if len(words) >= 2 {
			a.hit(RuleCredentials)
			last := len(words) - 1
			c := core(last)
			if inner, ok := stripQuotes(c); ok {
				setCore(last, "\""+hashWord(a.opts.Salt, inner)+"\"")
			} else {
				setCore(last, a.forceHash(c))
			}
			return token.Join(words, gaps), true
		}

	case "peer-as", "local-as":
		if len(words) >= 2 {
			if words[0] == "peer-as" {
				a.hit(RuleNeighborRemoteAS)
			} else {
				a.hit(RuleNeighborLocalAS)
			}
			setCore(1, a.mapASNToken(core(1)))
			return token.Join(words, gaps), true
		}

	case "autonomous-system":
		// routing-options { autonomous-system 1111; }
		if len(words) >= 2 {
			a.hit(RuleBGPProcess)
			setCore(1, a.mapASNToken(core(1)))
			return token.Join(words, gaps), true
		}

	case "as-path":
		// policy-options { as-path NAME "1239 .*"; }
		// (distinct from IOS "ip as-path access-list", which has its own
		// rule; a bare as-path reference "as-path NAME;" hashes the name.)
		if len(words) >= 3 {
			a.hit(RuleASPathRegexp)
			setCore(1, a.forceHashName(core(1)))
			// The regexp is the quoted remainder.
			pattern := strings.Join(words[2:], " ")
			pattern = strings.TrimSuffix(strings.TrimSpace(pattern), ";")
			if inner, ok := stripQuotes(pattern); ok {
				words[2] = "\"" + a.rewriteASPath(inner) + "\";"
			} else {
				words[2] = a.rewriteASPath(pattern) + ";"
			}
			words = words[:3]
			gaps = append(gaps[:3], gaps[len(gaps)-1])
			return token.Join(words, gaps), true
		}
		if len(words) == 2 {
			setCore(1, a.forceHashName(core(1)))
			return token.Join(words, gaps), true
		}

	case "policy-statement", "term", "group", "filter", "prefix-list":
		// User-chosen identifiers introducing blocks.
		if len(words) >= 2 {
			setCore(1, a.forceHashName(core(1)))
			a.genericWords(words[2:], nil)
			return token.Join(words, gaps), true
		}

	case "community":
		// policy-options { community NAME members [ 701:100 ]; }
		// or, inside a then block, "community add NAME;".
		if len(words) >= 3 && (words[1] == "add" || words[1] == "delete" || words[1] == "set") {
			a.hit(RuleSetCommunity)
			setCore(2, a.forceHashName(core(2)))
			return token.Join(words, gaps), true
		}
		if len(words) >= 2 {
			a.hit(RuleCommListLiteral)
			setCore(1, a.forceHashName(core(1)))
			for i := 2; i < len(words); i++ {
				c := core(i)
				if _, _, ok := token.ParseCommunity(c); ok {
					setCore(i, a.mapCommunityToken(c))
				} else if strings.ContainsAny(c, ".[*") && strings.Contains(c, ":") {
					setCore(i, a.mapCommunityExpr(c))
				}
			}
			return token.Join(words, gaps), true
		}

	case "import", "export":
		// Policy references: import [ A B ]; / export NAME; (the word
		// "map" is kept for the IOS vrf form "import map NAME").
		for i := 1; i < len(words); i++ {
			if c := core(i); c != "" && c != "map" {
				setCore(i, a.forceHashName(c))
			}
		}
		return token.Join(words, gaps), true

	case "description":
		// Handled by the shared C2 rule before this point; nothing here.
	}
	return "", false
}

// junosCommentRules strips JunOS comments: "# ..." to end of line and
// "/* ... */" blocks (tracked across lines via the file state).
func (a *Anonymizer) junosCommentRules(line string, words []string, st *fileState) (string, bool, bool) {
	if st.inBlockComment {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += len(words)
		if strings.Contains(line, "*/") {
			st.inBlockComment = false
		}
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	if len(words) == 0 {
		return "", false, false
	}
	if strings.HasPrefix(words[0], "#") {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += len(words)
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	if strings.HasPrefix(words[0], "/*") {
		a.hit(RuleCommentLine)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += len(words)
		if !strings.Contains(line, "*/") {
			st.inBlockComment = true
		}
		if a.stripComments() {
			return "", false, true
		}
		return line, true, true
	}
	return "", false, false
}
