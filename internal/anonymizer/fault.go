package anonymizer

import (
	"fmt"
	"io"
)

// FileError describes the failure of one file inside a batch. The paper's
// threat model makes anonymization failures catastrophic, so the batch
// APIs are fail-closed: a file that cannot be processed is reported as a
// FileError and withheld, never half-emitted — and one poisoned file must
// not take the rest of the corpus down with it. Name is the batch key of
// the file, Line the 1-based line being processed when the failure struck
// (0 when the failure preceded line processing, e.g. during prescan or
// input reading), and Cause the underlying error; a recovered panic is
// wrapped as a PanicError.
type FileError struct {
	Name  string
	Line  int
	Cause error
}

// Error formats the failure for the operator.
func (e *FileError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("file %s: line %d: %v", e.Name, e.Line, e.Cause)
	}
	return fmt.Sprintf("file %s: %v", e.Name, e.Cause)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *FileError) Unwrap() error { return e.Cause }

// PanicError is the cause recorded when per-file recovery caught a panic.
type PanicError struct {
	Value interface{}
}

// Error formats the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// faultHook, when set, is invoked before each line of a Safe* method's
// processing with the file name and 1-based line number. It exists so
// chaos tests can inject panics at a precise point; production code never
// sets it. Guarded by no lock: set it only from tests that own the
// process.
var faultHook func(name string, line int)

// SetFaultHook installs (or, with nil, removes) the chaos-testing hook.
// The package lives under internal/, so only this repository's tests can
// reach it.
func SetFaultHook(h func(name string, line int)) { faultHook = h }

// recoverFile converts a panic into a *FileError carrying the file name
// and the line the engine was on, and rolls the statistics back to the
// pre-file snapshot so merged batch Stats describe only files that
// completed. Use in a defer around per-file processing.
func (a *Anonymizer) recoverFile(name string, snap Stats, ferr **FileError) {
	if v := recover(); v != nil {
		*ferr = &FileError{Name: name, Line: a.curLine, Cause: &PanicError{Value: v}}
		a.failFileSpan(*ferr)
		a.rollback(snap)
	}
}

// rollback restores a pre-file statistics snapshot and clears the
// engine's per-line scratch, so an aborted file leaves the batch totals
// describing only files that completed. The Session (and a wired
// metrics registry) is reconciled immediately: the flush after a
// restore emits negative deltas, backing the aborted file's partial
// counts out of the shared totals so they keep tracking Stats exactly.
// The buffered provenance decisions are discarded with the counters —
// they publish only at a file span's clean end, so a rolled-back file
// leaves no partial ledger records.
func (a *Anonymizer) rollback(snap Stats) {
	a.stats = snap
	a.lineHits = a.lineHits[:0]
	a.pending = a.pending[:0]
	a.flush()
}

// SafeAnonymizeText anonymizes one file like AnonymizeText but fails
// closed instead of failing open: a panic anywhere in the prescan or the
// rewrite is recovered into a *FileError (with the 1-based line the
// engine was processing) and the file's partial statistics are rolled
// back, so a batch caller can report the file and carry on. The mapping
// state an aborted file may have touched only ever adds entries to the
// leak recorder and the IP tree — it can widen later leak reports, never
// narrow them.
func (a *Anonymizer) SafeAnonymizeText(name, text string) (out string, ferr *FileError) {
	snap := a.stats.Clone()
	defer a.recoverFile(name, snap, &ferr)
	a.curFile, a.curLine = name, 0
	a.beginFileSpan(name, "rewrite")
	out = a.AnonymizeText(text)
	a.endFileSpan()
	a.sess.commitLedger()
	return out, nil
}

// SafePrescan runs Prescan with the same panic recovery as
// SafeAnonymizeText (prescan walks attacker-controlled text too).
func (a *Anonymizer) SafePrescan(name, text string) (ferr *FileError) {
	snap := a.stats.Clone()
	defer a.recoverFile(name, snap, &ferr)
	a.curFile, a.curLine = name, 0
	a.beginFileSpan(name, "prescan")
	a.Prescan(text)
	a.endFileSpan()
	a.sess.commitLedger()
	return nil
}

// SafeStreamText streams one file like StreamText but recovers panics
// into a *FileError and wraps I/O errors (failing readers and writers)
// the same way, so stream-corpus callers get one uniform per-file error
// channel. Either way the failed file's partial statistics are rolled
// back: batch Stats describe only files that completed.
func (a *Anonymizer) SafeStreamText(name string, r io.Reader, w io.Writer) (ferr *FileError) {
	snap := a.stats.Clone()
	defer a.recoverFile(name, snap, &ferr)
	a.curFile, a.curLine = name, 0
	a.beginFileSpan(name, "stream")
	if err := a.StreamText(r, w); err != nil {
		fe := &FileError{Name: name, Line: a.curLine, Cause: err}
		a.failFileSpan(fe)
		a.rollback(snap)
		return fe
	}
	a.endFileSpan()
	a.sess.commitLedger()
	return nil
}

// CurrentLine reports the 1-based line the engine is processing (0
// outside a file). Exposed for the confanon batch layer's own recovery.
func (a *Anonymizer) CurrentLine() int { return a.curLine }

// SnapshotStats returns a deep copy of the current statistics. Paired
// with RestoreStats it lets the batch layer roll back a file whose
// failure lies outside the engine (a sink that fails on close after a
// clean stream), keeping batch totals scoped to surviving files.
func (a *Anonymizer) SnapshotStats() Stats { return a.stats.Clone() }

// RestoreStats reinstates a SnapshotStats copy (see SnapshotStats).
func (a *Anonymizer) RestoreStats(s Stats) { a.rollback(s) }
