package anonymizer

import (
	"reflect"
	"strings"
	"testing"

	"confanon/internal/ipanon"
	"confanon/internal/store"
)

// followup is a second snapshot from the same imaginary network: it
// reuses figure1 addresses (which must map identically after a restore)
// and introduces new ones (which must continue the mapping consistently).
const followup = `hostname cr2.sfo.foo.com
!
interface Ethernet0
 ip address 1.1.1.2 255.255.255.0
!
interface Serial2/0.1 point-to-point
 ip address 3.3.3.3 255.255.255.252
!
router bgp 1111
 neighbor 2.2.2.2 remote-as 701
 neighbor 3.3.3.1 remote-as 1239
end
`

func TestSaveMappingRoundTripsFullState(t *testing.T) {
	salt := []byte("state-roundtrip-salt")
	a1 := New(Options{Salt: salt})
	a1.Session().DeclareRelation(Relation{ASN: 701, Prefix: 0x02020000, Len: 16})
	a1.AddSensitiveToken("hushhush")
	if _, ferr := a1.SafeAnonymizeText("f1", figure1); ferr != nil {
		t.Fatalf("anonymize: %v", ferr)
	}
	snap := a1.SaveMapping()
	if len(snap) == 0 {
		t.Fatalf("SaveMapping returned empty snapshot for a non-empty session")
	}
	if !store.IsStateBlob(snap) {
		t.Fatalf("SaveMapping did not produce a %s blob", store.Schema)
	}

	a2 := New(Options{Salt: salt})
	if err := a2.LoadMapping(snap); err != nil {
		t.Fatalf("LoadMapping: %v", err)
	}
	s1, s2 := a1.Session(), a2.Session()

	if got, want := s2.IPMapping(), s1.IPMapping(); !reflect.DeepEqual(got, want) {
		t.Errorf("IP mapping did not round-trip:\n got %v\nwant %v", got, want)
	}
	s1.recMu.RLock()
	s2.recMu.RLock()
	if !reflect.DeepEqual(s2.seenASNs, s1.seenASNs) {
		t.Errorf("seenASNs did not round-trip: got %v want %v", s2.seenASNs, s1.seenASNs)
	}
	if !reflect.DeepEqual(s2.seenWords, s1.seenWords) {
		t.Errorf("seenWords did not round-trip: got %d keys want %d", len(s2.seenWords), len(s1.seenWords))
	}
	if !reflect.DeepEqual(s2.seenIPs, s1.seenIPs) {
		t.Errorf("seenIPs did not round-trip: got %v want %v", s2.seenIPs, s1.seenIPs)
	}
	s2.recMu.RUnlock()
	s1.recMu.RUnlock()
	if !(*s2.sensTok.Load())["hushhush"] {
		t.Errorf("sensitive token did not round-trip")
	}
	if got, want := s2.Relations(), s1.Relations(); !reflect.DeepEqual(got, want) {
		t.Errorf("relations did not round-trip: got %v want %v", got, want)
	}

	// Continuation consistency: the restored session must anonymize a
	// follow-up snapshot exactly as the original session would have.
	want, ferr := a1.SafeAnonymizeText("f2", followup)
	if ferr != nil {
		t.Fatalf("original follow-up: %v", ferr)
	}
	got, ferr := a2.SafeAnonymizeText("f2", followup)
	if ferr != nil {
		t.Fatalf("restored follow-up: %v", ferr)
	}
	if got != want {
		t.Errorf("restored session diverged on follow-up output:\n got %q\nwant %q", got, want)
	}
}

func TestSaveMappingRoundTripsLeakGating(t *testing.T) {
	// The restored recorder must gate the leak report exactly like the
	// original: a survival of an original token in doctored output is
	// flagged by both sessions.
	salt := []byte("leak-gate-salt")
	a1 := New(Options{Salt: salt})
	out, ferr := a1.SafeAnonymizeText("f1", figure1)
	if ferr != nil {
		t.Fatalf("anonymize: %v", ferr)
	}
	doctored := out + "leaked 1.1.1.1 here\n"
	want := a1.LeakReport(doctored)
	if len(want) == 0 {
		t.Fatalf("fixture: doctored output produced no leaks")
	}

	a2 := New(Options{Salt: salt})
	if err := a2.LoadMapping(a1.SaveMapping()); err != nil {
		t.Fatalf("LoadMapping: %v", err)
	}
	got := a2.LeakReport(doctored)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored leak report diverged:\n got %v\nwant %v", got, want)
	}
}

func TestLoadMappingAcceptsLegacyBlob(t *testing.T) {
	salt := []byte("legacy-salt")
	tree := ipanon.NewTree(ipanon.DefaultOptions(salt))
	tree.MapV4(0x01010101)
	tree.MapV4(0x02020202)
	legacy := tree.Save()
	if store.IsStateBlob(legacy) {
		t.Fatalf("fixture: legacy blob sniffed as state blob")
	}
	a := New(Options{Salt: salt})
	if err := a.LoadMapping(legacy); err != nil {
		t.Fatalf("LoadMapping(legacy): %v", err)
	}
	if got, want := a.MapIP(0x01010101), tree.MapV4(0x01010101); got != want {
		t.Errorf("legacy mapping not honored: got %08x want %08x", got, want)
	}
}

func TestLoadMappingRejectsWrongSalt(t *testing.T) {
	a1 := New(Options{Salt: []byte("salt-A")})
	if _, ferr := a1.SafeAnonymizeText("f1", figure1); ferr != nil {
		t.Fatalf("anonymize: %v", ferr)
	}
	snap := a1.SaveMapping()
	a2 := New(Options{Salt: []byte("salt-B")})
	if err := a2.LoadMapping(snap); err == nil {
		t.Fatalf("LoadMapping accepted a snapshot taken under a different salt")
	}
}

func TestSessionLedgerCommitsAtCleanBoundaries(t *testing.T) {
	salt := []byte("ledger-commit-salt")
	dir := t.TempDir()
	led, err := store.Open(dir, store.SaltFingerprint(salt))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	a := New(Options{Salt: salt})
	a.Session().SetLedger(led)

	if _, ferr := a.SafeAnonymizeText("f1", figure1); ferr != nil {
		t.Fatalf("anonymize: %v", ferr)
	}
	st := led.State()
	if len(st.IPs) == 0 || len(st.Words) == 0 || len(st.ASNs) == 0 {
		t.Fatalf("clean file boundary committed nothing: %+v", st)
	}
	if got, want := len(st.IPs), a.Session().mapper().Len(); got != want {
		t.Errorf("ledger has %d IP pairs, session mapper %d", got, want)
	}

	// A file that dies mid-way must not advance the ledger: nothing is
	// committed on the rollback path.
	SetFaultHook(func(name string, line int) {
		if name == "poison" && line == 3 {
			panic("injected")
		}
	})
	defer SetFaultHook(nil)
	if _, ferr := a.SafeAnonymizeText("poison", followup); ferr == nil {
		t.Fatalf("poisoned file did not fail")
	}
	SetFaultHook(nil)
	if got := led.State(); len(got.IPs) != len(st.IPs) {
		t.Errorf("failed file advanced the ledger: %d -> %d IP pairs", len(st.IPs), len(got.IPs))
	}

	// The aborted file's live tree entries sweep into the next clean
	// commit — required for replica consistency with the in-process
	// continuation.
	if _, ferr := a.SafeAnonymizeText("f2", followup); ferr != nil {
		t.Fatalf("follow-up: %v", ferr)
	}
	if err := a.Session().SyncLedger(); err != nil {
		t.Fatalf("SyncLedger: %v", err)
	}
	if got, want := len(led.State().IPs), a.Session().mapper().Len(); got != want {
		t.Errorf("ledger has %d IP pairs after clean commit, session mapper %d", got, want)
	}
	if err := led.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A replica replaying the ledger reproduces the session byte for
	// byte on the next snapshot.
	led2, err := store.Open(dir, store.SaltFingerprint(salt))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer led2.Close()
	replicaSess := Compile(Options{Salt: salt}).NewSession()
	if err := replicaSess.RestoreState(led2.State()); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	replica := replicaSess.Bind() // bind after restore so the worker sees the replayed mapper
	next := strings.Replace(followup, "3.3.3.3", "4.4.4.4", 1)
	want, ferr := a.SafeAnonymizeText("f3", next)
	if ferr != nil {
		t.Fatalf("original f3: %v", ferr)
	}
	got, ferr := replica.SafeAnonymizeText("f3", next)
	if ferr != nil {
		t.Fatalf("replica f3: %v", ferr)
	}
	if got != want {
		t.Errorf("replica diverged:\n got %q\nwant %q", got, want)
	}
}
