package anonymizer

import (
	"strings"
	"time"

	"confanon/internal/token"
	"confanon/internal/trace"
)

// The engine owns line iteration, token segmentation, and per-rule
// instrumentation. One file flows through runFile; each line flows
// through runLine, which times the line and attributes the elapsed wall
// time to the rules that fired on it (proportionally to their hits on
// the line, so the per-rule times in Stats sum to the total rewriting
// time). The line itself passes through three phases:
//
//  1. structural rules — banner bodies and JunOS comment state, which
//     span lines and run before (or instead of) tokenized dispatch;
//  2. the keyed line-rule dispatch table (rule.go), in registry order;
//  3. the generic word pass (rules_generic.go), where the token-scoped
//     rules (segmentation, IP pairs, bare communities) fire.

// fileState carries cross-line context through one file.
type fileState struct {
	inBanner       bool
	bannerDelim    byte
	inBlockComment bool   // inside a JunOS /* ... */ block
	block          string // current top-level block: "interface", "router bgp", ...
}

// runFile drives every line of one file through the pipeline, handing
// kept output lines to emit. next returns the file's lines in order
// (without terminators) and reports false when the file is exhausted.
func (a *Anonymizer) runFile(next func() (string, bool), emit func(string)) {
	a.stats.Files++
	a.curLine = 0
	start := time.Now()
	st := &fileState{}
	for {
		line, ok := next()
		if !ok {
			a.curLine = 0
			a.observeStage(stageRewrite, time.Since(start))
			a.flush()
			return
		}
		res, keep := a.runLine(line, st)
		if keep {
			emit(res)
		}
	}
}

// runLine processes one line under the per-rule timer.
func (a *Anonymizer) runLine(line string, st *fileState) (string, bool) {
	a.stats.Lines++
	a.curLine++
	a.curRule = ""
	if faultHook != nil {
		faultHook(a.curFile, a.curLine)
	}
	start := time.Now()
	res, keep := a.processLine(line, st)
	a.attribute(time.Since(start))
	if !keep && a.tracer != nil {
		// A dropped line is one decision: the comment/banner rule that
		// removed it, with no replacement to record.
		a.decide(trace.ClassDropped, "")
	}
	return res, keep
}

// attribute splits an elapsed duration across the rules recorded in the
// lineHits scratch (one share per hit) and clears the scratch.
func (a *Anonymizer) attribute(d time.Duration) {
	n := len(a.lineHits)
	if n == 0 {
		return
	}
	share := int64(d) / int64(n)
	for _, i := range a.lineHits {
		a.stats.ruleTimeNs[i] += share
	}
	a.lineHits = a.lineHits[:0]
}

// processLine is the per-line pipeline: structural rules, keyed dispatch,
// then the generic word pass.
func (a *Anonymizer) processLine(line string, st *fileState) (string, bool) {
	// C1: banner bodies are comments; strip every content line.
	if st.inBanner {
		if strings.IndexByte(line, st.bannerDelim) >= 0 {
			st.inBanner = false
			return string(st.bannerDelim), true
		}
		a.hit(RuleBanner)
		a.stats.CommentLinesRemoved++
		a.stats.CommentWordsRemoved += int64(len(strings.Fields(line)))
		a.countWords(line)
		if a.stripComments() {
			return "", false
		}
		return line, true
	}

	words, gaps := token.Fields(line)
	a.stats.WordsTotal += int64(len(words))

	// JunOS comment syntax ("# ...", "/* ... */") is stripped like IOS
	// comments; block comments span lines.
	if res, keep, handled := a.junosCommentRules(line, words, st); handled || st.inBlockComment {
		return res, keep
	}
	if len(words) == 0 {
		return line, true
	}

	// Track the current block for context-dependent rules.
	indented := gaps[0] != ""
	if !indented {
		st.block = blockOf(words)
	}

	c := &a.ctx
	c.raw, c.words, c.gaps, c.st = line, words, gaps, st
	if a.lineShield != nil {
		clear(a.lineShield) // pack-rule outputs shield one line only
	}
	if out, keep, consumed := a.dispatchLine(c); consumed {
		return out, keep
	}

	// Generic word-level pass (IP addresses, prefixes, communities,
	// pass-list hashing) over whatever no line rule consumed.
	a.genericWords(words, st)
	return token.Join(words, gaps), true
}

func blockOf(words []string) string {
	if len(words) >= 2 && words[0] == "router" {
		return "router " + words[1]
	}
	if len(words) >= 1 {
		return words[0]
	}
	return ""
}
