package anonymizer

import (
	"sort"
	"strings"
	"time"

	"confanon/internal/config"
	"confanon/internal/token"
)

// Prescan walks configuration text without rewriting it and pins every
// subnet address it can recognize (address+netmask pairs, wildcard pairs,
// classful network statements, slash prefixes) into the IP mapping tree,
// shortest prefix first.
//
// This is the "controlling how new entries are added to the data-structure"
// of §4.3: by resolving the /8 before the /24s it contains, and the /24s
// before their hosts, every subnet address maps to a subnet address
// regardless of the order addresses happen to appear in the files.
// AnonymizeText prescans its own input automatically; callers anonymizing
// a multi-file network should Prescan every file first so cross-file
// orderings cannot break the shaping either.
func (a *Anonymizer) Prescan(text string) {
	start := time.Now()
	defer func() {
		a.observeStage(stagePrescan, time.Since(start))
		a.flush()
	}()
	type pin struct {
		net uint32
		len int
	}
	var pins []pin
	add := func(addr uint32, length int) {
		net := addr & config.LenToMask(length)
		pins = append(pins, pin{net, length})
	}
	block := ""
	for _, line := range strings.Split(text, "\n") {
		words, gaps := token.Fields(line)
		if len(words) == 0 {
			continue
		}
		if gaps[0] == "" {
			block = blockOf(words)
		}
		// Strip structural punctuation so JunOS values ("address
		// 12.0.0.1/30;") prescan like IOS ones.
		for i, w := range words {
			_, core, _ := token.TrimPunct(w)
			words[i] = core
		}
		for i := 0; i < len(words); i++ {
			addr, ok := token.ParseIPv4(words[i])
			if !ok {
				if p, l, pok := token.ParseIPv4Prefix(words[i]); pok {
					add(p, l)
				}
				continue
			}
			if i+2 < len(words) && words[i+1] == "mask" {
				if m, mok := token.ParseIPv4(words[i+2]); mok {
					if l, isMask := config.MaskToLen(m); isMask {
						add(addr, l)
						i += 2
						continue
					}
				}
			}
			if i+1 < len(words) {
				if second, ok2 := token.ParseIPv4(words[i+1]); ok2 {
					if l, isMask := config.MaskToLen(second); isMask && second != 0 {
						add(addr, l)
						i++
						continue
					}
					if l, isWild := config.MaskToLen(^second); isWild {
						add(addr, l)
						i++
						continue
					}
				}
			}
			if (block == "router rip" || block == "router eigrp" || block == "router igrp") &&
				i > 0 && words[i-1] == "network" {
				l, _ := config.MaskToLen(config.ClassfulMask(addr))
				add(addr, l)
			}
		}
	}
	// Shortest prefixes first: the /8 pins its zero tail before a /24
	// inside it resolves the intermediate bits.
	sort.Slice(pins, func(i, j int) bool { return pins[i].len < pins[j].len })
	for _, p := range pins {
		a.ip.MapPrefix(p.net, p.len)
	}
}
