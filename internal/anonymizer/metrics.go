package anonymizer

import (
	"time"

	"confanon/internal/metrics"
	"confanon/internal/store"
)

// The metrics bridge. The engine keeps its counters in the plain Stats
// value (one non-atomic increment per event, unchanged hot path) and
// reconciles them into an optional shared metrics.Registry at file
// boundaries: the worker's flush computes the signed delta between the
// current Stats and the last-flushed snapshot and applies it to the
// registry counters. Because the delta is signed, a fault-isolation
// rollback (fault.go) is followed by a negative flush and the registry
// tracks exactly what Stats reports — counters describe only files that
// completed, the same contract the batch API documents.
//
// Several engines (parallel corpus workers) may share one Registry:
// registration is idempotent and counter adds are atomic, so the
// per-worker deltas merge by construction.

// statScalars is the single table tying each Stats scalar to its metric
// name: the registration loop, the delta flush, and the completeness
// test in stats_test.go all walk it.
var statScalars = []struct {
	name, help string
	get        func(*Stats) int64
}{
	{"confanon_files_processed_total", "files processed to completion by the engine (failed files are rolled back)",
		func(s *Stats) int64 { return s.Files }},
	{"confanon_lines_total", "configuration lines processed",
		func(s *Stats) int64 { return s.Lines }},
	{"confanon_words_total", "words tokenized across all lines",
		func(s *Stats) int64 { return s.WordsTotal }},
	{"confanon_comment_words_removed_total", "words removed with comment text (§4.2 C rules)",
		func(s *Stats) int64 { return s.CommentWordsRemoved }},
	{"confanon_comment_lines_removed_total", "whole comment lines removed",
		func(s *Stats) int64 { return s.CommentLinesRemoved }},
	{"confanon_tokens_hashed_total", "tokens replaced by the salted hash (§4.1)",
		func(s *Stats) int64 { return s.TokensHashed }},
	{"confanon_tokens_passed_total", "tokens passed through via the pass-list",
		func(s *Stats) int64 { return s.TokensPassed }},
	{"confanon_ips_mapped_total", "IP address occurrences rewritten (§4.3)",
		func(s *Stats) int64 { return s.IPsMapped }},
	{"confanon_asns_mapped_total", "ASN occurrences rewritten (§4.4)",
		func(s *Stats) int64 { return s.ASNsMapped }},
	{"confanon_communities_mapped_total", "community attribute occurrences rewritten",
		func(s *Stats) int64 { return s.CommunitiesMapped }},
	{"confanon_regexps_rewritten_total", "BGP regexps rewritten through the language mapping",
		func(s *Stats) int64 { return s.RegexpsRewritten }},
	{"confanon_regexps_unchanged_total", "BGP regexps left unchanged (no public ASNs in language)",
		func(s *Stats) int64 { return s.RegexpsUnchanged }},
	{"confanon_regexp_fallbacks_total", "BGP regexps replaced by the conservative fallback",
		func(s *Stats) int64 { return s.RegexpFallbacks }},
}

// Pipeline stages observed into confanon_stage_seconds.
const (
	stagePrescan    = "prescan"
	stageRewrite    = "rewrite"
	stageLeakReport = "leakreport"
)

// engineMetrics holds one worker's resolved instrument handles plus the
// byte-counter baselines (the Stats baseline is the worker's synced
// field, shared with the Session reconciliation). The session-level
// gauges — mapper size, remaps, permutation walks, rewrite-cache hits —
// live on sessionMetrics (session.go), because their sources are shared
// by every worker and need one baseline, not one per worker.
type engineMetrics struct {
	reg *metrics.Registry

	scalars []*metrics.Counter // parallel to statScalars

	// Per-rule counters resolve lazily through the vecs: the global rule
	// registry can grow after this worker was wired (another Program
	// compiled with packs), so a slot is filled the first time its rule
	// flushes a nonzero delta, not eagerly at registration.
	hitVec   *metrics.CounterVec
	timeVec  *metrics.CounterVec
	ruleHits [maxRules]*metrics.Counter
	ruleTime [maxRules]*metrics.Counter

	stageSeconds *metrics.HistogramVec
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	leaks        *metrics.CounterVec

	flushedBytesIn  int64
	flushedBytesOut int64
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	m := &engineMetrics{reg: reg}
	m.scalars = make([]*metrics.Counter, len(statScalars))
	for i, sc := range statScalars {
		m.scalars[i] = reg.Counter(sc.name, sc.help)
	}
	m.hitVec = reg.CounterVec("confanon_rule_hits_total", "context-rule firings by registry rule", "rule")
	m.timeVec = reg.CounterVec("confanon_rule_time_ns_total", "wall time attributed to each rule, nanoseconds", "rule")
	for i, info := range ruleInfos {
		m.ruleHits[i] = m.hitVec.With(string(info.ID))
		m.ruleTime[i] = m.timeVec.With(string(info.ID))
	}
	m.stageSeconds = reg.HistogramVec("confanon_stage_seconds", "per-file pipeline stage latency", nil, "stage")
	m.bytesIn = reg.Counter("confanon_stream_bytes_in_total", "bytes read by the streaming path")
	m.bytesOut = reg.Counter("confanon_stream_bytes_out_total", "bytes written by the streaming path")
	m.leaks = reg.CounterVec("confanon_leaks_total", "leak-report findings by token kind and severity", "kind", "severity")
	return m
}

// SetMetrics wires a shared registry into this worker's Session (gauges,
// future workers) and this worker (counter flushes). All instruments are
// registered immediately and idempotently; counters update at file
// boundaries via the delta flush. A nil registry unwires.
func (a *Anonymizer) SetMetrics(reg *metrics.Registry) {
	a.sess.SetMetrics(reg)
	if reg == nil {
		a.metrics = nil
		return
	}
	a.metrics = newEngineMetrics(reg)
}

// FlushMetrics reconciles this worker's accumulated state into its
// Session and the wired registry. The engine flushes at every file
// boundary, stage end, and rollback on its own; callers that read the
// Session or registry mid-run (the run-report builder, a portal scrape
// racing a batch) may call it to tighten the window.
func (a *Anonymizer) FlushMetrics() { a.flush() }

// flush reconciles the worker into the shared halves: the signed Stats
// delta since the last flush merges into the Session totals (and the
// registry counters, when wired), the pending leak-recorder entries
// publish into the Session recorder, and the session-level gauges
// refresh. Deltas are signed, so a rollback flush backs a failed file's
// partial counts out of both destinations.
func (a *Anonymizer) flush() {
	delta := a.stats.diff(a.synced)
	a.synced = a.stats
	a.sess.stats.Add(delta)
	a.flushRecorder()
	if m := a.metrics; m != nil {
		for i, sc := range statScalars {
			if d := sc.get(&delta); d != 0 {
				m.scalars[i].Add(d)
			}
		}
		reg := ruleReg.Load()
		for i := range reg.infos {
			if d := delta.ruleHits[i]; d != 0 {
				if m.ruleHits[i] == nil {
					m.ruleHits[i] = m.hitVec.With(string(reg.infos[i].ID))
				}
				m.ruleHits[i].Add(d)
			}
			if d := delta.ruleTimeNs[i]; d != 0 {
				if m.ruleTime[i] == nil {
					m.ruleTime[i] = m.timeVec.With(string(reg.infos[i].ID))
				}
				m.ruleTime[i].Add(d)
			}
		}
		if d := a.bytesIn - m.flushedBytesIn; d != 0 {
			m.bytesIn.Add(d)
			m.flushedBytesIn = a.bytesIn
		}
		if d := a.bytesOut - m.flushedBytesOut; d != 0 {
			m.bytesOut.Add(d)
			m.flushedBytesOut = a.bytesOut
		}
	}
	a.sess.flushGauges()
}

// flushRecorder publishes the worker's pending leak-recorder entries
// into the Session recorder and clears the pending maps. Entries are
// only ever added, never retracted: an aborted file can widen later
// leak reports but never narrow them. When a durable ledger is attached,
// each genuinely new key (detected under recMu, so exactly one worker
// records it) is queued for the next clean-boundary commit.
func (a *Anonymizer) flushRecorder() {
	if len(a.seenASNs) == 0 && len(a.seenWords) == 0 && len(a.seenIPs) == 0 {
		return
	}
	s := a.sess
	led := s.ledgerOn.Load()
	var recs []store.Record
	s.recMu.Lock()
	for k := range a.seenASNs {
		if led && !s.seenASNs[k] {
			recs = append(recs, store.Record{T: store.TASN, V: k})
		}
		s.seenASNs[k] = true
	}
	for k := range a.seenWords {
		if led && !s.seenWords[k] {
			recs = append(recs, store.Record{T: store.TWord, V: k})
		}
		s.seenWords[k] = true
	}
	for k := range a.seenIPs {
		if led && !s.seenIPs[k] {
			recs = append(recs, store.Record{T: store.TOrigIP, In: k})
		}
		s.seenIPs[k] = true
	}
	s.recMu.Unlock()
	s.appendLedgerRecords(recs)
	clear(a.seenASNs)
	clear(a.seenWords)
	clear(a.seenIPs)
}

// observeStage records one stage latency when a registry is wired, and
// the matching retroactive stage span when a tracer is.
func (a *Anonymizer) observeStage(stage string, d time.Duration) {
	if a.metrics != nil {
		a.metrics.stageSeconds.With(stage).ObserveDuration(d)
	}
	if a.tracer != nil {
		a.traceStage(stage, d)
	}
}

// countLeaks tallies one leak report's findings by kind and severity.
// Cumulative across report runs: calling LeakReport twice on the same
// text counts its findings twice, mirroring the RuleLeakHighlight hit
// counter.
func (a *Anonymizer) countLeaks(leaks []Leak) {
	if a.metrics == nil {
		return
	}
	for _, l := range leaks {
		sev := "confirmed"
		if l.LikelyFalsePositive {
			sev = "likely_false_positive"
		}
		a.metrics.leaks.With(l.Kind, sev).Inc()
	}
}
