package anonymizer

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryCoversInventory: every one of the paper's 28 rules is a
// described registry entry, and every dispatch-table entry carries an ID
// that the registry describes.
func TestRegistryCoversInventory(t *testing.T) {
	described := map[RuleID]RuleInfo{}
	for _, info := range Rules() {
		if info.Doc == "" || info.Class == "" || info.Scope == "" {
			t.Errorf("rule %s is not self-describing: %+v", info.ID, info)
		}
		if _, dup := described[info.ID]; dup {
			t.Errorf("rule %s described twice", info.ID)
		}
		described[info.ID] = info
	}
	for _, id := range AllRules {
		if _, ok := described[id]; !ok {
			t.Errorf("paper rule %s missing from registry inventory", id)
		}
	}
	for _, r := range builtinRuleSet.unkeyed {
		if _, ok := described[r.id]; !ok {
			t.Errorf("dispatch entry %s carries undescribed rule %s", r.name, r.id)
		}
	}
	for _, candidates := range builtinRuleSet.keyed {
		for _, r := range candidates {
			if _, ok := described[r.id]; !ok {
				t.Errorf("dispatch entry %s carries undescribed rule %s", r.name, r.id)
			}
		}
	}
}

// TestDispatchOrderPreserved: compiling the canonical pack preserves the
// engine's dispatch contract — the pack's line entries appear in exactly
// the order of the Go class groups (comment before misc, misc before
// name, name before JunOS, JunOS before ASN), and key-indexed candidate
// lists stay ordered by global sequence.
func TestDispatchOrderPreserved(t *testing.T) {
	byName := map[string]*lineRule{}
	for _, r := range builtinRuleSet.unkeyed {
		byName[r.name] = r
	}
	for _, candidates := range builtinRuleSet.keyed {
		for _, r := range candidates {
			byName[r.name] = r
		}
	}
	want := 0
	for _, group := range [][]*lineRule{commentLineRules, miscLineRules, nameLineRules, junosLineRules, asnLineRules} {
		for _, gr := range group {
			r, ok := byName[gr.name]
			if !ok {
				t.Fatalf("builtin entry %s missing from compiled rule set", gr.name)
			}
			if r.seq != want {
				t.Fatalf("entry %s has seq %d, want %d", r.name, r.seq, want)
			}
			if r.id != gr.id {
				t.Fatalf("entry %s compiled with rule %s, group declares %s", r.name, r.id, gr.id)
			}
			want++
		}
	}
	if want != len(byName) {
		t.Fatalf("compiled set has %d line entries, class groups have %d", len(byName), want)
	}
	for key, candidates := range builtinRuleSet.keyed {
		for i := 1; i < len(candidates); i++ {
			if candidates[i-1].seq >= candidates[i].seq {
				t.Errorf("key %q candidates out of order: %s then %s",
					key, candidates[i-1].name, candidates[i].name)
			}
		}
	}
}

// TestDegenerateLinesDoNotPanic: the monolithic dispatcher indexed
// words[1] before checking the length on "ip" lines and crashed on a
// bare "ip"; the registry entries guard length first.
func TestDegenerateLinesDoNotPanic(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	for _, line := range []string{
		"ip", "neighbor", "set", "bgp", "router", "banner", "as-path",
		"community", "import", "export", "dialer", "username", "match",
		"class-map", "aaa", "snmp-server", "redistribute", "service-policy",
		"hostname", "ip vrf", "set community", "bgp confederation",
	} {
		out := a.AnonymizeText(line + "\n")
		if out == "" {
			t.Errorf("line %q produced empty output", line)
		}
	}
}

// TestPerRuleInstrumentation: hits and wall time both accumulate per
// rule, and time goes only to rules that fired.
func TestPerRuleInstrumentation(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	a.AnonymizeText("router bgp 1111\n neighbor 12.0.0.1 remote-as 701\n")
	s := a.Stats()
	for _, r := range []RuleID{RuleBGPProcess, RuleNeighborRemoteAS, RuleBareAddr} {
		if s.Hits(r) == 0 {
			t.Errorf("rule %s did not hit: %+v", r, s.RuleHits())
		}
		if s.Time(r) <= 0 {
			t.Errorf("rule %s has no wall time: %v", r, s.RuleTime())
		}
	}
	if s.Hits(RuleDialerString) != 0 || s.Time(RuleDialerString) != 0 {
		t.Errorf("rule that never fired was instrumented: hits=%d time=%v",
			s.Hits(RuleDialerString), s.Time(RuleDialerString))
	}
	if len(a.lineHits) != 0 {
		t.Errorf("per-line hit scratch not cleared: %v", a.lineHits)
	}
}

// TestNamePositionInstrumented: the extension name rules are now counted.
func TestNamePositionInstrumented(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	a.AnonymizeText("route-map FOO permit 10\n")
	if a.Stats().Hits(RuleNamePosition) != 1 {
		t.Errorf("name position not counted: %+v", a.Stats().RuleHits())
	}
}

// TestStatsAdd: every counter merges; per-rule counters merge slot-wise.
func TestStatsAdd(t *testing.T) {
	a := Stats{Files: 1, Lines: 10, TokensHashed: 3}
	a.AddRuleHit(RuleBanner, 2)
	a.AddRuleTime(RuleBanner, time.Millisecond)
	b := Stats{Files: 2, Lines: 5, TokensHashed: 4}
	b.AddRuleHit(RuleBanner, 1)
	b.AddRuleHit(RuleHostname, 7)
	b.AddRuleTime(RuleHostname, time.Second)
	a.Add(b)
	if a.Files != 3 || a.Lines != 15 || a.TokensHashed != 7 {
		t.Errorf("counters wrong after Add: %+v", a)
	}
	if a.Hits(RuleBanner) != 3 || a.Hits(RuleHostname) != 7 {
		t.Errorf("RuleHits wrong after Add: %+v", a.RuleHits())
	}
	if a.Time(RuleBanner) != time.Millisecond || a.Time(RuleHostname) != time.Second {
		t.Errorf("RuleTime wrong after Add: %+v", a.RuleTime())
	}
}

// TestStatsAddIntoZero: Add into a zero-valued Stats just works (the
// dense representation has no maps to allocate).
func TestStatsAddIntoZero(t *testing.T) {
	var total Stats
	var one Stats
	one.Files = 1
	one.AddRuleHit(RuleBanner, 1)
	total.Add(one)
	if total.Files != 1 || total.Hits(RuleBanner) != 1 {
		t.Errorf("zero-value Add wrong: %+v", total)
	}
}

// TestStatsAddMatchesAnonymization: merging two runs' stats equals one
// run over both inputs (for the counters that are run-order independent).
func TestStatsAddMatchesAnonymization(t *testing.T) {
	text1 := "hostname r1.foo.com\nrouter bgp 1111\n neighbor 12.0.0.1 remote-as 701\n"
	text2 := "banner motd ^C\nsecret stuff\n^C\naccess-list 10 permit 12.0.0.0 0.0.0.255\n"

	one := New(Options{Salt: []byte("s")})
	one.AnonymizeText(text1)
	one.AnonymizeText(text2)
	want := one.Stats()

	x := New(Options{Salt: []byte("s")})
	x.AnonymizeText(text1)
	y := New(Options{Salt: []byte("s")})
	y.AnonymizeText(text2)
	var got Stats
	got.Add(x.Stats())
	got.Add(y.Stats())

	if got.Files != want.Files || got.Lines != want.Lines ||
		got.WordsTotal != want.WordsTotal || got.TokensHashed != want.TokensHashed ||
		got.IPsMapped != want.IPsMapped || got.ASNsMapped != want.ASNsMapped {
		t.Errorf("merged stats differ from combined run:\n got %+v\nwant %+v", got, want)
	}
	for r, n := range want.RuleHits() {
		if got.Hits(r) != n {
			t.Errorf("rule %s hits: got %d want %d", r, got.Hits(r), n)
		}
	}
}

// TestJunosMessageQuirkPreserved documents the seed behavior the golden
// corpus pins: in stripping mode a JunOS "message" line is counted as a
// removed comment line but then falls through to the generic pass and is
// hashed in place, not dropped.
func TestJunosMessageQuirkPreserved(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	out := a.AnonymizeText("    message \"FooNet property keep out\";\n")
	if !strings.Contains(out, "message ") {
		t.Fatalf("message line was dropped: %q", out)
	}
	if strings.Contains(out, "FooNet") {
		t.Errorf("identity survived in message line: %q", out)
	}
	if a.Stats().CommentLinesRemoved != 1 {
		t.Errorf("message line not counted as comment: %+v", a.Stats())
	}
	if a.Stats().Hits(RuleBanner) != 1 {
		t.Errorf("banner rule not hit: %+v", a.Stats().RuleHits())
	}
}
