package anonymizer

import (
	"strings"
	"testing"
)

func junosLine(t *testing.T, a *Anonymizer, line string) string {
	t.Helper()
	return strings.TrimRight(a.AnonymizeText(line+"\n"), "\n")
}

func TestJunosRuleHostName(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, "    host-name cr1.lax.foo.net;")
	if strings.Contains(out, "foo") || strings.Contains(out, "lax") {
		t.Errorf("host-name leaked: %s", out)
	}
	if !strings.HasSuffix(out, ";") || !strings.Contains(out, "host-name ") {
		t.Errorf("statement shape destroyed: %s", out)
	}
}

func TestJunosRulePeerAS(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, "        peer-as 701;")
	if strings.Contains(out, "701;") {
		t.Errorf("peer-as not permuted: %s", out)
	}
	out = junosLine(t, a, "        peer-as 65001;")
	if !strings.Contains(out, "65001;") {
		t.Errorf("private peer-as changed: %s", out)
	}
	out = junosLine(t, a, "    autonomous-system 1111;")
	if strings.Contains(out, "1111;") {
		t.Errorf("autonomous-system not permuted: %s", out)
	}
}

func TestJunosRuleCommunityMembers(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, "    community tagged members 701:7100;")
	if strings.Contains(out, "701:7100") {
		t.Errorf("community members survived: %s", out)
	}
	if strings.Contains(out, "tagged") {
		t.Errorf("community name survived: %s", out)
	}
	if !strings.Contains(out, "members ") {
		t.Errorf("members keyword destroyed: %s", out)
	}
	// Regexp members rewrite too.
	out = junosLine(t, a, "    community scoped members 701:7[1-5]..;")
	if strings.Contains(out, "701:7[1-5]") {
		t.Errorf("community regexp survived: %s", out)
	}
}

func TestJunosRuleCommunityAdd(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, "                community add uunet-tag;")
	if strings.Contains(out, "uunet") {
		t.Errorf("community reference survived: %s", out)
	}
	if !strings.Contains(out, "community add ") {
		t.Errorf("statement destroyed: %s", out)
	}
}

func TestJunosRuleImportExportRefs(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, "            import [ UUNET-in LEVEL3-in ];")
	if strings.Contains(out, "UUNET") || strings.Contains(out, "LEVEL3") {
		t.Errorf("policy references survived: %s", out)
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "import [") || !strings.HasSuffix(out, "];") {
		t.Errorf("bracket syntax destroyed: %s", out)
	}
	// IOS vrf form keeps the "map" keyword.
	out = junosLine(t, a, " import map FOO-MAP")
	if !strings.Contains(out, "import map ") {
		t.Errorf("vrf import map keyword destroyed: %s", out)
	}
	if strings.Contains(out, "FOO-MAP") {
		t.Errorf("vrf map name survived: %s", out)
	}
}

func TestJunosRulePolicyStatementAndTerm(t *testing.T) {
	a := newTestAnonymizer()
	for _, line := range []string{
		"    policy-statement UUNET-import {",
		"        term block-uunet {",
		"        group uunet-peers {",
		"    filter protect-re {",
		"    prefix-list uunet-routes {",
	} {
		out := junosLine(t, a, line)
		if strings.Contains(strings.ToLower(out), "uunet") || strings.Contains(out, "protect-re") {
			t.Errorf("name survived in %q -> %q", line, out)
		}
		if !strings.HasSuffix(out, "{") {
			t.Errorf("block brace lost: %q -> %q", line, out)
		}
	}
}

func TestJunosRuleASPathDefinition(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, `    as-path from-sprint "_1239_";`)
	if strings.Contains(out, "1239") || strings.Contains(out, "sprint") {
		t.Errorf("as-path leaked: %s", out)
	}
	if !strings.Contains(out, `"`) || !strings.HasSuffix(out, `";`) {
		t.Errorf("quoting destroyed: %s", out)
	}
	// Bare reference form.
	out = junosLine(t, a, "            as-path from-sprint;")
	if strings.Contains(out, "sprint") {
		t.Errorf("as-path reference survived: %s", out)
	}
}

func TestJunosRuleCredentialQuoted(t *testing.T) {
	a := newTestAnonymizer()
	out := junosLine(t, a, `                encrypted-password "$1$abc$def";`)
	if strings.Contains(out, "abc$def") {
		t.Errorf("password survived: %s", out)
	}
	if !strings.Contains(out, `"`) {
		t.Errorf("quotes lost: %s", out)
	}
	out = junosLine(t, a, "        authentication-key secretkey99;")
	if strings.Contains(out, "secretkey99") {
		t.Errorf("key survived: %s", out)
	}
}

func TestJunosRuleMessageStripped(t *testing.T) {
	a := newTestAnonymizer()
	out := a.AnonymizeText("        message \"property of foocorp\";\n        host-name x;\n")
	if strings.Contains(out, "foocorp") || strings.Contains(out, "property") {
		t.Errorf("login message survived: %s", out)
	}
}

func TestJunosBlockComments(t *testing.T) {
	a := newTestAnonymizer()
	in := "/* one-liner secret1 */\n/* multi\nsecret2\n*/\n# secret3\nhost-name r;\n"
	out := a.AnonymizeText(in)
	for _, leak := range []string{"secret1", "secret2", "secret3"} {
		if strings.Contains(out, leak) {
			t.Errorf("comment %q survived: %s", leak, out)
		}
	}
	if !strings.Contains(out, "host-name") {
		t.Errorf("statement after comments lost: %s", out)
	}
}

func TestMapCommunityExprEdgeCases(t *testing.T) {
	a := newTestAnonymizer()
	// Well-knowns pass.
	for _, w := range []string{"internet", "no-export", "no-advertise"} {
		if got := a.mapCommunityExpr(w); got != w {
			t.Errorf("well-known %q changed to %q", w, got)
		}
	}
	// Bare integers are treated as community values.
	if got := a.mapCommunityExpr("100"); got == "100" {
		t.Errorf("bare integer community not mapped")
	}
	// Unsplittable regexps fall back to a hash.
	got := a.mapCommunityExpr(".*")
	if got != ".*" {
		// ".*" has no colon: falls back to hash — must not survive raw.
		if strings.Contains(got, "*") {
			t.Errorf("unsplittable regexp mishandled: %q", got)
		}
	}
}

func TestAccessorHelpers(t *testing.T) {
	a := newTestAnonymizer()
	a.AnonymizeText("interface Ethernet0\n ip address 10.1.1.1 255.255.255.0\n")
	if len(a.IPMapping()) == 0 {
		t.Error("IPMapping empty after anonymization")
	}
	if a.MapIP(0x0A010101) == 0 {
		t.Error("MapIP returned zero for a plain address")
	}
	if a.HashWord("x") == a.HashWord("y") {
		t.Error("HashWord collides trivially")
	}
}
