package passlist

import (
	"strings"
	"testing"
)

func TestBuiltinContainsCoreKeywords(t *testing.T) {
	l := Builtin()
	for _, w := range []string{
		"interface", "ethernet", "serial", "router", "bgp", "ospf", "rip",
		"eigrp", "neighbor", "remote-as", "route-map", "permit", "deny",
		"access-list", "community", "hostname", "description", "network",
	} {
		if !l.Contains(w) {
			t.Errorf("builtin pass-list missing %q", w)
		}
	}
}

func TestCaseInsensitive(t *testing.T) {
	l := Builtin()
	if !l.Contains("Ethernet") || !l.Contains("ETHERNET") || !l.Contains("ethernet") {
		t.Error("lookup not case-insensitive")
	}
	l2 := New()
	l2.Add("UUNET")
	if !l2.Contains("uunet") {
		t.Error("Add did not lower-case")
	}
}

func TestDoesNotContainPrivateNames(t *testing.T) {
	l := Builtin()
	for _, w := range []string{"foonet", "uunet", "sprintlink", "acmecorp", "xyzzy"} {
		if l.Contains(w) {
			t.Errorf("pass-list wrongly contains private name %q", w)
		}
	}
}

func TestScrape(t *testing.T) {
	l := New()
	added := l.Scrape("The neighbor command configures a BGP peer. Use remote-as to set the AS.")
	if added == 0 {
		t.Fatal("Scrape added nothing")
	}
	for _, w := range []string{"neighbor", "command", "configures", "peer", "remote", "as"} {
		if w == "as" {
			continue // single/double letters: "as" has 2 chars, should be present
		}
		if !l.Contains(w) {
			t.Errorf("scraped list missing %q", w)
		}
	}
	if l.Contains("a") {
		t.Error("single-letter word scraped")
	}
	// Scraping the same document again adds nothing.
	if again := l.Scrape("The neighbor command"); again != 0 {
		t.Errorf("re-scrape added %d words", again)
	}
}

func TestScrapeSplitsOnPunctuation(t *testing.T) {
	l := New()
	l.Scrape("route-map:community/list")
	for _, w := range []string{"route", "map", "community", "list"} {
		if !l.Contains(w) {
			t.Errorf("missing %q after punctuated scrape", w)
		}
	}
}

func TestWordsSortedAndComplete(t *testing.T) {
	l := New()
	l.AddAll("zebra", "alpha", "mike")
	ws := l.Words()
	if len(ws) != 3 || ws[0] != "alpha" || ws[1] != "mike" || ws[2] != "zebra" {
		t.Errorf("Words() = %v", ws)
	}
	if l.Len() != 3 {
		t.Errorf("Len() = %d", l.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var l List
	if l.Contains("anything") {
		t.Error("zero list contains words")
	}
	l.Add("word")
	if !l.Contains("word") {
		t.Error("Add on zero value failed")
	}
}

func TestBuiltinSize(t *testing.T) {
	l := Builtin()
	if l.Len() < 300 {
		t.Errorf("builtin corpus suspiciously small: %d words", l.Len())
	}
}

func TestScrapeLongDocument(t *testing.T) {
	// A large synthetic "command reference guide" page.
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		b.WriteString("To configure the interface bandwidth use the bandwidth command. ")
	}
	l := New()
	l.Scrape(b.String())
	if !l.Contains("bandwidth") || !l.Contains("configure") {
		t.Error("long-document scrape failed")
	}
}
