// Package passlist implements the pass-list of unprivileged tokens
// (§4.1): the set of words that are known not to leak identity
// information and therefore survive anonymization unhashed.
//
// The paper builds its pass-list with "a web-walker that string scraped
// the Cisco IOS command reference guides. In theory, most Cisco keywords
// will appear somewhere in the guides, and non-keywords used in the guides
// are so common they cannot leak information." This package plays both
// roles: Builtin returns a pass-list seeded with an embedded corpus of IOS
// keywords and guide vocabulary (standing in for the shipped scrape
// result), and Scrape extends a list by string-scraping any local document
// corpus, exactly as the walker did over the reference guides.
//
// Lookups are case-insensitive: configuration files freely mix
// "Ethernet", "ethernet", and "ETHERNET".
package passlist

import (
	"sort"
	"strings"
)

// List is a set of unprivileged words. The zero value is an empty list.
type List struct {
	words map[string]bool
}

// New returns an empty pass-list.
func New() *List {
	return &List{words: make(map[string]bool)}
}

// Add inserts one word (lower-cased).
func (l *List) Add(w string) {
	if l.words == nil {
		l.words = make(map[string]bool)
	}
	l.words[strings.ToLower(w)] = true
}

// AddAll inserts every word of ws.
func (l *List) AddAll(ws ...string) {
	for _, w := range ws {
		l.Add(w)
	}
}

// Contains reports whether w is unprivileged (case-insensitive).
func (l *List) Contains(w string) bool {
	return l.words[strings.ToLower(w)]
}

// Len reports the number of distinct words.
func (l *List) Len() int { return len(l.words) }

// Words returns the sorted contents, for persistence and diffing.
func (l *List) Words() []string {
	out := make([]string, 0, len(l.words))
	for w := range l.words {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Scrape string-scrapes a document (any text: a command reference page, a
// manual chapter) and adds every purely alphabetic word of at least two
// characters to the list. This is the local equivalent of the paper's
// web-walker pass over the IOS command reference guides.
func (l *List) Scrape(doc string) int {
	added := 0
	start := -1
	flush := func(end int) {
		if start >= 0 && end-start >= 2 {
			w := strings.ToLower(doc[start:end])
			if !l.words[w] {
				l.Add(w)
				added++
			}
		}
		start = -1
	}
	for i := 0; i < len(doc); i++ {
		c := doc[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(doc))
	return added
}

// Builtin returns a pass-list pre-loaded with the embedded corpus: IOS
// configuration keywords, interface type names, protocol names, and the
// common English vocabulary of the reference guides.
func Builtin() *List {
	l := New()
	l.AddAll(iosKeywords...)
	l.AddAll(guideVocabulary...)
	return l
}
