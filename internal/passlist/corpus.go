package passlist

// iosKeywords is the embedded keyword corpus: command words, parameter
// keywords, interface types, and protocol names as they appear in IOS
// configuration files and the command reference guides. The list stands in
// for the paper's web-walker scrape and deliberately errs toward
// inclusion: a keyword wrongly hashed destroys information, while the
// basic method already guarantees that any word NOT on this list is
// hashed, so omissions are safe.
var iosKeywords = []string{
	// Global configuration and services.
	"aaa", "authentication", "authorization", "accounting", "login",
	"enable", "secret", "password", "service", "timestamps", "debug",
	"datetime", "msec", "localtime", "uptime", "encryption", "compress",
	"config", "configuration", "boot", "system", "flash", "slot",
	"version", "hostname", "domain", "name", "server", "lookup",
	"subnet", "zero", "classless", "cef", "switching", "route", "routing",
	"source", "finger", "tcp", "udp", "icmp", "small", "servers",
	"http", "https", "ftp", "tftp", "ntp", "clock", "timezone", "summer",
	"time", "calendar", "update", "logging", "buffered", "console",
	"monitor", "trap", "facility", "history", "snmp", "community",
	"contact", "location", "chassis", "ro", "rw", "view", "username",
	"user", "privilege", "level", "line", "vty", "aux", "con", "tty",
	"exec", "timeout", "transport", "input", "output", "preferred",
	"telnet", "ssh", "pad", "rlogin", "access", "class", "motd", "banner",
	"incoming", "exec-banner", "vacant", "message", "end", "exit", "no",
	"shutdown", "description", "alias", "key", "chain", "string",
	"memory", "cpu", "processor", "scheduler", "allocate", "interval",
	"redundancy", "mode", "main", "standby", "priority", "preempt",
	"track", "decrement", "virtual", "address", "addresses",

	// Interfaces and link types.
	"interface", "ethernet", "fastethernet", "gigabitethernet",
	"tengigabitethernet", "serial", "loopback", "null", "tunnel", "vlan",
	"port-channel", "pos", "atm", "hssi", "fddi", "tokenring", "bri",
	"dialer", "async", "group-async", "multilink", "bundle", "subif",
	"point-to-point", "multipoint", "bandwidth", "delay", "mtu",
	"encapsulation", "hdlc", "ppp", "frame-relay", "dot1q", "isl", "sdlc",
	"x25", "lapb", "dlci", "pvc", "vbr", "cbr", "ubr", "ilmi", "oam",
	"keepalive", "carrier", "clock", "rate", "dce", "dte", "invert",
	"txclock", "duplex", "speed", "auto", "full", "half", "negotiation",
	"media-type", "flowcontrol", "cdp", "lldp", "arp", "timeout",
	"proxy-arp", "directed-broadcast", "unreachables", "redirects",
	"mask-reply", "mroute-cache", "route-cache", "load-interval",
	"hold-queue", "in", "out", "tx-ring-limit", "fair-queue",
	"random-detect", "shape", "police", "average", "peak", "burst",
	"percent", "priority-queue", "bandwidth-remaining", "queue-limit",
	"ef", "cs1", "cs2", "cs3", "cs4", "cs5", "cs6", "cs7",
	"af11", "af12", "af13", "af21", "af22", "af23", "af31", "af32",
	"af33", "af41", "af42", "af43", "tacacs", "radius", "kerberos",
	"channel-group", "lacp", "pagp", "on", "active", "passive",
	"switchport", "trunk", "allowed", "native", "pruning", "nonegotiate",
	"spanning-tree", "portfast", "bpduguard", "cost", "dampening",

	// IP and addressing.
	"ip", "ipv4", "ipv6", "address", "secondary", "unnumbered", "negotiated",
	"dhcp", "pool", "excluded-address", "helper-address", "broadcast",
	"netmask", "wildcard", "prefix", "prefix-list", "seq", "le", "ge",
	"host", "any", "log", "log-input", "established", "fragments",
	"precedence", "tos", "dscp", "eq", "neq", "gt", "lt", "range",
	"permit", "deny", "remark", "access-list", "access-group", "extended",
	"standard", "dynamic", "reflect", "evaluate", "nat", "inside",
	"outside", "overload", "static", "translation", "mls", "qos",

	// Routing: generic.
	"router", "network", "area", "neighbor", "redistribute", "metric",
	"metric-type", "distance", "default", "default-metric", "originate",
	"default-information", "passive-interface", "distribute-list",
	"offset-list", "administrative", "summary", "summary-address",
	"auto-summary", "synchronization", "maximum-paths", "timers", "basic",
	"spf", "holdtime", "invalid", "flush", "sleeptime", "traffic-share",
	"balanced", "min", "max", "variance", "null0",

	// RIP / IGRP / EIGRP.
	"rip", "igrp", "eigrp", "version", "split-horizon", "poison-reverse",
	"triggered", "validate-update-source", "flash-update-threshold",
	"stub", "receive-only", "connected", "leak-map", "bandwidth-percent",
	"hello-interval", "hold-time", "nsf",

	// OSPF / IS-IS.
	"ospf", "router-id", "nssa", "no-summary", "default-cost",
	"authentication-key", "message-digest", "message-digest-key", "md5",
	"dead-interval", "retransmit-interval", "transmit-delay",
	"hello-interval", "virtual-link", "stub", "backbone", "lsa",
	"throttle", "pacing", "flood", "ispf", "isis", "is-is", "net",
	"level-1", "level-2", "level-1-2", "circuit-type", "metric-style",
	"wide", "narrow", "lsp", "psnp", "csnp", "adjacency",

	// BGP.
	"bgp", "remote-as", "local-as", "ebgp-multihop", "ttl-security",
	"update-source", "next-hop-self", "send-community", "both",
	"soft-reconfiguration", "inbound", "outbound", "route-map",
	"route-reflector-client", "cluster-id", "confederation", "identifier",
	"peers", "peer-group", "aggregate-address", "as-set", "summary-only",
	"suppress-map", "advertise-map", "unsuppress-map", "attribute-map",
	"weight", "maximum-prefix", "restart", "warning-only", "dampening",
	"as-path", "prepend", "regexp", "filter-list", "community-list",
	"comm-list", "delete", "additive", "internet", "local-as", "no-export",
	"no-advertise", "local-preference", "med", "origin", "igp", "egp",
	"incomplete", "atomic-aggregate", "aggregator", "bestpath", "compare",
	"ignore", "multipath", "relax", "deterministic", "always-compare-med",
	"scan-time", "keepalive", "advertisement-interval", "fall-over",
	"bfd", "multihop", "disable", "shutdown", "graceful",
	"address-family", "unicast", "multicast", "vpnv4", "activate",
	"exit-address-family", "remove-private-as", "allowas-in", "maas",

	// Policy: route maps and lists.
	"match", "set", "tag", "next-hop", "interface", "type", "external",
	"internal", "local", "nssa-external", "continue", "sequence",
	"ip-address", "length", "automatic-tag", "goto",

	// Multicast and misc protocols.
	"pim", "sparse-mode", "dense-mode", "sparse-dense-mode", "rp-address",
	"rp-candidate", "bsr-candidate", "igmp", "join-group", "querier",
	"msdp", "sa-filter", "mbgp", "dvmrp", "mospf", "vrrp", "hsrp", "glbp",
	"standby",

	// Legacy protocols that appear in old configs.
	"ipx", "appletalk", "decnet", "clns", "vines", "xns", "bridge",
	"bridge-group", "spanning", "ieee", "dec",

	// MPLS / VPN era keywords (later IOS versions in the dataset).
	"mpls", "label", "protocol", "ldp", "tdp", "traffic-eng", "tunnels",
	"vrf", "forwarding", "rd", "route-target", "import", "export",
	"exp", "experimental",

	// Common operational words in configs.
	"primary", "backup", "up", "down", "enable", "disable", "on", "off",
	"true", "false", "all", "none", "strict", "loose", "include",
	"exclude", "detail", "brief",

	// Bare words that occur as segments of compound keywords
	// ("route-map" -> "route", "map"); listing them keeps segmentation
	// from hashing halves of well-known keywords.
	"list", "map", "maps", "path", "group", "client", "reflector",
	"hop", "self", "send", "receive", "soft", "hard", "re", "sub",
	"point", "to", "multi", "fast", "giga", "ten", "ether", "channel",
	"port", "loop", "back", "dial", "peer", "as", "id", "pre", "post",

	// JunOS structural and statement keywords (the paper notes the
	// techniques apply to JunOS directly; its keywords would appear in
	// the Juniper reference guides just as IOS keywords appear in
	// Cisco's).
	"system", "interfaces", "unit", "family", "inet", "inet6", "iso",
	"protocols", "policy-options", "routing-options", "firewall",
	"options", "apply-groups", "groups", "then", "from", "term",
	"members", "accept", "reject", "discard", "damping", "policer",
	"policy-statement", "host-name", "domain-name", "name-server",
	"autonomous-system", "peer-as", "local-address", "traceoptions",
	"syslog", "archival", "commit", "rollback", "lo", "ge", "fe", "so",
	"xe", "ae", "em", "fxp", "gr", "lt", "vt", "irb", "me",

	// Management-plane keywords common in the boilerplate sections of
	// production configs.
	"utc", "gmt", "est", "pst", "cst", "mst", "bootp", "synwait",
	"synwait-time", "iomem", "memory-size", "path-mtu-discovery",
	"new-model", "update-calendar", "password-encryption",
	"tcp-small-servers", "udp-small-servers", "source-route",
	"subnet-zero", "exec-timeout", "access-class", "informational",
	"critical", "warnings", "notifications", "emergencies", "datacenter",
}

// guideVocabulary is the common-English side of the scrape: words so
// ordinary in the command reference guides that they cannot leak identity
// information. The paper's example: "global" and "crossing" are each in
// the pass-list even though the phrase "global crossing" in a comment
// must still be stripped — which is why comments are removed wholesale.
var guideVocabulary = []string{
	"the", "a", "an", "and", "or", "not", "of", "to", "for", "with",
	"from", "into", "over", "under", "between", "through", "per", "via",
	"this", "that", "these", "those", "is", "are", "was", "were", "be",
	"been", "has", "have", "had", "can", "may", "must", "will", "shall",
	"use", "uses", "used", "using", "specify", "specifies", "specified",
	"configure", "configures", "configured", "command", "commands",
	"example", "examples", "parameter", "parameters", "value", "values",
	"number", "numbers", "packet", "packets", "traffic", "session",
	"sessions", "connection", "connections", "link", "links", "path",
	"paths", "router", "routers", "switch", "switches", "gateway",
	"office", "offices", "building", "floor", "campus", "site", "sites",
	"core", "edge", "border", "distribution", "aggregation", "customer",
	"provider", "transit", "peer", "peering", "upstream", "downstream",
	"global", "crossing", "main", "street", "north", "south", "east",
	"west", "mgmt", "management", "test", "lab", "production", "backbone",
	"region", "regional", "metro", "pop", "hub", "spoke", "branch",
	"wan", "lan", "man", "voice", "data", "video", "backup", "primary",
	"old", "new", "temp", "temporary", "reserved", "spare", "unused",
	"free", "circuit", "circuits", "uplink", "downlink", "crosslink",
	"contact", "support", "noc", "engineering", "operations",
}
