package netgen

import (
	"strings"
	"testing"

	"confanon/internal/config"
)

func TestCorpusDeterministic(t *testing.T) {
	c1 := GenerateCorpus(CorpusParams{Seed: 5, Routers: 80, Networks: 4})
	c2 := GenerateCorpus(CorpusParams{Seed: 5, Routers: 80, Networks: 4})
	if len(c1.Networks) != len(c2.Networks) {
		t.Fatalf("network counts differ: %d vs %d", len(c1.Networks), len(c2.Networks))
	}
	for i := range c1.Networks {
		r1, r2 := c1.Networks[i].RenderAll(), c2.Networks[i].RenderAll()
		if len(r1) != len(r2) {
			t.Fatalf("network %d: file counts differ", i)
		}
		for name, text := range r1 {
			if r2[name] != text {
				t.Fatalf("network %d file %s differs between same-seed runs", i, name)
			}
		}
	}
	if len(c1.Links) != len(c2.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(c1.Links), len(c2.Links))
	}
}

func TestCorpusBudgetAndIdentity(t *testing.T) {
	c := GenerateCorpus(CorpusParams{Seed: 9, Routers: 120, Networks: 6})
	if len(c.Networks) != 6 {
		t.Fatalf("networks = %d, want 6", len(c.Networks))
	}
	total := c.TotalRouters()
	if total < 100 || total > 150 {
		t.Errorf("total routers %d far from the 120 budget", total)
	}
	names := map[string]bool{}
	asns := map[uint32]int{}
	for _, n := range c.Networks {
		if names[n.Params.Name] {
			t.Errorf("duplicate network name %s", n.Params.Name)
		}
		names[n.Params.Name] = true
		asns[n.ASN]++
		if n.Salt == "" {
			t.Error("network missing its anonymization salt")
		}
	}
	// File names must be corpus-unique (hostnames embed the company name).
	files := map[string]bool{}
	for _, n := range c.Networks {
		for name := range n.RenderAll() {
			if files[name] {
				t.Errorf("duplicate file name %s across networks", name)
			}
			files[name] = true
		}
	}
}

func TestCorpusInterASConnected(t *testing.T) {
	c := GenerateCorpus(CorpusParams{Seed: 3, Routers: 100, Networks: 5})
	if len(c.Links) < len(c.Networks)-1 {
		t.Fatalf("links = %d, fewer than a spanning tree over %d networks",
			len(c.Links), len(c.Networks))
	}
	// Union-find connectivity over the link graph.
	parent := make([]int, len(c.Networks))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range c.Links {
		parent[find(l.A)] = find(l.B)
	}
	root := find(0)
	for i := range c.Networks {
		if find(i) != root {
			t.Errorf("network %d disconnected from the inter-AS graph", i)
		}
	}
	// Each link's addresses live in the corpus pool, not any network's
	// blocks, and both sides carry matching eBGP sessions.
	for _, l := range c.Links {
		for _, addr := range []uint32{l.AddrA, l.AddrB} {
			if addr&config.LenToMask(interASBlock.Len) != interASBlock.Addr {
				t.Errorf("link address %x outside the inter-AS pool", addr)
			}
		}
		a, b := c.Networks[l.A], c.Networks[l.B]
		if !hasNeighbor(a.Routers[l.RouterA].Config, l.AddrB, b.ASN) {
			t.Errorf("network %d router %d missing eBGP session to %x", l.A, l.RouterA, l.AddrB)
		}
		if !hasNeighbor(b.Routers[l.RouterB].Config, l.AddrA, a.ASN) {
			t.Errorf("network %d router %d missing eBGP session to %x", l.B, l.RouterB, l.AddrA)
		}
	}
}

func hasNeighbor(c *config.Config, addr uint32, asn uint32) bool {
	if c.BGP == nil {
		return false
	}
	for _, nb := range c.BGP.Neighbors {
		if nb.Addr == addr && nb.RemoteAS == asn {
			return true
		}
	}
	return false
}

func TestCorpusRendersAndParses(t *testing.T) {
	c := GenerateCorpus(CorpusParams{Seed: 7, Routers: 60, Networks: 3})
	for i, n := range c.Networks {
		for name, text := range n.RenderAll() {
			cfg := config.Parse(text)
			if cfg.Hostname == "" {
				t.Errorf("network %d file %s lost its hostname on re-parse", i, name)
			}
		}
	}
	// Identity tokens include the network's own name and at least one
	// interconnect peer for a linked network.
	linked := c.Links[0].A
	tokens := c.IdentityTokens(linked)
	own := c.Networks[linked].Params.Name
	foundOwn, foundPeer := false, false
	for _, tok := range tokens {
		if tok == own {
			foundOwn = true
		}
		if tok == c.Networks[c.Links[0].B].Params.Name {
			foundPeer = true
		}
	}
	if !foundOwn || !foundPeer {
		t.Errorf("identity tokens incomplete: own=%v peer=%v (%v)", foundOwn, foundPeer, tokens)
	}
	// And the planted peer name really is in the rendered text.
	all := strings.Builder{}
	for _, text := range c.Networks[linked].RenderAll() {
		all.WriteString(text)
	}
	if !strings.Contains(all.String(), c.Networks[c.Links[0].B].Params.Name) {
		t.Error("interconnect description does not carry the peer network's name")
	}
}

func TestCorpusDefaults(t *testing.T) {
	c := GenerateCorpus(CorpusParams{Seed: 1})
	if len(c.Networks) < 2 {
		t.Fatalf("default corpus has %d networks", len(c.Networks))
	}
	if c.TotalRouters() < 100 {
		t.Errorf("default corpus suspiciously small: %d routers", c.TotalRouters())
	}
}
