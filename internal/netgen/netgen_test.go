package netgen

import (
	"strings"
	"testing"

	"confanon/internal/config"
)

func TestGenerateDeterministic(t *testing.T) {
	n1 := Generate(Params{Seed: 42, Kind: Backbone})
	n2 := Generate(Params{Seed: 42, Kind: Backbone})
	r1, r2 := n1.RenderAll(), n2.RenderAll()
	if len(r1) != len(r2) {
		t.Fatalf("router counts differ: %d vs %d", len(r1), len(r2))
	}
	for name, text := range r1 {
		if r2[name] != text {
			t.Fatalf("config %s differs between same-seed runs", name)
		}
	}
	n3 := Generate(Params{Seed: 43, Kind: Backbone})
	if n3.Params.Name == n1.Params.Name && n3.ASN == n1.ASN {
		t.Error("different seeds produced identical identity")
	}
}

func TestGeneratedConfigsParse(t *testing.T) {
	n := Generate(Params{Seed: 7, Kind: Backbone, Routers: 24})
	if len(n.Routers) != 24 {
		t.Fatalf("routers = %d, want 24", len(n.Routers))
	}
	for _, r := range n.Routers {
		text := r.Config.Render()
		c := config.Parse(text)
		if c.Hostname != r.Config.Hostname {
			t.Errorf("round trip lost hostname %q", r.Config.Hostname)
		}
		if len(c.Interfaces) != len(r.Config.Interfaces) {
			t.Errorf("%s: interfaces %d -> %d", c.Hostname, len(r.Config.Interfaces), len(c.Interfaces))
		}
		if (c.BGP == nil) != (r.Config.BGP == nil) {
			t.Errorf("%s: BGP presence changed", c.Hostname)
		}
	}
}

func TestBackboneStructure(t *testing.T) {
	n := Generate(Params{Seed: 11, Kind: Backbone, Routers: 40})
	roles := map[string]int{}
	for _, r := range n.Routers {
		roles[r.Role]++
	}
	for _, role := range []string{"core", "agg", "edge", "border"} {
		if roles[role] == 0 {
			t.Errorf("no %s routers generated: %v", role, roles)
		}
	}
	if len(n.Links) < 40 {
		t.Errorf("suspiciously few links: %d", len(n.Links))
	}
	if len(n.Peers) == 0 {
		t.Error("no external peerings")
	}
	// Every peer ASN is a well-known public ASN, not our own.
	for _, p := range n.Peers {
		if p.PeerASN == n.ASN {
			t.Error("network peers with itself")
		}
	}
	// BGP speakers have iBGP neighbors.
	for _, r := range n.Routers {
		if r.Role == "core" && r.Config.BGP != nil && len(r.Config.BGP.Neighbors) == 0 {
			t.Errorf("core router %s has no iBGP neighbors", r.Config.Hostname)
		}
	}
	// OSPF everywhere on a backbone.
	for _, r := range n.Routers {
		if len(r.Config.OSPF) == 0 {
			t.Errorf("router %s has no OSPF", r.Config.Hostname)
		}
	}
}

func TestEnterpriseUsesClassfulIGP(t *testing.T) {
	foundRIP, foundEIGRP := false, false
	for seed := int64(0); seed < 8; seed++ {
		n := Generate(Params{Seed: seed, Kind: Enterprise, Routers: 12})
		for _, r := range n.Routers {
			if r.Config.RIP != nil {
				foundRIP = true
				for _, net := range r.Config.RIP.Networks {
					if net&^config.ClassfulMask(net) != 0 {
						t.Errorf("RIP network %x not classful", net)
					}
				}
			}
			if len(r.Config.EIGRP) > 0 {
				foundEIGRP = true
			}
		}
	}
	if !foundRIP || !foundEIGRP {
		t.Errorf("IGP variety missing: rip=%v eigrp=%v", foundRIP, foundEIGRP)
	}
}

func TestIdentityContentPresent(t *testing.T) {
	n := Generate(Params{Seed: 3, Kind: Backbone, Routers: 20, CommentDensity: 0.02})
	all := strings.Builder{}
	for _, text := range n.RenderAll() {
		all.WriteString(text)
	}
	s := all.String()
	if !strings.Contains(s, n.Params.Name) {
		t.Error("company name absent from configs (nothing to anonymize)")
	}
	if !strings.Contains(s, "noc@") {
		t.Error("no contact emails generated")
	}
	if !strings.Contains(s, "banner motd") {
		t.Error("no banners generated")
	}
	found := false
	for _, isp := range isp2004 {
		if strings.Contains(s, isp.Name) {
			found = true
		}
	}
	if !found {
		t.Error("no ISP names in descriptions")
	}
}

func TestRegexpKnobs(t *testing.T) {
	// Each knob on its own network: with several knobs set, the range
	// latches may consume every policy of a small network.
	nAlt := Generate(Params{Seed: 5, Kind: Backbone, Routers: 30, UseASPathAlternation: true})
	nRange := Generate(Params{Seed: 5, Kind: Backbone, Routers: 30, UsePublicASNRanges: true})
	nComm := Generate(Params{Seed: 5, Kind: Backbone, Routers: 30,
		UseCommunityRegexps: true, UseCommunityRanges: true})
	hasAlt, hasRange, hasCommRegex := false, false, false
	for _, r := range nAlt.Routers {
		for _, al := range r.Config.ASPathLists {
			for _, e := range al.Entries {
				if strings.Contains(e.Regex, "|") {
					hasAlt = true
				}
			}
		}
	}
	for _, r := range nRange.Routers {
		for _, al := range r.Config.ASPathLists {
			for _, e := range al.Entries {
				if strings.Contains(e.Regex, "[") {
					hasRange = true
				}
			}
		}
	}
	for _, r := range nComm.Routers {
		for _, cl := range r.Config.CommunityLists {
			for _, e := range cl.Entries {
				if strings.Contains(e.Expr, ".") || strings.Contains(e.Expr, "[") {
					hasCommRegex = true
				}
			}
		}
	}
	if !hasAlt || !hasRange || !hasCommRegex {
		t.Errorf("knobs not honored: alt=%v range=%v comm=%v", hasAlt, hasRange, hasCommRegex)
	}
	// And with the knobs off, no ranges appear.
	n2 := Generate(Params{Seed: 5, Kind: Backbone, Routers: 30})
	for _, r := range n2.Routers {
		for _, al := range r.Config.ASPathLists {
			for _, e := range al.Entries {
				if strings.Contains(e.Regex, "[") {
					t.Errorf("range regexp %q without knob", e.Regex)
				}
			}
		}
	}
}

func TestCompartmentalization(t *testing.T) {
	n := Generate(Params{Seed: 9, Kind: Enterprise, Routers: 24, Compartmentalized: true})
	found := false
	for _, text := range n.RenderAll() {
		if strings.Contains(text, "ip nat inside") || strings.Contains(text, "deny icmp any any echo") {
			found = true
		}
	}
	if !found {
		t.Error("compartmentalization markers absent")
	}
}

func TestLinkAddressesConsistent(t *testing.T) {
	n := Generate(Params{Seed: 13, Kind: Backbone, Routers: 20})
	for _, l := range n.Links {
		if l.AddrA&config.LenToMask(30) != l.Subnet.Addr || l.AddrB&config.LenToMask(30) != l.Subnet.Addr {
			t.Errorf("link addresses outside subnet: %+v", l)
		}
		if l.AddrA == l.AddrB {
			t.Errorf("duplicate link addresses: %+v", l)
		}
	}
	// Subnets must not overlap loopbacks.
	loopbacks := map[uint32]bool{}
	for _, r := range n.Routers {
		lo := r.Config.Interface("Loopback0")
		if lo == nil {
			t.Fatalf("%s has no loopback", r.Config.Hostname)
		}
		if loopbacks[lo.Address.Addr] {
			t.Fatalf("duplicate loopback %x", lo.Address.Addr)
		}
		loopbacks[lo.Address.Addr] = true
	}
}

func TestCommentDensityApproximation(t *testing.T) {
	n := Generate(Params{Seed: 21, Kind: Backbone, Routers: 15, CommentDensity: 0.05})
	words, commentWords := 0, 0
	for _, r := range n.Routers {
		for _, line := range strings.Split(r.Config.Render(), "\n") {
			f := strings.Fields(line)
			words += len(f)
			if len(f) > 1 && f[0] == "!" {
				commentWords += len(f) - 1
			}
		}
	}
	frac := float64(commentWords) / float64(words)
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("comment fraction %.3f far from requested 0.05", frac)
	}
}

func TestTotalLines(t *testing.T) {
	n := Generate(Params{Seed: 1, Kind: Backbone, Routers: 10})
	if n.TotalLines() < 100 {
		t.Errorf("TotalLines = %d, implausibly small", n.TotalLines())
	}
}

func TestJunOSRendering(t *testing.T) {
	n := Generate(Params{Seed: 55, Kind: Backbone, Routers: 10, JunOS: true})
	files := n.RenderAll()
	for name, text := range files {
		if !strings.HasSuffix(name, "-junos") {
			t.Errorf("JunOS network rendered IOS-style file name %q", name)
		}
		if !strings.Contains(text, "host-name") || !strings.Contains(text, "family inet") {
			t.Errorf("file %s does not look like JunOS", name)
		}
		if strings.Contains(text, "hostname ") {
			t.Errorf("file %s contains IOS syntax", name)
		}
	}
}
