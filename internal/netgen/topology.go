package netgen

import (
	"fmt"

	"confanon/internal/config"
)

// buildTopology creates the routers and physical links.
//
// Backbone: a core ring with chords, aggregation routers dual-homed to the
// core, edge routers homed to aggregation, and border routers (on the
// core) carrying the external peerings.
//
// Enterprise: a small HQ core, branch routers star-homed to it, and one or
// two border routers to upstream ISPs.
func (g *generator) buildTopology() {
	n := g.p.Routers
	var nCore, nAgg, nBorder int
	switch g.p.Kind {
	case Backbone:
		nCore = max(3, n/8)
		nAgg = max(2, n/4)
		nBorder = max(2, n/16)
	case Enterprise:
		nCore = max(2, n/12)
		nAgg = max(1, n/8)
		nBorder = 1
		if n > 20 {
			nBorder = 2
		}
	}
	if nCore+nAgg+nBorder > n {
		nCore, nAgg, nBorder = 2, 1, 1
	}
	nEdge := n - nCore - nAgg - nBorder

	mk := func(role string, i int) *Router {
		r := &Router{Index: len(g.net.Routers), Role: role}
		r.Config = g.baseConfig(role, i)
		g.net.Routers = append(g.net.Routers, r)
		return r
	}
	var cores, aggs, borders, edges []*Router
	for i := 0; i < nCore; i++ {
		cores = append(cores, mk("core", i))
	}
	for i := 0; i < nBorder; i++ {
		borders = append(borders, mk("border", i))
	}
	for i := 0; i < nAgg; i++ {
		aggs = append(aggs, mk("agg", i))
	}
	for i := 0; i < nEdge; i++ {
		edges = append(edges, mk("edge", i))
	}

	// Core ring plus chords.
	for i := range cores {
		g.link(cores[i], cores[(i+1)%len(cores)])
	}
	for i := 0; i+2 < len(cores); i += 3 {
		g.link(cores[i], cores[i+2])
	}
	// Borders homed to two cores.
	for i, b := range borders {
		g.link(b, cores[i%len(cores)])
		g.link(b, cores[(i+1)%len(cores)])
	}
	// Aggregation dual-homed.
	for i, a := range aggs {
		g.link(a, cores[i%len(cores)])
		if len(cores) > 1 {
			g.link(a, cores[(i+len(cores)/2)%len(cores)])
		}
	}
	// Edges homed to aggregation (or to core when no aggregation).
	up := aggs
	if len(up) == 0 {
		up = cores
	}
	for i, e := range edges {
		g.link(e, up[i%len(up)])
		if i%2 == 0 && len(up) > 1 {
			g.link(e, up[(i+1)%len(up)])
		}
		// Edge routers are where customer and office networks attach.
		nLAN := 2 + g.rng.Intn(5)
		for k := 0; k < nLAN; k++ {
			g.addLAN(e, k)
		}
		nCust := 4 + g.rng.Intn(16)
		// A few edges are big aggregation POPs terminating hundreds of
		// customer tails — the heavy upper tail of config sizes (the
		// paper's dataset runs to 10,000-line configs).
		if g.p.Routers > 25 && g.rng.Float64() < 0.18 {
			nCust += 120 + g.rng.Intn(350)
		}
		for k := 0; k < nCust; k++ {
			g.addCustomer(e)
		}
	}
	// Aggregation routers host a few LANs too.
	for _, a := range aggs {
		if g.rng.Intn(2) == 0 {
			g.addLAN(a, 0)
		}
	}
	// External peerings on the borders.
	g.addPeerings(borders)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// baseConfig creates the skeleton config for one router: hostname, dialect
// quirks, banner, loopback, management boilerplate.
func (g *generator) baseConfig(role string, i int) *config.Config {
	city := cityPool[g.rng.Intn(len(cityPool))]
	c := &config.Config{
		Hostname: fmt.Sprintf("%s%d.%s.%s.net", roleAbbrev(role), i+1, city, g.company),
		Domain:   g.company + ".net",
		Dialect:  g.randomDialect(),
	}
	// Identity-laden banner on some routers (kept short: banners are a
	// small fraction of the words of a production config).
	if g.rng.Float64() < 0.3 {
		c.Banners = append(c.Banners, config.Banner{
			Kind:  "motd",
			Delim: '^',
			Lines: []string{
				fmt.Sprintf("%s network - noc@%s.net - no unauthorized access", g.company, g.company),
			},
		})
	}
	// Loopback0.
	lo := g.nextLoopback()
	c.Interfaces = append(c.Interfaces, &config.Interface{
		Name:       "Loopback0",
		Address:    config.AddrMask{Addr: lo, Mask: config.LenToMask(32)},
		HasAddress: true,
	})
	// Management boilerplate with credentials (M-rule bait).
	c.SNMPCommunities = append(c.SNMPCommunities,
		fmt.Sprintf("%s-ro RO", g.company))
	c.Users = append(c.Users, "admin password 7 05080F1C22431F5B4A")
	if g.rng.Float64() < 0.2 {
		c.DialerStrings = append(c.DialerStrings, fmt.Sprintf("1%03d555%04d",
			200+g.rng.Intn(700), g.rng.Intn(10000)))
	}
	c.Extra = append(c.Extra, g.boilerplate()...)
	return c
}

// boilerplate emits the management bulk that fills real configurations —
// AAA, logging, NTP, vty lines, small services — sized so per-config line
// counts and comment fractions land near the paper's dataset statistics.
func (g *generator) boilerplate() []string {
	lines := []string{
		"service password-encryption",
		"no service tcp-small-servers",
		"no service udp-small-servers",
		"no ip bootp server",
		"no ip source-route",
		"ip subnet-zero",
		"aaa new-model",
		"aaa authentication login default local",
		"aaa authorization exec default local",
		"logging buffered 16384",
		"logging console critical",
		"logging trap informational",
		"no logging monitor",
		"clock timezone UTC 0",
		"ntp update-calendar",
		"scheduler allocate 4000 1000",
		"line con 0",
		" exec-timeout 5 0",
		" transport input none",
		"line aux 0",
		" no exec",
		"line vty 0 4",
		" exec-timeout 15 0",
		" transport input telnet",
		" access-class 99 in",
		"line vty 5 15",
		" transport input none",
	}
	// A standard management ACL plus variable extras per router.
	extras := [][]string{
		{"access-list 99 permit " + ipString(g.infra.Addr) + " 0.0.255.255", "access-list 99 deny any log"},
		{"ip tcp synwait-time 10", "ip tcp path-mtu-discovery"},
		{"snmp-server location datacenter", "snmp-server enable traps snmp"},
		{"cdp run"},
		{"no cdp run"},
		{"ip cef"},
		{"memory-size iomem 10"},
	}
	n := 3 + g.rng.Intn(4)
	perm := g.rng.Perm(len(extras))
	for i := 0; i < n; i++ {
		lines = append(lines, extras[perm[i]]...)
	}
	return lines
}

func ipString(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", v>>24, v>>16&0xFF, v>>8&0xFF, v&0xFF)
}

func roleAbbrev(role string) string {
	switch role {
	case "core":
		return "cr"
	case "agg":
		return "ar"
	case "edge":
		return "er"
	case "border":
		return "br"
	}
	return "r"
}

// randomDialect varies syntax per router, standing in for the 200+ IOS
// versions of the paper's dataset.
func (g *generator) randomDialect() config.Dialect {
	versions := []string{"11.1", "11.2", "11.3", "12.0", "12.0S", "12.1", "12.1E", "12.2", "12.2T", "12.3"}
	return config.Dialect{
		Version:           versions[g.rng.Intn(len(versions))],
		IPClassless:       g.rng.Intn(2) == 0,
		ServiceTimestamps: g.rng.Intn(2) == 0,
		BGPNewFormat:      g.rng.Intn(2) == 0,
		InterfaceStyle:    g.rng.Intn(3),
	}
}

// ifaceName generates the next physical interface name for a router in
// its dialect's style.
func (g *generator) ifaceName(c *config.Config, kind string) string {
	n := 0
	for _, ifc := range c.Interfaces {
		if ifc.Name != "Loopback0" {
			n++
		}
	}
	switch c.Dialect.InterfaceStyle {
	case 0:
		if kind == "lan" {
			return fmt.Sprintf("Ethernet%d", n)
		}
		return fmt.Sprintf("Serial%d", n)
	case 1:
		if kind == "lan" {
			return fmt.Sprintf("FastEthernet0/%d", n)
		}
		return fmt.Sprintf("Serial0/%d", n)
	default:
		if kind == "lan" {
			return fmt.Sprintf("GigabitEthernet0/0/%d", n)
		}
		return fmt.Sprintf("POS0/%d/0.%d", n, 1+g.rng.Intn(9))
	}
}

// link connects two routers with a /30.
func (g *generator) link(a, b *Router) {
	subnet, addrA, addrB := g.nextP2P()
	ifA := g.ifaceName(a.Config, "p2p")
	ifB := g.ifaceName(b.Config, "p2p")
	// Like production configs, only some links carry free-text
	// descriptions.
	var descA, descB string
	if g.rng.Float64() < 0.25 {
		descA = fmt.Sprintf("to %s %s", b.Config.Hostname, ifB)
		descB = fmt.Sprintf("to %s %s", a.Config.Hostname, ifA)
	}
	ia := &config.Interface{
		Name: ifA, Description: descA, Bandwidth: 1544 * (1 + g.rng.Intn(4)),
		Encap:      "ppp",
		Address:    config.AddrMask{Addr: addrA, Mask: config.LenToMask(30)},
		HasAddress: true,
	}
	ia.Extra = append(ia.Extra, g.ifaceOptions()...)
	a.Config.Interfaces = append(a.Config.Interfaces, ia)
	ib := &config.Interface{
		Name: ifB, Description: descB, Bandwidth: 1544 * (1 + g.rng.Intn(4)),
		Encap:      "ppp",
		Address:    config.AddrMask{Addr: addrB, Mask: config.LenToMask(30)},
		HasAddress: true,
	}
	ib.Extra = append(ib.Extra, g.ifaceOptions()...)
	b.Config.Interfaces = append(b.Config.Interfaces, ib)
	g.net.Links = append(g.net.Links, Link{
		A: a.Index, B: b.Index, Subnet: subnet, AddrA: addrA, AddrB: addrB,
	})
}

// addLAN attaches a LAN subnet to a router.
func (g *generator) addLAN(r *Router, k int) {
	length := g.lanLength()
	p := g.nextLAN(length)
	name := g.ifaceName(r.Config, "lan")
	desc := ""
	if g.rng.Float64() < 0.3 {
		city := cityPool[g.rng.Intn(len(cityPool))]
		desc = fmt.Sprintf("%s %s lan %d", g.company, city, k)
	}
	ifc := &config.Interface{
		Name:        name,
		Description: desc,
		Address:     config.AddrMask{Addr: p.Addr + 1, Mask: config.LenToMask(p.Len)},
		HasAddress:  true,
	}
	// Some LANs carry a secondary subnet; many carry the usual
	// per-interface hardening options.
	if g.rng.Float64() < 0.15 {
		sec := g.nextLAN(g.lanLength())
		ifc.Secondary = append(ifc.Secondary, config.AddrMask{
			Addr: sec.Addr + 1, Mask: config.LenToMask(sec.Len),
		})
	}
	ifc.Extra = append(ifc.Extra, g.ifaceOptions()...)
	r.Config.Interfaces = append(r.Config.Interfaces, ifc)
}

// ifaceOptions returns the per-interface option lines production configs
// accumulate.
func (g *generator) ifaceOptions() []string {
	pool := []string{
		"no ip directed-broadcast",
		"no ip redirects",
		"no ip unreachables",
		"no ip proxy-arp",
		"ip route-cache",
		"no cdp enable",
		"keepalive 10",
		"load-interval 30",
		"ntp disable",
		"arp timeout 14400",
	}
	n := g.rng.Intn(5)
	out := make([]string, 0, n)
	perm := g.rng.Perm(len(pool))
	for i := 0; i < n; i++ {
		out = append(out, pool[perm[i]])
	}
	return out
}

// addCustomer attaches one customer tail circuit to an edge router: a /30
// toward the customer plus a static route for the prefix delegated to it.
func (g *generator) addCustomer(r *Router) {
	_, mine, theirs := g.nextP2P()
	name := g.ifaceName(r.Config, "p2p")
	ifc := &config.Interface{
		Name:       name,
		Encap:      "ppp",
		Address:    config.AddrMask{Addr: mine, Mask: config.LenToMask(30)},
		HasAddress: true,
	}
	if g.rng.Float64() < 0.2 {
		ifc.Description = fmt.Sprintf("customer circuit %d", 1000+g.rng.Intn(9000))
	}
	ifc.Extra = append(ifc.Extra, g.ifaceOptions()...)
	r.Config.Interfaces = append(r.Config.Interfaces, ifc)
	// The customer's delegated prefix, routed at the tail.
	cp := g.nextLAN(24 + g.rng.Intn(6))
	r.Config.StaticRoutes = append(r.Config.StaticRoutes, &config.StaticRoute{
		Dest: cp.Addr, Mask: config.LenToMask(cp.Len), NextHop: theirs,
	})
}

// addPeerings creates the external eBGP sessions on border routers.
func (g *generator) addPeerings(borders []*Router) {
	nPeers := 1 + g.rng.Intn(3)
	if g.p.Kind == Backbone {
		nPeers = 2 + g.rng.Intn(4)
	}
	perm := g.rng.Perm(len(isp2004))
	for pi := 0; pi < nPeers && pi < len(isp2004); pi++ {
		isp := isp2004[perm[pi]]
		// Each ISP peers at one or more borders.
		sessions := 1 + g.rng.Intn(2)
		for s := 0; s < sessions; s++ {
			b := borders[g.rng.Intn(len(borders))]
			subnet, mine, theirs := g.nextP2P()
			_ = subnet
			name := g.ifaceName(b.Config, "p2p")
			b.Config.Interfaces = append(b.Config.Interfaces, &config.Interface{
				Name:        name,
				Description: fmt.Sprintf("peering %s AS%d", isp.Name, isp.ASN),
				Encap:       "hdlc",
				Address:     config.AddrMask{Addr: mine, Mask: config.LenToMask(30)},
				HasAddress:  true,
			})
			g.net.Peers = append(g.net.Peers, EBGPPeer{
				Router: b.Index, PeerASN: isp.ASN, PeerIP: theirs,
			})
		}
	}
}
