// Package netgen synthesizes production-style networks and their router
// configurations. It is the stand-in for the paper's dataset of 7,655
// routers across 31 backbone and enterprise networks: the generator
// produces the same constructs the paper's anonymizer had to handle —
// realistic topologies and addressing plans, OSPF/RIP/EIGRP interior
// routing, iBGP meshes and eBGP peerings with well-known 2004-era ISP
// ASNs, routing policy with community lists and AS-path regexps,
// identity-laden comments, banners and hostnames, and per-router IOS
// dialect variation standing in for the 200+ IOS versions.
//
// Generation is deterministic in Params.Seed, so experiments are
// reproducible and the ground truth (the *Network with its typed configs)
// is available for validation.
package netgen

import (
	"fmt"
	"math/rand"

	"confanon/internal/config"
	"confanon/internal/junos"
)

// Kind selects the network design style.
type Kind int

// Network kinds.
const (
	// Backbone is an ISP-style network: OSPF core, iBGP full mesh,
	// multiple eBGP peerings, public addressing.
	Backbone Kind = iota
	// Enterprise is a corporate network: EIGRP or RIP interior, a few
	// upstream eBGP sessions (or static default), mixed public/private
	// addressing.
	Enterprise
)

// Params controls generation. Zero values select sensible defaults.
type Params struct {
	Seed    int64
	Name    string // company name (lowercase, no spaces); generated if empty
	Kind    Kind
	Routers int // total router count; sampled from the paper-like range if 0

	// CommentDensity is the approximate fraction of words that are
	// comments (the paper reports an average of 1.5% with a 90th
	// percentile of 6%). Negative disables comments entirely.
	CommentDensity float64

	// Regexp-usage knobs, set per network to reproduce the paper's
	// prevalence counts (§4.4, §4.5).
	UseASPathAlternation bool // alternation in as-path regexps (10/31 networks)
	UsePublicASNRanges   bool // digit ranges over public ASNs (2/31)
	UsePrivateASNRanges  bool // ranges over private ASNs (3/31)
	UseCommunityRegexps  bool // community-list regexps (5/31)
	UseCommunityRanges   bool // ranges in community regexps (2/31)

	// Compartmentalized adds the internal-compartmentalization markers
	// §6 reports in 10/31 networks: NAT boundaries, probe-dropping ACLs,
	// reachability-limiting policy.
	Compartmentalized bool

	// JunOS renders the network's configurations in the JunOS dialect
	// instead of IOS (per-network, as real operators standardize on a
	// vendor).
	JunOS bool
}

// Link is one point-to-point adjacency in the ground-truth topology.
type Link struct {
	A, B   int // router indices
	Subnet config.Prefix
	AddrA  uint32
	AddrB  uint32
}

// EBGPPeer is one ground-truth external peering.
type EBGPPeer struct {
	Router  int // router index
	PeerASN uint32
	PeerIP  uint32
}

// Router is one generated router with its role and typed configuration.
type Router struct {
	Index  int
	Role   string // "core", "agg", "edge", "border"
	Config *config.Config
}

// Network is the generated ground truth.
type Network struct {
	Params  Params
	ASN     uint32          // the network's own (public) ASN
	Blocks  []config.Prefix // public address blocks
	Routers []*Router
	Links   []Link
	Peers   []EBGPPeer
	Salt    string // suggested anonymization salt (owner secret)
}

// RenderAll renders every router's configuration, keyed by a file name
// derived from the hostname. JunOS networks render in the JunOS dialect.
func (n *Network) RenderAll() map[string]string {
	out := make(map[string]string, len(n.Routers))
	for _, r := range n.Routers {
		if n.Params.JunOS {
			out[fmt.Sprintf("%s-junos", r.Config.Hostname)] = junos.Render(r.Config)
		} else {
			out[fmt.Sprintf("%s-confg", r.Config.Hostname)] = r.Config.Render()
		}
	}
	return out
}

// TotalLines counts rendered config lines across the network.
func (n *Network) TotalLines() int {
	total := 0
	for _, text := range n.RenderAll() {
		for _, c := range text {
			if c == '\n' {
				total++
			}
		}
	}
	return total
}

// Identity pools. These are the values that must NOT survive
// anonymization; tests grep for them.

var companyPool = []string{
	"foonet", "acmecorp", "globexnet", "initech", "umbrellanet",
	"starkind", "waynetech", "tyrellnet", "cyberdyne", "encomcorp",
	"hooli", "piedpiper", "masscom", "vandelay", "wonkanet",
	"oceanic", "virtucon", "soylent", "weyland", "yoyodyne",
	"bluthco", "dundernet", "pawneegov", "gringotts", "monstersinc",
	"duffcorp", "planetexp", "capsulecorp", "shinra", "aperture",
	"blackmesa",
}

var cityPool = []string{
	"lax", "sfo", "nyc", "chi", "dfw", "atl", "sea", "bos", "iad",
	"den", "mia", "phx", "msp", "det", "stl", "pdx", "san", "slc",
}

// isp2004 holds well-known public ASNs of the era with their names (names
// go into descriptions/comments as identity bait; ASNs into eBGP).
var isp2004 = []struct {
	Name string
	ASN  uint32
}{
	{"uunet", 701}, {"sprint", 1239}, {"attworldnet", 7018},
	{"level3", 3356}, {"verio", 2914}, {"cablewireless", 3561},
	{"qwest", 209}, {"genuity", 1}, {"abovenet", 6461},
	{"globalcrossing", 3549}, {"cogent", 174}, {"telia", 1299},
}

// publicBlocks is the pool of public address blocks networks draw from
// (2004-era style allocations).
var publicBlocks = []config.Prefix{
	{Addr: ip(12, 0, 0, 0), Len: 8},
	{Addr: ip(4, 16, 0, 0), Len: 12},
	{Addr: ip(63, 64, 0, 0), Len: 10},
	{Addr: ip(66, 128, 0, 0), Len: 11},
	{Addr: ip(129, 42, 0, 0), Len: 16},
	{Addr: ip(130, 94, 0, 0), Len: 16},
	{Addr: ip(141, 213, 0, 0), Len: 16},
	{Addr: ip(160, 10, 0, 0), Len: 16},
	{Addr: ip(192, 26, 0, 0), Len: 20},
	{Addr: ip(198, 32, 0, 0), Len: 16},
	{Addr: ip(199, 77, 0, 0), Len: 16},
	{Addr: ip(204, 70, 0, 0), Len: 15},
}

func ip(a, b, c, d uint32) uint32 { return a<<24 | b<<16 | c<<8 | d }

// Generate builds one network.
func Generate(p Params) *Network {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.Name == "" {
		p.Name = companyPool[rng.Intn(len(companyPool))]
	}
	if p.Routers == 0 {
		// Network sizes in the paper's dataset vary widely; most are
		// modest, a few are large. Sample log-uniformly 8..120.
		p.Routers = 8 + int(rng.ExpFloat64()*20)
		if p.Routers > 120 {
			p.Routers = 120
		}
	}
	if p.CommentDensity == 0 {
		// Draw so the population matches the paper: mean 1.5%, 90th
		// percentile 6%. An exponential with mean 0.015 has 90th
		// percentile ~3.5%; add a heavy-ish tail.
		d := rng.ExpFloat64() * 0.006
		if rng.Float64() < 0.1 {
			d += rng.Float64() * 0.04
		}
		p.CommentDensity = d
	}
	n := &Network{Params: p, Salt: p.Name + "-secret"}
	g := &generator{p: p, rng: rng, net: n}
	g.pickIdentity()
	g.buildTopology()
	g.buildRouting()
	g.buildPolicy()
	g.sprinkleComments()
	return n
}

// generator carries generation state.
type generator struct {
	p   Params
	rng *rand.Rand
	net *Network

	// address allocation cursors
	p2pCursor  uint32 // next /30 within the infrastructure block
	loopCursor uint32 // next /32 loopback
	lanCursor  uint32 // next LAN subnet base
	infra      config.Prefix
	lanBlock   config.Prefix
	company    string
	peerNames  map[uint32]string // ASN -> ISP name

	// one-shot latches guaranteeing each enabled regexp knob fires at
	// least once per network, so population prevalence is exact.
	usedPubRange, usedPrivRange, usedCommRange bool
}

func (g *generator) pickIdentity() {
	g.company = g.p.Name
	// Own public ASN: avoid the ISP pool.
	for {
		a := uint32(2000 + g.rng.Intn(30000))
		ok := true
		for _, isp := range isp2004 {
			if isp.ASN == a {
				ok = false
			}
		}
		if ok {
			g.net.ASN = a
			break
		}
	}
	// Address blocks: one infrastructure + one or two LAN blocks. The
	// infrastructure block must be big enough for all the /30s (links
	// plus customer attachments) and loopbacks the topology will need.
	need := uint32(g.p.Routers) * 400
	perm := g.rng.Perm(len(publicBlocks))
	g.infra = publicBlocks[perm[0]]
	for _, idx := range perm {
		if uint32(1)<<(32-uint(publicBlocks[idx].Len))/2 >= need {
			g.infra = publicBlocks[idx]
			break
		}
	}
	g.lanBlock = publicBlocks[perm[1]]
	if g.lanBlock == g.infra {
		g.lanBlock = publicBlocks[perm[0]]
	}
	g.net.Blocks = []config.Prefix{g.infra, g.lanBlock}
	if g.p.Kind == Enterprise {
		// Enterprises mix RFC1918 space internally.
		g.lanBlock = config.Prefix{Addr: ip(10, uint32(g.rng.Intn(250)), 0, 0), Len: 16}
		g.net.Blocks = append(g.net.Blocks, g.lanBlock)
	}
	g.p2pCursor = g.infra.Addr
	// Loopbacks are carved from the second half of the infrastructure
	// block; point-to-point /30s from the first half.
	g.loopCursor = g.infra.Addr + 1<<(32-uint(g.infra.Len))/2
	g.lanCursor = g.lanBlock.Addr
	g.peerNames = make(map[uint32]string)
	for _, isp := range isp2004 {
		g.peerNames[isp.ASN] = isp.Name
	}
}

// nextP2P allocates a /30 and returns the two usable host addresses.
func (g *generator) nextP2P() (config.Prefix, uint32, uint32) {
	base := g.p2pCursor
	g.p2pCursor += 4
	return config.Prefix{Addr: base, Len: 30}, base + 1, base + 2
}

// nextLoopback allocates a /32.
func (g *generator) nextLoopback() uint32 {
	a := g.loopCursor
	g.loopCursor++
	return a
}

// nextLAN allocates a LAN subnet with the given prefix length.
func (g *generator) nextLAN(length int) config.Prefix {
	size := uint32(1) << (32 - uint(length))
	// Align.
	if g.lanCursor%size != 0 {
		g.lanCursor = (g.lanCursor/size + 1) * size
	}
	p := config.Prefix{Addr: g.lanCursor, Len: length}
	g.lanCursor += size
	return p
}

// lanLengths is the subnet-size mix (drives the subnet-size histogram the
// fingerprint experiments measure).
func (g *generator) lanLength() int {
	r := g.rng.Float64()
	switch {
	case r < 0.45:
		return 24
	case r < 0.60:
		return 25
	case r < 0.72:
		return 26
	case r < 0.82:
		return 27
	case r < 0.90:
		return 28
	case r < 0.96:
		return 29
	default:
		return 23
	}
}
