package netgen

import (
	"fmt"
	"strings"

	"confanon/internal/config"
)

// isLANName reports whether an interface name denotes a LAN port in the
// generator's dialect styles (Ethernet variants and VLANs).
func isLANName(name string) bool {
	return strings.HasPrefix(name, "Ethernet") || strings.HasPrefix(name, "FastEthernet") ||
		strings.HasPrefix(name, "GigabitEthernet") || strings.HasPrefix(name, "Vlan")
}

// buildRouting configures the interior routing protocols and the BGP mesh.
func (g *generator) buildRouting() {
	switch g.p.Kind {
	case Backbone:
		g.buildOSPF()
	case Enterprise:
		if g.rng.Intn(2) == 0 {
			g.buildEIGRP()
		} else {
			g.buildRIP()
		}
	}
	g.buildBGP()
	g.buildStatics()
}

// buildOSPF runs OSPF on every router: area 0 on core/border/agg uplinks,
// per-aggregation areas toward the edge.
func (g *generator) buildOSPF() {
	for _, r := range g.net.Routers {
		o := &config.OSPF{PID: 1}
		if lo := r.Config.Interface("Loopback0"); lo != nil {
			o.RouterID = lo.Address.Addr
			o.HasRouterID = true
		}
		area := uint32(0)
		if r.Role == "edge" {
			area = uint32(1 + r.Index%8)
		}
		for _, ifc := range r.Config.Interfaces {
			if !ifc.HasAddress {
				continue
			}
			length, _ := config.MaskToLen(ifc.Address.Mask)
			wild := ^config.LenToMask(length)
			net := ifc.Address.Addr & config.LenToMask(length)
			a := area
			if ifc.Name == "Loopback0" || r.Role != "edge" {
				a = 0
			}
			o.Networks = append(o.Networks, config.OSPFNetwork{Addr: net, Wildcard: wild, Area: a})
			if isLANName(ifc.Name) {
				o.Passive = append(o.Passive, ifc.Name)
			}
		}
		r.Config.OSPF = append(r.Config.OSPF, o)
	}
}

// buildEIGRP runs EIGRP with classful network statements.
func (g *generator) buildEIGRP() {
	asn := uint32(100 + g.rng.Intn(900)) // interior EIGRP AS number, local significance
	for _, r := range g.net.Routers {
		e := &config.EIGRP{ASN: asn}
		e.Networks = g.classfulNetworks(r)
		if r.Role == "border" {
			e.Redistribute = append(e.Redistribute, "static")
		}
		r.Config.EIGRP = append(r.Config.EIGRP, e)
	}
}

// buildRIP runs RIP v2 with classful network statements.
func (g *generator) buildRIP() {
	for _, r := range g.net.Routers {
		rip := &config.RIP{Version: 2}
		rip.Networks = g.classfulNetworks(r)
		if r.Role == "border" {
			rip.Redistribute = append(rip.Redistribute, "static")
		}
		r.Config.RIP = rip
	}
}

// classfulNetworks returns the distinct classful networks covering the
// router's interfaces — the implicit-classful behavior the paper calls out
// as the reason the IP mapping must be class preserving.
func (g *generator) classfulNetworks(r *Router) []uint32 {
	seen := make(map[uint32]bool)
	var nets []uint32
	for _, ifc := range r.Config.Interfaces {
		if !ifc.HasAddress {
			continue
		}
		net := ifc.Address.Addr & config.ClassfulMask(ifc.Address.Addr)
		if !seen[net] {
			seen[net] = true
			nets = append(nets, net)
		}
	}
	return nets
}

// buildBGP configures iBGP on core/border/agg routers (full mesh over
// loopbacks) and the eBGP peerings on the borders with per-peer policy
// references. The policy objects themselves are created in buildPolicy.
func (g *generator) buildBGP() {
	var speakers []*Router
	for _, r := range g.net.Routers {
		if r.Role == "core" || r.Role == "border" || (r.Role == "agg" && g.p.Kind == Backbone) {
			speakers = append(speakers, r)
		}
	}
	if g.p.Kind == Enterprise && len(speakers) == 0 {
		// Small enterprises: BGP only on the border.
		for _, r := range g.net.Routers {
			if r.Role == "border" {
				speakers = append(speakers, r)
			}
		}
	}
	// Large meshes use route reflection, as production networks do: a few
	// core routers reflect for every other speaker. This also gives the
	// dataset its big-config tail — a reflector's configuration carries a
	// neighbor block for every client.
	var reflectors []*Router
	if len(speakers) > 40 {
		for _, r := range speakers {
			if r.Role == "core" {
				reflectors = append(reflectors, r)
			}
			if len(reflectors) == 4 {
				break
			}
		}
	}
	isReflector := func(r *Router) bool {
		for _, rr := range reflectors {
			if rr == r {
				return true
			}
		}
		return false
	}
	for _, r := range speakers {
		b := &config.BGP{ASN: g.net.ASN, NoSynchronize: true, NoAutoSummary: true}
		if lo := r.Config.Interface("Loopback0"); lo != nil {
			b.RouterID = lo.Address.Addr
			b.HasRouterID = true
		}
		// Advertise the network's blocks from the borders.
		if r.Role == "border" {
			for _, blk := range g.net.Blocks {
				if blk.Addr>>24 == 10 {
					continue // private space is not advertised
				}
				b.Networks = append(b.Networks, config.AddrMask{
					Addr: blk.Addr, Mask: config.LenToMask(blk.Len),
				})
			}
			b.Redistribute = append(b.Redistribute, "static")
		}
		// iBGP over loopbacks: full mesh for small networks, reflector
		// hub-and-spoke for large ones.
		for _, other := range speakers {
			if other == r {
				continue
			}
			if len(reflectors) > 0 && !isReflector(r) && !isReflector(other) {
				continue
			}
			lo := other.Config.Interface("Loopback0")
			if lo == nil {
				continue
			}
			b.Neighbors = append(b.Neighbors, &config.BGPNeighbor{
				Addr: lo.Address.Addr, RemoteAS: g.net.ASN,
				UpdateSource: "Loopback0", NextHopSelf: r.Role == "border",
				SendComm: true,
				RRClient: isReflector(r) && !isReflector(other),
			})
		}
		r.Config.BGP = b
	}
	// eBGP sessions with policy references.
	for _, peer := range g.net.Peers {
		r := g.net.Routers[peer.Router]
		if r.Config.BGP == nil {
			continue
		}
		name := g.peerNames[peer.PeerASN]
		r.Config.BGP.Neighbors = append(r.Config.BGP.Neighbors, &config.BGPNeighbor{
			Addr: peer.PeerIP, RemoteAS: peer.PeerASN,
			Description: fmt.Sprintf("%s transit", name),
			SendComm:    true,
			RouteMapIn:  fmt.Sprintf("%s-import", strings.ToUpper(name)),
			RouteMapOut: fmt.Sprintf("%s-export", strings.ToUpper(name)),
		})
	}
}

// buildStatics adds a handful of static routes (dest within own blocks,
// next hop an infrastructure address) plus defaults on enterprise borders.
func (g *generator) buildStatics() {
	for _, r := range g.net.Routers {
		if r.Role != "border" {
			continue
		}
		for _, blk := range g.net.Blocks {
			r.Config.StaticRoutes = append(r.Config.StaticRoutes, &config.StaticRoute{
				Dest: blk.Addr, Mask: config.LenToMask(blk.Len), NextHopIface: "Null0",
			})
		}
		if g.p.Kind == Enterprise && len(g.net.Peers) > 0 {
			r.Config.StaticRoutes = append(r.Config.StaticRoutes, &config.StaticRoute{
				Dest: 0, Mask: 0, NextHop: g.net.Peers[0].PeerIP,
			})
		}
	}
}
