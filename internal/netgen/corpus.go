package netgen

import (
	"fmt"
	"math/rand"

	"confanon/internal/config"
)

// CorpusParams controls multi-AS corpus generation: a population of
// networks (one autonomous system each) interconnected by eBGP, sized to
// a total router budget. It is the scaled-up stand-in for the paper's
// full dataset — 31 networks, 7,655 routers — and the input shape the
// confbench harness measures privacy and utility over.
type CorpusParams struct {
	Seed int64
	// Routers is the total router budget across all networks. 0 selects
	// a paper-scale default of 200.
	Routers int
	// Networks is the number of autonomous systems. 0 derives a count
	// from the router budget (roughly one network per 50 routers,
	// between 2 and 64).
	Networks int
}

// InterASLink is one ground-truth eBGP interconnection between two
// generated networks: a /30 with one end in each AS and a BGP session
// configured on both sides.
type InterASLink struct {
	A, B             int // network indices
	RouterA, RouterB int // router indices within each network
	AddrA, AddrB     uint32
}

// Corpus is a generated multi-AS population. Each Network keeps its own
// identity, address plan, and anonymization salt — the paper's per-owner
// trust model — while the Links tie their border routers together into
// one internet-like topology.
type Corpus struct {
	Params   CorpusParams
	Networks []*Network
	Links    []InterASLink
}

// TotalRouters counts routers across the corpus.
func (c *Corpus) TotalRouters() int {
	total := 0
	for _, n := range c.Networks {
		total += len(n.Routers)
	}
	return total
}

// TotalLines counts rendered configuration lines across the corpus.
func (c *Corpus) TotalLines() int {
	total := 0
	for _, n := range c.Networks {
		total += n.TotalLines()
	}
	return total
}

// interASBlock is the address pool inter-AS link /30s are carved from.
// It is disjoint from publicBlocks so corpus-level allocations can never
// collide with any network's own address plan.
var interASBlock = config.Prefix{Addr: ip(204, 245, 0, 0), Len: 16}

// GenerateCorpus builds a deterministic multi-AS corpus: Networks ASes
// whose sizes follow a heavy-tailed split of the router budget (the
// paper's dataset mixes 8-router enterprises with thousand-router
// carriers), per-network kinds and regexp knobs assigned at the paper's
// §4.4/§6.3 prevalence, and a connected inter-AS eBGP graph over the
// networks' border routers.
func GenerateCorpus(p CorpusParams) *Corpus {
	if p.Routers == 0 {
		p.Routers = 200
	}
	if p.Networks == 0 {
		p.Networks = p.Routers / 50
		if p.Networks < 2 {
			p.Networks = 2
		}
		if p.Networks > 64 {
			p.Networks = 64
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Corpus{Params: p}

	// Heavy-tailed size split: exponential weights normalized to the
	// budget, floored so every network is big enough to have all roles.
	const minRouters = 6
	weights := make([]float64, p.Networks)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.35 + rng.ExpFloat64()
		sum += weights[i]
	}
	sizes := make([]int, p.Networks)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(p.Routers) * weights[i] / sum)
		if sizes[i] < minRouters {
			sizes[i] = minRouters
		}
		assigned += sizes[i]
	}
	// Absorb rounding drift in the largest network (keeping the floor).
	biggest := 0
	for i, s := range sizes {
		if s > sizes[biggest] {
			biggest = i
		}
	}
	if sizes[biggest]+p.Routers-assigned >= minRouters {
		sizes[biggest] += p.Routers - assigned
	}

	for i := 0; i < p.Networks; i++ {
		name := companyPool[i%len(companyPool)]
		if i >= len(companyPool) {
			name = fmt.Sprintf("%s%d", name, i/len(companyPool)+1)
		}
		kind := Backbone
		if i%2 == 1 {
			kind = Enterprise
		}
		n := Generate(Params{
			Seed:    rng.Int63(),
			Name:    name,
			Kind:    kind,
			Routers: sizes[i],
			// Knob prevalence per the paper's population: alternation in
			// 10/31 networks, public ranges 2/31, private ranges 3/31,
			// community regexps 5/31, community ranges 2/31,
			// compartmentalization 10/31.
			UseASPathAlternation: i%3 == 0,
			UsePublicASNRanges:   i%16 == 5,
			UsePrivateASNRanges:  i%10 == 7,
			UseCommunityRegexps:  i%6 == 2,
			UseCommunityRanges:   i%16 == 8,
			Compartmentalized:    i%3 == 1,
		})
		c.Networks = append(c.Networks, n)
	}

	c.interconnect(rng)
	return c
}

// interconnect wires the networks into one connected eBGP graph: a
// random spanning tree plus extra chords, each link a /30 from the
// corpus pool terminating on a border router of each side.
func (g *Corpus) interconnect(rng *rand.Rand) {
	cursor := interASBlock.Addr
	nextP2P := func() (uint32, uint32) {
		base := cursor
		cursor += 4
		return base + 1, base + 2
	}
	link := func(ai, bi int) {
		a, b := g.Networks[ai], g.Networks[bi]
		// Same-ASN pairs would form iBGP, not an inter-AS link; the
		// random 2000..32000 ASN draw makes this rare — just skip.
		if a.ASN == b.ASN {
			return
		}
		ra := borderRouter(a, rng)
		rb := borderRouter(b, rng)
		if ra == nil || rb == nil || ra.Config.BGP == nil || rb.Config.BGP == nil {
			return
		}
		addrA, addrB := nextP2P()
		attachInterAS(ra.Config, rng, addrA, b.Params.Name, b.ASN)
		attachInterAS(rb.Config, rng, addrB, a.Params.Name, a.ASN)
		ra.Config.BGP.Neighbors = append(ra.Config.BGP.Neighbors, &config.BGPNeighbor{
			Addr: addrB, RemoteAS: b.ASN,
			Description: fmt.Sprintf("interconnect %s AS%d", b.Params.Name, b.ASN),
			SendComm:    true,
		})
		rb.Config.BGP.Neighbors = append(rb.Config.BGP.Neighbors, &config.BGPNeighbor{
			Addr: addrA, RemoteAS: a.ASN,
			Description: fmt.Sprintf("interconnect %s AS%d", a.Params.Name, a.ASN),
			SendComm:    true,
		})
		a.Peers = append(a.Peers, EBGPPeer{Router: ra.Index, PeerASN: b.ASN, PeerIP: addrB})
		b.Peers = append(b.Peers, EBGPPeer{Router: rb.Index, PeerASN: a.ASN, PeerIP: addrA})
		g.Links = append(g.Links, InterASLink{
			A: ai, B: bi, RouterA: ra.Index, RouterB: rb.Index, AddrA: addrA, AddrB: addrB,
		})
	}
	// Spanning tree keeps the corpus connected; chords add the peering
	// variance that makes per-network session counts distinguishable.
	for i := 1; i < len(g.Networks); i++ {
		link(i, rng.Intn(i))
	}
	extra := len(g.Networks) / 2
	for i := 0; i < extra; i++ {
		ai := rng.Intn(len(g.Networks))
		bi := rng.Intn(len(g.Networks))
		if ai != bi {
			link(ai, bi)
		}
	}
}

// borderRouter picks one of a network's border routers (all networks
// generate at least one).
func borderRouter(n *Network, rng *rand.Rand) *Router {
	var borders []*Router
	for _, r := range n.Routers {
		if r.Role == "border" {
			borders = append(borders, r)
		}
	}
	if len(borders) == 0 {
		return nil
	}
	return borders[rng.Intn(len(borders))]
}

// attachInterAS adds the point-to-point interface carrying one end of an
// inter-AS link, in the router's dialect style (mirrors
// generator.ifaceName, which is unavailable once Generate returns).
func attachInterAS(c *config.Config, rng *rand.Rand, addr uint32, peerName string, peerASN uint32) {
	n := 0
	for _, ifc := range c.Interfaces {
		if ifc.Name != "Loopback0" {
			n++
		}
	}
	var name string
	switch c.Dialect.InterfaceStyle {
	case 0:
		name = fmt.Sprintf("Serial%d", n)
	case 1:
		name = fmt.Sprintf("Serial0/%d", n)
	default:
		name = fmt.Sprintf("POS0/%d/0.%d", n, 1+rng.Intn(9))
	}
	c.Interfaces = append(c.Interfaces, &config.Interface{
		Name:        name,
		Description: fmt.Sprintf("interconnect %s AS%d", peerName, peerASN),
		Encap:       "hdlc",
		Address:     config.AddrMask{Addr: addr, Mask: config.LenToMask(30)},
		HasAddress:  true,
	})
}

// IdentityTokens returns the identity-bearing strings of network i's
// configurations, including the names of the corpus networks it
// interconnects with (their names appear in i's link descriptions).
func (c *Corpus) IdentityTokens(i int) []string {
	tokens := c.Networks[i].IdentityTokens()
	seen := make(map[string]bool)
	for _, l := range c.Links {
		other := -1
		if l.A == i {
			other = l.B
		} else if l.B == i {
			other = l.A
		}
		if other >= 0 && !seen[c.Networks[other].Params.Name] {
			seen[c.Networks[other].Params.Name] = true
			tokens = append(tokens, c.Networks[other].Params.Name)
		}
	}
	return tokens
}

// IdentityTokens returns the identity-bearing strings generation planted
// in this network's configurations — the values anonymization must
// remove. Benchmarks grep anonymized output for them to score identity
// leakage.
func (n *Network) IdentityTokens() []string {
	tokens := []string{n.Params.Name, n.Params.Name + ".net", "noc@" + n.Params.Name}
	seen := make(map[uint32]bool)
	for _, p := range n.Peers {
		if seen[p.PeerASN] {
			continue
		}
		seen[p.PeerASN] = true
		for _, isp := range isp2004 {
			if isp.ASN == p.PeerASN {
				tokens = append(tokens, isp.Name)
			}
		}
	}
	return tokens
}
