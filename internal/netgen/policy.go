package netgen

import (
	"fmt"
	"strings"

	"confanon/internal/config"
)

// buildPolicy creates the routing-policy objects referenced by the eBGP
// sessions: per-peer import/export route maps, community lists, AS-path
// access lists (with regexps per the network's knobs), and prefix ACLs.
func (g *generator) buildPolicy() {
	for _, r := range g.net.Routers {
		if r.Config.BGP == nil {
			continue
		}
		listNum := 50
		commNum := 100
		aclNum := 140
		for _, nb := range r.Config.BGP.Neighbors {
			if nb.RouteMapIn == "" {
				continue
			}
			peerASN := nb.RemoteAS
			peerName := strings.TrimSuffix(nb.RouteMapIn, "-import")

			// AS-path access list guarding the import.
			al := &config.ASPathList{Number: listNum}
			al.Entries = append(al.Entries, config.ASPathEntry{
				Action: "deny", Regex: g.asPathRegex(peerASN),
			})
			al.Entries = append(al.Entries, config.ASPathEntry{
				Action: "permit", Regex: ".*",
			})
			r.Config.ASPathLists = append(r.Config.ASPathLists, al)

			// Community list classifying the peer's route tags.
			cl := &config.CommunityList{Number: commNum}
			cl.Entries = append(cl.Entries, config.CommunityEntry{
				Action: "permit", Expr: g.communityExpr(peerASN),
			})
			r.Config.CommunityLists = append(r.Config.CommunityLists, cl)

			// Prefix ACL for the export filter: our own blocks.
			acl := &config.AccessList{Number: aclNum}
			for _, blk := range g.net.Blocks {
				acl.Entries = append(acl.Entries, config.ACLEntry{
					Action: "permit", Proto: "ip",
					Src: blk.Addr, SrcWild: ^config.LenToMask(blk.Len),
					DstAny: true, HasDst: true,
				})
			}
			r.Config.AccessLists = append(r.Config.AccessLists, acl)

			// Import map: drop bogus paths and tagged routes, prefer the rest.
			imp := &config.RouteMap{Name: nb.RouteMapIn}
			imp.Clauses = append(imp.Clauses, &config.RouteMapClause{
				Action: "deny", Seq: 10,
				Matches: []config.Clause{
					{Type: "as-path", Args: []string{fmt.Sprint(listNum)}},
					{Type: "community", Args: []string{fmt.Sprint(commNum)}},
				},
			})
			imp.Clauses = append(imp.Clauses, &config.RouteMapClause{
				Action: "permit", Seq: 20,
				Sets: []config.Clause{
					{Type: "local-preference", Args: []string{fmt.Sprint(80 + g.rng.Intn(40))}},
					{Type: "community", Args: []string{
						fmt.Sprintf("%d:%d", g.net.ASN, 1000+g.rng.Intn(9000)), "additive"}},
				},
			})
			r.Config.RouteMaps = append(r.Config.RouteMaps, imp)

			// Export map: only our blocks, tagged for the peer.
			exp := &config.RouteMap{Name: fmt.Sprintf("%s-export", peerName)}
			exp.Clauses = append(exp.Clauses, &config.RouteMapClause{
				Action: "permit", Seq: 10,
				Matches: []config.Clause{{Type: "ip address", Args: []string{fmt.Sprint(aclNum)}}},
				Sets: []config.Clause{{Type: "community", Args: []string{
					fmt.Sprintf("%d:%d", peerASN, 100+g.rng.Intn(900))}}},
			})
			r.Config.RouteMaps = append(r.Config.RouteMaps, exp)

			listNum++
			commNum++
			aclNum++
		}
	}
	if g.p.Compartmentalized {
		g.addCompartmentalization()
	}
}

// asPathRegex builds the AS-path regexp for a peer, exercising the
// network's regexp knobs: plain literal, alternation of literals, or a
// digit range over public or private ASNs.
func (g *generator) asPathRegex(peerASN uint32) string {
	switch {
	case g.p.UsePublicASNRanges && (!g.usedPubRange || g.rng.Float64() < 0.3):
		// A range over a contiguous block of public ASNs, like UUNET's
		// 702-705 ("the use of digit wildcards and ranges ... is quite
		// rare, appearing in two of 31 networks").
		g.usedPubRange = true
		base := peerASN - peerASN%10
		lo, hi := base+1, base+1+uint32(g.rng.Intn(4)+1)
		return fmt.Sprintf("_%d[%d-%d]_", base/10, lo%10, hi%10)
	case g.p.UsePrivateASNRanges && (!g.usedPrivRange || g.rng.Float64() < 0.3):
		// Structure imposed on private ASNs: 645[2-7][0-9].
		g.usedPrivRange = true
		return fmt.Sprintf("_645[2-%d][0-9]_", 2+g.rng.Intn(7))
	case g.p.UseASPathAlternation:
		// Alternation of literal ASNs (common: 10 of 31 networks).
		others := []uint32{1239, 701, 7018, 3356, 2914, 209}
		o1 := others[g.rng.Intn(len(others))]
		o2 := others[g.rng.Intn(len(others))]
		return fmt.Sprintf("(_%d_|_%d_|_%d_)", peerASN, o1, o2)
	default:
		return fmt.Sprintf("_%d_", peerASN)
	}
}

// communityExpr builds a community-list entry: a literal community, a
// regexp with wildcards, or a regexp with a digit range, per the knobs.
func (g *generator) communityExpr(peerASN uint32) string {
	switch {
	case g.p.UseCommunityRanges && (!g.usedCommRange || g.rng.Float64() < 0.4):
		// "701:7[1-5].." — a range plus wildcards (2 of 31 networks).
		g.usedCommRange = true
		return fmt.Sprintf("%d:%d[1-%d]..", peerASN, 5+g.rng.Intn(4), 2+g.rng.Intn(4))
	case g.p.UseCommunityRegexps:
		// Wildcards only (5 of 31 networks use community regexps).
		return fmt.Sprintf("%d:%d...", peerASN, 1+g.rng.Intn(8))
	default:
		return fmt.Sprintf("%d:%d", peerASN, 100+g.rng.Intn(9899))
	}
}

// addCompartmentalization adds the internal-compartmentalization markers
// §6.3 reports in 10 of 31 networks: NAT boundaries and probe-dropping
// ACLs that would defeat insider fingerprinting.
func (g *generator) addCompartmentalization() {
	for _, r := range g.net.Routers {
		if r.Role != "edge" && r.Role != "agg" {
			continue
		}
		if g.rng.Float64() < 0.5 {
			continue
		}
		// Probe-dropping ACL.
		acl := &config.AccessList{Number: 199}
		acl.Entries = append(acl.Entries,
			config.ACLEntry{Action: "deny", Proto: "icmp", SrcAny: true, DstAny: true, HasDst: true, Trailing: "echo"},
			config.ACLEntry{Action: "deny", Proto: "udp", SrcAny: true, DstAny: true, HasDst: true, Trailing: "range 33434 33523"},
			config.ACLEntry{Action: "permit", Proto: "ip", SrcAny: true, DstAny: true, HasDst: true},
		)
		r.Config.AccessLists = append(r.Config.AccessLists, acl)
		// NAT boundary markers on a LAN interface.
		for _, ifc := range r.Config.Interfaces {
			if isLANName(ifc.Name) {
				ifc.Extra = append(ifc.Extra, "ip nat inside", "ip access-group 199 in")
				break
			}
		}
	}
}

// sprinkleComments adds free-text comments until the word fraction reaches
// the network's comment density. Comments carry exactly the identity
// content the anonymizer must strip: company, cities, ISP names, emails,
// phone numbers.
func (g *generator) sprinkleComments() {
	if g.p.CommentDensity <= 0 {
		return
	}
	templates := []string{
		"%s backbone managed by %s engineering",
		"contact noc@%s.net or call 1-800-555-0%d",
		"%s circuit to %s scheduled for upgrade",
		"temporary config for %s migration ticket %d",
		"%s peering with %s see wiki for details",
	}
	// Budget is network-wide so small routers are not forced to carry a
	// whole comment line each; lines land on random routers.
	totalWords := 0
	for _, r := range g.net.Routers {
		totalWords += len(strings.Fields(r.Config.Render()))
	}
	budget := int(g.p.CommentDensity * float64(totalWords))
	for budget >= 4 {
		t := templates[g.rng.Intn(len(templates))]
		city := cityPool[g.rng.Intn(len(cityPool))]
		isp := isp2004[g.rng.Intn(len(isp2004))].Name
		var line string
		switch strings.Count(t, "%") {
		case 2:
			if strings.Contains(t, "%d") {
				line = fmt.Sprintf(t, g.company, 100+g.rng.Intn(900))
			} else {
				line = fmt.Sprintf(t, g.company, isp)
			}
		default:
			line = fmt.Sprintf(t, g.company, city)
		}
		r := g.net.Routers[g.rng.Intn(len(g.net.Routers))]
		r.Config.Comments = append(r.Config.Comments, line)
		budget -= len(strings.Fields(line))
	}
}
