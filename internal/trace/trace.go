// Package trace is the anonymizer's explainability layer: a
// dependency-free span tracer plus a provenance ledger.
//
// The tracer records a hierarchy of spans — corpus → file → stage →
// rule — with monotonic timing, free-form attributes, and a bounded
// per-span event buffer. The ledger records every anonymization
// decision the engine makes: which rule fired, on which line of which
// file, what class of token it handled, and the anonymized replacement
// it produced. The ledger deliberately never records the cleartext
// being replaced: a decision's Out field holds only the value that
// also appears in the anonymized output (or nothing, for a dropped
// line), so a trace file is exactly as safe to share as the output it
// describes.
//
// Design constraints, in order:
//
//   - Hot-path cost. The engine guards every trace call behind a nil
//     check on its tracer pointer, so an untraced run pays a predictable
//     branch and nothing else. A traced run buffers decisions in
//     worker-local slices and publishes them at file boundaries; the
//     tracer's mutex is taken per file, never per token.
//   - Concurrency. StartSpan hands ownership of the span to the calling
//     goroutine; the tracer is touched again only at End/Record/Publish,
//     each a short critical section. Any number of workers may trace
//     into one Tracer.
//   - Rollback. Decisions buffered for a file that fails mid-way are
//     discarded with the file's statistics, so a failed or quarantined
//     file leaves no partial provenance records; its span is still
//     published, marked failed — failures are traced, never dropped.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schema identifies the JSONL trace layout (the first line of every
// trace file carries it).
const Schema = "confanon.trace/v1"

// SpanID identifies one span within a Tracer; zero means "no parent"
// (a root span) or "no owning span" (a decision outside any file span).
type SpanID uint64

// Span kinds, outermost first. KindJob wraps a whole async portal job
// (one KindJob span per submission, with per-file children); the engine
// itself emits the corpus → file → stage → rule hierarchy.
const (
	KindJob    = "job"
	KindCorpus = "corpus"
	KindFile   = "file"
	KindStage  = "stage"
	KindRule   = "rule"
)

// Span statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Decision token classes.
const (
	ClassIP        = "ip"
	ClassASN       = "asn"
	ClassCommunity = "community"
	ClassHashed    = "hashed"
	ClassPassed    = "passed"
	ClassDropped   = "dropped"
)

// MaxSpanEvents bounds one span's event buffer; further events are
// counted in DroppedEvents instead of stored, so a pathological file
// cannot balloon its span.
const MaxSpanEvents = 16

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one timestamped note inside a span (nanoseconds since the
// tracer's epoch, like span start times).
type Event struct {
	AtNs int64  `json:"at_ns"`
	Msg  string `json:"msg"`
}

// Span is one timed node of the trace hierarchy. Between StartSpan and
// End the span is owned by the starting goroutine: SetAttr and AddEvent
// must not be called concurrently or after End.
type Span struct {
	ID            SpanID  `json:"id"`
	Parent        SpanID  `json:"parent,omitempty"`
	Kind          string  `json:"kind"`
	Name          string  `json:"name"`
	StartNs       int64   `json:"start_ns"`
	DurNs         int64   `json:"dur_ns"`
	Status        string  `json:"status"`
	Attrs         []Attr  `json:"attrs,omitempty"`
	Events        []Event `json:"events,omitempty"`
	DroppedEvents int     `json:"dropped_events,omitempty"`
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// AddEvent appends a timestamped note, bounded by MaxSpanEvents.
func (s *Span) AddEvent(atNs int64, msg string) {
	if len(s.Events) >= MaxSpanEvents {
		s.DroppedEvents++
		return
	}
	s.Events = append(s.Events, Event{AtNs: atNs, Msg: msg})
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Decision is one provenance ledger entry: what the engine did to one
// token (or line). Out is the anonymized replacement — the value that
// appears in the output — never the cleartext it replaced; for a
// dropped line Out is empty. Rule is the registry id of the deciding
// rule (best-effort attribution: the last rule that fired on the line
// when the decision was made, or a pseudo-rule id for the basic
// pass-list/hash method and operator-added tokens). Span is the owning
// file span, zero outside any.
type Decision struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Rule  string `json:"rule"`
	Class string `json:"class"`
	Out   string `json:"out,omitempty"`
	Span  SpanID `json:"span,omitempty"`
}

// Tracer collects spans and ledger entries for one run. Safe for
// concurrent use by any number of workers. The zero value is not
// usable; call NewTracer.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu     sync.Mutex
	spans  []*Span
	ledger []Decision
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Now returns nanoseconds since the tracer's epoch, read from the
// monotonic clock.
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// StartSpan opens a span under parent (zero = root) and hands it to the
// caller; the span is published when End is called on it. The returned
// span's ID is final immediately, so children may be parented under it
// before it ends.
func (t *Tracer) StartSpan(kind, name string, parent SpanID) *Span {
	return &Span{
		ID:      SpanID(t.nextID.Add(1)),
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		StartNs: t.Now(),
	}
}

// End closes a span with the given status, stamps its duration, and
// publishes it. A span must be ended exactly once.
func (t *Tracer) End(s *Span, status string) {
	s.DurNs = t.Now() - s.StartNs
	if s.DurNs < 0 {
		s.DurNs = 0
	}
	s.Status = status
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// RecordSpan publishes a completed span in one call — used for
// retroactive spans synthesized from already-measured durations (the
// engine times its stages and per-rule wall shares before it knows a
// tracer will want them). Returns the new span's ID so children can be
// recorded under it.
func (t *Tracer) RecordSpan(kind, name string, parent SpanID, startNs, durNs int64, status string, attrs ...Attr) SpanID {
	s := &Span{
		ID:      SpanID(t.nextID.Add(1)),
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		StartNs: startNs,
		DurNs:   durNs,
		Status:  status,
		Attrs:   attrs,
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s.ID
}

// Publish appends a batch of ledger entries. The engine calls it once
// per completed file with that file's buffered decisions; a file rolled
// back before its Publish leaves no trace in the ledger. The batch is
// copied, so callers may reuse the slice.
func (t *Tracer) Publish(ds []Decision) {
	if len(ds) == 0 {
		return
	}
	t.mu.Lock()
	t.ledger = append(t.ledger, ds...)
	t.mu.Unlock()
}

// Spans returns the published spans sorted by ID (start order).
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ledger returns a copy of the provenance ledger in publish order.
func (t *Tracer) Ledger() []Decision {
	t.mu.Lock()
	out := make([]Decision, len(t.ledger))
	copy(out, t.ledger)
	t.mu.Unlock()
	return out
}

// JSONL record envelopes: the first line of a trace file is a header
// carrying the schema; every following line is a span or a decision
// tagged by its "t" field.
type header struct {
	Schema string `json:"schema"`
}

type spanRecord struct {
	T string `json:"t"`
	*Span
}

type decisionRecord struct {
	T string `json:"t"`
	Decision
}

// WriteJSONL renders the trace as confanon.trace/v1 JSONL: the schema
// header, then every span sorted by ID, then every ledger entry in
// publish order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: Schema}); err != nil {
		return err
	}
	for _, s := range t.Spans() {
		if err := enc.Encode(spanRecord{T: "span", Span: s}); err != nil {
			return err
		}
	}
	for _, d := range t.Ledger() {
		if err := enc.Encode(decisionRecord{T: "decision", Decision: d}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// File is a parsed trace: the reader-side counterpart of a Tracer.
type File struct {
	Schema string
	Spans  []*Span
	Ledger []Decision

	byID map[SpanID]*Span
}

// ErrSchema reports a trace file whose header does not carry the
// expected schema.
var ErrSchema = errors.New("trace: not a " + Schema + " file")

// ReadJSONL parses a confanon.trace/v1 JSONL stream. Records of unknown
// type are skipped (forward compatibility); a missing or foreign header
// returns ErrSchema.
func ReadJSONL(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	f := &File{byID: make(map[SpanID]*Span)}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(line, &h); err != nil || h.Schema != Schema {
				return nil, ErrSchema
			}
			f.Schema = h.Schema
			continue
		}
		var tag struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			return nil, fmt.Errorf("trace: unparsable record: %w", err)
		}
		switch tag.T {
		case "span":
			var rec spanRecord
			rec.Span = &Span{}
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("trace: bad span record: %w", err)
			}
			f.Spans = append(f.Spans, rec.Span)
			f.byID[rec.Span.ID] = rec.Span
		case "decision":
			var rec decisionRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("trace: bad decision record: %w", err)
			}
			f.Ledger = append(f.Ledger, rec.Decision)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, ErrSchema
	}
	return f, nil
}

// Span returns the span with the given ID (nil when absent).
func (f *File) Span(id SpanID) *Span {
	return f.byID[id]
}

// Explain returns the ledger entries for one line of one file, in
// publish order — the decision chain the -explain query prints.
func (f *File) Explain(file string, line int) []Decision {
	var out []Decision
	for _, d := range f.Ledger {
		if d.File == file && d.Line == line {
			out = append(out, d)
		}
	}
	return out
}

// FileDecisions returns every ledger entry for one file, in publish
// order.
func (f *File) FileDecisions(file string) []Decision {
	var out []Decision
	for _, d := range f.Ledger {
		if d.File == file {
			out = append(out, d)
		}
	}
	return out
}
