package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSpanHierarchyRoundTrip(t *testing.T) {
	tr := NewTracer()
	corpus := tr.StartSpan(KindCorpus, "corpus", 0)
	file := tr.StartSpan(KindFile, "r1-confg", corpus.ID)
	file.SetAttr("op", "rewrite")
	stage := tr.RecordSpan(KindStage, "rewrite", file.ID, file.StartNs, 100, StatusOK)
	tr.RecordSpan(KindRule, "I3-bare-addr", stage, file.StartNs, 40, StatusOK, Attr{Key: "hits", Value: "3"})
	tr.End(file, StatusOK)
	tr.End(corpus, StatusOK)
	tr.Publish([]Decision{
		{File: "r1-confg", Line: 4, Rule: "I3-bare-addr", Class: ClassIP, Out: "10.0.0.1", Span: file.ID},
		{File: "r1-confg", Line: 9, Rule: "B0-basic-method", Class: ClassHashed, Out: "xdeadbeef0123", Span: file.ID},
	})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"`+Schema+`"}`) {
		t.Fatalf("missing schema header, got %q", buf.String()[:60])
	}

	f, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(f.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(f.Spans))
	}
	if len(f.Ledger) != 2 {
		t.Fatalf("got %d ledger entries, want 2", len(f.Ledger))
	}
	// The hierarchy survives: every non-root span's parent exists and the
	// chain reaches the corpus span.
	for _, s := range f.Spans {
		if s.Parent == 0 {
			if s.Kind != KindCorpus {
				t.Errorf("root span %d has kind %q, want corpus", s.ID, s.Kind)
			}
			continue
		}
		p := f.Span(s.Parent)
		if p == nil {
			t.Errorf("span %d: parent %d missing", s.ID, s.Parent)
		}
	}
	got := f.Span(file.ID)
	if got == nil || got.Attr("op") != "rewrite" || got.Status != StatusOK {
		t.Errorf("file span did not round-trip: %+v", got)
	}
}

func TestExplainFiltersByFileAndLine(t *testing.T) {
	tr := NewTracer()
	tr.Publish([]Decision{
		{File: "a", Line: 1, Rule: "r1", Class: ClassIP, Out: "10.0.0.1"},
		{File: "a", Line: 2, Rule: "r2", Class: ClassHashed, Out: "xabc"},
		{File: "b", Line: 1, Rule: "r3", Class: ClassASN, Out: "7018"},
		{File: "a", Line: 1, Rule: "r4", Class: ClassPassed, Out: "interface"},
	})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds := f.Explain("a", 1)
	if len(ds) != 2 || ds[0].Rule != "r1" || ds[1].Rule != "r4" {
		t.Fatalf("Explain(a,1) = %+v, want r1 then r4", ds)
	}
	if got := f.FileDecisions("b"); len(got) != 1 || got[0].Rule != "r3" {
		t.Fatalf("FileDecisions(b) = %+v", got)
	}
	if got := f.Explain("a", 99); got != nil {
		t.Fatalf("Explain(a,99) = %+v, want nil", got)
	}
}

func TestEventBufferBounded(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan(KindFile, "f", 0)
	for i := 0; i < MaxSpanEvents+5; i++ {
		s.AddEvent(tr.Now(), fmt.Sprintf("event %d", i))
	}
	tr.End(s, StatusFailed)
	if len(s.Events) != MaxSpanEvents {
		t.Fatalf("got %d events, want %d", len(s.Events), MaxSpanEvents)
	}
	if s.DroppedEvents != 5 {
		t.Fatalf("got %d dropped, want 5", s.DroppedEvents)
	}
}

func TestConcurrentWorkers(t *testing.T) {
	tr := NewTracer()
	corpus := tr.StartSpan(KindCorpus, "corpus", 0)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("f-%d-%d", w, i)
				s := tr.StartSpan(KindFile, name, corpus.ID)
				tr.Publish([]Decision{{File: name, Line: 1, Rule: "r", Class: ClassHashed, Out: "x0", Span: s.ID}})
				tr.End(s, StatusOK)
			}
		}(w)
	}
	wg.Wait()
	tr.End(corpus, StatusOK)
	spans := tr.Spans()
	if len(spans) != workers*perWorker+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*perWorker+1)
	}
	// IDs are unique and sorted ascending.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("span IDs not strictly ascending at %d", i)
		}
	}
	if got := len(tr.Ledger()); got != workers*perWorker {
		t.Fatalf("got %d ledger entries, want %d", got, workers*perWorker)
	}
}

func TestReadJSONLRejectsForeignSchema(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"other/v9"}` + "\n")); err != ErrSchema {
		t.Fatalf("foreign schema: got %v, want ErrSchema", err)
	}
	if _, err := ReadJSONL(strings.NewReader("")); err != ErrSchema {
		t.Fatalf("empty input: got %v, want ErrSchema", err)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err != ErrSchema {
		t.Fatalf("non-JSON header: got %v, want ErrSchema", err)
	}
}

func TestUnknownRecordsSkipped(t *testing.T) {
	in := `{"schema":"` + Schema + `"}
{"t":"future-record","x":1}
{"t":"decision","file":"a","line":1,"rule":"r","class":"ip","out":"10.0.0.1"}
`
	f, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Ledger) != 1 || len(f.Spans) != 0 {
		t.Fatalf("got %d ledger / %d spans, want 1 / 0", len(f.Ledger), len(f.Spans))
	}
}
