// Package jobs is the portal's asynchronous job queue: the layer that
// turns "anonymize this corpus" from a synchronous HTTP handler into a
// submission the paper's §7 clearinghouse can accept at carrier scale.
// A bounded worker pool drains a bounded queue; everything past the
// bounds is refused with an explicit retry hint rather than absorbed —
// overload is a first-class answer, not a timeout.
//
// # Crash survivability
//
// A submission is acknowledged only after its job record — spec
// included — is durably on disk (fsynced temp file + rename). Workers
// persist every state transition the same way, and a job's anonymization
// progress is committed file-by-file through the owner's mapping ledger
// (internal/store) by the runner. A killed process therefore loses no
// acknowledged job: on the next start New replays the records directory,
// re-queues every non-terminal job, and the replayed mapping ledger
// guarantees the re-run produces byte-identical output to a process that
// never died. Job records carry the owner's salt and raw files while the
// job is live — the directory is exactly as sensitive as the mapping
// ledgers (0700/0600) and the two belong on the same trust boundary.
//
// # Overload and failure semantics
//
// Submit enforces, in order: drain state (refused while shutting down),
// a per-owner token-bucket submission rate, a per-owner in-flight quota,
// and the global queue capacity. Every refusal carries a Retry-After
// computed from live queue state (depth × average job duration ÷
// workers), so clients back off proportionally to the actual backlog.
// Running jobs are cancellable (Cancel) and bounded (Config.JobTimeout);
// both thread through the context the runner receives. Drain stops
// intake, lets running jobs finish inside the caller's deadline, then
// cancels the stragglers — whose committed progress is already durable
// and whose records stay resumable — so a SIGTERM exit loses nothing.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"confanon/internal/metrics"
	"confanon/internal/retry"
	"confanon/internal/trace"
)

// RecordSchema identifies the on-disk job record layout.
const RecordSchema = "confanon.job/v1"

// State is a job's lifecycle position.
type State string

// Job states. Queued, Running and Interrupted survive a restart (their
// records keep the spec and are re-queued by New); Done, Failed and
// Cancelled are terminal and their records drop the spec.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether a state is final for this process. An
// interrupted job is terminal here but resumable by the next process.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Spec is what a job does: anonymize Files under Salt for Owner. Owner
// is an opaque per-owner key (the portal passes the salt digest) used
// for quotas and rate limits — never the salt itself.
type Spec struct {
	Owner string
	Label string
	Salt  []byte
	Files map[string]string
	// RulePacks names the admin-registered rule packs the job's
	// anonymization must load, in merge order. The queue persists the
	// names (not the packs): a resumed job re-resolves them against the
	// allowlist of the process that resumes it.
	RulePacks []string
}

// Progress is a job's live file accounting.
type Progress struct {
	FilesTotal       int `json:"files_total"`
	FilesDone        int `json:"files_done"`
	FilesFailed      int `json:"files_failed"`
	FilesQuarantined int `json:"files_quarantined"`
}

// Result is what a successful runner invocation produced. Problems
// non-empty means the corpus was processed but is unpublishable
// (fail-closed: the job is marked failed and nothing was stored).
type Result struct {
	DatasetID   string
	OwnerToken  string
	Problems    []string
	Progress    Progress
	FileRetries int
}

// Callbacks are the hooks a runner reports through while it works.
type Callbacks struct {
	// Progress publishes a progress snapshot (may be nil).
	Progress func(Progress)
	// Span is the job's root span, nil when no tracer is wired; runners
	// hang per-file child spans off it via Tracer.
	Span   *trace.Span
	Tracer *trace.Tracer
}

// Runner executes one job. The context carries cancellation (Cancel,
// drain, shutdown) and the per-job timeout; a runner must return
// promptly once it is done. Returning an error means the run did not
// complete (the queue classifies cancellation, timeout, and interruption
// from the context); returning a Result with Problems means it completed
// but fail-closed gating withheld publication.
type Runner func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error)

// Config bounds the queue. Zero values pick conservative defaults.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// Capacity caps the number of queued (not yet running) jobs; beyond
	// it Submit refuses with reason "queue_full" (default 64).
	Capacity int
	// PerOwnerInFlight caps one owner's queued+running jobs (0 = no cap).
	PerOwnerInFlight int
	// OwnerRatePerMin is a per-owner token-bucket submission rate in
	// jobs per minute, with a bucket one minute deep (0 = no limit).
	OwnerRatePerMin float64
	// JobTimeout bounds one job's run (0 = none); an expired job is
	// failed with the deadline error.
	JobTimeout time.Duration
	// EstimatedJobSeconds seeds the Retry-After math before any job has
	// completed (default 1s). Live completions refine it via EWMA.
	EstimatedJobSeconds float64
	// Dir is the job-record directory; "" disables persistence (jobs die
	// with the process). Holds salts and raw files while jobs are live —
	// as sensitive as the mapping ledgers.
	Dir string
	// MaxTerminal caps how many finished jobs stay queryable; the oldest
	// are evicted, records included (default 1024).
	MaxTerminal int
	// Metrics, when set, registers the queue's instruments.
	Metrics *metrics.Registry
	// Tracer, when set, records one KindJob span per job; runners attach
	// per-file children.
	Tracer *trace.Tracer
}

func (c *Config) workers() int     { return maxInt(1, c.Workers, 2) }
func (c *Config) capacity() int    { return maxInt(1, c.Capacity, 64) }
func (c *Config) maxTerminal() int { return maxInt(1, c.MaxTerminal, 1024) }
func (c *Config) estSeconds() float64 {
	if c.EstimatedJobSeconds > 0 {
		return c.EstimatedJobSeconds
	}
	return 1
}

// maxInt returns set if >= floor, else def (both floor and the "unset"
// zero route to def).
func maxInt(floor, set, def int) int {
	if set >= floor {
		return set
	}
	return def
}

// OverloadError is Submit's refusal: why, and when retrying is worth it.
// The portal maps Reason "draining" to 503 and the rest to 429, with
// RetryAfter in the Retry-After header either way.
type OverloadError struct {
	Reason     string // "queue_full", "owner_quota", "owner_rate", "draining"
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("jobs: %s (retry after %s)", e.Reason, e.RetryAfter.Round(time.Second))
}

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("jobs: no such job")

// Snapshot is a point-in-time copy of one job's externally visible
// state. Token authenticates status queries and cancellation; the portal
// compares it in constant time and never serializes it back out.
type Snapshot struct {
	ID          string
	Token       string
	Owner       string
	Label       string
	State       State
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
	Progress    Progress
	Attempts    int
	FileRetries int
	Err         string
	Problems    []string
	DatasetID   string
	OwnerToken  string
}

// job is the internal mutable record; every field is guarded by Queue.mu.
type job struct {
	Snapshot
	spec            Spec
	cancel          context.CancelFunc
	cancelRequested bool
}

type ownerState struct {
	inflight int
	tokens   float64
	last     time.Time
}

type queueMetrics struct {
	submitted *metrics.Counter
	rejected  *metrics.CounterVec
	finished  *metrics.CounterVec
	depth     *metrics.Gauge
	running   *metrics.Gauge
	wait      *metrics.Histogram
	run       *metrics.Histogram
	retries   *metrics.Counter
	resumed   *metrics.Counter
}

func newQueueMetrics(reg *metrics.Registry) *queueMetrics {
	if reg == nil {
		return nil
	}
	buckets := []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}
	return &queueMetrics{
		submitted: reg.Counter("confanon_jobs_submitted_total", "jobs accepted by Submit"),
		rejected: reg.CounterVec("confanon_jobs_rejected_total",
			"submissions refused, by reason", "reason"),
		finished: reg.CounterVec("confanon_jobs_finished_total",
			"jobs reaching a terminal state, by state", "state"),
		depth:   reg.Gauge("confanon_jobs_queue_depth", "jobs queued and not yet running"),
		running: reg.Gauge("confanon_jobs_running", "jobs currently executing"),
		wait: reg.Histogram("confanon_jobs_wait_seconds",
			"queue wait from submission to start", buckets...),
		run: reg.Histogram("confanon_jobs_run_seconds",
			"job execution time", buckets...),
		retries: reg.Counter("confanon_jobs_file_retries_total",
			"per-file retry attempts across all jobs"),
		resumed: reg.Counter("confanon_jobs_resumed_total",
			"persisted jobs re-queued at startup"),
	}
}

// Queue is the bounded async job queue. Safe for concurrent use.
type Queue struct {
	cfg Config
	run Runner

	mu       sync.Mutex
	jobs     map[string]*job
	owners   map[string]*ownerState
	terminal []string // terminal job ids, oldest first (eviction order)
	queued   int
	active   int
	draining bool
	closed   bool
	avgRun   float64 // EWMA of completed job seconds

	loadProblems []string
	resumed      int

	pending    chan string
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once

	m *queueMetrics
}

// New builds the queue, replays the record directory (re-queuing every
// job that was queued, running, or interrupted when the previous process
// died), and starts the worker pool. Records that cannot be parsed are
// renamed aside with a ".corrupt" suffix and reported via LoadProblems —
// a damaged job must not brick the queue that thousands of healthy jobs
// depend on.
func New(cfg Config, run Runner) (*Queue, error) {
	if run == nil {
		return nil, errors.New("jobs: nil runner")
	}
	q := &Queue{
		cfg:    cfg,
		run:    run,
		jobs:   make(map[string]*job),
		owners: make(map[string]*ownerState),
		avgRun: cfg.estSeconds(),
		m:      newQueueMetrics(cfg.Metrics),
	}
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())

	var resumable []*job
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
			return nil, err
		}
		var err error
		if resumable, err = q.load(); err != nil {
			return nil, err
		}
	}
	// The channel is sized past Capacity so cancelled-but-undrained
	// entries (tombstones) and the resumed backlog never block Submit;
	// the real bound is the queued counter.
	q.pending = make(chan string, 2*cfg.capacity()+len(resumable)+16)
	for _, j := range resumable {
		q.jobs[j.ID] = j
		q.owner(j.Owner).inflight++
		q.queued++
		q.pending <- j.ID
		q.resumed++
		if q.m != nil {
			q.m.resumed.Inc()
			q.m.depth.Add(1)
		}
	}
	for i := 0; i < cfg.workers(); i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// Resumed reports how many persisted jobs New re-queued.
func (q *Queue) Resumed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.resumed
}

// LoadProblems lists the job records New had to set aside as corrupt.
func (q *Queue) LoadProblems() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.loadProblems...)
}

// Depth reports the queued (not yet running) job count.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// Running reports the executing job count.
func (q *Queue) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active
}

// Draining reports whether Drain has begun (intake refused).
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// owner returns (creating) the per-owner bookkeeping. Called with mu held.
func (q *Queue) owner(key string) *ownerState {
	o := q.owners[key]
	if o == nil {
		o = &ownerState{tokens: q.burst(), last: time.Now()}
		q.owners[key] = o
	}
	return o
}

func (q *Queue) burst() float64 {
	if q.cfg.OwnerRatePerMin <= 0 {
		return 0
	}
	if q.cfg.OwnerRatePerMin < 1 {
		return 1
	}
	return q.cfg.OwnerRatePerMin
}

// retryAfterLocked estimates how long a refused client should wait: the
// backlog ahead of it, spread over the worker pool, at the average job
// duration. Clamped to [1s, 5m]. Called with mu held.
func (q *Queue) retryAfterLocked(ahead int) time.Duration {
	secs := float64(ahead+1) * q.avgRun / float64(q.cfg.workers())
	d := time.Duration(secs * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

func (q *Queue) reject(reason string, after time.Duration) error {
	if q.m != nil {
		q.m.rejected.With(reason).Inc()
	}
	return &OverloadError{Reason: reason, RetryAfter: after}
}

// Submit validates, persists, and enqueues one job. The returned
// Snapshot carries the job id and its secret token; the job is durably
// recorded before Submit returns, so an acknowledged submission survives
// any subsequent crash. Refusals are *OverloadError.
func (q *Queue) Submit(spec Spec) (Snapshot, error) {
	if spec.Owner == "" {
		return Snapshot{}, errors.New("jobs: spec owner required")
	}
	if len(spec.Files) == 0 {
		return Snapshot{}, errors.New("jobs: spec has no files")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining || q.closed {
		return Snapshot{}, q.reject("draining", q.retryAfterLocked(q.queued+q.active))
	}
	o := q.owner(spec.Owner)
	if rate := q.cfg.OwnerRatePerMin; rate > 0 {
		now := time.Now()
		o.tokens += now.Sub(o.last).Minutes() * rate
		if b := q.burst(); o.tokens > b {
			o.tokens = b
		}
		o.last = now
		if o.tokens < 1 {
			wait := time.Duration((1 - o.tokens) / rate * float64(time.Minute))
			if wait < time.Second {
				wait = time.Second
			}
			return Snapshot{}, q.reject("owner_rate", wait)
		}
		o.tokens--
	}
	if max := q.cfg.PerOwnerInFlight; max > 0 && o.inflight >= max {
		return Snapshot{}, q.reject("owner_quota", q.retryAfterLocked(o.inflight))
	}
	if q.queued >= q.cfg.capacity() || len(q.pending) == cap(q.pending) {
		return Snapshot{}, q.reject("queue_full", q.retryAfterLocked(q.queued))
	}

	j := &job{
		Snapshot: Snapshot{
			ID:        randomHex(12),
			Token:     randomHex(16),
			Owner:     spec.Owner,
			Label:     spec.Label,
			State:     StateQueued,
			Submitted: time.Now().UTC(),
			Progress:  Progress{FilesTotal: len(spec.Files)},
		},
		spec: spec,
	}
	if err := q.persistLocked(j); err != nil {
		return Snapshot{}, fmt.Errorf("jobs: persisting submission: %w", err)
	}
	q.jobs[j.ID] = j
	o.inflight++
	q.queued++
	q.pending <- j.ID
	if q.m != nil {
		q.m.submitted.Inc()
		q.m.depth.Add(1)
	}
	return j.Snapshot, nil
}

// Get returns a job's snapshot.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

func (j *job) snapshotLocked() Snapshot {
	s := j.Snapshot
	s.Problems = append([]string(nil), j.Problems...)
	return s
}

// Cancel requests a job's cancellation: a queued job is cancelled
// immediately; a running one has its context cancelled and finalizes as
// cancelled when the runner returns; a terminal job is left as it is
// (idempotent). The returned snapshot reflects the post-call state.
func (q *Queue) Cancel(id string) (Snapshot, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		j.cancelRequested = true
		q.queued--
		if q.m != nil {
			q.m.depth.Add(-1)
		}
		q.finalizeLocked(j, StateCancelled, "cancelled before start", nil)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshotLocked(), nil
}

// worker drains the pending channel until it closes or the queue's base
// context dies.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.baseCtx.Done():
			return
		case id, ok := <-q.pending:
			if !ok {
				return
			}
			q.runOne(id)
		}
	}
}

// runOne executes one dequeued job end to end.
func (q *Queue) runOne(id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StateQueued {
		q.mu.Unlock()
		return // tombstone: cancelled (or evicted) while queued
	}
	if q.draining {
		// Leave it queued on disk: the next process resumes it. The
		// in-memory state stays "queued" — accurate, it never started.
		q.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Started = time.Now().UTC()
	j.Attempts++
	spec := j.spec
	jctx, cancel := context.WithCancel(q.baseCtx)
	if q.cfg.JobTimeout > 0 {
		jctx, cancel = context.WithTimeout(q.baseCtx, q.cfg.JobTimeout)
	}
	j.cancel = cancel
	if err := q.persistLocked(j); err != nil {
		// The record could not be updated; the job still runs — the
		// stale "queued" record merely re-runs it after a crash, which
		// the ledger makes byte-identical anyway.
		q.noteLoadProblem(fmt.Sprintf("job %s: persisting running state: %v", j.ID, err))
	}
	q.queued--
	q.active++
	if q.m != nil {
		q.m.depth.Add(-1)
		q.m.running.Add(1)
		q.m.wait.Observe(j.Started.Sub(j.Submitted).Seconds())
	}
	q.mu.Unlock()
	defer cancel()

	var sp *trace.Span
	if tr := q.cfg.Tracer; tr != nil {
		sp = tr.StartSpan(trace.KindJob, j.ID, 0)
		sp.SetAttr("owner", spec.Owner)
		sp.SetAttr("files", strconv.Itoa(len(spec.Files)))
		if spec.Label != "" {
			sp.SetAttr("label", spec.Label)
		}
	}
	cb := Callbacks{
		Span:   sp,
		Tracer: q.cfg.Tracer,
		Progress: func(p Progress) {
			q.mu.Lock()
			j.Progress = p
			q.mu.Unlock()
		},
	}
	start := time.Now()
	res, err := q.run(jctx, cb, spec)
	elapsed := time.Since(start)

	q.mu.Lock()
	j.cancel = nil
	q.active--
	if q.m != nil {
		q.m.running.Add(-1)
		q.m.run.Observe(elapsed.Seconds())
	}
	switch {
	case err != nil && j.cancelRequested:
		q.finalizeLocked(j, StateCancelled, "cancelled", nil)
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		q.observeRunLocked(elapsed)
		q.finalizeLocked(j, StateFailed, fmt.Sprintf("timed out after %s", q.cfg.JobTimeout), nil)
	case err != nil && errors.Is(err, context.Canceled):
		// Not user-cancelled: the process is draining or shutting down.
		// Committed progress is durable; keep the spec so the next
		// process resumes the job.
		q.finalizeLocked(j, StateInterrupted, "interrupted by shutdown", nil)
	case err != nil:
		q.observeRunLocked(elapsed)
		q.finalizeLocked(j, StateFailed, err.Error(), nil)
	default:
		q.observeRunLocked(elapsed)
		j.Progress = res.Progress
		j.FileRetries = res.FileRetries
		if q.m != nil && res.FileRetries > 0 {
			q.m.retries.Add(int64(res.FileRetries))
		}
		if len(res.Problems) > 0 {
			q.finalizeLocked(j, StateFailed, "corpus not publishable", res.Problems)
		} else {
			j.DatasetID = res.DatasetID
			j.OwnerToken = res.OwnerToken
			q.finalizeLocked(j, StateDone, "", nil)
		}
	}
	state := j.State
	q.mu.Unlock()

	if sp != nil {
		sp.SetAttr("state", string(state))
		status := trace.StatusOK
		if state != StateDone {
			status = trace.StatusFailed
		}
		q.cfg.Tracer.End(sp, status)
	}
}

// observeRunLocked folds one completed run into the EWMA the Retry-After
// math uses. Called with mu held.
func (q *Queue) observeRunLocked(elapsed time.Duration) {
	const alpha = 0.3
	q.avgRun = (1-alpha)*q.avgRun + alpha*elapsed.Seconds()
}

// finalizeLocked moves a job to a terminal state, persists the record
// (spec stripped unless the state is resumable), and updates owner
// accounting and eviction bookkeeping. Called with mu held.
func (q *Queue) finalizeLocked(j *job, state State, errMsg string, problems []string) {
	j.State = state
	j.Finished = time.Now().UTC()
	j.Err = errMsg
	j.Problems = problems
	if state != StateInterrupted {
		j.spec = Spec{} // the salt and raw files have no business outliving the job
	}
	if o := q.owners[j.Owner]; o != nil && o.inflight > 0 {
		o.inflight--
	}
	if q.m != nil {
		q.m.finished.With(string(state)).Inc()
	}
	if err := q.persistLocked(j); err != nil {
		q.noteLoadProblem(fmt.Sprintf("job %s: persisting %s state: %v", j.ID, state, err))
	}
	q.terminal = append(q.terminal, j.ID)
	for len(q.terminal) > q.cfg.maxTerminal() {
		oldest := q.terminal[0]
		q.terminal = q.terminal[1:]
		delete(q.jobs, oldest)
		if q.cfg.Dir != "" {
			_ = os.Remove(q.recordPath(oldest))
		}
	}
}

// noteLoadProblem appends an operational problem for the portal to
// surface in its log. Called with mu held.
func (q *Queue) noteLoadProblem(msg string) {
	q.loadProblems = append(q.loadProblems, msg)
}

// Drain stops intake and winds the pool down: running jobs get until ctx
// expires to finish on their own; stragglers are then cancelled — their
// per-file ledger commits are already durable and their records stay
// resumable. Queued jobs are left persisted for the next process. Drain
// returns once every worker has stopped.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	graceful := true
wait:
	for q.Running() > 0 {
		select {
		case <-ctx.Done():
			graceful = false
			break wait
		case <-tick.C:
		}
	}
	if !graceful {
		q.mu.Lock()
		for _, j := range q.jobs {
			if j.State == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		q.mu.Unlock()
		// Cancelled runners return at their next file boundary; bound the
		// wait so a wedged runner cannot hold the exit hostage forever.
		deadline := time.Now().Add(30 * time.Second)
		for q.Running() > 0 && time.Now().Before(deadline) {
			<-tick.C
		}
	}
	q.stop()
	if !graceful {
		return ctx.Err()
	}
	return nil
}

// Close shuts the queue down without the drain courtesy: the base
// context is cancelled (interrupting running jobs, which finalize as
// interrupted and stay resumable) and the workers are joined. Tests and
// abnormal exits use this; servers should Drain.
func (q *Queue) Close() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.baseCancel()
	q.stop()
}

// stop closes the intake channel exactly once and joins the workers.
func (q *Queue) stop() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		close(q.pending)
	})
	q.wg.Wait()
}

// record is the on-disk job form. Live states keep the spec (salt and
// files — the resume payload); terminal states shed it.
type record struct {
	Schema      string            `json:"schema"`
	ID          string            `json:"id"`
	Token       string            `json:"token"`
	Owner       string            `json:"owner"`
	Label       string            `json:"label,omitempty"`
	State       State             `json:"state"`
	Submitted   time.Time         `json:"submitted"`
	Started     time.Time         `json:"started,omitempty"`
	Finished    time.Time         `json:"finished,omitempty"`
	Progress    Progress          `json:"progress"`
	Attempts    int               `json:"attempts"`
	FileRetries int               `json:"file_retries,omitempty"`
	Err         string            `json:"err,omitempty"`
	Problems    []string          `json:"problems,omitempty"`
	DatasetID   string            `json:"dataset_id,omitempty"`
	OwnerToken  string            `json:"owner_token,omitempty"`
	Salt        []byte            `json:"salt,omitempty"`
	Files       map[string]string `json:"files,omitempty"`
	RulePacks   []string          `json:"rule_packs,omitempty"`
}

func (q *Queue) recordPath(id string) string {
	return filepath.Join(q.cfg.Dir, "job-"+id+".json")
}

// persistLocked writes the job's record atomically (fsynced temp +
// rename, transient-I/O retried). A no-op without a directory. Called
// with mu held — job persistence is control-plane work, never on the
// anonymization hot path.
func (q *Queue) persistLocked(j *job) error {
	if q.cfg.Dir == "" {
		return nil
	}
	rec := record{
		Schema:      RecordSchema,
		ID:          j.ID,
		Token:       j.Token,
		Owner:       j.Owner,
		Label:       j.Label,
		State:       j.State,
		Submitted:   j.Submitted,
		Started:     j.Started,
		Finished:    j.Finished,
		Progress:    j.Progress,
		Attempts:    j.Attempts,
		FileRetries: j.FileRetries,
		Err:         j.Err,
		Problems:    j.Problems,
		DatasetID:   j.DatasetID,
		OwnerToken:  j.OwnerToken,
		Salt:        j.spec.Salt,
		Files:       j.spec.Files,
		RulePacks:   j.spec.RulePacks,
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeFileAtomic(q.recordPath(j.ID), blob, 0o600)
}

// load replays the record directory: terminal jobs go straight into the
// index, resumable ones are returned for re-queuing (oldest submission
// first). Unreadable records are renamed aside, never fatal.
func (q *Queue) load() ([]*job, error) {
	entries, err := os.ReadDir(q.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var resumable []*job
	type done struct {
		j  *job
		at time.Time
	}
	var finished []done
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		path := filepath.Join(q.cfg.Dir, name)
		var blob []byte
		if err := retry.Do(func() (err error) { blob, err = os.ReadFile(path); return }); err != nil {
			return nil, err
		}
		var rec record
		if err := json.Unmarshal(blob, &rec); err != nil || rec.Schema != RecordSchema || rec.ID == "" {
			q.loadProblems = append(q.loadProblems,
				fmt.Sprintf("%s: unreadable job record, set aside", name))
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		j := &job{
			Snapshot: Snapshot{
				ID: rec.ID, Token: rec.Token, Owner: rec.Owner, Label: rec.Label,
				State: rec.State, Submitted: rec.Submitted, Started: rec.Started,
				Finished: rec.Finished, Progress: rec.Progress, Attempts: rec.Attempts,
				FileRetries: rec.FileRetries, Err: rec.Err, Problems: rec.Problems,
				DatasetID: rec.DatasetID, OwnerToken: rec.OwnerToken,
			},
			spec: Spec{Owner: rec.Owner, Label: rec.Label, Salt: rec.Salt, Files: rec.Files, RulePacks: rec.RulePacks},
		}
		switch rec.State {
		case StateDone, StateFailed, StateCancelled:
			finished = append(finished, done{j: j, at: rec.Finished})
		case StateQueued, StateRunning, StateInterrupted:
			if len(rec.Files) == 0 {
				j.State = StateFailed
				j.Err = "job spec lost; cannot resume"
				finished = append(finished, done{j: j, at: rec.Finished})
				continue
			}
			// Back to the start line: the mapping ledger's committed
			// progress makes the re-run byte-identical to an
			// uninterrupted one.
			j.State = StateQueued
			j.Started = time.Time{}
			j.Finished = time.Time{}
			j.Err = ""
			resumable = append(resumable, j)
		default:
			q.loadProblems = append(q.loadProblems,
				fmt.Sprintf("%s: unknown state %q, set aside", name, rec.State))
			_ = os.Rename(path, path+".corrupt")
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].at.Before(finished[k].at) })
	for _, d := range finished {
		q.jobs[d.j.ID] = d.j
		q.terminal = append(q.terminal, d.j.ID)
	}
	sort.Slice(resumable, func(i, k int) bool {
		return resumable[i].Submitted.Before(resumable[k].Submitted)
	})
	return resumable, nil
}

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("jobs: no entropy: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// writeFileAtomic writes data via fsynced temp file + rename so a crash
// mid-write never leaves a torn record (mirrors cmd/confanon's state
// writer; transient failures are retried under the shared policy).
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	return retry.Do(func() error {
		tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
		if err != nil {
			return err
		}
		tmpName := tmp.Name()
		defer os.Remove(tmpName) // no-op once renamed
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Chmod(perm); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmpName, path)
	})
}
