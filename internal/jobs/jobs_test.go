package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"confanon/internal/metrics"
	"confanon/internal/trace"
)

func testSpec(owner string) Spec {
	return Spec{
		Owner: owner,
		Label: "lab",
		Salt:  []byte("salt-" + owner),
		Files: map[string]string{"r1.conf": "hostname r1\n"},
	}
}

// okRunner completes instantly with a dataset id derived from the label.
func okRunner(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
	if cb.Progress != nil {
		cb.Progress(Progress{FilesTotal: len(spec.Files), FilesDone: len(spec.Files)})
	}
	return &Result{
		DatasetID:  "ds-" + spec.Label,
		OwnerToken: "tok-" + spec.Label,
		Progress:   Progress{FilesTotal: len(spec.Files), FilesDone: len(spec.Files)},
	}, nil
}

// gateRunner blocks every job until release is closed, honoring ctx.
func gateRunner(release <-chan struct{}) Runner {
	return func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return okRunner(ctx, cb, spec)
		}
	}
}

func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := q.Get(id); ok && s.State == want {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := q.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, s.State, want)
	return Snapshot{}
}

func TestQueueRunsJobToDone(t *testing.T) {
	q, err := New(Config{Workers: 2, Dir: t.TempDir()}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Token == "" {
		t.Fatalf("submission missing id/token: %+v", snap)
	}
	got := waitState(t, q, snap.ID, StateDone)
	if got.DatasetID != "ds-lab" || got.OwnerToken != "tok-lab" {
		t.Fatalf("result not recorded: %+v", got)
	}
	if got.Progress.FilesDone != 1 {
		t.Fatalf("progress not recorded: %+v", got.Progress)
	}
}

func TestQueueFullRejectsWithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1, Capacity: 1, EstimatedJobSeconds: 10}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// First job occupies the lone worker, second fills the queue.
	if _, err := q.Submit(testSpec("o1")); err != nil {
		t.Fatal(err)
	}
	waitDepthDrain(t, q) // let the worker pick up job 1
	if _, err := q.Submit(testSpec("o1")); err != nil {
		t.Fatal(err)
	}
	_, err = q.Submit(testSpec("o1"))
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("third submit: %v, want OverloadError", err)
	}
	if ov.Reason != "queue_full" {
		t.Fatalf("reason %q, want queue_full", ov.Reason)
	}
	// depth 1, one 10s job each, one worker → well over the 1s floor.
	if ov.RetryAfter < 10*time.Second {
		t.Fatalf("RetryAfter %v does not reflect backlog", ov.RetryAfter)
	}
}

func waitDepthDrain(t *testing.T, q *Queue) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if q.Depth() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("queue depth never drained: %d", q.Depth())
}

func TestPerOwnerQuota(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1, Capacity: 16, PerOwnerInFlight: 2}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(testSpec("alice")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = q.Submit(testSpec("alice"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != "owner_quota" {
		t.Fatalf("over-quota submit: %v, want owner_quota overload", err)
	}
	// A different owner is unaffected.
	if _, err := q.Submit(testSpec("bob")); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
}

func TestPerOwnerRateLimit(t *testing.T) {
	q, err := New(Config{Workers: 1, Capacity: 64, OwnerRatePerMin: 2}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// Bucket is one minute deep: 2 tokens, then dry.
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(testSpec("alice")); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err = q.Submit(testSpec("alice"))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != "owner_rate" {
		t.Fatalf("rate-limited submit: %v, want owner_rate overload", err)
	}
	if ov.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v below floor", ov.RetryAfter)
	}
	if _, err := q.Submit(testSpec("bob")); err != nil {
		t.Fatalf("bob rate-limited by alice: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1, Capacity: 8, Dir: t.TempDir()}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	first, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first.ID, StateRunning)
	second, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("queued job after cancel: %q, want cancelled", snap.State)
	}
	// The tombstone must not run once the worker frees up.
	if _, err := q.Cancel(second.ID); err != nil {
		t.Fatalf("cancel is not idempotent: %v", err)
	}
	// Record on disk must have shed the spec.
	rec := readRecord(t, q, second.ID)
	if len(rec.Files) != 0 || len(rec.Salt) != 0 {
		t.Fatal("cancelled job record kept salt/files")
	}
}

func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateRunning)
	if _, err := q.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, snap.ID, StateCancelled)
	if got.Err != "cancelled" {
		t.Fatalf("cancelled job err %q", got.Err)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	q, err := New(Config{}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown): %v, want ErrNotFound", err)
	}
}

func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1, JobTimeout: 30 * time.Millisecond}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, snap.ID, StateFailed)
	if !strings.Contains(got.Err, "timed out") {
		t.Fatalf("timeout err %q", got.Err)
	}
}

func TestFailClosedProblemsFailTheJob(t *testing.T) {
	q, err := New(Config{}, func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
		return &Result{Problems: []string{"r1.conf: failed"}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, _ := q.Submit(testSpec("o1"))
	got := waitState(t, q, snap.ID, StateFailed)
	if got.DatasetID != "" {
		t.Fatal("unpublishable job still carries a dataset id")
	}
	if len(got.Problems) != 1 {
		t.Fatalf("problems not surfaced: %+v", got.Problems)
	}
}

func TestDrainRefusesIntakeAndFinishesRunning(t *testing.T) {
	release := make(chan struct{})
	q, err := New(Config{Workers: 1, Dir: t.TempDir()}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	running, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running.ID, StateRunning)
	queued, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- q.Drain(context.Background()) }()
	deadline := time.Now().Add(2 * time.Second)
	for !q.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit(testSpec("o2")); err == nil {
		t.Fatal("Submit accepted during drain")
	} else {
		var ov *OverloadError
		if !errors.As(err, &ov) || ov.Reason != "draining" {
			t.Fatalf("drain refusal: %v", err)
		}
	}
	close(release) // let the running job finish gracefully
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s, _ := q.Get(running.ID); s.State != StateDone {
		t.Fatalf("running job after graceful drain: %q, want done", s.State)
	}
	// The queued job never started; its record must still be resumable.
	if s, _ := q.Get(queued.ID); s.State != StateQueued {
		t.Fatalf("queued job after drain: %q, want queued", s.State)
	}
	rec := readRecord(t, q, queued.ID)
	if rec.State != StateQueued || len(rec.Files) == 0 {
		t.Fatalf("queued record not resumable: state=%q files=%d", rec.State, len(rec.Files))
	}
}

func TestDrainDeadlineInterruptsRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q, err := New(Config{Workers: 1, Dir: t.TempDir()}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain past deadline: %v", err)
	}
	got, _ := q.Get(snap.ID)
	if got.State != StateInterrupted {
		t.Fatalf("deadline-drained job: %q, want interrupted", got.State)
	}
	// Interrupted records keep their spec so the next process resumes them.
	rec := readRecord(t, q, snap.ID)
	if rec.State != StateInterrupted || len(rec.Files) == 0 || len(rec.Salt) == 0 {
		t.Fatalf("interrupted record not resumable: %+v", rec.State)
	}
}

func TestResumeRequeuesPersistedJobs(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	q1, err := New(Config{Workers: 1, Dir: dir}, gateRunner(release))
	if err != nil {
		t.Fatal(err)
	}
	running, _ := q1.Submit(testSpec("o1"))
	waitState(t, q1, running.ID, StateRunning)
	queued, _ := q1.Submit(testSpec("o1"))
	finishedSpec := testSpec("o1")
	finishedSpec.Label = "done-lab"
	q1.Close() // abrupt: running job becomes interrupted, queued stays queued

	waitState(t, q1, running.ID, StateInterrupted)

	var resumedOwners sync.Map
	q2, err := New(Config{Workers: 2, Dir: dir}, func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
		resumedOwners.Store(spec.Label, true)
		return okRunner(ctx, cb, spec)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Resumed() != 2 {
		t.Fatalf("Resumed() = %d, want 2", q2.Resumed())
	}
	waitState(t, q2, running.ID, StateDone)
	waitState(t, q2, queued.ID, StateDone)
	// Token survives the restart (same client keeps polling).
	if s, _ := q2.Get(running.ID); s.Token != running.Token {
		t.Fatal("job token changed across restart")
	}
	if s, _ := q2.Get(running.ID); s.Attempts < 2 {
		t.Fatalf("interrupted job attempts = %d, want >= 2", s.Attempts)
	}
}

func TestResumeSetsAsideCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-bad.json"), []byte("{torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	q, err := New(Config{Dir: dir}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if probs := q.LoadProblems(); len(probs) != 1 || !strings.Contains(probs[0], "job-bad.json") {
		t.Fatalf("LoadProblems = %v", probs)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-bad.json.corrupt")); err != nil {
		t.Fatalf("corrupt record not set aside: %v", err)
	}
	// The queue still works.
	snap, err := q.Submit(testSpec("o1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
}

func TestTerminalEviction(t *testing.T) {
	dir := t.TempDir()
	q, err := New(Config{Workers: 1, MaxTerminal: 2, Dir: dir}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		spec := testSpec("o1")
		spec.Label = fmt.Sprintf("lab%d", i)
		snap, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, q, snap.ID, StateDone)
		ids = append(ids, snap.ID)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest terminal job not evicted")
	}
	if _, ok := q.Get(ids[3]); !ok {
		t.Fatal("newest terminal job evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, "job-"+ids[0]+".json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted record still on disk: %v", err)
	}
}

func TestDoneRecordShedsSpecKeepsResult(t *testing.T) {
	q, err := New(Config{Workers: 1, Dir: t.TempDir()}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, _ := q.Submit(testSpec("o1"))
	waitState(t, q, snap.ID, StateDone)
	rec := readRecord(t, q, snap.ID)
	if len(rec.Salt) != 0 || len(rec.Files) != 0 {
		t.Fatal("done record kept salt/files")
	}
	if rec.DatasetID != "ds-lab" {
		t.Fatalf("done record lost result: %+v", rec)
	}
}

func TestMetricsAndSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.NewTracer()
	q, err := New(Config{Workers: 1, Metrics: reg, Tracer: tr}, func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
		if cb.Span == nil || cb.Tracer == nil {
			t.Error("runner callbacks missing span/tracer")
		}
		cb.Tracer.RecordSpan(trace.KindFile, "r1.conf", cb.Span.ID, cb.Tracer.Now(), 1, trace.StatusOK)
		r, _ := okRunner(ctx, cb, spec)
		r.FileRetries = 3
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	snap, _ := q.Submit(testSpec("o1"))
	waitState(t, q, snap.ID, StateDone)
	q.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`confanon_jobs_submitted_total 1`,
		`confanon_jobs_finished_total{state="done"} 1`,
		`confanon_jobs_file_retries_total 3`,
		`confanon_jobs_queue_depth 0`,
		`confanon_jobs_running 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	spans := tr.Spans()
	var jobSpan *trace.Span
	for _, s := range spans {
		if s.Kind == trace.KindJob {
			jobSpan = s
		}
	}
	if jobSpan == nil {
		t.Fatal("no job span recorded")
	}
	if jobSpan.Status != trace.StatusOK || jobSpan.Attr("state") != "done" {
		t.Fatalf("job span: %+v", jobSpan)
	}
	foundChild := false
	for _, s := range spans {
		if s.Kind == trace.KindFile && s.Parent == jobSpan.ID {
			foundChild = true
		}
	}
	if !foundChild {
		t.Fatal("file span not parented under job span")
	}
}

func TestSubmitValidation(t *testing.T) {
	q, err := New(Config{}, okRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit(Spec{Files: map[string]string{"a": "b"}}); err == nil {
		t.Fatal("ownerless spec accepted")
	}
	if _, err := q.Submit(Spec{Owner: "o"}); err == nil {
		t.Fatal("fileless spec accepted")
	}
}

func TestConcurrentSubmitCancelPoll(t *testing.T) {
	var ran atomic.Int64
	q, err := New(Config{Workers: 4, Capacity: 256}, func(ctx context.Context, cb Callbacks, spec Spec) (*Result, error) {
		ran.Add(1)
		return okRunner(ctx, cb, spec)
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snap, err := q.Submit(testSpec(fmt.Sprintf("owner%d", g)))
				if err != nil {
					continue // backpressure is a valid answer under load
				}
				q.Get(snap.ID)
				if i%3 == 0 {
					q.Cancel(snap.ID)
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for (q.Depth() > 0 || q.Running() > 0) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	q.Close()
}

func readRecord(t *testing.T, q *Queue, id string) record {
	t.Helper()
	blob, err := os.ReadFile(q.recordPath(id))
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestStateTerminalAndOverloadError pins the small externally-consumed
// surfaces: which states a poller may stop on, and that a refusal's
// message names its reason (it ends up in 429/503 bodies and logs).
func TestStateTerminalAndOverloadError(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued:      false,
		StateRunning:     false,
		StateDone:        true,
		StateFailed:      true,
		StateCancelled:   true,
		StateInterrupted: true,
	} {
		if got := s.Terminal(); got != want {
			t.Errorf("State(%q).Terminal() = %v, want %v", s, got, want)
		}
	}
	err := &OverloadError{Reason: "queue_full", RetryAfter: 3 * time.Second}
	if msg := err.Error(); !strings.Contains(msg, "queue_full") || !strings.Contains(msg, "3s") {
		t.Errorf("OverloadError.Error() = %q, want the reason and retry hint", msg)
	}
}
