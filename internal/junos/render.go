// Package junos renders and parses JunOS-style configurations for the
// same typed model as internal/config. The paper implemented its
// anonymizer for Cisco IOS but notes the techniques "are directly
// applicable to JunOS and other router configuration languages"; this
// package provides the JunOS dialect so the claim is exercised end to
// end: generate, anonymize, parse back, validate.
//
// The dialect is the hierarchical curly-brace configuration of JunOS:
// statements end in semicolons, blocks nest in braces, policies live
// under policy-options, and AS-path regexps are quoted strings.
package junos

import (
	"fmt"
	"strings"

	"confanon/internal/config"
	"confanon/internal/token"
)

// IfaceName translates an IOS-style interface name to a JunOS-style one
// deterministically (so cross-references stay consistent).
func IfaceName(ios string) string {
	lower := strings.ToLower(ios)
	num := strings.IndexFunc(ios, func(r rune) bool { return r >= '0' && r <= '9' })
	suffix := "0/0/0"
	if num >= 0 {
		suffix = strings.ReplaceAll(ios[num:], ".", ".") // unit handled separately
	}
	switch {
	case strings.HasPrefix(lower, "loopback"):
		return "lo0"
	case strings.HasPrefix(lower, "gigabitethernet"):
		return "ge-" + normalizeSuffix(suffix)
	case strings.HasPrefix(lower, "fastethernet"):
		return "fe-" + normalizeSuffix(suffix)
	case strings.HasPrefix(lower, "ethernet"):
		return "fe-" + normalizeSuffix(suffix)
	case strings.HasPrefix(lower, "pos"):
		return "so-" + normalizeSuffix(suffix)
	case strings.HasPrefix(lower, "serial"):
		return "so-" + normalizeSuffix(suffix)
	default:
		return "ge-" + normalizeSuffix(suffix)
	}
}

// normalizeSuffix coerces an IOS position ("0", "0/1", "0/0/3", "1/0.5")
// to a JunOS fpc/pic/port triple (dropping any unit part).
func normalizeSuffix(s string) string {
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		s = s[:dot]
	}
	parts := strings.Split(s, "/")
	for len(parts) < 3 {
		parts = append([]string{"0"}, parts...)
	}
	return strings.Join(parts[:3], "/")
}

// Render prints the configuration in JunOS syntax.
func Render(c *config.Config) string {
	var b strings.Builder
	w := func(depth int, format string, args ...interface{}) {
		b.WriteString(strings.Repeat("    ", depth))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}

	// system block.
	w(0, "system {")
	w(1, "host-name %s;", c.Hostname)
	if c.Domain != "" {
		w(1, "domain-name %s;", c.Domain)
	}
	for _, ns := range c.NameServers {
		w(1, "name-server {")
		w(2, "%s;", token.FormatIPv4(ns))
		w(1, "}")
	}
	if len(c.Banners) > 0 {
		w(1, "login {")
		w(2, "message \"%s\";", strings.Join(c.Banners[0].Lines, " "))
		w(1, "}")
	}
	for range c.Users {
		w(1, "login {")
		w(2, "user admin {")
		w(3, "authentication {")
		w(4, "encrypted-password \"$1$05080F1C2243$abcdef\";")
		w(3, "}")
		w(2, "}")
		w(1, "}")
	}
	w(0, "}")

	// interfaces block.
	w(0, "interfaces {")
	for _, ifc := range c.Interfaces {
		name := IfaceName(ifc.Name)
		w(1, "%s {", name)
		if ifc.Description != "" {
			w(2, "description \"%s\";", ifc.Description)
		}
		if ifc.Shutdown {
			w(2, "disable;")
		}
		w(2, "unit 0 {")
		if ifc.HasAddress {
			length, ok := config.MaskToLen(ifc.Address.Mask)
			if ok {
				w(3, "family inet {")
				w(4, "address %s/%d;", token.FormatIPv4(ifc.Address.Addr), length)
				for _, sec := range ifc.Secondary {
					if l2, ok2 := config.MaskToLen(sec.Mask); ok2 {
						w(4, "address %s/%d;", token.FormatIPv4(sec.Addr), l2)
					}
				}
				w(3, "}")
			}
		}
		w(2, "}")
		w(1, "}")
	}
	w(0, "}")

	// routing-options.
	w(0, "routing-options {")
	if len(c.StaticRoutes) > 0 {
		w(1, "static {")
		for _, sr := range c.StaticRoutes {
			length, _ := config.MaskToLen(sr.Mask)
			if sr.NextHopIface != "" {
				w(2, "route %s/%d discard;", token.FormatIPv4(sr.Dest), length)
			} else {
				w(2, "route %s/%d next-hop %s;", token.FormatIPv4(sr.Dest), length, token.FormatIPv4(sr.NextHop))
			}
		}
		w(1, "}")
	}
	if c.BGP != nil {
		if c.BGP.HasRouterID {
			w(1, "router-id %s;", token.FormatIPv4(c.BGP.RouterID))
		}
		w(1, "autonomous-system %d;", c.BGP.ASN)
	}
	w(0, "}")

	// protocols.
	w(0, "protocols {")
	if c.BGP != nil {
		w(1, "bgp {")
		// Internal group.
		var internals, externals []*config.BGPNeighbor
		for _, nb := range c.BGP.Neighbors {
			if nb.RemoteAS == c.BGP.ASN {
				internals = append(internals, nb)
			} else {
				externals = append(externals, nb)
			}
		}
		if len(internals) > 0 {
			w(2, "group ibgp {")
			w(3, "type internal;")
			for _, nb := range internals {
				w(3, "neighbor %s;", token.FormatIPv4(nb.Addr))
			}
			w(2, "}")
		}
		for i, nb := range externals {
			w(2, "group ebgp-%d {", i)
			w(3, "type external;")
			w(3, "peer-as %d;", nb.RemoteAS)
			if nb.RouteMapIn != "" || nb.RouteMapOut != "" {
				w(3, "neighbor %s {", token.FormatIPv4(nb.Addr))
				if nb.RouteMapIn != "" {
					w(4, "import %s;", nb.RouteMapIn)
				}
				if nb.RouteMapOut != "" {
					w(4, "export %s;", nb.RouteMapOut)
				}
				w(3, "}")
			} else {
				w(3, "neighbor %s;", token.FormatIPv4(nb.Addr))
			}
			w(2, "}")
		}
		w(1, "}")
	}
	for _, o := range c.OSPF {
		w(1, "ospf {")
		areas := make(map[uint32][]string)
		for _, ifc := range c.Interfaces {
			if !ifc.HasAddress {
				continue
			}
			length, _ := config.MaskToLen(ifc.Address.Mask)
			net := ifc.Address.Addr & config.LenToMask(length)
			for _, n := range o.Networks {
				if n.Addr&^n.Wildcard == net&^n.Wildcard {
					areas[n.Area] = append(areas[n.Area], IfaceName(ifc.Name))
					break
				}
			}
		}
		var keys []uint32
		for a := range areas {
			keys = append(keys, a)
		}
		sortU32(keys)
		for _, area := range keys {
			w(2, "area %d {", area)
			for _, name := range areas[area] {
				w(3, "interface %s;", name)
			}
			w(2, "}")
		}
		w(1, "}")
	}
	if c.RIP != nil {
		w(1, "rip {")
		w(2, "group rip-group {")
		for _, ifc := range c.Interfaces {
			if ifc.HasAddress {
				w(3, "neighbor %s;", IfaceName(ifc.Name))
			}
		}
		w(2, "}")
		w(1, "}")
	}
	w(0, "}")

	// policy-options. Policy references in JunOS are names of defined
	// objects, so set-community values become community definitions and the
	// numbered IOS lists become named objects with one name per entry.
	hasPolicy := len(c.RouteMaps)+len(c.CommunityLists)+len(c.ASPathLists) > 0
	if hasPolicy {
		w(0, "policy-options {")
		// Prefix lists derived from the ACLs the policies reference.
		referenced := make(map[int]bool)
		for _, rm := range c.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					if m.Type == "ip address" {
						for _, arg := range m.Args {
							referenced[atoiSafe(arg)] = true
						}
					}
				}
			}
		}
		for _, acl := range c.AccessLists {
			if !referenced[acl.Number] {
				continue
			}
			w(1, "prefix-list pfx-%d {", acl.Number)
			for _, e := range acl.Entries {
				if e.SrcAny {
					continue
				}
				length, okl := config.MaskToLen(^e.SrcWild)
				if e.SrcHost {
					length, okl = 32, true
				}
				if okl {
					w(2, "%s/%d;", token.FormatIPv4(e.Src), length)
				}
			}
			w(1, "}")
		}

		setTag := 0
		type commDef struct {
			name    string
			members string
		}
		var setDefs []commDef
		for _, rm := range c.RouteMaps {
			w(1, "policy-statement %s {", rm.Name)
			for _, cl := range rm.Clauses {
				w(2, "term t%d {", cl.Seq)
				if len(cl.Matches) > 0 {
					w(3, "from {")
					for _, m := range cl.Matches {
						switch m.Type {
						case "as-path":
							for _, arg := range m.Args {
								if al := c.ASPathList(atoiSafe(arg)); al != nil {
									for i := range al.Entries {
										w(4, "as-path aspath-%s-%d;", arg, i)
									}
								}
							}
						case "community":
							for _, arg := range m.Args {
								if cl2 := c.CommunityList(atoiSafe(arg)); cl2 != nil {
									for i := range cl2.Entries {
										w(4, "community comm-%s-%d;", arg, i)
									}
								}
							}
						case "ip address":
							for _, arg := range m.Args {
								w(4, "prefix-list pfx-%s;", arg)
							}
						}
					}
					w(3, "}")
				}
				w(3, "then {")
				for _, set := range cl.Sets {
					switch set.Type {
					case "local-preference":
						if len(set.Args) > 0 {
							w(4, "local-preference %s;", set.Args[0])
						}
					case "community":
						for _, arg := range set.Args {
							if arg == "additive" {
								continue
							}
							name := fmt.Sprintf("set-%d", setTag)
							setTag++
							setDefs = append(setDefs, commDef{name, arg})
							w(4, "community add %s;", name)
						}
					}
				}
				if cl.Action == "deny" {
					w(4, "reject;")
				} else {
					w(4, "accept;")
				}
				w(3, "}")
				w(2, "}")
			}
			w(1, "}")
		}
		for _, d := range setDefs {
			w(1, "community %s members %s;", d.name, d.members)
		}
		for _, cl := range c.CommunityLists {
			for i, e := range cl.Entries {
				w(1, "community comm-%d-%d members %s;", cl.Number, i, e.Expr)
			}
		}
		for _, al := range c.ASPathLists {
			for i, e := range al.Entries {
				w(1, "as-path aspath-%d-%d \"%s\";", al.Number, i, e.Regex)
			}
		}
		w(0, "}")
	}
	return b.String()
}

func atoiSafe(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return -1
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
