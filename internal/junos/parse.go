package junos

import (
	"strconv"
	"strings"

	"confanon/internal/config"
	"confanon/internal/token"
)

// stmt is one node of the brace tree: a statement (no kids) or a block.
type stmt struct {
	words []string
	kids  []*stmt
}

// find returns the first child whose first word matches.
func (s *stmt) find(head string) *stmt {
	for _, k := range s.kids {
		if len(k.words) > 0 && k.words[0] == head {
			return k
		}
	}
	return nil
}

// all returns every child whose first word matches.
func (s *stmt) all(head string) []*stmt {
	var out []*stmt
	for _, k := range s.kids {
		if len(k.words) > 0 && k.words[0] == head {
			out = append(out, k)
		}
	}
	return out
}

// arg returns the statement's nth argument (stripped of ';' and quotes).
func (s *stmt) arg(n int) string {
	if n+1 >= len(s.words) {
		return ""
	}
	return cleanWord(s.words[n+1])
}

func cleanWord(w string) string {
	w = strings.TrimSuffix(w, ";")
	w = strings.Trim(w, "\"")
	return w
}

// parseTree builds the statement tree from brace-structured text.
func parseTree(text string) *stmt {
	root := &stmt{}
	stack := []*stmt{root}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") ||
			strings.HasPrefix(trimmed, "/*") || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if trimmed == "}" || trimmed == "};" {
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
			continue
		}
		words := strings.Fields(trimmed)
		cur := stack[len(stack)-1]
		if strings.HasSuffix(trimmed, "{") {
			words = words[:len(words)-1]
			blk := &stmt{words: words}
			cur.kids = append(cur.kids, blk)
			stack = append(stack, blk)
			continue
		}
		cur.kids = append(cur.kids, &stmt{words: words})
	}
	return root
}

// LooksLikeJunOS reports whether text is in the JunOS dialect (used for
// automatic dialect detection when parsing mixed corpora).
func LooksLikeJunOS(text string) bool {
	return strings.Contains(text, "host-name ") &&
		strings.Contains(text, "{")
}

// Parse recovers the typed configuration model from JunOS text (including
// anonymized text). Unrecognized statements are ignored; the model covers
// what the validation suites and the routing extractor measure.
func Parse(text string) *config.Config {
	c := &config.Config{}
	root := parseTree(text)

	if sys := root.find("system"); sys != nil {
		if hn := sys.find("host-name"); hn != nil {
			c.Hostname = hn.arg(0)
		}
		if dn := sys.find("domain-name"); dn != nil {
			c.Domain = dn.arg(0)
		}
		for _, login := range sys.all("login") {
			if msg := login.find("message"); msg != nil {
				c.Banners = append(c.Banners, config.Banner{
					Kind: "motd", Delim: '"',
					Lines: []string{strings.Trim(strings.Join(msg.words[1:], " "), "\";")},
				})
			}
			if login.find("user") != nil {
				c.Users = append(c.Users, "junos login user")
			}
		}
	}

	if ifs := root.find("interfaces"); ifs != nil {
		for _, blk := range ifs.kids {
			if len(blk.words) != 1 || len(blk.kids) == 0 {
				continue
			}
			ifc := &config.Interface{Name: blk.words[0]}
			if d := blk.find("description"); d != nil {
				ifc.Description = strings.Trim(strings.Join(d.words[1:], " "), "\";")
			}
			if blk.find("disable") != nil {
				ifc.Shutdown = true
			}
			for _, unit := range blk.all("unit") {
				if fam := unit.find("family"); fam != nil {
					for _, ad := range fam.all("address") {
						addr, length, ok := token.ParseIPv4Prefix(ad.arg(0))
						if !ok {
							continue
						}
						am := config.AddrMask{Addr: addr, Mask: config.LenToMask(length)}
						if ifc.HasAddress {
							ifc.Secondary = append(ifc.Secondary, am)
						} else {
							ifc.Address = am
							ifc.HasAddress = true
						}
					}
				}
			}
			c.Interfaces = append(c.Interfaces, ifc)
		}
	}

	var asnum uint32
	var routerID uint32
	var hasRouterID bool
	if ro := root.find("routing-options"); ro != nil {
		if as := ro.find("autonomous-system"); as != nil {
			asnum = parseU32(as.arg(0))
		}
		if rid := ro.find("router-id"); rid != nil {
			if v, ok := token.ParseIPv4(rid.arg(0)); ok {
				routerID, hasRouterID = v, true
			}
		}
		if st := ro.find("static"); st != nil {
			for _, rt := range st.all("route") {
				dest, length, ok := token.ParseIPv4Prefix(rt.arg(0))
				if !ok {
					continue
				}
				sr := &config.StaticRoute{Dest: dest, Mask: config.LenToMask(length)}
				for i, w := range rt.words {
					if w == "next-hop" && i+1 < len(rt.words) {
						if nh, ok := token.ParseIPv4(cleanWord(rt.words[i+1])); ok {
							sr.NextHop = nh
						}
					}
					if cleanWord(w) == "discard" {
						sr.NextHopIface = "Null0"
					}
				}
				c.StaticRoutes = append(c.StaticRoutes, sr)
			}
		}
	}

	if protos := root.find("protocols"); protos != nil {
		if bgp := protos.find("bgp"); bgp != nil {
			g := &config.BGP{ASN: asnum, RouterID: routerID, HasRouterID: hasRouterID}
			for _, grp := range bgp.all("group") {
				external := false
				if ty := grp.find("type"); ty != nil && ty.arg(0) == "external" {
					external = true
				}
				peerAS := asnum
				if pa := grp.find("peer-as"); pa != nil {
					peerAS = parseU32(pa.arg(0))
				}
				if !external {
					peerAS = asnum
				}
				for _, nb := range grp.all("neighbor") {
					addr, ok := token.ParseIPv4(cleanWord(nb.words[1]))
					if !ok {
						continue
					}
					n := &config.BGPNeighbor{Addr: addr, RemoteAS: peerAS}
					if imp := nb.find("import"); imp != nil {
						n.RouteMapIn = imp.arg(0)
					}
					if exp := nb.find("export"); exp != nil {
						n.RouteMapOut = exp.arg(0)
					}
					g.Neighbors = append(g.Neighbors, n)
				}
			}
			c.BGP = g
		}
		if ospf := protos.find("ospf"); ospf != nil {
			o := &config.OSPF{PID: 1, RouterID: routerID, HasRouterID: hasRouterID}
			for _, area := range ospf.all("area") {
				areaID := parseU32(area.arg(0))
				for _, iface := range area.all("interface") {
					name := iface.arg(0)
					ifc := c.Interface(name)
					if ifc == nil || !ifc.HasAddress {
						continue
					}
					length, ok := config.MaskToLen(ifc.Address.Mask)
					if !ok {
						continue
					}
					net := ifc.Address.Addr & config.LenToMask(length)
					o.Networks = append(o.Networks, config.OSPFNetwork{
						Addr: net, Wildcard: ^config.LenToMask(length), Area: areaID,
					})
				}
			}
			c.OSPF = append(c.OSPF, o)
		}
		if rip := protos.find("rip"); rip != nil {
			r := &config.RIP{Version: 2}
			seen := make(map[uint32]bool)
			for _, grp := range rip.all("group") {
				for _, nb := range grp.all("neighbor") {
					ifc := c.Interface(nb.arg(0))
					if ifc == nil || !ifc.HasAddress {
						continue
					}
					net := ifc.Address.Addr & config.ClassfulMask(ifc.Address.Addr)
					if !seen[net] {
						seen[net] = true
						r.Networks = append(r.Networks, net)
					}
				}
			}
			c.RIP = r
		}
	}

	if po := root.find("policy-options"); po != nil {
		commNum, aspathNum, pfxNum := 0, 0, 0
		nameToNum := make(map[string]string)
		for _, k := range po.kids {
			if len(k.words) == 0 {
				continue
			}
			switch k.words[0] {
			case "policy-statement":
				rm := &config.RouteMap{Name: cleanWord(k.words[1])}
				for _, term := range k.all("term") {
					cl := &config.RouteMapClause{Action: "permit", Seq: len(rm.Clauses)*10 + 10}
					if from := term.find("from"); from != nil {
						for _, m := range from.kids {
							if len(m.words) < 2 {
								continue
							}
							typ := m.words[0]
							if typ == "prefix-list" {
								typ = "ip address"
							}
							cl.Matches = append(cl.Matches, config.Clause{
								Type: typ, Args: []string{cleanWord(m.words[1])},
							})
						}
					}
					if then := term.find("then"); then != nil {
						for _, st := range then.kids {
							if len(st.words) == 0 {
								continue
							}
							switch st.words[0] {
							case "reject":
								cl.Action = "deny"
							case "accept":
								cl.Action = "permit"
							case "local-preference":
								cl.Sets = append(cl.Sets, config.Clause{
									Type: "local-preference", Args: []string{cleanWord(st.words[1])},
								})
							case "community":
								if len(st.words) >= 3 {
									cl.Sets = append(cl.Sets, config.Clause{
										Type: "community", Args: []string{cleanWord(st.words[2])},
									})
								}
							}
						}
					}
					rm.Clauses = append(rm.Clauses, cl)
				}
				c.RouteMaps = append(c.RouteMaps, rm)
			case "community":
				// community NAME members EXPR;
				if len(k.words) >= 4 && k.words[2] == "members" {
					name := cleanWord(k.words[1])
					if _, ok := nameToNum[name]; !ok {
						commNum++
						nameToNum[name] = strconv.Itoa(commNum)
					}
					c.CommunityLists = append(c.CommunityLists, &config.CommunityList{
						Number: commNum,
						Entries: []config.CommunityEntry{{
							Action: "permit",
							Expr:   cleanWord(strings.Join(k.words[3:], " ")),
						}},
					})
				}
			case "as-path":
				if len(k.words) >= 3 {
					aspathNum++
					c.ASPathLists = append(c.ASPathLists, &config.ASPathList{
						Number: aspathNum,
						Entries: []config.ASPathEntry{{
							Action: "permit",
							Regex:  cleanWord(strings.Join(k.words[2:], " ")),
						}},
					})
				}
			case "prefix-list":
				pfxNum++
				acl := &config.AccessList{Number: 1000 + pfxNum}
				for _, e := range k.kids {
					if len(e.words) == 0 {
						continue
					}
					addr, length, ok := token.ParseIPv4Prefix(cleanWord(e.words[0]))
					if !ok {
						continue
					}
					acl.Entries = append(acl.Entries, config.ACLEntry{
						Action: "permit", Proto: "ip",
						Src: addr, SrcWild: ^config.LenToMask(length),
						DstAny: true, HasDst: true,
					})
				}
				c.AccessLists = append(c.AccessLists, acl)
			}
		}
	}
	return c
}

func parseU32(s string) uint32 {
	v, _ := strconv.ParseUint(s, 10, 32)
	return uint32(v)
}
