package junos_test

import (
	"strings"
	"testing"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/junos"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

func TestIfaceName(t *testing.T) {
	cases := []struct{ ios, junos string }{
		{"Loopback0", "lo0"},
		{"Ethernet0", "fe-0/0/0"},
		{"FastEthernet0/1", "fe-0/0/1"},
		{"GigabitEthernet0/0/3", "ge-0/0/3"},
		{"Serial1/0.5", "so-0/1/0"},
		{"POS0/2/0.4", "so-0/2/0"},
	}
	for _, c := range cases {
		if got := junos.IfaceName(c.ios); got != c.junos {
			t.Errorf("junos.IfaceName(%s) = %s, want %s", c.ios, got, c.junos)
		}
	}
}

func TestLooksLikeJunOS(t *testing.T) {
	if !junos.LooksLikeJunOS("system {\n    host-name r1;\n}\n") {
		t.Error("JunOS text not detected")
	}
	if junos.LooksLikeJunOS("hostname r1\ninterface Ethernet0\n") {
		t.Error("IOS text misdetected as JunOS")
	}
}

// renderNetwork renders every router of a generated network as JunOS.
func renderNetwork(n *netgen.Network) map[string]string {
	out := make(map[string]string, len(n.Routers))
	for _, r := range n.Routers {
		out[r.Config.Hostname+"-junos"] = junos.Render(r.Config)
	}
	return out
}

func TestRenderParseRoundTrip(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 301, Kind: netgen.Backbone, Routers: 12,
		UseASPathAlternation: true, UseCommunityRegexps: true})
	for _, r := range n.Routers {
		text := junos.Render(r.Config)
		c := junos.Parse(text)
		if c.Hostname != r.Config.Hostname {
			t.Errorf("hostname lost: %q vs %q", c.Hostname, r.Config.Hostname)
		}
		if len(c.Interfaces) != len(r.Config.Interfaces) {
			t.Errorf("%s: interfaces %d -> %d", c.Hostname, len(r.Config.Interfaces), len(c.Interfaces))
		}
		// Addresses survive with their prefix lengths.
		for i, ifc := range r.Config.Interfaces {
			if !ifc.HasAddress {
				continue
			}
			got := c.Interfaces[i]
			if !got.HasAddress || got.Address != ifc.Address {
				t.Errorf("%s/%s: address changed: %+v vs %+v",
					c.Hostname, ifc.Name, got.Address, ifc.Address)
			}
		}
		if (c.BGP == nil) != (r.Config.BGP == nil) {
			t.Errorf("%s: BGP presence changed", c.Hostname)
		}
		if c.BGP != nil {
			if c.BGP.ASN != r.Config.BGP.ASN {
				t.Errorf("%s: ASN %d -> %d", c.Hostname, r.Config.BGP.ASN, c.BGP.ASN)
			}
			if len(c.BGP.Neighbors) != len(r.Config.BGP.Neighbors) {
				t.Errorf("%s: neighbors %d -> %d", c.Hostname,
					len(r.Config.BGP.Neighbors), len(c.BGP.Neighbors))
			}
		}
		if len(c.OSPF) != len(r.Config.OSPF) {
			t.Errorf("%s: OSPF %d -> %d", c.Hostname, len(r.Config.OSPF), len(c.OSPF))
		}
		if len(c.RouteMaps) != len(r.Config.RouteMaps) {
			t.Errorf("%s: policies %d -> %d", c.Hostname, len(r.Config.RouteMaps), len(c.RouteMaps))
		}
	}
}

func TestAnonymizeJunOSEndToEnd(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 302, Kind: netgen.Backbone, Routers: 14,
		UseASPathAlternation: true, UseCommunityRegexps: true})
	files := renderNetwork(n)
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	post := make(map[string]string, len(files))
	for _, text := range files {
		a.Prescan(text)
	}
	joined := &strings.Builder{}
	for name, text := range files {
		out := a.AnonymizeText(text)
		post[name] = out
		joined.WriteString(out)
	}
	all := joined.String()

	// Identity gone: company name, ISP names, peer ASNs.
	if strings.Contains(all, n.Params.Name) {
		t.Error("company name survived in JunOS output")
	}
	for _, leak := range []string{"uunet", "sprint", "level3", "noc@"} {
		if strings.Contains(strings.ToLower(all), leak) {
			t.Errorf("identity %q survived in JunOS output", leak)
		}
	}
	for _, line := range strings.Split(all, "\n") {
		for _, w := range strings.Fields(line) {
			w = strings.Trim(w, ";\"")
			if w == "701" || w == "1239" || w == "7018" || w == "3356" {
				t.Errorf("public ASN %s survived: %q", w, line)
			}
		}
	}
	// Structure intact: braces balanced, keywords survive.
	if strings.Count(all, "{") != strings.Count(all, "}") {
		t.Error("brace balance destroyed")
	}
	for _, keep := range []string{"host-name", "family inet", "autonomous-system",
		"peer-as", "policy-statement", "as-path", "community"} {
		if !strings.Contains(all, keep) {
			t.Errorf("keyword %q destroyed", keep)
		}
	}
}

func TestJunOSValidationSuites(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 303, Kind: netgen.Backbone, Routers: 16,
		UseASPathAlternation: true})
	files := renderNetwork(n)
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	for _, text := range files {
		a.Prescan(text)
	}
	var pre, post []*config.Config
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	for _, name := range names {
		pre = append(pre, junos.Parse(files[name]))
		post = append(post, junos.Parse(a.AnonymizeText(files[name])))
	}
	if diffs := validate.Suite1(pre, post); len(diffs) != 0 {
		t.Errorf("JunOS suite 1 failed:\n%s", strings.Join(diffs, "\n"))
	}
	res := validate.Suite2(pre, post)
	if !res.OK() {
		t.Errorf("JunOS suite 2 failed:\npre:  %s\npost: %s", res.PreSummary, res.PostSummary)
	}
}

func TestJunOSCommentsStripped(t *testing.T) {
	a := anonymizer.New(anonymizer.Options{Salt: []byte("j")})
	in := `/* managed by foocorp engineering */
system {
    host-name cr1.foocorp.net;
    # contact noc@foocorp.net
    login {
        message "foocorp property - keep out";
    }
}
/* multi
line secret
comment */
`
	out := a.AnonymizeText(in)
	for _, leak := range []string{"foocorp", "managed", "contact", "keep out", "secret"} {
		if strings.Contains(out, leak) {
			t.Errorf("JunOS comment leak %q:\n%s", leak, out)
		}
	}
	if !strings.Contains(out, "host-name ") {
		t.Error("host-name statement destroyed")
	}
}

func TestJunOSASPathRegexRewritten(t *testing.T) {
	a := anonymizer.New(anonymizer.Options{Salt: []byte("j2")})
	in := "policy-options {\n    as-path blocked \"_70[1-5]_\";\n}\n"
	out := a.AnonymizeText(in)
	if strings.Contains(out, "70[1-5]") {
		t.Errorf("JunOS as-path regex survived: %s", out)
	}
	if !strings.Contains(out, "as-path ") || !strings.Contains(out, "\"") {
		t.Errorf("as-path statement shape destroyed: %s", out)
	}
	if strings.Contains(out, "blocked") {
		t.Errorf("as-path name survived: %s", out)
	}
}

func TestJunOSCredentialsHashed(t *testing.T) {
	a := anonymizer.New(anonymizer.Options{Salt: []byte("j3")})
	in := "            encrypted-password \"$1$secret$hash\";\n"
	out := a.AnonymizeText(in)
	if strings.Contains(out, "secret") {
		t.Errorf("credential survived: %s", out)
	}
}

func TestJunOSPrefixesMapped(t *testing.T) {
	a := anonymizer.New(anonymizer.Options{Salt: []byte("j4")})
	in := "                address 12.5.6.1/30;\n"
	out := a.AnonymizeText(in)
	if strings.Contains(out, "12.5.6.1") {
		t.Errorf("address survived: %s", out)
	}
	if !strings.Contains(out, "/30;") {
		t.Errorf("prefix length or semicolon lost: %s", out)
	}
}
