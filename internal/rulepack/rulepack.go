// Package rulepack defines the declarative rule-pack format
// (confanon.rulepack/v1): versioned, fingerprinted documents that
// describe anonymization rules as data — ID, class, scope, match spec,
// replacement action, documentation — so vendors and token classes can
// be added without recompiling the engine.
//
// A pack is JSON or a small TOML subset (toml.go); Parse sniffs the
// format. Validation is strict: unknown scopes, classes, or actions,
// duplicate rule IDs, uncompilable patterns, and a declared fingerprint
// that does not match the content all reject the pack at load time, so
// a pack that loads is a pack the engine can compile. The engine-side
// half of compilation — resolving builtin action references, merging
// packs into one dispatch inventory — lives in internal/anonymizer;
// this package owns everything that is a pure property of the document.
//
// Patterns use the internal/cregex dialect (the Cisco config-regexp
// language the paper's §4.4 machinery already parses) and match whole
// tokens, never substrings — the same anchoring MatchToken gives the
// AS-path rewriter.
package rulepack

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"confanon/internal/cregex"
)

// Schema identifies the pack document layout.
const Schema = "confanon.rulepack/v1"

// Scopes a rule may declare.
const (
	ScopeLine       = "line"
	ScopeStructural = "structural"
	ScopeToken      = "token"
	ScopeReport     = "report"
)

// Classes group rules by the paper's §4.2 taxonomy (plus the extension
// classes the engine already registers).
var validClasses = map[string]bool{
	"segmentation": true, "comment": true, "misc": true, "name": true,
	"asn": true, "ip": true, "community": true, "leak": true,
}

// Actions a declarative rule may request, by scope. Every action
// anonymizes or removes — there is deliberately no action that passes a
// value through or suppresses a leak finding, so loading a pack can
// only strengthen the output, never weaken strict gating.
var lineActions = map[string]bool{
	"hash": true, "hash-segments": true, "digits": true, "drop-line": true,
}
var tokenActions = map[string]bool{
	"hash": true, "hash-segments": true, "digits": true, "mac": true,
}
var reportActions = map[string]bool{"flag": true}

// Match is a declarative match spec. Exactly the fields meaningful for
// the rule's scope may be set (see validate).
type Match struct {
	// Pattern is a cregex pattern matched against whole tokens.
	Pattern string `json:"pattern,omitempty"`
	// Word is a literal word trigger for line rules: the rule fires when
	// the word appears after the first word, and the action applies to
	// everything after it.
	Word string `json:"word,omitempty"`

	re *cregex.Regexp
}

// MatchToken reports whether the compiled pattern accepts the token.
// Only valid after the pack validated (the pattern is compiled then).
func (m *Match) MatchToken(tok string) bool {
	return m.re != nil && m.re.MatchToken(tok)
}

// Rule is one declarative rule.
type Rule struct {
	// ID names the rule uniquely within the merged inventory of a
	// compiled program (pack-local duplicates are rejected here,
	// cross-pack duplicates at compile time).
	ID string `json:"id"`
	// RuleID is the taxonomy identity the rule's hits are counted
	// under; empty means the rule counts under its own ID.
	RuleID string `json:"rule_id,omitempty"`
	// Class places the rule in the §4.2 taxonomy.
	Class string `json:"class"`
	// Scope says where in the pipeline the rule runs.
	Scope string `json:"scope"`
	// Keys are the first-word literals that trigger a line rule; empty
	// means the rule is consulted for every line.
	Keys []string `json:"keys,omitempty"`
	// Builtin references an engine-builtin action by entry name. A rule
	// is either a builtin reference (the embedded canonical pack) or a
	// declarative match/action rule — never both.
	Builtin string `json:"builtin,omitempty"`
	// Match is the declarative match spec.
	Match *Match `json:"match,omitempty"`
	// Action is the declarative replacement action.
	Action string `json:"action,omitempty"`
	// Doc is the one-line human account of what the rule recognizes.
	Doc string `json:"doc"`
}

// Pack is one parsed, validated rule pack.
type Pack struct {
	SchemaID string `json:"schema"`
	Name     string `json:"name"`
	Version  string `json:"version"`
	// Fingerprint is the content fingerprint ("sha256:<hex>"), computed
	// over the canonical encoding of everything above it. A fingerprint
	// declared in the source document must match the computed one.
	Fingerprint string `json:"fingerprint,omitempty"`
	Rules       []Rule `json:"rules"`
}

// Meta is the identity triple threaded through reports and policy
// fingerprints.
type Meta struct {
	Name        string `json:"name"`
	Version     string `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// Meta returns the pack's identity triple.
func (p *Pack) Meta() Meta {
	return Meta{Name: p.Name, Version: p.Version, Fingerprint: p.Fingerprint}
}

// String renders a Meta as "name@version (sha256:abcdef123456…)".
func (m Meta) String() string {
	fp := m.Fingerprint
	if len(fp) > len("sha256:")+12 {
		fp = fp[:len("sha256:")+12] + "…"
	}
	return m.Name + "@" + m.Version + " (" + fp + ")"
}

// Parse decodes and validates a pack, sniffing JSON ('{' first) versus
// the TOML subset.
func Parse(data []byte) (*Pack, error) {
	for _, c := range data {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return ParseJSON(data)
		default:
			return ParseTOML(data)
		}
	}
	return nil, fmt.Errorf("rulepack: empty document")
}

// ParseJSON decodes and validates a JSON pack. Unknown fields are
// rejected — a typoed field name must not silently disable a rule.
func ParseJSON(data []byte) (*Pack, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Pack
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("rulepack: %v", err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// validate checks the document and compiles every pattern; on success
// the computed fingerprint is installed (and checked against a declared
// one).
func (p *Pack) validate() error {
	if p.SchemaID != Schema {
		return fmt.Errorf("rulepack: schema %q is not %q", p.SchemaID, Schema)
	}
	if !validName(p.Name) {
		return fmt.Errorf("rulepack: pack name %q must be a lowercase [a-z0-9-] token", p.Name)
	}
	if p.Version == "" {
		return fmt.Errorf("rulepack %s: missing version", p.Name)
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("rulepack %s: no rules", p.Name)
	}
	seen := make(map[string]bool, len(p.Rules))
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.ID == "" {
			return fmt.Errorf("rulepack %s: rule %d has no id", p.Name, i)
		}
		if seen[r.ID] {
			return fmt.Errorf("rulepack %s: duplicate rule id %q", p.Name, r.ID)
		}
		seen[r.ID] = true
		if err := r.validate(); err != nil {
			return fmt.Errorf("rulepack %s: rule %q: %v", p.Name, r.ID, err)
		}
	}
	computed := p.fingerprint()
	if p.Fingerprint != "" && p.Fingerprint != computed {
		return fmt.Errorf("rulepack %s: declared fingerprint %s does not match content %s",
			p.Name, p.Fingerprint, computed)
	}
	p.Fingerprint = computed
	return nil
}

func (r *Rule) validate() error {
	if !validClasses[r.Class] {
		return fmt.Errorf("unknown class %q", r.Class)
	}
	switch r.Scope {
	case ScopeLine, ScopeStructural, ScopeToken, ScopeReport:
	default:
		return fmt.Errorf("unknown scope %q", r.Scope)
	}
	if r.Builtin != "" {
		// Builtin reference: the match and action come from engine code;
		// declaring them here would be dead configuration.
		if r.Match != nil || r.Action != "" {
			return fmt.Errorf("builtin reference cannot carry match or action")
		}
		return nil
	}
	// Declarative rule.
	switch r.Scope {
	case ScopeStructural:
		return fmt.Errorf("structural rules are builtin-only (cross-line state is engine code)")
	case ScopeLine:
		if !lineActions[r.Action] {
			return fmt.Errorf("unknown line action %q", r.Action)
		}
		if len(r.Keys) == 0 && (r.Match == nil || (r.Match.Pattern == "" && r.Match.Word == "")) {
			return fmt.Errorf("line rule needs keys, a match word, or a match pattern")
		}
	case ScopeToken:
		if !tokenActions[r.Action] {
			return fmt.Errorf("unknown token action %q", r.Action)
		}
		if len(r.Keys) != 0 || r.Match == nil || r.Match.Pattern == "" || r.Match.Word != "" {
			return fmt.Errorf("token rule needs exactly a match pattern")
		}
	case ScopeReport:
		if !reportActions[r.Action] {
			return fmt.Errorf("unknown report action %q", r.Action)
		}
		if len(r.Keys) != 0 || r.Match == nil || r.Match.Pattern == "" || r.Match.Word != "" {
			return fmt.Errorf("report rule needs exactly a match pattern")
		}
	}
	if r.Match != nil && r.Match.Pattern != "" {
		re, err := cregex.Parse(r.Match.Pattern)
		if err != nil {
			return fmt.Errorf("pattern: %v", err)
		}
		r.Match.re = re
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// fingerprint computes the canonical content fingerprint: SHA-256 over
// the deterministic JSON encoding of the document with the fingerprint
// field cleared. Key order is fixed by the struct definitions, so two
// documents with the same content — regardless of source format or
// field order — fingerprint identically.
func (p *Pack) fingerprint() string {
	shadow := *p
	shadow.Fingerprint = ""
	enc, err := json.Marshal(&shadow)
	if err != nil {
		// Marshalling plain structs of strings cannot fail.
		panic("rulepack: canonical encoding failed: " + err.Error())
	}
	sum := sha256.Sum256(enc)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// FingerprintsOf renders a stable, comma-separated summary of pack
// identities — the component bench policy fingerprints embed. Sorted by
// name so the summary is independent of load order.
func FingerprintsOf(metas []Meta) string {
	if len(metas) == 0 {
		return "none"
	}
	parts := make([]string, len(metas))
	for i, m := range metas {
		fp := strings.TrimPrefix(m.Fingerprint, "sha256:")
		if len(fp) > 12 {
			fp = fp[:12]
		}
		parts[i] = m.Name + "@" + m.Version + ":" + fp
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
