package rulepack

import (
	"fmt"
	"strings"
)

// A minimal, hand-written TOML subset parser — just enough to author a
// rule pack by hand without a TOML dependency (the repository is
// stdlib-only). Supported grammar, line oriented:
//
//	# comment (and blank lines)
//	key = "string"              basic strings, \" \\ \n \t \r escapes
//	key = ["a", "b"]            arrays of basic strings, one line
//	[[rules]]                   starts the next rule
//	[rules.match]               the current rule's match table
//
// Anything else — bare values, multi-line strings, nested tables beyond
// rules.match, unknown keys — is a parse error, matching the JSON
// loader's strictness: a typo must fail loudly, not silently disable a
// rule.

// ParseTOML decodes and validates a TOML-subset pack.
func ParseTOML(data []byte) (*Pack, error) {
	var p Pack
	var cur *Rule
	inMatch := false
	for ln, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch line {
		case "[[rules]]":
			p.Rules = append(p.Rules, Rule{})
			cur = &p.Rules[len(p.Rules)-1]
			inMatch = false
			continue
		case "[rules.match]":
			if cur == nil {
				return nil, tomlErr(ln, "[rules.match] before any [[rules]]")
			}
			if cur.Match == nil {
				cur.Match = &Match{}
			}
			inMatch = true
			continue
		}
		if strings.HasPrefix(line, "[") {
			return nil, tomlErr(ln, "unsupported table %s", line)
		}
		key, val, err := splitKeyValue(line, ln)
		if err != nil {
			return nil, err
		}
		switch {
		case inMatch:
			err = setMatchField(cur.Match, key, val, ln)
		case cur != nil:
			err = setRuleField(cur, key, val, ln)
		default:
			err = setPackField(&p, key, val, ln)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

func tomlErr(line int, format string, args ...interface{}) error {
	return fmt.Errorf("rulepack: toml line %d: %s", line+1, fmt.Sprintf(format, args...))
}

// value is a decoded right-hand side: a string or an array of strings.
type value struct {
	s      string
	list   []string
	isList bool
}

func splitKeyValue(line string, ln int) (string, value, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return "", value{}, tomlErr(ln, "expected key = value")
	}
	key := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	if key == "" {
		return "", value{}, tomlErr(ln, "empty key")
	}
	if strings.HasPrefix(rhs, "[") {
		list, err := parseArray(rhs, ln)
		if err != nil {
			return "", value{}, err
		}
		return key, value{list: list, isList: true}, nil
	}
	s, rest, err := parseString(rhs, ln)
	if err != nil {
		return "", value{}, err
	}
	if !restIsCommentOrEmpty(rest) {
		return "", value{}, tomlErr(ln, "trailing content %q", rest)
	}
	return key, value{s: s}, nil
}

func restIsCommentOrEmpty(rest string) bool {
	rest = strings.TrimSpace(rest)
	return rest == "" || strings.HasPrefix(rest, "#")
}

// parseString decodes one leading basic string, returning the remainder.
func parseString(s string, ln int) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", tomlErr(ln, "expected a double-quoted string, got %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", tomlErr(ln, "dangling escape")
			}
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", "", tomlErr(ln, "unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
		i++
	}
	return "", "", tomlErr(ln, "unterminated string")
}

func parseArray(s string, ln int) ([]string, error) {
	if !strings.HasPrefix(s, "[") {
		return nil, tomlErr(ln, "expected an array")
	}
	rest := strings.TrimSpace(s[1:])
	var out []string
	for {
		if rest == "" {
			return nil, tomlErr(ln, "unterminated array")
		}
		if strings.HasPrefix(rest, "]") {
			if !restIsCommentOrEmpty(rest[1:]) {
				return nil, tomlErr(ln, "trailing content after array")
			}
			return out, nil
		}
		elem, r, err := parseString(rest, ln)
		if err != nil {
			return nil, err
		}
		out = append(out, elem)
		rest = strings.TrimSpace(r)
		if strings.HasPrefix(rest, ",") {
			rest = strings.TrimSpace(rest[1:])
		} else if !strings.HasPrefix(rest, "]") {
			return nil, tomlErr(ln, "expected , or ] in array")
		}
	}
}

func setPackField(p *Pack, key string, v value, ln int) error {
	if v.isList {
		return tomlErr(ln, "%s takes a string", key)
	}
	switch key {
	case "schema":
		p.SchemaID = v.s
	case "name":
		p.Name = v.s
	case "version":
		p.Version = v.s
	case "fingerprint":
		p.Fingerprint = v.s
	default:
		return tomlErr(ln, "unknown pack field %q", key)
	}
	return nil
}

func setRuleField(r *Rule, key string, v value, ln int) error {
	if key == "keys" {
		if !v.isList {
			return tomlErr(ln, "keys takes an array")
		}
		r.Keys = v.list
		return nil
	}
	if v.isList {
		return tomlErr(ln, "%s takes a string", key)
	}
	switch key {
	case "id":
		r.ID = v.s
	case "rule_id":
		r.RuleID = v.s
	case "class":
		r.Class = v.s
	case "scope":
		r.Scope = v.s
	case "builtin":
		r.Builtin = v.s
	case "action":
		r.Action = v.s
	case "doc":
		r.Doc = v.s
	default:
		return tomlErr(ln, "unknown rule field %q", key)
	}
	return nil
}

func setMatchField(m *Match, key string, v value, ln int) error {
	if v.isList {
		return tomlErr(ln, "%s takes a string", key)
	}
	switch key {
	case "pattern":
		m.Pattern = v.s
	case "word":
		m.Word = v.s
	default:
		return tomlErr(ln, "unknown match field %q", key)
	}
	return nil
}
