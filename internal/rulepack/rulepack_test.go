package rulepack

import (
	"strings"
	"testing"
)

// A small valid pack in both formats with identical content: the format
// must not leak into the fingerprint.
const jsonPack = `{
  "schema": "confanon.rulepack/v1",
  "name": "example",
  "version": "1.2.0",
  "rules": [
    {
      "id": "serial-number",
      "class": "misc",
      "scope": "line",
      "keys": ["serial-number"],
      "action": "hash",
      "doc": "hash chassis serial numbers"
    },
    {
      "id": "hex-token",
      "class": "misc",
      "scope": "token",
      "match": {"pattern": "0x[0-9a-f]+"},
      "action": "hash",
      "doc": "hash bare hex constants"
    }
  ]
}`

const tomlPack = `# the same pack, TOML form
schema = "confanon.rulepack/v1"
name = "example"
version = "1.2.0"

[[rules]]
id = "serial-number"
class = "misc"
scope = "line"
keys = ["serial-number"]
action = "hash"
doc = "hash chassis serial numbers"

[[rules]]
id = "hex-token"
class = "misc"
scope = "token"
action = "hash"
doc = "hash bare hex constants"
[rules.match]
pattern = "0x[0-9a-f]+"
`

func TestJSONAndTOMLRoundTripIdentically(t *testing.T) {
	pj, err := Parse([]byte(jsonPack))
	if err != nil {
		t.Fatalf("json pack: %v", err)
	}
	pt, err := Parse([]byte(tomlPack))
	if err != nil {
		t.Fatalf("toml pack: %v", err)
	}
	if pj.Fingerprint == "" || !strings.HasPrefix(pj.Fingerprint, "sha256:") {
		t.Fatalf("computed fingerprint malformed: %q", pj.Fingerprint)
	}
	if pj.Fingerprint != pt.Fingerprint {
		t.Errorf("same content, different fingerprints:\n json %s\n toml %s",
			pj.Fingerprint, pt.Fingerprint)
	}
	if len(pj.Rules) != 2 || len(pt.Rules) != 2 {
		t.Fatalf("rule counts: json %d toml %d", len(pj.Rules), len(pt.Rules))
	}
	if got := pt.Rules[0].Keys; len(got) != 1 || got[0] != "serial-number" {
		t.Errorf("toml keys decoded wrong: %v", got)
	}
	if !pj.Rules[1].Match.MatchToken("0xdeadbeef") {
		t.Errorf("compiled pattern rejects a member token")
	}
	if pj.Rules[1].Match.MatchToken("deadbeef") {
		t.Errorf("compiled pattern is not anchored to the whole token")
	}
}

func TestDeclaredFingerprintAccepted(t *testing.T) {
	p, err := Parse([]byte(jsonPack))
	if err != nil {
		t.Fatal(err)
	}
	pinned := strings.Replace(jsonPack, `"version": "1.2.0",`,
		`"version": "1.2.0", "fingerprint": "`+p.Fingerprint+`",`, 1)
	p2, err := Parse([]byte(pinned))
	if err != nil {
		t.Fatalf("pack with correct declared fingerprint rejected: %v", err)
	}
	if p2.Fingerprint != p.Fingerprint {
		t.Errorf("fingerprint changed by declaring it: %s vs %s", p2.Fingerprint, p.Fingerprint)
	}
}

func TestMetaRendering(t *testing.T) {
	p, err := Parse([]byte(jsonPack))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Meta()
	if !strings.HasPrefix(m.String(), "example@1.2.0 (sha256:") {
		t.Errorf("Meta.String: %q", m.String())
	}
	if got := FingerprintsOf(nil); got != "none" {
		t.Errorf("FingerprintsOf(nil) = %q", got)
	}
	sum := FingerprintsOf([]Meta{{Name: "b", Version: "1", Fingerprint: "sha256:bbbbbbbbbbbbbbbb"},
		{Name: "a", Version: "2", Fingerprint: "sha256:aaaaaaaaaaaaaaaa"}})
	if sum != "a@2:aaaaaaaaaaaa,b@1:bbbbbbbbbbbb" {
		t.Errorf("FingerprintsOf not sorted/truncated: %q", sum)
	}
}

// The negative table: every class of malformed document must be rejected
// with a diagnosable error, never loaded in a degraded form.
func TestRejectsMalformedPacks(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(jsonPack, old, new, 1)
		if s == jsonPack {
			t.Fatalf("mutation %q not applied", new)
		}
		return s
	}
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"corrupt json", jsonPack[:len(jsonPack)-2], "rulepack:"},
		{"unknown json field", mut(`"doc": "hash chassis serial numbers"`,
			`"doc": "x", "extra": "y"`), "unknown field"},
		{"wrong schema", mut("confanon.rulepack/v1", "confanon.rulepack/v9"), "schema"},
		{"bad pack name", mut(`"name": "example"`, `"name": "Example Pack"`), "pack name"},
		{"missing version", mut(`"version": "1.2.0",`, ""), "version"},
		{"duplicate rule id", mut(`"id": "hex-token"`, `"id": "serial-number"`), "duplicate rule id"},
		{"unknown class", mut(`"class": "misc",
      "scope": "line"`, `"class": "secrets",
      "scope": "line"`), "unknown class"},
		{"unknown scope", mut(`"scope": "token"`, `"scope": "word"`), "unknown scope"},
		{"unknown action", mut(`"action": "hash",
      "doc": "hash chassis serial numbers"`, `"action": "keep",
      "doc": "hash chassis serial numbers"`), "unknown line action"},
		{"structural declarative", mut(`"scope": "line"`, `"scope": "structural"`), "builtin-only"},
		{"token rule without pattern", mut(`"match": {"pattern": "0x[0-9a-f]+"},`, ""), "match pattern"},
		{"invalid cregex", mut("0x[0-9a-f]+", "0x[0-9a-f"), "pattern"},
		{"fingerprint mismatch", mut(`"version": "1.2.0",`,
			`"version": "1.2.0", "fingerprint": "sha256:0000000000000000000000000000000000000000000000000000000000000000",`),
			"fingerprint"},
		{"empty document", "", "empty document"},
		{"toml unknown key", strings.Replace(tomlPack, "doc = ", "docs = ", 1), "unknown rule field"},
		{"toml bare value", strings.Replace(tomlPack, `version = "1.2.0"`, "version = 1.2", 1), "double-quoted"},
		{"toml unterminated string", strings.Replace(tomlPack, `"example"`, `"example`, 1), "unterminated"},
		{"toml unsupported table", strings.Replace(tomlPack, "[[rules]]", "[meta]", 1), "unsupported table"},
		{"toml match before rules", "[rules.match]\npattern = \"a\"\n", "[rules.match] before any"},
		{"toml trailing content", strings.Replace(tomlPack, `name = "example"`, `name = "example" extra`, 1), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("malformed pack accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Actions that would weaken gating do not exist in any scope's action
// vocabulary — a pack can transform or drop, never pass through.
func TestNoPassthroughActionExists(t *testing.T) {
	for _, verb := range []string{"keep", "pass", "allow", "ignore", "skip"} {
		if lineActions[verb] || tokenActions[verb] || reportActions[verb] {
			t.Errorf("weakening action %q admitted", verb)
		}
	}
}
