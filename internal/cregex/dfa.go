package cregex

import (
	"sort"
	"strconv"
	"strings"
)

// This file implements the refinement the paper sketches in §4.4: "We
// could use known polynomial-time algorithms for constructing the minimum
// finite automata (FA) that accepts the new language and then convert this
// FA back into a regexp". The minimal acyclic DFA for the (finite)
// permuted language is constructed directly with the incremental algorithm
// of Daciuk et al. for lexicographically sorted input, and converted back
// to a pattern by state elimination with character-class compression.

// dfaState is one state of the acyclic DFA under construction.
type dfaState struct {
	final bool
	// trans is kept sorted by byte; words are added in lexicographic
	// order so the last transition is always the most recent.
	trans []dfaTrans
}

type dfaTrans struct {
	c  byte
	to int
}

type dawg struct {
	states   []dfaState
	register map[string]int
}

func newDawg() *dawg {
	d := &dawg{register: make(map[string]int)}
	d.states = append(d.states, dfaState{}) // root
	return d
}

func (d *dawg) child(s int, c byte) int {
	for _, t := range d.states[s].trans {
		if t.c == c {
			return t.to
		}
	}
	return -1
}

func (d *dawg) lastChild(s int) (byte, int) {
	ts := d.states[s].trans
	if len(ts) == 0 {
		return 0, -1
	}
	t := ts[len(ts)-1]
	return t.c, t.to
}

func (d *dawg) setLastChild(s, to int) {
	ts := d.states[s].trans
	ts[len(ts)-1].to = to
}

// signature canonically identifies a state by finality and transitions.
func (d *dawg) signature(s int) string {
	var b strings.Builder
	if d.states[s].final {
		b.WriteByte('F')
	}
	for _, t := range d.states[s].trans {
		b.WriteByte(t.c)
		b.WriteString(strconv.Itoa(t.to))
		b.WriteByte(';')
	}
	return b.String()
}

func (d *dawg) replaceOrRegister(s int) {
	_, childID := d.lastChild(s)
	if childID < 0 {
		return
	}
	if len(d.states[childID].trans) > 0 {
		d.replaceOrRegister(childID)
	}
	sig := d.signature(childID)
	if q, ok := d.register[sig]; ok {
		d.setLastChild(s, q)
	} else {
		d.register[sig] = childID
	}
}

func (d *dawg) addWord(w string) {
	// Walk the common prefix.
	s := 0
	i := 0
	for i < len(w) {
		next := d.child(s, w[i])
		if next < 0 {
			break
		}
		s = next
		i++
	}
	if len(d.states[s].trans) > 0 {
		d.replaceOrRegister(s)
	}
	// Add the suffix.
	for ; i < len(w); i++ {
		d.states = append(d.states, dfaState{})
		id := len(d.states) - 1
		d.states[s].trans = append(d.states[s].trans, dfaTrans{c: w[i], to: id})
		s = id
	}
	d.states[s].final = true
}

// buildMinimalDFA builds the minimal acyclic DFA accepting exactly the
// given words. Words are sorted lexicographically first (a requirement of
// the incremental algorithm).
func buildMinimalDFA(words []string) *dawg {
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	d := newDawg()
	prev := ""
	for _, w := range sorted {
		if w == prev {
			continue
		}
		d.addWord(w)
		prev = w
	}
	d.replaceOrRegister(0)
	return d
}

// label is a regexp-labeled GNFA edge used during state elimination. A
// label is either a pure character class (set != nil) or a general
// expression string with grouping metadata.
type label struct {
	set    *ByteSet // non-nil: matches exactly one byte from the set
	expr   string
	hasAlt bool // expr contains a top-level alternation
	unit   bool // expr is a single atom (safe to star/concat bare)
}

func classLabel(s ByteSet) label { return label{set: &s} }

func exprOf(l label) (expr string, hasAlt, unit bool) {
	if l.set != nil {
		return renderClass(*l.set), false, true
	}
	return l.expr, l.hasAlt, l.unit
}

// renderClass prints a ByteSet as a single char, an escaped char, or a
// bracket class with ranges.
func renderClass(s ByteSet) string {
	var b strings.Builder
	if s.Count() == 1 {
		for c := 0; c < 256; c++ {
			if s.Has(byte(c)) {
				(&Lit{C: byte(c)}).writeTo(&b)
				return b.String()
			}
		}
	}
	cl := &Class{Set: s}
	cl.writeTo(&b)
	return b.String()
}

func unionLabels(a, b label) label {
	if a.set != nil && b.set != nil {
		var s ByteSet
		s.Union(*a.set)
		s.Union(*b.set)
		return classLabel(s)
	}
	ae, _, _ := exprOf(a)
	be, _, _ := exprOf(b)
	return label{expr: ae + "|" + be, hasAlt: true}
}

func concatLabels(a, b label) label {
	ae, aAlt, _ := exprOf(a)
	be, bAlt, _ := exprOf(b)
	if ae == "" {
		return b
	}
	if be == "" {
		return a
	}
	if aAlt {
		ae = "(" + ae + ")"
	}
	if bAlt {
		be = "(" + be + ")"
	}
	return label{expr: ae + be}
}

func starLabel(l label) label {
	e, _, unit := exprOf(l)
	if e == "" {
		return label{expr: ""}
	}
	if !unit {
		e = "(" + e + ")"
	}
	return label{expr: e + "*", unit: true}
}

// emptyLabel matches the empty string.
var emptyLabel = label{expr: "", unit: true}

// gnfa is the generalized NFA used by state elimination. Adjacency sets
// are maintained incrementally so choosing the next state to eliminate
// (fewest in*out pairs) is cheap.
type gnfa struct {
	edges map[[2]int]label
	out   map[int]map[int]bool
	in    map[int]map[int]bool
}

func newGNFA() *gnfa {
	return &gnfa{
		edges: make(map[[2]int]label),
		out:   make(map[int]map[int]bool),
		in:    make(map[int]map[int]bool),
	}
}

func (g *gnfa) setEdge(from, to int, l label) {
	key := [2]int{from, to}
	if prev, ok := g.edges[key]; ok {
		g.edges[key] = unionLabels(prev, l)
		return
	}
	g.edges[key] = l
	if g.out[from] == nil {
		g.out[from] = make(map[int]bool)
	}
	g.out[from][to] = true
	if g.in[to] == nil {
		g.in[to] = make(map[int]bool)
	}
	g.in[to][from] = true
}

func (g *gnfa) delEdge(from, to int) {
	delete(g.edges, [2]int{from, to})
	delete(g.out[from], to)
	delete(g.in[to], from)
}

// cost is the number of new edges eliminating s would form.
func (g *gnfa) cost(s int) int {
	in, out := len(g.in[s]), len(g.out[s])
	if g.in[s][s] {
		in--
		out--
	}
	return in * out
}

// toRegexp converts the DFA to a pattern by eliminating states in an order
// chosen to keep intermediate labels small.
func (d *dawg) toRegexp() string {
	n := len(d.states)
	g := newGNFA()
	start, accept := n, n+1
	g.setEdge(start, 0, emptyLabel)
	for s, st := range d.states {
		if st.final {
			g.setEdge(s, accept, emptyLabel)
		}
		// Group transitions by destination so parallel edges become one
		// character class immediately.
		byDest := make(map[int]ByteSet)
		for _, t := range st.trans {
			s2 := byDest[t.to]
			s2.Add(t.c)
			byDest[t.to] = s2
		}
		for to, set := range byDest {
			g.setEdge(s, to, classLabel(set))
		}
	}
	alive := make(map[int]bool, n)
	for s := 0; s < n; s++ {
		alive[s] = true
	}
	for len(alive) > 0 {
		best, bestCost := -1, int(^uint(0)>>1)
		for s := range alive {
			if c := g.cost(s); c < bestCost {
				best, bestCost = s, c
			}
		}
		g.eliminate(best)
		delete(alive, best)
	}
	l, ok := g.edges[[2]int{start, accept}]
	if !ok {
		// Empty language: a sentinel pattern that can match no
		// non-empty token (boundary assertions out of order).
		return "$^"
	}
	e, _, _ := exprOf(l)
	return e
}

func (g *gnfa) eliminate(s int) {
	var loop label
	hasLoop := false
	if l, ok := g.edges[[2]int{s, s}]; ok {
		loop = starLabel(l)
		hasLoop = true
		g.delEdge(s, s)
	}
	type io struct {
		other int
		l     label
	}
	var ins, outs []io
	for from := range g.in[s] {
		ins = append(ins, io{from, g.edges[[2]int{from, s}]})
	}
	for to := range g.out[s] {
		outs = append(outs, io{to, g.edges[[2]int{s, to}]})
	}
	for _, e := range ins {
		g.delEdge(e.other, s)
	}
	for _, e := range outs {
		g.delEdge(s, e.other)
	}
	for _, in := range ins {
		for _, out := range outs {
			l := in.l
			if hasLoop {
				l = concatLabels(l, loop)
			}
			l = concatLabels(l, out.l)
			g.setEdge(in.other, out.other, l)
		}
	}
}

// MinimalRegexp builds a compact pattern accepting exactly the given set
// of values (as decimal tokens): minimal acyclic DFA, then state
// elimination. An empty language yields a pattern that matches nothing.
func MinimalRegexp(lang []uint32) string {
	words := make([]string, len(lang))
	for i, v := range lang {
		words[i] = strconv.FormatUint(uint64(v), 10)
	}
	d := buildMinimalDFA(words)
	return d.toRegexp()
}

// AlternationRegexp builds the paper's plain form: the alternation of all
// values in the language, e.g. "(701|702|703)". This is "very long" for
// big languages "but this is not a problem when anonymized configs are
// primarily analyzed by software tools" (§4.4).
func AlternationRegexp(lang []uint32) string {
	if len(lang) == 0 {
		return "$^"
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range lang {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	b.WriteByte(')')
	return b.String()
}

// MinimalDFASize reports the number of states in the minimal acyclic DFA
// for the language, used by the ablation benchmarks.
func MinimalDFASize(lang []uint32) int {
	words := make([]string, len(lang))
	for i, v := range lang {
		words[i] = strconv.FormatUint(uint64(v), 10)
	}
	return len(buildMinimalDFA(words).states)
}
