package cregex

import (
	"errors"
	"sort"
	"strconv"
)

// This file implements regexp rewriting under a permutation (§4.4, §4.5):
// given a routing-policy regexp that accepts some set of AS numbers (or
// community values), produce a regexp that accepts exactly the images of
// that set under the anonymizing permutation.
//
// The method follows the paper: the language accepted by the (sub)regexp
// is found "by simply applying the regexp to a list of all 2^16 ASNs and
// seeing which it accepts"; the accepted public ASNs are permuted; and a
// new regexp accepting the new language is emitted — by default the
// alternation of all members ("70[1-3] becomes (701|702|703)"), optionally
// the minimal-DFA reconstruction the paper notes is available.
//
// Patterns are decomposed structurally first: maximal runs of
// digit-matching atoms form "number atoms", separated by boundary
// assertions and non-digit literals. Each number atom is enumerated and
// rewritten independently, so multi-number path regexps such as
// "_1239_.*_70[2-5]_" are handled correctly, and pure-literal atoms keep
// their shape (1239 is replaced by a single permuted number, not an
// alternation).

// Style selects the output form for a rewritten language.
type Style int

const (
	// Alternation emits "(a|b|c)", the paper's production form.
	Alternation Style = iota
	// Minimal emits the minimal-DFA reconstruction.
	Minimal
)

// Result reports what a rewrite did.
type Result struct {
	Pattern string // the rewritten pattern (equal to input when unchanged)
	Changed bool   // whether any atom was rewritten
	Atoms   int    // number atoms examined
	Mapped  int    // number atoms actually rewritten
}

// ErrUnsplittable is returned when a community pattern has no top-level
// colon to separate its ASN half from its value half; the caller should
// fall back to hashing the token.
var ErrUnsplittable = errors.New("cregex: community pattern has no top-level colon")

// ErrUndecomposable is returned when a pattern's number atoms cannot be
// soundly rewritten independently (digits could juxtapose across atom
// boundaries) and the whole-pattern language is empty, leaving nothing to
// rewrite; the caller should fall back to hashing the pattern — the
// paper's trade-off: "we have chosen to favor anonymity over information".
var ErrUndecomposable = errors.New("cregex: pattern not decomposable into number atoms")

// rewriter carries the permutation and policy through the AST walk.
type rewriter struct {
	// mapVal maps one accepted value to its anonymized image.
	mapVal func(uint32) uint32
	// needsRewrite decides whether a language requires rewriting at all
	// (for ASNs: only if it contains a public ASN).
	needsRewrite func([]uint32) bool
	style        Style
	atoms        int
	mapped       int
	err          error
}

// RewriteASN rewrites an AS-path regexp under the ASN permutation perm
// (which must be the identity on private ASNs). Languages containing no
// public ASN are left untouched, as is any atom accepting the whole
// universe (a permutation fixes the universe as a set).
func RewriteASN(pattern string, perm func(uint32) uint32, style Style) (Result, error) {
	re, err := Parse(pattern)
	if err != nil {
		return Result{}, err
	}
	rw := &rewriter{
		mapVal: perm,
		needsRewrite: func(lang []uint32) bool {
			for _, v := range lang {
				if v >= 1 && v <= 64511 {
					return true
				}
			}
			return false
		},
		style: style,
	}
	root := rw.rewriteTree(re.Root)
	if rw.err != nil {
		return Result{}, rw.err
	}
	out := &Regexp{Root: root}
	res := Result{Pattern: out.String(), Atoms: rw.atoms, Mapped: rw.mapped, Changed: rw.mapped > 0}
	if !res.Changed {
		res.Pattern = pattern // keep the exact original spelling
	}
	return res, nil
}

// rewriteTree checks decomposability first: when the atoms of root cannot
// be rewritten independently, the whole expression is enumerated as one
// unit (an empty whole-expression language is unverifiable and becomes
// ErrUndecomposable, directing the caller to hash the pattern).
func (rw *rewriter) rewriteTree(root Node) Node {
	if rw.decomposable(root, false, false) {
		return rw.rewriteNode(root)
	}
	return rw.rewriteWhole(root)
}

// rewriteWhole enumerates root's entire language and replaces the tree.
func (rw *rewriter) rewriteWhole(root Node) Node {
	rw.atoms++
	sub := &Regexp{Root: root}
	sub.prog = compile(root)
	lang := sub.Language()
	if len(lang) == 0 {
		rw.err = ErrUndecomposable
		return root
	}
	if AcceptsAll(lang) || !rw.needsRewrite(lang) {
		return root
	}
	rw.mapped++
	mapped := make([]uint32, len(lang))
	for i, v := range lang {
		mapped[i] = rw.mapVal(v)
	}
	sortU32(mapped)
	if len(mapped) == 1 {
		return literalNumber(mapped[0])
	}
	var pat string
	if rw.style == Minimal {
		pat = MinimalRegexp(mapped)
	} else {
		pat = AlternationRegexp(mapped)
	}
	repl, err := Parse(pat)
	if err != nil {
		rw.err = err
		return root
	}
	return repl.Root
}

// RewriteCommunity rewrites a community-list regexp "asnpart:valuepart".
// The ASN half is rewritten with asnPerm like an AS-path regexp; the value
// half is rewritten with valPerm, which applies to every value (§4.5: even
// the integer part must be anonymized).
func RewriteCommunity(pattern string, asnPerm, valPerm func(uint32) uint32, style Style) (Result, error) {
	re, err := Parse(pattern)
	if err != nil {
		return Result{}, err
	}
	rw := &rewriter{style: style}
	root := rw.rewriteCommunityNode(re.Root, asnPerm, valPerm)
	if rw.err != nil {
		return Result{}, rw.err
	}
	out := &Regexp{Root: root}
	res := Result{Pattern: out.String(), Atoms: rw.atoms, Mapped: rw.mapped, Changed: rw.mapped > 0}
	if !res.Changed {
		res.Pattern = pattern
	}
	return res, nil
}

// rewriteCommunityNode splits at the top-level colon and dispatches each
// half. Alternations and groups are handled per branch.
func (rw *rewriter) rewriteCommunityNode(n Node, asnPerm, valPerm func(uint32) uint32) Node {
	switch n := n.(type) {
	case *Alt:
		subs := make([]Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[i] = rw.rewriteCommunityNode(s, asnPerm, valPerm)
		}
		return &Alt{Subs: subs}
	case *Group:
		return &Group{Sub: rw.rewriteCommunityNode(n.Sub, asnPerm, valPerm)}
	case *Concat:
		colon := -1
		for i, s := range n.Subs {
			if lit, ok := s.(*Lit); ok && lit.C == ':' {
				colon = i
				break
			}
		}
		if colon < 0 {
			// A concat with a single group/alt child may hold the colon
			// one level down.
			if len(n.Subs) == 1 {
				return rw.rewriteCommunityNode(n.Subs[0], asnPerm, valPerm)
			}
			rw.err = ErrUnsplittable
			return n
		}
		left := &Concat{Subs: n.Subs[:colon]}
		right := &Concat{Subs: n.Subs[colon+1:]}
		asnRW := &rewriter{
			mapVal: asnPerm,
			needsRewrite: func(lang []uint32) bool {
				for _, v := range lang {
					if v >= 1 && v <= 64511 {
						return true
					}
				}
				return false
			},
			style: rw.style,
		}
		valRW := &rewriter{
			mapVal:       valPerm,
			needsRewrite: func(lang []uint32) bool { return len(lang) > 0 },
			style:        rw.style,
		}
		newLeft := asnRW.rewriteTree(left)
		newRight := valRW.rewriteTree(right)
		rw.atoms += asnRW.atoms + valRW.atoms
		rw.mapped += asnRW.mapped + valRW.mapped
		if asnRW.err != nil {
			rw.err = asnRW.err
		}
		if valRW.err != nil {
			rw.err = valRW.err
		}
		subs := append([]Node{}, flatten(newLeft)...)
		subs = append(subs, &Lit{C: ':'})
		subs = append(subs, flatten(newRight)...)
		return &Concat{Subs: subs}
	default:
		rw.err = ErrUnsplittable
		return n
	}
}

func flatten(n Node) []Node {
	if c, ok := n.(*Concat); ok {
		return c.Subs
	}
	return []Node{n}
}

// digity reports whether a node can only participate in matching the
// digits of a number (and therefore belongs inside a number atom).
func digity(n Node) bool {
	switch n := n.(type) {
	case *Lit:
		return n.C >= '0' && n.C <= '9'
	case *Any:
		return true
	case *Class:
		return true // classes in this dialect range over digits
	case *Repeat:
		return digity(n.Sub)
	case *Group:
		return digity(n.Sub)
	case *Concat:
		for _, s := range n.Subs {
			if !digity(s) {
				return false
			}
		}
		return len(n.Subs) > 0
	case *Alt:
		for _, s := range n.Subs {
			if !digity(s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// rewriteNode walks the AST rewriting every number atom.
func (rw *rewriter) rewriteNode(n Node) Node {
	switch n := n.(type) {
	case *Alt:
		subs := make([]Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[i] = rw.rewriteNode(s)
		}
		return &Alt{Subs: subs}
	case *Group:
		if digity(n) {
			return rw.rewriteRun([]Node{n})
		}
		return &Group{Sub: rw.rewriteNode(n.Sub)}
	case *Repeat:
		if digity(n) {
			return rw.rewriteRun([]Node{n})
		}
		return &Repeat{Sub: rw.rewriteNode(n.Sub), Op: n.Op}
	case *Concat:
		var out []Node
		i := 0
		for i < len(n.Subs) {
			if !digity(n.Subs[i]) {
				out = append(out, rw.rewriteNode(n.Subs[i]))
				i++
				continue
			}
			j := i
			for j < len(n.Subs) && digity(n.Subs[j]) {
				j++
			}
			out = append(out, flatten(rw.rewriteRun(n.Subs[i:j]))...)
			i = j
		}
		return &Concat{Subs: out}
	case *Lit, *Class, *Any:
		if digity(n) {
			return rw.rewriteRun([]Node{n})
		}
		return n
	default:
		return n
	}
}

// rewriteRun rewrites one number atom (a maximal run of digit-matching
// nodes). The run's language over the universe is enumerated; if it needs
// rewriting, a replacement subtree accepting the permuted language is
// substituted.
func (rw *rewriter) rewriteRun(run []Node) Node {
	rw.atoms++
	atom := Node(&Concat{Subs: run})
	if len(run) == 1 {
		atom = run[0]
	}
	sub := &Regexp{Root: atom}
	sub.prog = compile(atom)
	lang := sub.Language()
	if len(lang) == 0 || AcceptsAll(lang) || !rw.needsRewrite(lang) {
		// An atom with an empty language (a literal above 65535) is out
		// of the 16-bit universe and is left alone.
		return atom
	}
	rw.mapped++
	mapped := make([]uint32, len(lang))
	for i, v := range lang {
		mapped[i] = rw.mapVal(v)
	}
	sortU32(mapped)
	// A singleton language keeps its literal shape: 1239 -> 28411, not
	// (28411).
	if len(mapped) == 1 {
		return literalNumber(mapped[0])
	}
	var pat string
	if rw.style == Minimal {
		pat = MinimalRegexp(mapped)
	} else {
		pat = AlternationRegexp(mapped)
	}
	repl, err := Parse(pat)
	if err != nil {
		// The generators above always emit parseable patterns; treat a
		// failure as an internal bug surfaced to the caller.
		rw.err = err
		return atom
	}
	if _, ok := repl.Root.(*Group); ok {
		return repl.Root
	}
	return &Group{Sub: repl.Root}
}

func literalNumber(v uint32) Node {
	s := strconv.FormatUint(uint64(v), 10)
	subs := make([]Node, len(s))
	for i := 0; i < len(s); i++ {
		subs[i] = &Lit{C: s[i]}
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &Concat{Subs: subs}
}

func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
