package cregex

import (
	"sort"
	"strconv"
	"strings"
)

// Lazy DFA for fast language enumeration. Language() applies the regexp
// to all 2^16 values of the universe; simulating the NFA per value costs
// O(len * states) each, whereas the subset-construction DFA costs O(len)
// per value after each distinct state set has been expanded once.
//
// Boundary assertions keep this subtle: a state set reached mid-token must
// not have crossed boundary edges, but acceptance is tested as if the
// token ended at the current position. Each cached DFA state therefore
// stores its mid-token closure and a lazily computed accept flag that
// applies the boundary closure.

type dnode struct {
	set    []bool
	trans  map[byte]*dnode
	accept bool
}

type lazyDFA struct {
	prog  *program
	nodes map[string]*dnode
	start *dnode
}

func (p *program) key(set []bool) string {
	var b strings.Builder
	for s, in := range set {
		if in {
			b.WriteString(strconv.Itoa(s))
			b.WriteByte(',')
		}
	}
	return b.String()
}

func newLazyDFA(p *program) *lazyDFA {
	d := &lazyDFA{prog: p, nodes: make(map[string]*dnode)}
	init := make([]bool, len(p.edges))
	init[p.start] = true
	p.closure(init, true) // position 0 is a boundary
	d.start = d.intern(init)
	return d
}

func (d *lazyDFA) intern(set []bool) *dnode {
	k := d.prog.key(set)
	if n, ok := d.nodes[k]; ok {
		return n
	}
	final := append([]bool(nil), set...)
	d.prog.closure(final, true)
	n := &dnode{set: set, trans: make(map[byte]*dnode), accept: final[d.prog.accept]}
	d.nodes[k] = n
	return n
}

// step returns the DFA state after consuming c mid-token, or nil when the
// token is rejected.
func (d *lazyDFA) step(n *dnode, c byte) *dnode {
	if next, ok := n.trans[c]; ok {
		return next
	}
	set := make([]bool, len(d.prog.edges))
	any := false
	for s, in := range n.set {
		if !in {
			continue
		}
		for _, e := range d.prog.edges[s] {
			if e.kind == edgeChar && e.set.Has(c) {
				set[e.to] = true
				any = true
			}
		}
	}
	var next *dnode
	if any {
		d.prog.closure(set, false)
		next = d.intern(set)
	}
	n.trans[c] = next
	return next
}

func (re *Regexp) dfa() *lazyDFA {
	if re.lazy == nil {
		re.lazy = newLazyDFA(re.prog)
	}
	return re.lazy
}

// languageDFA enumerates the accepted universe values using the lazy DFA.
// It walks the digit trie of valid decimal spellings (no leading zeros)
// so shared prefixes are expanded once.
func (re *Regexp) languageDFA() []uint32 {
	d := re.dfa()
	var out []uint32
	if n := d.step(d.start, '0'); n != nil && n.accept {
		out = append(out, 0)
	}
	var walk func(n *dnode, val uint32)
	walk = func(n *dnode, val uint32) {
		if n.accept {
			out = append(out, val)
		}
		for c := byte('0'); c <= '9'; c++ {
			v := val*10 + uint32(c-'0')
			if v >= Universe {
				break
			}
			if next := d.step(n, c); next != nil {
				walk(next, v)
			}
		}
	}
	for c := byte('1'); c <= '9'; c++ {
		if n := d.step(d.start, c); n != nil {
			walk(n, uint32(c-'0'))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
