package cregex

// Decomposability analysis for the rewriter. Rewriting each number atom
// independently is only sound when atoms cannot juxtapose digits across
// their boundaries: in "32(.|(59?))92" the middle group can contribute
// digits (or nothing) directly between the literal runs, so "32" is not a
// standalone AS number and must not be permuted as one. The predicates
// below conservatively over-approximate each node's language edges; when a
// digity run's neighbor can match empty or can touch it with a digit, the
// rewriter falls back to enumerating the whole expression.

// canMatchEmpty reports whether the node can match the empty string
// (boundary assertions are zero-width and count as empty-capable).
func canMatchEmpty(n Node) bool {
	switch n := n.(type) {
	case *Lit, *Any, *Class:
		return false
	case *Bound:
		return true
	case *Group:
		return canMatchEmpty(n.Sub)
	case *Repeat:
		if n.Op == '*' || n.Op == '?' {
			return true
		}
		return canMatchEmpty(n.Sub)
	case *Concat:
		for _, s := range n.Subs {
			if !canMatchEmpty(s) {
				return false
			}
		}
		return true
	case *Alt:
		for _, s := range n.Subs {
			if canMatchEmpty(s) {
				return true
			}
		}
		return len(n.Subs) == 0
	default:
		return true // unknown node: be conservative
	}
}

// canStartWithDigit reports whether some string in the node's language can
// begin with a digit.
func canStartWithDigit(n Node) bool { return edgeDigit(n, true) }

// canEndWithDigit reports whether some string in the node's language can
// end with a digit.
func canEndWithDigit(n Node) bool { return edgeDigit(n, false) }

func edgeDigit(n Node, start bool) bool {
	switch n := n.(type) {
	case *Lit:
		return n.C >= '0' && n.C <= '9'
	case *Any:
		return true
	case *Class:
		if n.Neg {
			// A negated class over the alphabet may still admit digits.
			for c := byte('0'); c <= '9'; c++ {
				if !n.Set.Has(c) {
					return true
				}
			}
			return false
		}
		for c := byte('0'); c <= '9'; c++ {
			if n.Set.Has(c) {
				return true
			}
		}
		return false
	case *Bound:
		return false
	case *Group:
		return edgeDigit(n.Sub, start)
	case *Repeat:
		return edgeDigit(n.Sub, start)
	case *Concat:
		if start {
			for _, s := range n.Subs {
				if edgeDigit(s, true) {
					return true
				}
				if !canMatchEmpty(s) {
					return false
				}
			}
			return false
		}
		for i := len(n.Subs) - 1; i >= 0; i-- {
			if edgeDigit(n.Subs[i], false) {
				return true
			}
			if !canMatchEmpty(n.Subs[i]) {
				return false
			}
		}
		return false
	case *Alt:
		for _, s := range n.Subs {
			if edgeDigit(s, start) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// isBoundary reports whether the node is a boundary assertion (possibly
// wrapped in groups). A boundary is always a safe atom separator: in the
// AS-path semantics '_' consumes a delimiter, and in full-token semantics
// it pins a string edge — either way digits cannot juxtapose across it.
func isBoundary(n Node) bool {
	switch n := n.(type) {
	case *Bound:
		return true
	case *Group:
		return isBoundary(n.Sub)
	}
	return false
}

// decomposable reports whether every number atom in the tree is cleanly
// delimited, so each can be enumerated and permuted independently. ctxL
// (ctxR) says whether, in the surrounding expression, a digit could
// immediately precede (follow) whatever this subtree matches — if a digity
// atom touches such a context, permuting it alone would rewrite a fragment
// of a larger number.
//
// A second hazard is an atom that can match the empty string (like "3*"):
// replacing it with an alternation of numbers removes the empty match and
// distorts the surrounding expression. Such atoms are only safe when the
// rewrite would leave them unchanged anyway (universe-accepting like ".*",
// or nothing to rewrite), which rw.atomSafeIfEmpty checks by enumeration.
func (rw *rewriter) decomposable(n Node, ctxL, ctxR bool) bool {
	if digity(n) {
		return !ctxL && !ctxR && rw.atomSafeIfEmpty(n)
	}
	switch n := n.(type) {
	case *Lit, *Any, *Class, *Bound:
		return true // non-digit terminal: no atoms inside
	case *Group:
		return rw.decomposable(n.Sub, ctxL, ctxR)
	case *Alt:
		for _, s := range n.Subs {
			if !rw.decomposable(s, ctxL, ctxR) {
				return false
			}
		}
		return true
	case *Repeat:
		subL, subR := ctxL, ctxR
		if n.Op == '*' || n.Op == '+' {
			// Iterations adjoin: the sub's own edges face each other.
			subL = subL || canEndWithDigit(n.Sub)
			subR = subR || canStartWithDigit(n.Sub)
		}
		return rw.decomposable(n.Sub, subL, subR)
	case *Concat:
		k := len(n.Subs)
		// dl[i]: can a digit touch element i from the left.
		dl := make([]bool, k)
		dr := make([]bool, k)
		for i := 0; i < k; i++ {
			if i == 0 {
				dl[i] = ctxL
				continue
			}
			prev := n.Subs[i-1]
			switch {
			case isBoundary(prev):
				dl[i] = false
			case canEndWithDigit(prev):
				dl[i] = true
			case canMatchEmpty(prev):
				dl[i] = dl[i-1]
			default:
				dl[i] = false
			}
		}
		for i := k - 1; i >= 0; i-- {
			if i == k-1 {
				dr[i] = ctxR
				continue
			}
			next := n.Subs[i+1]
			switch {
			case isBoundary(next):
				dr[i] = false
			case canStartWithDigit(next):
				dr[i] = true
			case canMatchEmpty(next):
				dr[i] = dr[i+1]
			default:
				dr[i] = false
			}
		}
		i := 0
		for i < k {
			if digity(n.Subs[i]) {
				j := i
				for j < k && digity(n.Subs[j]) {
					j++
				}
				if dl[i] || dr[j-1] {
					return false
				}
				run := Node(&Concat{Subs: n.Subs[i:j]})
				if j-i == 1 {
					run = n.Subs[i]
				}
				if !rw.atomSafeIfEmpty(run) {
					return false
				}
				i = j
				continue
			}
			if !rw.decomposable(n.Subs[i], dl[i], dr[i]) {
				return false
			}
			i++
		}
		return true
	default:
		return false
	}
}

// atomSafeIfEmpty guards the empty-match hazard: an atom that can match
// the empty string may only be rewritten in place when the rewrite leaves
// it unchanged.
func (rw *rewriter) atomSafeIfEmpty(atom Node) bool {
	if !canMatchEmpty(atom) {
		return true
	}
	sub := &Regexp{Root: atom}
	sub.prog = compile(atom)
	lang := sub.Language()
	return len(lang) == 0 || AcceptsAll(lang) || !rw.needsRewrite(lang)
}
