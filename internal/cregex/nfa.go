package cregex

import "strconv"

// Alphabet is the set of bytes that Any ('.') and negated classes range
// over. AS numbers and community values are decimal strings; community
// attributes additionally contain a colon.
const Alphabet = "0123456789:"

var alphaSet = func() ByteSet {
	var s ByteSet
	for i := 0; i < len(Alphabet); i++ {
		s.Add(Alphabet[i])
	}
	return s
}()

// edge kinds in the compiled NFA.
const (
	edgeEps = iota
	edgeBound
	edgeChar
)

type edge struct {
	kind int
	set  ByteSet // for edgeChar
	to   int
}

type program struct {
	edges  [][]edge
	start  int
	accept int
}

func (p *program) newState() int {
	p.edges = append(p.edges, nil)
	return len(p.edges) - 1
}

func (p *program) addEdge(from int, e edge) {
	p.edges[from] = append(p.edges[from], e)
}

// compile builds a Thompson NFA for the AST.
func compile(root Node) *program {
	p := &program{}
	start := p.newState()
	accept := p.newState()
	p.start, p.accept = start, accept
	p.build(root, start, accept)
	return p
}

// build wires sub between states from and to.
func (p *program) build(n Node, from, to int) {
	switch n := n.(type) {
	case *Lit:
		var s ByteSet
		s.Add(n.C)
		p.addEdge(from, edge{kind: edgeChar, set: s, to: to})
	case *Any:
		p.addEdge(from, edge{kind: edgeChar, set: alphaSet, to: to})
	case *Class:
		s := n.Set
		if n.Neg {
			var neg ByteSet
			for i := 0; i < len(Alphabet); i++ {
				if !s.Has(Alphabet[i]) {
					neg.Add(Alphabet[i])
				}
			}
			s = neg
		}
		p.addEdge(from, edge{kind: edgeChar, set: s, to: to})
	case *Bound:
		p.addEdge(from, edge{kind: edgeBound, to: to})
	case *Group:
		p.build(n.Sub, from, to)
	case *Concat:
		if len(n.Subs) == 0 {
			p.addEdge(from, edge{kind: edgeEps, to: to})
			return
		}
		cur := from
		for i, sub := range n.Subs {
			next := to
			if i < len(n.Subs)-1 {
				next = p.newState()
			}
			p.build(sub, cur, next)
			cur = next
		}
	case *Alt:
		for _, sub := range n.Subs {
			s := p.newState()
			e := p.newState()
			p.addEdge(from, edge{kind: edgeEps, to: s})
			p.build(sub, s, e)
			p.addEdge(e, edge{kind: edgeEps, to: to})
		}
	case *Repeat:
		switch n.Op {
		case '?':
			p.addEdge(from, edge{kind: edgeEps, to: to})
			p.build(n.Sub, from, to)
		case '*':
			loop := p.newState()
			p.addEdge(from, edge{kind: edgeEps, to: loop})
			p.addEdge(loop, edge{kind: edgeEps, to: to})
			s := p.newState()
			e := p.newState()
			p.addEdge(loop, edge{kind: edgeEps, to: s})
			p.build(n.Sub, s, e)
			p.addEdge(e, edge{kind: edgeEps, to: loop})
		case '+':
			mid := p.newState()
			p.build(n.Sub, from, mid)
			p.addEdge(mid, edge{kind: edgeEps, to: to})
			s := p.newState()
			p.addEdge(mid, edge{kind: edgeEps, to: s})
			p.build(n.Sub, s, mid)
		}
	}
}

// closure expands set (a bitset over states) across epsilon edges, and
// across boundary edges when atBoundary is true.
func (p *program) closure(set []bool, atBoundary bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.edges[s] {
			if e.kind == edgeChar {
				continue
			}
			if e.kind == edgeBound && !atBoundary {
				continue
			}
			if !set[e.to] {
				set[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
}

// MatchToken reports whether the regexp matches the entire token, with
// boundary assertions ('_', '^', '$') satisfiable only at the token's
// start and end — the semantics of applying an IOS AS-path regexp to a
// standalone AS number or community value.
func (re *Regexp) MatchToken(token string) bool {
	p := re.prog
	cur := make([]bool, len(p.edges))
	next := make([]bool, len(p.edges))
	cur[p.start] = true
	p.closure(cur, true) // position 0 is a boundary
	if len(token) == 0 {
		return cur[p.accept]
	}
	for i := 0; i < len(token); i++ {
		c := token[i]
		for j := range next {
			next[j] = false
		}
		any := false
		for s, in := range cur {
			if !in {
				continue
			}
			for _, e := range p.edges[s] {
				if e.kind == edgeChar && e.set.Has(c) {
					next[e.to] = true
					any = true
				}
			}
		}
		if !any {
			return false
		}
		p.closure(next, i == len(token)-1) // after last char we are at a boundary
		cur, next = next, cur
	}
	return cur[p.accept]
}

// MatchASN reports whether the regexp accepts the AS number a when applied
// to it as a standalone token.
func (re *Regexp) MatchASN(a uint32) bool {
	return re.MatchToken(strconv.FormatUint(uint64(a), 10))
}

// Universe is the size of the 16-bit ASN/community-value space the paper
// enumerates over ("since there are only 2^16 ASNs in BGPv4").
const Universe = 1 << 16

// Language returns, in increasing order, every value in [0, Universe) the
// regexp accepts as a standalone token. Enumeration runs over a lazily
// constructed DFA; languageNFA is the slow reference implementation the
// tests cross-check against.
func (re *Regexp) Language() []uint32 {
	return re.languageDFA()
}

// languageNFA enumerates the language by direct NFA simulation of every
// universe value; it exists as the independent oracle for tests.
func (re *Regexp) languageNFA() []uint32 {
	var out []uint32
	var buf [5]byte
	for v := 0; v < Universe; v++ {
		s := strconv.AppendUint(buf[:0], uint64(v), 10)
		if re.MatchToken(string(s)) {
			out = append(out, uint32(v))
		}
	}
	return out
}

// AcceptsAll reports whether the regexp accepts every value of the
// universe (for example ".*" or "[0-9]+"); such a regexp needs no
// rewriting because any permutation of the universe leaves the language
// unchanged.
func AcceptsAll(lang []uint32) bool { return len(lang) == Universe }
