package cregex

import (
	"testing"
)

// FuzzParsePattern is the native Go fuzz target the ci.sh smoke pass
// drives (the grammar-directed randomized tests in fuzz_test.go stay as
// the deterministic tier-1 versions). Patterns come out of
// attacker-controlled configs, so the parser must never panic, and any
// pattern it accepts must reprint to a form it accepts again.
func FuzzParsePattern(f *testing.F) {
	f.Add("701")
	f.Add("(701|1239)_[0-9]+")
	f.Add("_701_")
	f.Add("^65[0-9]*$")
	f.Add("([1-3]|4?5+)*")
	f.Add("((((")
	f.Add("[9-0]")
	f.Add("[0-]") // regression: trailing '-' is a literal member; reprint escapes it
	f.Add("[\\-0]")
	f.Fuzz(func(t *testing.T, pattern string) {
		re, err := Parse(pattern) // must not panic
		if err != nil {
			return
		}
		printed := re.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("accepted %q but rejected its own reprint %q: %v", pattern, printed, err)
		}
	})
}
